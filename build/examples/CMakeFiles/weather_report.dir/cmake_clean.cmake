file(REMOVE_RECURSE
  "CMakeFiles/weather_report.dir/weather_report.cc.o"
  "CMakeFiles/weather_report.dir/weather_report.cc.o.d"
  "weather_report"
  "weather_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weather_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
