# Empty dependencies file for weather_report.
# This may be replaced when dependencies are built.
