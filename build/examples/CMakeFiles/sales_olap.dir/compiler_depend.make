# Empty compiler generated dependencies file for sales_olap.
# This may be replaced when dependencies are built.
