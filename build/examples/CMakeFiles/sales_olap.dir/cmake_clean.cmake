file(REMOVE_RECURSE
  "CMakeFiles/sales_olap.dir/sales_olap.cc.o"
  "CMakeFiles/sales_olap.dir/sales_olap.cc.o.d"
  "sales_olap"
  "sales_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sales_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
