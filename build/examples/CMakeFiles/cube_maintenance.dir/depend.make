# Empty dependencies file for cube_maintenance.
# This may be replaced when dependencies are built.
