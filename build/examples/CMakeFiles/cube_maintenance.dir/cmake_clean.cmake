file(REMOVE_RECURSE
  "CMakeFiles/cube_maintenance.dir/cube_maintenance.cc.o"
  "CMakeFiles/cube_maintenance.dir/cube_maintenance.cc.o.d"
  "cube_maintenance"
  "cube_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
