# Empty dependencies file for tpcd_report.
# This may be replaced when dependencies are built.
