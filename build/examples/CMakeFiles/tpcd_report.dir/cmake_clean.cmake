file(REMOVE_RECURSE
  "CMakeFiles/tpcd_report.dir/tpcd_report.cc.o"
  "CMakeFiles/tpcd_report.dir/tpcd_report.cc.o.d"
  "tpcd_report"
  "tpcd_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcd_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
