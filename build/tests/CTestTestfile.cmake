# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/agg_test[1]_include.cmake")
include("/root/repo/build/tests/grouping_set_test[1]_include.cmake")
include("/root/repo/build/tests/cube_operator_test[1]_include.cmake")
include("/root/repo/build/tests/cube_internal_test[1]_include.cmake")
include("/root/repo/build/tests/cube_property_test[1]_include.cmake")
include("/root/repo/build/tests/materialized_cube_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/olap_test[1]_include.cmake")
include("/root/repo/build/tests/persistence_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/sql_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
