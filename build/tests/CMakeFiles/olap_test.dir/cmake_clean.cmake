file(REMOVE_RECURSE
  "CMakeFiles/olap_test.dir/olap_test.cc.o"
  "CMakeFiles/olap_test.dir/olap_test.cc.o.d"
  "olap_test"
  "olap_test.pdb"
  "olap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
