# Empty dependencies file for olap_test.
# This may be replaced when dependencies are built.
