# Empty dependencies file for cube_operator_test.
# This may be replaced when dependencies are built.
