file(REMOVE_RECURSE
  "CMakeFiles/cube_operator_test.dir/cube_operator_test.cc.o"
  "CMakeFiles/cube_operator_test.dir/cube_operator_test.cc.o.d"
  "cube_operator_test"
  "cube_operator_test.pdb"
  "cube_operator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
