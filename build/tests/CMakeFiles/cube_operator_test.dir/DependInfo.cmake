
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cube_operator_test.cc" "tests/CMakeFiles/cube_operator_test.dir/cube_operator_test.cc.o" "gcc" "tests/CMakeFiles/cube_operator_test.dir/cube_operator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datacube/olap/CMakeFiles/datacube_olap.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/schema/CMakeFiles/datacube_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/sql/CMakeFiles/datacube_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/cube/CMakeFiles/datacube_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/expr/CMakeFiles/datacube_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/agg/CMakeFiles/datacube_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/workload/CMakeFiles/datacube_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/table/CMakeFiles/datacube_table.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/common/CMakeFiles/datacube_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
