# Empty dependencies file for cube_property_test.
# This may be replaced when dependencies are built.
