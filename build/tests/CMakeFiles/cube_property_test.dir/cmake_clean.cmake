file(REMOVE_RECURSE
  "CMakeFiles/cube_property_test.dir/cube_property_test.cc.o"
  "CMakeFiles/cube_property_test.dir/cube_property_test.cc.o.d"
  "cube_property_test"
  "cube_property_test.pdb"
  "cube_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
