# Empty dependencies file for materialized_cube_test.
# This may be replaced when dependencies are built.
