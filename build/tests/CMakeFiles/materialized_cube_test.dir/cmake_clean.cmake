file(REMOVE_RECURSE
  "CMakeFiles/materialized_cube_test.dir/materialized_cube_test.cc.o"
  "CMakeFiles/materialized_cube_test.dir/materialized_cube_test.cc.o.d"
  "materialized_cube_test"
  "materialized_cube_test.pdb"
  "materialized_cube_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/materialized_cube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
