file(REMOVE_RECURSE
  "CMakeFiles/cube_internal_test.dir/cube_internal_test.cc.o"
  "CMakeFiles/cube_internal_test.dir/cube_internal_test.cc.o.d"
  "cube_internal_test"
  "cube_internal_test.pdb"
  "cube_internal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_internal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
