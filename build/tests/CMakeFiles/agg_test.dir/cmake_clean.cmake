file(REMOVE_RECURSE
  "CMakeFiles/agg_test.dir/agg_test.cc.o"
  "CMakeFiles/agg_test.dir/agg_test.cc.o.d"
  "agg_test"
  "agg_test.pdb"
  "agg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
