file(REMOVE_RECURSE
  "CMakeFiles/grouping_set_test.dir/grouping_set_test.cc.o"
  "CMakeFiles/grouping_set_test.dir/grouping_set_test.cc.o.d"
  "grouping_set_test"
  "grouping_set_test.pdb"
  "grouping_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouping_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
