file(REMOVE_RECURSE
  "CMakeFiles/sql_fuzz_test.dir/sql_fuzz_test.cc.o"
  "CMakeFiles/sql_fuzz_test.dir/sql_fuzz_test.cc.o.d"
  "sql_fuzz_test"
  "sql_fuzz_test.pdb"
  "sql_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
