# Empty dependencies file for sql_fuzz_test.
# This may be replaced when dependencies are built.
