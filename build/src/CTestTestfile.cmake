# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("datacube/common")
subdirs("datacube/table")
subdirs("datacube/expr")
subdirs("datacube/agg")
subdirs("datacube/cube")
subdirs("datacube/olap")
subdirs("datacube/schema")
subdirs("datacube/sql")
subdirs("datacube/workload")
