file(REMOVE_RECURSE
  "libdatacube_cube.a"
)
