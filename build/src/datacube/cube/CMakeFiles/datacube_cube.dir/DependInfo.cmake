
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datacube/cube/array_cube.cc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/array_cube.cc.o" "gcc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/array_cube.cc.o.d"
  "/root/repo/src/datacube/cube/cube_context.cc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/cube_context.cc.o" "gcc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/cube_context.cc.o.d"
  "/root/repo/src/datacube/cube/cube_operator.cc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/cube_operator.cc.o" "gcc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/cube_operator.cc.o.d"
  "/root/repo/src/datacube/cube/from_core.cc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/from_core.cc.o" "gcc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/from_core.cc.o.d"
  "/root/repo/src/datacube/cube/grouping_set.cc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/grouping_set.cc.o" "gcc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/grouping_set.cc.o.d"
  "/root/repo/src/datacube/cube/materialized_cube.cc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/materialized_cube.cc.o" "gcc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/materialized_cube.cc.o.d"
  "/root/repo/src/datacube/cube/naive_2n.cc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/naive_2n.cc.o" "gcc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/naive_2n.cc.o.d"
  "/root/repo/src/datacube/cube/parallel.cc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/parallel.cc.o" "gcc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/parallel.cc.o.d"
  "/root/repo/src/datacube/cube/partial_cube.cc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/partial_cube.cc.o" "gcc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/partial_cube.cc.o.d"
  "/root/repo/src/datacube/cube/sort_groupby.cc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/sort_groupby.cc.o" "gcc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/sort_groupby.cc.o.d"
  "/root/repo/src/datacube/cube/sort_rollup.cc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/sort_rollup.cc.o" "gcc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/sort_rollup.cc.o.d"
  "/root/repo/src/datacube/cube/union_groupby.cc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/union_groupby.cc.o" "gcc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/union_groupby.cc.o.d"
  "/root/repo/src/datacube/cube/view_selection.cc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/view_selection.cc.o" "gcc" "src/datacube/cube/CMakeFiles/datacube_cube.dir/view_selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datacube/common/CMakeFiles/datacube_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/table/CMakeFiles/datacube_table.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/expr/CMakeFiles/datacube_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/agg/CMakeFiles/datacube_agg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
