file(REMOVE_RECURSE
  "CMakeFiles/datacube_cube.dir/array_cube.cc.o"
  "CMakeFiles/datacube_cube.dir/array_cube.cc.o.d"
  "CMakeFiles/datacube_cube.dir/cube_context.cc.o"
  "CMakeFiles/datacube_cube.dir/cube_context.cc.o.d"
  "CMakeFiles/datacube_cube.dir/cube_operator.cc.o"
  "CMakeFiles/datacube_cube.dir/cube_operator.cc.o.d"
  "CMakeFiles/datacube_cube.dir/from_core.cc.o"
  "CMakeFiles/datacube_cube.dir/from_core.cc.o.d"
  "CMakeFiles/datacube_cube.dir/grouping_set.cc.o"
  "CMakeFiles/datacube_cube.dir/grouping_set.cc.o.d"
  "CMakeFiles/datacube_cube.dir/materialized_cube.cc.o"
  "CMakeFiles/datacube_cube.dir/materialized_cube.cc.o.d"
  "CMakeFiles/datacube_cube.dir/naive_2n.cc.o"
  "CMakeFiles/datacube_cube.dir/naive_2n.cc.o.d"
  "CMakeFiles/datacube_cube.dir/parallel.cc.o"
  "CMakeFiles/datacube_cube.dir/parallel.cc.o.d"
  "CMakeFiles/datacube_cube.dir/partial_cube.cc.o"
  "CMakeFiles/datacube_cube.dir/partial_cube.cc.o.d"
  "CMakeFiles/datacube_cube.dir/sort_groupby.cc.o"
  "CMakeFiles/datacube_cube.dir/sort_groupby.cc.o.d"
  "CMakeFiles/datacube_cube.dir/sort_rollup.cc.o"
  "CMakeFiles/datacube_cube.dir/sort_rollup.cc.o.d"
  "CMakeFiles/datacube_cube.dir/union_groupby.cc.o"
  "CMakeFiles/datacube_cube.dir/union_groupby.cc.o.d"
  "CMakeFiles/datacube_cube.dir/view_selection.cc.o"
  "CMakeFiles/datacube_cube.dir/view_selection.cc.o.d"
  "libdatacube_cube.a"
  "libdatacube_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacube_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
