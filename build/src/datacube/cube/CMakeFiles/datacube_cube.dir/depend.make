# Empty dependencies file for datacube_cube.
# This may be replaced when dependencies are built.
