# CMake generated Testfile for 
# Source directory: /root/repo/src/datacube/cube
# Build directory: /root/repo/build/src/datacube/cube
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
