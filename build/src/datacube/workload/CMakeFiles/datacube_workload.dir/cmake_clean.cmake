file(REMOVE_RECURSE
  "CMakeFiles/datacube_workload.dir/benchmark_queries.cc.o"
  "CMakeFiles/datacube_workload.dir/benchmark_queries.cc.o.d"
  "CMakeFiles/datacube_workload.dir/sales.cc.o"
  "CMakeFiles/datacube_workload.dir/sales.cc.o.d"
  "CMakeFiles/datacube_workload.dir/tpcd.cc.o"
  "CMakeFiles/datacube_workload.dir/tpcd.cc.o.d"
  "CMakeFiles/datacube_workload.dir/weather.cc.o"
  "CMakeFiles/datacube_workload.dir/weather.cc.o.d"
  "libdatacube_workload.a"
  "libdatacube_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacube_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
