# Empty dependencies file for datacube_workload.
# This may be replaced when dependencies are built.
