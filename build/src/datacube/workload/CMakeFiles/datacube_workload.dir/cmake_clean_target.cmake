file(REMOVE_RECURSE
  "libdatacube_workload.a"
)
