
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datacube/workload/benchmark_queries.cc" "src/datacube/workload/CMakeFiles/datacube_workload.dir/benchmark_queries.cc.o" "gcc" "src/datacube/workload/CMakeFiles/datacube_workload.dir/benchmark_queries.cc.o.d"
  "/root/repo/src/datacube/workload/sales.cc" "src/datacube/workload/CMakeFiles/datacube_workload.dir/sales.cc.o" "gcc" "src/datacube/workload/CMakeFiles/datacube_workload.dir/sales.cc.o.d"
  "/root/repo/src/datacube/workload/tpcd.cc" "src/datacube/workload/CMakeFiles/datacube_workload.dir/tpcd.cc.o" "gcc" "src/datacube/workload/CMakeFiles/datacube_workload.dir/tpcd.cc.o.d"
  "/root/repo/src/datacube/workload/weather.cc" "src/datacube/workload/CMakeFiles/datacube_workload.dir/weather.cc.o" "gcc" "src/datacube/workload/CMakeFiles/datacube_workload.dir/weather.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datacube/common/CMakeFiles/datacube_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/table/CMakeFiles/datacube_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
