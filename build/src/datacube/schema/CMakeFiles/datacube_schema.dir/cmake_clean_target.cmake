file(REMOVE_RECURSE
  "libdatacube_schema.a"
)
