file(REMOVE_RECURSE
  "CMakeFiles/datacube_schema.dir/star.cc.o"
  "CMakeFiles/datacube_schema.dir/star.cc.o.d"
  "libdatacube_schema.a"
  "libdatacube_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacube_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
