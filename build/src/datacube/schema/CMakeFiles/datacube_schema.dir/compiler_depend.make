# Empty compiler generated dependencies file for datacube_schema.
# This may be replaced when dependencies are built.
