file(REMOVE_RECURSE
  "libdatacube_agg.a"
)
