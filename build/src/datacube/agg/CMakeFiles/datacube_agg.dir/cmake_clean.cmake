file(REMOVE_RECURSE
  "CMakeFiles/datacube_agg.dir/builtin_aggregates.cc.o"
  "CMakeFiles/datacube_agg.dir/builtin_aggregates.cc.o.d"
  "CMakeFiles/datacube_agg.dir/distinct.cc.o"
  "CMakeFiles/datacube_agg.dir/distinct.cc.o.d"
  "CMakeFiles/datacube_agg.dir/registry.cc.o"
  "CMakeFiles/datacube_agg.dir/registry.cc.o.d"
  "libdatacube_agg.a"
  "libdatacube_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacube_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
