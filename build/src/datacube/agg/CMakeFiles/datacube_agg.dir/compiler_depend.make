# Empty compiler generated dependencies file for datacube_agg.
# This may be replaced when dependencies are built.
