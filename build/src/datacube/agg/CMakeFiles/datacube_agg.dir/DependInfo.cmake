
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datacube/agg/builtin_aggregates.cc" "src/datacube/agg/CMakeFiles/datacube_agg.dir/builtin_aggregates.cc.o" "gcc" "src/datacube/agg/CMakeFiles/datacube_agg.dir/builtin_aggregates.cc.o.d"
  "/root/repo/src/datacube/agg/distinct.cc" "src/datacube/agg/CMakeFiles/datacube_agg.dir/distinct.cc.o" "gcc" "src/datacube/agg/CMakeFiles/datacube_agg.dir/distinct.cc.o.d"
  "/root/repo/src/datacube/agg/registry.cc" "src/datacube/agg/CMakeFiles/datacube_agg.dir/registry.cc.o" "gcc" "src/datacube/agg/CMakeFiles/datacube_agg.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datacube/common/CMakeFiles/datacube_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
