
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datacube/common/codec.cc" "src/datacube/common/CMakeFiles/datacube_common.dir/codec.cc.o" "gcc" "src/datacube/common/CMakeFiles/datacube_common.dir/codec.cc.o.d"
  "/root/repo/src/datacube/common/date.cc" "src/datacube/common/CMakeFiles/datacube_common.dir/date.cc.o" "gcc" "src/datacube/common/CMakeFiles/datacube_common.dir/date.cc.o.d"
  "/root/repo/src/datacube/common/status.cc" "src/datacube/common/CMakeFiles/datacube_common.dir/status.cc.o" "gcc" "src/datacube/common/CMakeFiles/datacube_common.dir/status.cc.o.d"
  "/root/repo/src/datacube/common/str_util.cc" "src/datacube/common/CMakeFiles/datacube_common.dir/str_util.cc.o" "gcc" "src/datacube/common/CMakeFiles/datacube_common.dir/str_util.cc.o.d"
  "/root/repo/src/datacube/common/value.cc" "src/datacube/common/CMakeFiles/datacube_common.dir/value.cc.o" "gcc" "src/datacube/common/CMakeFiles/datacube_common.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
