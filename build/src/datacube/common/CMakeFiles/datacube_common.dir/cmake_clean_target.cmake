file(REMOVE_RECURSE
  "libdatacube_common.a"
)
