# Empty compiler generated dependencies file for datacube_common.
# This may be replaced when dependencies are built.
