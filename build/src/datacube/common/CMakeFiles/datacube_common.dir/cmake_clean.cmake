file(REMOVE_RECURSE
  "CMakeFiles/datacube_common.dir/codec.cc.o"
  "CMakeFiles/datacube_common.dir/codec.cc.o.d"
  "CMakeFiles/datacube_common.dir/date.cc.o"
  "CMakeFiles/datacube_common.dir/date.cc.o.d"
  "CMakeFiles/datacube_common.dir/status.cc.o"
  "CMakeFiles/datacube_common.dir/status.cc.o.d"
  "CMakeFiles/datacube_common.dir/str_util.cc.o"
  "CMakeFiles/datacube_common.dir/str_util.cc.o.d"
  "CMakeFiles/datacube_common.dir/value.cc.o"
  "CMakeFiles/datacube_common.dir/value.cc.o.d"
  "libdatacube_common.a"
  "libdatacube_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacube_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
