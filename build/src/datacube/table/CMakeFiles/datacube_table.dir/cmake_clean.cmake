file(REMOVE_RECURSE
  "CMakeFiles/datacube_table.dir/column.cc.o"
  "CMakeFiles/datacube_table.dir/column.cc.o.d"
  "CMakeFiles/datacube_table.dir/csv.cc.o"
  "CMakeFiles/datacube_table.dir/csv.cc.o.d"
  "CMakeFiles/datacube_table.dir/print.cc.o"
  "CMakeFiles/datacube_table.dir/print.cc.o.d"
  "CMakeFiles/datacube_table.dir/schema.cc.o"
  "CMakeFiles/datacube_table.dir/schema.cc.o.d"
  "CMakeFiles/datacube_table.dir/sort.cc.o"
  "CMakeFiles/datacube_table.dir/sort.cc.o.d"
  "CMakeFiles/datacube_table.dir/table.cc.o"
  "CMakeFiles/datacube_table.dir/table.cc.o.d"
  "libdatacube_table.a"
  "libdatacube_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacube_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
