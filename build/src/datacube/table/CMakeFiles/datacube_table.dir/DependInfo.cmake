
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datacube/table/column.cc" "src/datacube/table/CMakeFiles/datacube_table.dir/column.cc.o" "gcc" "src/datacube/table/CMakeFiles/datacube_table.dir/column.cc.o.d"
  "/root/repo/src/datacube/table/csv.cc" "src/datacube/table/CMakeFiles/datacube_table.dir/csv.cc.o" "gcc" "src/datacube/table/CMakeFiles/datacube_table.dir/csv.cc.o.d"
  "/root/repo/src/datacube/table/print.cc" "src/datacube/table/CMakeFiles/datacube_table.dir/print.cc.o" "gcc" "src/datacube/table/CMakeFiles/datacube_table.dir/print.cc.o.d"
  "/root/repo/src/datacube/table/schema.cc" "src/datacube/table/CMakeFiles/datacube_table.dir/schema.cc.o" "gcc" "src/datacube/table/CMakeFiles/datacube_table.dir/schema.cc.o.d"
  "/root/repo/src/datacube/table/sort.cc" "src/datacube/table/CMakeFiles/datacube_table.dir/sort.cc.o" "gcc" "src/datacube/table/CMakeFiles/datacube_table.dir/sort.cc.o.d"
  "/root/repo/src/datacube/table/table.cc" "src/datacube/table/CMakeFiles/datacube_table.dir/table.cc.o" "gcc" "src/datacube/table/CMakeFiles/datacube_table.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datacube/common/CMakeFiles/datacube_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
