file(REMOVE_RECURSE
  "libdatacube_table.a"
)
