# Empty compiler generated dependencies file for datacube_table.
# This may be replaced when dependencies are built.
