# Empty dependencies file for datacube_sql.
# This may be replaced when dependencies are built.
