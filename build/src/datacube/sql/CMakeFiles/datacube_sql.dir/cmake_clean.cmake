file(REMOVE_RECURSE
  "CMakeFiles/datacube_sql.dir/catalog.cc.o"
  "CMakeFiles/datacube_sql.dir/catalog.cc.o.d"
  "CMakeFiles/datacube_sql.dir/engine.cc.o"
  "CMakeFiles/datacube_sql.dir/engine.cc.o.d"
  "CMakeFiles/datacube_sql.dir/lexer.cc.o"
  "CMakeFiles/datacube_sql.dir/lexer.cc.o.d"
  "CMakeFiles/datacube_sql.dir/parser.cc.o"
  "CMakeFiles/datacube_sql.dir/parser.cc.o.d"
  "libdatacube_sql.a"
  "libdatacube_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacube_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
