file(REMOVE_RECURSE
  "libdatacube_sql.a"
)
