file(REMOVE_RECURSE
  "CMakeFiles/datacube_expr.dir/builtin_scalars.cc.o"
  "CMakeFiles/datacube_expr.dir/builtin_scalars.cc.o.d"
  "CMakeFiles/datacube_expr.dir/expr.cc.o"
  "CMakeFiles/datacube_expr.dir/expr.cc.o.d"
  "CMakeFiles/datacube_expr.dir/scalar_function.cc.o"
  "CMakeFiles/datacube_expr.dir/scalar_function.cc.o.d"
  "libdatacube_expr.a"
  "libdatacube_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacube_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
