# Empty compiler generated dependencies file for datacube_expr.
# This may be replaced when dependencies are built.
