
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datacube/expr/builtin_scalars.cc" "src/datacube/expr/CMakeFiles/datacube_expr.dir/builtin_scalars.cc.o" "gcc" "src/datacube/expr/CMakeFiles/datacube_expr.dir/builtin_scalars.cc.o.d"
  "/root/repo/src/datacube/expr/expr.cc" "src/datacube/expr/CMakeFiles/datacube_expr.dir/expr.cc.o" "gcc" "src/datacube/expr/CMakeFiles/datacube_expr.dir/expr.cc.o.d"
  "/root/repo/src/datacube/expr/scalar_function.cc" "src/datacube/expr/CMakeFiles/datacube_expr.dir/scalar_function.cc.o" "gcc" "src/datacube/expr/CMakeFiles/datacube_expr.dir/scalar_function.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datacube/common/CMakeFiles/datacube_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/table/CMakeFiles/datacube_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
