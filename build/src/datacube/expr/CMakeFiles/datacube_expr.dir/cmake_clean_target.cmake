file(REMOVE_RECURSE
  "libdatacube_expr.a"
)
