# CMake generated Testfile for 
# Source directory: /root/repo/src/datacube/olap
# Build directory: /root/repo/build/src/datacube/olap
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
