file(REMOVE_RECURSE
  "CMakeFiles/datacube_olap.dir/crosstab.cc.o"
  "CMakeFiles/datacube_olap.dir/crosstab.cc.o.d"
  "CMakeFiles/datacube_olap.dir/pivot_table.cc.o"
  "CMakeFiles/datacube_olap.dir/pivot_table.cc.o.d"
  "CMakeFiles/datacube_olap.dir/reports.cc.o"
  "CMakeFiles/datacube_olap.dir/reports.cc.o.d"
  "CMakeFiles/datacube_olap.dir/window.cc.o"
  "CMakeFiles/datacube_olap.dir/window.cc.o.d"
  "libdatacube_olap.a"
  "libdatacube_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacube_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
