file(REMOVE_RECURSE
  "libdatacube_olap.a"
)
