# Empty dependencies file for datacube_olap.
# This may be replaced when dependencies are built.
