
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datacube/olap/crosstab.cc" "src/datacube/olap/CMakeFiles/datacube_olap.dir/crosstab.cc.o" "gcc" "src/datacube/olap/CMakeFiles/datacube_olap.dir/crosstab.cc.o.d"
  "/root/repo/src/datacube/olap/pivot_table.cc" "src/datacube/olap/CMakeFiles/datacube_olap.dir/pivot_table.cc.o" "gcc" "src/datacube/olap/CMakeFiles/datacube_olap.dir/pivot_table.cc.o.d"
  "/root/repo/src/datacube/olap/reports.cc" "src/datacube/olap/CMakeFiles/datacube_olap.dir/reports.cc.o" "gcc" "src/datacube/olap/CMakeFiles/datacube_olap.dir/reports.cc.o.d"
  "/root/repo/src/datacube/olap/window.cc" "src/datacube/olap/CMakeFiles/datacube_olap.dir/window.cc.o" "gcc" "src/datacube/olap/CMakeFiles/datacube_olap.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datacube/common/CMakeFiles/datacube_common.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/table/CMakeFiles/datacube_table.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/cube/CMakeFiles/datacube_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/expr/CMakeFiles/datacube_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/datacube/agg/CMakeFiles/datacube_agg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
