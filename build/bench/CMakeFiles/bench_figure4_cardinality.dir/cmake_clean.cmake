file(REMOVE_RECURSE
  "CMakeFiles/bench_figure4_cardinality.dir/bench_figure4_cardinality.cc.o"
  "CMakeFiles/bench_figure4_cardinality.dir/bench_figure4_cardinality.cc.o.d"
  "bench_figure4_cardinality"
  "bench_figure4_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure4_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
