# Empty dependencies file for bench_figure4_cardinality.
# This may be replaced when dependencies are built.
