# Empty compiler generated dependencies file for bench_tpcd_6d.
# This may be replaced when dependencies are built.
