file(REMOVE_RECURSE
  "CMakeFiles/bench_tpcd_6d.dir/bench_tpcd_6d.cc.o"
  "CMakeFiles/bench_tpcd_6d.dir/bench_tpcd_6d.cc.o.d"
  "bench_tpcd_6d"
  "bench_tpcd_6d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpcd_6d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
