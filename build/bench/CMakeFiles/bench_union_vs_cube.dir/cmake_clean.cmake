file(REMOVE_RECURSE
  "CMakeFiles/bench_union_vs_cube.dir/bench_union_vs_cube.cc.o"
  "CMakeFiles/bench_union_vs_cube.dir/bench_union_vs_cube.cc.o.d"
  "bench_union_vs_cube"
  "bench_union_vs_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_union_vs_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
