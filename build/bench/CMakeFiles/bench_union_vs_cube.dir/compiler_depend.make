# Empty compiler generated dependencies file for bench_union_vs_cube.
# This may be replaced when dependencies are built.
