file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_benchmark_survey.dir/bench_table2_benchmark_survey.cc.o"
  "CMakeFiles/bench_table2_benchmark_survey.dir/bench_table2_benchmark_survey.cc.o.d"
  "bench_table2_benchmark_survey"
  "bench_table2_benchmark_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_benchmark_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
