# Empty dependencies file for bench_table2_benchmark_survey.
# This may be replaced when dependencies are built.
