file(REMOVE_RECURSE
  "CMakeFiles/bench_2n_vs_core.dir/bench_2n_vs_core.cc.o"
  "CMakeFiles/bench_2n_vs_core.dir/bench_2n_vs_core.cc.o.d"
  "bench_2n_vs_core"
  "bench_2n_vs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_2n_vs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
