# Empty compiler generated dependencies file for bench_2n_vs_core.
# This may be replaced when dependencies are built.
