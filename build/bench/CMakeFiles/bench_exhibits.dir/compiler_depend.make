# Empty compiler generated dependencies file for bench_exhibits.
# This may be replaced when dependencies are built.
