file(REMOVE_RECURSE
  "CMakeFiles/bench_exhibits.dir/bench_exhibits.cc.o"
  "CMakeFiles/bench_exhibits.dir/bench_exhibits.cc.o.d"
  "bench_exhibits"
  "bench_exhibits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exhibits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
