# Empty compiler generated dependencies file for bench_rollup_vs_cube.
# This may be replaced when dependencies are built.
