file(REMOVE_RECURSE
  "CMakeFiles/bench_rollup_vs_cube.dir/bench_rollup_vs_cube.cc.o"
  "CMakeFiles/bench_rollup_vs_cube.dir/bench_rollup_vs_cube.cc.o.d"
  "bench_rollup_vs_cube"
  "bench_rollup_vs_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rollup_vs_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
