# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_rollup_vs_cube.
