file(REMOVE_RECURSE
  "CMakeFiles/bench_view_selection.dir/bench_view_selection.cc.o"
  "CMakeFiles/bench_view_selection.dir/bench_view_selection.cc.o.d"
  "bench_view_selection"
  "bench_view_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_view_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
