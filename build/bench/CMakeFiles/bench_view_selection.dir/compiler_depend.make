# Empty compiler generated dependencies file for bench_view_selection.
# This may be replaced when dependencies are built.
