file(REMOVE_RECURSE
  "CMakeFiles/bench_sparse_vs_dense.dir/bench_sparse_vs_dense.cc.o"
  "CMakeFiles/bench_sparse_vs_dense.dir/bench_sparse_vs_dense.cc.o.d"
  "bench_sparse_vs_dense"
  "bench_sparse_vs_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sparse_vs_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
