# Empty compiler generated dependencies file for bench_sparse_vs_dense.
# This may be replaced when dependencies are built.
