file(REMOVE_RECURSE
  "CMakeFiles/bench_figure5_compound.dir/bench_figure5_compound.cc.o"
  "CMakeFiles/bench_figure5_compound.dir/bench_figure5_compound.cc.o.d"
  "bench_figure5_compound"
  "bench_figure5_compound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure5_compound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
