# Empty compiler generated dependencies file for bench_figure5_compound.
# This may be replaced when dependencies are built.
