file(REMOVE_RECURSE
  "CMakeFiles/bench_uda_overhead.dir/bench_uda_overhead.cc.o"
  "CMakeFiles/bench_uda_overhead.dir/bench_uda_overhead.cc.o.d"
  "bench_uda_overhead"
  "bench_uda_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uda_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
