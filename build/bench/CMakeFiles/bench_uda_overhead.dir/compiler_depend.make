# Empty compiler generated dependencies file for bench_uda_overhead.
# This may be replaced when dependencies are built.
