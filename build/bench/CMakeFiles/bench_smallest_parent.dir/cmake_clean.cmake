file(REMOVE_RECURSE
  "CMakeFiles/bench_smallest_parent.dir/bench_smallest_parent.cc.o"
  "CMakeFiles/bench_smallest_parent.dir/bench_smallest_parent.cc.o.d"
  "bench_smallest_parent"
  "bench_smallest_parent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smallest_parent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
