# Empty dependencies file for bench_smallest_parent.
# This may be replaced when dependencies are built.
