file(REMOVE_RECURSE
  "CMakeFiles/bench_aggregate_classes.dir/bench_aggregate_classes.cc.o"
  "CMakeFiles/bench_aggregate_classes.dir/bench_aggregate_classes.cc.o.d"
  "bench_aggregate_classes"
  "bench_aggregate_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregate_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
