# Empty compiler generated dependencies file for bench_aggregate_classes.
# This may be replaced when dependencies are built.
