// The paper's headline Section 2 scenario on a TPC-D-like workload:
//
//   "A six dimension cross-tab requires a 64-way union of 64 different
//    GROUP BY operators to build the underlying representation. ... On most
//    SQL systems this will result in 64 scans of the data, 64 sorts or
//    hashes, and a long wait."
//
// Runs the 6-dimension cube over a lineitem-shaped table both ways (the
// 64-scan union and the single-scan CUBE operator), plus the Q1-like
// pricing summary through the SQL front end, timing the paper's exact
// query shapes.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datacube/sql/engine.h"
#include "datacube/workload/tpcd.h"

namespace {

using namespace datacube;
using bench_util::Must;
using bench_util::WithAlgorithm;

constexpr size_t kRows = 60000;

Table Lineitem() {
  return Must(GenerateLineitem({.num_rows = kRows, .seed = 7}), "lineitem");
}

std::vector<GroupExpr> SixDims() {
  return {GroupCol("returnflag"), GroupCol("linestatus"),
          GroupCol("shipmode"),   GroupCol("priority"),
          GroupCol("nation"),     GroupCol("shipyear")};
}

void Run6D(benchmark::State& state, CubeAlgorithm algorithm) {
  Table t = Lineitem();
  for (auto _ : state) {
    CubeResult cube =
        Must(Cube(t, SixDims(), {Agg("sum", "extendedprice", "revenue")},
                  WithAlgorithm(algorithm)),
             "cube");
    benchmark::DoNotOptimize(cube.table);
    state.counters["input_scans"] =
        static_cast<double>(cube.stats.input_scans);
    state.counters["cells"] = static_cast<double>(cube.stats.output_cells);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}

void BM_SixDim_64WayUnion(benchmark::State& state) {
  Run6D(state, CubeAlgorithm::kUnionGroupBy);
}
void BM_SixDim_CubeOperator(benchmark::State& state) {
  Run6D(state, CubeAlgorithm::kFromCore);
}

void BM_Q1PricingSummaryViaSql(benchmark::State& state) {
  sql::Catalog catalog;
  if (!catalog.Register("lineitem", Lineitem()).ok()) std::abort();
  const std::string query =
      "SELECT returnflag, linestatus, "
      "SUM(quantity) AS sum_qty, "
      "SUM(extendedprice) AS sum_base_price, "
      "AVG(quantity) AS avg_qty, "
      "AVG(extendedprice) AS avg_price, "
      "AVG(discount) AS avg_disc, "
      "COUNT(*) AS count_order "
      "FROM lineitem WHERE quantity < 45 "
      "GROUP BY returnflag, linestatus "
      "ORDER BY 1, 2";
  for (auto _ : state) {
    Result<Table> t = sql::ExecuteSql(query, catalog);
    if (!t.ok()) std::abort();
    benchmark::DoNotOptimize(*t);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}

void BM_Q1WithRollupViaSql(benchmark::State& state) {
  // The paper's improvement on Q1-style reports: ask for the sub-totals in
  // the same pass.
  sql::Catalog catalog;
  if (!catalog.Register("lineitem", Lineitem()).ok()) std::abort();
  const std::string query =
      "SELECT returnflag, linestatus, SUM(extendedprice) AS revenue "
      "FROM lineitem GROUP BY ROLLUP returnflag, linestatus";
  for (auto _ : state) {
    Result<Table> t = sql::ExecuteSql(query, catalog);
    if (!t.ok()) std::abort();
    benchmark::DoNotOptimize(*t);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kRows));
}

BENCHMARK(BM_SixDim_64WayUnion)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SixDim_CubeOperator)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Q1PricingSummaryViaSql)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Q1WithRollupViaSql)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::fprintf(
      stderr,
      "Section 2 on TPC-D shapes: the 6-dim cube as a 64-way union (64\n"
      "input scans) vs the CUBE operator (1 scan + lattice merges), plus\n"
      "Q1-like aggregation through the SQL front end. %zu-row lineitem.\n\n",
      kRows);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}

