// Figure 5 / Section 3.1: the compound GROUP BY g..., ROLLUP r..., CUBE c...
// algebra. The number of grouping sets is 1 x (r+1) x 2^c, so the answer's
// size and cost sit between a plain GROUP BY and a full cube.
//
// Verifies the set-count identity across shapes and times the compound
// operator, including the paper's Figure 5 shape (1 group-by column, a
// 3-level time rollup, a 2-column cube).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace datacube;
using bench_util::Must;

CubeSpec CompoundSpec(size_t g, size_t r, size_t c) {
  CubeSpec spec;
  size_t d = 0;
  for (size_t i = 0; i < g; ++i) {
    spec.group_by.push_back(GroupCol("d" + std::to_string(d++)));
  }
  for (size_t i = 0; i < r; ++i) {
    spec.rollup.push_back(GroupCol("d" + std::to_string(d++)));
  }
  for (size_t i = 0; i < c; ++i) {
    spec.cube.push_back(GroupCol("d" + std::to_string(d++)));
  }
  spec.aggregates = {Agg("sum", "x", "s")};
  return spec;
}

int PrintSetCounts() {
  std::printf("grouping sets = 1 x (r+1) x 2^c\n");
  std::printf("%3s %3s %3s %10s %10s\n", "g", "r", "c", "sets", "formula");
  int failures = 0;
  struct Shape {
    size_t g, r, c;
  };
  for (Shape s : {Shape{1, 0, 0}, Shape{0, 3, 0}, Shape{0, 0, 3},
                  Shape{1, 2, 2}, Shape{1, 3, 2}, Shape{2, 2, 3}}) {
    CubeSpec spec = CompoundSpec(s.g, s.r, s.c);
    size_t sets = spec.GroupingSets().size();
    size_t formula = (s.r + 1) * (1ULL << s.c);
    std::printf("%3zu %3zu %3zu %10zu %10zu\n", s.g, s.r, s.c, sets, formula);
    if (sets != formula) ++failures;
  }
  std::printf("%s\n\n", failures == 0 ? "identity holds" : "MISMATCH");
  return failures;
}

void RunShape(benchmark::State& state, size_t g, size_t r, size_t c) {
  CubeInputOptions input;
  input.num_rows = 30000;
  input.num_dims = g + r + c;
  input.cardinality = 6;
  Table t = Must(GenerateCubeInput(input), "input");
  CubeSpec spec = CompoundSpec(g, r, c);
  CubeOptions options;
  options.sort_result = false;
  for (auto _ : state) {
    CubeResult cube = Must(ExecuteCube(t, spec, options), "cube");
    benchmark::DoNotOptimize(cube.table);
    state.counters["sets"] = static_cast<double>(spec.GroupingSets().size());
    state.counters["cells"] = static_cast<double>(cube.stats.output_cells);
  }
}

void BM_PlainGroupBy(benchmark::State& state) { RunShape(state, 5, 0, 0); }
void BM_Rollup5(benchmark::State& state) { RunShape(state, 0, 5, 0); }
void BM_Figure5Shape(benchmark::State& state) { RunShape(state, 1, 3, 2); }
void BM_FullCube5(benchmark::State& state) { RunShape(state, 0, 0, 5); }

BENCHMARK(BM_PlainGroupBy)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Rollup5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Figure5Shape)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullCube5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  int failures = PrintSetCounts();
  std::printf(
      "Figure 5: GROUP BY Manufacturer, ROLLUP Year, Month, Day, CUBE\n"
      "Color, Model — a 1 x 4 x 4 = 16-set compound. All shapes below run\n"
      "over the same 30k-row, 6-dim input.\n\n");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return failures == 0 ? 0 : 1;
}
