#!/usr/bin/env bash
# Runs every benchmark binary with machine-readable output.
#
# For each google-benchmark binary this writes
#   <out_dir>/BENCH_<name>.json          google-benchmark JSON results
#   <out_dir>/BENCH_<name>.txt           the binary's human-readable stdout
#                                        (exhibit tables, claim banners)
#   <out_dir>/BENCH_<name>.metrics.json  engine metrics snapshot (the /varz
#                                        JSON view) taken after the run
# bench_exhibits has no google-benchmark timings (it prints the paper's
# tables), so it only produces the .txt capture.
#
# Usage: bench/run_all.sh [build_dir] [out_dir] [extra benchmark args...]
#   build_dir  defaults to "build"
#   out_dir    defaults to "."
# Extra args are forwarded to every benchmark binary, e.g.
#   bench/run_all.sh build . --benchmark_min_time=0.1s
#   bench/run_all.sh build . --benchmark_filter=BM_FromCore
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
if [ "$#" -ge 2 ]; then shift 2; elif [ "$#" -ge 1 ]; then shift 1; fi

BENCH_DIR="$BUILD_DIR/bench"
if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found; build first (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi
mkdir -p "$OUT_DIR"

GBENCH_BINARIES=(
  bench_table2_benchmark_survey
  bench_figure4_cardinality
  bench_figure5_compound
  bench_union_vs_cube
  bench_2n_vs_core
  bench_aggregate_classes
  bench_rollup_vs_cube
  bench_sparse_vs_dense
  bench_parallel_cube
  bench_parallel_scaling
  bench_smallest_parent
  bench_maintenance
  bench_partitioned_ingest
  bench_uda_overhead
  bench_tpcd_6d
  bench_hash_cube
  bench_view_selection
  bench_lattice_selection
)

failures=0

echo "== bench_exhibits (tables only)"
if ! "$BENCH_DIR/bench_exhibits" > "$OUT_DIR/BENCH_exhibits.txt"; then
  echo "   FAILED: bench_exhibits" >&2
  failures=$((failures + 1))
fi

for name in "${GBENCH_BINARIES[@]}"; do
  echo "== $name"
  if ! DATACUBE_METRICS_SNAPSHOT="$OUT_DIR/BENCH_${name#bench_}.metrics.json" \
      "$BENCH_DIR/$name" \
      --benchmark_out="$OUT_DIR/BENCH_${name#bench_}.json" \
      --benchmark_out_format=json \
      "$@" > "$OUT_DIR/BENCH_${name#bench_}.txt"; then
    echo "   FAILED: $name" >&2
    failures=$((failures + 1))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "$failures benchmark binaries failed" >&2
  exit 1
fi
echo "wrote BENCH_*.json / BENCH_*.txt to $OUT_DIR"
