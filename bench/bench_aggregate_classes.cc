// Section 5's trichotomy in practice: cubes of distributive functions
// (SUM/MIN/MAX/COUNT) and algebraic functions (AVG/VAR: fixed-size
// scratchpads folded with Iter_super) compute from the core in one scan;
// holistic functions (MEDIAN) have no constant-size scratchpad — "we know of
// no more efficient way of computing super-aggregates of holistic functions
// than the 2^N-algorithm", so the planner recomputes every grouping set from
// base data.
//
// Expected shape: distributive ~= algebraic << holistic, with the holistic
// gap widening as 2^N grows.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace datacube;
using bench_util::Dims;
using bench_util::Must;

Table Input(size_t n, size_t rows) {
  CubeInputOptions options;
  options.num_rows = rows;
  options.num_dims = n;
  options.cardinality = 8;
  return Must(GenerateCubeInput(options), "input");
}

void RunWith(benchmark::State& state, std::vector<AggregateSpec> aggs) {
  size_t n = static_cast<size_t>(state.range(0));
  Table t = Input(n, 20000);
  CubeOptions options;  // kAuto picks the best strategy per class
  options.sort_result = false;
  for (auto _ : state) {
    CubeResult cube = Must(Cube(t, Dims(n), aggs, options), "cube");
    benchmark::DoNotOptimize(cube.table);
    state.counters["input_scans"] =
        static_cast<double>(cube.stats.input_scans);
  }
}

void BM_Distributive_Sum(benchmark::State& state) {
  RunWith(state, {Agg("sum", "x", "s"), Agg("min", "x", "lo"),
                  Agg("max", "x", "hi")});
}
void BM_Algebraic_AvgVar(benchmark::State& state) {
  RunWith(state, {Agg("avg", "x", "a"), Agg("var_pop", "x", "v")});
}
void BM_Holistic_Median(benchmark::State& state) {
  RunWith(state, {Agg("median", "x", "med")});
}
void BM_Holistic_MedianPlusSum(benchmark::State& state) {
  // One holistic aggregate drags the whole aggregate list onto the
  // from-base path.
  RunWith(state, {Agg("median", "x", "med"), Agg("sum", "x", "s")});
}

BENCHMARK(BM_Distributive_Sum)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Algebraic_AvgVar)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Holistic_Median)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Holistic_MedianPlusSum)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DATACUBE_BENCH_MAIN(
    "Section 5 trichotomy: distributive and algebraic cubes compute from\n"
      "the core (input_scans ~ 1); holistic cubes fall back to per-set\n"
      "scans (input_scans = 2^N). arg: N dims over 20k rows.\n\n")

