// Section 3/5 on ROLLUP vs CUBE:
//
//  * Output size — "the ALL value adds one extra value to each dimension
//    ... Π(C_i+1) [cells]. By comparison, an N-dimensional roll-up will add
//    only N records to the answer set" (per group prefix): rollup output is
//    the core plus a prefix chain, cube output is multiplicative.
//  * Cost — "the basic technique for computing a ROLLUP is to sort the
//    table on the aggregating attributes"; the sorted scan pipelines all
//    sub-totals in one pass, and the result arrives already ordered for the
//    drill-down report.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace datacube;
using bench_util::Dims;
using bench_util::Must;
using bench_util::WithAlgorithm;

Table Input(size_t n) {
  CubeInputOptions options;
  options.num_rows = 30000;
  options.num_dims = n;
  options.cardinality = 10;
  return Must(GenerateCubeInput(options), "input");
}

void BM_RollupSorted(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Table t = Input(n);
  for (auto _ : state) {
    CubeResult r = Must(Rollup(t, Dims(n), {Agg("sum", "x", "s")},
                               WithAlgorithm(CubeAlgorithm::kSortRollup)),
                        "rollup");
    benchmark::DoNotOptimize(r.table);
    state.counters["cells"] = static_cast<double>(r.stats.output_cells);
  }
}

void BM_RollupHashed(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Table t = Input(n);
  for (auto _ : state) {
    CubeResult r = Must(Rollup(t, Dims(n), {Agg("sum", "x", "s")},
                               WithAlgorithm(CubeAlgorithm::kFromCore)),
                        "rollup");
    benchmark::DoNotOptimize(r.table);
    state.counters["cells"] = static_cast<double>(r.stats.output_cells);
  }
}

void BM_FullCube(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Table t = Input(n);
  for (auto _ : state) {
    CubeResult r = Must(Cube(t, Dims(n), {Agg("sum", "x", "s")},
                             WithAlgorithm(CubeAlgorithm::kFromCore)),
                        "cube");
    benchmark::DoNotOptimize(r.table);
    state.counters["cells"] = static_cast<double>(r.stats.output_cells);
  }
}

BENCHMARK(BM_RollupSorted)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RollupHashed)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FullCube)->DenseRange(2, 6)->Unit(benchmark::kMillisecond);

}  // namespace

DATACUBE_BENCH_MAIN(
    "ROLLUP output grows additively (prefix chain), CUBE multiplicatively\n"
      "(power set): compare the `cells` counters as N rises. Sort-based\n"
      "rollup pipelines all sub-totals in one sorted scan. arg: N dims.\n\n")

