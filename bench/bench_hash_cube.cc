// The hash-aggregation kernel at scale: 1M-row inputs pushed through the
// hash GROUP BY core and the from-core cube cascade. This is the workload
// the columnar execution core (encoded keys + flat table + fixed-slot
// states) is measured against; the distributive/algebraic aggregate mix
// keeps every state inline-eligible so the kernel, not the aggregate
// logic, dominates.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace datacube;
using bench_util::Dims;
using bench_util::Must;
using bench_util::WithAlgorithm;

Table MillionRows(size_t num_dims, size_t cardinality) {
  CubeInputOptions options;
  options.num_rows = 1'000'000;
  options.num_dims = num_dims;
  options.cardinality = cardinality;
  options.seed = 13;
  return Must(GenerateCubeInput(options), "input");
}

std::vector<AggregateSpec> MixedAggs() {
  return {Agg("sum", "x", "sum_x"), CountStar("n"), Agg("avg", "y", "avg_y"),
          Agg("min", "x", "min_x")};
}

// Plain hash GROUP BY over all dims: one flat-table build, no cascade.
void BM_HashGroupBy_1M(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t card = static_cast<size_t>(state.range(1));
  Table t = MillionRows(n, card);
  for (auto _ : state) {
    CubeResult r = Must(GroupBy(t, Dims(n), MixedAggs(),
                                WithAlgorithm(CubeAlgorithm::kFromCore)),
                        "group by");
    benchmark::DoNotOptimize(r.table);
    state.counters["cells"] = static_cast<double>(r.stats.output_cells);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * 1'000'000));
}

// Full cube from the hashed core: the Section 5 hash strategy end to end.
void BM_HashCube_1M(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t card = static_cast<size_t>(state.range(1));
  Table t = MillionRows(n, card);
  for (auto _ : state) {
    CubeResult r = Must(Cube(t, Dims(n), MixedAggs(),
                             WithAlgorithm(CubeAlgorithm::kFromCore)),
                        "cube");
    benchmark::DoNotOptimize(r.table);
    state.counters["cells"] = static_cast<double>(r.stats.output_cells);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * 1'000'000));
}

// The same cube with the multi-threaded scan (per-thread tables merged by
// key), exercising the partial-merge path at scale.
void BM_HashCube_1M_Parallel(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t card = static_cast<size_t>(state.range(1));
  Table t = MillionRows(n, card);
  CubeOptions options;
  options.sort_result = false;
  options.num_threads = 4;
  for (auto _ : state) {
    CubeResult r = Must(Cube(t, Dims(n), MixedAggs(), options), "cube");
    benchmark::DoNotOptimize(r.table);
    state.counters["cells"] = static_cast<double>(r.stats.output_cells);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * 1'000'000));
}

BENCHMARK(BM_HashGroupBy_1M)
    ->Args({4, 8})
    ->Args({6, 8})
    ->Args({4, 64})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HashCube_1M)
    ->Args({4, 8})
    ->Args({6, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HashCube_1M_Parallel)
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

DATACUBE_BENCH_MAIN(
    "Hash aggregation kernel at 1M rows: plain hash GROUP BY, the\n"
    "from-core cube cascade, and the parallel scan. args: {N dims,\n"
    "per-dim cardinality}; sum/count/avg/min keep all states\n"
    "distributive/algebraic.\n\n")
