// Regenerates every worked example in the paper — Tables 1, 3.a, 3.b, 4,
// 5.a, 5.b, 6.a, 6.b and 7 and Figure 4's headline numbers — from this
// library's operators, annotated with the values the paper prints so the
// reproduction can be eyeballed. (The paper's exhibits are worked examples,
// not timings; the performance claims live in the other bench binaries.)

#include <iostream>

#include "datacube/cube/cube_operator.h"
#include "datacube/olap/crosstab.h"
#include "datacube/olap/reports.h"
#include "datacube/table/print.h"
#include "datacube/table/sort.h"
#include "datacube/workload/sales.h"
#include "datacube/workload/weather.h"

namespace {

using namespace datacube;

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  std::cout << (ok ? "  [ok] " : "  [MISMATCH] ") << what << "\n";
  if (!ok) ++g_failures;
}

Value Find(const Table& t, const std::vector<Value>& key, size_t value_col) {
  for (size_t r = 0; r < t.num_rows(); ++r) {
    bool match = true;
    for (size_t k = 0; k < key.size() && match; ++k) {
      match = t.GetValue(r, k) == key[k];
    }
    if (match) return t.GetValue(r, value_col);
  }
  return Value::Null();
}

Table ChevySlice(const Table& sales) {
  std::vector<bool> mask(sales.num_rows());
  for (size_t r = 0; r < sales.num_rows(); ++r) {
    mask[r] = sales.GetValue(r, 0) == Value::String("Chevy");
  }
  return sales.FilterRows(mask).value();
}

}  // namespace

int main() {
  Table sales = Table3SalesTable().value();
  Table chevy = ChevySlice(sales);
  Table fig4 = Figure4SalesTable().value();

  // ------------------------------------------------------------ Table 1
  std::cout << "================ Table 1: Weather =================\n";
  Table weather = GenerateWeather({.num_rows = 5, .num_days = 7, .seed = 1})
                      .value();
  std::cout << FormatTable(weather)
            << "(synthetic Table 1-shaped observations)\n\n";

  // --------------------------------------------------------- Figure 4
  std::cout << "=============== Figure 4: the 3D cube ===============\n";
  CubeResult cube =
      Cube(fig4, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "Units")})
          .value();
  std::cout << "paper: 18-row SALES table -> 3 x 4 x 4 = 48-row cube, grand "
               "total 941\n";
  Check(fig4.num_rows() == 18, "base table has 18 rows");
  Check(cube.table.num_rows() == 48, "cube has 48 rows");
  Check(Find(cube.table, {Value::All(), Value::All(), Value::All()}, 3) ==
            Value::Int64(941),
        "(ALL, ALL, ALL, 941)");
  std::cout << "\n";

  // ---------------------------------------------------------- Table 3.a
  std::cout << "=============== Table 3.a: roll-up report ===============\n";
  CubeResult rollup =
      Rollup(chevy, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
             {Agg("sum", "Units", "Sales")})
          .value();
  std::cout << FormatRollupReport(rollup.table, 3, 3).value();
  Check(Find(rollup.table,
             {Value::String("Chevy"), Value::Int64(1994), Value::All()}, 3) ==
            Value::Int64(90),
        "Sales by Model by Year (1994) = 90");
  Check(Find(rollup.table,
             {Value::String("Chevy"), Value::Int64(1995), Value::All()}, 3) ==
            Value::Int64(200),
        "Sales by Model by Year (1995) = 200");
  Check(Find(rollup.table, {Value::String("Chevy"), Value::All(), Value::All()},
             3) == Value::Int64(290),
        "Sales by Model = 290");
  std::cout << "\n";

  // ---------------------------------------------------------- Table 3.b
  std::cout << "========= Table 3.b: Date-style roll-up ==========\n";
  std::cout << FormatDateReport(rollup.table, 3, 3).value() << "\n";

  // ------------------------------------------------------------ Table 4
  std::cout << "============ Table 4: Excel-style pivot ============\n";
  CubeResult full_cube =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "Sales")})
          .value();
  CrossTabOptions pivot_options;
  pivot_options.corner_label = "Sum Sales";
  std::cout << FormatPivot(full_cube.table, 0, 1, 2, 3, pivot_options).value();
  Check(Find(full_cube.table,
             {Value::String("Chevy"), Value::Int64(1994), Value::All()}, 3) ==
            Value::Int64(90),
        "Chevy 1994 Total = 90");
  Check(Find(full_cube.table,
             {Value::String("Ford"), Value::Int64(1995), Value::All()}, 3) ==
            Value::Int64(160),
        "Ford 1995 Total = 160");
  Check(Find(full_cube.table, {Value::All(), Value::Int64(1994), Value::All()},
             3) == Value::Int64(150),
        "1994 Grand Total = 150");
  Check(Find(full_cube.table, {Value::All(), Value::All(), Value::All()}, 3) ==
            Value::Int64(510),
        "Grand Total = 510");
  std::cout << "\n";

  // ---------------------------------------------------------- Table 5.a
  std::cout << "============ Table 5.a: Sales Summary (ALL rows) ============\n";
  Table sorted_rollup =
      SortTable(rollup.table, {{0, true}, {1, true}, {2, true}}).value();
  std::cout << FormatTable(sorted_rollup) << "\n";

  // ---------------------------------------------------------- Table 5.b
  std::cout << "===== Table 5.b: rows the cube adds over the rollup =====\n";
  CubeResult chevy_cube =
      Cube(chevy, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "Units")})
          .value();
  Check(Find(chevy_cube.table,
             {Value::String("Chevy"), Value::All(), Value::String("black")},
             3) == Value::Int64(135),
        "(Chevy, ALL, black, 135)");
  Check(Find(chevy_cube.table,
             {Value::String("Chevy"), Value::All(), Value::String("white")},
             3) == Value::Int64(155),
        "(Chevy, ALL, white, 155)");
  std::cout << "\n";

  // ------------------------------------------------------- Tables 6.a/b
  std::cout << "============= Table 6.a: Chevy cross tab =============\n";
  CubeResult chevy_yc = Cube(chevy, {GroupCol("Year"), GroupCol("Color")},
                             {Agg("sum", "Units", "Units")})
                            .value();
  CrossTabOptions xtab;
  xtab.corner_label = "Chevy";
  std::cout << FormatCrossTab(chevy_yc.table, 1, 0, 2, xtab).value() << "\n";

  std::cout << "============= Table 6.b: Ford cross tab =============\n";
  std::vector<bool> ford_mask(sales.num_rows());
  for (size_t r = 0; r < sales.num_rows(); ++r) {
    ford_mask[r] = sales.GetValue(r, 0) == Value::String("Ford");
  }
  Table ford = sales.FilterRows(ford_mask).value();
  CubeResult ford_yc = Cube(ford, {GroupCol("Year"), GroupCol("Color")},
                            {Agg("sum", "Units", "Units")})
                           .value();
  xtab.corner_label = "Ford";
  std::cout << FormatCrossTab(ford_yc.table, 1, 0, 2, xtab).value();
  Check(Find(ford_yc.table, {Value::All(), Value::All()}, 2) ==
            Value::Int64(220),
        "Ford total (ALL) = 220");
  std::cout << "\n";

  // ------------------------------------------------------------ Table 7
  std::cout << "====== Table 7: decorations interact with ALL ======\n";
  Table weather_big =
      GenerateWeather({.num_rows = 400, .num_days = 4, .seed = 11}).value();
  CubeSpec spec;
  spec.cube = {GroupExpr{Expr::Call("day", {Expr::Column("Time")}), "day"},
               GroupExpr{Expr::Call("nation", {Expr::Column("Latitude"),
                                               Expr::Column("Longitude")}),
                         "nation"}};
  spec.aggregates = {Agg("max", "Temp", "max_temp")};
  spec.decorations = {
      Decoration{Expr::Call("continent",
                            {Expr::Call("nation", {Expr::Column("Latitude"),
                                                   Expr::Column("Longitude")})}),
                 "continent", /*determinant=*/0b10}};
  CubeResult t7 = ExecuteCube(weather_big, spec).value();
  std::cout << FormatTable(t7.table, {.max_rows = 12});
  bool rule_holds = true;
  for (size_t r = 0; r < t7.table.num_rows(); ++r) {
    bool nation_all = t7.table.GetValue(r, 1).is_all();
    bool continent_null = t7.table.GetValue(r, 2).is_null();
    if (nation_all != continent_null) rule_holds = false;
  }
  Check(rule_holds,
        "continent is NULL exactly where nation is ALL (Table 7 rule)");

  std::cout << "\n"
            << (g_failures == 0 ? "ALL EXHIBITS MATCH THE PAPER\n"
                                : "SOME EXHIBITS DIVERGED — see above\n");
  return g_failures == 0 ? 0 : 1;
}
