// Cost-based lattice materialization under a byte budget (Section 6's HRU
// pointer, taken to its operational end): the benefit-per-byte greedy keeps
// only the views that fit, and every other grouping set is answered by
// super-aggregating its cheapest materialized ancestor.
//
// BM_FullCube_AnswerAllSets is the unbudgeted baseline (all 2^N views
// resident) — captured as BENCH_pre_lattice.json. BM_Budgeted_AnswerAllSets
// builds the cube under a byte budget and still answers every one of the
// 2^N grouping sets — captured as BENCH_post_lattice.json, whose
// bytes_resident counter stays below budget_bytes while sets_answered
// remains the full lattice. BM_Budgeted_ExecuteCube measures the same
// rewrite inside the one-shot cube operator.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datacube/cube/partial_cube.h"
#include "datacube/cube/view_selection.h"

namespace {

using namespace datacube;
using bench_util::Dims;
using bench_util::Must;

constexpr size_t kRows = 50000;
constexpr size_t kDims = 4;
const std::vector<size_t> kCards = {20, 12, 8, 4};

Table MakeInput() {
  CubeInputOptions input;
  input.num_rows = kRows;
  input.num_dims = kDims;
  input.cardinalities = kCards;
  input.skew = 0.3;
  return Must(GenerateCubeInput(input), "input");
}

CubeSpec MakeSpec() {
  CubeSpec spec;
  spec.cube = Dims(kDims);
  spec.aggregates = {CountStar("n"), Agg("sum", "x", "sx"),
                     Agg("avg", "y", "ay")};
  return spec;
}

void AnswerAllSets(benchmark::State& state, PartialCube& cube) {
  size_t answered = 0;
  for (auto _ : state) {
    answered = 0;
    for (GroupingSet target = 0; target < (GroupingSet{1} << kDims);
         ++target) {
      Table answer = Must(cube.Query(target), "query");
      benchmark::DoNotOptimize(answer);
      ++answered;
    }
  }
  state.counters["sets_answered"] = static_cast<double>(answered);
  state.counters["views_materialized"] =
      static_cast<double>(cube.views().size());
  state.counters["bytes_resident"] =
      static_cast<double>(cube.materialized_bytes());
  state.counters["budget_bytes"] = static_cast<double>(cube.budget_bytes());
}

// Baseline: the whole 2^N lattice resident (no budget).
void BM_FullCube_AnswerAllSets(benchmark::State& state) {
  Table t = MakeInput();
  CubeSpec spec = MakeSpec();
  auto cube = Must(PartialCube::Build(t, spec, CubeSets(kDims)), "build");
  AnswerAllSets(state, *cube);
}

// Budgeted: the greedy keeps what fits under state.range(0) bytes; every
// set is still answerable (bytes_resident < budget_bytes in the output).
void BM_Budgeted_AnswerAllSets(benchmark::State& state) {
  size_t budget = static_cast<size_t>(state.range(0));
  Table t = MakeInput();
  CubeSpec spec = MakeSpec();
  auto cube = Must(PartialCube::BuildWithBudget(t, spec, budget), "build");
  AnswerAllSets(state, *cube);
}

// The same rewrite inside ExecuteCube: one shot, all 16 sets, with the
// non-materialized ones folded from their cheapest kept ancestor.
void BM_Budgeted_ExecuteCube(benchmark::State& state) {
  size_t budget = static_cast<size_t>(state.range(0));
  Table t = MakeInput();
  CubeSpec spec = MakeSpec();
  CubeOptions options;
  options.materialize_budget_bytes = budget;
  CubeStats last;
  for (auto _ : state) {
    CubeResult r = Must(ExecuteCube(t, spec, options), "execute");
    benchmark::DoNotOptimize(r.table);
    last = std::move(r.stats);
  }
  state.counters["views_materialized"] =
      static_cast<double>(last.lattice_views_materialized);
  state.counters["bytes_resident"] =
      static_cast<double>(last.lattice_bytes_materialized);
  state.counters["budget_bytes"] = static_cast<double>(budget);
  state.counters["ancestor_folds"] =
      static_cast<double>(last.lattice_ancestor_folds);
}

// Budgets bracket the real footprints (the 4-dim core is ~1.5 MiB and the
// full lattice ~2.4 MiB here), so the selection visibly tightens from
// "everything fits" down to "core plus the best few views" while
// bytes_resident stays below budget_bytes throughout.
BENCHMARK(BM_FullCube_AnswerAllSets)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Budgeted_AnswerAllSets)
    ->Arg(1600 << 10)
    ->Arg(1792 << 10)
    ->Arg(2 << 20)
    ->Arg(4 << 20)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Budgeted_ExecuteCube)
    ->Arg(1792 << 10)
    ->Arg(1 << 30)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DATACUBE_BENCH_MAIN(
    "Byte-budgeted lattice materialization: HRU benefit-per-byte selection\n"
    "with ancestor answering, vs the fully materialized lattice.\n")
