// Section 5 on physical organization: "if possible, use arrays ... to
// organize the aggregation columns in memory" (with dictionary-encoded
// values), but "it is possible that the core of the cube is sparse. In that
// case, only the non-null elements of the core and of the super-aggregates
// should be represented. This suggests hashing or a B-tree."
//
// Sweeps core density (fraction of the Π C_i cross product actually
// present): the dense array wins when the core is dense, the hash-based
// from-core strategy wins when it is sparse (the array wastes Π(C_i+1)
// allocation on holes).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace datacube;
using bench_util::Dims;
using bench_util::Must;
using bench_util::WithAlgorithm;

// density is controlled by dimension cardinality with a fixed row budget:
// rows = 40k over C^3 possible cells.
Table Input(size_t cardinality) {
  CubeInputOptions options;
  options.num_rows = 40000;
  options.num_dims = 3;
  options.cardinality = cardinality;
  return Must(GenerateCubeInput(options), "input");
}

void RunCube(benchmark::State& state, CubeAlgorithm algorithm) {
  size_t c = static_cast<size_t>(state.range(0));
  Table t = Input(c);
  double possible = static_cast<double>(c) * c * c;
  for (auto _ : state) {
    CubeResult cube = Must(Cube(t, Dims(3), {Agg("sum", "x", "s")},
                                WithAlgorithm(algorithm)),
                           "cube");
    benchmark::DoNotOptimize(cube.table);
    state.counters["cells"] = static_cast<double>(cube.stats.output_cells);
    state.counters["core_density"] =
        std::min(1.0, 40000.0 / possible);
  }
}

void BM_DenseArray(benchmark::State& state) {
  RunCube(state, CubeAlgorithm::kArrayCube);
}
void BM_HashFromCore(benchmark::State& state) {
  RunCube(state, CubeAlgorithm::kFromCore);
}

// Cardinality sweep: C = 8 (dense: 512 possible cells for 40k rows) up to
// C = 128 (sparse: 2M possible cells).
BENCHMARK(BM_DenseArray)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HashFromCore)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DATACUBE_BENCH_MAIN(
    "Section 5: dense N-d array (dictionary codes) vs hash aggregation as\n"
      "the core gets sparser. arg: per-dimension cardinality C over a fixed\n"
      "40k-row input, 3 dims; core_density = rows / C^3 (capped at 1).\n\n")

