// Table 2: "SQL Aggregates in Standard Benchmarks".
//
// The paper counts queries, aggregate functions and GROUP BY clauses in six
// standard benchmark query sets. We reproduce the table by running
// structural paraphrases of those query sets (see
// workload/benchmark_queries.cc for the substitution rationale) through this
// library's SQL parser and counting with sql::Analyze — the same code path a
// user's CUBE queries take. Also times the parser over the whole corpus.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "datacube/sql/engine.h"
#include "datacube/sql/parser.h"
#include "datacube/workload/benchmark_queries.h"

namespace {

using namespace datacube;

int PrintTable2() {
  std::printf("Table 2: SQL Aggregates in Standard Benchmarks\n");
  std::printf("%-12s  %21s  %21s  %21s\n", "", "Queries", "Aggregates",
              "GROUP BYs");
  std::printf("%-12s  %10s %10s  %10s %10s  %10s %10s\n", "Benchmark", "paper",
              "measured", "paper", "measured", "paper", "measured");
  int failures = 0;
  for (const BenchmarkSuite& suite : Table2Suites()) {
    int aggregates = 0;
    int group_bys = 0;
    int parsed = 0;
    for (const std::string& query : suite.queries) {
      Result<sql::SelectStatement> stmt = sql::ParseSelect(query);
      if (!stmt.ok()) {
        std::fprintf(stderr, "parse error in %s: %s\n  %s\n",
                     suite.name.c_str(), stmt.status().ToString().c_str(),
                     query.c_str());
        ++failures;
        continue;
      }
      ++parsed;
      sql::QueryStats stats = sql::Analyze(*stmt);
      aggregates += stats.num_aggregates;
      group_bys += stats.has_group_by ? 1 : 0;
    }
    std::printf("%-12s  %10d %10d  %10d %10d  %10d %10d\n", suite.name.c_str(),
                suite.paper_queries, parsed, suite.paper_aggregates,
                aggregates, suite.paper_group_bys, group_bys);
    if (parsed != suite.paper_queries || aggregates != suite.paper_aggregates ||
        group_bys != suite.paper_group_bys) {
      ++failures;
    }
  }
  std::printf("%s\n\n", failures == 0 ? "all rows match the paper"
                                      : "MISMATCH against the paper");
  return failures;
}

void BM_ParseCorpus(benchmark::State& state) {
  std::vector<BenchmarkSuite> suites = Table2Suites();
  size_t queries = 0;
  for (auto& suite : suites) queries += suite.queries.size();
  for (auto _ : state) {
    for (const BenchmarkSuite& suite : suites) {
      for (const std::string& query : suite.queries) {
        auto stmt = sql::ParseSelect(query);
        benchmark::DoNotOptimize(stmt);
      }
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * queries));
}
BENCHMARK(BM_ParseCorpus);

}  // namespace

int main(int argc, char** argv) {
  int failures = PrintTable2();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return failures == 0 ? 0 : 1;
}
