// Section 6's maintenance asymmetry, measured:
//
//  * INSERT into a cube is 2^N scratchpad visits for any function that is
//    distributive/algebraic for insert — including MAX, whose losing
//    inserts short-circuit ("if the new value loses one competition, then
//    it will lose in all lower dimensions").
//  * DELETE is cheap for COUNT/SUM/AVG (algebraic for delete) but
//    "max is ... holistic for DELETE": deleting a cell's incumbent maximum
//    forces a recomputation from base data.

#include <benchmark/benchmark.h>

#include <random>

#include "bench_util.h"
#include "datacube/cube/materialized_cube.h"

namespace {

using namespace datacube;
using bench_util::Dims;
using bench_util::Must;

constexpr size_t kRows = 20000;

Table Input() {
  CubeInputOptions options;
  options.num_rows = kRows;
  options.num_dims = 3;
  options.cardinality = 8;
  return Must(GenerateCubeInput(options), "input");
}

CubeSpec SpecWith(const char* fn) {
  CubeSpec spec;
  spec.cube = Dims(3);
  spec.aggregates = {Agg(fn, "x", "agg")};
  return spec;
}

std::vector<Value> RandomRow(std::mt19937_64& rng, int64_t x) {
  return {Value::String("v" + std::to_string(rng() % 8)),
          Value::String("v" + std::to_string(rng() % 8)),
          Value::String("v" + std::to_string(rng() % 8)), Value::Int64(x),
          Value::Float64(0.0)};
}

void BM_InsertSum(benchmark::State& state) {
  Table t = Input();
  auto cube = Must(MaterializedCube::Build(t, SpecWith("sum")), "build");
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    if (!cube->ApplyInsert(RandomRow(rng, 5)).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InsertMaxLosing(benchmark::State& state) {
  // Every inserted value loses: the short-circuit skips most planes.
  Table t = Input();
  auto cube = Must(MaterializedCube::Build(t, SpecWith("max")), "build");
  std::mt19937_64 rng(2);
  for (auto _ : state) {
    if (!cube->ApplyInsert(RandomRow(rng, -1)).ok()) std::abort();
  }
  state.counters["cells_skipped"] =
      static_cast<double>(cube->maintenance_stats().cells_skipped);
  state.SetItemsProcessed(state.iterations());
}

void BM_InsertMaxWinning(benchmark::State& state) {
  // Every inserted value is a new global maximum: all 2^N planes update.
  Table t = Input();
  auto cube = Must(MaterializedCube::Build(t, SpecWith("max")), "build");
  std::mt19937_64 rng(3);
  int64_t next = 1000;
  for (auto _ : state) {
    if (!cube->ApplyInsert(RandomRow(rng, ++next)).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}

// Delete benchmarks: insert a victim row, then delete it (pairs measured
// together so the cube stays in steady state).
void BM_DeleteSum(benchmark::State& state) {
  Table t = Input();
  auto cube = Must(MaterializedCube::Build(t, SpecWith("sum")), "build");
  std::mt19937_64 rng(4);
  for (auto _ : state) {
    std::vector<Value> row = RandomRow(rng, 7);
    if (!cube->ApplyInsert(row).ok()) std::abort();
    if (!cube->ApplyDelete(row).ok()) std::abort();
  }
  state.counters["recompute_rows"] = static_cast<double>(
      cube->maintenance_stats().recompute_rows_scanned);
  state.SetItemsProcessed(state.iterations());
}

void BM_DeleteMaxNonIncumbent(benchmark::State& state) {
  // The deleted value never was the max: RemoveMightChange short-circuits.
  Table t = Input();
  auto cube = Must(MaterializedCube::Build(t, SpecWith("max")), "build");
  std::mt19937_64 rng(5);
  for (auto _ : state) {
    std::vector<Value> row = RandomRow(rng, -100);
    // Insert a companion so the cell never empties on delete.
    std::vector<Value> keeper = row;
    keeper[3] = Value::Int64(-99);
    if (!cube->ApplyInsert(keeper).ok()) std::abort();
    if (!cube->ApplyInsert(row).ok()) std::abort();
    if (!cube->ApplyDelete(row).ok()) std::abort();
  }
  state.counters["recompute_rows"] = static_cast<double>(
      cube->maintenance_stats().recompute_rows_scanned);
  state.SetItemsProcessed(state.iterations());
}

void BM_DeleteMaxIncumbent(benchmark::State& state) {
  // The deleted value is the global maximum: Section 6's expensive case —
  // "then 2^N elements of the cube must be recomputed."
  Table t = Input();
  auto cube = Must(MaterializedCube::Build(t, SpecWith("max")), "build");
  std::mt19937_64 rng(6);
  int64_t next = 100000;
  for (auto _ : state) {
    std::vector<Value> row = RandomRow(rng, ++next);
    if (!cube->ApplyInsert(row).ok()) std::abort();
    if (!cube->ApplyDelete(row).ok()) std::abort();
  }
  state.counters["recompute_rows"] = static_cast<double>(
      cube->maintenance_stats().recompute_rows_scanned);
  state.counters["cells_recomputed"] = static_cast<double>(
      cube->maintenance_stats().cells_recomputed);
  state.SetItemsProcessed(state.iterations());
}

// Fixed iteration counts: maintenance mutates the cube, so unbounded
// iteration growth would make the base table (and recompute scans) grow
// across measurements.
BENCHMARK(BM_InsertSum)->Iterations(20000);
BENCHMARK(BM_InsertMaxLosing)->Iterations(20000);
BENCHMARK(BM_InsertMaxWinning)->Iterations(20000);
BENCHMARK(BM_DeleteSum)->Iterations(10000);
BENCHMARK(BM_DeleteMaxNonIncumbent)->Iterations(10000);
BENCHMARK(BM_DeleteMaxIncumbent)
    ->Iterations(200)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

DATACUBE_BENCH_MAIN(
    "Section 6: maintenance of a materialized 3-dim cube over 20k rows.\n"
      "Expected shape: inserts are cheap for every function (MAX losing\n"
      "inserts cheapest via the short-circuit); deletes are cheap for SUM\n"
      "and for non-incumbent MAX, and orders of magnitude more expensive\n"
      "when the incumbent MAX is deleted (base-data recompute).\n\n")

