// Section 5's cost analysis of the two cube strategies:
//
//   "If the base table has cardinality T, the 2^N-algorithm invokes the
//    Iter() function T x 2^N times. It is often faster to compute the
//    super-aggregates from the core GROUP BY, reducing the number of calls
//    by approximately a factor of T."
//
// Measures both algorithms, exporting Iter()/Merge() counters so the T x 2^N
// vs T + merges arithmetic is directly visible alongside wall time.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace datacube;
using bench_util::Dims;
using bench_util::Must;
using bench_util::WithAlgorithm;

void RunCube(benchmark::State& state, CubeAlgorithm algorithm) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t rows = static_cast<size_t>(state.range(1));
  CubeInputOptions options;
  options.num_rows = rows;
  options.num_dims = n;
  options.cardinality = 8;
  Table t = Must(GenerateCubeInput(options), "input");
  for (auto _ : state) {
    CubeResult cube = Must(Cube(t, Dims(n), {Agg("sum", "x", "s")},
                                WithAlgorithm(algorithm)),
                           "cube");
    benchmark::DoNotOptimize(cube.table);
    state.counters["iter_calls"] = static_cast<double>(cube.stats.iter_calls);
    state.counters["merge_calls"] =
        static_cast<double>(cube.stats.merge_calls);
    state.counters["iter_per_row"] =
        static_cast<double>(cube.stats.iter_calls) / static_cast<double>(rows);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * rows));
}

void BM_Naive2N(benchmark::State& state) {
  RunCube(state, CubeAlgorithm::kNaive2N);
}
void BM_FromCore(benchmark::State& state) {
  RunCube(state, CubeAlgorithm::kFromCore);
}
// Section 5's other core organization: sort instead of hash, then the same
// lattice cascade.
void BM_SortFromCore(benchmark::State& state) {
  RunCube(state, CubeAlgorithm::kSortFromCore);
}

BENCHMARK(BM_Naive2N)
    ->ArgsProduct({{2, 3, 4, 5}, {5000, 50000}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FromCore)
    ->ArgsProduct({{2, 3, 4, 5}, {5000, 50000}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SortFromCore)
    ->ArgsProduct({{2, 3, 4, 5}, {5000, 50000}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

DATACUBE_BENCH_MAIN(
    "Section 5 claim: the 2^N-algorithm performs T x 2^N Iter calls\n"
      "(iter_per_row = 2^N); computing super-aggregates from the core\n"
      "reduces Iter calls to T (iter_per_row = 1) plus cheap merges.\n"
      "args: {N dims, T rows}\n\n")

