// Ablation of Section 5's parent-choice rule: "one has a choice of
// computing the result by aggregating the lower row or the right column ...
// The algorithm will be most efficient if it aggregates the smaller of the
// two (pick the * with the smallest C_i). In this way, the super-aggregates
// can be computed dropping one dimension at a time."
//
// Uses the internal lattice planner directly to compare the smallest-parent
// policy against always folding from the largest available parent, on an
// input with deliberately skewed dimension cardinalities (C = {200, 20, 2}).
// The merge-call counters show the savings; wall time follows.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datacube/cube/cube_internal.h"

namespace {

using namespace datacube;
using namespace datacube::cube_internal;
using bench_util::Dims;
using bench_util::Must;

Table SkewedInput() {
  CubeInputOptions options;
  options.num_rows = 60000;
  options.num_dims = 3;
  options.cardinalities = {200, 20, 2};
  return Must(GenerateCubeInput(options), "input");
}

CubeSpec Spec() {
  CubeSpec spec;
  spec.cube = Dims(3);
  spec.aggregates = {Agg("sum", "x", "s")};
  return spec;
}

void RunPolicy(benchmark::State& state, ParentPolicy policy) {
  Table t = SkewedInput();
  CubeSpec spec = Spec();
  for (auto _ : state) {
    CubeStats stats;
    CubeContext ctx = Must(BuildCubeContext(t, spec), "context");
    LatticePlan plan = PlanLattice(ctx.sets, KeyCardinalities(ctx), policy);
    SetMaps maps(ctx.sets.size());
    for (size_t i = 0; i < plan.nodes.size(); ++i) {
      const LatticePlan::Node& node = plan.nodes[i];
      if (node.parent < 0) {
        maps[i] = HashGroupBy(ctx, node.set, &stats);
        continue;
      }
      for (const auto& [key, cell] : maps[node.parent]) {
        std::vector<Value> child_key = ctx.ProjectKey(key, node.set);
        auto [it, inserted] = maps[i].try_emplace(std::move(child_key));
        if (inserted) it->second = ctx.NewCell();
        if (!ctx.MergeCell(&it->second, cell, &stats).ok()) std::abort();
      }
    }
    benchmark::DoNotOptimize(maps);
    state.counters["merge_calls"] = static_cast<double>(stats.merge_calls);
  }
}

void BM_SmallestParent(benchmark::State& state) {
  RunPolicy(state, ParentPolicy::kSmallestParent);
}
void BM_LargestParent(benchmark::State& state) {
  RunPolicy(state, ParentPolicy::kLargestParent);
}

BENCHMARK(BM_SmallestParent)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LargestParent)->Unit(benchmark::kMillisecond);

}  // namespace

DATACUBE_BENCH_MAIN(
    "Section 5 ablation: computing each lattice node from its smallest\n"
      "computed parent vs always from the largest. Dimensions have skewed\n"
      "cardinalities {200, 20, 2}; compare merge_calls and time.\n\n")

