// Section 2's motivating performance claim: expressing a cube as unioned
// GROUP BYs means "a 64-way union of 64 different GROUP BY operators ...
// resulting in 64 scans of the data, 64 sorts or hashes, and a long wait",
// whereas the CUBE operator computes the same relation in one pass over the
// data plus lattice merges.
//
// Sweeps dimensionality N (scan count 2^N) and input size T, reporting both
// wall time and the scan counters. Expected shape: union time grows ~2^N x
// single-scan time; the from-core cube stays near one scan.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace datacube;
using bench_util::Dims;
using bench_util::Must;
using bench_util::WithAlgorithm;

Table Input(size_t n, size_t rows) {
  CubeInputOptions options;
  options.num_rows = rows;
  options.num_dims = n;
  options.cardinality = 10;
  options.skew = 0.3;
  return Must(GenerateCubeInput(options), "input");
}

void RunCube(benchmark::State& state, CubeAlgorithm algorithm) {
  size_t n = static_cast<size_t>(state.range(0));
  size_t rows = static_cast<size_t>(state.range(1));
  Table t = Input(n, rows);
  for (auto _ : state) {
    CubeResult cube = Must(
        Cube(t, Dims(n), {Agg("sum", "x", "s"), Agg("count", "x", "c")},
             WithAlgorithm(algorithm)),
        "cube");
    benchmark::DoNotOptimize(cube.table);
    state.counters["input_scans"] =
        static_cast<double>(cube.stats.input_scans);
    state.counters["iter_calls"] = static_cast<double>(cube.stats.iter_calls);
    state.counters["cells"] = static_cast<double>(cube.stats.output_cells);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * rows));
}

void BM_UnionOfGroupBys(benchmark::State& state) {
  RunCube(state, CubeAlgorithm::kUnionGroupBy);
}
void BM_CubeFromCore(benchmark::State& state) {
  RunCube(state, CubeAlgorithm::kFromCore);
}

BENCHMARK(BM_UnionOfGroupBys)
    ->ArgsProduct({{2, 3, 4, 5, 6}, {20000}})
    ->Args({4, 100000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CubeFromCore)
    ->ArgsProduct({{2, 3, 4, 5, 6}, {20000}})
    ->Args({4, 100000})
    ->Unit(benchmark::kMillisecond);

}  // namespace

DATACUBE_BENCH_MAIN(
    "Section 2 claim: 2^N unioned GROUP BYs => 2^N scans; the CUBE\n"
      "operator computes the identical relation in ~1 scan + merges.\n"
      "args: {N dims, T rows}\n\n")

