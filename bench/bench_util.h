#ifndef DATACUBE_BENCH_BENCH_UTIL_H_
#define DATACUBE_BENCH_BENCH_UTIL_H_

// Shared helpers for the benchmark harness.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "datacube/cube/cube_operator.h"
#include "datacube/obs/metrics.h"
#include "datacube/workload/sales.h"

/// Shared main for google-benchmark binaries. The explanatory banner prints
/// to stderr so stdout stays machine-readable under --benchmark_format=json;
/// bench/run_all.sh relies on this to write one BENCH_<name>.json per
/// binary (every binary also accepts --benchmark_out=FILE
/// --benchmark_out_format=json directly). When DATACUBE_METRICS_SNAPSHOT
/// names a file, the process-wide metrics registry (the /varz JSON view) is
/// written there after the run, so every BENCH_*.json gets a sibling
/// snapshot of the engine counters the workload produced.
#define DATACUBE_BENCH_MAIN(banner)                                     \
  int main(int argc, char** argv) {                                     \
    std::fputs(banner, stderr);                                         \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    ::datacube::bench_util::MaybeWriteMetricsSnapshot();                \
    return 0;                                                           \
  }

namespace datacube::bench_util {

/// Writes MetricsRegistry::Global() as JSON to the path named by the
/// DATACUBE_METRICS_SNAPSHOT environment variable; no-op when unset.
inline void MaybeWriteMetricsSnapshot() {
  const char* path = std::getenv("DATACUBE_METRICS_SNAPSHOT");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write metrics snapshot to %s\n",
                 path);
    return;
  }
  const std::string json = obs::MetricsRegistry::Global().RenderJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

/// Grouping columns d0..d{n-1} of a GenerateCubeInput table.
inline std::vector<GroupExpr> Dims(size_t n) {
  std::vector<GroupExpr> dims;
  dims.reserve(n);
  for (size_t d = 0; d < n; ++d) {
    dims.push_back(GroupCol("d" + std::to_string(d)));
  }
  return dims;
}

inline CubeOptions WithAlgorithm(CubeAlgorithm algorithm) {
  CubeOptions options;
  options.algorithm = algorithm;
  options.sort_result = false;  // measure computation, not presentation
  return options;
}

/// Aborts the benchmark binary on setup errors (these are programming
/// errors in the harness, not measured conditions).
template <typename T>
T Must(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench setup failed (%s): %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace datacube::bench_util

#endif  // DATACUBE_BENCH_BENCH_UTIL_H_
