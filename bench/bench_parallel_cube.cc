// Section 5's closing note: "the distributive, algebraic, and holistic
// taxonomy is very useful in computing aggregates for parallel database
// systems ... aggregates are computed for each partition of a database in
// parallel. Then the results of these parallel computations are combined."
//
// Scaling exhibit for the morsel-driven parallel cube path: 1M and 10M row
// inputs, uniform and Zipf-skewed key distributions, 1/2/4/8 worker
// threads. The committed BENCH_pre_parallel.json / BENCH_post_parallel.json
// baselines diff the static-chunk + serial-merge implementation against the
// morsel + radix-partitioned-merge one.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "datacube/cube/columnar.h"
#include "datacube/cube/cube_internal.h"

namespace {

using namespace datacube;
using bench_util::Dims;
using bench_util::Must;

// Tables are built once per (rows, skew) shape and shared across thread
// counts so the generator does not dominate the benchmark binary's runtime.
const Table& SharedInput(size_t num_rows, double skew) {
  static std::map<std::pair<size_t, double>, Table>* cache =
      new std::map<std::pair<size_t, double>, Table>();
  auto it = cache->find({num_rows, skew});
  if (it == cache->end()) {
    CubeInputOptions input;
    input.num_rows = num_rows;
    input.num_dims = 3;
    input.cardinality = 24;
    input.skew = skew;
    input.seed = 7;
    it = cache->emplace(std::make_pair(num_rows, skew),
                        Must(GenerateCubeInput(input), "input"))
             .first;
  }
  return it->second;
}

void RunParallelCube(benchmark::State& state, double skew) {
  size_t num_rows = static_cast<size_t>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  const Table& t = SharedInput(num_rows, skew);
  CubeOptions options;
  options.num_threads = threads;
  options.sort_result = false;
  for (auto _ : state) {
    CubeResult cube = Must(
        Cube(t, Dims(3), {Agg("sum", "x", "s"), Agg("avg", "y", "a")},
             options),
        "cube");
    benchmark::DoNotOptimize(cube.table);
    state.counters["threads_used"] =
        static_cast<double>(cube.stats.threads_used);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * num_rows));
}

void BM_ParallelCubeUniform(benchmark::State& state) {
  RunParallelCube(state, /*skew=*/0.0);
}

void BM_ParallelCubeSkewed(benchmark::State& state) {
  RunParallelCube(state, /*skew=*/1.1);
}

// --------------------------------------------------- kernel micro-benches
//
// The batched-kernel layers in isolation, each at batch=1 (the morsel
// kernels) vs batch=0 (the per-row scalar path), over the shared 1M-row
// uniform input's full grouping set:
//   ProbeOnly  the hash+probe layer alone — BatchUpsert's hashed sweep with
//              software prefetch vs one FindOrInsert per row
//   SumOnly    the aggregate sweep alone — group-id vector precomputed, one
//              SUM(x) IterBatch per morsel vs one virtual Iter per row
//   Fused      both layers as FlatGroupBy runs them, morsel at a time

using cube_internal::BuildColumnarContext;
using cube_internal::BuildCubeContext;
using cube_internal::CellStore;
using cube_internal::ColumnarContext;
using cube_internal::CubeContext;
using cube_internal::kBatchRows;

struct KernelFixture {
  CubeContext ctx;
  ColumnarContext cc;
};

// Context over the shared 1M-row uniform input for GROUP BY d0,d1,d2 with
// SUM(x): built once, shared by every kernel micro-bench iteration.
const KernelFixture& SharedKernelFixture() {
  static KernelFixture* fixture = [] {
    const Table& t = SharedInput(1000000, /*skew=*/0.0);
    CubeSpec spec;
    spec.group_by = Dims(3);
    spec.aggregates = {Agg("sum", "x", "s")};
    auto* f = new KernelFixture();
    f->ctx = Must(BuildCubeContext(t, spec), "ctx");
    f->cc = Must(BuildColumnarContext(f->ctx), "cc");
    return f;
  }();
  return *fixture;
}

void BM_KernelProbeOnly(benchmark::State& state) {
  const bool batch = state.range(0) != 0;
  const KernelFixture& f = SharedKernelFixture();
  const size_t rows = f.cc.row_keys.size() / f.cc.words;
  std::vector<char*> blocks(kBatchRows);
  for (auto _ : state) {
    CellStore store = f.cc.MakeStore();
    if (batch) {
      for (size_t row = 0; row < rows; row += kBatchRows) {
        size_t n = std::min(kBatchRows, rows - row);
        store.BatchUpsert(f.cc.RowKey(row), n, blocks.data());
      }
    } else {
      for (size_t row = 0; row < rows; ++row) {
        benchmark::DoNotOptimize(store.FindOrInsert(f.cc.RowKey(row)));
      }
    }
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * rows));
}

void BM_KernelSumOnly(benchmark::State& state) {
  const bool batch = state.range(0) != 0;
  const KernelFixture& f = SharedKernelFixture();
  const size_t rows = f.cc.row_keys.size() / f.cc.words;
  // Resolve the group-id vector once; the benchmark measures only the
  // aggregate sweep over it. States accumulate across iterations, which is
  // fine: SUM folds into a 128-bit accumulator and Final never runs here.
  CellStore store = f.cc.MakeStore();
  std::vector<char*> all_blocks(rows);
  for (size_t row = 0; row < rows; row += kBatchRows) {
    size_t n = std::min(kBatchRows, rows - row);
    store.BatchUpsert(f.cc.RowKey(row), n, all_blocks.data() + row);
  }
  CubeStats stats;
  for (auto _ : state) {
    if (batch) {
      for (size_t row = 0; row < rows; row += kBatchRows) {
        size_t n = std::min(kBatchRows, rows - row);
        f.cc.BatchIterRows(all_blocks.data() + row, nullptr, row, n, &stats);
      }
    } else {
      for (size_t row = 0; row < rows; ++row) {
        f.cc.IterRow(all_blocks[row], row, &stats);
      }
    }
    benchmark::DoNotOptimize(stats.iter_calls);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * rows));
}

void BM_KernelFused(benchmark::State& state) {
  const bool batch = state.range(0) != 0;
  const KernelFixture& f = SharedKernelFixture();
  const size_t rows = f.cc.row_keys.size() / f.cc.words;
  std::vector<char*> blocks(kBatchRows);
  CubeStats stats;
  for (auto _ : state) {
    CellStore store = f.cc.MakeStore();
    if (batch) {
      for (size_t row = 0; row < rows; row += kBatchRows) {
        size_t n = std::min(kBatchRows, rows - row);
        store.BatchUpsert(f.cc.RowKey(row), n, blocks.data());
        f.cc.BatchIterRows(blocks.data(), nullptr, row, n, &stats);
      }
    } else {
      for (size_t row = 0; row < rows; ++row) {
        f.cc.IterRow(store.FindOrInsert(f.cc.RowKey(row)), row, &stats);
      }
    }
    benchmark::DoNotOptimize(store.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * rows));
}

BENCHMARK(BM_KernelProbeOnly)
    ->ArgName("batch")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelSumOnly)
    ->ArgName("batch")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KernelFused)
    ->ArgName("batch")
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void ThreadSweep(benchmark::internal::Benchmark* b) {
  for (int64_t rows : {1000000, 10000000}) {
    for (int64_t threads : {1, 2, 4, 8}) {
      b->Args({rows, threads});
    }
  }
}

BENCHMARK(BM_ParallelCubeUniform)
    ->Apply(ThreadSweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_ParallelCubeSkewed)
    ->Apply(ThreadSweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

DATACUBE_BENCH_MAIN(
    "Section 5: morsel-driven parallel cube with radix-partitioned merge.\n"
    "args: input rows (1M / 10M) x worker threads, uniform and Zipf-skewed\n"
    "3-dim key distributions.\n\n")
