// Section 5's closing note: "the distributive, algebraic, and holistic
// taxonomy is very useful in computing aggregates for parallel database
// systems ... aggregates are computed for each partition of a database in
// parallel. Then the results of these parallel computations are combined."
//
// Scaling exhibit for the morsel-driven parallel cube path: 1M and 10M row
// inputs, uniform and Zipf-skewed key distributions, 1/2/4/8 worker
// threads. The committed BENCH_pre_parallel.json / BENCH_post_parallel.json
// baselines diff the static-chunk + serial-merge implementation against the
// morsel + radix-partitioned-merge one.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.h"

namespace {

using namespace datacube;
using bench_util::Dims;
using bench_util::Must;

// Tables are built once per (rows, skew) shape and shared across thread
// counts so the generator does not dominate the benchmark binary's runtime.
const Table& SharedInput(size_t num_rows, double skew) {
  static std::map<std::pair<size_t, double>, Table>* cache =
      new std::map<std::pair<size_t, double>, Table>();
  auto it = cache->find({num_rows, skew});
  if (it == cache->end()) {
    CubeInputOptions input;
    input.num_rows = num_rows;
    input.num_dims = 3;
    input.cardinality = 24;
    input.skew = skew;
    input.seed = 7;
    it = cache->emplace(std::make_pair(num_rows, skew),
                        Must(GenerateCubeInput(input), "input"))
             .first;
  }
  return it->second;
}

void RunParallelCube(benchmark::State& state, double skew) {
  size_t num_rows = static_cast<size_t>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  const Table& t = SharedInput(num_rows, skew);
  CubeOptions options;
  options.num_threads = threads;
  options.sort_result = false;
  for (auto _ : state) {
    CubeResult cube = Must(
        Cube(t, Dims(3), {Agg("sum", "x", "s"), Agg("avg", "y", "a")},
             options),
        "cube");
    benchmark::DoNotOptimize(cube.table);
    state.counters["threads_used"] =
        static_cast<double>(cube.stats.threads_used);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * num_rows));
}

void BM_ParallelCubeUniform(benchmark::State& state) {
  RunParallelCube(state, /*skew=*/0.0);
}

void BM_ParallelCubeSkewed(benchmark::State& state) {
  RunParallelCube(state, /*skew=*/1.1);
}

void ThreadSweep(benchmark::internal::Benchmark* b) {
  for (int64_t rows : {1000000, 10000000}) {
    for (int64_t threads : {1, 2, 4, 8}) {
      b->Args({rows, threads});
    }
  }
}

BENCHMARK(BM_ParallelCubeUniform)
    ->Apply(ThreadSweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_ParallelCubeSkewed)
    ->Apply(ThreadSweep)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

DATACUBE_BENCH_MAIN(
    "Section 5: morsel-driven parallel cube with radix-partitioned merge.\n"
    "args: input rows (1M / 10M) x worker threads, uniform and Zipf-skewed\n"
    "3-dim key distributions.\n\n")
