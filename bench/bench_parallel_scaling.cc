// Section 5's closing note: "the distributive, algebraic, and holistic
// taxonomy is very useful in computing aggregates for parallel database
// systems ... aggregates are computed for each partition of a database in
// parallel. Then the results of these parallel computations are combined."
//
// Measures partition-parallel cube computation (per-thread core hashing,
// scratchpad merge, serial lattice cascade) against the serial path, over
// thread counts 1..8.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace datacube;
using bench_util::Dims;
using bench_util::Must;

void BM_ParallelCube(benchmark::State& state) {
  int threads = static_cast<int>(state.range(0));
  CubeInputOptions input;
  input.num_rows = 400000;
  input.num_dims = 3;
  input.cardinality = 12;
  Table t = Must(GenerateCubeInput(input), "input");
  CubeOptions options;
  options.num_threads = threads;
  options.sort_result = false;
  for (auto _ : state) {
    CubeResult cube = Must(
        Cube(t, Dims(3), {Agg("sum", "x", "s"), Agg("avg", "x", "a")},
             options),
        "cube");
    benchmark::DoNotOptimize(cube.table);
    state.counters["threads_used"] =
        static_cast<double>(cube.stats.threads_used);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * input.num_rows));
}

BENCHMARK(BM_ParallelCube)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

DATACUBE_BENCH_MAIN(
    "Section 5: partition-parallel aggregation with scratchpad merge.\n"
      "arg: worker threads over a 400k-row, 3-dim input.\n\n")

