// Section 5's cube-size analysis and Figure 4's cardinality identity:
//
//   "an N-dimensional cube of N attributes each with cardinality C_i will
//    have Π(C_i+1) [cells]. If each C_i = 4 then a 4D CUBE is 2.4 times
//    larger than the base GROUP BY. We expect the C_i to be large (tens or
//    hundreds) so that the CUBE will be only a little larger than the
//    GROUP BY."
//
// Verifies the Π(C_i+1) formula on complete cross products (including
// Figure 4's 18 rows -> 48 cells), prints the cube/GROUP-BY size ratio as
// C_i grows, and times cube computation as dimensionality rises.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace datacube;
using bench_util::Dims;
using bench_util::Must;
using bench_util::WithAlgorithm;

// Builds the complete C^n cross product so the formula is exact.
Table CompleteCross(size_t n, size_t c) {
  CubeInputOptions options;
  options.num_dims = n;
  options.cardinality = c;
  options.num_rows = 0;
  Table t = Must(GenerateCubeInput(options), "cross");
  std::vector<size_t> coord(n, 0);
  while (true) {
    std::vector<Value> row;
    for (size_t d = 0; d < n; ++d) {
      row.push_back(Value::String("v" + std::to_string(coord[d])));
    }
    row.push_back(Value::Int64(1));
    row.push_back(Value::Float64(1.0));
    (void)t.AppendRow(row);
    size_t pos = 0;
    for (; pos < n; ++pos) {
      if (++coord[pos] < c) break;
      coord[pos] = 0;
    }
    if (pos == n) break;
  }
  return t;
}

int PrintFormulaTable() {
  std::printf("cube size = PRODUCT(C_i + 1); ratio vs GROUP BY = ((C+1)/C)^N\n");
  std::printf("%4s %6s %12s %12s %12s %8s\n", "N", "C_i", "group_by",
              "cube_cells", "formula", "ratio");
  int failures = 0;
  struct Case {
    size_t n, c;
  };
  for (Case kase : {Case{2, 3}, Case{3, 3}, Case{3, 4}, Case{4, 4},
                    Case{2, 10}, Case{3, 10}, Case{2, 100}}) {
    Table t = CompleteCross(kase.n, kase.c);
    CubeResult cube = Must(Cube(t, Dims(kase.n), {Agg("sum", "x", "s")},
                                WithAlgorithm(CubeAlgorithm::kFromCore)),
                           "cube");
    size_t formula = 1;
    for (size_t d = 0; d < kase.n; ++d) formula *= kase.c + 1;
    double ratio = static_cast<double>(cube.table.num_rows()) /
                   static_cast<double>(t.num_rows());
    std::printf("%4zu %6zu %12zu %12zu %12zu %8.3f\n", kase.n, kase.c,
                t.num_rows(), cube.table.num_rows(), formula, ratio);
    if (cube.table.num_rows() != formula) ++failures;
    // The paper's headline instance: C_i = 4, N = 4 -> 2.4x.
    if (kase.n == 4 && kase.c == 4 && std::abs(ratio - 2.44) > 0.01) {
      ++failures;
    }
  }
  // Figure 4: 2 x 3 x 3 = 18 rows -> 3 x 4 x 4 = 48 cells.
  {
    Table fig4(Schema{{Field{"d0", DataType::kString},
                       Field{"d1", DataType::kString},
                       Field{"d2", DataType::kString},
                       Field{"x", DataType::kInt64}}});
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 3; ++b) {
        for (int c = 0; c < 3; ++c) {
          (void)fig4.AppendRow({Value::String("m" + std::to_string(a)),
                                Value::String("y" + std::to_string(b)),
                                Value::String("c" + std::to_string(c)),
                                Value::Int64(1)});
        }
      }
    }
    CubeResult cube =
        Must(Cube(fig4, Dims(3), {Agg("sum", "x", "s")}), "fig4 cube");
    std::printf("Figure 4 shape: 2x3x3 = %zu rows -> cube %zu cells "
                "(paper: 48)\n",
                fig4.num_rows(), cube.table.num_rows());
    if (cube.table.num_rows() != 48) ++failures;
  }
  std::printf("%s\n\n",
              failures == 0 ? "formula holds" : "FORMULA MISMATCH");
  return failures;
}

void BM_CubeByDims(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  CubeInputOptions options;
  options.num_rows = 20000;
  options.num_dims = n;
  options.cardinality = 8;
  Table t = Must(GenerateCubeInput(options), "input");
  for (auto _ : state) {
    CubeResult cube = Must(Cube(t, Dims(n), {Agg("sum", "x", "s")},
                                WithAlgorithm(CubeAlgorithm::kFromCore)),
                           "cube");
    benchmark::DoNotOptimize(cube.table);
    state.counters["cells"] = static_cast<double>(cube.stats.output_cells);
  }
}
BENCHMARK(BM_CubeByDims)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  int failures = PrintFormulaTable();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return failures == 0 ? 0 : 1;
}
