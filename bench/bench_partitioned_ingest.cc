// The time-partitioned store, measured against the monolithic cube it
// refactors:
//
//  * streaming ingest throughput (rows/s into the newest window's open
//    delta, batched) at 1 / 8 / 64 partitions, vs ApplyInsert row-at-a-time
//    into one MaterializedCube
//  * merged-read latency (ToTable across all partitions through the Merge
//    protocol) at 1 / 8 / 64 partitions, vs one cube's ToTable
//  * the pruning payoff: a one-window PrunedRows scan against the full
//    64-partition scan
//
// BENCH_pre_partition.json captures the BM_Monolithic* baselines,
// BENCH_post_partition.json the BM_Partitioned* runs.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "datacube/cube/materialized_cube.h"
#include "datacube/cube/partitioned_cube.h"
#include "datacube/expr/expr.h"

namespace {

using namespace datacube;
using bench_util::Must;

constexpr size_t kBaseRows = 20000;
constexpr size_t kBatchRows = 256;
// ts spans [0, kTsRange); window_width = kTsRange / partitions.
constexpr int64_t kTsRange = 64000;

Schema EventSchema() {
  return Schema{{{"ts", DataType::kInt64},
                 {"d0", DataType::kString},
                 {"d1", DataType::kString},
                 {"m", DataType::kInt64}}};
}

CubeSpec EventSpec() {
  CubeSpec spec;
  spec.cube.push_back(GroupExpr{Expr::Column("d0"), "d0"});
  spec.cube.push_back(GroupExpr{Expr::Column("d1"), "d1"});
  AggregateSpec count;
  count.function = "count_star";
  count.output_name = "n";
  spec.aggregates.push_back(count);
  AggregateSpec sum;
  sum.function = "sum";
  sum.args.push_back(Expr::Column("m"));
  sum.output_name = "sum_m";
  spec.aggregates.push_back(sum);
  return spec;
}

std::vector<Value> EventRow(size_t i) {
  return {Value::Int64(static_cast<int64_t>((i * 131) % kTsRange)),
          Value::String("a" + std::to_string(i % 8)),
          Value::String("b" + std::to_string(i % 5)),
          Value::Int64(static_cast<int64_t>(i % 100))};
}

Table EventRows(size_t start, size_t count) {
  Table t{EventSchema()};
  for (size_t i = start; i < start + count; ++i) {
    if (!t.AppendRow(EventRow(i)).ok()) std::abort();
  }
  return t;
}

PartitionedCubeOptions PartOptions(int64_t partitions) {
  PartitionedCubeOptions options;
  options.partition_column = "ts";
  options.window_width = kTsRange / partitions;
  // Keep the measurement on the ingest/merge paths themselves, not on
  // whatever the background pass happens to overlap.
  options.background_compaction = false;
  return options;
}

// ------------------------------------------------------------ baselines

void BM_MonolithicIngest(benchmark::State& state) {
  auto cube = Must(MaterializedCube::Build(EventRows(0, 1), EventSpec()),
                   "build");
  size_t i = 1;
  for (auto _ : state) {
    for (size_t r = 0; r < kBatchRows; ++r) {
      if (!cube->ApplyInsert(EventRow(i++)).ok()) std::abort();
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchRows));
}

void BM_MonolithicQuery(benchmark::State& state) {
  auto cube =
      Must(MaterializedCube::Build(EventRows(0, kBaseRows), EventSpec()),
           "build");
  for (auto _ : state) {
    Result<Table> t = cube->ToTable();
    if (!t.ok()) std::abort();
    benchmark::DoNotOptimize(t.value().num_rows());
  }
  state.SetItemsProcessed(state.iterations());
}

// ------------------------------------------------------- partitioned

void BM_PartitionedIngest(benchmark::State& state) {
  const int64_t partitions = state.range(0);
  auto cube = Must(
      PartitionedCube::Create(EventSchema(), EventSpec(),
                              PartOptions(partitions)),
      "create");
  size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Table batch = EventRows(i, kBatchRows);
    i += kBatchRows;
    state.ResumeTiming();
    if (!cube->IngestRows(batch).ok()) std::abort();
  }
  state.counters["partitions"] = static_cast<double>(cube->num_partitions());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kBatchRows));
}

void BM_PartitionedQuery(benchmark::State& state) {
  const int64_t partitions = state.range(0);
  auto cube = Must(PartitionedCube::Build(EventRows(0, kBaseRows),
                                          EventSpec(),
                                          PartOptions(partitions)),
                   "build");
  cube->CompactNow();
  for (auto _ : state) {
    Result<Table> t = cube->ToTable();
    if (!t.ok()) std::abort();
    benchmark::DoNotOptimize(t.value().num_rows());
  }
  state.counters["partitions"] = static_cast<double>(cube->num_partitions());
  state.SetItemsProcessed(state.iterations());
}

void BM_PartitionedPrunedScan(benchmark::State& state) {
  // One window's key range out of 64: the scan should touch ~1/64 of the
  // store (compare against the unbounded variant below).
  auto cube = Must(PartitionedCube::Build(EventRows(0, kBaseRows),
                                          EventSpec(), PartOptions(64)),
                   "build");
  cube->CompactNow();
  const int64_t width = kTsRange / 64;
  for (auto _ : state) {
    PartitionPruneStats stats;
    Result<Table> t = cube->PrunedRows(width * 10, width * 11 - 1, &stats);
    if (!t.ok() || stats.scanned >= stats.total) std::abort();
    benchmark::DoNotOptimize(t.value().num_rows());
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PartitionedFullScan(benchmark::State& state) {
  auto cube = Must(PartitionedCube::Build(EventRows(0, kBaseRows),
                                          EventSpec(), PartOptions(64)),
                   "build");
  cube->CompactNow();
  for (auto _ : state) {
    Result<Table> t = cube->PrunedRows(std::nullopt, std::nullopt);
    if (!t.ok()) std::abort();
    benchmark::DoNotOptimize(t.value().num_rows());
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_MonolithicIngest);
BENCHMARK(BM_MonolithicQuery);
BENCHMARK(BM_PartitionedIngest)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK(BM_PartitionedQuery)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK(BM_PartitionedPrunedScan);
BENCHMARK(BM_PartitionedFullScan);

}  // namespace

DATACUBE_BENCH_MAIN(
    "Time-partitioned store vs the monolithic cube: batched ingest rows/s\n"
    "at 1/8/64 partitions, merged-read latency, and the partition-pruning\n"
    "payoff of a one-window scan against a 64-partition full scan.\n\n")
