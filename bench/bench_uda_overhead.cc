// Figure 7 / Section 1.2: the user-defined aggregate mechanism. "System
// defined and user defined aggregate functions are initialized with a
// start() call ... the next() call is invoked for each value ... the end()
// call computes the aggregate."
//
// Measures the cost of that virtual Init/Iter/Final protocol: a built-in
// SUM, a user-registered SUM clone going through the same registry path,
// and a two-argument algebraic UDA (center_of_mass), plus a full cube
// computed with a user-defined aggregate to show UDAs are first-class in
// the operator.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.h"
#include "datacube/agg/registry.h"

namespace {

using namespace datacube;
using bench_util::Dims;
using bench_util::Must;

// A user-defined geometric-mean aggregate, registered like a plugin.
struct GeoMeanState : AggState {
  double log_sum = 0;
  int64_t n = 0;
};

class GeoMeanFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "geo_mean";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kAlgebraic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(const std::vector<DataType>&) const override {
    return DataType::kFloat64;
  }
  AggStatePtr Init() const override { return std::make_unique<GeoMeanState>(); }
  void Iter(AggState* s, const Value* args, size_t) const override {
    if (args[0].is_special() || args[0].AsDouble() <= 0) return;
    auto* st = static_cast<GeoMeanState*>(s);
    st->log_sum += std::log(args[0].AsDouble());
    ++st->n;
  }
  Value Final(const AggState* s) const override {
    const auto* st = static_cast<const GeoMeanState*>(s);
    if (st->n == 0) return Value::Null();
    return Value::Float64(std::exp(st->log_sum / static_cast<double>(st->n)));
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = static_cast<GeoMeanState*>(dst);
    const auto* s = static_cast<const GeoMeanState*>(src);
    d->log_sum += s->log_sum;
    d->n += s->n;
    return Status::OK();
  }
  AggStatePtr Clone(const AggState* s) const override {
    return std::make_unique<GeoMeanState>(
        *static_cast<const GeoMeanState*>(s));
  }
};

void EnsureRegistered() {
  static bool done = [] {
    (void)AggregateRegistry::Global().Register(
        "geo_mean",
        [](const std::vector<Value>&) -> Result<AggregateFunctionPtr> {
          return AggregateFunctionPtr(std::make_shared<GeoMeanFunction>());
        });
    return true;
  }();
  (void)done;
}

void RunProtocol(benchmark::State& state, const char* fn_name) {
  EnsureRegistered();
  AggregateFunctionPtr fn =
      Must(AggregateRegistry::Global().Make(fn_name), "make");
  std::vector<Value> values;
  values.reserve(10000);
  for (int i = 0; i < 10000; ++i) values.push_back(Value::Int64(i % 97 + 1));
  for (auto _ : state) {
    AggStatePtr s = fn->Init();
    for (const Value& v : values) fn->Iter1(s.get(), v);
    Value result = fn->Final(s.get());
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * values.size()));
}

void BM_BuiltinSum(benchmark::State& state) { RunProtocol(state, "sum"); }
void BM_UserGeoMean(benchmark::State& state) { RunProtocol(state, "geo_mean"); }
void BM_BuiltinAvg(benchmark::State& state) { RunProtocol(state, "avg"); }
void BM_HolisticMedian(benchmark::State& state) {
  RunProtocol(state, "median");
}

void BM_CubeWithUda(benchmark::State& state) {
  EnsureRegistered();
  CubeInputOptions input;
  input.num_rows = 20000;
  input.num_dims = 3;
  input.cardinality = 8;
  Table t = Must(GenerateCubeInput(input), "input");
  for (auto _ : state) {
    CubeResult cube =
        Must(Cube(t, Dims(3), {Agg("geo_mean", "x", "g")}), "cube");
    benchmark::DoNotOptimize(cube.table);
  }
}

BENCHMARK(BM_BuiltinSum);
BENCHMARK(BM_BuiltinAvg);
BENCHMARK(BM_UserGeoMean);
BENCHMARK(BM_HolisticMedian);
BENCHMARK(BM_CubeWithUda)->Unit(benchmark::kMillisecond);

}  // namespace

DATACUBE_BENCH_MAIN(
    "Figure 7: the Init/Iter/Final (+ Iter_super) UDA protocol. User\n"
      "aggregates pay the same per-row virtual dispatch as built-ins and\n"
      "compose with the cube operator (BM_CubeWithUda cascades geo_mean\n"
      "scratchpads through the lattice).\n\n")

