// Section 6's pointer to partial materialization: "Harinarayn, Rajaraman,
// and Ullman have interesting ideas on pre-computing a sub-cube of the
// cube." This bench exercises our implementation of their greedy algorithm:
// it prints the greedy picks and their benefits over a skewed 4-dim lattice,
// then measures query latency when answering every grouping set of the cube
// from k materialized views (k = 1: core only, every query folds the core;
// larger k: most queries hit small ancestors or exact views).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "datacube/cube/partial_cube.h"
#include "datacube/cube/view_selection.h"

namespace {

using namespace datacube;
using bench_util::Dims;
using bench_util::Must;

constexpr size_t kRows = 50000;
const std::vector<size_t> kCards = {100, 25, 6, 2};

void PrintSelection() {
  std::printf("greedy picks over a 4-dim lattice, C = {100, 25, 6, 2}, "
              "T = %zu:\n", kRows);
  ViewSelection sel =
      Must(SelectViewsGreedy(4, kCards, kRows, 8), "selection");
  std::vector<std::string> names = {"d0", "d1", "d2", "d3"};
  for (size_t i = 0; i < sel.views.size(); ++i) {
    std::printf("  pick %zu: %-22s est_size=%10.0f benefit=%12.0f\n", i,
                GroupingSetToString(sel.views[i], names).c_str(),
                EstimateViewSize(sel.views[i], kCards, kRows),
                sel.benefits[i]);
  }
  std::printf("  total cost of answering all 16 grouping sets: %.0f rows\n\n",
              sel.total_query_cost);
}

void BM_AnswerAllSetsWithKViews(benchmark::State& state) {
  size_t max_views = static_cast<size_t>(state.range(0));
  CubeInputOptions input;
  input.num_rows = kRows;
  input.num_dims = 4;
  input.cardinalities = kCards;
  Table t = Must(GenerateCubeInput(input), "input");

  CubeSpec spec;
  spec.cube = Dims(4);
  spec.aggregates = {Agg("sum", "x", "s")};
  ViewSelection sel =
      Must(SelectViewsGreedy(4, kCards, kRows, max_views), "selection");
  auto partial = Must(PartialCube::Build(t, spec, sel.views), "build");

  size_t cells_scanned = 0;
  for (auto _ : state) {
    for (GroupingSet target = 0; target < 16; ++target) {
      Table answer = Must(partial->Query(target), "query");
      benchmark::DoNotOptimize(answer);
      cells_scanned += partial->last_query_stats().cells_scanned;
    }
  }
  state.counters["views"] = static_cast<double>(partial->views().size());
  state.counters["materialized_cells"] =
      static_cast<double>(partial->materialized_cells());
  state.counters["ancestor_cells_per_round"] =
      static_cast<double>(cells_scanned) /
      static_cast<double>(state.iterations());
}

BENCHMARK(BM_AnswerAllSetsWithKViews)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSelection();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
