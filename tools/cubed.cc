// cubed — the long-lived data cube server.
//
// Boots a CubeServer (mini-SQL over HTTP + bare line protocol, admission
// control, per-query deadlines, snapshot-swapped catalog, stats endpoints
// on the same listener), preloads the paper's Table 3 sales data plus a
// larger synthetic table so clients have something to query, prints the
// listen URL, and serves until interrupted. Usage:
//
//   cubed [--port N] [--host H] [--max-concurrent N] [--deadline-ms N]
//         [--threads N] [--once]
//
// --port (or DATACUBE_CUBED_PORT) picks the port; default 0 = ephemeral.
// --max-concurrent bounds concurrently executing queries (503 beyond it).
// --deadline-ms applies a default per-query deadline when the client sends
// none. --threads sets per-query cube parallelism. --once exits right
// after booting (config smoke). Example session:
//
//   $ cubed --port 8080 &
//   $ curl 'localhost:8080/query?q=SELECT+Model,SUM(Units)+FROM+Sales\
//       +GROUP+BY+CUBE+Model'
//   $ echo 'SELECT Model, SUM(Units) FROM Sales GROUP BY CUBE Model' \
//       | nc localhost 8080

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "datacube/server/cube_server.h"
#include "datacube/workload/sales.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Fail(const datacube::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace datacube;

  server::CubeServer::Options options;
  bool once = false;
  if (const char* env = std::getenv("DATACUBE_CUBED_PORT");
      env != nullptr && env[0] != '\0') {
    options.port = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      options.host = argv[++i];
    } else if (std::strcmp(argv[i], "--max-concurrent") == 0 && i + 1 < argc) {
      options.max_concurrent_queries = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      options.default_deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.query_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--port N] [--host H] [--max-concurrent N]"
                   " [--deadline-ms N] [--threads N] [--once]\n";
      return 2;
    }
  }

  Result<std::unique_ptr<server::CubeServer>> server =
      server::CubeServer::Start(options);
  if (!server.ok()) return Fail(server.status());

  // Preload: the paper's Table 3 cars, and a synthetic table big enough for
  // parallel execution and visible deadlines.
  Result<Table> sales = Table3SalesTable();
  if (!sales.ok()) return Fail(sales.status());
  Result<Table> big = GenerateSales({.num_rows = 50000});
  if (!big.ok()) return Fail(big.status());
  if (Status st = (*server)->RegisterTable("Sales", std::move(*sales));
      !st.ok()) {
    return Fail(st);
  }
  if (Status st = (*server)->RegisterTable("BigSales", std::move(*big));
      !st.ok()) {
    return Fail(st);
  }

  // The smoke script scrapes this exact line for the URL.
  std::cout << "listening on " << (*server)->url() << "\n";
  std::cout.flush();

  if (once) return 0;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) usleep(100 * 1000);
  std::cout << "shutting down\n";
  (*server)->Stop();
  return 0;
}
