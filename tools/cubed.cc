// cubed — the long-lived data cube server.
//
// Boots a CubeServer (mini-SQL over HTTP + bare line protocol, admission
// control, per-query deadlines, snapshot-swapped catalog, stats endpoints
// on the same listener), preloads the paper's Table 3 sales data plus a
// larger synthetic table so clients have something to query, mounts a
// time-partitioned Events store for streaming ingest, prints the listen
// URL, and serves until interrupted. Usage:
//
//   cubed [--port N] [--host H] [--max-concurrent N] [--deadline-ms N]
//         [--threads N] [--window N] [--retention N] [--once]
//
// --port (or DATACUBE_CUBED_PORT) picks the port; default 0 = ephemeral.
// --max-concurrent bounds concurrently executing queries (503 beyond it).
// --deadline-ms applies a default per-query deadline when the client sends
// none. --threads sets per-query cube parallelism. --window sets the
// Events store's partition width in ts units; --retention keeps only the
// newest N windows (0 = unlimited). --once exits right after booting
// (config smoke). Example session:
//
//   $ cubed --port 8080 &
//   $ curl 'localhost:8080/query?q=SELECT+Model,SUM(Units)+FROM+Sales\
//       +GROUP+BY+CUBE+Model'
//   $ echo 'SELECT Model, SUM(Units) FROM Sales GROUP BY CUBE Model' \
//       | nc localhost 8080
//   $ curl -XPOST 'localhost:8080/ingest?table=Events&header=0' \
//       --data-binary '4096,web,click,3'
//   $ echo 'INGEST Events 4097,app,view,1' | nc localhost 8080

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "datacube/cube/partitioned_cube.h"
#include "datacube/expr/expr.h"
#include "datacube/server/cube_server.h"
#include "datacube/workload/sales.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Fail(const datacube::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

/// The streaming-ingest demo store: events windowed by an INT64 ts column,
/// pre-seeded with a few rows across three windows so /partitions and
/// pruned queries show something before the first /ingest.
datacube::Result<std::shared_ptr<datacube::PartitionedCube>> MakeEventsStore(
    int64_t window_width, int64_t retention_windows) {
  using namespace datacube;
  Schema schema{{{"ts", DataType::kInt64},
                 {"source", DataType::kString},
                 {"kind", DataType::kString},
                 {"units", DataType::kInt64}}};
  CubeSpec spec;
  spec.cube.push_back(GroupExpr{Expr::Column("source"), "source"});
  spec.cube.push_back(GroupExpr{Expr::Column("kind"), "kind"});
  AggregateSpec count;
  count.function = "count_star";
  count.output_name = "events";
  spec.aggregates.push_back(count);
  AggregateSpec sum;
  sum.function = "sum";
  sum.args.push_back(Expr::Column("units"));
  sum.output_name = "units";
  spec.aggregates.push_back(sum);

  PartitionedCubeOptions popts;
  popts.partition_column = "ts";
  popts.window_width = window_width;
  popts.retention_windows = retention_windows;
  DATACUBE_ASSIGN_OR_RETURN(std::unique_ptr<PartitionedCube> store,
                            PartitionedCube::Create(schema, spec, popts));

  Table seed{schema};
  int64_t w = window_width;
  const struct {
    int64_t ts;
    const char* source;
    const char* kind;
    int64_t units;
  } rows[] = {
      {0 * w, "web", "view", 3},  {0 * w + w / 2, "app", "view", 1},
      {1 * w, "web", "click", 2}, {1 * w + w / 2, "app", "click", 5},
      {2 * w, "web", "view", 4},  {2 * w + w / 2, "api", "call", 7},
  };
  for (const auto& r : rows) {
    DATACUBE_RETURN_IF_ERROR(
        seed.AppendRow({Value::Int64(r.ts), Value::String(r.source),
                        Value::String(r.kind), Value::Int64(r.units)}));
  }
  DATACUBE_RETURN_IF_ERROR(store->IngestRows(seed));
  return std::shared_ptr<PartitionedCube>(std::move(store));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace datacube;

  server::CubeServer::Options options;
  bool once = false;
  int64_t window_width = 1000;
  int64_t retention_windows = 0;
  if (const char* env = std::getenv("DATACUBE_CUBED_PORT");
      env != nullptr && env[0] != '\0') {
    options.port = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      options.host = argv[++i];
    } else if (std::strcmp(argv[i], "--max-concurrent") == 0 && i + 1 < argc) {
      options.max_concurrent_queries = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      options.default_deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      options.query_threads = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      window_width = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--retention") == 0 && i + 1 < argc) {
      retention_windows = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--port N] [--host H] [--max-concurrent N]"
                   " [--deadline-ms N] [--threads N] [--window N]"
                   " [--retention N] [--once]\n";
      return 2;
    }
  }

  Result<std::unique_ptr<server::CubeServer>> server =
      server::CubeServer::Start(options);
  if (!server.ok()) return Fail(server.status());

  // Preload: the paper's Table 3 cars, and a synthetic table big enough for
  // parallel execution and visible deadlines.
  Result<Table> sales = Table3SalesTable();
  if (!sales.ok()) return Fail(sales.status());
  Result<Table> big = GenerateSales({.num_rows = 50000});
  if (!big.ok()) return Fail(big.status());
  if (Status st = (*server)->RegisterTable("Sales", std::move(*sales));
      !st.ok()) {
    return Fail(st);
  }
  if (Status st = (*server)->RegisterTable("BigSales", std::move(*big));
      !st.ok()) {
    return Fail(st);
  }
  if (window_width <= 0) {
    return Fail(Status::InvalidArgument("--window must be positive"));
  }
  Result<std::shared_ptr<PartitionedCube>> events =
      MakeEventsStore(window_width, retention_windows);
  if (!events.ok()) return Fail(events.status());
  if (Status st = (*server)->RegisterPartitioned("Events", *events);
      !st.ok()) {
    return Fail(st);
  }

  // The smoke script scrapes this exact line for the URL.
  std::cout << "listening on " << (*server)->url() << "\n";
  std::cout.flush();

  if (once) return 0;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) usleep(100 * 1000);
  std::cout << "shutting down\n";
  (*server)->Stop();
  return 0;
}
