// Decision-support reporting on a TPC-D-like workload — the benchmark the
// paper's Table 2 highlights ("one 6D GROUP BY and three 3D GROUP BYs") and
// whose 6-dimension cross-tab motivates Section 2's "64-way union"
// complaint.
//
// Shows: the Q1-like pricing summary with ROLLUP sub-totals through SQL, a
// 3D cube pivoted into a report, and partial materialization answering the
// full 6D lattice from a handful of greedily selected views.

#include <iostream>

#include "datacube/cube/partial_cube.h"
#include "datacube/cube/view_selection.h"
#include "datacube/olap/crosstab.h"
#include "datacube/sql/engine.h"
#include "datacube/table/print.h"
#include "datacube/workload/tpcd.h"

namespace {

int Fail(const datacube::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main() {
  using namespace datacube;

  Result<Table> lineitem = GenerateLineitem({.num_rows = 50000, .seed = 4});
  if (!lineitem.ok()) return Fail(lineitem.status());
  std::cout << "=== lineitem (" << lineitem->num_rows() << " rows) ===\n"
            << FormatTable(*lineitem, {.max_rows = 4}) << "\n";

  sql::Catalog catalog;
  if (Status st = catalog.Register("lineitem", *lineitem); !st.ok()) {
    return Fail(st);
  }

  // --- Q1-like pricing summary with rollup sub-totals ------------------
  Result<Table> q1 = sql::ExecuteSql(
      "SELECT returnflag, linestatus, "
      "SUM(quantity) AS sum_qty, SUM(extendedprice) AS sum_price, "
      "AVG(discount) AS avg_disc, COUNT(*) AS count_order "
      "FROM lineitem "
      "GROUP BY ROLLUP returnflag, linestatus "
      "ORDER BY 1, 2",
      catalog);
  if (!q1.ok()) return Fail(q1.status());
  std::cout << "=== Q1-style pricing summary (with ROLLUP sub-totals) ===\n"
            << FormatTable(*q1) << "\n";

  // --- 3D cube rendered as a pivot -------------------------------------
  Result<Table> cube3 = sql::ExecuteSql(
      "SELECT returnflag, linestatus, shipmode, SUM(quantity) AS qty "
      "FROM lineitem GROUP BY CUBE returnflag, linestatus, shipmode",
      catalog);
  if (!cube3.ok()) return Fail(cube3.status());
  CrossTabOptions pivot;
  pivot.corner_label = "Sum qty";
  Result<std::string> report = FormatPivot(*cube3, 2, 0, 1, 3, pivot);
  if (!report.ok()) return Fail(report.status());
  std::cout << "=== shipmode x (returnflag, linestatus) pivot ===\n"
            << *report << "\n";

  // --- partial materialization of the 6D lattice -----------------------
  std::vector<size_t> cards = {3, 2, 7, 5, 10, 7};
  Result<ViewSelection> selection =
      SelectViewsGreedy(6, cards, lineitem->num_rows(), 8);
  if (!selection.ok()) return Fail(selection.status());
  std::vector<std::string> names = {"returnflag", "linestatus", "shipmode",
                                    "priority",   "nation",     "shipyear"};
  std::cout << "=== greedy view selection over the 6D lattice (8 views) ===\n";
  for (size_t i = 0; i < selection->views.size(); ++i) {
    std::cout << "  " << GroupingSetToString(selection->views[i], names)
              << "  est_size="
              << EstimateViewSize(selection->views[i], cards,
                                  lineitem->num_rows())
              << "  benefit=" << selection->benefits[i] << "\n";
  }
  std::cout << "  total cost for all 64 grouping sets: "
            << selection->total_query_cost << " rows\n\n";

  CubeSpec spec;
  for (const std::string& name : names) spec.cube.push_back(GroupCol(name));
  spec.aggregates = {Agg("sum", "extendedprice", "revenue")};
  Result<std::unique_ptr<PartialCube>> partial =
      PartialCube::Build(*lineitem, spec, selection->views);
  if (!partial.ok()) return Fail(partial.status());
  std::cout << "materialized " << (*partial)->views().size() << " views, "
            << (*partial)->materialized_cells() << " cells total\n";

  // Answer a query that is NOT materialized: revenue by nation.
  GroupingSet by_nation = 1ULL << 4;
  Result<Table> answer = (*partial)->Query(by_nation);
  if (!answer.ok()) return Fail(answer.status());
  std::cout << "revenue by nation, answered from "
            << GroupingSetToString((*partial)->last_query_stats().answered_from,
                                   names)
            << " (" << (*partial)->last_query_stats().cells_scanned
            << " ancestor cells folded):\n"
            << FormatTable(*answer, {.max_rows = 12});
  return 0;
}
