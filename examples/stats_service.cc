// Embedded stats server demo + CI smoke target.
//
// Starts the observability HTTP server, runs a few queries (including a
// parallel cube over a synthetic table) so /metrics, /queryz, and /tracez
// have something to show, prints the listen URL, and serves until
// interrupted. Usage:
//
//   stats_service [--port N] [--once]
//
// --port (or DATACUBE_STATS_PORT) picks the port; default 0 = ephemeral.
// --once exits immediately after the warm-up queries instead of serving
// forever (handy for smoke tests that only need the warm-up side effects).

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "datacube/obs/stats_server.h"
#include "datacube/sql/engine.h"
#include "datacube/workload/sales.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

int Fail(const datacube::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace datacube;

  obs::StatsServer::Options server_options;
  bool once = false;
  if (const char* env = std::getenv("DATACUBE_STATS_PORT");
      env != nullptr && env[0] != '\0') {
    server_options.port = std::atoi(env);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      server_options.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      std::cerr << "usage: " << argv[0] << " [--port N] [--once]\n";
      return 2;
    }
  }

  Result<std::unique_ptr<obs::StatsServer>> server =
      obs::StatsServer::Start(server_options);
  if (!server.ok()) return Fail(server.status());

  // Warm up the metrics and ring buffers with real queries: the paper's
  // Table 3 cube, then a parallel cube over a synthetic table large enough
  // to actually split.
  sql::Catalog catalog;
  Result<Table> sales = Table3SalesTable();
  if (!sales.ok()) return Fail(sales.status());
  Result<Table> big = GenerateSales({.num_rows = 20000});
  if (!big.ok()) return Fail(big.status());
  if (Status st = catalog.Register("Sales", *sales); !st.ok()) return Fail(st);
  if (Status st = catalog.Register("BigSales", *big); !st.ok()) {
    return Fail(st);
  }

  const char* queries[] = {
      "SELECT Model, Year, Color, SUM(Units) FROM Sales "
      "GROUP BY CUBE Model, Year, Color",
      "SELECT Model, Color, SUM(Units), AVG(Price) FROM BigSales "
      "GROUP BY CUBE Model, Color",
      "EXPLAIN ANALYZE SELECT Model, Year, SUM(Units) FROM BigSales "
      "GROUP BY CUBE Model, Year",
  };
  sql::EngineOptions engine_options;
  engine_options.cube.num_threads = 4;
  for (const char* q : queries) {
    Result<Table> r = sql::ExecuteSql(q, catalog, engine_options);
    if (!r.ok()) return Fail(r.status());
  }

  // The smoke script scrapes this exact line for the URL.
  std::cout << "listening on " << (*server)->url() << "\n";
  std::cout.flush();

  if (once) return 0;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) usleep(100 * 1000);
  std::cout << "shutting down\n";
  return 0;
}
