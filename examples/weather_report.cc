// Weather analysis: the paper's Section 2/3.5 running example.
//
//  * Histograms via computed grouping categories:
//      GROUP BY Day(Time), Nation(Latitude, Longitude)
//  * The full CUBE over (day, nation) with MAX(Temp).
//  * Decorations (Section 3.5): continent is functionally dependent on
//    nation, so it appears only where nation is concrete — Table 7's rule.
//  * The Section 3.4 "minimalist" output mode: NULL + GROUPING() instead of
//    the ALL token.

#include <iostream>

#include "datacube/cube/cube_operator.h"
#include "datacube/sql/engine.h"
#include "datacube/table/print.h"
#include "datacube/workload/weather.h"

namespace {

int Fail(const datacube::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main() {
  using namespace datacube;

  Result<Table> weather =
      GenerateWeather({.num_rows = 500, .num_days = 5, .seed = 42});
  if (!weather.ok()) return Fail(weather.status());
  std::cout << "=== Weather (Table 1 shape, " << weather->num_rows()
            << " observations) ===\n"
            << FormatTable(*weather, {.max_rows = 5}) << "\n";

  // --- Histogram GROUP BY over computed categories ---------------------
  sql::Catalog catalog;
  if (Status st = catalog.Register("Weather", *weather); !st.ok()) {
    return Fail(st);
  }
  Result<Table> histogram = sql::ExecuteSql(
      "SELECT day, nation, MAX(Temp) AS max_temp "
      "FROM Weather "
      "GROUP BY Day(Time) AS day, Nation(Latitude, Longitude) AS nation "
      "ORDER BY 1, 2 LIMIT 12",
      catalog);
  if (!histogram.ok()) return Fail(histogram.status());
  std::cout << "=== Daily max temperature by nation (histogram GROUP BY) ===\n"
            << FormatTable(*histogram) << "\n";

  // --- CUBE with a decoration: Table 7 --------------------------------
  CubeSpec spec;
  spec.cube = {GroupExpr{Expr::Call("day", {Expr::Column("Time")}), "day"},
               GroupExpr{Expr::Call("nation", {Expr::Column("Latitude"),
                                               Expr::Column("Longitude")}),
                         "nation"}};
  spec.aggregates = {Agg("max", "Temp", "max_temp")};
  // continent is functionally dependent on nation (grouping column #1).
  spec.decorations = {
      Decoration{Expr::Call("continent",
                            {Expr::Call("nation", {Expr::Column("Latitude"),
                                                   Expr::Column("Longitude")})}),
                 "continent", /*determinant=*/0b10}};
  Result<CubeResult> cube = ExecuteCube(*weather, spec);
  if (!cube.ok()) return Fail(cube.status());
  std::cout << "=== CUBE day x nation with continent decoration (Table 7) ===\n"
            << FormatTable(cube->table, {.max_rows = 20}) << "\n";
  std::cout << "Note: continent is NULL on rows where nation is ALL — the\n"
            << "decoration is only emitted when its determinant is grouped.\n\n";

  // --- Section 3.4: NULL + GROUPING() instead of ALL -------------------
  sql::EngineOptions minimalist;
  minimalist.all_mode = AllMode::kNullWithGrouping;
  Result<Table> grouping_mode = sql::ExecuteSql(
      "SELECT nation, MAX(Temp) AS max_temp, GROUPING(nation) AS is_super "
      "FROM Weather "
      "GROUP BY CUBE Nation(Latitude, Longitude) AS nation "
      "ORDER BY 3, 1",
      catalog, minimalist);
  if (!grouping_mode.ok()) return Fail(grouping_mode.status());
  std::cout << "=== Minimalist mode: NULL data values + GROUPING() ===\n"
            << FormatTable(*grouping_mode) << "\n";
  return 0;
}
