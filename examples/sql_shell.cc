// Interactive mini-SQL shell over CSV files, speaking the paper's dialect.
//
// Usage:
//   sql_shell [name=path.csv ...]
//
// Tables named on the command line are loaded from CSV; the built-in
// demonstration tables `sales` (Tables 3-6 data), `fig4` (Figure 4 data) and
// `weather` (Table 1 shape) are always available. Commands:
//
//   .tables            list registered tables
//   .schema NAME       show a table's columns
//   .mode all|null     toggle Section 3.3 ALL tokens vs 3.4 NULL+GROUPING
//   .quit              exit
//   SELECT ...;        any supported query, e.g.
//     SELECT Model, Year, SUM(Units) FROM sales GROUP BY ROLLUP Model, Year;

#include <iostream>
#include <string>

#include "datacube/common/str_util.h"
#include "datacube/sql/engine.h"
#include "datacube/table/csv.h"
#include "datacube/table/print.h"
#include "datacube/workload/sales.h"
#include "datacube/workload/weather.h"

namespace {

using namespace datacube;

void ShowTables(const sql::Catalog& catalog) {
  for (const std::string& name : catalog.Names()) {
    Result<const Table*> t = catalog.Get(name);
    std::cout << "  " << name << " (" << (*t)->num_rows() << " rows, "
              << (*t)->num_columns() << " columns)\n";
  }
}

void ShowSchema(const sql::Catalog& catalog, const std::string& name) {
  Result<const Table*> t = catalog.Get(name);
  if (!t.ok()) {
    std::cout << t.status().ToString() << "\n";
    return;
  }
  for (const Field& f : (*t)->schema().fields()) {
    std::cout << "  " << f.name << " " << DataTypeName(f.type) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  sql::Catalog catalog;
  (void)catalog.Register("sales", Table3SalesTable().value());
  (void)catalog.Register("fig4", Figure4SalesTable().value());
  (void)catalog.Register("weather",
                         GenerateWeather({.num_rows = 500, .num_days = 7,
                                          .seed = 42})
                             .value());
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::cerr << "expected name=path.csv, got: " << arg << "\n";
      return 1;
    }
    Result<Table> table = ReadCsvFile(arg.substr(eq + 1));
    if (!table.ok()) {
      std::cerr << "cannot load " << arg << ": " << table.status().ToString()
                << "\n";
      return 1;
    }
    if (Status st = catalog.Register(arg.substr(0, eq), std::move(*table));
        !st.ok()) {
      std::cerr << st.ToString() << "\n";
      return 1;
    }
  }

  sql::EngineOptions options;
  std::cout << "datacube sql shell — the paper's GROUP BY CUBE/ROLLUP dialect\n"
            << "type .tables to list tables, .quit to exit\n";
  std::string buffer;
  std::string line;
  while (true) {
    std::cout << (buffer.empty() ? "cube> " : "  ... ") << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::string trimmed = Trim(line);
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '.') {
      if (trimmed == ".quit" || trimmed == ".exit") break;
      if (trimmed == ".tables") {
        ShowTables(catalog);
      } else if (trimmed.rfind(".schema ", 0) == 0) {
        ShowSchema(catalog, Trim(trimmed.substr(8)));
      } else if (trimmed == ".mode all") {
        options.all_mode = AllMode::kAllToken;
        std::cout << "super-aggregates shown as ALL\n";
      } else if (trimmed == ".mode null") {
        options.all_mode = AllMode::kNullWithGrouping;
        std::cout << "super-aggregates shown as NULL (use GROUPING())\n";
      } else {
        std::cout << "unknown command: " << trimmed << "\n";
      }
      continue;
    }
    buffer += line + "\n";
    if (trimmed.empty() || trimmed.back() != ';') continue;
    Result<Table> result = sql::ExecuteSql(buffer, catalog, options);
    buffer.clear();
    if (!result.ok()) {
      std::cout << result.status().ToString() << "\n";
      continue;
    }
    std::cout << FormatTable(*result, {.max_rows = 100})
              << "(" << result->num_rows() << " rows)\n";
  }
  return 0;
}
