// OLAP reporting: reproduces the paper's Tables 3.a, 3.b, 4, 5 and 6 from
// the sales-summary data, then demonstrates the star/snowflake dimension
// machinery of Section 3.6 and the Red Brick ordered aggregates of
// Section 1.2.

#include <iostream>

#include "datacube/cube/cube_operator.h"
#include "datacube/olap/crosstab.h"
#include "datacube/olap/reports.h"
#include "datacube/olap/window.h"
#include "datacube/schema/star.h"
#include "datacube/table/print.h"
#include "datacube/workload/sales.h"

namespace {

int Fail(const datacube::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main() {
  using namespace datacube;

  Table sales = Table3SalesTable().value();

  // Chevy slice used by Tables 3, 5 and 6.a.
  std::vector<bool> chevy_mask(sales.num_rows());
  for (size_t r = 0; r < sales.num_rows(); ++r) {
    chevy_mask[r] = sales.GetValue(r, 0) == Value::String("Chevy");
  }
  Table chevy = sales.FilterRows(chevy_mask).value();

  // --- Table 3.a: roll-up report with sub-total rows -------------------
  Result<CubeResult> rollup =
      Rollup(chevy, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
             {Agg("sum", "Units", "Sales")});
  if (!rollup.ok()) return Fail(rollup.status());
  Result<std::string> t3a = FormatRollupReport(rollup->table, 3, 3);
  if (!t3a.ok()) return Fail(t3a.status());
  std::cout << "=== Table 3.a: Sales Roll Up by Model by Year by Color ===\n"
            << *t3a << "\n";

  // --- Table 3.b: Chris Date's relational alternative ------------------
  Result<std::string> t3b = FormatDateReport(rollup->table, 3, 3);
  if (!t3b.ok()) return Fail(t3b.status());
  std::cout << "=== Table 3.b: the same data, Date-style ===\n" << *t3b << "\n";

  // --- Table 5.a: the ALL-value relational representation --------------
  std::cout << "=== Table 5.a: Sales Summary (rollup rows with ALL) ===\n"
            << FormatTable(rollup->table) << "\n";

  // --- Table 6: cross tabs ---------------------------------------------
  Result<CubeResult> chevy_cube =
      Cube(chevy, {GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "Units")});
  if (!chevy_cube.ok()) return Fail(chevy_cube.status());
  CrossTabOptions xtab;
  xtab.corner_label = "Chevy";
  Result<std::string> t6a = FormatCrossTab(chevy_cube->table, 1, 0, 2, xtab);
  if (!t6a.ok()) return Fail(t6a.status());
  std::cout << "=== Table 6.a: Chevy Sales Cross Tab ===\n" << *t6a << "\n";

  // --- Table 4: Excel-style pivot over the full 3D cube ----------------
  Result<CubeResult> full_cube =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "Sales")});
  if (!full_cube.ok()) return Fail(full_cube.status());
  CrossTabOptions pivot;
  pivot.corner_label = "Sum Sales";
  Result<std::string> t4 = FormatPivot(full_cube->table, 0, 1, 2, 3, pivot);
  if (!t4.ok()) return Fail(t4.status());
  std::cout << "=== Table 4: pivot with Ford sales included ===\n" << *t4
            << "\n";

  // --- Section 3.6: star schema with a dealer geography dimension ------
  Result<Table> fact = GenerateSales(
      {.num_rows = 1000, .num_models = 3, .num_years = 2, .num_colors = 3,
       .num_dealers = 3, .skew = 0.3, .seed = 17});
  if (!fact.ok()) return Fail(fact.status());
  TableBuilder dim_builder({Field{"Dealer", DataType::kString},
                            Field{"District", DataType::kString},
                            Field{"Region", DataType::kString}});
  dim_builder.Row({Value::String("dealer0"), Value::String("NorCal"),
                   Value::String("West")});
  dim_builder.Row({Value::String("dealer1"), Value::String("SoCal"),
                   Value::String("West")});
  dim_builder.Row({Value::String("dealer2"), Value::String("Empire"),
                   Value::String("East")});
  Table dealer_dim = std::move(dim_builder).Build().value();

  StarSchema star(*fact);
  Result<DimensionTable> dim =
      DimensionTable::Create("dealer", dealer_dim, "Dealer");
  if (!dim.ok()) return Fail(dim.status());
  if (Status st = star.AddDimension("Dealer", std::move(*dim)); !st.ok()) {
    return Fail(st);
  }
  if (Status st = star.AddHierarchy(
          Hierarchy{"geography", {"Dealer", "District", "Region"}});
      !st.ok()) {
    return Fail(st);
  }
  Result<Table> wide = star.Denormalize();
  if (!wide.ok()) return Fail(wide.status());
  Result<CubeSpec> geo_spec =
      star.HierarchyRollupSpec("geography", {Agg("sum", "Units", "Units")});
  if (!geo_spec.ok()) return Fail(geo_spec.status());
  Result<CubeResult> geo = ExecuteCube(*wide, *geo_spec);
  if (!geo.ok()) return Fail(geo.status());
  std::cout << "=== Geography hierarchy rollup (Region > District > Dealer) ===\n"
            << FormatTable(geo->table, {.max_rows = 15}) << "\n";

  // --- Section 1.2: Red Brick ordered aggregates -----------------------
  Result<CubeResult> by_model =
      GroupBy(*fact, {GroupCol("Model")}, {Agg("sum", "Units", "Units")});
  if (!by_model.ok()) return Fail(by_model.status());
  Result<Table> ranked = AddRank(by_model->table, 1, "rank");
  if (!ranked.ok()) return Fail(ranked.status());
  Result<Table> with_share = AddRatioToTotal(*ranked, 1, "share");
  if (!with_share.ok()) return Fail(with_share.status());
  WindowOptions cume_options;
  cume_options.order_by = {SortKey{1, false}};
  Result<Table> with_cume =
      AddCumulative(*with_share, 1, "cumulative", cume_options);
  if (!with_cume.ok()) return Fail(with_cume.status());
  std::cout << "=== Rank / Ratio_To_Total / Cumulative by model ===\n"
            << FormatTable(*with_cume) << "\n";
  return 0;
}
