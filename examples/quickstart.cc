// Quickstart: the paper's Figure 4 end to end.
//
// Builds the 18-row SALES table (Model × Year × Color), runs
//   SELECT Model, Year, Color, SUM(Units)
//   FROM Sales
//   GROUP BY CUBE Model, Year, Color;
// and prints the 48-row data cube, including the grand-total tuple
// (ALL, ALL, ALL, 941). Then shows the same result through the SQL engine
// and the ROLLUP degenerate form.

#include <cstdio>
#include <iostream>

#include "datacube/cube/cube_operator.h"
#include "datacube/sql/engine.h"
#include "datacube/table/print.h"
#include "datacube/workload/sales.h"

namespace {

int Fail(const datacube::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main() {
  using namespace datacube;

  Result<Table> sales = Figure4SalesTable();
  if (!sales.ok()) return Fail(sales.status());
  std::cout << "=== SALES (Figure 4, " << sales->num_rows() << " rows) ===\n"
            << FormatTable(*sales, {.max_rows = 6}) << "\n";

  // --- The CUBE operator through the C++ API -------------------------
  Result<CubeResult> cube =
      Cube(*sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "Units")});
  if (!cube.ok()) return Fail(cube.status());
  std::cout << "=== GROUP BY CUBE Model, Year, Color ("
            << cube->table.num_rows() << " rows = 3 x 4 x 4) ===\n"
            << FormatTable(cube->table) << "\n";
  std::cout << "algorithm: " << CubeAlgorithmName(cube->stats.algorithm_used)
            << ", Iter calls: " << cube->stats.iter_calls
            << ", Merge calls: " << cube->stats.merge_calls
            << ", input scans: " << cube->stats.input_scans << "\n\n";

  // --- EXPLAIN: what the operator plans to do --------------------------
  CubeSpec explain_spec;
  explain_spec.cube = {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")};
  explain_spec.aggregates = {Agg("sum", "Units", "Units")};
  Result<std::string> plan = ExplainCube(*sales, explain_spec);
  if (!plan.ok()) return Fail(plan.status());
  std::cout << "=== EXPLAIN ===\n" << *plan << "\n";

  // --- The same cube through the SQL front end ------------------------
  sql::Catalog catalog;
  if (Status st = catalog.Register("Sales", *sales); !st.ok()) return Fail(st);
  Result<Table> via_sql = sql::ExecuteSql(
      "SELECT Model, Year, Color, SUM(Units) AS Units "
      "FROM Sales "
      "GROUP BY CUBE Model, Year, Color "
      "ORDER BY 1, 2, 3",
      catalog);
  if (!via_sql.ok()) return Fail(via_sql.status());
  std::cout << "=== Same cube via SQL (grand total row) ===\n";
  for (size_t r = 0; r < via_sql->num_rows(); ++r) {
    if (via_sql->GetValue(r, 0).is_all() && via_sql->GetValue(r, 1).is_all() &&
        via_sql->GetValue(r, 2).is_all()) {
      std::cout << "  (ALL, ALL, ALL, "
                << via_sql->GetValue(r, 3).ToString() << ")\n\n";
    }
  }

  // --- ROLLUP: the degenerate drill-down form -------------------------
  Result<CubeResult> rollup =
      Rollup(*sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
             {Agg("sum", "Units", "Units")});
  if (!rollup.ok()) return Fail(rollup.status());
  std::cout << "=== GROUP BY ROLLUP Model, Year, Color ("
            << rollup->table.num_rows() << " rows) ===\n"
            << FormatTable(rollup->table, {.max_rows = 12});
  return 0;
}
