// Materialized cubes and incremental maintenance — the paper's Section 6
// scenario: "customers use these operators to compute and store the cube
// [and] define triggers on the underlying tables so that when the tables
// change, the cube is dynamically updated."
//
// This example materializes a cube with SUM, COUNT and MAX, streams inserts
// and deletes through it, and prints the maintenance counters that expose
// the paper's asymmetry: SUM/COUNT are cheap for delete, MAX is cheap only
// for insert (with the "loses one competition" short-circuit) and must
// recompute cells when its incumbent is deleted.

#include <iostream>

#include "datacube/cube/materialized_cube.h"
#include "datacube/table/print.h"
#include "datacube/workload/sales.h"

namespace {

int Fail(const datacube::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

void PrintStats(const datacube::MaintenanceStats& stats) {
  std::cout << "  inserts=" << stats.inserts << " deletes=" << stats.deletes
            << " cells_updated=" << stats.cells_updated
            << " cells_skipped=" << stats.cells_skipped
            << " cells_recomputed=" << stats.cells_recomputed
            << " recompute_rows_scanned=" << stats.recompute_rows_scanned
            << "\n";
}

}  // namespace

int main() {
  using namespace datacube;

  Table sales = Table3SalesTable().value();
  CubeSpec spec;
  spec.cube = {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")};
  spec.aggregates = {Agg("sum", "Units", "total"), CountStar("n"),
                     Agg("max", "Units", "biggest")};

  Result<std::unique_ptr<MaterializedCube>> built =
      MaterializedCube::Build(sales, spec);
  if (!built.ok()) return Fail(built.status());
  MaterializedCube& cube = **built;

  std::cout << "=== Materialized cube over Tables 3-6 sales data ===\n";
  Result<Table> initial = cube.ToTable();
  if (!initial.ok()) return Fail(initial.status());
  std::cout << FormatTable(*initial, {.max_rows = 10}) << "\n";

  auto grand_total = [&] {
    Result<Value> total = cube.ValueAt(
        "total", {Value::All(), Value::All(), Value::All()});
    Result<Value> biggest = cube.ValueAt(
        "biggest", {Value::All(), Value::All(), Value::All()});
    std::cout << "  grand total=" << (total.ok() ? total->ToString() : "?")
              << " max=" << (biggest.ok() ? biggest->ToString() : "?") << "\n";
  };
  grand_total();

  std::cout << "\n--- INSERT (Chevy, 1994, black, 30): 2^N cheap handle "
               "updates ---\n";
  if (Status st = cube.ApplyInsert({Value::String("Chevy"), Value::Int64(1994),
                                    Value::String("black"), Value::Int64(30)});
      !st.ok()) {
    return Fail(st);
  }
  grand_total();
  PrintStats(cube.maintenance_stats());

  std::cout << "\n--- INSERT a losing value (Ford, 1995, white, 1): MAX "
               "short-circuits, SUM/COUNT still update ---\n";
  if (Status st = cube.ApplyInsert({Value::String("Ford"), Value::Int64(1995),
                                    Value::String("white"), Value::Int64(1)});
      !st.ok()) {
    return Fail(st);
  }
  PrintStats(cube.maintenance_stats());

  std::cout << "\n--- DELETE a non-max row (Ford, 1994, white, 10): no "
               "recompute needed ---\n";
  if (Status st = cube.ApplyDelete({Value::String("Ford"), Value::Int64(1994),
                                    Value::String("white"), Value::Int64(10)});
      !st.ok()) {
    return Fail(st);
  }
  PrintStats(cube.maintenance_stats());

  std::cout << "\n--- DELETE the global max (Chevy, 1995, white, 115): MAX is "
               "delete-holistic; cells recompute from base data ---\n";
  if (Status st = cube.ApplyDelete({Value::String("Chevy"), Value::Int64(1995),
                                    Value::String("white"),
                                    Value::Int64(115)});
      !st.ok()) {
    return Fail(st);
  }
  grand_total();
  PrintStats(cube.maintenance_stats());

  std::cout << "\n--- Section 4 addressing ---\n";
  Result<double> share = cube.PercentOfTotal(
      "total", {Value::String("Chevy"), Value::All(), Value::All()});
  if (!share.ok()) return Fail(share.status());
  std::cout << "  Chevy percent-of-total: " << *share * 100.0 << "%\n";

  std::cout << "\n=== Final cube ===\n";
  Result<Table> final_table = cube.ToTable();
  if (!final_table.ok()) return Fail(final_table.status());
  std::cout << FormatTable(*final_table, {.max_rows = 10});
  return 0;
}
