#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "datacube/cube/cube_operator.h"
#include "datacube/obs/trace.h"
#include "datacube/testing/differential.h"
#include "datacube/testing/random_table.h"
#include "datacube/workload/sales.h"

// The parallel-determinism tier: the morsel-driven / radix-partitioned /
// cascade-parallel path must produce the same relation as the serial engine
// for every thread count, morsel size, and partition count — including the
// adversarial shapes (one-row morsels, degenerate partition counts) and the
// degenerate tables (empty, single-row, all-duplicate keys). Results are
// compared through the differential oracle's tolerance rules, which absorb
// the float summation-order drift that different merge orders legally
// produce.

namespace datacube {
namespace {

using testing::DiffReport;
using testing::DiffResultTables;
using testing::MakeRandomTable;
using testing::RandomTableProfile;

CubeSpec ThreeDimSpec() {
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1"), GroupCol("d2")};
  spec.aggregates = {Agg("sum", "x", "s"), Agg("avg", "y", "a"),
                     Agg("min", "x", "mn"), Agg("count", "x", "c")};
  return spec;
}

Table SweepInput() {
  static Table* table = new Table(
      GenerateCubeInput({.num_rows = 20000, .num_dims = 3, .cardinality = 12,
                         .skew = 0.8, .seed = 19})
          .value());
  return *table;
}

TEST(ParallelDeterminismTest, SweepThreadsMorselsPartitions) {
  Table input = SweepInput();
  CubeSpec spec = ThreeDimSpec();
  Table baseline = ExecuteCube(input, spec)->table;

  for (int threads : {1, 2, 3, 8, 16}) {
    for (size_t morsel : {size_t{1}, size_t{7}, size_t{64} * 1024}) {
      for (size_t partitions : {size_t{1}, size_t{5}, size_t{32}}) {
        CubeOptions options;
        options.num_threads = threads;
        options.morsel_rows = morsel;
        options.num_partitions = partitions;
        Result<CubeResult> r = ExecuteCube(input, spec, options);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        DiffReport report = DiffResultTables(baseline, r->table, spec);
        EXPECT_TRUE(report.ok())
            << "threads=" << threads << " morsel=" << morsel
            << " partitions=" << partitions << "\n"
            << report.ToString();
      }
    }
  }
}

TEST(ParallelDeterminismTest, EmptySingleRowAndAllDuplicateTables) {
  std::vector<RandomTableProfile> profiles = {
      {.label = "empty", .rows = 0, .dims = 3},
      {.label = "single_row", .rows = 1, .dims = 3},
      {.label = "all_dup",
       .rows = 5000,
       .dims = 3,
       .cardinality = 1,
       .null_rate = 0.0,
       .dup_rate = 1.0},
  };
  for (const RandomTableProfile& profile : profiles) {
    Table input = MakeRandomTable(/*seed=*/77, profile);
    CubeSpec spec;
    spec.cube = {GroupCol("d0"), GroupCol("d1"), GroupCol("d2")};
    spec.aggregates = {Agg("sum", "mi", "s"), Agg("avg", "mf", "a"),
                       Agg("count", "mi", "c")};
    Table baseline = ExecuteCube(input, spec)->table;
    for (int threads : {2, 8}) {
      CubeOptions options;
      options.num_threads = threads;
      options.morsel_rows = 64;
      options.num_partitions = 5;
      Result<CubeResult> r = ExecuteCube(input, spec, options);
      ASSERT_TRUE(r.ok()) << profile.label << ": " << r.status().ToString();
      DiffReport report = DiffResultTables(baseline, r->table, spec);
      EXPECT_TRUE(report.ok())
          << profile.label << " threads=" << threads << "\n"
          << report.ToString();
    }
  }
}

TEST(ParallelDeterminismTest, CountersDescribeTheParallelRun) {
  Table input = SweepInput();
  CubeSpec spec = ThreeDimSpec();
  CubeOptions options;
  options.num_threads = 4;
  options.morsel_rows = 1000;
  options.num_partitions = 8;
  Result<CubeResult> r = ExecuteCube(input, spec, options);
  ASSERT_TRUE(r.ok());
  const CubeStats& stats = r->stats;
  EXPECT_EQ(stats.threads_used, 4);
  // 20000 rows / 1000-row morsels: every row is covered exactly once.
  EXPECT_EQ(stats.morsels_dispatched, 20u);
  EXPECT_EQ(stats.partitions, 8u);
  EXPECT_EQ(stats.merge_tasks, 8u);
  // A 3-dimension cube has 8 grouping sets; every non-core set is one
  // cascade task.
  EXPECT_EQ(stats.cascade_tasks, 7u);
  EXPECT_GE(stats.scan_seconds, 0.0);
  EXPECT_GE(stats.merge_seconds, 0.0);
  EXPECT_GE(stats.cascade_seconds, 0.0);
}

size_t CountSpans(const obs::SpanNode& node, const std::string& name) {
  size_t count = node.name == name ? 1 : 0;
  for (const auto& child : node.children) count += CountSpans(*child, name);
  return count;
}

uint64_t SumSpanAttr(const obs::SpanNode& node, const std::string& span_name,
                     const std::string& attr) {
  uint64_t total = 0;
  if (node.name == span_name) {
    if (const std::string* v = node.FindAttr(attr)) {
      total += std::stoull(*v);
    }
  }
  for (const auto& child : node.children) {
    total += SumSpanAttr(*child, span_name, attr);
  }
  return total;
}

TEST(ParallelTraceTest, StitchedTaskSpansMatchTheRunCounters) {
  Table input = SweepInput();
  CubeSpec spec = ThreeDimSpec();
  CubeOptions options;
  options.num_threads = 2;
  options.morsel_rows = 1000;
  options.num_partitions = 4;
  obs::Trace trace("query");
  CubeStats stats;
  {
    obs::TraceScope scope(&trace);
    Result<CubeResult> r = ExecuteCube(input, spec, options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    stats = r->stats;
  }
  ASSERT_EQ(stats.threads_used, 2);
  const obs::SpanNode& root = trace.root();
  // Every pool task's span was stitched back under the query root: counts
  // agree exactly with what CubeStats says ran.
  EXPECT_EQ(CountSpans(root, "morsel_scan"),
            static_cast<size_t>(stats.threads_used));
  EXPECT_EQ(CountSpans(root, "merge_partition"), stats.merge_tasks);
  EXPECT_EQ(CountSpans(root, "cascade_set"), stats.cascade_tasks);
  // The morsel counts the scan workers reported sum to the dispatch total.
  EXPECT_EQ(SumSpanAttr(root, "morsel_scan", "morsels"),
            stats.morsels_dispatched);
  // Merge tasks each report their partition's resulting cells; jointly they
  // hold the whole GROUP BY core. (cells_absorbed can be legitimately zero
  // when one fast worker scanned every morsel, so assert on "cells".)
  EXPECT_GT(SumSpanAttr(root, "merge_partition", "cells"), 0u);
  // The phase spans are on the spawning thread, under execute_cube.
  ASSERT_EQ(root.children.size(), 1u);
  const obs::SpanNode& exec = *root.children[0];
  EXPECT_EQ(exec.name, "execute_cube");
  EXPECT_EQ(CountSpans(exec, "parallel_scan"), 1u);
  EXPECT_EQ(CountSpans(exec, "parallel_merge"), 1u);
  EXPECT_EQ(CountSpans(exec, "parallel_cascade"), 1u);
  // Rendering a wide parallel trace aggregates past the top-K cap without
  // losing the totals.
  std::string text = trace.Render(/*top_k=*/2);
  EXPECT_NE(text.find("merge_partition"), std::string::npos);
  EXPECT_NE(text.find("... 2 more merge_partition  total"), std::string::npos)
      << text;
}

TEST(ParallelDeterminismTest, AutoPartitionsAreFourPerWorker) {
  Table input = SweepInput();
  CubeSpec spec = ThreeDimSpec();
  CubeOptions options;
  options.num_threads = 3;
  Result<CubeResult> r = ExecuteCube(input, spec, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.partitions, 12u);
}

TEST(ParallelDeterminismTest, TinyInputFallsBackToSerial) {
  Table input =
      GenerateCubeInput({.num_rows = 100, .num_dims = 2, .cardinality = 4})
          .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1")};
  spec.aggregates = {Agg("sum", "x", "s")};
  CubeOptions options;
  options.num_threads = 8;
  Result<CubeResult> r = ExecuteCube(input, spec, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.threads_used, 1);
  EXPECT_EQ(r->stats.morsels_dispatched, 0u);
  EXPECT_EQ(r->stats.merge_tasks, 0u);
}

TEST(ParallelDeterminismTest, ForcedNonCoreAlgorithmRunsSerially) {
  // A forced algorithm is honored serially rather than silently replaced by
  // the parallel from-core path.
  Table input = SweepInput();
  CubeSpec spec = ThreeDimSpec();
  CubeOptions options;
  options.num_threads = 8;
  options.algorithm = CubeAlgorithm::kNaive2N;
  Result<CubeResult> r = ExecuteCube(input, spec, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.threads_used, 1);
  EXPECT_EQ(r->stats.algorithm_used, CubeAlgorithm::kNaive2N);
}

TEST(ParallelDeterminismTest, HolisticAggregatesFallBackToSerial) {
  // median has no Merge, so the parallel gate (all_mergeable) must refuse
  // and the fallback must still record serial execution.
  Table input = SweepInput();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1")};
  spec.aggregates = {Agg("median", "x", "med")};
  CubeOptions options;
  options.num_threads = 8;
  Result<CubeResult> r = ExecuteCube(input, spec, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.threads_used, 1);
  Table baseline = ExecuteCube(input, spec)->table;
  EXPECT_TRUE(r->table.EqualsIgnoringRowOrder(baseline));
}

TEST(ParallelDeterminismTest, LegacyCellMapParallelUsesMorselsToo) {
  Table input = SweepInput();
  CubeSpec spec = ThreeDimSpec();
  Table baseline = ExecuteCube(input, spec)->table;
  CubeOptions options;
  options.num_threads = 4;
  options.morsel_rows = 512;
  options.use_legacy_cellmap = true;
  Result<CubeResult> r = ExecuteCube(input, spec, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.threads_used, 4);
  EXPECT_GT(r->stats.morsels_dispatched, 0u);
  DiffReport report = DiffResultTables(baseline, r->table, spec);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// ------------------------------------------------ oracle wiring

TEST(ParallelDeterminismTest, OracleSweepsAdversarialParallelShapes) {
  std::vector<std::string> labels;
  for (const testing::OracleConfig& c : testing::AllOracleConfigs()) {
    labels.push_back(c.label);
  }
  auto has = [&](const char* label) {
    return std::find(labels.begin(), labels.end(), label) != labels.end();
  };
  EXPECT_TRUE(has("parallel_x3_m7_p5"));
  EXPECT_TRUE(has("parallel_x8_m1_p32"));
  EXPECT_TRUE(has("parallel_x2_p1"));
}

TEST(ParallelDeterminismTest, DifferentialRunCoversParallelShapes) {
  RandomTableProfile profile{.label = "parallel_smoke",
                             .rows = 600,
                             .dims = 3,
                             .cardinality = 5,
                             .null_rate = 0.15,
                             .dup_rate = 0.3};
  Table input = MakeRandomTable(/*seed=*/123, profile);
  CubeSpec spec = testing::MakeRandomSpec(/*seed=*/123, profile,
                                          /*include_holistic=*/false);
  DiffReport report = testing::RunDifferential(input, spec);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace datacube
