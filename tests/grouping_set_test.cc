#include <gtest/gtest.h>

#include <algorithm>

#include "datacube/cube/grouping_set.h"

namespace datacube {
namespace {

TEST(GroupingSetTest, FullSetAndPopCount) {
  EXPECT_EQ(FullSet(0), 0ULL);
  EXPECT_EQ(FullSet(3), 0b111ULL);
  EXPECT_EQ(PopCount(0b101), 2);
  EXPECT_TRUE(IsGrouped(0b101, 0));
  EXPECT_FALSE(IsGrouped(0b101, 1));
}

TEST(GroupingSetTest, CubeIsPowerSet) {
  std::vector<GroupingSet> sets = CubeSets(3);
  EXPECT_EQ(sets.size(), 8u);  // 2^3
  // Core first, grand total last.
  EXPECT_EQ(sets.front(), 0b111ULL);
  EXPECT_EQ(sets.back(), 0ULL);
  // All distinct.
  std::vector<GroupingSet> sorted = sets;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(GroupingSetTest, RollupIsPrefixChain) {
  // Section 3: ROLLUP produces (v1..vn), (v1..ALL), ..., (ALL..ALL).
  std::vector<GroupingSet> sets = RollupSets(3);
  ASSERT_EQ(sets.size(), 4u);
  EXPECT_EQ(sets[0], 0b111ULL);
  EXPECT_EQ(sets[1], 0b011ULL);
  EXPECT_EQ(sets[2], 0b001ULL);
  EXPECT_EQ(sets[3], 0b000ULL);
}

TEST(GroupingSetTest, GroupByIsSingleSet) {
  EXPECT_EQ(GroupBySets(4), std::vector<GroupingSet>{0b1111ULL});
}

TEST(GroupingSetTest, ComposeCompoundAlgebra) {
  // GROUP BY 1 col, ROLLUP 2 cols, CUBE 2 cols:
  // 1 × (2+1) × 2^2 = 12 grouping sets (Figure 5's shape).
  std::vector<GroupingSet> sets = ComposeGroupingSets(1, 2, 2);
  EXPECT_EQ(sets.size(), 12u);
  // Every set contains the GROUP BY column (bit 0).
  for (GroupingSet s : sets) EXPECT_TRUE(IsGrouped(s, 0));
  // The core (all 5 columns) is present and first.
  EXPECT_EQ(sets.front(), FullSet(5));
  // The coarsest set is just the GROUP BY column.
  EXPECT_EQ(sets.back(), 0b1ULL);
}

TEST(GroupingSetTest, AlgebraIdentityCubeOfRollupIsCube) {
  // Section 3.1: CUBE(ROLLUP) = CUBE — composing a cube over columns that
  // are already rolled up yields the full power set when the parts are
  // viewed over the same columns. Interpreted over the compose machinery:
  // a compound with zero group-by, zero rollup and n cube columns equals
  // CubeSets(n); a rollup of zero columns is the identity.
  EXPECT_EQ(ComposeGroupingSets(0, 0, 3), CubeSets(3));
  EXPECT_EQ(ComposeGroupingSets(0, 3, 0), RollupSets(3));
  EXPECT_EQ(ComposeGroupingSets(3, 0, 0), GroupBySets(3));
}

TEST(GroupingSetTest, CrossProductAssociativity) {
  // (GROUP BY ∘ ROLLUP) over windows == compose of the same windows.
  std::vector<GroupingSet> a =
      CrossProductSets({GroupBySets(2), RollupSets(2)}, {2, 2});
  std::vector<GroupingSet> b = ComposeGroupingSets(2, 2, 0);
  EXPECT_EQ(a, b);
}

TEST(GroupingSetTest, NormalizeDedupsAndOrders) {
  std::vector<GroupingSet> sets =
      NormalizeSets({0b01, 0b11, 0b01, 0b00, 0b10});
  ASSERT_EQ(sets.size(), 4u);
  EXPECT_EQ(sets[0], 0b11ULL);
  // Same popcount orders descending numerically.
  EXPECT_EQ(sets[1], 0b10ULL);
  EXPECT_EQ(sets[2], 0b01ULL);
  EXPECT_EQ(sets[3], 0b00ULL);
}

TEST(GroupingSetTest, ToStringNamesGroupedColumns) {
  std::vector<std::string> names = {"Model", "Year", "Color"};
  EXPECT_EQ(GroupingSetToString(0b101, names), "{Model, Color}");
  EXPECT_EQ(GroupingSetToString(0, names), "{}");
}

class CubeSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CubeSizeTest, PowerSetSize) {
  size_t n = GetParam();
  EXPECT_EQ(CubeSets(n).size(), 1ULL << n);
  EXPECT_EQ(RollupSets(n).size(), n + 1);
}

INSTANTIATE_TEST_SUITE_P(Dims0To10, CubeSizeTest,
                         ::testing::Values(0, 1, 2, 3, 4, 6, 8, 10));

}  // namespace
}  // namespace datacube
