#include "datacube/obs/http_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace datacube::obs {
namespace {

using Clock = std::chrono::steady_clock;

int MillisSince(Clock::time_point start) {
  return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                              Clock::now() - start)
                              .count());
}

// Raw TCP client so tests control exactly what bytes hit the wire and when —
// urllib-style helpers hide the split-send and slow-loris shapes this
// transport exists to handle.
class RawClient {
 public:
  explicit RawClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  RawClient(const RawClient&) = delete;
  RawClient& operator=(const RawClient&) = delete;

  bool ok() const { return fd_ >= 0; }

  bool Send(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads until the peer closes (the server always closes after one
  /// response); returns everything received.
  std::string RecvAll() {
    std::string out;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd_, buf, sizeof(buf), 0)) > 0) {
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

 private:
  int fd_ = -1;
};

std::string StatusLine(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

/// Starts a server whose handler echoes the parsed request back, so tests
/// can assert on exactly what the transport delivered.
std::unique_ptr<HttpServer> StartEcho(HttpServer::Options options) {
  auto handler = [](const HttpRequest& req) {
    HttpResponse resp;
    if (req.method == "POST" && req.path == "/reject") resp.status = 405;
    resp.body = "method=" + req.method + " path=" + req.path +
                " query=" + req.query + " body=[" + req.body + "]";
    return resp;
  };
  Result<std::unique_ptr<HttpServer>> server =
      HttpServer::Start(options, handler);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return server.ok() ? std::move(*server) : nullptr;
}

// ----------------------------------------------------------------- parsing

TEST(HttpServerTest, ParsesMethodPathQueryAndBody) {
  auto server = StartEcho({});
  ASSERT_NE(server, nullptr);
  RawClient c(server->port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(
      c.Send("POST /query?q=SELECT+1&deadline_ms=5 HTTP/1.1\r\n"
             "Host: x\r\nContent-Length: 5\r\n\r\nhello"));
  std::string response = c.RecvAll();
  EXPECT_NE(StatusLine(response).find("200"), std::string::npos);
  EXPECT_NE(response.find("method=POST path=/query "
                          "query=q=SELECT+1&deadline_ms=5 body=[hello]"),
            std::string::npos);
}

TEST(HttpServerTest, SplitHeadAndBodyStillParses) {
  // Regression: compacting the connection list self-moved the Conn whose
  // index did not change, and a self-moved std::string may clear — the
  // buffered head vanished and the later body bytes never completed the
  // request, so split sends timed out with 408 instead of being served.
  auto server = StartEcho({});
  ASSERT_NE(server, nullptr);
  RawClient c(server->port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.Send("POST /p HTTP/1.1\r\nContent-Length: 4\r\n\r\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  Clock::time_point start = Clock::now();
  ASSERT_TRUE(c.Send("wxyz"));
  std::string response = c.RecvAll();
  EXPECT_NE(StatusLine(response).find("200"), std::string::npos);
  EXPECT_NE(response.find("body=[wxyz]"), std::string::npos);
  EXPECT_LT(MillisSince(start), 1000) << "body completion was not prompt";
}

TEST(HttpServerTest, HeadIsHeadersOnlyWithTrueContentLength) {
  auto server = StartEcho({});
  ASSERT_NE(server, nullptr);
  RawClient c(server->port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.Send("HEAD /h HTTP/1.1\r\nHost: x\r\n\r\n"));
  std::string response = c.RecvAll();
  EXPECT_NE(StatusLine(response).find("200"), std::string::npos);
  // The handler body for "HEAD /h" is known; Content-Length must match it
  // even though the body itself is suppressed.
  std::string body = "method=HEAD path=/h query= body=[]";
  EXPECT_NE(response.find("Content-Length: " + std::to_string(body.size())),
            std::string::npos);
  EXPECT_EQ(response.find("method=HEAD"), std::string::npos)
      << "HEAD response leaked a body";
  EXPECT_NE(response.find("\r\n\r\n"), std::string::npos);
  EXPECT_EQ(response.substr(response.find("\r\n\r\n") + 4), "");
}

TEST(HttpServerTest, HandlerStatusPassesThrough) {
  auto server = StartEcho({});
  ASSERT_NE(server, nullptr);
  RawClient c(server->port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.Send("POST /reject HTTP/1.1\r\nContent-Length: 0\r\n\r\n"));
  EXPECT_NE(StatusLine(c.RecvAll()).find("405"), std::string::npos);
}

// ------------------------------------------------------- protocol errors

TEST(HttpServerTest, OversizedHeadGets431NotSilentParse) {
  // Seed bug: a head that filled the read budget without a blank line was
  // parsed as if complete. It must be answered 431.
  HttpServer::Options options;
  options.max_request_bytes = 512;
  auto server = StartEcho(options);
  ASSERT_NE(server, nullptr);
  RawClient c(server->port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.Send("GET /big HTTP/1.1\r\nX-Huge: " +
                     std::string(2048, 'a')));  // no terminating blank line
  std::string response = c.RecvAll();
  EXPECT_NE(StatusLine(response).find("431"), std::string::npos)
      << "got: " << StatusLine(response);
}

TEST(HttpServerTest, StalledClientGets408NotSilentDrop) {
  // Seed bug: clients that stalled mid-request were dropped without any
  // response. The transport must answer 408 after head_timeout_ms.
  HttpServer::Options options;
  options.head_timeout_ms = 200;
  auto server = StartEcho(options);
  ASSERT_NE(server, nullptr);
  RawClient c(server->port());
  ASSERT_TRUE(c.ok());
  Clock::time_point start = Clock::now();
  ASSERT_TRUE(c.Send("GET /slow HTTP/1.1\r\nX-Part"));  // never finishes
  std::string response = c.RecvAll();
  EXPECT_NE(StatusLine(response).find("408"), std::string::npos)
      << "got: " << response.substr(0, 60);
  EXPECT_GE(MillisSince(start), 150);
  EXPECT_LT(MillisSince(start), 5000);
}

TEST(HttpServerTest, MalformedRequestLineGets400) {
  auto server = StartEcho({});
  ASSERT_NE(server, nullptr);
  RawClient c(server->port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.Send("NOT A VALID REQUEST\r\nHost: x\r\n\r\n"));
  EXPECT_NE(StatusLine(c.RecvAll()).find("400"), std::string::npos);
}

TEST(HttpServerTest, BadAndOversizedContentLength) {
  HttpServer::Options options;
  options.max_body_bytes = 1024;
  auto server = StartEcho(options);
  ASSERT_NE(server, nullptr);
  {
    RawClient c(server->port());
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.Send("POST /p HTTP/1.1\r\nContent-Length: nope\r\n\r\n"));
    EXPECT_NE(StatusLine(c.RecvAll()).find("400"), std::string::npos);
  }
  {
    RawClient c(server->port());
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE(c.Send("POST /p HTTP/1.1\r\nContent-Length: 99999\r\n\r\n"));
    EXPECT_NE(StatusLine(c.RecvAll()).find("413"), std::string::npos);
  }
}

// -------------------------------------------------------- slow-loris fix

TEST(HttpServerTest, SlowClientDoesNotDelayConcurrentRequests) {
  // Regression for the tentpole bug: the seed accepted and served
  // connections serially on one thread, so a slow sender stalled every
  // later client. Here a client that never completes its request must not
  // delay a well-behaved one.
  HttpServer::Options options;
  options.head_timeout_ms = 3000;
  auto server = StartEcho(options);
  ASSERT_NE(server, nullptr);

  RawClient slow(server->port());
  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(slow.Send("GET /stall HTTP/1.1\r\nX-Slow: a"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  Clock::time_point start = Clock::now();
  RawClient fast(server->port());
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(fast.Send("GET /fast HTTP/1.1\r\nHost: x\r\n\r\n"));
  std::string response = fast.RecvAll();
  EXPECT_NE(StatusLine(response).find("200"), std::string::npos);
  EXPECT_NE(response.find("path=/fast"), std::string::npos);
  EXPECT_LT(MillisSince(start), 1500)
      << "fast request was serialized behind the stalled client";
  // And the stalled client still gets its 408 rather than a silent drop.
  EXPECT_NE(StatusLine(slow.RecvAll()).find("408"), std::string::npos);
}

TEST(HttpServerTest, ManyConcurrentClientsAllAnswered) {
  auto server = StartEcho({});
  ASSERT_NE(server, nullptr);
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      RawClient c(server->port());
      if (!c.ok()) return;
      if (!c.Send("GET /c" + std::to_string(i) + " HTTP/1.1\r\n\r\n")) return;
      std::string response = c.RecvAll();
      if (response.find("path=/c" + std::to_string(i)) != std::string::npos) {
        ok_count.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kClients);
}

// ----------------------------------------------------------- line protocol

TEST(HttpServerTest, LineProtocolBypassesHttpFraming) {
  HttpServer::Options options;
  options.enable_line_protocol = true;
  auto server = StartEcho(options);
  ASSERT_NE(server, nullptr);
  RawClient c(server->port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.Send("SELECT 1 FROM T\n"));
  std::string response = c.RecvAll();
  EXPECT_EQ(response, "method=LINE path=SELECT 1 FROM T query= body=[]");
  EXPECT_EQ(response.find("HTTP/"), std::string::npos);
}

TEST(HttpServerTest, LineProtocolOffMeansRawLinesAreMalformed) {
  auto server = StartEcho({});  // enable_line_protocol defaults to false
  ASSERT_NE(server, nullptr);
  RawClient c(server->port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.Send("SELECT 1 FROM T\nmore\r\n\r\n"));
  EXPECT_NE(StatusLine(c.RecvAll()).find("400"), std::string::npos);
}

// ------------------------------------------------------------- lifecycle

TEST(HttpServerTest, StopWithPendingConnectionIsClean) {
  HttpServer::Options options;
  options.head_timeout_ms = 30000;
  auto server = StartEcho(options);
  ASSERT_NE(server, nullptr);
  RawClient pending(server->port());
  ASSERT_TRUE(pending.ok());
  ASSERT_TRUE(pending.Send("GET /never HTTP/1.1\r\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server->Stop();  // must not hang on the half-read connection
  server->Stop();  // idempotent
}

TEST(HttpServerTest, DispatcherReceivesTheWork) {
  std::atomic<int> dispatched{0};
  HttpServer::Options options;
  options.dispatcher = [&dispatched](std::function<void()> work) {
    dispatched.fetch_add(1);
    std::thread(std::move(work)).detach();
  };
  auto server = StartEcho(options);
  ASSERT_NE(server, nullptr);
  RawClient c(server->port());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(c.Send("GET /via-pool HTTP/1.1\r\n\r\n"));
  EXPECT_NE(c.RecvAll().find("path=/via-pool"), std::string::npos);
  EXPECT_EQ(dispatched.load(), 1);
}

// ------------------------------------------------------------------ units

TEST(HttpServerTest, UrlDecodeHandlesEscapesAndPlus) {
  EXPECT_EQ(UrlDecode("SELECT+Model%2C+SUM(Units)"),
            "SELECT Model, SUM(Units)");
  EXPECT_EQ(UrlDecode("a%20b%3D%26"), "a b=&");
  EXPECT_EQ(UrlDecode("trailing%"), "trailing%");
  EXPECT_EQ(UrlDecode("bad%zzescape"), "bad%zzescape");
}

TEST(HttpServerTest, QueryParamLookup) {
  HttpRequest req;
  req.query = "q=SELECT+1&deadline_ms=25&flag";
  EXPECT_EQ(req.QueryParam("q"), "SELECT 1");
  EXPECT_EQ(req.QueryParam("deadline_ms"), "25");
  EXPECT_EQ(req.QueryParam("flag"), "");
  EXPECT_EQ(req.QueryParam("absent"), "");
}

}  // namespace
}  // namespace datacube::obs
