#include <gtest/gtest.h>

#include <sstream>

#include "datacube/cube/cube_operator.h"
#include "datacube/olap/crosstab.h"
#include "datacube/olap/reports.h"
#include "datacube/olap/window.h"
#include "datacube/workload/sales.h"

namespace datacube {
namespace {

Table Scores() {
  TableBuilder b({Field{"grp", DataType::kString},
                  Field{"score", DataType::kInt64}});
  b.Row({Value::String("a"), Value::Int64(30)});
  b.Row({Value::String("a"), Value::Int64(10)});
  b.Row({Value::String("a"), Value::Int64(20)});
  b.Row({Value::String("b"), Value::Int64(5)});
  b.Row({Value::String("b"), Value::Int64(5)});
  return std::move(b).Build().value();
}

size_t ColumnIndex(const Table& t, const std::string& name) {
  auto idx = t.schema().FieldIndex(name);
  EXPECT_TRUE(idx.has_value()) << name;
  return idx.value_or(0);
}

// ------------------------------------------------------------------ rank

TEST(WindowTest, RankWholeTable) {
  Table t = Scores();
  Result<Table> r = AddRank(t, 1, "rank");
  ASSERT_TRUE(r.ok());
  // "If there are N values ... the highest value, the rank is N; the lowest
  // value the rank is 1."
  size_t rank_col = ColumnIndex(*r, "rank");
  for (size_t row = 0; row < r->num_rows(); ++row) {
    int64_t score = r->GetValue(row, 1).int64_value();
    int64_t rank = r->GetValue(row, rank_col).int64_value();
    if (score == 30) {
      EXPECT_EQ(rank, 5);
    }
    if (score == 10) {
      EXPECT_EQ(rank, 3);  // after the two tied 5s
    }
    if (score == 5) {
      EXPECT_EQ(rank, 1);  // ties share the smallest rank
    }
  }
}

TEST(WindowTest, RankPerPartition) {
  Table t = Scores();
  WindowOptions options;
  options.partition_by = {0};
  Result<Table> r = AddRank(t, 1, "rank", options);
  ASSERT_TRUE(r.ok());
  size_t rank_col = ColumnIndex(*r, "rank");
  for (size_t row = 0; row < r->num_rows(); ++row) {
    int64_t score = r->GetValue(row, 1).int64_value();
    int64_t rank = r->GetValue(row, rank_col).int64_value();
    if (score == 30) {
      EXPECT_EQ(rank, 3);  // highest within partition a
    }
    if (score == 5) {
      EXPECT_EQ(rank, 1);
    }
  }
}

TEST(WindowTest, RankLeavesNullsNull) {
  TableBuilder b({Field{"x", DataType::kInt64}});
  b.Row({Value::Int64(3)});
  b.Row({Value::Null()});
  Table t = std::move(b).Build().value();
  Result<Table> r = AddRank(t, 0, "rank");
  ASSERT_TRUE(r.ok());
  // NULL sorts first in the output; its rank is NULL.
  EXPECT_TRUE(r->GetValue(0, 0).is_null() || r->GetValue(1, 0).is_null());
  for (size_t row = 0; row < 2; ++row) {
    if (r->GetValue(row, 0).is_null()) {
      EXPECT_TRUE(r->GetValue(row, 1).is_null());
    } else {
      EXPECT_EQ(r->GetValue(row, 1), Value::Int64(1));
    }
  }
}

// ----------------------------------------------------------------- n_tile

TEST(WindowTest, NTileQuartiles) {
  TableBuilder b({Field{"x", DataType::kInt64}});
  for (int i = 1; i <= 8; ++i) b.Row({Value::Int64(i)});
  Table t = std::move(b).Build().value();
  Result<Table> r = AddNTile(t, 0, 4, "quartile");
  ASSERT_TRUE(r.ok());
  for (size_t row = 0; row < 8; ++row) {
    int64_t x = r->GetValue(row, 0).int64_value();
    int64_t q = r->GetValue(row, 1).int64_value();
    EXPECT_EQ(q, (x - 1) / 2 + 1) << "x=" << x;
  }
  EXPECT_FALSE(AddNTile(t, 0, 0, "q").ok());
}

// --------------------------------------------------------- ratio_to_total

TEST(WindowTest, RatioToTotalPerPartition) {
  Table t = Scores();
  WindowOptions options;
  options.partition_by = {0};
  Result<Table> r = AddRatioToTotal(t, 1, "share", options);
  ASSERT_TRUE(r.ok());
  size_t share = ColumnIndex(*r, "share");
  for (size_t row = 0; row < r->num_rows(); ++row) {
    double x = r->GetValue(row, 1).AsDouble();
    double total = r->GetValue(row, 0) == Value::String("a") ? 60.0 : 10.0;
    EXPECT_NEAR(r->GetValue(row, share).AsDouble(), x / total, 1e-12);
  }
}

// ------------------------------------------------- cumulative and running

TEST(WindowTest, CumulativeResetsPerPartition) {
  Table t = Scores();
  WindowOptions options;
  options.partition_by = {0};
  options.order_by = {SortKey{1, true}};
  Result<Table> r = AddCumulative(t, 1, "cum", options);
  ASSERT_TRUE(r.ok());
  // Partition a sorted: 10, 20, 30 -> cum 10, 30, 60; partition b: 5, 5 ->
  // 5, 10.
  std::vector<double> expect = {10, 30, 60, 5, 10};
  for (size_t row = 0; row < 5; ++row) {
    EXPECT_NEAR(r->GetValue(row, 2).AsDouble(), expect[row], 1e-12);
  }
}

TEST(WindowTest, RunningSumFirstNMinus1Null) {
  TableBuilder b({Field{"x", DataType::kInt64}});
  for (int i = 1; i <= 5; ++i) b.Row({Value::Int64(i)});
  Table t = std::move(b).Build().value();
  Result<Table> r = AddRunningSum(t, 0, 3, "rs");
  ASSERT_TRUE(r.ok());
  // "The initial n-1 values are NULL."
  EXPECT_TRUE(r->GetValue(0, 1).is_null());
  EXPECT_TRUE(r->GetValue(1, 1).is_null());
  EXPECT_NEAR(r->GetValue(2, 1).AsDouble(), 6.0, 1e-12);   // 1+2+3
  EXPECT_NEAR(r->GetValue(3, 1).AsDouble(), 9.0, 1e-12);   // 2+3+4
  EXPECT_NEAR(r->GetValue(4, 1).AsDouble(), 12.0, 1e-12);  // 3+4+5
}

TEST(WindowTest, RunningAverage) {
  TableBuilder b({Field{"x", DataType::kInt64}});
  for (int i : {2, 4, 6, 8}) b.Row({Value::Int64(i)});
  Table t = std::move(b).Build().value();
  Result<Table> r = AddRunningAverage(t, 0, 2, "ra");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->GetValue(0, 1).is_null());
  EXPECT_NEAR(r->GetValue(1, 1).AsDouble(), 3.0, 1e-12);
  EXPECT_NEAR(r->GetValue(2, 1).AsDouble(), 5.0, 1e-12);
  EXPECT_NEAR(r->GetValue(3, 1).AsDouble(), 7.0, 1e-12);
}

TEST(WindowTest, BadArguments) {
  Table t = Scores();
  EXPECT_FALSE(AddRank(t, 99, "r").ok());
  WindowOptions bad;
  bad.partition_by = {42};
  EXPECT_FALSE(AddCumulative(t, 1, "c", bad).ok());
  EXPECT_FALSE(AddRunningSum(t, 1, 0, "rs").ok());
}

// ---------------------------------------------------------- cross tab

TEST(CrossTabTest, Table6ChevyCrossTab) {
  // Reproduce Table 6.a exactly: slice Chevy, cross-tab Year x Color.
  Table sales = Table3SalesTable().value();
  std::vector<bool> mask(sales.num_rows());
  for (size_t r = 0; r < sales.num_rows(); ++r) {
    mask[r] = sales.GetValue(r, 0) == Value::String("Chevy");
  }
  Table chevy = sales.FilterRows(mask).value();
  Result<CubeResult> cube = Cube(chevy, {GroupCol("Year"), GroupCol("Color")},
                                 {Agg("sum", "Units", "Units")});
  ASSERT_TRUE(cube.ok());
  CrossTabOptions options;
  options.corner_label = "Chevy";
  Result<std::string> text =
      FormatCrossTab(cube->table, /*row_dim=*/1, /*col_dim=*/0, /*value=*/2,
                     options);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // Spot-check the Table 6.a numbers.
  EXPECT_NE(text->find("Chevy"), std::string::npos);
  EXPECT_NE(text->find("135"), std::string::npos);  // black total
  EXPECT_NE(text->find("155"), std::string::npos);  // white total
  EXPECT_NE(text->find("290"), std::string::npos);  // grand total
  EXPECT_NE(text->find("total (ALL)"), std::string::npos);
}

TEST(CrossTabTest, HigherDimensionalCubeUsesAllPlane) {
  // Cross-tab straight out of a 3D cube: the Model dimension reads at ALL.
  Table sales = Table3SalesTable().value();
  Result<CubeResult> cube =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "Units")});
  ASSERT_TRUE(cube.ok());
  Result<std::string> text =
      FormatCrossTab(cube->table, /*row_dim=*/2, /*col_dim=*/1, /*value=*/3);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("510"), std::string::npos);  // both-model grand total
}

TEST(CrossTabTest, Errors) {
  Table sales = Table3SalesTable().value();
  Result<CubeResult> cube = Cube(sales, {GroupCol("Year"), GroupCol("Color")},
                                 {Agg("sum", "Units", "Units")});
  ASSERT_TRUE(cube.ok());
  EXPECT_FALSE(FormatCrossTab(cube->table, 0, 0, 2).ok());
  EXPECT_FALSE(FormatCrossTab(cube->table, 0, 9, 2).ok());
}

// -------------------------------------------------------------- pivot

TEST(PivotTest, Table4ExcelPivot) {
  Table sales = Table3SalesTable().value();
  Result<CubeResult> cube =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "Sales")});
  ASSERT_TRUE(cube.ok());
  CrossTabOptions options;
  options.corner_label = "Sum Sales";
  Result<std::string> text = FormatPivot(
      cube->table, /*row=*/0, /*outer=*/1, /*inner=*/2, /*value=*/3, options);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // Table 4's numbers: Chevy 1994 total 90, Ford 1995 total 160, grand 510,
  // 1994 grand 150, 1995 grand 360.
  for (const char* expect : {"90", "160", "510", "150", "360", "Grand Total"}) {
    EXPECT_NE(text->find(expect), std::string::npos) << expect << "\n" << *text;
  }
}

// --------------------------------------------------------- roll-up report

TEST(ReportTest, Table3aRollupReport) {
  Table sales = Table3SalesTable().value();
  // Chevy slice, as in Table 3.a.
  std::vector<bool> mask(sales.num_rows());
  for (size_t r = 0; r < sales.num_rows(); ++r) {
    mask[r] = sales.GetValue(r, 0) == Value::String("Chevy");
  }
  Table chevy = sales.FilterRows(mask).value();
  Result<CubeResult> rollup =
      Rollup(chevy, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
             {Agg("sum", "Units", "Sales")});
  ASSERT_TRUE(rollup.ok());
  Result<std::string> text = FormatRollupReport(rollup->table, 3, 3);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // Sub-totals 90, 200 (by year) and 290 (by model) appear; dims blank on
  // repeated rows (the second 1994 row shows only the color).
  EXPECT_NE(text->find("90"), std::string::npos);
  EXPECT_NE(text->find("200"), std::string::npos);
  EXPECT_NE(text->find("290"), std::string::npos);
  EXPECT_NE(text->find("Sales by Model by Year by Color"), std::string::npos);
  // "Chevy" appears exactly once in the body (blanked afterwards).
  size_t first = text->find("Chevy");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text->find("Chevy", first + 1), std::string::npos);
}

TEST(ReportTest, Table3bDateReport) {
  Table sales = Table3SalesTable().value();
  std::vector<bool> mask(sales.num_rows());
  for (size_t r = 0; r < sales.num_rows(); ++r) {
    mask[r] = sales.GetValue(r, 0) == Value::String("Chevy");
  }
  Table chevy = sales.FilterRows(mask).value();
  Result<CubeResult> rollup =
      Rollup(chevy, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
             {Agg("sum", "Units", "Sales")});
  ASSERT_TRUE(rollup.ok());
  Result<std::string> text = FormatDateReport(rollup->table, 3, 3);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // Every detail row repeats its super-aggregates (Table 3.b): the line for
  // (Chevy, 1994, black) carries 50, 90, 290.
  bool found = false;
  std::istringstream lines(*text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("black") != std::string::npos &&
        line.find("1994") != std::string::npos) {
      EXPECT_NE(line.find("50"), std::string::npos);
      EXPECT_NE(line.find("90"), std::string::npos);
      EXPECT_NE(line.find("290"), std::string::npos);
      found = true;
    }
  }
  EXPECT_TRUE(found) << *text;
}

TEST(ReportTest, RejectsNonRollupInput) {
  Table sales = Table3SalesTable().value();
  Result<CubeResult> cube =
      Cube(sales, {GroupCol("Model"), GroupCol("Year")},
           {Agg("sum", "Units", "Sales")});
  ASSERT_TRUE(cube.ok());
  // A full cube has (ALL, year) rows — not rollup-shaped.
  EXPECT_FALSE(FormatRollupReport(cube->table, 2, 2).ok());
  EXPECT_FALSE(FormatRollupReport(sales, 0, 3).ok());
}

}  // namespace
}  // namespace datacube
