#include "datacube/server/cube_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "datacube/expr/expr.h"
#include "datacube/server/admission.h"
#include "datacube/server/snapshot.h"
#include "datacube/table/csv.h"
#include "datacube/workload/sales.h"

namespace datacube::server {
namespace {

// ------------------------------------------------------ raw HTTP plumbing

/// One-shot HTTP exchange over a raw socket; returns the whole response
/// (status line + headers + body) or "" on failure.
std::string HttpExchange(int port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& target) {
  return HttpExchange(
      port, "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

std::string Post(int port, const std::string& target,
                 const std::string& body = "") {
  return HttpExchange(port, "POST " + target + " HTTP/1.1\r\nHost: x\r\n" +
                                "Content-Length: " +
                                std::to_string(body.size()) + "\r\n\r\n" +
                                body);
}

int StatusOf(const std::string& response) {
  // "HTTP/1.1 NNN ..."
  if (response.size() < 12) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string BodyOf(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

std::string UrlEncode(const std::string& in) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  for (unsigned char c : in) {
    if (std::isalnum(c) || c == '-' || c == '_' || c == '.' || c == '*') {
      out.push_back(static_cast<char>(c));
    } else if (c == ' ') {
      out.push_back('+');
    } else {
      out.push_back('%');
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 15]);
    }
  }
  return out;
}

std::string Query(int port, const std::string& sql,
                  const std::string& extra = "") {
  return Get(port, "/query?q=" + UrlEncode(sql) + extra);
}

// ------------------------------------------------------------- fixtures

/// A one-group table whose every value is `v`: blends across snapshot
/// versions are arithmetically impossible to miss (SUM must be rows*v).
Table UniformTable(size_t rows, int v) {
  std::string csv = "k,v\n";
  for (size_t i = 0; i < rows; ++i) {
    csv += "x," + std::to_string(v) + "\n";
  }
  return ReadCsvString(csv, {}).value();
}

std::unique_ptr<CubeServer> StartServer(CubeServer::Options options = {}) {
  Result<std::unique_ptr<CubeServer>> server = CubeServer::Start(options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return server.ok() ? std::move(*server) : nullptr;
}

// -------------------------------------------------------------- serving

TEST(CubeServerTest, AnswersCubeSqlOverHttp) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(
      server->RegisterTable("Sales", Table3SalesTable().value()).ok());
  std::string response =
      Query(server->port(),
            "SELECT Model, SUM(Units) FROM Sales GROUP BY CUBE Model");
  EXPECT_EQ(StatusOf(response), 200) << response.substr(0, 200);
  EXPECT_NE(response.find("text/csv"), std::string::npos);
  EXPECT_NE(BodyOf(response).find("ALL,510"), std::string::npos);
}

TEST(CubeServerTest, FourConcurrentClientsAllAnswered) {
  // Acceptance: >= 4 simultaneous clients, every one served correctly.
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(
      server->RegisterTable("Sales", Table3SalesTable().value()).ok());
  constexpr int kClients = 6;
  std::atomic<int> correct{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      std::string response =
          Query(server->port(),
                "SELECT Model, SUM(Units) FROM Sales GROUP BY CUBE Model");
      if (StatusOf(response) == 200 &&
          BodyOf(response).find("ALL,510") != std::string::npos) {
        correct.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(correct.load(), kClients);
}

TEST(CubeServerTest, SnapshotSwapNeverBlendsInFlightReads) {
  // Acceptance: concurrent readers race table replacement; each result must
  // be computed wholly against one version. With every v1 value 1 and every
  // v2 value 2 over kRows rows, SUM is kRows or 2*kRows — any blend lands
  // strictly between and fails loudly.
  constexpr size_t kRows = 4000;
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->RegisterTable("T", UniformTable(kRows, 1)).ok());

  const std::string want_v1 = "x," + std::to_string(kRows);
  const std::string want_v2 = "x," + std::to_string(2 * kRows);
  std::atomic<bool> done{false};
  std::atomic<int> queries{0};
  std::vector<std::string> bad;
  std::mutex bad_mu;

  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      while (!done.load()) {
        std::string response =
            Query(server->port(), "SELECT k, SUM(v) FROM T GROUP BY k");
        std::string body = BodyOf(response);
        queries.fetch_add(1);
        if (StatusOf(response) != 200 ||
            (body.find(want_v1) == std::string::npos &&
             body.find(want_v2) == std::string::npos)) {
          std::lock_guard<std::mutex> lock(bad_mu);
          bad.push_back(response.substr(0, 160));
          return;
        }
      }
    });
  }
  // Swap the table back and forth while the readers hammer it.
  for (int round = 0; round < 10; ++round) {
    int v = (round % 2 == 0) ? 2 : 1;
    ASSERT_TRUE(
        server->RegisterTable("T", UniformTable(kRows, v), /*replace=*/true)
            .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  done.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_TRUE(bad.empty()) << "blended/failed result: " << bad.front();
  EXPECT_GT(queries.load(), 10);
}

TEST(CubeServerTest, RegistrationNeverBlocksBehindReaders) {
  // The snapshot holder publishes via atomic swap: a registration racing
  // long queries must complete promptly, not wait for the readers.
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(server->RegisterTable("T", UniformTable(2000, 1)).ok());
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load()) {
      Query(server->port(), "SELECT k, SUM(v) FROM T GROUP BY CUBE k");
    }
  });
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(server
                    ->RegisterTable("extra" + std::to_string(i),
                                    UniformTable(10, 1))
                    .ok());
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  done.store(true);
  reader.join();
  EXPECT_LT(elapsed, 5000) << "registrations appear to serialize on readers";
  EXPECT_EQ(server->snapshot()->catalog.size(), 21u);
}

// ------------------------------------------------- deadlines/cancellation

TEST(CubeServerTest, DeadlineExpiryIsACleanError) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(
      server
          ->RegisterTable("Big", GenerateSales({.num_rows = 200000}).value())
          .ok());
  const std::string sql =
      "SELECT Model, Color, Dealer, SUM(Units) FROM Big "
      "GROUP BY CUBE Model, Color, Dealer";
  bool saw_timeout = false;
  for (int attempt = 0; attempt < 5 && !saw_timeout; ++attempt) {
    std::string response = Query(server->port(), sql, "&deadline_ms=1");
    int status = StatusOf(response);
    ASSERT_TRUE(status == 504 || status == 200) << response.substr(0, 200);
    if (status == 504) {
      saw_timeout = true;
      EXPECT_NE(BodyOf(response).find("DeadlineExceeded"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_timeout) << "a 1ms deadline never fired over a 200k-row "
                              "3-key cube";
  // The server is still healthy afterwards.
  EXPECT_EQ(StatusOf(Get(server->port(), "/healthz")), 200);
}

TEST(CubeServerTest, CancellationStopsAnInFlightQuery) {
  // Cancellation is observed at morsel boundaries: cancel an in-flight big
  // cube via /queries + /cancel and expect 499, not a completed result.
  CubeServer::Options options;
  options.query_threads = 2;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(
      server
          ->RegisterTable("Big", GenerateSales({.num_rows = 300000}).value())
          .ok());
  const std::string sql =
      "SELECT Model, Color, Dealer, SUM(Units), AVG(Price) FROM Big "
      "GROUP BY CUBE Model, Color, Dealer";

  std::string response;
  std::thread runner(
      [&] { response = Query(server->port(), sql); });

  // Find the live query and cancel it.
  bool cancelled = false;
  for (int i = 0; i < 200 && !cancelled; ++i) {
    std::string queries = BodyOf(Get(server->port(), "/queries"));
    size_t id_pos = queries.find("\"id\":");
    if (id_pos != std::string::npos) {
      std::string id = queries.substr(id_pos + 5);
      id = id.substr(0, id.find_first_not_of("0123456789"));
      std::string cancel =
          Post(server->port(), "/cancel?id=" + id);
      cancelled = StatusOf(cancel) == 200;
    }
    if (!cancelled) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  runner.join();
  if (cancelled) {
    // The query may have finished in the window between listing and
    // cancelling; a cancel that landed must surface as 499.
    int status = StatusOf(response);
    EXPECT_TRUE(status == 499 || status == 200) << response.substr(0, 200);
  }
  EXPECT_EQ(server->queries_in_flight(), 0);
}

TEST(CubeServerTest, AdmissionGateShedsOverCapacity) {
  CubeServer::Options options;
  options.max_concurrent_queries = 1;
  // Thread-per-request dispatch: on a small machine the shared pool may
  // have one worker, which would serialize the handlers *before* the gate
  // and never produce contention for it to shed.
  options.use_thread_pool = false;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(
      server
          ->RegisterTable("Big", GenerateSales({.num_rows = 300000}).value())
          .ok());
  // Fire simultaneous heavy queries at the single slot: the winner executes
  // (tens of milliseconds) while the admission checks of the rest land well
  // inside that window and shed with 503.
  constexpr int kClients = 4;
  std::vector<int> statuses(kClients, 0);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      statuses[i] = StatusOf(
          Query(server->port(),
                "SELECT Model, Color, Dealer, SUM(Units), AVG(Price) "
                "FROM Big GROUP BY CUBE Model, Color, Dealer"));
    });
  }
  for (std::thread& t : threads) t.join();
  int ok = 0, shed = 0;
  for (int s : statuses) {
    if (s == 200) ++ok;
    if (s == 503) ++shed;
  }
  EXPECT_GE(ok, 1) << "the slot holder should complete";
  EXPECT_GE(shed, 1) << "no query was shed by the 1-slot gate";
  EXPECT_EQ(ok + shed, kClients);
}

// --------------------------------------------------------- catalog + cube

TEST(CubeServerTest, RegisterQueryDropRoundTripOverHttp) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  std::string csv = "kind,n\ncat,2\ndog,3\n";
  EXPECT_EQ(StatusOf(Post(server->port(), "/register?name=pets", csv)), 200);
  // Duplicate registration without replace is a conflict.
  EXPECT_EQ(StatusOf(Post(server->port(), "/register?name=pets", csv)), 409);
  EXPECT_EQ(StatusOf(Post(server->port(), "/register?name=pets&replace=1",
                          csv)),
            200);
  std::string response = Query(
      server->port(), "SELECT kind, SUM(n) FROM pets GROUP BY CUBE kind");
  EXPECT_EQ(StatusOf(response), 200);
  EXPECT_NE(BodyOf(response).find("ALL,5"), std::string::npos);
  EXPECT_EQ(StatusOf(Post(server->port(), "/drop?name=pets")), 200);
  EXPECT_EQ(StatusOf(Query(server->port(),
                           "SELECT kind, SUM(n) FROM pets GROUP BY kind")),
            404);
  EXPECT_EQ(StatusOf(Post(server->port(), "/drop?name=pets")), 404);
}

TEST(CubeServerTest, MaterializeAndQueryPartialCube) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(
      server->RegisterTable("Sales", Table3SalesTable().value()).ok());
  std::string response = Post(
      server->port(),
      "/materialize?name=sales_cube&table=Sales&keys=Model,Color"
      "&aggs=sum(Units)&budget_bytes=1000000");
  ASSERT_EQ(StatusOf(response), 200) << response.substr(0, 300);
  std::string cube = Get(server->port(), "/cube?name=sales_cube&set=Model");
  EXPECT_EQ(StatusOf(cube), 200) << cube.substr(0, 300);
  EXPECT_NE(BodyOf(cube).find("Chevy"), std::string::npos);
  // The grand total lives at the empty key subset.
  std::string total = Get(server->port(), "/cube?name=sales_cube");
  EXPECT_EQ(StatusOf(total), 200);
  EXPECT_NE(BodyOf(total).find("510"), std::string::npos);
  EXPECT_EQ(StatusOf(Get(server->port(), "/cube?name=missing")), 404);
}

// ------------------------------------------------------------- transport

TEST(CubeServerTest, LineProtocolExecutesSql) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(
      server->RegisterTable("Sales", Table3SalesTable().value()).ok());
  std::string response = HttpExchange(
      server->port(),
      "SELECT Model, SUM(Units) FROM Sales GROUP BY CUBE Model\n");
  EXPECT_EQ(response.find("HTTP/"), std::string::npos)
      << "line protocol must not emit HTTP framing";
  EXPECT_NE(response.find("ALL,510"), std::string::npos);
  std::string error = HttpExchange(server->port(), "SELECT FROM nothing\n");
  EXPECT_NE(error.find("ERROR: "), std::string::npos);
}

TEST(CubeServerTest, StatsEndpointsShareTheListener) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  std::string metrics = Get(server->port(), "/metrics");
  EXPECT_EQ(StatusOf(metrics), 200);
  EXPECT_NE(metrics.find("datacube_build_info{"), std::string::npos);
  EXPECT_EQ(StatusOf(Get(server->port(), "/queryz")), 200);
  EXPECT_EQ(StatusOf(Get(server->port(), "/tracez")), 200);
  EXPECT_EQ(StatusOf(Get(server->port(), "/varz")), 200);
  EXPECT_EQ(StatusOf(Post(server->port(), "/metrics", "x")), 405);
}

TEST(CubeServerTest, ErrorsMapToMeaningfulHttpStatuses) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  // Unknown table -> 404; parse error -> 400; missing q -> 400.
  EXPECT_EQ(StatusOf(Query(server->port(),
                           "SELECT a, SUM(b) FROM nope GROUP BY a")),
            404);
  EXPECT_EQ(StatusOf(Query(server->port(), "SELEKT nonsense")), 400);
  EXPECT_EQ(StatusOf(Get(server->port(), "/query")), 400);
  EXPECT_EQ(StatusOf(Get(server->port(), "/definitely-not-a-route")), 404);
}

TEST(CubeServerTest, StopIsCleanWithInFlightWork) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  ASSERT_TRUE(
      server
          ->RegisterTable("Big", GenerateSales({.num_rows = 200000}).value())
          .ok());
  std::thread runner([&] {
    Query(server->port(),
          "SELECT Model, Color, Dealer, SUM(Units) FROM Big "
          "GROUP BY CUBE Model, Color, Dealer");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server->Stop();  // cancels live controls, drains, joins
  server->Stop();  // idempotent
  runner.join();
}

// ---------------------------------------------------------------- units

TEST(CubeServerTest, PartitionedIngestRetentionOverHttp) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);

  Schema schema{{{"ts", DataType::kInt64},
                 {"d", DataType::kString},
                 {"m", DataType::kInt64}}};
  CubeSpec spec;
  spec.cube.push_back(GroupExpr{Expr::Column("d"), "d"});
  AggregateSpec count;
  count.function = "count_star";
  count.output_name = "n";
  spec.aggregates.push_back(count);
  PartitionedCubeOptions popts;
  popts.partition_column = "ts";
  popts.window_width = 10;
  Result<std::unique_ptr<PartitionedCube>> store =
      PartitionedCube::Create(schema, spec, popts);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(server
                  ->RegisterPartitioned(
                      "events", std::shared_ptr<PartitionedCube>(
                                    std::move(*store)))
                  .ok());

  // CSV with header, then headerless, then the line protocol.
  std::string resp = Post(server->port(), "/ingest?table=events",
                          "ts,d,m\n5,a,1\n15,b,2\n25,c,3\n");
  EXPECT_EQ(StatusOf(resp), 200) << resp.substr(0, 200);
  resp = Post(server->port(), "/ingest?table=events&header=0", "35,a,4\n");
  EXPECT_EQ(StatusOf(resp), 200) << resp.substr(0, 200);
  resp = HttpExchange(server->port(), "INGEST events 45,b,5\n");
  EXPECT_NE(resp.find("ingested 1 rows"), std::string::npos) << resp;

  // Visible to SQL without any snapshot republish, and WHERE on the
  // partition key prunes (EXPLAIN carries the counts).
  resp = Query(server->port(), "SELECT COUNT(*) FROM events");
  EXPECT_NE(BodyOf(resp).find("5"), std::string::npos) << resp;
  resp = Query(server->port(),
               "EXPLAIN SELECT COUNT(*) FROM events WHERE ts >= 30");
  EXPECT_NE(BodyOf(resp).find("partitions: scanned=2  pruned=3  total=5"),
            std::string::npos)
      << BodyOf(resp);

  resp = Get(server->port(), "/partitions");
  EXPECT_EQ(StatusOf(resp), 200);
  EXPECT_NE(BodyOf(resp).find("\"name\":\"events\""), std::string::npos);

  resp = Post(server->port(), "/compact?table=events");
  EXPECT_EQ(StatusOf(resp), 200) << resp.substr(0, 200);
  resp = Post(server->port(), "/retention?table=events&windows=2");
  EXPECT_EQ(StatusOf(resp), 200) << resp.substr(0, 200);
  resp = Query(server->port(), "SELECT COUNT(*) FROM events");
  EXPECT_NE(BodyOf(resp).find("2"), std::string::npos) << resp;

  // /drop unbinds it like any table.
  resp = Post(server->port(), "/drop?name=events");
  EXPECT_EQ(StatusOf(resp), 200);
  resp = Query(server->port(), "SELECT COUNT(*) FROM events");
  EXPECT_EQ(StatusOf(resp), 404);
}

TEST(CubeServerTest, MaterializeDropRaceNeverLeavesOrphanCube) {
  // /materialize builds against a pinned snapshot, then republishes; a
  // concurrent /drop of the source table must either lose (the drop also
  // erases the new cube) or make the materialize fail with 409 — never
  // leave a mounted cube whose source table is gone.
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        server->RegisterTable("race_src", UniformTable(2000, 1), true).ok());
    std::thread mat([&] {
      std::string resp =
          Post(server->port(),
               "/materialize?name=race_cube&table=race_src&keys=k"
               "&aggs=sum(v)&budget_bytes=100000");
      // 200: built and mounted before the drop (which then erases it);
      // 409: the drop won between the build and the publish;
      // 404: the drop won before the build even pinned the table.
      int status = StatusOf(resp);
      EXPECT_TRUE(status == 200 || status == 409 || status == 404)
          << resp.substr(0, 200);
    });
    std::string resp = Post(server->port(), "/drop?name=race_src");
    EXPECT_EQ(StatusOf(resp), 200) << resp.substr(0, 200);
    mat.join();
    std::string tables = BodyOf(Get(server->port(), "/tables"));
    EXPECT_EQ(tables.find("race_cube"), std::string::npos)
        << "orphan cube after iteration " << i << ": " << tables;
  }
}

TEST(AdmissionGateTest, TicketsReleaseSlots) {
  AdmissionGate gate(2, 0);
  Result<AdmissionGate::Ticket> a = gate.Admit();
  Result<AdmissionGate::Ticket> b = gate.Admit();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(gate.in_flight(), 2);
  Result<AdmissionGate::Ticket> c = gate.Admit();
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kUnavailable);
  { AdmissionGate::Ticket moved = std::move(*a); }
  EXPECT_EQ(gate.in_flight(), 1);
  EXPECT_TRUE(gate.Admit().ok());
}

TEST(SnapshotHolderTest, UpdateIsCopyEditPublish) {
  SnapshotHolder holder;
  std::shared_ptr<const ServerSnapshot> v0 = holder.Get();
  ASSERT_NE(v0, nullptr);
  ASSERT_TRUE(holder
                  .Update([](ServerSnapshot& snap) {
                    return snap.catalog.Register("T", Table());
                  })
                  .ok());
  std::shared_ptr<const ServerSnapshot> v1 = holder.Get();
  EXPECT_EQ(v1->version, v0->version + 1);
  EXPECT_EQ(v0->catalog.size(), 0u);  // old snapshot untouched
  EXPECT_EQ(v1->catalog.size(), 1u);
}

}  // namespace
}  // namespace datacube::server
