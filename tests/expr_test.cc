#include <gtest/gtest.h>

#include "datacube/expr/expr.h"
#include "datacube/expr/scalar_function.h"
#include "datacube/workload/weather.h"

namespace datacube {
namespace {

Table TestTable() {
  TableBuilder b({Field{"i", DataType::kInt64},
                  Field{"f", DataType::kFloat64},
                  Field{"s", DataType::kString},
                  Field{"d", DataType::kDate},
                  Field{"flag", DataType::kBool}});
  b.Row({Value::Int64(10), Value::Float64(2.5), Value::String("chevy"),
         Value::FromDate(DateFromCivil(1996, 6, 1)), Value::Bool(true)});
  b.Row({Value::Int64(-3), Value::Null(), Value::String("Ford"),
         Value::FromDate(DateFromCivil(1995, 12, 31)), Value::Bool(false)});
  b.Row({Value::Null(), Value::Float64(4.0), Value::Null(),
         Value::FromDate(DateFromCivil(1996, 1, 1)), Value::Null()});
  return std::move(b).Build().value();
}

Value Eval(ExprPtr e, const Table& t, size_t row) {
  EXPECT_TRUE(e->Bind(t.schema()).ok());
  Result<Value> r = e->Evaluate(t, row);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : Value::Null();
}

TEST(ExprTest, LiteralAndColumn) {
  Table t = TestTable();
  EXPECT_EQ(Eval(Expr::Lit(Value::Int64(7)), t, 0), Value::Int64(7));
  EXPECT_EQ(Eval(Expr::Column("i"), t, 0), Value::Int64(10));
  // Column lookup is case-insensitive.
  EXPECT_EQ(Eval(Expr::Column("I"), t, 1), Value::Int64(-3));
  ExprPtr bad = Expr::Column("nope");
  EXPECT_FALSE(bad->Bind(t.schema()).ok());
}

TEST(ExprTest, ArithmeticTyping) {
  Table t = TestTable();
  ExprPtr ii = Expr::Binary(BinaryOp::kAdd, Expr::Column("i"),
                            Expr::Lit(Value::Int64(1)));
  EXPECT_EQ(Eval(ii, t, 0), Value::Int64(11));
  EXPECT_EQ(ii->output_type(), DataType::kInt64);

  ExprPtr mixed = Expr::Binary(BinaryOp::kMul, Expr::Column("i"),
                               Expr::Column("f"));
  EXPECT_EQ(Eval(mixed, t, 0), Value::Float64(25.0));
  EXPECT_EQ(mixed->output_type(), DataType::kFloat64);

  // Division always yields float64 (percent-of-total style expressions).
  ExprPtr div = Expr::Binary(BinaryOp::kDiv, Expr::Column("i"),
                             Expr::Lit(Value::Int64(4)));
  EXPECT_EQ(Eval(div, t, 0), Value::Float64(2.5));

  ExprPtr mod = Expr::Binary(BinaryOp::kMod, Expr::Column("i"),
                             Expr::Lit(Value::Int64(3)));
  EXPECT_EQ(Eval(mod, t, 0), Value::Int64(1));
}

TEST(ExprTest, DivisionAndModByZeroYieldNull) {
  Table t = TestTable();
  ExprPtr div = Expr::Binary(BinaryOp::kDiv, Expr::Column("i"),
                             Expr::Lit(Value::Int64(0)));
  EXPECT_TRUE(Eval(div, t, 0).is_null());
  ExprPtr mod = Expr::Binary(BinaryOp::kMod, Expr::Column("i"),
                             Expr::Lit(Value::Int64(0)));
  EXPECT_TRUE(Eval(mod, t, 0).is_null());
}

TEST(ExprTest, NullPropagatesThroughArithmetic) {
  Table t = TestTable();
  ExprPtr e = Expr::Binary(BinaryOp::kAdd, Expr::Column("i"),
                           Expr::Column("f"));
  EXPECT_TRUE(Eval(e, t, 1).is_null());  // f is NULL in row 1
}

TEST(ExprTest, ComparisonsAndTypeErrors) {
  Table t = TestTable();
  EXPECT_EQ(Eval(Expr::Binary(BinaryOp::kLt, Expr::Column("i"),
                              Expr::Column("f")),
                 t, 0),
            Value::Bool(false));  // 10 < 2.5
  EXPECT_EQ(Eval(Expr::Binary(BinaryOp::kEq, Expr::Column("s"),
                              Expr::Lit(Value::String("chevy"))),
                 t, 0),
            Value::Bool(true));
  ExprPtr bad = Expr::Binary(BinaryOp::kLt, Expr::Column("s"),
                             Expr::Column("i"));
  EXPECT_FALSE(bad->Bind(t.schema()).ok());
}

TEST(ExprTest, ThreeValuedLogic) {
  Table t = TestTable();
  ExprPtr null_flag = Expr::Column("flag");  // NULL in row 2
  ExprPtr true_lit = Expr::Lit(Value::Bool(true));
  ExprPtr false_lit = Expr::Lit(Value::Bool(false));
  // NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
  EXPECT_EQ(Eval(Expr::Binary(BinaryOp::kAnd, null_flag, false_lit), t, 2),
            Value::Bool(false));
  EXPECT_TRUE(
      Eval(Expr::Binary(BinaryOp::kAnd, null_flag, true_lit), t, 2).is_null());
  // NULL OR TRUE = TRUE; NULL OR FALSE = NULL.
  EXPECT_EQ(Eval(Expr::Binary(BinaryOp::kOr, null_flag, true_lit), t, 2),
            Value::Bool(true));
  EXPECT_TRUE(
      Eval(Expr::Binary(BinaryOp::kOr, null_flag, false_lit), t, 2).is_null());
}

TEST(ExprTest, UnaryOperators) {
  Table t = TestTable();
  EXPECT_EQ(Eval(Expr::Unary(UnaryOp::kNeg, Expr::Column("i")), t, 0),
            Value::Int64(-10));
  EXPECT_EQ(Eval(Expr::Unary(UnaryOp::kNot, Expr::Column("flag")), t, 0),
            Value::Bool(false));
  EXPECT_EQ(Eval(Expr::Unary(UnaryOp::kIsNull, Expr::Column("f")), t, 1),
            Value::Bool(true));
  EXPECT_EQ(Eval(Expr::Unary(UnaryOp::kIsNotNull, Expr::Column("f")), t, 1),
            Value::Bool(false));
}

TEST(ExprTest, DatePartFunctions) {
  Table t = TestTable();
  EXPECT_EQ(Eval(Expr::Call("year", {Expr::Column("d")}), t, 0),
            Value::Int64(1996));
  EXPECT_EQ(Eval(Expr::Call("month", {Expr::Column("d")}), t, 0),
            Value::Int64(6));
  EXPECT_EQ(Eval(Expr::Call("quarter", {Expr::Column("d")}), t, 1),
            Value::Int64(4));
  EXPECT_EQ(Eval(Expr::Call("isweekend", {Expr::Column("d")}), t, 0),
            Value::Bool(true));
}

TEST(ExprTest, CallArityAndUnknownFunction) {
  Table t = TestTable();
  ExprPtr wrong_arity = Expr::Call("year", {});
  EXPECT_FALSE(wrong_arity->Bind(t.schema()).ok());
  ExprPtr unknown = Expr::Call("no_such_fn", {Expr::Column("i")});
  EXPECT_FALSE(unknown->Bind(t.schema()).ok());
}

TEST(ExprTest, NationAndContinent) {
  // The paper's Section 2 histogram functions over (lat, lon).
  TableBuilder b({Field{"lat", DataType::kFloat64},
                  Field{"lon", DataType::kFloat64}});
  b.Row({Value::Float64(37.97), Value::Float64(-122.75)});  // San Francisco
  b.Row({Value::Float64(48.8), Value::Float64(2.3)});       // Paris
  b.Row({Value::Float64(0.0), Value::Float64(-160.0)});     // open ocean
  Table t = std::move(b).Build().value();
  ExprPtr nation =
      Expr::Call("nation", {Expr::Column("lat"), Expr::Column("lon")});
  EXPECT_EQ(Eval(nation, t, 0), Value::String("USA"));
  EXPECT_EQ(Eval(nation, t, 1), Value::String("France"));
  EXPECT_TRUE(Eval(nation, t, 2).is_null());

  ExprPtr continent = Expr::Call(
      "continent",
      {Expr::Call("nation", {Expr::Column("lat"), Expr::Column("lon")})});
  EXPECT_EQ(Eval(continent, t, 0), Value::String("North America"));
  EXPECT_EQ(Eval(continent, t, 1), Value::String("Europe"));
  EXPECT_TRUE(Eval(continent, t, 2).is_null());
}

TEST(ExprTest, BucketHistogram) {
  Table t = TestTable();
  ExprPtr e = Expr::Call(
      "bucket", {Expr::Column("f"), Expr::Lit(Value::Float64(2.0))});
  EXPECT_EQ(Eval(e, t, 0), Value::Float64(2.0));  // 2.5 -> [2, 4)
  EXPECT_EQ(Eval(e, t, 2), Value::Float64(4.0));
}

TEST(ExprTest, StringFunctions) {
  Table t = TestTable();
  EXPECT_EQ(Eval(Expr::Call("upper", {Expr::Column("s")}), t, 0),
            Value::String("CHEVY"));
  EXPECT_EQ(Eval(Expr::Call("lower", {Expr::Column("s")}), t, 1),
            Value::String("ford"));
  EXPECT_EQ(Eval(Expr::Call("length", {Expr::Column("s")}), t, 0),
            Value::Int64(5));
  EXPECT_EQ(
      Eval(Expr::Call("substr",
                      {Expr::Column("s"), Expr::Lit(Value::Int64(2)),
                       Expr::Lit(Value::Int64(3))}),
           t, 0),
      Value::String("hev"));
  EXPECT_EQ(Eval(Expr::Call("concat", {Expr::Column("s"), Expr::Column("i")}),
                 t, 0),
            Value::String("chevy10"));
}

TEST(ExprTest, CoalesceSeesNulls) {
  Table t = TestTable();
  ExprPtr e = Expr::Call("coalesce",
                         {Expr::Column("f"), Expr::Lit(Value::Float64(-1.0))});
  EXPECT_EQ(Eval(e, t, 1), Value::Float64(-1.0));
  EXPECT_EQ(Eval(e, t, 0), Value::Float64(2.5));
}

TEST(ExprTest, AllPropagatesThroughGroupingFunctions) {
  // A scalar call over an ALL input yields ALL: grouping functions map the
  // super-aggregate marker through (Section 3.3 semantics).
  Table t(Schema({Field{"d", DataType::kDate, true, /*allow_all=*/true}}));
  ASSERT_TRUE(t.AppendRow({Value::All()}).ok());
  ExprPtr e = Expr::Call("year", {Expr::Column("d")});
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_TRUE(e->Evaluate(t, 0)->is_all());
}

TEST(ExprTest, ToStringReadable) {
  ExprPtr e = Expr::Binary(
      BinaryOp::kAdd, Expr::Column("a"),
      Expr::Call("year", {Expr::Column("d")}));
  EXPECT_EQ(e->ToString(), "(a + year(d))");
  EXPECT_EQ(Expr::Lit(Value::String("x"))->ToString(), "'x'");
}

TEST(ExprTest, EvaluateBeforeBindFails) {
  Table t = TestTable();
  ExprPtr e = Expr::Column("i");
  EXPECT_FALSE(e->Evaluate(t, 0).ok());
}

TEST(ScalarRegistryTest, RegisterAndDuplicate) {
  ScalarFunctionRegistry& reg = ScalarFunctionRegistry::Global();
  EXPECT_TRUE(reg.Find("year").ok());
  EXPECT_TRUE(reg.Find("YEAR").ok());
  EXPECT_FALSE(reg.Find("nonexistent").ok());

  ScalarFunction fn;
  fn.name = "test_double_it";
  fn.arity = 1;
  fn.result_type = [](const std::vector<DataType>&) -> Result<DataType> {
    return DataType::kInt64;
  };
  fn.eval = [](const std::vector<Value>& args) -> Result<Value> {
    return Value::Int64(args[0].int64_value() * 2);
  };
  EXPECT_TRUE(reg.Register(fn).ok());
  EXPECT_FALSE(reg.Register(fn).ok());  // duplicate

  Table t = TestTable();
  EXPECT_EQ(Eval(Expr::Call("test_double_it", {Expr::Column("i")}), t, 0),
            Value::Int64(20));
}

TEST(WeatherWorkloadTest, NationResolvesForAllRows) {
  Result<Table> w =
      GenerateWeather({.num_rows = 200, .num_days = 7, .seed = 1});
  ASSERT_TRUE(w.ok());
  ExprPtr nation = Expr::Call(
      "nation", {Expr::Column("Latitude"), Expr::Column("Longitude")});
  ASSERT_TRUE(nation->Bind(w->schema()).ok());
  for (size_t r = 0; r < w->num_rows(); ++r) {
    Result<Value> v = nation->Evaluate(*w, r);
    ASSERT_TRUE(v.ok());
    EXPECT_FALSE(v->is_null()) << "station outside every nation box, row " << r;
  }
}

}  // namespace
}  // namespace datacube
