#include "datacube/obs/stats_server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>

#include "datacube/obs/metrics.h"
#include "datacube/obs/query_profile.h"
#include "datacube/sql/engine.h"
#include "datacube/workload/sales.h"

namespace datacube::obs {
namespace {

// Minimal raw-socket HTTP client: sends one GET, returns the full response
// (status line + headers + body) or "" on any failure.
std::string HttpGet(int port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

// ------------------------------------------------------- routing (no socket)

TEST(StatsServerHandleTest, MetricsRouteRendersPrometheus) {
  MetricsRegistry::Global()
      .GetCounter("datacube_handle_test_total", "route test counter")
      .Inc(7);
  StatsServer::Response r = StatsServer::Handle("GET", "/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(r.body.find("# TYPE datacube_handle_test_total counter"),
            std::string::npos);
  EXPECT_NE(r.body.find("datacube_handle_test_total 7"), std::string::npos);
  EXPECT_NE(r.body.find("datacube_build_info{"), std::string::npos);
  EXPECT_NE(r.body.find("process_start_time_seconds"), std::string::npos);
}

TEST(StatsServerHandleTest, VarzRouteRendersJson) {
  StatsServer::Response r = StatsServer::Handle("GET", "/varz");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.content_type, "application/json");
  EXPECT_EQ(r.body.front(), '{');
  EXPECT_NE(r.body.find("\"counters\""), std::string::npos);
  EXPECT_NE(r.body.find("\"gauges\""), std::string::npos);
}

TEST(StatsServerHandleTest, QueryzAndTracezRouteToTheRings) {
  StatsServer::Response q = StatsServer::Handle("GET", "/queryz");
  EXPECT_EQ(q.status, 200);
  EXPECT_NE(q.body.find("\"profiles\""), std::string::npos);
  StatsServer::Response t = StatsServer::Handle("GET", "/tracez");
  EXPECT_EQ(t.status, 200);
  EXPECT_NE(t.body.find("\"traces\""), std::string::npos);
}

TEST(StatsServerHandleTest, IndexUnknownAndMethodRouting) {
  EXPECT_EQ(StatsServer::Handle("GET", "/").status, 200);
  EXPECT_NE(StatsServer::Handle("GET", "/").body.find("/metrics"),
            std::string::npos);
  EXPECT_EQ(StatsServer::Handle("GET", "/nope").status, 404);
  EXPECT_EQ(StatsServer::Handle("POST", "/metrics").status, 405);
  EXPECT_EQ(StatsServer::Handle("DELETE", "/").status, 405);
}

// ------------------------------------------------------------ socket server

TEST(StatsServerTest, ServesMetricsOverHttp) {
  Result<std::unique_ptr<StatsServer>> server = StatsServer::Start();
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_GT((*server)->port(), 0);
  std::string response = HttpGet((*server)->port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length:"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("datacube_build_info{"), std::string::npos);
  EXPECT_NE(response.find("# TYPE"), std::string::npos);
}

TEST(StatsServerTest, QueryzShowsAJustRunQuery) {
  Result<std::unique_ptr<StatsServer>> server = StatsServer::Start();
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  Table sales = Table3SalesTable().value();
  sql::Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", sales).ok());
  const std::string query =
      "SELECT Model, Color, SUM(Units) FROM Sales GROUP BY CUBE Model, Color";
  Result<Table> result = sql::ExecuteSql(query, catalog, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::string response = HttpGet((*server)->port(), "/queryz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("GROUP BY CUBE Model, Color"), std::string::npos);
  EXPECT_NE(response.find("\"algorithm\":"), std::string::npos);
}

TEST(StatsServerTest, UnknownPathIs404AndQueryStringIsIgnored) {
  Result<std::unique_ptr<StatsServer>> server = StatsServer::Start();
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_NE(HttpGet((*server)->port(), "/missing").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(HttpGet((*server)->port(), "/varz?pretty=1")
                .find("HTTP/1.1 200 OK"),
            std::string::npos);
}

TEST(StatsServerTest, CountsRequestsByPathAndCode) {
  Result<std::unique_ptr<StatsServer>> server = StatsServer::Start();
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  MetricsRegistry& reg = MetricsRegistry::Global();
  uint64_t before = reg.CounterValue(
      "datacube_stats_requests_total",
      {{"path", "/metrics"}, {"code", "200"}});
  ASSERT_FALSE(HttpGet((*server)->port(), "/metrics").empty());
  EXPECT_EQ(reg.CounterValue("datacube_stats_requests_total",
                             {{"path", "/metrics"}, {"code", "200"}}),
            before + 1);
  // Unknown paths collapse into one "other" series.
  ASSERT_FALSE(HttpGet((*server)->port(), "/secret/../../etc").empty());
  EXPECT_GE(reg.CounterValue("datacube_stats_requests_total",
                             {{"path", "other"}, {"code", "404"}}),
            1u);
}

TEST(StatsServerTest, StartStopIsCleanAndRepeatable) {
  for (int round = 0; round < 3; ++round) {
    Result<std::unique_ptr<StatsServer>> server = StatsServer::Start();
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    if (round % 2 == 0) {
      ASSERT_FALSE(HttpGet((*server)->port(), "/").empty());
    }
    (*server)->Stop();  // explicit stop; destructor must tolerate a second
  }
}

TEST(StatsServerTest, TwoServersBindDistinctEphemeralPorts) {
  Result<std::unique_ptr<StatsServer>> a = StatsServer::Start();
  Result<std::unique_ptr<StatsServer>> b = StatsServer::Start();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE((*a)->port(), (*b)->port());
  EXPECT_FALSE(HttpGet((*a)->port(), "/").empty());
  EXPECT_FALSE(HttpGet((*b)->port(), "/").empty());
}

// ------------------------------------------------- transport regressions

// Raw client for the protocol-error shapes HttpGet can't produce.
int RawConnect(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string RawExchange(int fd, const std::string& request) {
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(StatsServerTest, OversizedHeadIs431NotParsedAsComplete) {
  // Seed bug: a request head that filled the buffer without a blank line
  // was parsed as if complete and answered 200. It must be refused.
  Result<std::unique_ptr<StatsServer>> server = StatsServer::Start();
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  int fd = RawConnect((*server)->port());
  ASSERT_GE(fd, 0);
  std::string response = RawExchange(
      fd, "GET /metrics HTTP/1.1\r\nX-Pad: " + std::string(16384, 'p'));
  EXPECT_NE(response.find("431"), std::string::npos)
      << response.substr(0, 60);
  EXPECT_EQ(response.find("200 OK"), std::string::npos);
}

TEST(StatsServerTest, StalledScraperIs408NotSilentDrop) {
  // Seed bug: a client that stalled mid-request was dropped with no
  // response once the socket timeout fired.
  StatsServer::Options options;
  options.head_timeout_ms = 200;
  Result<std::unique_ptr<StatsServer>> server = StatsServer::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  int fd = RawConnect((*server)->port());
  ASSERT_GE(fd, 0);
  std::string response = RawExchange(fd, "GET /metrics HTTP/1.1\r\nX-Sl");
  EXPECT_NE(response.find("408"), std::string::npos)
      << response.substr(0, 60);
}

TEST(StatsServerTest, SlowClientDoesNotDelayConcurrentScrape) {
  // The tentpole regression: the seed served connections serially on the
  // accept thread, so one slow scraper stalled every other one.
  Result<std::unique_ptr<StatsServer>> server = StatsServer::Start();
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  int slow = RawConnect((*server)->port());
  ASSERT_GE(slow, 0);
  std::string partial = "GET /metrics HTTP/1.1\r\nX-Never: finis";
  ASSERT_GT(::send(slow, partial.data(), partial.size(), MSG_NOSIGNAL), 0);

  auto start = std::chrono::steady_clock::now();
  std::string response = HttpGet((*server)->port(), "/metrics");
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_LT(elapsed_ms, 1500)
      << "scrape was serialized behind the stalled client";
  ::close(slow);
}

TEST(StatsServerTest, PostOverSocketIs405AndHeadIsHeadersOnly) {
  Result<std::unique_ptr<StatsServer>> server = StatsServer::Start();
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  int fd = RawConnect((*server)->port());
  ASSERT_GE(fd, 0);
  std::string post = RawExchange(
      fd, "POST /metrics HTTP/1.1\r\nContent-Length: 1\r\n\r\nx");
  EXPECT_NE(post.find("405"), std::string::npos) << post.substr(0, 60);

  fd = RawConnect((*server)->port());
  ASSERT_GE(fd, 0);
  std::string head =
      RawExchange(fd, "HEAD /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(head.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(head.find("Content-Length:"), std::string::npos);
  // Headers only: nothing after the blank line.
  EXPECT_EQ(head.substr(head.find("\r\n\r\n") + 4), "");
}

TEST(StatsServerTest, RejectsBadHost) {
  StatsServer::Options options;
  options.host = "not-an-ip";
  Result<std::unique_ptr<StatsServer>> server = StatsServer::Start(options);
  EXPECT_FALSE(server.ok());
}

}  // namespace
}  // namespace datacube::obs
