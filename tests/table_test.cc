#include <gtest/gtest.h>

#include <limits>

#include "datacube/table/csv.h"
#include "datacube/table/print.h"
#include "datacube/table/sort.h"
#include "datacube/table/table.h"
#include "datacube/workload/sales.h"

namespace datacube {
namespace {

Table SmallTable() {
  TableBuilder b({Field{"name", DataType::kString},
                  Field{"score", DataType::kInt64},
                  Field{"ratio", DataType::kFloat64}});
  b.Row({Value::String("a"), Value::Int64(3), Value::Float64(0.5)});
  b.Row({Value::String("b"), Value::Int64(1), Value::Null()});
  b.Row({Value::String("c"), Value::Null(), Value::Float64(1.5)});
  return std::move(b).Build().value();
}

// ----------------------------------------------------------------- Schema

TEST(SchemaTest, FieldLookup) {
  Schema s(
      {Field{"Model", DataType::kString}, Field{"Year", DataType::kInt64}});
  EXPECT_EQ(s.FieldIndex("Year").value(), 1u);
  EXPECT_FALSE(s.FieldIndex("year").has_value());
  EXPECT_EQ(s.FieldIndexIgnoreCase("year").value(), 1u);
  EXPECT_FALSE(s.FieldIndex("Nope").has_value());
}

TEST(SchemaTest, AddFieldRejectsDuplicates) {
  Schema s;
  EXPECT_TRUE(s.AddField(Field{"a", DataType::kInt64}).ok());
  EXPECT_FALSE(s.AddField(Field{"a", DataType::kString}).ok());
  EXPECT_EQ(s.num_fields(), 1u);
}

// ----------------------------------------------------------------- Column

TEST(ColumnTest, AppendAndGetAllTypes) {
  Column c(DataType::kInt64);
  ASSERT_TRUE(c.Append(Value::Int64(5)).ok());
  ASSERT_TRUE(c.Append(Value::Null()).ok());
  ASSERT_TRUE(c.Append(Value::All()).ok());
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.Get(0), Value::Int64(5));
  EXPECT_TRUE(c.Get(1).is_null());
  EXPECT_TRUE(c.Get(2).is_all());
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_EQ(c.all_count(), 1u);
}

TEST(ColumnTest, TypeMismatchRejected) {
  Column c(DataType::kInt64);
  EXPECT_FALSE(c.Append(Value::String("x")).ok());
  EXPECT_FALSE(c.Append(Value::Float64(1.5)).ok());
}

TEST(ColumnTest, IntWidensIntoFloatColumn) {
  Column c(DataType::kFloat64);
  ASSERT_TRUE(c.Append(Value::Int64(2)).ok());
  EXPECT_EQ(c.Get(0), Value::Float64(2.0));
}

TEST(ColumnTest, SetOverwritesAndFixesCounters) {
  Column c(DataType::kString);
  ASSERT_TRUE(c.Append(Value::Null()).ok());
  EXPECT_EQ(c.null_count(), 1u);
  ASSERT_TRUE(c.Set(0, Value::String("x")).ok());
  EXPECT_EQ(c.null_count(), 0u);
  EXPECT_EQ(c.Get(0), Value::String("x"));
  ASSERT_TRUE(c.Set(0, Value::All()).ok());
  EXPECT_EQ(c.all_count(), 1u);
  EXPECT_FALSE(c.Set(5, Value::String("y")).ok());
}

TEST(ColumnTest, CountDistinctIgnoresSpecials) {
  Column c(DataType::kInt64);
  for (int v : {1, 2, 2, 3}) ASSERT_TRUE(c.Append(Value::Int64(v)).ok());
  ASSERT_TRUE(c.Append(Value::Null()).ok());
  ASSERT_TRUE(c.Append(Value::All()).ok());
  EXPECT_EQ(c.CountDistinct(), 3u);
}

// ------------------------------------------------------------------ Table

TEST(TableTest, AppendRowChecksArityAndTypes) {
  Table t(Schema({Field{"a", DataType::kInt64}}));
  EXPECT_FALSE(t.AppendRow({}).ok());
  EXPECT_FALSE(t.AppendRow({Value::String("x")}).ok());
  EXPECT_TRUE(t.AppendRow({Value::Int64(1)}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, GetRowRoundTrip) {
  Table t = SmallTable();
  std::vector<Value> row = t.GetRow(1);
  EXPECT_EQ(row[0], Value::String("b"));
  EXPECT_EQ(row[1], Value::Int64(1));
  EXPECT_TRUE(row[2].is_null());
}

TEST(TableTest, TakeRowsReordersAndRepeats) {
  Table t = SmallTable();
  Result<Table> r = t.TakeRows({2, 0, 0});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->GetValue(0, 0), Value::String("c"));
  EXPECT_EQ(r->GetValue(1, 0), Value::String("a"));
  EXPECT_EQ(r->GetValue(2, 0), Value::String("a"));
  EXPECT_FALSE(t.TakeRows({9}).ok());
}

TEST(TableTest, FilterRows) {
  Table t = SmallTable();
  Result<Table> r = t.FilterRows({true, false, true});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 2u);
  EXPECT_FALSE(t.FilterRows({true}).ok());
}

TEST(TableTest, AppendTableUnionAll) {
  Table t = SmallTable();
  Table u = SmallTable();
  ASSERT_TRUE(u.AppendTable(t).ok());
  EXPECT_EQ(u.num_rows(), 6u);
  Table incompatible(Schema({Field{"x", DataType::kInt64}}));
  EXPECT_FALSE(u.AppendTable(incompatible).ok());
}

TEST(TableTest, SelectAndConcatColumns) {
  Table t = SmallTable();
  Result<Table> sel = t.SelectColumns({1});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->num_columns(), 1u);
  EXPECT_EQ(sel->schema().field(0).name, "score");

  Table other(Schema({Field{"extra", DataType::kInt64}}));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(other.AppendRow({Value::Int64(i)}).ok());
  }
  Result<Table> cat = t.ConcatColumns(other);
  ASSERT_TRUE(cat.ok());
  EXPECT_EQ(cat->num_columns(), 4u);
  EXPECT_EQ(cat->GetValue(2, 3), Value::Int64(2));
  // Duplicate names rejected.
  EXPECT_FALSE(t.ConcatColumns(t).ok());
}

TEST(TableTest, EqualsIgnoringRowOrder) {
  Table t = SmallTable();
  Result<Table> shuffled = t.TakeRows({2, 0, 1});
  ASSERT_TRUE(shuffled.ok());
  EXPECT_TRUE(t.EqualsIgnoringRowOrder(*shuffled));
  EXPECT_FALSE(t.EqualsExact(*shuffled));
  EXPECT_TRUE(t.EqualsExact(t));
  Result<Table> fewer = t.TakeRows({0});
  EXPECT_FALSE(t.EqualsIgnoringRowOrder(*fewer));
}

// -------------------------------------------------------------------- CSV

TEST(CsvTest, ParseWithTypeInference) {
  Result<Table> t = ReadCsvString(
      "Model,Year,Price,When\n"
      "Chevy,1994,1.5,1996-06-01\n"
      "Ford,1995,2,1996-06-02\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, DataType::kString);
  EXPECT_EQ(t->schema().field(1).type, DataType::kInt64);
  EXPECT_EQ(t->schema().field(2).type, DataType::kFloat64);
  EXPECT_EQ(t->schema().field(3).type, DataType::kDate);
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(1, 1), Value::Int64(1995));
}

TEST(CsvTest, QuotedFieldsAndEscapes) {
  Result<Table> t = ReadCsvString(
      "a,b\n"
      "\"x,y\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->GetValue(0, 0), Value::String("x,y"));
  EXPECT_EQ(t->GetValue(0, 1), Value::String("he said \"hi\""));
}

TEST(CsvTest, NullTokenAndHeaderlessMode) {
  CsvReadOptions opts;
  opts.has_header = false;
  Result<Table> t = ReadCsvString("1,\n2,x\n", opts);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).name, "c0");
  EXPECT_TRUE(t->GetValue(0, 1).is_null());
}

TEST(CsvTest, RaggedRowRejected) {
  EXPECT_FALSE(ReadCsvString("a,b\n1\n").ok());
  EXPECT_FALSE(ReadCsvString("").ok());
}

TEST(CsvTest, WriteRoundTrip) {
  Table t = SmallTable();
  std::string csv = WriteCsvString(t);
  Result<Table> back = ReadCsvString(csv);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), t.num_rows());
  EXPECT_EQ(back->GetValue(0, 1), Value::Int64(3));
  EXPECT_TRUE(back->GetValue(1, 2).is_null());
}

TEST(CsvTest, QuotedNewlinesSurviveRecordAssembly) {
  // Regression: record splitting used to break on every '\n', so a quoted
  // field containing a newline became two ragged records (RFC 4180 §2.6).
  Result<Table> t = ReadCsvString(
      "k,v\n"
      "\"line one\nline two\",1\n"
      "plain,2\n");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0), Value::String("line one\nline two"));
  EXPECT_EQ(t->GetValue(1, 1), Value::Int64(2));

  // Writer and reader must agree: a table holding newlines, commas, and
  // quotes round-trips exactly.
  TableBuilder b({Field{"s", DataType::kString}, Field{"n", DataType::kInt64}});
  b.Row({Value::String("a\nb,c\"d"), Value::Int64(7)});
  Table original = std::move(b).Build().value();
  Result<Table> back = ReadCsvString(WriteCsvString(original));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->EqualsExact(original));
}

TEST(CsvTest, IntegerOverflowFallsBackToFloatInference) {
  // Regression: strtoll saturates to INT64_MAX with ERANGE on overflow; the
  // sniffer used to accept that, ingesting 99999999999999999999 as a
  // silently clamped INT64_MAX. Out-of-range integers must demote the
  // column, and in-range extremes must stay exact.
  Result<Table> t = ReadCsvString(
      "big,exact\n"
      "99999999999999999999,9223372036854775807\n"
      "1,-9223372036854775808\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, DataType::kFloat64);
  EXPECT_EQ(t->schema().field(1).type, DataType::kInt64);
  EXPECT_EQ(t->GetValue(0, 0), Value::Float64(1e20));
  EXPECT_EQ(t->GetValue(0, 1),
            Value::Int64(std::numeric_limits<int64_t>::max()));
  EXPECT_EQ(t->GetValue(1, 1),
            Value::Int64(std::numeric_limits<int64_t>::min()));
}

// ------------------------------------------------------------------- Sort

TEST(SortTest, MultiKeyWithSpecialsFirst) {
  Table t = SmallTable();
  Result<Table> sorted =
      SortTable(t, {SortKey{1, /*ascending=*/true}});
  ASSERT_TRUE(sorted.ok());
  // NULL sorts before values.
  EXPECT_TRUE(sorted->GetValue(0, 1).is_null());
  EXPECT_EQ(sorted->GetValue(1, 1), Value::Int64(1));
  EXPECT_EQ(sorted->GetValue(2, 1), Value::Int64(3));
}

TEST(SortTest, DescendingAndStability) {
  TableBuilder b(
      {Field{"k", DataType::kInt64}, Field{"tag", DataType::kString}});
  b.Row({Value::Int64(1), Value::String("first")});
  b.Row({Value::Int64(1), Value::String("second")});
  b.Row({Value::Int64(2), Value::String("third")});
  Table t = std::move(b).Build().value();
  Result<Table> sorted = SortTable(t, {SortKey{0, /*ascending=*/false}});
  ASSERT_TRUE(sorted.ok());
  EXPECT_EQ(sorted->GetValue(0, 1), Value::String("third"));
  // Stable: equal keys keep input order.
  EXPECT_EQ(sorted->GetValue(1, 1), Value::String("first"));
  EXPECT_EQ(sorted->GetValue(2, 1), Value::String("second"));
  EXPECT_FALSE(SortTable(t, {SortKey{7, true}}).ok());
}

// ------------------------------------------------------------------ Print

TEST(PrintTest, AlignsAndRendersSpecials) {
  TableBuilder b({Field{"Model", DataType::kString},
                  Field{"Units", DataType::kInt64}});
  b.Row({Value::All(), Value::Int64(941)});
  b.Row({Value::String("Chevy"), Value::Null()});
  Table t = std::move(b).Build().value();
  std::string s = FormatTable(t);
  EXPECT_NE(s.find("ALL"), std::string::npos);
  EXPECT_NE(s.find("NULL"), std::string::npos);
  EXPECT_NE(s.find("Model"), std::string::npos);
  // Numeric column right-aligns: "941" ends its line segment.
  EXPECT_NE(s.find("  941"), std::string::npos);
}

TEST(PrintTest, MaxRowsElision) {
  Result<Table> sales = Figure4SalesTable();
  ASSERT_TRUE(sales.ok());
  PrintOptions opts;
  opts.max_rows = 5;
  std::string s = FormatTable(*sales, opts);
  EXPECT_NE(s.find("(13 more rows)"), std::string::npos);
}

// -------------------------------------------------------------- Workload

TEST(WorkloadTest, Figure4GrandTotalIs941) {
  Result<Table> sales = Figure4SalesTable();
  ASSERT_TRUE(sales.ok());
  EXPECT_EQ(sales->num_rows(), 18u);
  int64_t total = 0;
  for (size_t r = 0; r < sales->num_rows(); ++r) {
    total += sales->GetValue(r, 3).int64_value();
  }
  EXPECT_EQ(total, 941);  // the paper's (ALL, ALL, ALL, 941)
}

TEST(WorkloadTest, Table3TotalsMatchPaper) {
  Result<Table> sales = Table3SalesTable();
  ASSERT_TRUE(sales.ok());
  int64_t chevy = 0, ford = 0;
  for (size_t r = 0; r < sales->num_rows(); ++r) {
    int64_t units = sales->GetValue(r, 3).int64_value();
    if (sales->GetValue(r, 0) == Value::String("Chevy")) chevy += units;
    if (sales->GetValue(r, 0) == Value::String("Ford")) ford += units;
  }
  EXPECT_EQ(chevy, 290);
  EXPECT_EQ(ford, 220);
  EXPECT_EQ(chevy + ford, 510);
}

TEST(WorkloadTest, GeneratorIsDeterministic) {
  SalesGenOptions opts;
  opts.num_rows = 100;
  Result<Table> a = GenerateSales(opts);
  Result<Table> b = GenerateSales(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->EqualsExact(*b));
  opts.seed = 43;
  Result<Table> c = GenerateSales(opts);
  EXPECT_FALSE(a->EqualsExact(*c));
}

}  // namespace
}  // namespace datacube
