#include "datacube/cube/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "datacube/cube/cube_operator.h"
#include "datacube/workload/sales.h"

// The shared execution substrate: one process-wide pool reused across
// queries, help-first TaskGroups (tasks may spawn tasks; waiters drain the
// queue instead of sleeping, so a query may request more parallelism than
// the pool has workers), and deterministic first-by-index error selection.

namespace datacube {
namespace cube_internal {
namespace {

TEST(ThreadPoolTest, GlobalPoolIsReusedAcrossCalls) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_threads(), 1u);
}

TEST(ThreadPoolTest, TaskGroupRunsEveryTask) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 200; ++i) {
    group.Spawn([&ran] { ran.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, TasksMaySpawnTasks) {
  // The cascade scheduler spawns a child task the moment its parent
  // finishes — from inside the parent task.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.Spawn([&group, &ran] {
      ran.fetch_add(1);
      group.Spawn([&group, &ran] {
        ran.fetch_add(1);
        group.Spawn([&ran] { ran.fetch_add(1); });
      });
    });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 24);
}

TEST(ThreadPoolTest, SingleWorkerPoolStillCompletesFanOut) {
  // More tasks than workers must complete via help-first waiting, not hang.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) {
    group.Spawn([&ran] { ran.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ParallelStatusForReportsFirstErrorByIndex) {
  ThreadPool pool(4);
  // Multiple tasks fail; regardless of completion order, the reported error
  // must be the lowest-index failure.
  for (int repeat = 0; repeat < 20; ++repeat) {
    Status st = ParallelStatusFor(pool, 10, [](size_t i) -> Status {
      if (i == 7) return Status::Internal("task 7 failed");
      if (i == 3) return Status::Internal("task 3 failed");
      return Status::OK();
    });
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("task 3"), std::string::npos)
        << st.ToString();
  }
}

TEST(ThreadPoolTest, ParallelStatusForAllOk) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  Status st = ParallelStatusFor(pool, 16, [&ran](size_t) -> Status {
    ran.fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(ran.load(), 16);
}

// ------------------------------------------------ ClampThreads

TEST(ClampThreadsTest, SerialDefaultStaysSerial) {
  EXPECT_EQ(ClampThreads(1, 1u << 20), 1u);
}

TEST(ClampThreadsTest, SmallInputsClampToSerial) {
  EXPECT_EQ(ClampThreads(8, 0), 1u);
  EXPECT_EQ(ClampThreads(8, 100), 1u);
  EXPECT_EQ(ClampThreads(8, kMinRowsPerThread - 1), 1u);
}

TEST(ClampThreadsTest, LargeInputsKeepTheRequest) {
  EXPECT_EQ(ClampThreads(8, kMinRowsPerThread * 8), 8u);
  EXPECT_EQ(ClampThreads(2, kMinRowsPerThread + 1), 2u);
}

TEST(ClampThreadsTest, MidSizeInputsClampProportionally) {
  EXPECT_EQ(ClampThreads(16, kMinRowsPerThread * 3), 4u);
}

TEST(ClampThreadsTest, AutoReadsDatacubeThreadsEnv) {
  ASSERT_EQ(setenv("DATACUBE_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ClampThreads(0, 1u << 20), 3u);
  EXPECT_EQ(ClampThreads(-1, 1u << 20), 3u);
  ASSERT_EQ(unsetenv("DATACUBE_THREADS"), 0);
  EXPECT_GE(ClampThreads(0, 1u << 20), 1u);
}

// ------------------------------------------------ concurrent queries

TEST(ThreadPoolTest, ConcurrentParallelQueriesShareThePool) {
  Table input =
      GenerateCubeInput({.num_rows = 30000, .num_dims = 3, .cardinality = 8,
                         .skew = 0.5, .seed = 5})
          .value();
  // Each caller builds its own CubeSpec: ExecuteCube binds the spec's
  // expressions against the input schema, so a spec (unlike the input
  // table, which is only read) must not be shared across concurrent
  // queries.
  auto make_spec = [] {
    CubeSpec spec;
    spec.cube = {GroupCol("d0"), GroupCol("d1"), GroupCol("d2")};
    // Integer-valued aggregates keep double arithmetic exact, so every
    // merge order produces bit-identical results.
    spec.aggregates = {Agg("sum", "x", "s"), Agg("count", "x", "c")};
    return spec;
  };
  CubeSpec serial_spec = make_spec();
  Table serial = ExecuteCube(input, serial_spec)->table;

  constexpr int kCallers = 4;
  std::vector<Status> statuses(kCallers, Status::OK());
  // Not vector<bool>: concurrent writers need one addressable byte each.
  std::vector<char> matched(kCallers, 0);
  std::vector<std::thread> callers;
  for (int q = 0; q < kCallers; ++q) {
    callers.emplace_back([&, q] {
      CubeSpec spec = make_spec();
      CubeOptions options;
      options.num_threads = 3;
      options.morsel_rows = 4096;
      Result<CubeResult> r = ExecuteCube(input, spec, options);
      if (!r.ok()) {
        statuses[q] = r.status();
        return;
      }
      matched[q] = r->table.EqualsIgnoringRowOrder(serial);
    });
  }
  for (std::thread& t : callers) t.join();
  for (int q = 0; q < kCallers; ++q) {
    EXPECT_TRUE(statuses[q].ok()) << statuses[q].ToString();
    EXPECT_TRUE(matched[q]) << "caller " << q << " diverged from serial";
  }
}

TEST(ThreadPoolTest, RequestBeyondHardwareConcurrencyCompletes) {
  Table input =
      GenerateCubeInput({.num_rows = 40000, .num_dims = 2, .cardinality = 16,
                         .seed = 9})
          .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1")};
  spec.aggregates = {Agg("sum", "x", "s"), Agg("max", "x", "mx")};
  Table serial = ExecuteCube(input, spec)->table;
  CubeOptions options;
  options.num_threads = 32;  // far beyond this machine's cores
  Result<CubeResult> r = ExecuteCube(input, spec, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.threads_used, 32);
  EXPECT_TRUE(r->table.EqualsIgnoringRowOrder(serial));
}

}  // namespace
}  // namespace cube_internal
}  // namespace datacube
