#include "datacube/testing/differential.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "datacube/testing/random_table.h"

namespace datacube {
namespace {

using datacube::testing::AdversarialProfiles;
using datacube::testing::DiffReport;
using datacube::testing::DiffResultTables;
using datacube::testing::MakeRandomSpec;
using datacube::testing::MakeRandomTable;
using datacube::testing::RandomTableProfile;
using datacube::testing::RunDifferential;
using datacube::testing::RunMaintenanceDifferential;

// ------------------------------------------------------ generator basics

TEST(RandomTableTest, DeterministicForSeed) {
  for (const RandomTableProfile& p : AdversarialProfiles()) {
    Table a = datacube::testing::MakeRandomTable(42, p);
    Table b = datacube::testing::MakeRandomTable(42, p);
    EXPECT_TRUE(a.EqualsExact(b)) << p.label;
    EXPECT_EQ(a.num_rows(), p.rows) << p.label;
  }
}

TEST(RandomTableTest, DifferentSeedsDiffer) {
  RandomTableProfile p = AdversarialProfiles()[0];
  Table a = MakeRandomTable(1, p);
  Table b = MakeRandomTable(2, p);
  EXPECT_FALSE(a.EqualsExact(b));
}

TEST(RandomTableTest, ProfileCatalogueCoversTheEdgeShapes) {
  auto profiles = AdversarialProfiles();
  ASSERT_GE(profiles.size(), 10u);
  bool has_empty = false, has_single = false, has_parallel = false;
  bool has_float_keys = false, has_int_extremes = false;
  for (const auto& p : profiles) {
    has_empty |= p.rows == 0;
    has_single |= p.rows == 1;
    has_parallel |= p.rows >= 4096;  // >= 1024 rows/thread at 4 threads
    has_float_keys |= p.float_dim;
    has_int_extremes |= p.int_extremes;
  }
  EXPECT_TRUE(has_empty);
  EXPECT_TRUE(has_single);
  EXPECT_TRUE(has_parallel);
  EXPECT_TRUE(has_float_keys);
  EXPECT_TRUE(has_int_extremes);
}

// ---------------------------------------------------- fixed-seed sweep

struct SweepCase {
  RandomTableProfile profile;
  uint64_t seed;
};

std::vector<SweepCase> SweepCases() {
  std::vector<SweepCase> cases;
  for (const RandomTableProfile& p : AdversarialProfiles()) {
    for (uint64_t seed = 1; seed <= 5; ++seed) cases.push_back({p, seed});
  }
  return cases;
}

class DifferentialSweepTest : public ::testing::TestWithParam<SweepCase> {};

// Every Section 5 algorithm (plus the parallel path at 2 and 8 threads)
// must produce the identical cube, cell for cell, on every adversarial
// profile. This is the tier-1 differential oracle: >= 50 fixed-seed cases.
TEST_P(DifferentialSweepTest, AllAlgorithmsAgree) {
  const SweepCase& c = GetParam();
  Table input = MakeRandomTable(c.seed, c.profile);
  // Odd seeds include holistic aggregates (median/mode/count_distinct),
  // which force the algorithm-specific fallback paths.
  CubeSpec spec = MakeRandomSpec(c.seed, c.profile, c.seed % 2 == 1);
  DiffReport report = RunDifferential(input, spec);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Adversarial, DifferentialSweepTest, ::testing::ValuesIn(SweepCases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.profile.label + "_seed" +
             std::to_string(info.param.seed);
    });

// ------------------------------------------------- maintenance replays

struct MaintCase {
  std::string label;
  size_t profile_index;
  uint64_t seed;
};

class MaintenanceDifferentialTest
    : public ::testing::TestWithParam<MaintCase> {};

// Replay a seeded insert/delete stream against MaterializedCube and diff
// its incremental state against recompute-from-scratch — the Section 6
// maintenance path, including a mid-stream checkpoint round-trip.
TEST_P(MaintenanceDifferentialTest, IncrementalMatchesRecompute) {
  const MaintCase& c = GetParam();
  RandomTableProfile profile = AdversarialProfiles()[c.profile_index];
  CubeSpec spec = MakeRandomSpec(c.seed, profile, /*include_holistic=*/
                                 c.seed % 2 == 1);
  DiffReport report = RunMaintenanceDifferential(c.seed, profile, spec);
  EXPECT_TRUE(report.ok()) << report.mismatch << "\n" << report.ToString();
}

std::vector<MaintCase> MaintCases() {
  // Indices into AdversarialProfiles(): plain, single-row, null-heavy,
  // dup-heavy, float keys, int keys beyond 2^53.
  std::vector<MaintCase> cases;
  for (size_t idx : {0, 2, 3, 4, 5, 6}) {
    for (uint64_t seed : {11, 12}) {
      const auto label = AdversarialProfiles()[idx].label;
      cases.push_back({label + "_seed" + std::to_string(seed), idx, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Replays, MaintenanceDifferentialTest, ::testing::ValuesIn(MaintCases()),
    [](const ::testing::TestParamInfo<MaintCase>& info) {
      return info.param.label;
    });

// -------------------------------------------------- oracle sensitivity

// The oracle is only trustworthy if it actually fires. Perturb one cell of
// a genuine cube result and prove the diff is caught and localized.
TEST(OracleSensitivityTest, PerturbedCellIsCaught) {
  RandomTableProfile profile = AdversarialProfiles()[0];
  Table input = MakeRandomTable(7, profile);
  CubeSpec spec = MakeRandomSpec(7, profile, /*include_holistic=*/false);
  Result<CubeResult> r = ExecuteCube(input, spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& good = r->table;
  ASSERT_GT(good.num_rows(), 0u);

  auto n_col = good.schema().FieldIndex("n");
  ASSERT_TRUE(n_col.has_value());
  Table bad{good.schema()};
  for (size_t row = 0; row < good.num_rows(); ++row) {
    std::vector<Value> vals = good.GetRow(row);
    if (row == 0) {
      vals[*n_col] = Value::Int64(vals[*n_col].int64_value() + 1);
    }
    ASSERT_TRUE(bad.AppendRow(vals).ok());
  }

  DiffReport report = DiffResultTables(good, bad, spec);
  ASSERT_FALSE(report.ok());
  ASSERT_FALSE(report.cell_diffs.empty());
  EXPECT_EQ(report.cell_diffs[0].column, "n");
  EXPECT_FALSE(report.ToString().empty());
}

TEST(OracleSensitivityTest, MissingRowIsCaught) {
  RandomTableProfile profile = AdversarialProfiles()[0];
  Table input = MakeRandomTable(8, profile);
  CubeSpec spec = MakeRandomSpec(8, profile, /*include_holistic=*/false);
  Result<CubeResult> r = ExecuteCube(input, spec);
  ASSERT_TRUE(r.ok());
  const Table& good = r->table;
  ASSERT_GT(good.num_rows(), 1u);

  std::vector<size_t> keep;
  for (size_t row = 1; row < good.num_rows(); ++row) keep.push_back(row);
  Result<Table> truncated = good.TakeRows(keep);
  ASSERT_TRUE(truncated.ok());

  DiffReport report = DiffResultTables(good, *truncated, spec);
  ASSERT_FALSE(report.ok());
  ASSERT_FALSE(report.cell_diffs.empty());
  EXPECT_EQ(report.cell_diffs[0].column, "<row>");
}

TEST(OracleSensitivityTest, ToleranceAbsorbsReorderedSummation) {
  RandomTableProfile profile = AdversarialProfiles()[0];
  Table input = MakeRandomTable(9, profile);
  CubeSpec spec = MakeRandomSpec(9, profile, /*include_holistic=*/false);
  Result<CubeResult> r = ExecuteCube(input, spec);
  ASSERT_TRUE(r.ok());
  const Table& good = r->table;

  // Nudge every float cell by less than abs_tol: still agreement.
  Table nudged{good.schema()};
  for (size_t row = 0; row < good.num_rows(); ++row) {
    std::vector<Value> vals = good.GetRow(row);
    for (Value& v : vals) {
      if (v.kind() == Value::Kind::kFloat64 &&
          std::isfinite(v.float64_value())) {
        v = Value::Float64(v.float64_value() + 1e-9);
      }
    }
    ASSERT_TRUE(nudged.AppendRow(vals).ok());
  }
  EXPECT_TRUE(DiffResultTables(good, nudged, spec).ok());
}

// ----------------------------------------------------------- soak mode

// Optional deep fuzz, driven by the DATACUBE_FUZZ_ITERS environment
// variable (the CI sanitizer soak sets it to a few hundred). Each
// iteration is an independent (profile, seed) differential run; any
// failure prints the seed and the minimized counterexample.
TEST(DifferentialSoakTest, EnvDrivenIterations) {
  const char* env = std::getenv("DATACUBE_FUZZ_ITERS");
  int iters = env ? std::atoi(env) : 0;
  if (iters <= 0) GTEST_SKIP() << "set DATACUBE_FUZZ_ITERS to enable";
  auto profiles = AdversarialProfiles();
  for (int i = 0; i < iters; ++i) {
    const RandomTableProfile& profile = profiles[i % profiles.size()];
    uint64_t seed = 10000 + static_cast<uint64_t>(i);
    Table input = MakeRandomTable(seed, profile);
    CubeSpec spec = MakeRandomSpec(seed, profile, i % 2 == 0);
    DiffReport report = RunDifferential(input, spec);
    ASSERT_TRUE(report.ok())
        << "profile=" << profile.label << " seed=" << seed << "\n"
        << report.ToString();
    if (i % 4 == 3) {
      DiffReport maint = RunMaintenanceDifferential(seed, profile, spec);
      ASSERT_TRUE(maint.ok())
          << "maintenance profile=" << profile.label << " seed=" << seed
          << "\n" << maint.ToString();
    }
  }
}

}  // namespace
}  // namespace datacube
