// Tests for the second-wave features: LIKE and CASE expressions (in the
// expression layer and through SQL), the percentile aggregate, calendar
// hierarchies (TimeRollupSpec with the weeks-don't-nest rule), PartialCube
// insert maintenance, and the TPC-D-like workload.

#include <gtest/gtest.h>

#include "datacube/agg/builtin_aggregates.h"
#include "datacube/agg/registry.h"
#include "datacube/cube/cube_operator.h"
#include "datacube/cube/partial_cube.h"
#include "datacube/schema/star.h"
#include "datacube/sql/engine.h"
#include "datacube/workload/sales.h"
#include "datacube/workload/tpcd.h"

namespace datacube {
namespace {

// ---------------------------------------------------------------- LIKE

TEST(LikeTest, WildcardSemantics) {
  TableBuilder b({Field{"s", DataType::kString}});
  b.Row({Value::String("Chevy")});
  Table t = std::move(b).Build().value();
  struct Case {
    const char* pattern;
    bool expected;
  };
  for (Case c : {Case{"Chevy", true}, Case{"chevy", false},
                 Case{"Ch%", true}, Case{"%vy", true}, Case{"%e%", true},
                 Case{"Ch_vy", true}, Case{"Ch_y", false}, Case{"%", true},
                 Case{"", false}, Case{"C%y%", true}, Case{"_____", true},
                 Case{"______", false}}) {
    ExprPtr e = Expr::Binary(BinaryOp::kLike, Expr::Column("s"),
                             Expr::Lit(Value::String(c.pattern)));
    ASSERT_TRUE(e->Bind(t.schema()).ok());
    EXPECT_EQ(e->Evaluate(t, 0)->bool_value(), c.expected)
        << "pattern: " << c.pattern;
  }
}

TEST(LikeTest, TypeCheckAndNulls) {
  TableBuilder b({Field{"s", DataType::kString}, Field{"i", DataType::kInt64}});
  b.Row({Value::Null(), Value::Int64(1)});
  Table t = std::move(b).Build().value();
  ExprPtr bad = Expr::Binary(BinaryOp::kLike, Expr::Column("i"),
                             Expr::Lit(Value::String("%")));
  EXPECT_FALSE(bad->Bind(t.schema()).ok());
  ExprPtr null_like = Expr::Binary(BinaryOp::kLike, Expr::Column("s"),
                                   Expr::Lit(Value::String("%")));
  ASSERT_TRUE(null_like->Bind(t.schema()).ok());
  EXPECT_TRUE(null_like->Evaluate(t, 0)->is_null());
}

TEST(LikeTest, ThroughSql) {
  sql::Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", Table3SalesTable().value()).ok());
  Result<Table> t = sql::ExecuteSql(
      "SELECT Model, SUM(Units) AS s FROM Sales "
      "WHERE Color LIKE 'bl%' GROUP BY Model ORDER BY 1",
      catalog);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 1), Value::Int64(135));  // Chevy black
  Result<Table> not_like = sql::ExecuteSql(
      "SELECT COUNT(*) FROM Sales WHERE Color NOT LIKE 'bl%'", catalog);
  ASSERT_TRUE(not_like.ok());
  EXPECT_EQ(not_like->GetValue(0, 0), Value::Int64(4));
}

// ---------------------------------------------------------------- CASE

TEST(CaseTest, BranchesAndElse) {
  TableBuilder b({Field{"x", DataType::kInt64}});
  for (int v : {1, 5, 50}) b.Row({Value::Int64(v)});
  Table t = std::move(b).Build().value();
  ExprPtr e = Expr::Case(
      {{Expr::Binary(BinaryOp::kLt, Expr::Column("x"),
                     Expr::Lit(Value::Int64(3))),
        Expr::Lit(Value::String("small"))},
       {Expr::Binary(BinaryOp::kLt, Expr::Column("x"),
                     Expr::Lit(Value::Int64(10))),
        Expr::Lit(Value::String("medium"))}},
      Expr::Lit(Value::String("large")));
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_EQ(*e->Evaluate(t, 0), Value::String("small"));
  EXPECT_EQ(*e->Evaluate(t, 1), Value::String("medium"));
  EXPECT_EQ(*e->Evaluate(t, 2), Value::String("large"));
  EXPECT_EQ(e->output_type(), DataType::kString);
}

TEST(CaseTest, NoElseYieldsNullAndNumericWidening) {
  TableBuilder b({Field{"x", DataType::kInt64}});
  b.Row({Value::Int64(1)});
  b.Row({Value::Int64(100)});
  Table t = std::move(b).Build().value();
  ExprPtr e = Expr::Case({{Expr::Binary(BinaryOp::kLt, Expr::Column("x"),
                                        Expr::Lit(Value::Int64(10))),
                           Expr::Lit(Value::Float64(0.5))},
                          {Expr::Lit(Value::Bool(true)),
                           Expr::Lit(Value::Int64(2))}});
  ASSERT_TRUE(e->Bind(t.schema()).ok());
  EXPECT_EQ(e->output_type(), DataType::kFloat64);  // mixed numerics widen
  EXPECT_EQ(*e->Evaluate(t, 0), Value::Float64(0.5));
  EXPECT_EQ(*e->Evaluate(t, 1), Value::Float64(2.0));

  ExprPtr no_else = Expr::Case({{Expr::Lit(Value::Bool(false)),
                                 Expr::Lit(Value::Int64(1))}});
  ASSERT_TRUE(no_else->Bind(t.schema()).ok());
  EXPECT_TRUE(no_else->Evaluate(t, 0)->is_null());
}

TEST(CaseTest, TypeErrors) {
  TableBuilder b({Field{"x", DataType::kInt64}});
  b.Row({Value::Int64(1)});
  Table t = std::move(b).Build().value();
  // Non-boolean condition.
  ExprPtr bad_cond =
      Expr::Case({{Expr::Column("x"), Expr::Lit(Value::Int64(1))}});
  EXPECT_FALSE(bad_cond->Bind(t.schema()).ok());
  // Incompatible branch types.
  ExprPtr bad_branches = Expr::Case(
      {{Expr::Lit(Value::Bool(true)), Expr::Lit(Value::Int64(1))},
       {Expr::Lit(Value::Bool(true)), Expr::Lit(Value::String("x"))}});
  EXPECT_FALSE(bad_branches->Bind(t.schema()).ok());
}

TEST(CaseTest, ThroughSqlAsGroupingCategory) {
  // CASE as a computed grouping category — the paper's histogram idea with
  // ad-hoc buckets.
  sql::Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", Table3SalesTable().value()).ok());
  Result<Table> t = sql::ExecuteSql(
      "SELECT CASE WHEN Units < 50 THEN 'low' ELSE 'high' END AS band, "
      "COUNT(*) AS n FROM Sales "
      "GROUP BY CASE WHEN Units < 50 THEN 'low' ELSE 'high' END "
      "ORDER BY 1",
      catalog);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0), Value::String("high"));
  EXPECT_EQ(t->GetValue(0, 1), Value::Int64(6));
  EXPECT_EQ(t->GetValue(1, 0), Value::String("low"));
  EXPECT_EQ(t->GetValue(1, 1), Value::Int64(2));
}

TEST(CaseTest, ParserErrors) {
  EXPECT_FALSE(sql::ExecuteSql("SELECT CASE END FROM t", {}).ok());
  EXPECT_FALSE(
      sql::ExecuteSql("SELECT CASE WHEN a THEN 1 FROM t", {}).ok());
}

// ------------------------------------------------------------ percentile

TEST(PercentileTest, InterpolatedValues) {
  auto fn = MakePercentile(50);
  AggStatePtr s = fn->Init();
  for (int v : {10, 20, 30, 40}) fn->Iter1(s.get(), Value::Int64(v));
  EXPECT_NEAR(fn->Final(s.get()).AsDouble(), 25.0, 1e-9);

  auto p25 = MakePercentile(25);
  AggStatePtr s2 = p25->Init();
  for (int v : {10, 20, 30, 40}) p25->Iter1(s2.get(), Value::Int64(v));
  EXPECT_NEAR(p25->Final(s2.get()).AsDouble(), 17.5, 1e-9);

  auto p0 = MakePercentile(0);
  auto p100 = MakePercentile(100);
  AggStatePtr s3 = p0->Init(), s4 = p100->Init();
  for (int v : {10, 20, 30}) {
    p0->Iter1(s3.get(), Value::Int64(v));
    p100->Iter1(s4.get(), Value::Int64(v));
  }
  EXPECT_NEAR(p0->Final(s3.get()).AsDouble(), 10.0, 1e-9);
  EXPECT_NEAR(p100->Final(s4.get()).AsDouble(), 30.0, 1e-9);
  EXPECT_TRUE(fn->Final(fn->Init().get()).is_null());
}

TEST(PercentileTest, RegistryAndSql) {
  AggregateRegistry& reg = AggregateRegistry::Global();
  EXPECT_TRUE(reg.Make("percentile", {Value::Int64(75)}).ok());
  EXPECT_FALSE(reg.Make("percentile", {}).ok());
  EXPECT_FALSE(reg.Make("percentile", {Value::Int64(101)}).ok());
  EXPECT_EQ((*reg.Make("percentile", {Value::Int64(75)}))->agg_class(),
            AggClass::kHolistic);

  sql::Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", Table3SalesTable().value()).ok());
  Result<Table> t = sql::ExecuteSql(
      "SELECT percentile(Units, 50) AS median_units FROM Sales", catalog);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // Units sorted: 10 40 50 50 75 85 85 115 -> median (50+75)/2 = 62.5.
  EXPECT_NEAR(t->GetValue(0, 0).AsDouble(), 62.5, 1e-9);
}

TEST(PercentileTest, MatchesMedianInCube) {
  Table t = GenerateCubeInput({.num_rows = 500,
                               .num_dims = 2,
                               .cardinality = 4,
                               .seed = 12})
                .value();
  AggregateSpec p50;
  p50.function = "percentile";
  p50.args = {Expr::Column("x")};
  p50.params = {Value::Int64(50)};
  p50.output_name = "p50";
  Result<CubeResult> via_percentile =
      Cube(t, {GroupCol("d0"), GroupCol("d1")}, {p50});
  Result<CubeResult> via_median =
      Cube(t, {GroupCol("d0"), GroupCol("d1")}, {Agg("median", "x", "p50")});
  ASSERT_TRUE(via_percentile.ok());
  ASSERT_TRUE(via_median.ok());
  EXPECT_TRUE(
      via_percentile->table.EqualsIgnoringRowOrder(via_median->table));
}

// ---------------------------------------------------------- time rollup

TEST(TimeRollupTest, CalendarFamilyOrdersCoarsestFirst) {
  Result<CubeSpec> spec = TimeRollupSpec(
      "d", {"month", "year", "day"}, {Agg("sum", "x", "s")});
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->rollup.size(), 3u);
  EXPECT_EQ(spec->rollup[0].name, "year");
  EXPECT_EQ(spec->rollup[1].name, "month");
  EXPECT_EQ(spec->rollup[2].name, "day");
}

TEST(TimeRollupTest, WeeksDoNotNestInMonths) {
  // The paper: "days nest in weeks but weeks do not nest in months or
  // quarters or years."
  EXPECT_FALSE(TimeRollupSpec("d", {"month", "week"}, {}).ok());
  EXPECT_FALSE(TimeRollupSpec("d", {"year", "week"}, {}).ok());
  EXPECT_TRUE(TimeRollupSpec("d", {"weekyear", "week", "day"},
                             {Agg("sum", "x", "s")})
                  .ok());
  EXPECT_FALSE(TimeRollupSpec("d", {"fortnight"}, {}).ok());
  EXPECT_FALSE(TimeRollupSpec("d", {}, {}).ok());
}

TEST(TimeRollupTest, ExecutesOverDates) {
  Table t(Schema({Field{"d", DataType::kDate}, Field{"x", DataType::kInt64}}));
  // Two years, two quarters each.
  for (auto [y, m] : std::vector<std::pair<int, int>>{
           {1994, 1}, {1994, 2}, {1994, 7}, {1995, 3}, {1995, 8}}) {
    ASSERT_TRUE(t.AppendRow({Value::FromDate(DateFromCivil(y, m, 15)),
                             Value::Int64(10)})
                    .ok());
  }
  Result<CubeSpec> spec =
      TimeRollupSpec("d", {"year", "quarter"}, {Agg("sum", "x", "s")});
  ASSERT_TRUE(spec.ok());
  Result<CubeResult> rollup = ExecuteCube(t, *spec);
  ASSERT_TRUE(rollup.ok()) << rollup.status().ToString();
  // Rows: 4 (year, quarter) + 2 year sub-totals + 1 grand = 7.
  EXPECT_EQ(rollup->table.num_rows(), 7u);
  bool found_1994 = false;
  for (size_t r = 0; r < rollup->table.num_rows(); ++r) {
    if (rollup->table.GetValue(r, 0) == Value::Int64(1994) &&
        rollup->table.GetValue(r, 1).is_all()) {
      EXPECT_EQ(rollup->table.GetValue(r, 2), Value::Int64(30));
      found_1994 = true;
    }
  }
  EXPECT_TRUE(found_1994);
}

// ------------------------------------------------- partial cube inserts

TEST(PartialCubeInsertTest, MaintainedViewsMatchRebuild) {
  Table t = GenerateCubeInput({.num_rows = 500,
                               .num_dims = 3,
                               .cardinality = 4,
                               .seed = 13})
                .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1"), GroupCol("d2")};
  spec.aggregates = {Agg("sum", "x", "s"), CountStar("n")};
  std::vector<GroupingSet> views = {0b111, 0b011, 0b100};
  auto partial = PartialCube::Build(t, spec, views).value();

  std::vector<Value> row = {Value::String("v0"), Value::String("v1"),
                            Value::String("v2"), Value::Int64(999),
                            Value::Float64(0.0)};
  ASSERT_TRUE(partial->ApplyInsert(row).ok());
  ASSERT_TRUE(t.AppendRow(row).ok());

  auto rebuilt = PartialCube::Build(t, spec, views).value();
  for (GroupingSet target = 0; target < 8; ++target) {
    Result<Table> maintained = partial->Query(target);
    Result<Table> fresh = rebuilt->Query(target);
    ASSERT_TRUE(maintained.ok());
    ASSERT_TRUE(fresh.ok());
    EXPECT_TRUE(maintained->EqualsIgnoringRowOrder(*fresh))
        << "target " << target;
  }
}

// ------------------------------------------------------- TPC-D workload

TEST(TpcdWorkloadTest, SchemaAndDeterminism) {
  Result<Table> a = GenerateLineitem({.num_rows = 500, .seed = 3});
  Result<Table> b = GenerateLineitem({.num_rows = 500, .seed = 3});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->num_columns(), 10u);
  EXPECT_TRUE(a->EqualsExact(*b));
  // Dimension cardinalities as documented.
  EXPECT_LE(a->ColumnByName("returnflag").value()->CountDistinct(), 3u);
  EXPECT_LE(a->ColumnByName("shipmode").value()->CountDistinct(), 7u);
  EXPECT_LE(a->ColumnByName("nation").value()->CountDistinct(), 10u);
}

TEST(TpcdWorkloadTest, SixDimCubeMatchesAcrossAlgorithms) {
  Table t = GenerateLineitem({.num_rows = 2000, .seed = 9}).value();
  std::vector<GroupExpr> dims = {GroupCol("returnflag"), GroupCol("linestatus"),
                                 GroupCol("shipmode"),   GroupCol("priority"),
                                 GroupCol("nation"),     GroupCol("shipyear")};
  CubeOptions union_gb;
  union_gb.algorithm = CubeAlgorithm::kUnionGroupBy;
  union_gb.sort_result = false;
  CubeOptions from_core;
  from_core.algorithm = CubeAlgorithm::kFromCore;
  from_core.sort_result = false;
  Result<CubeResult> a =
      Cube(t, dims, {Agg("sum", "quantity", "q")}, union_gb);
  Result<CubeResult> b =
      Cube(t, dims, {Agg("sum", "quantity", "q")}, from_core);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.input_scans, 64u);
  EXPECT_EQ(b->stats.input_scans, 1u);
  EXPECT_TRUE(a->table.EqualsIgnoringRowOrder(b->table));
}

}  // namespace
}  // namespace datacube
