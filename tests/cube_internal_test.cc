// White-box tests of the cube computation machinery: lattice planning,
// context building, the shared hash group-by, algorithm fallback paths, and
// the Section 4 index helper.

#include <gtest/gtest.h>

#include "datacube/cube/cube_internal.h"
#include "datacube/cube/cube_operator.h"
#include "datacube/cube/materialized_cube.h"
#include "datacube/workload/sales.h"

namespace datacube {
namespace cube_internal {
namespace {

CubeSpec SumSpec(std::vector<GroupExpr> dims) {
  CubeSpec spec;
  spec.cube = std::move(dims);
  spec.aggregates = {Agg("sum", "x", "s")};
  return spec;
}

Table SmallInput() {
  return GenerateCubeInput({.num_rows = 200,
                            .num_dims = 3,
                            .cardinality = 4,
                            .seed = 77})
      .value();
}

// ----------------------------------------------------------- PlanLattice

TEST(LatticePlanTest, ParentsPrecedeChildrenAndCoreIsRoot) {
  std::vector<GroupingSet> sets = CubeSets(3);
  LatticePlan plan = PlanLattice(sets, {10, 10, 10});
  ASSERT_EQ(plan.nodes.size(), 8u);
  EXPECT_EQ(plan.nodes[0].set, FullSet(3));
  EXPECT_EQ(plan.nodes[0].parent, -1);  // root computes from base
  for (size_t i = 1; i < plan.nodes.size(); ++i) {
    ASSERT_GE(plan.nodes[i].parent, 0) << "node " << i;
    const LatticePlan::Node& parent =
        plan.nodes[static_cast<size_t>(plan.nodes[i].parent)];
    // Parent is a strict superset and appears earlier.
    EXPECT_LT(plan.nodes[i].parent, static_cast<int>(i));
    EXPECT_EQ(parent.set & plan.nodes[i].set, plan.nodes[i].set);
    EXPECT_NE(parent.set, plan.nodes[i].set);
  }
}

TEST(LatticePlanTest, SmallestParentPicksLowCardinalitySuperset) {
  // Dimensions with C = {100, 2}: the grand total should fold from {d1}
  // (2 cells), not {d0} (100 cells).
  std::vector<GroupingSet> sets = CubeSets(2);
  LatticePlan plan = PlanLattice(sets, {100, 2});
  for (const LatticePlan::Node& node : plan.nodes) {
    if (node.set != 0) continue;
    const LatticePlan::Node& parent =
        plan.nodes[static_cast<size_t>(node.parent)];
    EXPECT_EQ(parent.set, 0b10ULL);  // the C=2 dimension
  }
}

TEST(LatticePlanTest, LargestParentPolicyPrefersTheCore) {
  std::vector<GroupingSet> sets = CubeSets(2);
  LatticePlan plan =
      PlanLattice(sets, {100, 2}, ParentPolicy::kLargestParent);
  for (const LatticePlan::Node& node : plan.nodes) {
    if (node.set != 0) continue;
    const LatticePlan::Node& parent =
        plan.nodes[static_cast<size_t>(node.parent)];
    EXPECT_EQ(parent.set, FullSet(2));
  }
}

TEST(LatticePlanTest, DisconnectedSetsComputeFromBase) {
  // GROUPING SETS {d0} and {d1}: no superset relation, both from base.
  LatticePlan plan = PlanLattice({0b01, 0b10}, {5, 5});
  for (const LatticePlan::Node& node : plan.nodes) {
    EXPECT_EQ(node.parent, -1);
  }
}

TEST(LatticePlanTest, EstimatesMultiplyCardinalities) {
  LatticePlan plan = PlanLattice({0b11, 0b01, 0b00}, {7, 3});
  EXPECT_DOUBLE_EQ(plan.nodes[0].est_cells, 21.0);
  EXPECT_DOUBLE_EQ(plan.nodes[1].est_cells, 7.0);
  EXPECT_DOUBLE_EQ(plan.nodes[2].est_cells, 1.0);
}

// ------------------------------------------------------- context basics

TEST(CubeContextTest, MaskedAndProjectedKeys) {
  Table t = SmallInput();
  CubeSpec spec = SumSpec({GroupCol("d0"), GroupCol("d1"), GroupCol("d2")});
  CubeContext ctx = BuildCubeContext(t, spec).value();
  std::vector<Value> key = ctx.MaskedKey(0, 0b101);
  EXPECT_FALSE(key[0].is_all());
  EXPECT_TRUE(key[1].is_all());
  EXPECT_FALSE(key[2].is_all());
  std::vector<Value> projected = ctx.ProjectKey(key, 0b001);
  EXPECT_FALSE(projected[0].is_all());
  EXPECT_TRUE(projected[1].is_all());
  EXPECT_TRUE(projected[2].is_all());
}

TEST(CubeContextTest, KeyCardinalitiesCountDistincts) {
  Table t(
      Schema({Field{"a", DataType::kString}, Field{"x", DataType::kInt64}}));
  for (const char* v : {"p", "q", "p", "r"}) {
    ASSERT_TRUE(t.AppendRow({Value::String(v), Value::Int64(1)}).ok());
  }
  CubeSpec spec;
  spec.cube = {GroupCol("a")};
  spec.aggregates = {Agg("sum", "x", "s")};
  CubeContext ctx = BuildCubeContext(t, spec).value();
  EXPECT_EQ(KeyCardinalities(ctx), std::vector<size_t>{3});
}

TEST(CubeContextTest, CellCountsTrackMembership) {
  Table t = SmallInput();
  CubeSpec spec = SumSpec({GroupCol("d0")});
  CubeContext ctx = BuildCubeContext(t, spec).value();
  CubeStats stats;
  CellMap cells = HashGroupBy(ctx, FullSet(1), &stats);
  int64_t total = 0;
  for (const auto& [key, cell] : cells) total += cell.count;
  EXPECT_EQ(total, static_cast<int64_t>(t.num_rows()));
  EXPECT_EQ(stats.input_scans, 1u);
  EXPECT_EQ(stats.iter_calls, t.num_rows());
}

TEST(CubeContextTest, MergeAccumulatesCounts) {
  Table t = SmallInput();
  CubeSpec spec = SumSpec({GroupCol("d0")});
  CubeContext ctx = BuildCubeContext(t, spec).value();
  Cell a = ctx.NewCell();
  Cell b = ctx.NewCell();
  ctx.IterRow(&a, 0, nullptr);
  ctx.IterRow(&b, 1, nullptr);
  ctx.IterRow(&b, 2, nullptr);
  ASSERT_TRUE(ctx.MergeCell(&a, b, nullptr).ok());
  EXPECT_EQ(a.count, 3);
  EXPECT_TRUE(a.has_repr);
}

// ------------------------------------------------------ fallback paths

TEST(FallbackTest, ArrayCubeFallsBackWhenBudgetTooSmall) {
  Table t = SmallInput();
  std::vector<GroupExpr> dims = {GroupCol("d0"), GroupCol("d1"),
                                 GroupCol("d2")};
  CubeOptions tiny;
  tiny.algorithm = CubeAlgorithm::kArrayCube;
  tiny.array_max_cells = 4;  // cannot hold (C+1)^3
  Result<CubeResult> small = Cube(t, dims, {Agg("sum", "x", "s")}, tiny);
  ASSERT_TRUE(small.ok());
  CubeOptions normal;
  normal.algorithm = CubeAlgorithm::kFromCore;
  Result<CubeResult> reference =
      Cube(t, dims, {Agg("sum", "x", "s")}, normal);
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(small->table.EqualsIgnoringRowOrder(reference->table));
}

TEST(FallbackTest, ArrayCubeFallsBackForNonFullCubeShapes) {
  Table t = SmallInput();
  CubeSpec spec;
  spec.rollup = {GroupCol("d0"), GroupCol("d1")};
  spec.aggregates = {Agg("sum", "x", "s")};
  CubeOptions options;
  options.algorithm = CubeAlgorithm::kArrayCube;
  Result<CubeResult> got = ExecuteCube(t, spec, options);
  ASSERT_TRUE(got.ok());
  CubeOptions reference;
  reference.algorithm = CubeAlgorithm::kUnionGroupBy;
  Result<CubeResult> expected = ExecuteCube(t, spec, reference);
  EXPECT_TRUE(got->table.EqualsIgnoringRowOrder(expected->table));
}

TEST(FallbackTest, SortRollupHandlesHolisticAggregatesInOneScan) {
  Table t = SmallInput();
  CubeSpec spec;
  spec.rollup = {GroupCol("d0"), GroupCol("d1")};
  spec.aggregates = {Agg("median", "x", "m")};
  CubeOptions sorted;
  sorted.algorithm = CubeAlgorithm::kSortRollup;
  Result<CubeResult> got = ExecuteCube(t, spec, sorted);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->stats.input_scans, 1u);  // one sorted scan, no merge needed
  CubeOptions reference;
  reference.algorithm = CubeAlgorithm::kUnionGroupBy;
  Result<CubeResult> expected = ExecuteCube(t, spec, reference);
  EXPECT_TRUE(got->table.EqualsIgnoringRowOrder(expected->table));
}

TEST(FallbackTest, ParallelFallsBackWhenNotMergeable) {
  Table t = SmallInput();
  std::vector<GroupExpr> dims = {GroupCol("d0"), GroupCol("d1")};
  CubeOptions options;
  options.num_threads = 4;
  Result<CubeResult> got = Cube(t, dims, {Agg("median", "x", "m")}, options);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->stats.threads_used, 1);  // serial fallback
  CubeOptions reference;
  reference.algorithm = CubeAlgorithm::kNaive2N;
  Result<CubeResult> expected =
      Cube(t, dims, {Agg("median", "x", "m")}, reference);
  EXPECT_TRUE(got->table.EqualsIgnoringRowOrder(expected->table));
}

TEST(FallbackTest, ExplicitSetsWithoutCoreStillCorrect) {
  Table t = SmallInput();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1"), GroupCol("d2")};
  spec.explicit_sets = std::vector<GroupingSet>{0b011, 0b001, 0b100};
  spec.aggregates = {Agg("sum", "x", "s"), CountStar("n")};
  CubeOptions from_core;
  from_core.algorithm = CubeAlgorithm::kFromCore;
  Result<CubeResult> got = ExecuteCube(t, spec, from_core);
  ASSERT_TRUE(got.ok());
  CubeOptions reference;
  reference.algorithm = CubeAlgorithm::kUnionGroupBy;
  Result<CubeResult> expected = ExecuteCube(t, spec, reference);
  EXPECT_TRUE(got->table.EqualsIgnoringRowOrder(expected->table));
}

// ----------------------------------------------------------- explain

TEST(ExplainTest, ShowsAlgorithmAndParents) {
  Table t = SmallInput();
  CubeSpec spec = SumSpec({GroupCol("d0"), GroupCol("d1"), GroupCol("d2")});
  Result<std::string> plan = ExplainCube(t, spec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("algorithm: from_core"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("8 grouping sets"), std::string::npos);
  EXPECT_NE(plan->find("<- base scan"), std::string::npos);  // the core
  EXPECT_NE(plan->find("<- merge from"), std::string::npos);
  EXPECT_NE(plan->find("est_cells="), std::string::npos);

  // Holistic spec: every set scans base.
  CubeSpec holistic = SumSpec({GroupCol("d0"), GroupCol("d1")});
  holistic.aggregates = {Agg("median", "x", "m")};
  Result<std::string> hplan = ExplainCube(t, holistic);
  ASSERT_TRUE(hplan.ok());
  EXPECT_EQ(hplan->find("<- merge from"), std::string::npos) << *hplan;

  // Rollup shape picks the sorted algorithm under kAuto.
  CubeSpec rollup;
  rollup.rollup = {GroupCol("d0"), GroupCol("d1")};
  rollup.aggregates = {Agg("sum", "x", "s")};
  Result<std::string> rplan = ExplainCube(t, rollup);
  ASSERT_TRUE(rplan.ok());
  EXPECT_NE(rplan->find("algorithm: sort_rollup"), std::string::npos);

  // Errors propagate.
  EXPECT_FALSE(ExplainCube(t, SumSpec({GroupCol("nope")})).ok());
}

// -------------------------------------------------------- Section 4 index

TEST(IndexTest, IndependentDataHasIndexOne) {
  // Build a perfectly independent 2D distribution: value(i, j) = r_i * c_j.
  Table t(Schema({Field{"a", DataType::kString}, Field{"b", DataType::kString},
                  Field{"x", DataType::kInt64}}));
  int64_t row_w[] = {1, 2, 3};
  int64_t col_w[] = {2, 5};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) {
      ASSERT_TRUE(t.AppendRow({Value::String("r" + std::to_string(i)),
                               Value::String("c" + std::to_string(j)),
                               Value::Int64(row_w[i] * col_w[j])})
                      .ok());
    }
  }
  CubeSpec spec;
  spec.cube = {GroupCol("a"), GroupCol("b")};
  spec.aggregates = {Agg("sum", "x", "s")};
  auto cube = MaterializedCube::Build(t, spec).value();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 2; ++j) {
      Result<double> index =
          cube->Index("s", {Value::String("r" + std::to_string(i)),
                            Value::String("c" + std::to_string(j))});
      ASSERT_TRUE(index.ok()) << index.status().ToString();
      EXPECT_NEAR(*index, 1.0, 1e-12);
    }
  }
}

TEST(IndexTest, OverRepresentedCellExceedsOne) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec;
  spec.cube = {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")};
  spec.aggregates = {Agg("sum", "Units", "s")};
  auto cube = MaterializedCube::Build(sales, spec).value();
  // (Chevy, 1995) cell: 200; Chevy row 290; 1995 column 360; grand 510.
  Result<double> index = cube->Index(
      "s", {Value::String("Chevy"), Value::Int64(1995), Value::All()});
  ASSERT_TRUE(index.ok());
  EXPECT_NEAR(*index, 200.0 * 510.0 / (290.0 * 360.0), 1e-12);
  EXPECT_LT(0.9, *index);

  // Errors: wrong number of fixed coordinates.
  EXPECT_FALSE(cube->Index("s", {Value::String("Chevy"), Value::All(),
                                 Value::All()})
                   .ok());
  EXPECT_FALSE(cube->Index("s", {Value::String("Chevy"), Value::Int64(1995),
                                 Value::String("black")})
                   .ok());
}

}  // namespace
}  // namespace cube_internal
}  // namespace datacube
