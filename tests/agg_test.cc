#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>

#include "datacube/agg/builtin_aggregates.h"
#include "datacube/agg/distinct.h"
#include "datacube/agg/registry.h"

namespace datacube {
namespace {

// Runs the full Init/Iter/Final protocol over single-argument values.
Value RunAgg(const AggregateFunction& fn, const std::vector<Value>& values) {
  AggStatePtr state = fn.Init();
  for (const Value& v : values) fn.Iter1(state.get(), v);
  return fn.Final(state.get());
}

std::vector<Value> Ints(std::initializer_list<int64_t> xs) {
  std::vector<Value> out;
  for (int64_t x : xs) out.push_back(Value::Int64(x));
  return out;
}

// ----------------------------------------------------------- basic results

TEST(AggTest, CountStarCountsEverythingIncludingSpecials) {
  auto fn = MakeCountStar();
  EXPECT_EQ(RunAgg(*fn, {Value::Int64(1), Value::Null(), Value::All()}),
            Value::Int64(3));
  EXPECT_EQ(RunAgg(*fn, {}), Value::Int64(0));
}

TEST(AggTest, CountSkipsNullAndAll) {
  // Section 3.3: "ALL, like NULL, does not participate in any aggregate
  // except COUNT()" — i.e. COUNT(*).
  auto fn = MakeCount();
  EXPECT_EQ(RunAgg(*fn, {Value::Int64(1), Value::Null(), Value::All(),
                      Value::Int64(2)}),
            Value::Int64(2));
}

TEST(AggTest, SumIntExactAndEmptyIsNull) {
  auto fn = MakeSum();
  EXPECT_EQ(RunAgg(*fn, Ints({1, 2, 3})), Value::Int64(6));
  EXPECT_TRUE(RunAgg(*fn, {}).is_null());
  EXPECT_TRUE(RunAgg(*fn, {Value::Null()}).is_null());
  EXPECT_EQ(RunAgg(*fn, {Value::Float64(1.5), Value::Int64(1)}),
            Value::Float64(2.5));
}

TEST(AggTest, MinMax) {
  EXPECT_EQ(RunAgg(*MakeMax(), Ints({3, 9, 1})), Value::Int64(9));
  EXPECT_EQ(RunAgg(*MakeMin(), Ints({3, 9, 1})), Value::Int64(1));
  EXPECT_EQ(RunAgg(*MakeMax(), {Value::String("a"), Value::String("c")}),
            Value::String("c"));
  EXPECT_TRUE(RunAgg(*MakeMax(), {Value::Null()}).is_null());
}

TEST(AggTest, AvgIgnoresNulls) {
  auto fn = MakeAvg();
  EXPECT_EQ(RunAgg(*fn, {Value::Int64(1), Value::Null(), Value::Int64(3)}),
            Value::Float64(2.0));
  EXPECT_TRUE(RunAgg(*fn, {}).is_null());
}

TEST(AggTest, VarianceAndStdDev) {
  // Population variance of {2, 4, 4, 4, 5, 5, 7, 9} is 4.
  std::vector<Value> xs = Ints({2, 4, 4, 4, 5, 5, 7, 9});
  EXPECT_NEAR(RunAgg(*MakeVarPop(), xs).AsDouble(), 4.0, 1e-9);
  EXPECT_NEAR(RunAgg(*MakeStdDevPop(), xs).AsDouble(), 2.0, 1e-9);
  EXPECT_NEAR(RunAgg(*MakeVarPop(), Ints({5})).AsDouble(), 0.0, 1e-12);
}

TEST(AggTest, MedianOddEvenEmpty) {
  EXPECT_EQ(RunAgg(*MakeMedian(), Ints({5, 1, 3})), Value::Float64(3.0));
  EXPECT_EQ(RunAgg(*MakeMedian(), Ints({4, 1, 3, 2})), Value::Float64(2.5));
  EXPECT_TRUE(RunAgg(*MakeMedian(), {}).is_null());
}

TEST(AggTest, ModePicksMostFrequentSmallestOnTie) {
  EXPECT_EQ(RunAgg(*MakeMode(), Ints({1, 2, 2, 3})), Value::Int64(2));
  EXPECT_EQ(RunAgg(*MakeMode(), Ints({3, 1, 3, 1})), Value::Int64(1));
  EXPECT_TRUE(RunAgg(*MakeMode(), {}).is_null());
}

TEST(AggTest, CountDistinct) {
  EXPECT_EQ(RunAgg(*MakeCountDistinctAgg(), Ints({1, 2, 2, 3, 3, 3})),
            Value::Int64(3));
  EXPECT_EQ(RunAgg(*MakeCountDistinctAgg(), {Value::Null(), Value::Null()}),
            Value::Int64(0));
}

TEST(AggTest, MaxNMinNKeepTopValues) {
  EXPECT_EQ(RunAgg(*MakeMaxN(3), Ints({5, 1, 9, 7, 3})),
            Value::String("9,7,5"));
  EXPECT_EQ(RunAgg(*MakeMinN(2), Ints({5, 1, 9, 7, 3})), Value::String("1,3"));
  EXPECT_EQ(RunAgg(*MakeMaxN(10), Ints({2, 1})), Value::String("2,1"));
  EXPECT_TRUE(RunAgg(*MakeMaxN(3), {}).is_null());
}

TEST(AggTest, CenterOfMassTwoArguments) {
  auto fn = MakeCenterOfMass();
  AggStatePtr state = fn->Init();
  Value args1[] = {Value::Float64(0.0), Value::Float64(1.0)};
  Value args2[] = {Value::Float64(10.0), Value::Float64(3.0)};
  fn->Iter(state.get(), args1, 2);
  fn->Iter(state.get(), args2, 2);
  EXPECT_NEAR(fn->Final(state.get()).AsDouble(), 7.5, 1e-9);
  EXPECT_EQ(fn->num_args(), 2);
}

// -------------------------------------------------------- classification

TEST(AggTest, PaperClassification) {
  // Section 5's taxonomy.
  EXPECT_EQ(MakeCount()->agg_class(), AggClass::kDistributive);
  EXPECT_EQ(MakeSum()->agg_class(), AggClass::kDistributive);
  EXPECT_EQ(MakeMin()->agg_class(), AggClass::kDistributive);
  EXPECT_EQ(MakeMax()->agg_class(), AggClass::kDistributive);
  EXPECT_EQ(MakeAvg()->agg_class(), AggClass::kAlgebraic);
  EXPECT_EQ(MakeStdDevPop()->agg_class(), AggClass::kAlgebraic);
  EXPECT_EQ(MakeMaxN(2)->agg_class(), AggClass::kAlgebraic);
  EXPECT_EQ(MakeCenterOfMass()->agg_class(), AggClass::kAlgebraic);
  EXPECT_EQ(MakeMedian()->agg_class(), AggClass::kHolistic);
  EXPECT_EQ(MakeMode()->agg_class(), AggClass::kHolistic);
}

TEST(AggTest, Section6DeleteHierarchyIsOrthogonal) {
  // "max is distributive for SELECT and INSERT, but holistic for DELETE."
  EXPECT_EQ(MakeMax()->delete_class(), DeleteClass::kDeleteHolistic);
  EXPECT_EQ(MakeMin()->delete_class(), DeleteClass::kDeleteHolistic);
  EXPECT_EQ(MakeSum()->delete_class(), DeleteClass::kDeletable);
  EXPECT_EQ(MakeCount()->delete_class(), DeleteClass::kDeletable);
  EXPECT_EQ(MakeAvg()->delete_class(), DeleteClass::kDeletable);
  // Mode is holistic for SELECT yet deletable (counted scratchpad).
  EXPECT_EQ(MakeMode()->delete_class(), DeleteClass::kDeletable);
}

TEST(AggTest, MergeSupportFollowsClassWithOverrides) {
  EXPECT_TRUE(MakeSum()->supports_merge());
  EXPECT_TRUE(MakeAvg()->supports_merge());
  EXPECT_FALSE(MakeMedian()->supports_merge());
  EXPECT_TRUE(MakeMode()->supports_merge());  // unbounded but mergeable
  AggStatePtr a = MakeMedian()->Init();
  AggStatePtr b = MakeMedian()->Init();
  EXPECT_EQ(MakeMedian()->Merge(a.get(), b.get()).code(),
            StatusCode::kNotImplemented);
}

// ----------------------------------------- merge partition-invariance

struct MergeCase {
  std::string name;
};

class MergePropertyTest : public ::testing::TestWithParam<std::string> {};

// For every mergeable aggregate: folding a value stream in one scratchpad
// equals splitting the stream arbitrarily, folding each part, and merging
// (the distributive/algebraic law F({X}) = H({G(partition)})).
TEST_P(MergePropertyTest, SplitMergeEqualsSingleFold) {
  Result<AggregateFunctionPtr> made =
      AggregateRegistry::Global().Make(GetParam());
  ASSERT_TRUE(made.ok());
  const AggregateFunction& fn = **made;
  bool wants_bool = GetParam().rfind("bool", 0) == 0;
  std::mt19937_64 rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = rng() % 50;
    std::vector<Value> values;
    for (size_t i = 0; i < n; ++i) {
      if (rng() % 10 == 0) {
        values.push_back(Value::Null());
      } else if (wants_bool) {
        values.push_back(Value::Bool(rng() % 2 == 0));
      } else {
        values.push_back(Value::Int64(static_cast<int64_t>(rng() % 100)));
      }
    }
    Value expected = RunAgg(fn, values);

    size_t cut = n == 0 ? 0 : rng() % (n + 1);
    AggStatePtr left = fn.Init();
    AggStatePtr right = fn.Init();
    for (size_t i = 0; i < n; ++i) {
      fn.Iter1(i < cut ? left.get() : right.get(), values[i]);
    }
    ASSERT_TRUE(fn.Merge(left.get(), right.get()).ok());
    Value merged = fn.Final(left.get());
    if (expected.is_null()) {
      EXPECT_TRUE(merged.is_null());
    } else if (expected.is_numeric()) {
      EXPECT_NEAR(merged.AsDouble(), expected.AsDouble(), 1e-9)
          << fn.name() << " trial " << trial;
    } else {
      EXPECT_EQ(merged, expected) << fn.name() << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMergeable, MergePropertyTest,
                         ::testing::Values("count_star", "count", "sum", "min",
                                           "max", "avg", "var_pop",
                                           "stddev_pop", "mode",
                                           "count_distinct", "bool_and",
                                           "bool_or"),
                         [](const auto& info) { return info.param; });

// --------------------------------------------- remove inverse property

class RemovePropertyTest : public ::testing::TestWithParam<std::string> {};

// For every deletable aggregate: Iter(v) then Remove(v) restores the result.
TEST_P(RemovePropertyTest, RemoveUndoesIter) {
  Result<AggregateFunctionPtr> made =
      AggregateRegistry::Global().Make(GetParam());
  ASSERT_TRUE(made.ok());
  const AggregateFunction& fn = **made;
  ASSERT_EQ(fn.delete_class(), DeleteClass::kDeletable);
  bool wants_bool = GetParam().rfind("bool", 0) == 0;
  std::mt19937_64 rng(99);
  std::vector<Value> base;
  for (int i = 0; i < 30; ++i) {
    base.push_back(wants_bool
                       ? Value::Bool(rng() % 2 == 0)
                       : Value::Int64(static_cast<int64_t>(rng() % 50)));
  }
  Value expected = RunAgg(fn, base);

  AggStatePtr state = fn.Init();
  for (const Value& v : base) fn.Iter1(state.get(), v);
  // Add then remove extra values (also exercising duplicates).
  std::vector<Value> extra =
      wants_bool ? std::vector<Value>{Value::Bool(true), Value::Bool(false),
                                      Value::Bool(false), Value::Null()}
                 : std::vector<Value>{Value::Int64(7), Value::Int64(7),
                                      Value::Int64(400), Value::Null()};
  for (const Value& v : extra) fn.Iter1(state.get(), v);
  for (const Value& v : extra) {
    ASSERT_TRUE(fn.Remove(state.get(), &v, 1).ok());
  }
  Value after = fn.Final(state.get());
  if (expected.is_numeric()) {
    EXPECT_NEAR(after.AsDouble(), expected.AsDouble(), 1e-9) << fn.name();
  } else {
    EXPECT_EQ(after, expected) << fn.name();
  }
}

INSTANTIATE_TEST_SUITE_P(AllDeletable, RemovePropertyTest,
                         ::testing::Values("count_star", "count", "sum", "avg",
                                           "var_pop", "stddev_pop", "median",
                                           "mode", "count_distinct",
                                           "bool_and", "bool_or"),
                         [](const auto& info) { return info.param; });

// ------------------------------------------------- maintenance hints

TEST(AggTest, MaxInsertShortCircuitHint) {
  auto fn = MakeMax();
  AggStatePtr state = fn->Init();
  Value nine = Value::Int64(9);
  Value five = Value::Int64(5);
  EXPECT_TRUE(fn->InsertMightChange(state.get(), &nine, 1));  // empty state
  fn->Iter1(state.get(), nine);
  // "If the new value loses one competition, it will lose in all lower
  // dimensions" — the hint that drives the Section 6 insert short-circuit.
  EXPECT_FALSE(fn->InsertMightChange(state.get(), &five, 1));
  Value ten = Value::Int64(10);
  EXPECT_TRUE(fn->InsertMightChange(state.get(), &ten, 1));
}

TEST(AggTest, MaxRemoveHintOnlyForIncumbent) {
  auto fn = MakeMax();
  AggStatePtr state = fn->Init();
  fn->Iter1(state.get(), Value::Int64(9));
  fn->Iter1(state.get(), Value::Int64(5));
  Value five = Value::Int64(5), nine = Value::Int64(9);
  EXPECT_FALSE(fn->RemoveMightChange(state.get(), &five, 1));
  EXPECT_TRUE(fn->RemoveMightChange(state.get(), &nine, 1));
}

TEST(AggTest, SumAlwaysMightChange) {
  auto fn = MakeSum();
  AggStatePtr state = fn->Init();
  Value v = Value::Int64(1);
  EXPECT_TRUE(fn->InsertMightChange(state.get(), &v, 1));
  EXPECT_TRUE(fn->RemoveMightChange(state.get(), &v, 1));
}

// ------------------------------------------------------------ clone

TEST(AggTest, CloneIsDeep) {
  auto fn = MakeAvg();
  AggStatePtr a = fn->Init();
  fn->Iter1(a.get(), Value::Int64(2));
  AggStatePtr b = fn->Clone(a.get());
  fn->Iter1(b.get(), Value::Int64(10));
  EXPECT_EQ(fn->Final(a.get()), Value::Float64(2.0));
  EXPECT_EQ(fn->Final(b.get()), Value::Float64(6.0));
}

// --------------------------------------------------------- DISTINCT

TEST(DistinctTest, SumDistinct) {
  auto fn = MakeDistinct(MakeSum());
  EXPECT_EQ(RunAgg(*fn, Ints({5, 5, 3, 3, 3})), Value::Int64(8));
  EXPECT_EQ(fn->agg_class(), AggClass::kHolistic);
  EXPECT_TRUE(fn->supports_merge());
}

TEST(DistinctTest, CountDistinctViaWrapper) {
  auto fn = MakeDistinct(MakeCount());
  EXPECT_EQ(RunAgg(*fn, Ints({1, 1, 2})), Value::Int64(2));
}

TEST(DistinctTest, MergeUnionsSeenSets) {
  auto fn = MakeDistinct(MakeSum());
  AggStatePtr a = fn->Init();
  AggStatePtr b = fn->Init();
  fn->Iter1(a.get(), Value::Int64(5));
  fn->Iter1(b.get(), Value::Int64(5));
  fn->Iter1(b.get(), Value::Int64(2));
  ASSERT_TRUE(fn->Merge(a.get(), b.get()).ok());
  EXPECT_EQ(fn->Final(a.get()), Value::Int64(7));
}

TEST(DistinctTest, RemoveRespectsMultiplicity) {
  auto fn = MakeDistinct(MakeSum());
  AggStatePtr s = fn->Init();
  Value five = Value::Int64(5);
  fn->Iter(s.get(), &five, 1);
  fn->Iter(s.get(), &five, 1);
  ASSERT_TRUE(fn->Remove(s.get(), &five, 1).ok());
  EXPECT_EQ(fn->Final(s.get()), Value::Int64(5));  // one 5 still present
  ASSERT_TRUE(fn->Remove(s.get(), &five, 1).ok());
  EXPECT_TRUE(fn->Final(s.get()).is_null());
  EXPECT_FALSE(fn->Remove(s.get(), &five, 1).ok());  // absent now
}

// --------------------------------------------------------- registry

TEST(RegistryTest, BuiltinsPresent) {
  AggregateRegistry& reg = AggregateRegistry::Global();
  for (const char* name : {"count_star", "count", "sum", "min", "max", "avg",
                           "median", "mode", "max_n"}) {
    EXPECT_TRUE(reg.Contains(name)) << name;
  }
  EXPECT_TRUE(reg.Contains("SUM"));  // case-insensitive
  EXPECT_FALSE(reg.Contains("no_such"));
}

TEST(RegistryTest, ParameterValidation) {
  AggregateRegistry& reg = AggregateRegistry::Global();
  EXPECT_TRUE(reg.Make("max_n", {Value::Int64(3)}).ok());
  EXPECT_FALSE(reg.Make("max_n", {}).ok());
  EXPECT_FALSE(reg.Make("max_n", {Value::String("x")}).ok());
  EXPECT_FALSE(reg.Make("max_n", {Value::Int64(0)}).ok());
  EXPECT_FALSE(reg.Make("sum", {Value::Int64(1)}).ok());
}

TEST(RegistryTest, UserDefinedAggregate) {
  // The paper's Figure 7 extension point: register a custom aggregate and
  // use it like a built-in. This one computes the product of its inputs.
  struct ProductState : AggState {
    double product = 1.0;
    int64_t n = 0;
  };
  class ProductFunction : public AggregateFunction {
   public:
    const std::string& name() const override {
      static const std::string kName = "product";
      return kName;
    }
    AggClass agg_class() const override { return AggClass::kDistributive; }
    Result<DataType> ResultType(const std::vector<DataType>&) const override {
      return DataType::kFloat64;
    }
    AggStatePtr Init() const override {
      return std::make_unique<ProductState>();
    }
    void Iter(AggState* s, const Value* args, size_t) const override {
      if (args[0].is_special()) return;
      auto* st = static_cast<ProductState*>(s);
      st->product *= args[0].AsDouble();
      ++st->n;
    }
    Value Final(const AggState* s) const override {
      const auto* st = static_cast<const ProductState*>(s);
      return st->n == 0 ? Value::Null() : Value::Float64(st->product);
    }
    Status Merge(AggState* dst, const AggState* src) const override {
      auto* d = static_cast<ProductState*>(dst);
      const auto* s = static_cast<const ProductState*>(src);
      d->product *= s->product;
      d->n += s->n;
      return Status::OK();
    }
    AggStatePtr Clone(const AggState* s) const override {
      return std::make_unique<ProductState>(
          *static_cast<const ProductState*>(s));
    }
  };

  AggregateRegistry& reg = AggregateRegistry::Global();
  Status st = reg.Register("test_product", [](const std::vector<Value>&)
                               -> Result<AggregateFunctionPtr> {
    return AggregateFunctionPtr(std::make_shared<ProductFunction>());
  });
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(reg.Register("test_product", nullptr).ok());  // duplicate
  Result<AggregateFunctionPtr> fn = reg.Make("test_product");
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ(RunAgg(**fn, Ints({2, 3, 4})), Value::Float64(24.0));
}

// ------------------------------------------- numeric edge-case hardening

constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();
constexpr int64_t kTwo53 = int64_t{1} << 53;

TEST(AggNumericEdgeTest, SumIntExactBeyondTwo53) {
  // 2^53 + 1 is not representable in double, so a double-mirrored integer
  // accumulator silently rounds it away. The 128-bit path must keep the sum
  // exact over the full int64 domain.
  auto fn = MakeSum();
  EXPECT_EQ(RunAgg(*fn, Ints({kTwo53, 1})), Value::Int64(kTwo53 + 1));
  EXPECT_EQ(RunAgg(*fn, Ints({kTwo53 + 1, -1})), Value::Int64(kTwo53));
  EXPECT_EQ(RunAgg(*fn, {Value::Int64(kInt64Max), Value::Int64(-1),
                         Value::Int64(1)}),
            Value::Int64(kInt64Max));
}

TEST(AggNumericEdgeTest, SumOverflowSurfacesErrorNotWrappedInteger) {
  auto fn = MakeSum();
  AggStatePtr s = fn->Init();
  fn->Iter1(s.get(), Value::Int64(kInt64Max));
  fn->Iter1(s.get(), Value::Int64(kInt64Max));
  Result<Value> checked = fn->FinalChecked(s.get());
  ASSERT_FALSE(checked.ok());
  EXPECT_EQ(checked.status().code(), StatusCode::kInvalidArgument);
  // The infallible Final() reports the exact 128-bit sum rounded once to
  // double — never a silently wrapped int64.
  Value v = fn->Final(s.get());
  ASSERT_EQ(v.kind(), Value::Kind::kFloat64);
  EXPECT_NEAR(v.float64_value(), 2.0 * static_cast<double>(kInt64Max), 1e4);
}

TEST(AggNumericEdgeTest, SumTransientOverflowRecoversUnderDeletes) {
  // Section 6 maintenance: a partial sum may pass through out-of-range
  // territory and come back. The exact accumulator recovers instead of
  // latching a sticky error.
  auto fn = MakeSum();
  AggStatePtr s = fn->Init();
  fn->Iter1(s.get(), Value::Int64(kInt64Max));
  fn->Iter1(s.get(), Value::Int64(kInt64Max));  // transiently > INT64_MAX
  Value extra = Value::Int64(kInt64Max);
  ASSERT_TRUE(fn->Remove(s.get(), &extra, 1).ok());
  Result<Value> checked = fn->FinalChecked(s.get());
  ASSERT_TRUE(checked.ok()) << checked.status().ToString();
  EXPECT_EQ(*checked, Value::Int64(kInt64Max));
}

TEST(AggNumericEdgeTest, VarianceNeverNegativeOrNaNOnFiniteInputs) {
  // Catastrophic-cancellation shape for the textbook sum_sq/n − mean² form:
  // huge mean, tiny spread. The result must stay non-negative and finite.
  std::vector<Value> xs;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(Value::Float64(1e9 + (i % 2 == 0 ? 0.5 : -0.5)));
  }
  double var = RunAgg(*MakeVarPop(), xs).AsDouble();
  EXPECT_GE(var, 0.0);
  EXPECT_NEAR(var, 0.25, 1e-6);
  double sd = RunAgg(*MakeStdDevPop(), xs).AsDouble();
  EXPECT_FALSE(std::isnan(sd));
  EXPECT_NEAR(sd, 0.5, 1e-6);
  // All-identical large values: variance ~0 and stddev real, not
  // sqrt(negative rounding residue).
  std::vector<Value> same(100, Value::Float64(3.141592653589793e8));
  EXPECT_NEAR(RunAgg(*MakeVarPop(), same).AsDouble(), 0.0, 1e-9);
  EXPECT_FALSE(std::isnan(RunAgg(*MakeStdDevPop(), same).AsDouble()));
}

TEST(AggNumericEdgeTest, NonFiniteInsertThenDeleteDoesNotPoison) {
  // NaN − NaN = NaN: a plain running sum can never undo an inserted NaN.
  // sum/avg/var count non-finite inputs instead of folding them in, so
  // Remove restores the previous finite result exactly.
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  for (const char* name : {"sum", "avg", "var_pop", "stddev_pop"}) {
    Result<AggregateFunctionPtr> made = AggregateRegistry::Global().Make(name);
    ASSERT_TRUE(made.ok()) << name;
    const AggregateFunction& fn = **made;
    AggStatePtr s = fn.Init();
    fn.Iter1(s.get(), Value::Float64(2.0));
    fn.Iter1(s.get(), Value::Float64(4.0));
    const double before = fn.Final(s.get()).AsDouble();

    Value nan = Value::Float64(kNan);
    fn.Iter1(s.get(), nan);
    EXPECT_TRUE(std::isnan(fn.Final(s.get()).AsDouble())) << name;
    ASSERT_TRUE(fn.Remove(s.get(), &nan, 1).ok()) << name;
    EXPECT_EQ(fn.Final(s.get()).AsDouble(), before) << name;

    // Opposite-sign infinities sum to NaN; removing both must also recover.
    Value pinf = Value::Float64(kInf);
    Value ninf = Value::Float64(-kInf);
    fn.Iter1(s.get(), pinf);
    fn.Iter1(s.get(), ninf);
    EXPECT_TRUE(std::isnan(fn.Final(s.get()).AsDouble())) << name;
    ASSERT_TRUE(fn.Remove(s.get(), &pinf, 1).ok()) << name;
    ASSERT_TRUE(fn.Remove(s.get(), &ninf, 1).ok()) << name;
    EXPECT_EQ(fn.Final(s.get()).AsDouble(), before) << name;
  }
}

// ---------------------------------------------- serialization round-trips

class SerializePropertyTest : public ::testing::TestWithParam<std::string> {};

// Serialize → Deserialize must reproduce a scratchpad that yields the same
// Final() and keeps accepting Iter and Merge — MaterializedCube checkpoints
// (SaveToFile/LoadFromFile) depend on exactly this.
TEST_P(SerializePropertyTest, RoundTripPreservesResultAndStaysLive) {
  Result<AggregateFunctionPtr> made =
      AggregateRegistry::Global().Make(GetParam());
  ASSERT_TRUE(made.ok());
  const AggregateFunction& fn = **made;
  bool wants_bool = GetParam().rfind("bool", 0) == 0;
  std::mt19937_64 rng(20250806);
  auto random_value = [&]() -> Value {
    if (rng() % 8 == 0) return Value::Null();
    if (wants_bool) return Value::Bool(rng() % 2 == 0);
    switch (rng() % 5) {
      case 0:
        return Value::Int64(static_cast<int64_t>(rng() % 100) - 50);
      case 1:
        return Value::Int64(kTwo53 + static_cast<int64_t>(rng() % 4));
      case 2:
        return Value::Float64(-0.0);
      case 3:
        return Value::Float64(std::ldexp(
            static_cast<double>(rng() % 1024) - 512.0,
            static_cast<int>(rng() % 10) - 5));
      default:
        return Value::Int64(static_cast<int64_t>(rng() % 1000));
    }
  };
  for (int trial = 0; trial < 10; ++trial) {
    AggStatePtr state = fn.Init();
    size_t n = rng() % 40;
    for (size_t i = 0; i < n; ++i) fn.Iter1(state.get(), random_value());

    std::string blob;
    ASSERT_TRUE(fn.SerializeState(state.get(), &blob).ok()) << fn.name();
    size_t pos = 0;
    Result<AggStatePtr> back = fn.DeserializeState(blob, &pos);
    ASSERT_TRUE(back.ok()) << fn.name() << ": " << back.status().ToString();
    EXPECT_EQ(pos, blob.size()) << fn.name() << " left trailing bytes";
    EXPECT_EQ(fn.Final(back->get()), fn.Final(state.get()))
        << fn.name() << " trial " << trial;

    // The revived scratchpad must keep evolving identically.
    Value next = wants_bool ? Value::Bool(true) : Value::Int64(17);
    fn.Iter1(state.get(), next);
    fn.Iter1(back->get(), next);
    EXPECT_EQ(fn.Final(back->get()), fn.Final(state.get()))
        << fn.name() << " diverged after revival";
  }
}

INSTANTIATE_TEST_SUITE_P(AllSerializable, SerializePropertyTest,
                         ::testing::Values("count_star", "count", "sum", "min",
                                           "max", "avg", "var_pop",
                                           "stddev_pop", "median", "mode",
                                           "count_distinct", "bool_and",
                                           "bool_or"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace datacube
