// Robustness properties: total-order laws for Value, hash consistency,
// larger cube shapes, and printer/CSV edge cases.

#include <gtest/gtest.h>

#include <random>

#include "datacube/cube/cube_operator.h"
#include "datacube/table/csv.h"
#include "datacube/table/print.h"
#include "datacube/workload/sales.h"

namespace datacube {
namespace {

Value RandomValue(std::mt19937_64& rng) {
  switch (rng() % 7) {
    case 0:
      return Value::Null();
    case 1:
      return Value::All();
    case 2:
      return Value::Bool(rng() % 2 == 0);
    case 3:
      return Value::Int64(static_cast<int64_t>(rng() % 2000) - 1000);
    case 4:
      return Value::Float64(static_cast<double>(rng() % 4000) / 4.0 - 500.0);
    case 5:
      return Value::String(std::string(rng() % 8, 'a' + rng() % 26));
    default:
      return Value::FromDate(Date{static_cast<int32_t>(rng() % 30000)});
  }
}

TEST(ValueOrderTest, TotalOrderLaws) {
  std::mt19937_64 rng(404);
  std::vector<Value> values;
  for (int i = 0; i < 60; ++i) values.push_back(RandomValue(rng));
  for (const Value& a : values) {
    EXPECT_EQ(a.Compare(a), 0);  // reflexive
    for (const Value& b : values) {
      // Antisymmetric.
      EXPECT_EQ(a.Compare(b) < 0, b.Compare(a) > 0);
      EXPECT_EQ(a.Compare(b) == 0, b.Compare(a) == 0);
      // Hash consistent with equality.
      if (a.Compare(b) == 0) {
        EXPECT_EQ(a.Hash(), b.Hash())
            << a.ToString() << " vs " << b.ToString();
      }
      for (const Value& c : values) {
        // Transitive (spot form: a<=b<=c implies a<=c).
        if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
          EXPECT_LE(a.Compare(c), 0);
        }
      }
    }
  }
}

TEST(ValueOrderTest, IntFloatEqualityIsConsistentEverywhere) {
  Value i = Value::Int64(41);
  Value f = Value::Float64(41.0);
  EXPECT_EQ(i, f);
  EXPECT_EQ(i.Hash(), f.Hash());
  // They group together in a cube key.
  Table t(
      Schema({Field{"k", DataType::kFloat64}, Field{"x", DataType::kInt64}}));
  ASSERT_TRUE(t.AppendRow({Value::Float64(41.0), Value::Int64(1)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::Int64(41), Value::Int64(2)}).ok());
  Result<CubeResult> r = GroupBy(t, {GroupCol("k")}, {CountStar("n")});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 1u);
}

TEST(BigShapeTest, SixDimCubeCellAccounting) {
  // 2^6 = 64 grouping sets over a binary 6-dim input: every cell count is
  // exactly Π over grouped dims of 2 (complete cross product by
  // construction).
  CubeInputOptions options;
  options.num_dims = 6;
  options.cardinality = 2;
  options.num_rows = 0;
  Table t = GenerateCubeInput(options).value();
  // Complete cross product: 64 rows.
  for (int mask = 0; mask < 64; ++mask) {
    std::vector<Value> row;
    for (int d = 0; d < 6; ++d) {
      row.push_back(Value::String((mask >> d) & 1 ? "v1" : "v0"));
    }
    row.push_back(Value::Int64(1));
    row.push_back(Value::Float64(1.0));
    ASSERT_TRUE(t.AppendRow(row).ok());
  }
  std::vector<GroupExpr> dims;
  for (int d = 0; d < 6; ++d) dims.push_back(GroupCol("d" + std::to_string(d)));
  Result<CubeResult> cube = Cube(t, dims, {Agg("sum", "x", "s")});
  ASSERT_TRUE(cube.ok());
  // Π(C_i + 1) = 3^6.
  EXPECT_EQ(cube->table.num_rows(), 729u);
  // Every SUM value is 2^(number of ALL coordinates).
  for (size_t r = 0; r < cube->table.num_rows(); ++r) {
    int alls = 0;
    for (size_t k = 0; k < 6; ++k) {
      if (cube->table.GetValue(r, k).is_all()) ++alls;
    }
    EXPECT_EQ(cube->table.GetValue(r, 6), Value::Int64(1LL << alls));
  }
}

TEST(BigShapeTest, ManyAggregatesAtOnce) {
  Table t = GenerateCubeInput({.num_rows = 2000,
                               .num_dims = 2,
                               .cardinality = 5,
                               .seed = 505})
                .value();
  std::vector<AggregateSpec> aggs = {
      Agg("sum", "x", "a1"),    Agg("min", "x", "a2"),
      Agg("max", "x", "a3"),    Agg("avg", "x", "a4"),
      Agg("count", "x", "a5"),  Agg("var_pop", "x", "a6"),
      Agg("stddev_pop", "x", "a7"), CountStar("a8"),
      Agg("sum", "y", "a9"),    Agg("avg", "y", "a10"),
      Agg("min", "y", "a11"),   Agg("max", "y", "a12")};
  Result<CubeResult> cube = Cube(t, {GroupCol("d0"), GroupCol("d1")}, aggs);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_EQ(cube->table.num_columns(), 2u + 12u);
  // Spot-check internal consistency: stddev^2 ≈ var on every row.
  for (size_t r = 0; r < cube->table.num_rows(); ++r) {
    double var = cube->table.GetValue(r, 2 + 5).AsDouble();
    double sd = cube->table.GetValue(r, 2 + 6).AsDouble();
    EXPECT_NEAR(sd * sd, var, 1e-6);
  }
}

TEST(PrinterTest, HeaderRuleToggleAndEmptyTable) {
  Table t(Schema({Field{"a", DataType::kInt64}}));
  PrintOptions no_rule;
  no_rule.header_rule = false;
  std::string s = FormatTable(t, no_rule);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_EQ(s.find("---"), std::string::npos);
  PrintOptions custom;
  custom.all_token = "<all>";
  custom.null_token = "-";
  ASSERT_TRUE(t.AppendRow({Value::Null()}).ok());
  Table t2(Schema({Field{"a", DataType::kString, true, true}}));
  ASSERT_TRUE(t2.AppendRow({Value::All()}).ok());
  EXPECT_NE(FormatTable(t2, custom).find("<all>"), std::string::npos);
  EXPECT_NE(FormatTable(t, custom).find("-"), std::string::npos);
}

TEST(CsvEdgeTest, DelimiterVariantsAndCrlf) {
  CsvReadOptions options;
  options.delimiter = ';';
  Result<Table> t = ReadCsvString("a;b\r\n1;x\r\n2;y\r\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->GetValue(0, 0), Value::Int64(1));
  EXPECT_EQ(t->GetValue(1, 1), Value::String("y"));
}

TEST(CsvEdgeTest, AllNullColumnDefaultsToString) {
  CsvReadOptions options;
  options.null_token = "NA";
  Result<Table> t = ReadCsvString("a,b\nNA,1\nNA,2\n", options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->schema().field(0).type, DataType::kString);
  EXPECT_TRUE(t->GetValue(0, 0).is_null());
  EXPECT_EQ(t->schema().field(1).type, DataType::kInt64);
}

TEST(WorkloadEdgeTest, CubeInputValidatesCardinalities) {
  CubeInputOptions bad;
  bad.num_dims = 3;
  bad.cardinalities = {4, 4};  // wrong length
  EXPECT_FALSE(GenerateCubeInput(bad).ok());
}

}  // namespace
}  // namespace datacube
