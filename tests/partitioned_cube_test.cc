#include "datacube/cube/partitioned_cube.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datacube/cube/cube_operator.h"
#include "datacube/expr/expr.h"
#include "datacube/sql/engine.h"
#include "datacube/testing/differential.h"
#include "datacube/testing/random_table.h"

namespace datacube {
namespace {

using testing::AdversarialProfiles;
using testing::DiffOptions;
using testing::DiffReport;
using testing::DiffResultTables;
using testing::MakeRandomSpec;
using testing::MakeRandomTable;
using testing::RandomTableProfile;

// ------------------------------------------------------------- fixtures

/// Appends a deterministic INT64 "ts" partition column to `input`: values
/// span [0, 1000) so the oracle's window widths below yield 1, ~3, and ~8
/// partitions; every 17th row gets a NULL ts to keep the NULL window in
/// play. Pure function of the row index, so reruns reproduce exactly.
Table WithTsColumn(const Table& input) {
  Schema schema = input.schema();
  EXPECT_TRUE(schema.AddField({"ts", DataType::kInt64}).ok());
  Table out{schema};
  for (size_t r = 0; r < input.num_rows(); ++r) {
    std::vector<Value> row = input.GetRow(r);
    row.push_back(r % 17 == 0 ? Value::Null()
                              : Value::Int64(static_cast<int64_t>(
                                    (r * 131 + 7) % 1000)));
    EXPECT_TRUE(out.AppendRow(row).ok());
  }
  return out;
}

PartitionedCubeOptions PartOptions(int64_t width) {
  PartitionedCubeOptions options;
  options.partition_column = "ts";
  options.window_width = width;
  // Deterministic tests drive compaction explicitly.
  options.background_compaction = false;
  return options;
}

/// A fixed small schema/spec pair for the lifecycle-edge tests: ts + one
/// string dimension + one int measure, CUBE over the dimension.
Schema EdgeSchema() {
  return Schema{{{"ts", DataType::kInt64},
                 {"d", DataType::kString},
                 {"m", DataType::kInt64}}};
}

CubeSpec EdgeSpec() {
  CubeSpec spec;
  spec.cube.push_back(GroupExpr{Expr::Column("d"), "d"});
  AggregateSpec count;
  count.function = "count_star";
  count.output_name = "n";
  spec.aggregates.push_back(count);
  AggregateSpec sum;
  sum.function = "sum";
  sum.args.push_back(Expr::Column("m"));
  sum.output_name = "sum_m";
  spec.aggregates.push_back(sum);
  return spec;
}

Table EdgeRows(const std::vector<std::tuple<std::optional<int64_t>,
                                            const char*, int64_t>>& rows) {
  Table t{EdgeSchema()};
  for (const auto& [ts, d, m] : rows) {
    EXPECT_TRUE(t.AppendRow({ts.has_value() ? Value::Int64(*ts)
                                            : Value::Null(),
                             Value::String(d), Value::Int64(m)})
                    .ok());
  }
  return t;
}

/// Grand-total row count of an EdgeSpec result (the cell where d = ALL).
int64_t GrandTotalCount(const Table& result) {
  std::optional<size_t> d = result.schema().FieldIndexIgnoreCase("d");
  std::optional<size_t> n = result.schema().FieldIndexIgnoreCase("n");
  EXPECT_TRUE(d.has_value() && n.has_value());
  for (size_t r = 0; r < result.num_rows(); ++r) {
    if (result.GetValue(r, *d).is_all()) {
      return result.GetValue(r, *n).int64_value();
    }
  }
  return -1;
}

// ------------------------------------------------------------ the oracle

/// The acceptance gate: the partitioned store must answer cell-for-cell
/// identically to the monolithic cube over every adversarial profile, at
/// partition counts 1 / ~3 / ~8, and must keep agreeing after compaction
/// and after a checkpoint round trip.
///
/// The int64-extremes profile is special-cased: checked SUM overflow is
/// order-dependent (a partition's partial sum can avoid a transient
/// overflow the monolithic row-order hits, and vice versa), so equality is
/// only asserted when both sides produce a result.
TEST(PartitionedCubeOracle, MatchesMonolithicAcrossProfilesAndWidths) {
  const int64_t kWidths[] = {100000, 334, 125};  // 1, ~3, ~8 partitions
  for (const RandomTableProfile& profile : AdversarialProfiles()) {
    for (bool holistic : {false, true}) {
      // Holistic aggregates force the partition-spanning recompute path;
      // exercising them on three representative profiles bounds runtime.
      if (holistic && profile.label != "plain_small" &&
          profile.label != "null_heavy" && profile.label != "dup_heavy") {
        continue;
      }
      const uint64_t seed = 7;
      Table input = WithTsColumn(MakeRandomTable(seed, profile));
      CubeSpec spec = MakeRandomSpec(seed, profile, holistic);

      Result<CubeResult> baseline = ExecuteCube(input, spec);
      for (int64_t width : kWidths) {
        SCOPED_TRACE(profile.label + (holistic ? "+holistic" : "") +
                     " width=" + std::to_string(width));
        Result<std::unique_ptr<PartitionedCube>> built =
            PartitionedCube::Build(input, spec, PartOptions(width));
        if (!baseline.ok() || !built.ok()) {
          ASSERT_EQ(profile.label, "int64_extremes_overflow");
          continue;
        }
        PartitionedCube& cube = **built;

        Result<Table> merged = cube.ToTable();
        if (!merged.ok()) {
          ASSERT_EQ(profile.label, "int64_extremes_overflow");
          continue;
        }
        DiffReport diff =
            DiffResultTables(baseline->table, *merged, spec);
        EXPECT_TRUE(diff.ok()) << diff.ToString();

        cube.CompactNow();
        merged = cube.ToTable();
        ASSERT_TRUE(merged.ok()) << merged.status().ToString();
        diff = DiffResultTables(baseline->table, *merged, spec);
        EXPECT_TRUE(diff.ok()) << "after compaction: " << diff.ToString();

        std::string dir = ::testing::TempDir() + "/part_oracle_ckpt";
        std::filesystem::remove_all(dir);
        ASSERT_TRUE(cube.SaveToFile(dir).ok());
        Result<std::unique_ptr<PartitionedCube>> reloaded =
            PartitionedCube::LoadFromDir(input.schema(), spec,
                                         PartOptions(width), dir);
        ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
        EXPECT_EQ((*reloaded)->num_partitions(), cube.num_partitions());
        merged = (*reloaded)->ToTable();
        ASSERT_TRUE(merged.ok()) << merged.status().ToString();
        diff = DiffResultTables(baseline->table, *merged, spec);
        EXPECT_TRUE(diff.ok()) << "after reload: " << diff.ToString();
        std::filesystem::remove_all(dir);
      }
    }
  }
}

/// Rows arriving out of ts order — including into windows that compaction
/// already sealed — must land in fresh deltas and fold back in, leaving
/// the store equal to the monolithic cube over the same multiset of rows.
TEST(PartitionedCubeOracle, ShuffledIngestWithLateArrivals) {
  RandomTableProfile profile;
  profile.label = "shuffled";
  profile.rows = 300;
  profile.dims = 2;
  profile.cardinality = 4;
  profile.null_rate = 0.15;
  const uint64_t seed = 11;
  Table input = WithTsColumn(MakeRandomTable(seed, profile));
  CubeSpec spec = MakeRandomSpec(seed, profile, /*include_holistic=*/false);

  std::vector<size_t> order(input.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::mt19937_64 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);

  Result<std::unique_ptr<PartitionedCube>> created =
      PartitionedCube::Create(input.schema(), spec, PartOptions(125));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  PartitionedCube& cube = **created;

  // Three shuffled batches with a sealing compaction between each: the
  // later batches are full of arrivals for already-compacted windows.
  const size_t batch = order.size() / 3 + 1;
  for (size_t start = 0; start < order.size(); start += batch) {
    Table rows{input.schema()};
    for (size_t i = start; i < std::min(start + batch, order.size()); ++i) {
      ASSERT_TRUE(rows.AppendRow(input.GetRow(order[i])).ok());
    }
    ASSERT_TRUE(cube.IngestRows(rows).ok());
    cube.CompactNow();
  }

  Result<CubeResult> baseline = ExecuteCube(input, spec);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  Result<Table> merged = cube.ToTable();
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  DiffReport diff = DiffResultTables(baseline->table, *merged, spec);
  EXPECT_TRUE(diff.ok()) << diff.ToString();
}

// ------------------------------------------------------- partition edges

TEST(PartitionedCubeEdges, BoundaryRowsOpenTheNextWindow) {
  Result<std::unique_ptr<PartitionedCube>> created =
      PartitionedCube::Create(EdgeSchema(), EdgeSpec(), PartOptions(10));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  PartitionedCube& cube = **created;
  // Window w covers [10w, 10w+10): ts=10 belongs to window 1, ts=9 to
  // window 0, and negatives floor (ts=-1 → window -1, ts=-10 → window -1,
  // ts=-11 → window -2).
  ASSERT_TRUE(cube.IngestRows(EdgeRows({{9, "a", 1},
                                        {10, "a", 1},
                                        {11, "b", 1},
                                        {-1, "b", 1},
                                        {-10, "c", 1},
                                        {-11, "c", 1}}))
                  .ok());
  std::set<int64_t> windows;
  for (const PartitionedCube::PartitionInfo& p : cube.Partitions()) {
    ASSERT_FALSE(p.null_window);
    windows.insert(p.window_id);
  }
  EXPECT_EQ(windows, (std::set<int64_t>{-2, -1, 0, 1}));

  // Bounds are inclusive on the key, and a scan may only skip whole
  // windows: [10, 10] must scan exactly window 1.
  PartitionPruneStats stats;
  Result<Table> rows = cube.PrunedRows(10, 10, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(stats.total, 4u);
  EXPECT_EQ(stats.scanned, 1u);
  EXPECT_EQ(stats.pruned, 3u);
  EXPECT_EQ(rows->num_rows(), 2u);  // ts=10 and ts=11 share window 1
}

TEST(PartitionedCubeEdges, LateArrivalIntoSealedWindow) {
  Result<std::unique_ptr<PartitionedCube>> created =
      PartitionedCube::Create(EdgeSchema(), EdgeSpec(), PartOptions(10));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  PartitionedCube& cube = **created;
  ASSERT_TRUE(cube.IngestRows(EdgeRows({{5, "a", 1}, {95, "b", 2}})).ok());
  EXPECT_EQ(cube.CompactNow(), 0u);  // both windows single-delta: sealed
                                     // deltas flip to compacted in place

  // ts=7 lands in the already-compacted window 0: a fresh delta, never a
  // mutation of the shared sealed cube.
  ASSERT_TRUE(cube.IngestRows(EdgeRows({{7, "a", 3}})).ok());
  Result<Table> merged = cube.ToTable();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(GrandTotalCount(*merged), 3);

  // The next compaction folds the late delta in: window 0 is multi-delta,
  // so exactly one window rebuilds.
  EXPECT_EQ(cube.CompactNow(), 1u);
  for (const PartitionedCube::PartitionInfo& p : cube.Partitions()) {
    EXPECT_STREQ(p.state, "compacted");
    EXPECT_EQ(p.deltas, 1u);
  }
  merged = cube.ToTable();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(GrandTotalCount(*merged), 3);
}

TEST(PartitionedCubeEdges, NullPartitionKeys) {
  Result<std::unique_ptr<PartitionedCube>> created =
      PartitionedCube::Create(EdgeSchema(), EdgeSpec(), PartOptions(10));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  PartitionedCube& cube = **created;
  ASSERT_TRUE(cube.IngestRows(EdgeRows({{5, "a", 1},
                                        {std::nullopt, "a", 2},
                                        {25, "b", 3},
                                        {std::nullopt, "b", 4}}))
                  .ok());

  // Unbounded reads include the NULL window.
  Result<Table> merged = cube.ToTable();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(GrandTotalCount(*merged), 4);

  // Any key bound excludes it: NULL fails every comparison.
  PartitionPruneStats stats;
  Result<Table> rows = cube.PrunedRows(0, std::nullopt, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->num_rows(), 2u);
  EXPECT_EQ(stats.total, 3u);  // windows 0, 2, and the NULL window
  EXPECT_EQ(stats.scanned, 2u);
  EXPECT_EQ(stats.pruned, 1u);

  // Retention never drops the NULL window.
  cube.SetRetention(1);
  cube.ApplyRetention();
  merged = cube.ToTable();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(GrandTotalCount(*merged), 3);  // window 0 dropped; NULLs stay
}

TEST(PartitionedCubeEdges, RetentionDropsOldWindowsNotPinnedReads) {
  Result<std::unique_ptr<PartitionedCube>> created =
      PartitionedCube::Create(EdgeSchema(), EdgeSpec(), PartOptions(10));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  PartitionedCube& cube = **created;
  for (int64_t w = 0; w < 5; ++w) {
    ASSERT_TRUE(
        cube.IngestRows(EdgeRows({{w * 10 + 1, "a", w}})).ok());
  }
  cube.CompactNow();
  EXPECT_EQ(cube.num_partitions(), 5u);

  // A read that started before retention keeps its rows: PrunedRows hands
  // back a self-contained table, and internally the scan pinned each
  // sealed delta by shared_ptr before any list swap could drop it.
  Result<Table> pinned = cube.PrunedRows(std::nullopt, std::nullopt);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->num_rows(), 5u);

  cube.SetRetention(2);
  EXPECT_EQ(cube.ApplyRetention(), 3u);
  EXPECT_EQ(cube.num_partitions(), 2u);
  EXPECT_EQ(cube.num_base_rows(), 2u);
  EXPECT_EQ(pinned->num_rows(), 5u);  // the earlier read is unaffected

  Result<Table> merged = cube.ToTable();
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(GrandTotalCount(*merged), 2);
}

// --------------------------------------------------------- SQL pruning

/// WHERE on the partition key must provably skip partitions (scanned <
/// total), EXPLAIN must surface the counts, and the pruned answer must
/// equal the same query over a monolithic registration of the same rows.
TEST(PartitionedCubeSql, WhereOnPartitionKeyPrunes) {
  Table input = EdgeRows({{5, "a", 1},
                          {15, "a", 2},
                          {25, "b", 3},
                          {35, "b", 4},
                          {45, "c", 5},
                          {std::nullopt, "c", 6}});
  Result<std::unique_ptr<PartitionedCube>> built =
      PartitionedCube::Build(input, EdgeSpec(), PartOptions(10));
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  sql::Catalog catalog;
  catalog.PutPartitioned("events", std::shared_ptr<PartitionedCube>(
                                       std::move(*built)));
  ASSERT_TRUE(catalog.Register("mono", input).ok());

  const std::string kQueries[] = {
      "SELECT d, SUM(m) FROM events WHERE ts >= 20 AND ts < 40 "
      "GROUP BY CUBE d",
      "SELECT COUNT(*) FROM events WHERE ts = 15",
      "SELECT d, SUM(m) FROM events WHERE ts > 40 GROUP BY d",
  };
  for (const std::string& q : kQueries) {
    SCOPED_TRACE(q);
    Result<Table> part = sql::ExecuteSql(q, catalog);
    ASSERT_TRUE(part.ok()) << part.status().ToString();
    std::string mono_q = q;
    mono_q.replace(mono_q.find("events"), 6, "mono");
    Result<Table> mono = sql::ExecuteSql(mono_q, catalog);
    ASSERT_TRUE(mono.ok()) << mono.status().ToString();
    DiffReport diff = DiffResultTables(*mono, *part, EdgeSpec());
    EXPECT_TRUE(diff.ok()) << diff.ToString();

    Result<Table> plan = sql::ExecuteSql("EXPLAIN " + q, catalog);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    std::string text;
    for (size_t r = 0; r < plan->num_rows(); ++r) {
      text += plan->GetValue(r, 0).ToString() + "\n";
    }
    size_t at = text.find("partitions: scanned=");
    ASSERT_NE(at, std::string::npos) << text;
    size_t scanned = 0, pruned = 0, total = 0;
    ASSERT_EQ(std::sscanf(text.c_str() + at,
                          "partitions: scanned=%zu  pruned=%zu  total=%zu",
                          &scanned, &pruned, &total),
              3)
        << text;
    EXPECT_LT(scanned, total) << text;  // the bound provably skipped work
    EXPECT_EQ(scanned + pruned, total) << text;
  }

  // No usable bound → every partition scans; the answer still matches.
  Result<Table> plan =
      sql::ExecuteSql("EXPLAIN SELECT COUNT(*) FROM events", catalog);
  ASSERT_TRUE(plan.ok());
  std::string text;
  for (size_t r = 0; r < plan->num_rows(); ++r) {
    text += plan->GetValue(r, 0).ToString() + "\n";
  }
  EXPECT_NE(text.find("pruned=0"), std::string::npos) << text;
}

// ---------------------------------------------------------- concurrency

/// Ingest, merged reads, pruned scans, and compaction racing on one store
/// (the TSan tier runs this binary under -fsanitize=thread). Row counts a
/// reader observes must never decrease, and the final state must equal
/// the monolithic cube over everything ingested.
TEST(PartitionedCubeConcurrency, IngestQueryCompact) {
  PartitionedCubeOptions options = PartOptions(50);
  options.background_compaction = true;  // the racing background path
  Result<std::unique_ptr<PartitionedCube>> created =
      PartitionedCube::Create(EdgeSchema(), EdgeSpec(), options);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  PartitionedCube& cube = **created;

  const int kBatches = 120;
  const int kRowsPerBatch = 5;
  Table all{EdgeSchema()};
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread ingester([&] {
    const char* dims[] = {"a", "b", "c"};
    for (int b = 0; b < kBatches; ++b) {
      Table rows{EdgeSchema()};
      for (int r = 0; r < kRowsPerBatch; ++r) {
        // Mostly advancing ts with a late sprinkle into old windows.
        int64_t ts = (r == 4) ? (b % 7) * 3 : b * 25 + r;
        std::vector<Value> row{Value::Int64(ts),
                               Value::String(dims[(b + r) % 3]),
                               Value::Int64(r)};
        if (!rows.AppendRow(row).ok() || !all.AppendRow(row).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
      if (!cube.IngestRows(rows).ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      size_t last = 0;
      while (!stop.load()) {
        size_t n = cube.num_base_rows();
        if (n < last) {
          failures.fetch_add(1);
          return;
        }
        last = n;
        Result<Table> merged = cube.ToTable();
        if (!merged.ok()) {
          failures.fetch_add(1);
          return;
        }
        Result<Table> pruned = cube.PrunedRows(100, 2000);
        if (!pruned.ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  std::thread compactor([&] {
    while (!stop.load()) cube.CompactNow();
  });

  ingester.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();
  compactor.join();
  EXPECT_EQ(failures.load(), 0);

  cube.CompactNow();
  Result<CubeResult> baseline = ExecuteCube(all, EdgeSpec());
  ASSERT_TRUE(baseline.ok());
  Result<Table> merged = cube.ToTable();
  ASSERT_TRUE(merged.ok());
  DiffReport diff = DiffResultTables(baseline->table, *merged, EdgeSpec());
  EXPECT_TRUE(diff.ok()) << diff.ToString();
  EXPECT_EQ(cube.num_base_rows(),
            static_cast<size_t>(kBatches * kRowsPerBatch));
}

/// The partition-parallel merged read fans sealed-delta folds across the
/// shared pool, but its shard topology is a fixed constant — never derived
/// from pool occupancy — so a merged read over a fixed delta set must be
/// byte-identical (row order and float bits included) no matter how many
/// reader threads race it or how the pool schedules the shard tasks. A
/// serial reference read is taken first, then waves of 1/2/4/8 concurrent
/// readers must all reproduce it exactly.
TEST(PartitionedCubeConcurrency, MergedReadsDeterministicAcrossThreadCounts) {
  RandomTableProfile profile;
  profile.label = "merge_determinism";
  profile.rows = 600;
  profile.dims = 2;
  profile.cardinality = 5;
  profile.null_rate = 0.1;
  const uint64_t seed = 13;
  Table input = WithTsColumn(MakeRandomTable(seed, profile));
  CubeSpec spec = MakeRandomSpec(seed, profile, /*include_holistic=*/false);

  // Width 50 over ts in [0,1000) gives ~20 sealed windows, so the read
  // fans across every merge shard.
  Result<std::unique_ptr<PartitionedCube>> built =
      PartitionedCube::Build(input, spec, PartOptions(50));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  PartitionedCube& cube = **built;
  cube.CompactNow();  // seal the open deltas so the reads fold frozen ones

  Result<Table> reference = cube.ToTable();
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  Result<CubeResult> baseline = ExecuteCube(input, spec);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  DiffReport diff = DiffResultTables(baseline->table, *reference, spec);
  EXPECT_TRUE(diff.ok()) << diff.ToString();

  for (int readers : {1, 2, 4, 8}) {
    std::vector<Result<Table>> results(readers, Status::Internal("unset"));
    std::vector<std::thread> threads;
    threads.reserve(readers);
    for (int t = 0; t < readers; ++t) {
      threads.emplace_back([&cube, &results, t] {
        results[t] = cube.ToTable();
      });
    }
    for (std::thread& t : threads) t.join();
    for (int t = 0; t < readers; ++t) {
      ASSERT_TRUE(results[t].ok())
          << readers << " readers: " << results[t].status().ToString();
      EXPECT_TRUE(results[t].value().EqualsExact(*reference))
          << readers << " concurrent readers, reader " << t
          << ": merged read diverged from the serial reference";
    }
  }
}

/// Retention racing ingest, reads, and compaction: counts may go down
/// here (windows age out), so the invariant is no errors, no torn reads,
/// and a final state equal to recomputing over exactly the surviving
/// windows' rows.
TEST(PartitionedCubeConcurrency, RetentionUnderLoad) {
  Result<std::unique_ptr<PartitionedCube>> created =
      PartitionedCube::Create(EdgeSchema(), EdgeSpec(), PartOptions(10));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  PartitionedCube& cube = **created;

  const int kBatches = 100;
  Table all{EdgeSchema()};
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::thread ingester([&] {
    for (int b = 0; b < kBatches; ++b) {
      Table rows{EdgeSchema()};
      std::vector<Value> row{Value::Int64(b * 5), Value::String("a"),
                             Value::Int64(b)};
      if (!rows.AppendRow(row).ok() || !all.AppendRow(row).ok() ||
          !cube.IngestRows(rows).ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });
  std::thread reaper([&] {
    while (!stop.load()) {
      cube.SetRetention(4);
      cube.ApplyRetention();
      cube.CompactNow();
    }
  });
  std::thread reader([&] {
    while (!stop.load()) {
      if (!cube.ToTable().ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });

  ingester.join();
  stop.store(true);
  reaper.join();
  reader.join();
  ASSERT_EQ(failures.load(), 0);

  cube.CompactNow();  // ends with a final ApplyRetention
  // Surviving rows: windows >= newest - retention + 1.
  const int64_t newest = (kBatches - 1) * 5 / 10;
  const int64_t min_keep = newest - 4 + 1;
  Table survivors{EdgeSchema()};
  for (size_t r = 0; r < all.num_rows(); ++r) {
    if (all.GetValue(r, 0).int64_value() / 10 >= min_keep) {
      ASSERT_TRUE(survivors.AppendRow(all.GetRow(r)).ok());
    }
  }
  Result<CubeResult> baseline = ExecuteCube(survivors, EdgeSpec());
  ASSERT_TRUE(baseline.ok());
  Result<Table> merged = cube.ToTable();
  ASSERT_TRUE(merged.ok());
  DiffReport diff = DiffResultTables(baseline->table, *merged, EdgeSpec());
  EXPECT_TRUE(diff.ok()) << diff.ToString();
}

}  // namespace
}  // namespace datacube
