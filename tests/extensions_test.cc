// Tests for the extension surfaces: greedy view selection and the
// PartialCube (Section 6's Harinarayan-Rajaraman-Ullman reference), the
// relational pivot operator (footnote 5), cube slicing, and GROUPING_ID.

#include <gtest/gtest.h>

#include <random>

#include "datacube/cube/materialized_cube.h"
#include "datacube/cube/partial_cube.h"
#include "datacube/cube/view_selection.h"
#include "datacube/olap/pivot_table.h"
#include "datacube/sql/engine.h"
#include "datacube/workload/sales.h"

namespace datacube {
namespace {

// ------------------------------------------------------ view selection

TEST(ViewSelectionTest, EstimateRespectsBaseBound) {
  std::vector<size_t> cards = {100, 50, 10};
  EXPECT_DOUBLE_EQ(EstimateViewSize(0b111, cards, 1000), 1000.0);  // capped
  // 5000 -> cap
  EXPECT_DOUBLE_EQ(EstimateViewSize(0b011, cards, 1000), 1000.0);
  EXPECT_DOUBLE_EQ(EstimateViewSize(0b110, cards, 1000), 500.0);
  EXPECT_DOUBLE_EQ(EstimateViewSize(0b100, cards, 1000), 10.0);
  EXPECT_DOUBLE_EQ(EstimateViewSize(0, cards, 1000), 1.0);
}

TEST(ViewSelectionTest, CoreAlwaysSelectedFirst) {
  Result<ViewSelection> sel = SelectViewsGreedy(3, {10, 10, 10}, 100000, 4);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->views.front(), FullSet(3));
  EXPECT_EQ(sel->benefits.front(), 0.0);
  EXPECT_LE(sel->views.size(), 4u);
}

TEST(ViewSelectionTest, GreedyBenefitsAreMonotoneNonIncreasing) {
  // A classic property of the HRU greedy under the linear cost model.
  Result<ViewSelection> sel =
      SelectViewsGreedy(4, {50, 20, 8, 2}, 1000000, 8);
  ASSERT_TRUE(sel.ok());
  for (size_t i = 2; i < sel->benefits.size(); ++i) {
    EXPECT_GE(sel->benefits[i - 1] + 1e-9, sel->benefits[i])
        << "benefit increased at pick " << i;
  }
}

TEST(ViewSelectionTest, MoreViewsNeverCostMore) {
  double prev = 0;
  for (size_t k : {1, 2, 4, 8, 16}) {
    Result<ViewSelection> sel = SelectViewsGreedy(4, {40, 30, 6, 3}, 50000, k);
    ASSERT_TRUE(sel.ok());
    if (prev > 0) {
      EXPECT_LE(sel->total_query_cost, prev + 1e-6);
    }
    prev = sel->total_query_cost;
  }
}

TEST(ViewSelectionTest, SelectingEverythingMakesEveryQueryItsOwnCost) {
  std::vector<size_t> cards = {4, 4};
  Result<ViewSelection> sel = SelectViewsGreedy(2, cards, 1000000, 100);
  ASSERT_TRUE(sel.ok());
  double expected = 0;
  for (GroupingSet w = 0; w < 4; ++w) {
    expected += EstimateViewSize(w, cards, 1000000);
  }
  EXPECT_DOUBLE_EQ(sel->total_query_cost, expected);
}

TEST(ViewSelectionTest, ArgumentValidation) {
  EXPECT_FALSE(SelectViewsGreedy(20, std::vector<size_t>(20, 2), 10, 3).ok());
  EXPECT_FALSE(SelectViewsGreedy(3, {1, 2}, 10, 3).ok());
  EXPECT_FALSE(SelectViewsGreedy(3, {1, 2, 3}, 10, 0).ok());
}

TEST(ViewSelectionTest, SpaceBudgetVariantRespectsBudget) {
  std::vector<size_t> cards = {50, 20, 8, 2};
  size_t base_rows = 100000;
  Result<ViewSelection> sel =
      SelectViewsGreedyBySpace(4, cards, base_rows, 5000.0);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->views.front(), FullSet(4));
  double used = 0;
  for (size_t i = 1; i < sel->views.size(); ++i) {
    used += EstimateViewSize(sel->views[i], cards, base_rows);
  }
  EXPECT_LE(used, 5000.0);
  // Zero budget: only the core.
  Result<ViewSelection> none =
      SelectViewsGreedyBySpace(4, cards, base_rows, 0.0);
  ASSERT_TRUE(none.ok());
  // Only zero-size views (none exist; the () view has size 1) fit.
  EXPECT_LE(none->views.size(), 1u);
  EXPECT_FALSE(SelectViewsGreedyBySpace(4, cards, base_rows, -1.0).ok());
}

TEST(ViewSelectionTest, BiggerBudgetNeverCostsMore) {
  std::vector<size_t> cards = {40, 12, 4};
  double prev = -1;
  for (double budget : {0.0, 100.0, 1000.0, 10000.0, 1e9}) {
    Result<ViewSelection> sel =
        SelectViewsGreedyBySpace(3, cards, 50000, budget);
    ASSERT_TRUE(sel.ok());
    if (prev >= 0) {
      EXPECT_LE(sel->total_query_cost, prev + 1e-6);
    }
    prev = sel->total_query_cost;
  }
}

TEST(ViewSelectionTest, CheapestAncestorPrefersSmallSupersets) {
  ViewSelection sel;
  sel.views = {0b111, 0b011, 0b100};
  std::vector<size_t> cards = {100, 10, 2};
  // target {d1} = 0b010: ancestors are 0b111 (size 2000 capped) and 0b011
  // (size 20); 0b100 is not a superset.
  EXPECT_EQ(CheapestAncestor(sel, 0b010, cards, 100000), 0b011ULL);
  // target {d2} = 0b100: exact match wins.
  EXPECT_EQ(CheapestAncestor(sel, 0b100, cards, 100000), 0b100ULL);
}

// --------------------------------------------------------- partial cube

TEST(PartialCubeTest, QueriesMatchFullCube) {
  Table t = GenerateCubeInput({.num_rows = 2000,
                               .num_dims = 3,
                               .cardinality = 6,
                               .skew = 0.2,
                               .seed = 5})
                .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1"), GroupCol("d2")};
  spec.aggregates = {Agg("sum", "x", "s"), CountStar("n")};

  // Materialize only 3 of the 8 views.
  auto partial = PartialCube::Build(t, spec, {0b111, 0b011, 0b001});
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();

  // Every one of the 8 grouping sets must answer identically to a direct
  // computation over the base table.
  for (GroupingSet target = 0; target < 8; ++target) {
    CubeSpec direct = spec;
    direct.explicit_sets = std::vector<GroupingSet>{target};
    CubeOptions options;
    options.sort_result = false;
    Result<CubeResult> expected = ExecuteCube(t, direct, options);
    ASSERT_TRUE(expected.ok());
    Result<Table> got = (*partial)->Query(target);
    ASSERT_TRUE(got.ok()) << "target " << target;
    EXPECT_TRUE(got->EqualsIgnoringRowOrder(expected->table))
        << "target " << target;
  }
}

TEST(PartialCubeTest, AnswersFromCheapestMaterializedAncestor) {
  Table t = GenerateCubeInput({.num_rows = 2000,
                               .num_dims = 3,
                               .cardinality = 6,
                               .seed = 6})
                .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1"), GroupCol("d2")};
  spec.aggregates = {Agg("sum", "x", "s")};
  auto partial = PartialCube::Build(t, spec, {0b111, 0b011}).value();

  // Materialized view: answered directly.
  ASSERT_TRUE(partial->Query(0b011).ok());
  EXPECT_TRUE(partial->last_query_stats().was_materialized);

  // {d0} = 0b001 ⊆ 0b011: answered from the smaller ancestor, not the core.
  ASSERT_TRUE(partial->Query(0b001).ok());
  EXPECT_FALSE(partial->last_query_stats().was_materialized);
  EXPECT_EQ(partial->last_query_stats().answered_from, 0b011ULL);

  // {d2} = 0b100 is only under the core.
  ASSERT_TRUE(partial->Query(0b100).ok());
  EXPECT_EQ(partial->last_query_stats().answered_from, 0b111ULL);

  EXPECT_FALSE(partial->Query(0b1000).ok());  // unknown column
}

TEST(PartialCubeTest, RejectsHolisticAggregates) {
  Table t = GenerateCubeInput({.num_rows = 100, .num_dims = 2, .seed = 7})
                .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1")};
  spec.aggregates = {Agg("median", "x", "m")};
  EXPECT_FALSE(PartialCube::Build(t, spec, {0b11}).ok());
}

TEST(PartialCubeTest, MaterializedCellsScaleWithViews) {
  Table t = GenerateCubeInput({.num_rows = 3000,
                               .num_dims = 3,
                               .cardinality = 8,
                               .seed = 8})
                .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1"), GroupCol("d2")};
  spec.aggregates = {Agg("sum", "x", "s")};
  auto few = PartialCube::Build(t, spec, {0b111}).value();
  std::vector<GroupingSet> all_sets = CubeSets(3);
  auto many = PartialCube::Build(t, spec, all_sets).value();
  EXPECT_LT(few->materialized_cells(), many->materialized_cells());
}

// ------------------------------------------------------ relational pivot

TEST(PivotTableTest, Table4AsRelation) {
  Table sales = Table3SalesTable().value();
  Result<Table> pivot = PivotToTable(sales, {"Model", "Year"}, "Color",
                                     "Units");
  ASSERT_TRUE(pivot.ok()) << pivot.status().ToString();
  // Columns: Model, Year, black, white, Total.
  ASSERT_EQ(pivot->num_columns(), 5u);
  EXPECT_EQ(pivot->schema().field(2).name, "black");
  EXPECT_EQ(pivot->schema().field(3).name, "white");
  EXPECT_EQ(pivot->schema().field(4).name, "Total");
  ASSERT_EQ(pivot->num_rows(), 4u);
  // Chevy 1994: black 50, white 40, total 90.
  for (size_t r = 0; r < pivot->num_rows(); ++r) {
    if (pivot->GetValue(r, 0) == Value::String("Chevy") &&
        pivot->GetValue(r, 1) == Value::Int64(1994)) {
      EXPECT_EQ(pivot->GetValue(r, 2), Value::Int64(50));
      EXPECT_EQ(pivot->GetValue(r, 3), Value::Int64(40));
      EXPECT_EQ(pivot->GetValue(r, 4), Value::Int64(90));
    }
  }
}

TEST(PivotTableTest, MissingCellsAreNullAndTotalRowWorks) {
  TableBuilder b({Field{"k", DataType::kString},
                  Field{"p", DataType::kString},
                  Field{"x", DataType::kInt64}});
  b.Row({Value::String("a"), Value::String("p1"), Value::Int64(1)});
  b.Row({Value::String("b"), Value::String("p2"), Value::Int64(2)});
  Table t = std::move(b).Build().value();
  PivotTableOptions options;
  options.add_total_row = true;
  Result<Table> pivot = PivotToTable(t, {"k"}, "p", "x", options);
  ASSERT_TRUE(pivot.ok());
  // Rows: a, b, grand total. Columns: k, p1, p2, Total.
  ASSERT_EQ(pivot->num_rows(), 3u);
  EXPECT_TRUE(pivot->GetValue(0, 2).is_null());  // (a, p2) empty
  EXPECT_TRUE(pivot->GetValue(1, 1).is_null());  // (b, p1) empty
  // Grand total row: key NULL, p1 = 1, p2 = 2, total = 3.
  EXPECT_TRUE(pivot->GetValue(2, 0).is_null());
  EXPECT_EQ(pivot->GetValue(2, 1), Value::Int64(1));
  EXPECT_EQ(pivot->GetValue(2, 2), Value::Int64(2));
  EXPECT_EQ(pivot->GetValue(2, 3), Value::Int64(3));
}

TEST(PivotTableTest, AlternateAggregates) {
  Table sales = Table3SalesTable().value();
  PivotTableOptions options;
  options.aggregate = "max";
  options.add_row_total = true;
  Result<Table> pivot = PivotToTable(sales, {"Model"}, "Year", "Units",
                                     options);
  ASSERT_TRUE(pivot.ok());
  for (size_t r = 0; r < pivot->num_rows(); ++r) {
    if (pivot->GetValue(r, 0) == Value::String("Chevy")) {
      EXPECT_EQ(pivot->GetValue(r, 1), Value::Int64(50));   // max 1994
      EXPECT_EQ(pivot->GetValue(r, 2), Value::Int64(115));  // max 1995
      EXPECT_EQ(pivot->GetValue(r, 3), Value::Int64(115));  // row max
    }
  }
}

TEST(PivotTableTest, Errors) {
  Table sales = Table3SalesTable().value();
  EXPECT_FALSE(PivotToTable(sales, {"Nope"}, "Color", "Units").ok());
  EXPECT_FALSE(PivotToTable(sales, {"Model"}, "Nope", "Units").ok());
  EXPECT_FALSE(PivotToTable(sales, {"Model"}, "Color", "Nope").ok());
  PivotTableOptions bad;
  bad.aggregate = "no_such";
  EXPECT_FALSE(PivotToTable(sales, {"Model"}, "Color", "Units", bad).ok());
  // Pivot value colliding with a key column name.
  TableBuilder b({Field{"k", DataType::kString},
                  Field{"p", DataType::kString},
                  Field{"x", DataType::kInt64}});
  b.Row({Value::String("a"), Value::String("k"), Value::Int64(1)});
  Table t = std::move(b).Build().value();
  EXPECT_FALSE(PivotToTable(t, {"k"}, "p", "x").ok());
}

// -------------------------------------------------------------- slicing

TEST(SliceTest, FixedWildcardAndAllPlane) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec;
  spec.cube = {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")};
  spec.aggregates = {Agg("sum", "Units", "s")};
  auto cube = MaterializedCube::Build(sales, spec).value();

  // Fix Model=Chevy, enumerate Year, collapse Color: the Table 6.a row
  // totals.
  Result<Table> slice = cube->Slice({SliceCoord::Fixed(Value::String("Chevy")),
                                     SliceCoord::Wildcard(),
                                     SliceCoord::AllPlane()});
  ASSERT_TRUE(slice.ok()) << slice.status().ToString();
  ASSERT_EQ(slice->num_rows(), 2u);  // 1994 and 1995
  for (size_t r = 0; r < slice->num_rows(); ++r) {
    EXPECT_EQ(slice->GetValue(r, 0), Value::String("Chevy"));
    EXPECT_TRUE(slice->GetValue(r, 2).is_all());
    if (slice->GetValue(r, 1) == Value::Int64(1994)) {
      EXPECT_EQ(slice->GetValue(r, 3), Value::Int64(90));
    } else {
      EXPECT_EQ(slice->GetValue(r, 3), Value::Int64(200));
    }
  }

  // Full wildcard at the finest level returns the core.
  Result<Table> core = cube->Slice({SliceCoord::Wildcard(),
                                    SliceCoord::Wildcard(),
                                    SliceCoord::Wildcard()});
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->num_rows(), sales.num_rows());

  // All planes: the single grand-total cell.
  Result<Table> grand = cube->Slice({SliceCoord::AllPlane(),
                                     SliceCoord::AllPlane(),
                                     SliceCoord::AllPlane()});
  ASSERT_TRUE(grand.ok());
  ASSERT_EQ(grand->num_rows(), 1u);
  EXPECT_EQ(grand->GetValue(0, 3), Value::Int64(510));

  // Arity mismatch.
  EXPECT_FALSE(cube->Slice({SliceCoord::Wildcard()}).ok());
}

TEST(SliceTest, DrillDownAndRollUpNavigation) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec;
  spec.cube = {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")};
  spec.aggregates = {Agg("sum", "Units", "s")};
  auto cube = MaterializedCube::Build(sales, spec).value();

  // Start at (Chevy, ALL, ALL) and drill down into Year.
  std::vector<Value> at = {Value::String("Chevy"), Value::All(), Value::All()};
  Result<Table> down = cube->DrillDown(at, /*dimension=*/1);
  ASSERT_TRUE(down.ok()) << down.status().ToString();
  ASSERT_EQ(down->num_rows(), 2u);  // 1994 and 1995
  int64_t total = 0;
  for (size_t r = 0; r < down->num_rows(); ++r) {
    EXPECT_EQ(down->GetValue(r, 0), Value::String("Chevy"));
    EXPECT_FALSE(down->GetValue(r, 1).is_all());
    total += down->GetValue(r, 3).int64_value();
  }
  EXPECT_EQ(total, 290);  // drill-down partitions the parent cell

  // Roll (Chevy, 1994, ALL) back up over Year -> (Chevy, ALL, ALL).
  Result<Table> up = cube->RollUp(
      {Value::String("Chevy"), Value::Int64(1994), Value::All()}, 1);
  ASSERT_TRUE(up.ok());
  ASSERT_EQ(up->num_rows(), 1u);
  EXPECT_EQ(up->GetValue(0, 3), Value::Int64(290));

  // Errors: drilling a concrete dimension / rolling an ALL dimension.
  EXPECT_FALSE(cube->DrillDown(at, 0).ok());
  EXPECT_FALSE(cube->RollUp(at, 1).ok());
  EXPECT_FALSE(cube->DrillDown(at, 9).ok());
}

TEST(SliceTest, RollupCubeLacksSomePlanes) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec;
  spec.rollup = {GroupCol("Model"), GroupCol("Year")};
  spec.aggregates = {Agg("sum", "Units", "s")};
  auto cube = MaterializedCube::Build(sales, spec).value();
  // (ALL, concrete) is not a rollup grouping set.
  EXPECT_FALSE(
      cube->Slice({SliceCoord::AllPlane(), SliceCoord::Wildcard()}).ok());
  EXPECT_TRUE(
      cube->Slice({SliceCoord::Wildcard(), SliceCoord::AllPlane()}).ok());
}

// ---------------------------------------------------------- GROUPING_ID

TEST(GroupingIdTest, OperatorEmitsBitmask) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec;
  spec.cube = {GroupCol("Model"), GroupCol("Year")};
  spec.aggregates = {Agg("sum", "Units", "s")};
  spec.add_grouping_id = true;
  Result<CubeResult> cube = ExecuteCube(sales, spec);
  ASSERT_TRUE(cube.ok());
  const Table& t = cube->table;
  size_t id_col = t.num_columns() - 1;
  EXPECT_EQ(t.schema().field(id_col).name, "grouping_id");
  for (size_t r = 0; r < t.num_rows(); ++r) {
    int64_t expected = (t.GetValue(r, 0).is_all() ? 1 : 0) |
                       (t.GetValue(r, 1).is_all() ? 2 : 0);
    EXPECT_EQ(t.GetValue(r, id_col), Value::Int64(expected));
  }
}

TEST(GroupingIdTest, ThroughSql) {
  sql::Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", Table3SalesTable().value()).ok());
  Result<Table> t = sql::ExecuteSql(
      "SELECT Model, Year, SUM(Units) AS s, GROUPING_ID() AS gid "
      "FROM Sales GROUP BY CUBE Model, Year ORDER BY 4, 1, 2",
      catalog);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  // gid 0 rows first (4 of them), then gid 1 (2 years), gid 2 (2 models),
  // gid 3 (grand total).
  EXPECT_EQ(t->num_rows(), 9u);
  EXPECT_EQ(t->GetValue(t->num_rows() - 1, 3), Value::Int64(3));
  EXPECT_EQ(t->GetValue(t->num_rows() - 1, 2), Value::Int64(510));
  EXPECT_FALSE(
      sql::ExecuteSql("SELECT GROUPING_ID(Model) FROM Sales GROUP BY Model",
                      catalog)
          .ok());
}

}  // namespace
}  // namespace datacube
