// Kernel-level differential tier for the batched aggregation kernels: every
// typed IterBatch kernel (COUNT(*)/COUNT/SUM/MIN/MAX/AVG over INT64 and
// FLOAT64, plus the Value fallback for strings) is diffed against the
// scalar per-row Iter path on adversarial buffers — NaN/±inf floats,
// int64 overflow edges, all-NULL columns, all-duplicate keys, and row
// counts straddling the morsel boundary. A property test proves the
// group-id vectors BatchUpsert produces are a permutation-stable partition
// of the rows, and a counter test pins the per-row probe/iter semantics
// EXPLAIN ANALYZE depends on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "datacube/cube/columnar.h"
#include "datacube/cube/cube_internal.h"
#include "datacube/cube/cube_operator.h"
#include "datacube/testing/differential.h"
#include "datacube/testing/random_table.h"

namespace datacube {
namespace {

using cube_internal::kBatchRows;
using cube_internal::KeyCodec;
using datacube::testing::DiffReport;
using datacube::testing::DiffResultTables;

// The aggregate list every differential case sweeps: one output per kernel
// (COUNT(*) and COUNT/SUM/MIN/MAX/AVG over the measure column `x`).
std::vector<AggregateSpec> AllKernelAggs() {
  return {CountStar("c"),       Agg("count", "x", "cx"),
          Agg("sum", "x", "s"), Agg("min", "x", "lo"),
          Agg("max", "x", "hi"), Agg("avg", "x", "a")};
}

CubeOptions BatchOptions(bool on) {
  CubeOptions options;
  options.use_batch_kernels = on;
  return options;
}

// Runs `spec` over `input` with batch kernels on and off and requires the
// two paths to agree exactly: same status code on failure, cell-identical
// relations on success. Both paths fold rows in input order, so even float
// results must match bit for bit (modulo the Value total order, which puts
// -0.0 == +0.0 and NaN == NaN).
void ExpectBatchMatchesScalar(const Table& input, const CubeSpec& spec,
                              const std::string& what) {
  auto batch = ExecuteCube(input, spec, BatchOptions(true));
  auto scalar = ExecuteCube(input, spec, BatchOptions(false));
  ASSERT_EQ(batch.ok(), scalar.ok())
      << what << ": batch status " << batch.status().ToString()
      << " vs scalar status " << scalar.status().ToString();
  if (!batch.ok()) {
    EXPECT_EQ(batch.status().code(), scalar.status().code()) << what;
    return;
  }
  DiffReport report = DiffResultTables(scalar.value().table,
                                       batch.value().table, spec);
  EXPECT_TRUE(report.ok()) << what << "\n" << report.ToString();
  EXPECT_TRUE(batch.value().table.EqualsExact(scalar.value().table)) << what;
}

// ------------------------------------------------- adversarial buffers

// INT64 measure with both extremes, zero crossings, and NULL holes, keyed
// by a small int dimension so every group sees edge values.
Table Int64EdgeTable(size_t rows, size_t cardinality) {
  std::vector<Field> fields;
  fields.push_back(Field{"d", DataType::kInt64, /*nullable=*/true,
                         /*allow_all=*/true});
  fields.push_back(Field{"x", DataType::kInt64, /*nullable=*/true});
  Table t{Schema{std::move(fields)}};
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  const int64_t kMin = std::numeric_limits<int64_t>::min();
  // Edge palette: extremes appear but alternate in sign so per-group sums
  // stay inside int64 (the overflow case gets its own test).
  const int64_t palette[] = {kMax, kMin, 0, -1, 1, kMax, kMin + 1, 42};
  for (size_t i = 0; i < rows; ++i) {
    Value d = (i % 7 == 3) ? Value::Null()
                           : Value::Int64(static_cast<int64_t>(i % cardinality));
    Value x = (i % 5 == 4) ? Value::Null()
                           : Value::Int64(palette[i % 8]);
    EXPECT_TRUE(t.AppendRow({std::move(d), std::move(x)}).ok());
  }
  return t;
}

// FLOAT64 measure cycling through NaN, ±inf, ±0.0, denormals, and plain
// values, with NULL holes.
Table Float64EdgeTable(size_t rows, size_t cardinality) {
  std::vector<Field> fields;
  fields.push_back(Field{"d", DataType::kInt64, /*nullable=*/true,
                         /*allow_all=*/true});
  fields.push_back(Field{"x", DataType::kFloat64, /*nullable=*/true});
  Table t{Schema{std::move(fields)}};
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double denorm = std::numeric_limits<double>::denorm_min();
  const double palette[] = {nan, inf, -inf, -0.0, 0.0, denorm, 1.5, -2.5, 1e6};
  for (size_t i = 0; i < rows; ++i) {
    Value d = (i % 11 == 7) ? Value::Null()
                            : Value::Int64(static_cast<int64_t>(i % cardinality));
    Value x = (i % 6 == 5) ? Value::Null()
                           : Value::Float64(palette[i % 9]);
    EXPECT_TRUE(t.AppendRow({std::move(d), std::move(x)}).ok());
  }
  return t;
}

// ------------------------------------------------- per-kernel differentials

TEST(KernelDiffTest, Int64KernelsOnExtremeBuffer) {
  Table input = Int64EdgeTable(500, 4);
  CubeSpec spec;
  spec.cube = {GroupCol("d")};
  spec.aggregates = AllKernelAggs();
  ExpectBatchMatchesScalar(input, spec, "int64 edge cube");
}

TEST(KernelDiffTest, Float64KernelsOnNaNInfBuffer) {
  Table input = Float64EdgeTable(500, 4);
  CubeSpec spec;
  spec.cube = {GroupCol("d")};
  spec.aggregates = AllKernelAggs();
  ExpectBatchMatchesScalar(input, spec, "float64 NaN/inf cube");
}

TEST(KernelDiffTest, SumOverflowSurfacesFromBothPaths) {
  std::vector<Field> fields;
  fields.push_back(Field{"d", DataType::kInt64, /*nullable=*/false,
                         /*allow_all=*/true});
  fields.push_back(Field{"x", DataType::kInt64});
  Table t{Schema{std::move(fields)}};
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t.AppendRow({Value::Int64(0), Value::Int64(kMax)}).ok());
  }
  CubeSpec spec;
  spec.cube = {GroupCol("d")};
  spec.aggregates = {Agg("sum", "x", "s")};
  auto batch = ExecuteCube(t, spec, BatchOptions(true));
  auto scalar = ExecuteCube(t, spec, BatchOptions(false));
  ASSERT_FALSE(batch.ok());
  ASSERT_FALSE(scalar.ok());
  EXPECT_EQ(batch.status().code(), scalar.status().code())
      << batch.status().ToString() << " vs " << scalar.status().ToString();
}

TEST(KernelDiffTest, AllNullMeasureColumn) {
  std::vector<Field> fields;
  fields.push_back(Field{"d", DataType::kInt64, /*nullable=*/false,
                         /*allow_all=*/true});
  fields.push_back(Field{"x", DataType::kFloat64, /*nullable=*/true});
  Table t{Schema{std::move(fields)}};
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value::Int64(static_cast<int64_t>(i % 3)), Value::Null()})
            .ok());
  }
  CubeSpec spec;
  spec.cube = {GroupCol("d")};
  spec.aggregates = AllKernelAggs();
  auto batch = ExecuteCube(t, spec, BatchOptions(true));
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ExpectBatchMatchesScalar(t, spec, "all-NULL measure");
}

TEST(KernelDiffTest, AllDuplicateKeysSingleGroup) {
  Table input = Int64EdgeTable(kBatchRows + 17, /*cardinality=*/1);
  CubeSpec spec;
  spec.group_by = {GroupCol("d")};
  spec.aggregates = AllKernelAggs();
  ExpectBatchMatchesScalar(input, spec, "all-duplicate keys");
}

TEST(KernelDiffTest, RowCountsStraddleTheMorselBoundary) {
  for (size_t rows : {size_t{0}, size_t{1}, kBatchRows - 1, kBatchRows,
                      kBatchRows + 1}) {
    Table input = Float64EdgeTable(rows, 5);
    CubeSpec spec;
    spec.cube = {GroupCol("d")};
    spec.aggregates = AllKernelAggs();
    ExpectBatchMatchesScalar(input, spec,
                             "rows=" + std::to_string(rows));
  }
}

// MIN/MAX over strings have no typed kernel; the batch still flows through
// the Value-fallback loop inside the kernel, which must match scalar.
TEST(KernelDiffTest, StringExtremesUseTheValueFallback) {
  std::vector<Field> fields;
  fields.push_back(Field{"d", DataType::kInt64, /*nullable=*/false,
                         /*allow_all=*/true});
  fields.push_back(Field{"x", DataType::kString, /*nullable=*/true});
  Table t{Schema{std::move(fields)}};
  const char* words[] = {"pear", "apple", "zebra", "", "mango"};
  for (size_t i = 0; i < 333; ++i) {
    Value x = (i % 4 == 3) ? Value::Null() : Value::String(words[i % 5]);
    ASSERT_TRUE(
        t.AppendRow({Value::Int64(static_cast<int64_t>(i % 3)), std::move(x)})
            .ok());
  }
  CubeSpec spec;
  spec.cube = {GroupCol("d")};
  spec.aggregates = {CountStar("c"), Agg("min", "x", "lo"),
                     Agg("max", "x", "hi")};
  ExpectBatchMatchesScalar(t, spec, "string extremes");
}

// Random sweep across the adversarial generator profiles, serial and
// parallel, so the batch path also diffs under morsel-parallel scans.
TEST(KernelDiffTest, RandomProfilesSerialAndParallel) {
  auto profiles = datacube::testing::AdversarialProfiles();
  for (size_t i = 0; i < profiles.size(); ++i) {
    Table input = datacube::testing::MakeRandomTable(1000 + i, profiles[i]);
    CubeSpec spec =
        datacube::testing::MakeRandomSpec(2000 + i, profiles[i],
                                          /*include_holistic=*/false);
    for (int threads : {1, 4}) {
      CubeOptions batch_on = BatchOptions(true);
      batch_on.num_threads = threads;
      CubeOptions batch_off = BatchOptions(false);
      batch_off.num_threads = threads;
      auto a = ExecuteCube(input, spec, batch_on);
      auto b = ExecuteCube(input, spec, batch_off);
      ASSERT_EQ(a.ok(), b.ok()) << profiles[i].label;
      if (!a.ok()) {
        EXPECT_EQ(a.status().code(), b.status().code()) << profiles[i].label;
        continue;
      }
      DiffReport report =
          DiffResultTables(b.value().table, a.value().table, spec);
      EXPECT_TRUE(report.ok())
          << profiles[i].label << " threads=" << threads << "\n"
          << report.ToString();
    }
  }
}

// ------------------------------------------------- counter semantics

// Batching must not change the per-row meaning of the kernel counters:
// BatchUpsert walks the same probe chains FindOrInsert would, and the
// dispatcher charges one Iter per (row, aggregate) whether or not a typed
// kernel handled the morsel. EXPLAIN ANALYZE and the obs assertions read
// these counters, so they must stay identical across the gate.
TEST(KernelCounterTest, BatchAndScalarCountersAgreePerRow) {
  // Modest measure values: the ALL cell sums every row, so extremes would
  // (correctly) error out of both paths instead of producing stats.
  std::vector<Field> fields;
  fields.push_back(Field{"d", DataType::kInt64, /*nullable=*/true,
                         /*allow_all=*/true});
  fields.push_back(Field{"x", DataType::kInt64, /*nullable=*/true});
  Table input{Schema{std::move(fields)}};
  for (size_t i = 0; i < 1000; ++i) {
    Value d = (i % 7 == 3) ? Value::Null()
                           : Value::Int64(static_cast<int64_t>(i % 6));
    Value x = (i % 5 == 4) ? Value::Null()
                           : Value::Int64(static_cast<int64_t>(i) - 500);
    ASSERT_TRUE(input.AppendRow({std::move(d), std::move(x)}).ok());
  }
  CubeSpec spec;
  spec.cube = {GroupCol("d")};
  spec.aggregates = AllKernelAggs();
  auto batch = ExecuteCube(input, spec, BatchOptions(true));
  auto scalar = ExecuteCube(input, spec, BatchOptions(false));
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  const CubeStats& b = batch.value().stats;
  const CubeStats& s = scalar.value().stats;
  EXPECT_GT(b.hash_probes, 0u);
  EXPECT_EQ(b.hash_probes, s.hash_probes);
  EXPECT_EQ(b.hash_max_probe, s.hash_max_probe);
  EXPECT_EQ(b.hash_cells, s.hash_cells);
  EXPECT_EQ(b.hash_rehashes, s.hash_rehashes);
  EXPECT_EQ(b.iter_calls, s.iter_calls);
  EXPECT_EQ(b.output_cells, s.output_cells);
}

// ------------------------------------------------- gating

TEST(KernelGateTest, EnvHatchForcesScalarInBuildColumnarContext) {
  Table input = Int64EdgeTable(20, 3);
  CubeSpec spec;
  spec.cube = {GroupCol("d")};
  spec.aggregates = {Agg("sum", "x", "s")};
  auto ctx = cube_internal::BuildCubeContext(input, spec);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();

  ::setenv("DATACUBE_SCALAR_KERNELS", "1", 1);
  auto forced = cube_internal::BuildColumnarContext(ctx.value());
  ASSERT_TRUE(forced.ok());
  EXPECT_FALSE(forced.value().use_batch);

  ::setenv("DATACUBE_SCALAR_KERNELS", "0", 1);
  auto zero = cube_internal::BuildColumnarContext(ctx.value());
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero.value().use_batch);

  ::unsetenv("DATACUBE_SCALAR_KERNELS");
  auto unset = cube_internal::BuildColumnarContext(ctx.value());
  ASSERT_TRUE(unset.ok());
  EXPECT_TRUE(unset.value().use_batch);
}

// ------------------------------------------------- group-id property test

// BatchUpsert's out_blocks vector is the morsel's group-id vector: rows
// mapping to the same masked key must share a block, distinct keys must get
// distinct blocks, and the partition of rows it induces must be stable
// under any permutation of the input — the property that makes the
// per-aggregate sweep independent of scan order.
TEST(KernelPropertyTest, GroupIdVectorsAreAPermutationStablePartition) {
  using cube_internal::BuildColumnarContext;
  using cube_internal::BuildCubeContext;
  using cube_internal::CellStore;

  Table input = Int64EdgeTable(777, 5);
  CubeSpec spec;
  spec.cube = {GroupCol("d")};
  spec.aggregates = {Agg("sum", "x", "s")};
  auto ctx = BuildCubeContext(input, spec);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  auto cc = BuildColumnarContext(ctx.value());
  ASSERT_TRUE(cc.ok()) << cc.status().ToString();
  const size_t words = cc.value().words;
  const size_t rows = input.num_rows();

  std::mt19937_64 rng(2026);
  for (const GroupingSet& set : ctx.value().sets) {
    std::vector<uint64_t> mask = cc.value().codec.MaskForSet(set);

    // Masked keys in input order, and a reference partition keyed by the
    // masked words themselves.
    std::vector<uint64_t> masked(rows * words);
    KeyCodec::MaskKeysBatch(cc.value().RowKey(0), rows, words, mask.data(),
                            masked.data());
    auto key_of = [&](size_t row) {
      return std::vector<uint64_t>(masked.begin() + row * words,
                                   masked.begin() + (row + 1) * words);
    };
    std::map<std::vector<uint64_t>, std::set<size_t>> reference;
    for (size_t r = 0; r < rows; ++r) reference[key_of(r)].insert(r);

    // Upsert in input order: same key <=> same block.
    CellStore store = cc.value().MakeStore();
    std::vector<char*> blocks(rows);
    store.BatchUpsert(masked.data(), rows, blocks.data());
    EXPECT_EQ(store.size(), reference.size());
    std::map<std::vector<uint64_t>, char*> block_of;
    for (size_t r = 0; r < rows; ++r) {
      auto [it, inserted] = block_of.emplace(key_of(r), blocks[r]);
      EXPECT_EQ(it->second, blocks[r]) << "row " << r;
    }
    EXPECT_EQ(block_of.size(), reference.size());

    // Upsert a random permutation into a fresh store: the induced
    // partition of row ids must be identical.
    std::vector<size_t> perm(rows);
    for (size_t r = 0; r < rows; ++r) perm[r] = r;
    std::shuffle(perm.begin(), perm.end(), rng);
    std::vector<uint64_t> shuffled(rows * words);
    for (size_t i = 0; i < rows; ++i) {
      std::copy(masked.begin() + perm[i] * words,
                masked.begin() + (perm[i] + 1) * words,
                shuffled.begin() + i * words);
    }
    CellStore store2 = cc.value().MakeStore();
    std::vector<char*> blocks2(rows);
    store2.BatchUpsert(shuffled.data(), rows, blocks2.data());
    EXPECT_EQ(store2.size(), reference.size());
    std::map<char*, std::set<size_t>> by_block;
    for (size_t i = 0; i < rows; ++i) by_block[blocks2[i]].insert(perm[i]);
    std::set<std::set<size_t>> partition;
    for (auto& [block, members] : by_block) partition.insert(members);
    std::set<std::set<size_t>> expected;
    for (auto& [key, members] : reference) expected.insert(members);
    EXPECT_EQ(partition, expected);

    // And the batched store must agree with scalar FindOrInsert lookups.
    CellStore scalar_store = cc.value().MakeStore();
    for (size_t r = 0; r < rows; ++r) {
      scalar_store.FindOrInsert(masked.data() + r * words);
    }
    EXPECT_EQ(scalar_store.size(), store.size());
    EXPECT_EQ(scalar_store.stats().probes, store.stats().probes);
    EXPECT_EQ(scalar_store.stats().max_probe, store.stats().max_probe);
    for (auto& [key, members] : reference) {
      EXPECT_NE(store.Find(key.data()), nullptr);
    }
  }
}

}  // namespace
}  // namespace datacube
