// Tests for cost-based lattice materialization: the benefit-per-byte
// greedy (SelectViewsByByteBudget), ancestor answering — super-aggregation
// from any materialized ancestor must equal a direct group-by for every
// distributive/algebraic aggregate, including the numeric edge cases
// (NaN/-0.0 floats, int64 near-overflow, double-double variance) — the
// budgeted ExecuteCube rewrite, holistic refusal, and the PartialCube
// checkpoint round-trip (including the stale-selection case).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "datacube/cube/cube_operator.h"
#include "datacube/cube/partial_cube.h"
#include "datacube/cube/view_selection.h"
#include "datacube/testing/differential.h"
#include "datacube/testing/random_table.h"
#include "datacube/workload/sales.h"

namespace datacube {
namespace {

using datacube::testing::AdversarialProfiles;
using datacube::testing::DiffReport;
using datacube::testing::DiffResultTables;
using datacube::testing::MakeRandomTable;
using datacube::testing::RandomTableProfile;

// ------------------------------------------------ byte-budget selection

LatticeByteCostModel SmallModel() {
  LatticeByteCostModel m;
  m.num_dims = 3;
  m.cardinalities = {10, 10, 10};
  m.base_rows = 100000;
  m.bytes_per_cell = 16.0;
  return m;
}

TEST(ByteBudgetSelectionTest, CoreAdmittedEvenWhenAloneOverBudget) {
  // Budget 0: nothing fits, but the core must still be materialized — the
  // selection degrades to "core only", never to "nothing".
  Result<ViewSelection> sel = SelectViewsByByteBudget(SmallModel(), 0.0);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  ASSERT_EQ(sel->views.size(), 1u);
  EXPECT_EQ(sel->views[0], FullSet(3));
  EXPECT_EQ(sel->benefits[0], 0.0);
  EXPECT_GT(sel->selected_bytes, 0.0);  // over budget, kept anyway
  ASSERT_EQ(sel->view_bytes.size(), 1u);
  EXPECT_DOUBLE_EQ(sel->view_bytes[0], sel->selected_bytes);
}

TEST(ByteBudgetSelectionTest, SelectedBytesStayWithinBudgetBeyondCore) {
  LatticeByteCostModel m = SmallModel();
  // Core = 1000 cells * 16 B = 16000 B; leave 8000 B for other views.
  Result<ViewSelection> sel = SelectViewsByByteBudget(m, 24000.0);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->views.front(), FullSet(3));
  double used = 0;
  ASSERT_EQ(sel->view_bytes.size(), sel->views.size());
  for (size_t i = 0; i < sel->views.size(); ++i) {
    EXPECT_DOUBLE_EQ(sel->view_bytes[i], m.BytesOf(sel->views[i]));
    used += sel->view_bytes[i];
  }
  EXPECT_DOUBLE_EQ(used, sel->selected_bytes);
  EXPECT_LE(sel->selected_bytes, 24000.0);
  EXPECT_GT(sel->views.size(), 1u);  // room for at least one extra view
}

TEST(ByteBudgetSelectionTest, UnlimitedBudgetKeepsTheWholeLattice) {
  LatticeByteCostModel m = SmallModel();
  Result<ViewSelection> sel = SelectViewsByByteBudget(m, 1e15);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->views.size(), 8u);
  // Everything materialized: every query costs exactly its own view size.
  double expected_cost = 0;
  for (GroupingSet w = 0; w < 8; ++w) expected_cost += m.CellsOf(w);
  EXPECT_NEAR(sel->total_query_cost, expected_cost, 1e-6);
}

TEST(ByteBudgetSelectionTest, BiggerBudgetNeverCostsMore) {
  LatticeByteCostModel m = SmallModel();
  double prev = -1;
  for (double budget : {0.0, 1000.0, 20000.0, 50000.0, 1e9}) {
    Result<ViewSelection> sel = SelectViewsByByteBudget(m, budget);
    ASSERT_TRUE(sel.ok());
    if (prev >= 0) {
      EXPECT_LE(sel->total_query_cost, prev + 1e-6);
    }
    prev = sel->total_query_cost;
  }
}

TEST(ByteBudgetSelectionTest, ObservedCellsOverrideTheEstimate) {
  LatticeByteCostModel m = SmallModel();
  m.observed_cells = {{0b011, 5.0}};
  EXPECT_DOUBLE_EQ(m.CellsOf(0b011), 5.0);
  EXPECT_DOUBLE_EQ(m.BytesOf(0b011), 80.0);
  EXPECT_DOUBLE_EQ(m.CellsOf(0b110),
                   EstimateViewSize(0b110, m.cardinalities, m.base_rows));

  // Drive the selection with the override: making every non-core view
  // "observed" larger than the remaining budget leaves only the core.
  LatticeByteCostModel blocked = SmallModel();
  for (GroupingSet w = 0; w < FullSet(3); ++w) {
    blocked.observed_cells.push_back({w, 1e9});
  }
  Result<ViewSelection> sel = SelectViewsByByteBudget(blocked, 24000.0);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->views.size(), 1u);
}

TEST(ByteBudgetSelectionTest, CandidateWorkloadRestrictsSelectionAndBenefit) {
  LatticeByteCostModel m = SmallModel();
  m.candidates = {FullSet(3), 0b001, 0b000};
  Result<ViewSelection> sel = SelectViewsByByteBudget(m, 1e9);
  ASSERT_TRUE(sel.ok());
  for (GroupingSet v : sel->views) {
    EXPECT_NE(std::find(m.candidates.begin(), m.candidates.end(), v),
              m.candidates.end())
        << "selected a non-candidate view " << v;
  }
  // Candidates without the core are rejected: the top view is mandatory.
  LatticeByteCostModel no_core = SmallModel();
  no_core.candidates = {0b001, 0b010};
  EXPECT_FALSE(SelectViewsByByteBudget(no_core, 1e9).ok());
}

TEST(ByteBudgetSelectionTest, ArgumentValidation) {
  LatticeByteCostModel m = SmallModel();
  m.num_dims = 20;
  m.cardinalities.assign(20, 2);
  EXPECT_FALSE(SelectViewsByByteBudget(m, 100.0).ok());  // lattice too wide
  m = SmallModel();
  m.cardinalities.pop_back();
  EXPECT_FALSE(SelectViewsByByteBudget(m, 100.0).ok());  // cards mismatch
  m = SmallModel();
  m.bytes_per_cell = 0.0;
  EXPECT_FALSE(SelectViewsByByteBudget(m, 100.0).ok());
  EXPECT_FALSE(SelectViewsByByteBudget(SmallModel(), -1.0).ok());
}

// --------------------------------------------- ancestor answering oracle

// The central rewrite property: for a randomly-selected set of materialized
// views, answering ANY grouping set by folding its cheapest materialized
// ancestor must equal a direct group-by over the base table, for every
// distributive and algebraic aggregate — across the adversarial profiles
// (NULL-heavy keys, NaN/-0.0 float keys, int keys beyond 2^53, ±INT64
// measures whose SUM overflows, duplicate-heavy keys). When the direct
// computation errors (SUM overflow), the fold must fail with the same code.

struct LatticeSweepCase {
  size_t profile_index;
  uint64_t seed;
};

std::vector<LatticeSweepCase> LatticeSweepCases() {
  std::vector<LatticeSweepCase> cases;
  const size_t num_profiles = AdversarialProfiles().size();
  for (size_t p = 0; p < num_profiles; ++p) {
    for (uint64_t seed = 1; seed <= 3; ++seed) cases.push_back({p, seed});
  }
  return cases;
}

CubeSpec MergeableSpecOver(const RandomTableProfile& profile) {
  CubeSpec spec;
  for (size_t d = 0; d < profile.dims; ++d) {
    spec.cube.push_back(GroupCol("d" + std::to_string(d)));
  }
  // Distributive (count/sum/min/max) and algebraic (avg/var_pop) coverage
  // over the adversarial measures: mi carries int64 extremes, mf carries
  // NaN/-0.0/denormals (and drives the double-double variance path).
  spec.aggregates = {CountStar("n"),
                     Agg("sum", "mi", "sum_mi"),
                     Agg("max", "mi", "max_mi"),
                     Agg("sum", "mf", "sum_mf"),
                     Agg("min", "mf", "min_mf"),
                     Agg("avg", "mf", "avg_mf"),
                     Agg("var_pop", "mf", "var_mf"),
                     Agg("count", "mb", "n_mb")};
  return spec;
}

class AncestorAnsweringTest
    : public ::testing::TestWithParam<LatticeSweepCase> {};

TEST_P(AncestorAnsweringTest, FoldEqualsDirectForEveryGroupingSet) {
  const LatticeSweepCase& c = GetParam();
  RandomTableProfile profile = AdversarialProfiles()[c.profile_index];
  Table t = MakeRandomTable(c.seed, profile);
  CubeSpec spec = MergeableSpecOver(profile);
  const GroupingSet full = FullSet(profile.dims);

  // A seed-deterministic random view subset (the core is mandatory).
  std::mt19937_64 rng(c.seed * 0x9e3779b97f4a7c15ULL + c.profile_index);
  std::vector<GroupingSet> views = {full};
  for (GroupingSet v = 0; v < full; ++v) {
    if (rng() % 3 == 0) views.push_back(v);
  }
  Result<std::unique_ptr<PartialCube>> built =
      PartialCube::Build(t, spec, views);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  PartialCube& partial = **built;

  for (GroupingSet target = 0; target <= full; ++target) {
    CubeSpec direct = spec;
    direct.explicit_sets = std::vector<GroupingSet>{target};
    CubeOptions options;
    options.sort_result = false;
    Result<CubeResult> expected = ExecuteCube(t, direct, options);
    Result<Table> got = partial.Query(target);
    if (!expected.ok()) {
      // Numeric-edge errors (e.g. SUM overflow) must surface from the fold
      // too, with the same status code — the sum itself is order-exact.
      ASSERT_FALSE(got.ok())
          << "target " << target << ": direct errored ("
          << expected.status().ToString() << ") but the fold succeeded";
      EXPECT_EQ(got.status().code(), expected.status().code());
      continue;
    }
    ASSERT_TRUE(got.ok()) << "target " << target << ": "
                          << got.status().ToString();
    DiffReport diff = DiffResultTables(expected->table, *got, spec);
    EXPECT_TRUE(diff.ok()) << "target " << target << "\n" << diff.ToString();

    const std::vector<GroupingSet>& kept = partial.views();
    bool is_materialized =
        std::find(kept.begin(), kept.end(), target) != kept.end();
    EXPECT_EQ(partial.last_query_stats().was_materialized, is_materialized)
        << "target " << target;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Adversarial, AncestorAnsweringTest,
    ::testing::ValuesIn(LatticeSweepCases()),
    [](const ::testing::TestParamInfo<LatticeSweepCase>& info) {
      return AdversarialProfiles()[info.param.profile_index].label + "_seed" +
             std::to_string(info.param.seed);
    });

// ------------------------------------------------------ holistic refusal

TEST(HolisticRefusalTest, PartialCubeBuildRejectsHolisticAggregates) {
  Table t = GenerateCubeInput({.num_rows = 100, .num_dims = 2, .seed = 7})
                .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1")};

  // median: cannot merge at all.
  spec.aggregates = {Agg("median", "x", "m")};
  Result<std::unique_ptr<PartialCube>> median =
      PartialCube::Build(t, spec, {0b11});
  ASSERT_FALSE(median.ok());
  EXPECT_NE(median.status().ToString().find("holistic"), std::string::npos);

  // count_distinct: merge-capable but still holistic — a super-aggregate
  // needs the full value set, not the ancestor's finalized counts.
  spec.aggregates = {Agg("count_distinct", "x", "dx")};
  EXPECT_FALSE(PartialCube::Build(t, spec, {0b11}).ok());
  EXPECT_FALSE(PartialCube::BuildWithBudget(t, spec, 1 << 20).ok());
}

TEST(HolisticRefusalTest, BudgetedExecutionFallsBackToDirectComputation) {
  Table t = GenerateCubeInput({.num_rows = 500,
                               .num_dims = 2,
                               .cardinality = 4,
                               .seed = 9})
                .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1")};
  spec.aggregates = {Agg("median", "x", "med"), Agg("sum", "x", "s")};

  CubeOptions plain;
  plain.sort_result = true;
  Result<CubeResult> expected = ExecuteCube(t, spec, plain);
  ASSERT_TRUE(expected.ok());

  CubeOptions budgeted = plain;
  budgeted.materialize_budget_bytes = 64;
  Result<CubeResult> got = ExecuteCube(t, spec, budgeted);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  // The rewrite never engages for holistic aggregates: no budget recorded,
  // identical result.
  EXPECT_EQ(got->stats.lattice_budget_bytes, 0u);
  EXPECT_EQ(got->stats.lattice_ancestor_folds, 0u);
  EXPECT_TRUE(got->table.EqualsIgnoringRowOrder(expected->table));
}

// ---------------------------------------------------- budgeted execution

CubeSpec MergeableBenchSpec() {
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1"), GroupCol("d2")};
  spec.aggregates = {CountStar("n"), Agg("sum", "x", "sx"),
                     Agg("avg", "y", "ay")};
  return spec;
}

TEST(BudgetedExecutionTest, TinyBudgetKeepsOnlyTheCoreAndStillAgrees) {
  Table t = GenerateCubeInput({.num_rows = 2000,
                               .num_dims = 3,
                               .cardinality = 6,
                               .skew = 0.3,
                               .seed = 31})
                .value();
  CubeSpec spec = MergeableBenchSpec();
  CubeOptions plain;
  plain.sort_result = true;
  Result<CubeResult> expected = ExecuteCube(t, spec, plain);
  ASSERT_TRUE(expected.ok());

  CubeOptions budgeted = plain;
  budgeted.materialize_budget_bytes = 64;  // far below the core's footprint
  Result<CubeResult> got = ExecuteCube(t, spec, budgeted);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  DiffReport diff = DiffResultTables(expected->table, got->table, spec);
  EXPECT_TRUE(diff.ok()) << diff.ToString();
  EXPECT_EQ(got->stats.lattice_budget_bytes, 64u);
  EXPECT_EQ(got->stats.lattice_views_materialized, 1u);
  // 8 requested sets, 1 materialized (the core), 7 answered by folding.
  EXPECT_EQ(got->stats.lattice_ancestor_folds, 7u);
  EXPECT_EQ(got->stats.lattice_base_fallbacks, 0u);
  EXPECT_GT(got->stats.lattice_fold_cells, 0u);
  EXPECT_GT(got->stats.lattice_bytes_materialized, 0u);
}

TEST(BudgetedExecutionTest, BudgetSweepAgreesAndStaysWithinBudget) {
  Table t = GenerateCubeInput({.num_rows = 2000,
                               .num_dims = 3,
                               .cardinality = 6,
                               .seed = 32})
                .value();
  CubeSpec spec = MergeableBenchSpec();
  CubeOptions plain;
  plain.sort_result = true;
  Result<CubeResult> expected = ExecuteCube(t, spec, plain);
  ASSERT_TRUE(expected.ok());

  // Core-only run: its resident bytes are the floor no budget can beat.
  CubeOptions core_only = plain;
  core_only.materialize_budget_bytes = 1;
  Result<CubeResult> core = ExecuteCube(t, spec, core_only);
  ASSERT_TRUE(core.ok());
  const uint64_t core_bytes = core->stats.lattice_bytes_materialized;
  ASSERT_GT(core_bytes, 0u);

  for (size_t budget : {size_t{4096}, size_t{65536}, size_t{1} << 24}) {
    CubeOptions budgeted = plain;
    budgeted.materialize_budget_bytes = budget;
    Result<CubeResult> got = ExecuteCube(t, spec, budgeted);
    ASSERT_TRUE(got.ok()) << "budget " << budget;
    DiffReport diff = DiffResultTables(expected->table, got->table, spec);
    EXPECT_TRUE(diff.ok()) << "budget " << budget << "\n" << diff.ToString();
    EXPECT_EQ(got->stats.lattice_budget_bytes, budget);
    EXPECT_GE(got->stats.lattice_views_materialized, 1u);
    EXPECT_LE(got->stats.lattice_views_materialized, 8u);
    // Resident bytes never exceed the budget, except through the mandatory
    // core when the budget is below even that.
    EXPECT_LE(got->stats.lattice_bytes_materialized,
              std::max<uint64_t>(budget, core_bytes))
        << "budget " << budget;
    // Every set not materialized was answered by a fold (core always
    // covers every subset: no base fallbacks on this mergeable spec).
    EXPECT_EQ(got->stats.lattice_ancestor_folds,
              8u - got->stats.lattice_views_materialized);
    EXPECT_EQ(got->stats.lattice_base_fallbacks, 0u);
  }

  // A generous budget materializes the whole lattice: no folds at all.
  CubeOptions generous = plain;
  generous.materialize_budget_bytes = size_t{1} << 30;
  Result<CubeResult> all = ExecuteCube(t, spec, generous);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->stats.lattice_views_materialized, 8u);
  EXPECT_EQ(all->stats.lattice_ancestor_folds, 0u);
}

TEST(BudgetedExecutionTest, EnvironmentBudgetAppliesAndOptionWins) {
  Table t = GenerateCubeInput({.num_rows = 800,
                               .num_dims = 2,
                               .cardinality = 5,
                               .seed = 33})
                .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1")};
  spec.aggregates = {CountStar("n"), Agg("sum", "x", "sx")};
  CubeOptions plain;
  plain.sort_result = true;
  Result<CubeResult> expected = ExecuteCube(t, spec, plain);
  ASSERT_TRUE(expected.ok());

  ASSERT_EQ(setenv("DATACUBE_MATERIALIZE_BUDGET", "64", 1), 0);
  Result<CubeResult> via_env = ExecuteCube(t, spec, plain);
  ASSERT_TRUE(via_env.ok());
  EXPECT_EQ(via_env->stats.lattice_budget_bytes, 64u);
  EXPECT_EQ(via_env->stats.lattice_views_materialized, 1u);
  EXPECT_TRUE(
      DiffResultTables(expected->table, via_env->table, spec).ok());

  // The explicit option overrides the environment.
  CubeOptions explicit_budget = plain;
  explicit_budget.materialize_budget_bytes = size_t{1} << 24;
  Result<CubeResult> via_option = ExecuteCube(t, spec, explicit_budget);
  ASSERT_TRUE(via_option.ok());
  EXPECT_EQ(via_option->stats.lattice_budget_bytes, size_t{1} << 24);

  // A malformed value is ignored, not an error.
  ASSERT_EQ(setenv("DATACUBE_MATERIALIZE_BUDGET", "lots", 1), 0);
  Result<CubeResult> malformed = ExecuteCube(t, spec, plain);
  ASSERT_TRUE(malformed.ok());
  EXPECT_EQ(malformed->stats.lattice_budget_bytes, 0u);
  unsetenv("DATACUBE_MATERIALIZE_BUDGET");
}

// ------------------------------------------------- checkpoint round-trip

TEST(PartialCubeCheckpointTest, SaveLoadRoundTripServesIdenticalAnswers) {
  Table t = GenerateCubeInput({.num_rows = 1500,
                               .num_dims = 3,
                               .cardinality = 5,
                               .seed = 21})
                .value();
  CubeSpec spec = MergeableBenchSpec();
  Result<std::unique_ptr<PartialCube>> built =
      PartialCube::Build(t, spec, {0b111, 0b101, 0b010});
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  PartialCube& original = **built;

  std::string path = ::testing::TempDir() + "pcube_roundtrip.ckpt";
  ASSERT_TRUE(original.SaveToFile(path).ok());
  Result<std::unique_ptr<PartialCube>> loaded =
      PartialCube::LoadFromFile(spec, path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ((*loaded)->views(), original.views());
  EXPECT_EQ((*loaded)->materialized_cells(), original.materialized_cells());
  for (GroupingSet target = 0; target < 8; ++target) {
    Result<Table> a = original.Query(target);
    Result<Table> b = (*loaded)->Query(target);
    ASSERT_TRUE(a.ok()) << "target " << target;
    ASSERT_TRUE(b.ok()) << "target " << target;
    DiffReport diff = DiffResultTables(*a, *b, spec);
    EXPECT_TRUE(diff.ok()) << "target " << target << "\n" << diff.ToString();
    EXPECT_EQ((*loaded)->last_query_stats().was_materialized,
              original.last_query_stats().was_materialized)
        << "target " << target;
  }
}

TEST(PartialCubeCheckpointTest, ApplyInsertAfterLoadKeepsMaintaining) {
  Table t = GenerateCubeInput({.num_rows = 600,
                               .num_dims = 2,
                               .cardinality = 4,
                               .seed = 22})
                .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1")};
  spec.aggregates = {CountStar("n"), Agg("sum", "x", "sx"),
                     Agg("avg", "y", "ay")};
  Result<std::unique_ptr<PartialCube>> built =
      PartialCube::Build(t, spec, {0b11, 0b01});
  ASSERT_TRUE(built.ok());

  std::string path = ::testing::TempDir() + "pcube_maintain.ckpt";
  ASSERT_TRUE((*built)->SaveToFile(path).ok());
  Result<std::unique_ptr<PartialCube>> loaded =
      PartialCube::LoadFromFile(spec, path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // A brand-new key value forces dictionary growth (and possibly a codec
  // re-layout) on the RELOADED stores — the maintenance path must keep
  // working after restore.
  std::vector<Value> row = {Value::String("unseen_key"), Value::String("v0"),
                            Value::Int64(17), Value::Float64(2.5)};
  ASSERT_TRUE((*loaded)->ApplyInsert(row).ok());

  Table extended{t.schema()};
  for (size_t r = 0; r < t.num_rows(); ++r) {
    ASSERT_TRUE(extended.AppendRow(t.GetRow(r)).ok());
  }
  ASSERT_TRUE(extended.AppendRow(row).ok());

  for (GroupingSet target = 0; target < 4; ++target) {
    CubeSpec direct = spec;
    direct.explicit_sets = std::vector<GroupingSet>{target};
    CubeOptions options;
    options.sort_result = false;
    Result<CubeResult> expected = ExecuteCube(extended, direct, options);
    ASSERT_TRUE(expected.ok());
    Result<Table> got = (*loaded)->Query(target);
    ASSERT_TRUE(got.ok()) << "target " << target;
    DiffReport diff = DiffResultTables(expected->table, *got, spec);
    EXPECT_TRUE(diff.ok()) << "target " << target << "\n" << diff.ToString();
  }
}

TEST(PartialCubeCheckpointTest, StoredSelectionStaysAuthoritativeOnLoad) {
  Table t = GenerateCubeInput({.num_rows = 3000,
                               .num_dims = 3,
                               .cardinality = 8,
                               .skew = 0.4,
                               .seed = 23})
                .value();
  CubeSpec spec = MergeableBenchSpec();

  // Build under a budget that prunes the lattice, so the stored selection
  // is a real strict subset.
  Result<std::unique_ptr<PartialCube>> built =
      PartialCube::BuildWithBudget(t, spec, 16 * 1024);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  std::vector<GroupingSet> saved_views = (*built)->views();
  ASSERT_GE(saved_views.size(), 1u);
  ASSERT_LT(saved_views.size(), 8u) << "budget did not prune anything";
  EXPECT_EQ((*built)->budget_bytes(), size_t{16 * 1024});
  EXPECT_EQ((*built)->selection().views.size(), saved_views.size());

  std::string path = ::testing::TempDir() + "pcube_stale.ckpt";
  ASSERT_TRUE((*built)->SaveToFile(path).ok());
  Result<std::unique_ptr<PartialCube>> loaded =
      PartialCube::LoadFromFile(spec, path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // The stored selection is authoritative: even though a fresh greedy over
  // today's statistics might choose differently, the loaded cube serves
  // exactly the views it saved (the "stale selection" contract).
  EXPECT_EQ((*loaded)->views(), saved_views);
  EXPECT_EQ((*loaded)->budget_bytes(), size_t{16 * 1024});

  // And it still answers every grouping set correctly from those views.
  for (GroupingSet target = 0; target < 8; ++target) {
    CubeSpec direct = spec;
    direct.explicit_sets = std::vector<GroupingSet>{target};
    CubeOptions options;
    options.sort_result = false;
    Result<CubeResult> expected = ExecuteCube(t, direct, options);
    ASSERT_TRUE(expected.ok());
    Result<Table> got = (*loaded)->Query(target);
    ASSERT_TRUE(got.ok()) << "target " << target;
    DiffReport diff = DiffResultTables(expected->table, *got, spec);
    EXPECT_TRUE(diff.ok()) << "target " << target << "\n" << diff.ToString();
  }
}

TEST(PartialCubeCheckpointTest, BudgetedBuildAnswersAllSetsWithinBudget) {
  Table t = GenerateCubeInput({.num_rows = 4000,
                               .num_dims = 4,
                               .cardinality = 6,
                               .seed = 24})
                .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1"), GroupCol("d2"),
               GroupCol("d3")};
  spec.aggregates = {CountStar("n"), Agg("sum", "x", "sx")};

  Result<std::unique_ptr<PartialCube>> built =
      PartialCube::BuildWithBudget(t, spec, 256 * 1024);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  PartialCube& cube = **built;
  EXPECT_LE(cube.materialized_bytes(), size_t{256 * 1024});

  // Every one of the 2^4 grouping sets is answerable.
  for (GroupingSet target = 0; target < 16; ++target) {
    CubeSpec direct = spec;
    direct.explicit_sets = std::vector<GroupingSet>{target};
    CubeOptions options;
    options.sort_result = false;
    Result<CubeResult> expected = ExecuteCube(t, direct, options);
    ASSERT_TRUE(expected.ok());
    Result<Table> got = cube.Query(target);
    ASSERT_TRUE(got.ok()) << "target " << target;
    DiffReport diff = DiffResultTables(expected->table, *got, spec);
    EXPECT_TRUE(diff.ok()) << "target " << target << "\n" << diff.ToString();
  }
}

// --------------------------------------------- oracle config coverage

TEST(OracleBudgetConfigTest, SweepIncludesBudgetedShapes) {
  std::vector<testing::OracleConfig> configs = testing::AllOracleConfigs();
  size_t budgeted = 0;
  bool has_core_only = false, has_parallel_budget = false;
  for (const testing::OracleConfig& c : configs) {
    if (c.materialize_budget_bytes == 0) continue;
    ++budgeted;
    has_core_only |= c.materialize_budget_bytes <= 1024;
    has_parallel_budget |= c.num_threads > 1;
  }
  EXPECT_GE(budgeted, 3u);
  EXPECT_TRUE(has_core_only) << "need a budget tiny enough to force "
                                "core-only selection (every set folds)";
  EXPECT_TRUE(has_parallel_budget)
      << "need ancestor answering composed with the parallel path";
}

TEST(OracleBudgetConfigTest, FixedSeedBudgetDifferentialAgrees) {
  RandomTableProfile profile = AdversarialProfiles()[0];
  Table input = MakeRandomTable(17, profile);
  CubeSpec spec =
      testing::MakeRandomSpec(17, profile, /*include_holistic=*/false);
  // Direct computation as baseline vs the three budgeted shapes.
  std::vector<testing::OracleConfig> configs = {
      {"direct", CubeAlgorithm::kAuto, 1},
  };
  for (const testing::OracleConfig& c : testing::AllOracleConfigs()) {
    if (c.materialize_budget_bytes != 0) configs.push_back(c);
  }
  ASSERT_GE(configs.size(), 4u);
  DiffReport report = testing::RunDifferential(input, spec, configs);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

}  // namespace
}  // namespace datacube
