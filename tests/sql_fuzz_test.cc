// Differential testing of the SQL front end: randomly generated
// CUBE/ROLLUP/compound queries are executed twice — once as SQL text through
// the parser/planner, once directly through the cube-operator API — and the
// results must be identical bags of rows. Any divergence indicates a bug in
// the parser, the planner's rewrite, or the operator itself.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "datacube/cube/cube_operator.h"
#include "datacube/sql/engine.h"
#include "datacube/workload/sales.h"

namespace datacube {
namespace {

struct RandomQuery {
  std::string sql;
  CubeSpec spec;          // the equivalent direct-API request
  ExprPtr where;          // applied to the base table for the API path
};

// Builds a random query over a GenerateCubeInput table with dims d0..d{n-1}.
RandomQuery MakeQuery(std::mt19937_64& rng, size_t num_dims) {
  RandomQuery q;
  // Partition a random subset of dimensions into plain/rollup/cube parts.
  std::vector<size_t> chosen;
  for (size_t d = 0; d < num_dims; ++d) {
    if (rng() % 4 != 0) chosen.push_back(d);  // keep most dims
  }
  if (chosen.empty()) chosen.push_back(0);
  std::vector<std::string> plain, rollup, cube;
  for (size_t d : chosen) {
    std::string name = "d" + std::to_string(d);
    switch (rng() % 3) {
      case 0:
        plain.push_back(name);
        break;
      case 1:
        rollup.push_back(name);
        break;
      default:
        cube.push_back(name);
        break;
    }
  }

  // Aggregates: 1-3 drawn from a safe list (integer-exact arithmetic).
  struct AggChoice {
    const char* sql;
    const char* fn;
    bool star;
  };
  static const AggChoice kAggs[] = {
      {"SUM(x)", "sum", false},
      {"COUNT(*)", "count_star", true},
      {"COUNT(x)", "count", false},
      {"MIN(x)", "min", false},
      {"MAX(x)", "max", false},
  };
  size_t num_aggs = 1 + rng() % 3;
  std::vector<const AggChoice*> agg_choices;
  for (size_t i = 0; i < num_aggs; ++i) {
    const AggChoice* c = &kAggs[rng() % std::size(kAggs)];
    bool duplicate = false;
    for (const AggChoice* seen : agg_choices) duplicate |= seen == c;
    if (!duplicate) agg_choices.push_back(c);
  }

  // Optional WHERE on the measure.
  bool with_where = rng() % 2 == 0;
  int64_t threshold = static_cast<int64_t>(rng() % 1000);

  // --- SQL text --- (select dims in clause order: plain, rollup, cube — the
  // operator's output layout)
  std::vector<std::string> select_dims = plain;
  select_dims.insert(select_dims.end(), rollup.begin(), rollup.end());
  select_dims.insert(select_dims.end(), cube.begin(), cube.end());
  std::ostringstream sql;
  sql << "SELECT ";
  for (const std::string& d : select_dims) {
    sql << d << ", ";
  }
  for (size_t i = 0; i < agg_choices.size(); ++i) {
    if (i > 0) sql << ", ";
    sql << agg_choices[i]->sql << " AS a" << i;
  }
  sql << " FROM T";
  if (with_where) sql << " WHERE x < " << threshold;
  sql << " GROUP BY ";
  bool first_part = true;
  auto emit_part = [&](const char* kw, const std::vector<std::string>& cols) {
    if (cols.empty()) return;
    if (!first_part) sql << ", ";
    first_part = false;
    if (kw[0] != '\0') sql << kw << " ";
    for (size_t i = 0; i < cols.size(); ++i) {
      if (i > 0) sql << ", ";
      sql << cols[i];
    }
  };
  emit_part("", plain);
  emit_part("ROLLUP", rollup);
  emit_part("CUBE", cube);

  // --- Equivalent API spec (grouping columns in clause order) ---
  for (const std::string& c : plain) q.spec.group_by.push_back(GroupCol(c));
  for (const std::string& c : rollup) q.spec.rollup.push_back(GroupCol(c));
  for (const std::string& c : cube) q.spec.cube.push_back(GroupCol(c));
  for (size_t i = 0; i < agg_choices.size(); ++i) {
    AggregateSpec a;
    a.function = agg_choices[i]->fn;
    if (!agg_choices[i]->star) a.args = {Expr::Column("x")};
    a.output_name = "a" + std::to_string(i);
    q.spec.aggregates.push_back(std::move(a));
  }
  if (with_where) {
    q.where = Expr::Binary(BinaryOp::kLt, Expr::Column("x"),
                           Expr::Lit(Value::Int64(threshold)));
  }
  q.sql = sql.str();
  return q;
}

class SqlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlFuzzTest, SqlAndApiAgree) {
  std::mt19937_64 rng(GetParam());
  size_t num_dims = 2 + rng() % 3;
  Table t = GenerateCubeInput({.num_rows = 300 + rng() % 700,
                               .num_dims = num_dims,
                               .cardinality = 2 + rng() % 6,
                               .skew = (rng() % 2) * 0.5,
                               .seed = GetParam() * 7919})
                .value();
  sql::Catalog catalog;
  ASSERT_TRUE(catalog.Register("T", t).ok());

  for (int round = 0; round < 8; ++round) {
    RandomQuery q = MakeQuery(rng, num_dims);
    SCOPED_TRACE(q.sql);

    Result<Table> via_sql = sql::ExecuteSql(q.sql, catalog);
    ASSERT_TRUE(via_sql.ok()) << via_sql.status().ToString();

    // Direct API path: apply WHERE, then the cube spec. The SQL projection
    // emits grouping columns then aggregates, which matches the operator's
    // layout when there are no decorations/grouping columns.
    Table base = t;
    if (q.where != nullptr) {
      ASSERT_TRUE(q.where->Bind(base.schema()).ok());
      std::vector<bool> mask(base.num_rows());
      for (size_t r = 0; r < base.num_rows(); ++r) {
        Result<Value> v = q.where->Evaluate(base, r);
        ASSERT_TRUE(v.ok());
        mask[r] = !v->is_special() && v->bool_value();
      }
      base = base.FilterRows(mask).value();
    }
    Result<CubeResult> via_api = ExecuteCube(base, q.spec);
    ASSERT_TRUE(via_api.ok()) << via_api.status().ToString();

    EXPECT_TRUE(via_sql->EqualsIgnoringRowOrder(via_api->table))
        << "SQL rows: " << via_sql->num_rows()
        << ", API rows: " << via_api->table.num_rows();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzzTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace datacube
