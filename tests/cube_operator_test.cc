#include <gtest/gtest.h>

#include "datacube/cube/cube_operator.h"
#include "datacube/workload/sales.h"
#include "datacube/workload/weather.h"

namespace datacube {
namespace {

// Looks up the single row of `t` whose first `key.size()` columns equal
// `key`, returning the value in column `value_col`.
Value Lookup(const Table& t, const std::vector<Value>& key, size_t value_col) {
  for (size_t r = 0; r < t.num_rows(); ++r) {
    bool match = true;
    for (size_t k = 0; k < key.size() && match; ++k) {
      match = t.GetValue(r, k) == key[k];
    }
    if (match) return t.GetValue(r, value_col);
  }
  ADD_FAILURE() << "row not found";
  return Value::Null();
}

// ------------------------------------------------------- Figure 4 cube

TEST(CubeOperatorTest, Figure4CubeHas48Rows) {
  // "the SALES table has 2 x 3 x 3 = 18 rows, while the derived data cube
  // has 3 x 4 x 4 = 48 rows."
  Table sales = Figure4SalesTable().value();
  Result<CubeResult> cube =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "Units")});
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  EXPECT_EQ(cube->table.num_rows(), 48u);
  EXPECT_EQ(cube->stats.output_cells, 48u);
}

TEST(CubeOperatorTest, Figure4GrandTotalTuple) {
  // The paper's "(ALL, ALL, ALL, 941)" tuple.
  Table sales = Figure4SalesTable().value();
  Result<CubeResult> cube =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "Units")});
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(Lookup(cube->table, {Value::All(), Value::All(), Value::All()}, 3),
            Value::Int64(941));
}

TEST(CubeOperatorTest, Table5aSalesSummary) {
  // Table 5.a: the Chevy roll-up rows.
  Table sales = Table3SalesTable().value();
  CubeSpec spec;
  spec.rollup = {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")};
  spec.aggregates = {Agg("sum", "Units", "Units")};
  Result<CubeResult> r = ExecuteCube(sales, spec);
  ASSERT_TRUE(r.ok());
  const Table& t = r->table;
  Value chevy = Value::String("Chevy");
  EXPECT_EQ(Lookup(t, {chevy, Value::Int64(1994), Value::String("black")}, 3),
            Value::Int64(50));
  EXPECT_EQ(Lookup(t, {chevy, Value::Int64(1994), Value::All()}, 3),
            Value::Int64(90));
  EXPECT_EQ(Lookup(t, {chevy, Value::Int64(1995), Value::All()}, 3),
            Value::Int64(200));
  EXPECT_EQ(Lookup(t, {chevy, Value::All(), Value::All()}, 3),
            Value::Int64(290));
  // Roll-up is asymmetric: (Chevy, ALL, black) is NOT in a rollup result.
  for (size_t row = 0; row < t.num_rows(); ++row) {
    bool is_missing_shape = t.GetValue(row, 0) == chevy &&
                            t.GetValue(row, 1).is_all() &&
                            !t.GetValue(row, 2).is_all();
    EXPECT_FALSE(is_missing_shape);
  }
}

TEST(CubeOperatorTest, Table5bCubeAddsSymmetricRows) {
  // The cube adds the Table 5.b rows the rollup lacks:
  // (Chevy, ALL, black, 135) and (Chevy, ALL, white, 155).
  Table sales = Table3SalesTable().value();
  Result<CubeResult> cube =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "Units")});
  ASSERT_TRUE(cube.ok());
  Value chevy = Value::String("Chevy");
  EXPECT_EQ(
      Lookup(cube->table, {chevy, Value::All(), Value::String("black")}, 3),
      Value::Int64(135));
  EXPECT_EQ(
      Lookup(cube->table, {chevy, Value::All(), Value::String("white")}, 3),
      Value::Int64(155));
  // Cross-tab totals of Table 6.a/6.b.
  Value ford = Value::String("Ford");
  EXPECT_EQ(Lookup(cube->table, {chevy, Value::All(), Value::All()}, 3),
            Value::Int64(290));
  EXPECT_EQ(Lookup(cube->table, {ford, Value::All(), Value::All()}, 3),
            Value::Int64(220));
  EXPECT_EQ(
      Lookup(cube->table, {Value::All(), Value::All(), Value::All()}, 3),
      Value::Int64(510));
}

TEST(CubeOperatorTest, CardinalityFormulaOnCompleteCross) {
  // |cube| = Π(C_i + 1) when the core is the complete cross product.
  Table sales = Figure4SalesTable().value();  // C = 2, 3, 3
  Result<CubeResult> cube =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {CountStar()});
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->table.num_rows(), (2 + 1) * (3 + 1) * (3 + 1));
}

TEST(CubeOperatorTest, RollupAddsOnlyChainRecords) {
  // "an N-dimensional roll-up will add only N records to the answer set"
  // per distinct prefix; for the full chain the result is core + the
  // prefix sub-totals.
  Table sales = Figure4SalesTable().value();
  Result<CubeResult> rollup =
      Rollup(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
             {Agg("sum", "Units", "Units")});
  ASSERT_TRUE(rollup.ok());
  // 18 core + 6 (model,year) + 2 (model) + 1 grand = 27.
  EXPECT_EQ(rollup->table.num_rows(), 27u);
}

// ------------------------------------------------------ GROUP BY basics

TEST(CubeOperatorTest, PlainGroupBy) {
  Table sales = Table3SalesTable().value();
  Result<CubeResult> r = GroupBy(sales, {GroupCol("Model")},
                                 {Agg("sum", "Units", "Units")});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.num_rows(), 2u);
  EXPECT_EQ(Lookup(r->table, {Value::String("Chevy")}, 1), Value::Int64(290));
}

TEST(CubeOperatorTest, ScalarAggregateNoGroupingColumns) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec;
  spec.aggregates = {Agg("sum", "Units", "Units"), CountStar("n")};
  Result<CubeResult> r = ExecuteCube(sales, spec);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->table.num_rows(), 1u);
  EXPECT_EQ(r->table.GetValue(0, 0), Value::Int64(510));
  EXPECT_EQ(r->table.GetValue(0, 1), Value::Int64(8));
}

TEST(CubeOperatorTest, EmptyInputGrandTotalRowOnly) {
  Table empty(Schema({Field{"a", DataType::kString},
                      Field{"x", DataType::kInt64}}));
  Result<CubeResult> cube =
      Cube(empty, {GroupCol("a")}, {CountStar("n"), Agg("sum", "x", "s")});
  ASSERT_TRUE(cube.ok());
  // Only the empty grouping set yields a row: COUNT = 0, SUM = NULL.
  ASSERT_EQ(cube->table.num_rows(), 1u);
  EXPECT_TRUE(cube->table.GetValue(0, 0).is_all());
  EXPECT_EQ(cube->table.GetValue(0, 1), Value::Int64(0));
  EXPECT_TRUE(cube->table.GetValue(0, 2).is_null());
}

// -------------------------------------------- computed grouping columns

TEST(CubeOperatorTest, HistogramGroupingByFunction) {
  // Section 2: "GROUP BY Day(Time), Nation(Latitude, Longitude)".
  Table weather =
      GenerateWeather({.num_rows = 300, .num_days = 5, .seed = 3}).value();
  CubeSpec spec;
  spec.group_by = {
      GroupExpr{Expr::Call("day", {Expr::Column("Time")}), "day"},
      GroupExpr{
          Expr::Call("nation",
                     {Expr::Column("Latitude"), Expr::Column("Longitude")}),
          "nation"}};
  spec.aggregates = {Agg("max", "Temp", "max_temp")};
  Result<CubeResult> r = ExecuteCube(weather, spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->table.num_rows(), 0u);
  EXPECT_LE(r->table.num_rows(), 5u * 10u);
  EXPECT_EQ(r->table.schema().field(0).name, "day");
  EXPECT_EQ(r->table.schema().field(1).name, "nation");
}

// ----------------------------------------------- ALL modes and GROUPING

TEST(CubeOperatorTest, NullWithGroupingMode) {
  // Section 3.4's minimalist design: NULL data values plus GROUPING()
  // discriminator columns. The paper's example output:
  // (NULL, NULL, NULL, 941, TRUE, TRUE, TRUE).
  Table sales = Figure4SalesTable().value();
  CubeSpec spec;
  spec.cube = {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")};
  spec.aggregates = {Agg("sum", "Units", "Units")};
  spec.all_mode = AllMode::kNullWithGrouping;
  spec.add_grouping_columns = true;
  Result<CubeResult> r = ExecuteCube(sales, spec);
  ASSERT_TRUE(r.ok());
  const Table& t = r->table;
  ASSERT_EQ(t.num_columns(), 7u);
  bool found = false;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    if (t.GetValue(row, 4) == Value::Bool(true) &&
        t.GetValue(row, 5) == Value::Bool(true) &&
        t.GetValue(row, 6) == Value::Bool(true)) {
      found = true;
      EXPECT_TRUE(t.GetValue(row, 0).is_null());
      EXPECT_TRUE(t.GetValue(row, 1).is_null());
      EXPECT_TRUE(t.GetValue(row, 2).is_null());
      EXPECT_EQ(t.GetValue(row, 3), Value::Int64(941));
    }
  }
  EXPECT_TRUE(found);
  // No ALL tokens anywhere in this mode.
  for (size_t row = 0; row < t.num_rows(); ++row) {
    for (size_t col = 0; col < 3; ++col) {
      EXPECT_FALSE(t.GetValue(row, col).is_all());
    }
  }
}

TEST(CubeOperatorTest, GroupingColumnsDiscriminateRealNulls) {
  // A NULL grouping value in the data is distinguishable from a
  // super-aggregate NULL via GROUPING() — the whole point of Section 3.4.
  Table t(Schema({Field{"k", DataType::kString},
                  Field{"x", DataType::kInt64}}));
  ASSERT_TRUE(t.AppendRow({Value::Null(), Value::Int64(1)}).ok());
  ASSERT_TRUE(t.AppendRow({Value::String("a"), Value::Int64(2)}).ok());
  CubeSpec spec;
  spec.cube = {GroupCol("k")};
  spec.aggregates = {Agg("sum", "x", "s")};
  spec.all_mode = AllMode::kNullWithGrouping;
  spec.add_grouping_columns = true;
  Result<CubeResult> r = ExecuteCube(t, spec);
  ASSERT_TRUE(r.ok());
  // Rows: (NULL data, grouping=false, 1), ("a", false, 2), (NULL, true, 3).
  ASSERT_EQ(r->table.num_rows(), 3u);
  int data_null = 0, super_null = 0;
  for (size_t row = 0; row < 3; ++row) {
    if (!r->table.GetValue(row, 0).is_null()) continue;
    if (r->table.GetValue(row, 2) == Value::Bool(true)) {
      ++super_null;
      EXPECT_EQ(r->table.GetValue(row, 1), Value::Int64(3));
    } else {
      ++data_null;
      EXPECT_EQ(r->table.GetValue(row, 1), Value::Int64(1));
    }
  }
  EXPECT_EQ(data_null, 1);
  EXPECT_EQ(super_null, 1);
}

// --------------------------------------------------------- decorations

TEST(CubeOperatorTest, DecorationsFollowTable7Rule) {
  // Table 7: continent appears only when nation is concrete.
  Table weather =
      GenerateWeather({.num_rows = 200, .num_days = 3, .seed = 5}).value();
  ExprPtr nation_expr = Expr::Call(
      "nation", {Expr::Column("Latitude"), Expr::Column("Longitude")});
  CubeSpec spec;
  spec.cube = {GroupExpr{Expr::Call("day", {Expr::Column("Time")}), "day"},
               GroupExpr{nation_expr, "nation"}};
  spec.aggregates = {Agg("max", "Temp", "max_temp")};
  spec.decorations = {Decoration{
      Expr::Call("continent",
                 {Expr::Call("nation", {Expr::Column("Latitude"),
                                        Expr::Column("Longitude")})}),
      "continent", /*determinant=*/0b10}};
  Result<CubeResult> r = ExecuteCube(weather, spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Table& t = r->table;
  // Columns: day, nation, continent, max_temp.
  for (size_t row = 0; row < t.num_rows(); ++row) {
    Value nation = t.GetValue(row, 1);
    Value continent = t.GetValue(row, 2);
    if (nation.is_all()) {
      EXPECT_TRUE(continent.is_null()) << "row " << row;
    } else {
      EXPECT_FALSE(continent.is_null()) << "row " << row;
    }
  }
}

// ----------------------------------------------- explicit GROUPING SETS

TEST(CubeOperatorTest, ExplicitGroupingSets) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec;
  spec.cube = {GroupCol("Model"), GroupCol("Year")};
  spec.explicit_sets = std::vector<GroupingSet>{0b01ULL, 0b10ULL};
  spec.aggregates = {Agg("sum", "Units", "Units")};
  Result<CubeResult> r = ExecuteCube(sales, spec);
  ASSERT_TRUE(r.ok());
  // 2 models + 2 years = 4 rows; no core, no grand total.
  EXPECT_EQ(r->table.num_rows(), 4u);
  EXPECT_EQ(Lookup(r->table, {Value::String("Ford"), Value::All()}, 2),
            Value::Int64(220));
  EXPECT_EQ(Lookup(r->table, {Value::All(), Value::Int64(1994)}, 2),
            Value::Int64(150));
}

// ------------------------------------------------- compound §3.1 algebra

TEST(CubeOperatorTest, CompoundGroupByRollupCube) {
  // GROUP BY Model, ROLLUP Year, CUBE Color over Table 3 data:
  // sets = 1 × 2 × 2 = 4 per model.
  Table sales = Table3SalesTable().value();
  CubeSpec spec;
  spec.group_by = {GroupCol("Model")};
  spec.rollup = {GroupCol("Year")};
  spec.cube = {GroupCol("Color")};
  spec.aggregates = {Agg("sum", "Units", "Units")};
  Result<CubeResult> r = ExecuteCube(sales, spec);
  ASSERT_TRUE(r.ok());
  // Every row has a concrete Model (GROUP BY part never aggregates away).
  for (size_t row = 0; row < r->table.num_rows(); ++row) {
    EXPECT_FALSE(r->table.GetValue(row, 0).is_all());
  }
  // (Chevy, ALL, white) exists (cube part) ...
  EXPECT_EQ(Lookup(r->table, {Value::String("Chevy"), Value::All(),
                              Value::String("white")}, 3),
            Value::Int64(155));
  // ... and (Chevy, ALL, ALL) exists via the rollup.
  EXPECT_EQ(Lookup(r->table,
                   {Value::String("Chevy"), Value::All(), Value::All()}, 3),
            Value::Int64(290));
}

// ------------------------------------------------ algorithm equivalence

class AlgorithmTest : public ::testing::TestWithParam<CubeAlgorithm> {};

TEST_P(AlgorithmTest, MatchesUnionBaselineOnFigure4) {
  Table sales = Figure4SalesTable().value();
  std::vector<GroupExpr> dims = {GroupCol("Model"), GroupCol("Year"),
                                 GroupCol("Color")};
  std::vector<AggregateSpec> aggs = {Agg("sum", "Units", "s"),
                                     Agg("avg", "Units", "a"),
                                     CountStar("n")};
  CubeOptions baseline_opts;
  baseline_opts.algorithm = CubeAlgorithm::kUnionGroupBy;
  Table expected = Cube(sales, dims, aggs, baseline_opts)->table;

  CubeOptions opts;
  opts.algorithm = GetParam();
  Result<CubeResult> got = Cube(sales, dims, aggs, opts);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(got->table.EqualsIgnoringRowOrder(expected))
      << CubeAlgorithmName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmTest,
    ::testing::Values(CubeAlgorithm::kNaive2N, CubeAlgorithm::kFromCore,
                      CubeAlgorithm::kArrayCube, CubeAlgorithm::kSortRollup,
                      CubeAlgorithm::kSortFromCore, CubeAlgorithm::kAuto),
    [](const auto& info) { return CubeAlgorithmName(info.param); });

TEST(CubeOperatorTest, ParallelMatchesSerial) {
  Table sales =
      GenerateSales({.num_rows = 20000, .num_models = 5, .num_years = 4,
                     .num_colors = 3, .num_dealers = 4, .skew = 0.5,
                     .seed = 11})
          .value();
  std::vector<GroupExpr> dims = {GroupCol("Model"), GroupCol("Year"),
                                 GroupCol("Color")};
  // Integer-valued aggregates keep double arithmetic exact, so serial and
  // parallel merge orders produce bit-identical results.
  std::vector<AggregateSpec> aggs = {Agg("sum", "Units", "s"),
                                     Agg("avg", "Units", "au")};
  Table serial = Cube(sales, dims, aggs)->table;
  CubeOptions opts;
  opts.num_threads = 4;
  Result<CubeResult> parallel = Cube(sales, dims, aggs, opts);
  ASSERT_TRUE(parallel.ok());
  EXPECT_GT(parallel->stats.threads_used, 1);
  EXPECT_TRUE(parallel->table.EqualsIgnoringRowOrder(serial));
}

// -------------------------------------------------------- stats claims

TEST(CubeOperatorTest, Naive2NIterCallsAreTTimes2N) {
  // Section 5: "the 2^N-algorithm invokes the Iter() function T × 2^N
  // times" (per aggregate).
  Table sales = Figure4SalesTable().value();
  CubeOptions opts;
  opts.algorithm = CubeAlgorithm::kNaive2N;
  Result<CubeResult> r =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "s")}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.iter_calls, 18u * 8u);
}

TEST(CubeOperatorTest, FromCoreItersOncePerRow) {
  Table sales = Figure4SalesTable().value();
  CubeOptions opts;
  opts.algorithm = CubeAlgorithm::kFromCore;
  Result<CubeResult> r =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "s")}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.iter_calls, 18u);
  EXPECT_EQ(r->stats.input_scans, 1u);
  EXPECT_GT(r->stats.merge_calls, 0u);
}

TEST(CubeOperatorTest, UnionBaselineScansPerGroupingSet) {
  // "64 scans of the data" for 6 dimensions; here 2^3 = 8 scans.
  Table sales = Figure4SalesTable().value();
  CubeOptions opts;
  opts.algorithm = CubeAlgorithm::kUnionGroupBy;
  Result<CubeResult> r =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "s")}, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.input_scans, 8u);
  EXPECT_EQ(r->stats.iter_calls, 18u * 8u);
}

TEST(CubeOperatorTest, HolisticForcesFallback) {
  // A median cube cannot cascade scratchpads; FromCore silently degrades to
  // the per-set path and still produces correct results.
  Table sales = Figure4SalesTable().value();
  CubeOptions from_core;
  from_core.algorithm = CubeAlgorithm::kFromCore;
  Result<CubeResult> r =
      Cube(sales, {GroupCol("Model"), GroupCol("Year")},
           {Agg("median", "Units", "med")}, from_core);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.input_scans, 4u);  // one per grouping set

  CubeOptions naive;
  naive.algorithm = CubeAlgorithm::kNaive2N;
  Result<CubeResult> expected =
      Cube(sales, {GroupCol("Model"), GroupCol("Year")},
           {Agg("median", "Units", "med")}, naive);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(r->table.EqualsIgnoringRowOrder(expected->table));
}

// --------------------------------------------------------- error paths

TEST(CubeOperatorTest, RejectsBadSpecs) {
  Table sales = Table3SalesTable().value();
  CubeSpec no_aggs;
  no_aggs.cube = {GroupCol("Model")};
  EXPECT_FALSE(ExecuteCube(sales, no_aggs).ok());

  CubeSpec bad_column;
  bad_column.cube = {GroupCol("Nope")};
  bad_column.aggregates = {CountStar()};
  EXPECT_FALSE(ExecuteCube(sales, bad_column).ok());

  CubeSpec bad_agg;
  bad_agg.cube = {GroupCol("Model")};
  bad_agg.aggregates = {Agg("no_such_agg", "Units")};
  EXPECT_FALSE(ExecuteCube(sales, bad_agg).ok());

  CubeSpec dup_names;
  dup_names.cube = {GroupCol("Model"), GroupCol("Model")};
  dup_names.aggregates = {CountStar()};
  EXPECT_FALSE(ExecuteCube(sales, dup_names).ok());

  CubeSpec bad_set;
  bad_set.cube = {GroupCol("Model")};
  bad_set.explicit_sets = std::vector<GroupingSet>{0b100ULL};
  bad_set.aggregates = {CountStar()};
  EXPECT_FALSE(ExecuteCube(sales, bad_set).ok());
}

TEST(CubeOperatorTest, DistinctAggregateInCube) {
  Table sales = Table3SalesTable().value();
  AggregateSpec distinct_colors;
  distinct_colors.function = "count";
  distinct_colors.args = {Expr::Column("Color")};
  distinct_colors.distinct = true;
  distinct_colors.output_name = "distinct_colors";
  Result<CubeResult> r =
      Cube(sales, {GroupCol("Model")}, {distinct_colors});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Lookup(r->table, {Value::String("Chevy")}, 1), Value::Int64(2));
  EXPECT_EQ(Lookup(r->table, {Value::All()}, 1), Value::Int64(2));
}

}  // namespace
}  // namespace datacube
