#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "datacube/common/date.h"
#include "datacube/common/result.h"
#include "datacube/common/status.h"
#include "datacube/common/str_util.h"
#include "datacube/common/value.h"

namespace datacube {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kTypeError, StatusCode::kParseError,
        StatusCode::kNotImplemented, StatusCode::kInternal,
        StatusCode::kIOError}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Doubled(Result<int> in) {
  DATACUBE_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(Status::Internal("x")).ok());
}

// ------------------------------------------------------------------ Value

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::All().is_all());
  EXPECT_TRUE(Value::All().is_special());
  EXPECT_EQ(Value::Int64(7).int64_value(), 7);
  EXPECT_DOUBLE_EQ(Value::Float64(2.5).float64_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_TRUE(Value::Bool(true).bool_value());
}

TEST(ValueTest, AllIsDistinctFromNullAndValues) {
  // Section 3.3: ALL is a non-value like NULL but distinct from it.
  EXPECT_NE(Value::All(), Value::Null());
  EXPECT_NE(Value::All(), Value::String("ALL"));
  EXPECT_NE(Value::All(), Value::Int64(0));
  EXPECT_EQ(Value::All(), Value::All());
}

TEST(ValueTest, TotalOrderNullAllValues) {
  EXPECT_LT(Value::Null(), Value::All());
  EXPECT_LT(Value::All(), Value::Int64(-100));
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
}

TEST(ValueTest, CrossTypeNumericComparison) {
  EXPECT_EQ(Value::Int64(3), Value::Float64(3.0));
  EXPECT_LT(Value::Int64(3), Value::Float64(3.5));
  EXPECT_LT(Value::Float64(2.5), Value::Int64(3));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(3).Hash(), Value::Float64(3.0).Hash());
  EXPECT_EQ(Value::All().Hash(), Value::All().Hash());
  EXPECT_NE(Value::All().Hash(), Value::Null().Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::All().ToString(), "ALL");
  EXPECT_EQ(Value::Int64(-5).ToString(), "-5");
  EXPECT_EQ(Value::Float64(2.0).ToString(), "2");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::FromDate(DateFromCivil(1996, 6, 1)).ToString(),
            "1996-06-01");
}

TEST(ValueTest, CastWideningAndParsing) {
  EXPECT_EQ(Value::Int64(3).CastTo(DataType::kFloat64)->AsDouble(), 3.0);
  EXPECT_EQ(Value::String("42").CastTo(DataType::kInt64)->int64_value(), 42);
  EXPECT_EQ(Value::String("1996-06-01").CastTo(DataType::kDate)->ToString(),
            "1996-06-01");
  EXPECT_FALSE(Value::String("abc").CastTo(DataType::kInt64).ok());
  // Specials pass through any cast.
  EXPECT_TRUE(Value::All().CastTo(DataType::kInt64)->is_all());
  EXPECT_TRUE(Value::Null().CastTo(DataType::kString)->is_null());
}

TEST(ValueTest, TypeOfSpecialsIsError) {
  EXPECT_FALSE(Value::Null().type().ok());
  EXPECT_FALSE(Value::All().type().ok());
  EXPECT_EQ(Value::Int64(1).type().value(), DataType::kInt64);
}

TEST(ValueTest, ToStringLargeAndNonFiniteFloats) {
  // Regression: the integral-double fast path used to cast to int64 before
  // range-checking — UB for 1e300, NaN, and the infinities.
  EXPECT_EQ(Value::Float64(1e300).ToString(), "1e+300");
  EXPECT_EQ(Value::Float64(-1e300).ToString(), "-1e+300");
  EXPECT_EQ(Value::Float64(std::numeric_limits<double>::infinity()).ToString(),
            "inf");
  const std::string nan_str =
      Value::Float64(std::numeric_limits<double>::quiet_NaN()).ToString();
  EXPECT_TRUE(nan_str == "nan" || nan_str == "-nan") << nan_str;
}

TEST(ValueTest, CastToInt64RejectsOutOfRangeInsteadOfUB) {
  // Regression: llround on NaN or doubles outside [-2^63, 2^63) is UB; these
  // must come back as InvalidArgument, never a garbage integer.
  EXPECT_FALSE(Value::Float64(1e300).CastTo(DataType::kInt64).ok());
  EXPECT_FALSE(Value::Float64(-1e300).CastTo(DataType::kInt64).ok());
  EXPECT_FALSE(Value::Float64(std::numeric_limits<double>::quiet_NaN())
                   .CastTo(DataType::kInt64)
                   .ok());
  // 2^63 is exactly the first out-of-range double; -2^63 is the last legal.
  EXPECT_FALSE(Value::Float64(9223372036854775808.0)
                   .CastTo(DataType::kInt64)
                   .ok());
  EXPECT_EQ(Value::Float64(-9223372036854775808.0)
                .CastTo(DataType::kInt64)
                ->int64_value(),
            std::numeric_limits<int64_t>::min());
  EXPECT_EQ(Value::Float64(2.6).CastTo(DataType::kInt64)->int64_value(), 3);
  // strtoll saturates with ERANGE on overflow; that must be an error, not a
  // silent INT64_MAX.
  EXPECT_FALSE(
      Value::String("99999999999999999999").CastTo(DataType::kInt64).ok());
  EXPECT_EQ(Value::String("-9223372036854775808")
                .CastTo(DataType::kInt64)
                ->int64_value(),
            std::numeric_limits<int64_t>::min());
}

TEST(ValueTest, NanAndNegativeZeroTotalOrderAndHash) {
  // Grouping keys need a total order and a consistent hash over doubles:
  // every NaN is one key (sorted after all numbers), and -0.0 is the same
  // key as +0.0. Without this, sort-based and hash-based cube algorithms
  // partition NaN/zero rows differently.
  const Value nan = Value::Float64(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(nan.Compare(nan), 0);
  EXPECT_EQ(nan, Value::Float64(std::nan("0x1234")));
  EXPECT_EQ(nan.Hash(), Value::Float64(std::nan("0x1234")).Hash());
  EXPECT_LT(Value::Float64(std::numeric_limits<double>::infinity()), nan);
  EXPECT_LT(Value::Int64(std::numeric_limits<int64_t>::max()), nan);

  EXPECT_EQ(Value::Float64(-0.0), Value::Float64(0.0));
  EXPECT_EQ(Value::Float64(-0.0).Hash(), Value::Float64(0.0).Hash());
  EXPECT_EQ(Value::Float64(-0.0).Compare(Value::Int64(0)), 0);
}

TEST(ValueTest, CompareExactBeyondTwo53) {
  // Comparing int64 keys through a double collapses 2^53 and 2^53+1 into
  // one grouping key; the comparison must stay exact.
  const int64_t two53 = int64_t{1} << 53;
  EXPECT_LT(Value::Int64(two53), Value::Int64(two53 + 1));
  EXPECT_NE(Value::Int64(two53 + 1), Value::Float64(9007199254740992.0));
  EXPECT_EQ(Value::Int64(two53), Value::Float64(9007199254740992.0));
  EXPECT_LT(Value::Float64(9007199254740992.0), Value::Int64(two53 + 1));
}

// ------------------------------------------------------------------- Date

TEST(DateTest, CivilRoundTrip) {
  for (int year : {1970, 1996, 2000, 2024, 1900}) {
    for (int month : {1, 2, 6, 12}) {
      Date d = DateFromCivil(year, month, 15);
      CivilDate c = CivilFromDate(d);
      EXPECT_EQ(c.year, year);
      EXPECT_EQ(c.month, month);
      EXPECT_EQ(c.day, 15);
    }
  }
}

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(DateFromCivil(1970, 1, 1).days_since_epoch, 0);
}

TEST(DateTest, ParseAndFormat) {
  Result<Date> d = ParseDate("1996-06-01");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(FormatDate(*d), "1996-06-01");
  EXPECT_TRUE(ParseDate("1996/06/01").ok());
  EXPECT_FALSE(ParseDate("not a date").ok());
  EXPECT_FALSE(ParseDate("1996-13-01").ok());
  EXPECT_FALSE(ParseDate("1996-02-30").ok());
}

TEST(DateTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_TRUE(IsLeapYear(1996));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(1995));
  EXPECT_EQ(DaysInMonth(1996, 2), 29);
  EXPECT_EQ(DaysInMonth(1995, 2), 28);
}

TEST(DateTest, Extraction) {
  Date d = DateFromCivil(1996, 6, 1);  // a Saturday
  EXPECT_EQ(DateYear(d), 1996);
  EXPECT_EQ(DateMonth(d), 6);
  EXPECT_EQ(DateDay(d), 1);
  EXPECT_EQ(DateQuarter(d), 2);
  EXPECT_EQ(DateWeekday(d), 5);
  EXPECT_TRUE(DateIsWeekend(d));
}

TEST(DateTest, IsoWeekStraddlesYears) {
  // The paper's Section 3.6 point: weeks do not nest in years.
  // 1996-01-01 was a Monday — ISO week 1 of 1996.
  EXPECT_EQ(DateIsoWeek(DateFromCivil(1996, 1, 1)), 1);
  EXPECT_EQ(DateIsoWeekYear(DateFromCivil(1996, 1, 1)), 1996);
  // 1995-12-31 (Sunday) belongs to ISO week 52 of 1995.
  EXPECT_EQ(DateIsoWeekYear(DateFromCivil(1995, 12, 31)), 1995);
  // 2020-12-31 (Thursday) belongs to ISO week 53 of 2020; 2021-01-01
  // (Friday) is in the same ISO week of week-year 2020.
  EXPECT_EQ(DateIsoWeek(DateFromCivil(2020, 12, 31)), 53);
  EXPECT_EQ(DateIsoWeekYear(DateFromCivil(2021, 1, 1)), 2020);
  EXPECT_EQ(DateIsoWeek(DateFromCivil(2021, 1, 1)), 53);
}

// -------------------------------------------------------------- str_util

TEST(StrUtilTest, JoinSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ","), "a,b,c");
  EXPECT_EQ(Split("a,b,c", ','), parts);
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
}

TEST(StrUtilTest, TrimAndCase) {
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("CUBE", "cube"));
  EXPECT_FALSE(EqualsIgnoreCase("CUBE", "cub"));
}

TEST(StrUtilTest, Pad) {
  EXPECT_EQ(Pad("ab", 4), "ab  ");
  EXPECT_EQ(Pad("ab", 4, /*right_align=*/true), "  ab");
  EXPECT_EQ(Pad("abcdef", 4), "abcdef");
}

}  // namespace
}  // namespace datacube
