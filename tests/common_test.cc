#include <gtest/gtest.h>

#include "datacube/common/date.h"
#include "datacube/common/result.h"
#include "datacube/common/status.h"
#include "datacube/common/str_util.h"
#include "datacube/common/value.h"

namespace datacube {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kTypeError, StatusCode::kParseError,
        StatusCode::kNotImplemented, StatusCode::kInternal,
        StatusCode::kIOError}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Doubled(Result<int> in) {
  DATACUBE_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(Status::Internal("x")).ok());
}

// ------------------------------------------------------------------ Value

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::All().is_all());
  EXPECT_TRUE(Value::All().is_special());
  EXPECT_EQ(Value::Int64(7).int64_value(), 7);
  EXPECT_DOUBLE_EQ(Value::Float64(2.5).float64_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_TRUE(Value::Bool(true).bool_value());
}

TEST(ValueTest, AllIsDistinctFromNullAndValues) {
  // Section 3.3: ALL is a non-value like NULL but distinct from it.
  EXPECT_NE(Value::All(), Value::Null());
  EXPECT_NE(Value::All(), Value::String("ALL"));
  EXPECT_NE(Value::All(), Value::Int64(0));
  EXPECT_EQ(Value::All(), Value::All());
}

TEST(ValueTest, TotalOrderNullAllValues) {
  EXPECT_LT(Value::Null(), Value::All());
  EXPECT_LT(Value::All(), Value::Int64(-100));
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
}

TEST(ValueTest, CrossTypeNumericComparison) {
  EXPECT_EQ(Value::Int64(3), Value::Float64(3.0));
  EXPECT_LT(Value::Int64(3), Value::Float64(3.5));
  EXPECT_LT(Value::Float64(2.5), Value::Int64(3));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(3).Hash(), Value::Float64(3.0).Hash());
  EXPECT_EQ(Value::All().Hash(), Value::All().Hash());
  EXPECT_NE(Value::All().Hash(), Value::Null().Hash());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::All().ToString(), "ALL");
  EXPECT_EQ(Value::Int64(-5).ToString(), "-5");
  EXPECT_EQ(Value::Float64(2.0).ToString(), "2");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::FromDate(DateFromCivil(1996, 6, 1)).ToString(),
            "1996-06-01");
}

TEST(ValueTest, CastWideningAndParsing) {
  EXPECT_EQ(Value::Int64(3).CastTo(DataType::kFloat64)->AsDouble(), 3.0);
  EXPECT_EQ(Value::String("42").CastTo(DataType::kInt64)->int64_value(), 42);
  EXPECT_EQ(Value::String("1996-06-01").CastTo(DataType::kDate)->ToString(),
            "1996-06-01");
  EXPECT_FALSE(Value::String("abc").CastTo(DataType::kInt64).ok());
  // Specials pass through any cast.
  EXPECT_TRUE(Value::All().CastTo(DataType::kInt64)->is_all());
  EXPECT_TRUE(Value::Null().CastTo(DataType::kString)->is_null());
}

TEST(ValueTest, TypeOfSpecialsIsError) {
  EXPECT_FALSE(Value::Null().type().ok());
  EXPECT_FALSE(Value::All().type().ok());
  EXPECT_EQ(Value::Int64(1).type().value(), DataType::kInt64);
}

// ------------------------------------------------------------------- Date

TEST(DateTest, CivilRoundTrip) {
  for (int year : {1970, 1996, 2000, 2024, 1900}) {
    for (int month : {1, 2, 6, 12}) {
      Date d = DateFromCivil(year, month, 15);
      CivilDate c = CivilFromDate(d);
      EXPECT_EQ(c.year, year);
      EXPECT_EQ(c.month, month);
      EXPECT_EQ(c.day, 15);
    }
  }
}

TEST(DateTest, EpochIsZero) {
  EXPECT_EQ(DateFromCivil(1970, 1, 1).days_since_epoch, 0);
}

TEST(DateTest, ParseAndFormat) {
  Result<Date> d = ParseDate("1996-06-01");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(FormatDate(*d), "1996-06-01");
  EXPECT_TRUE(ParseDate("1996/06/01").ok());
  EXPECT_FALSE(ParseDate("not a date").ok());
  EXPECT_FALSE(ParseDate("1996-13-01").ok());
  EXPECT_FALSE(ParseDate("1996-02-30").ok());
}

TEST(DateTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_TRUE(IsLeapYear(1996));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_FALSE(IsLeapYear(1995));
  EXPECT_EQ(DaysInMonth(1996, 2), 29);
  EXPECT_EQ(DaysInMonth(1995, 2), 28);
}

TEST(DateTest, Extraction) {
  Date d = DateFromCivil(1996, 6, 1);  // a Saturday
  EXPECT_EQ(DateYear(d), 1996);
  EXPECT_EQ(DateMonth(d), 6);
  EXPECT_EQ(DateDay(d), 1);
  EXPECT_EQ(DateQuarter(d), 2);
  EXPECT_EQ(DateWeekday(d), 5);
  EXPECT_TRUE(DateIsWeekend(d));
}

TEST(DateTest, IsoWeekStraddlesYears) {
  // The paper's Section 3.6 point: weeks do not nest in years.
  // 1996-01-01 was a Monday — ISO week 1 of 1996.
  EXPECT_EQ(DateIsoWeek(DateFromCivil(1996, 1, 1)), 1);
  EXPECT_EQ(DateIsoWeekYear(DateFromCivil(1996, 1, 1)), 1996);
  // 1995-12-31 (Sunday) belongs to ISO week 52 of 1995.
  EXPECT_EQ(DateIsoWeekYear(DateFromCivil(1995, 12, 31)), 1995);
  // 2020-12-31 (Thursday) belongs to ISO week 53 of 2020; 2021-01-01
  // (Friday) is in the same ISO week of week-year 2020.
  EXPECT_EQ(DateIsoWeek(DateFromCivil(2020, 12, 31)), 53);
  EXPECT_EQ(DateIsoWeekYear(DateFromCivil(2021, 1, 1)), 2020);
  EXPECT_EQ(DateIsoWeek(DateFromCivil(2021, 1, 1)), 53);
}

// -------------------------------------------------------------- str_util

TEST(StrUtilTest, JoinSplitRoundTrip) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ","), "a,b,c");
  EXPECT_EQ(Split("a,b,c", ','), parts);
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split("a,,c", ',')[1], "");
}

TEST(StrUtilTest, TrimAndCase) {
  EXPECT_EQ(Trim("  hi \t"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("CUBE", "cube"));
  EXPECT_FALSE(EqualsIgnoreCase("CUBE", "cub"));
}

TEST(StrUtilTest, Pad) {
  EXPECT_EQ(Pad("ab", 4), "ab  ");
  EXPECT_EQ(Pad("ab", 4, /*right_align=*/true), "  ab");
  EXPECT_EQ(Pad("abcdef", 4), "abcdef");
}

}  // namespace
}  // namespace datacube
