#include <gtest/gtest.h>

#include <random>

#include "datacube/common/str_util.h"
#include "datacube/cube/materialized_cube.h"
#include "datacube/workload/sales.h"

namespace datacube {
namespace {

CubeSpec SalesCubeSpec(std::vector<AggregateSpec> aggs) {
  CubeSpec spec;
  spec.cube = {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")};
  spec.aggregates = std::move(aggs);
  return spec;
}

std::vector<Value> SalesRow(const char* model, int64_t year, const char* color,
                            int64_t units) {
  return {Value::String(model), Value::Int64(year), Value::String(color),
          Value::Int64(units)};
}

// Recomputes the cube from scratch over the maintained base data and
// compares — the gold standard for every maintenance scenario.
void ExpectMatchesRecompute(const MaterializedCube& cube, const Table& base) {
  Result<CubeResult> fresh = ExecuteCube(base, cube.spec());
  ASSERT_TRUE(fresh.ok());
  Result<Table> maintained = cube.ToTable();
  ASSERT_TRUE(maintained.ok());
  EXPECT_TRUE(maintained->EqualsIgnoringRowOrder(fresh->table))
      << "maintained:\n"
      << maintained->num_rows() << " rows vs fresh " << fresh->table.num_rows();
}

TEST(MaterializedCubeTest, BuildMatchesOneShotOperator) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec = SalesCubeSpec({Agg("sum", "Units", "s"), CountStar("n")});
  auto cube = MaterializedCube::Build(sales, spec);
  ASSERT_TRUE(cube.ok()) << cube.status().ToString();
  ExpectMatchesRecompute(**cube, sales);
}

TEST(MaterializedCubeTest, InsertUpdatesAllPlanes) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec = SalesCubeSpec({Agg("sum", "Units", "s")});
  auto cube = MaterializedCube::Build(sales, spec).value();

  ASSERT_TRUE(cube->ApplyInsert(SalesRow("Chevy", 1994, "black", 10)).ok());
  // Existing cell grows...
  EXPECT_EQ(cube->ValueAt("s", {Value::String("Chevy"), Value::Int64(1994),
                                Value::String("black")})
                .value(),
            Value::Int64(60));
  // ... and so do all its super-aggregates, up to the grand total.
  EXPECT_EQ(cube->ValueAt("s", {Value::String("Chevy"), Value::All(),
                                Value::All()})
                .value(),
            Value::Int64(300));
  EXPECT_EQ(
      cube->ValueAt("s", {Value::All(), Value::All(), Value::All()}).value(),
      Value::Int64(520));
  EXPECT_EQ(cube->maintenance_stats().inserts, 1u);
}

TEST(MaterializedCubeTest, InsertNewGroupCreatesCells) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec = SalesCubeSpec({Agg("sum", "Units", "s")});
  auto cube = MaterializedCube::Build(sales, spec).value();
  ASSERT_TRUE(cube->ApplyInsert(SalesRow("Toyota", 1996, "red", 7)).ok());
  EXPECT_EQ(cube->ValueAt("s", {Value::String("Toyota"), Value::All(),
                                Value::All()})
                .value(),
            Value::Int64(7));
  Table base = Table3SalesTable().value();
  ASSERT_TRUE(base.AppendRow(SalesRow("Toyota", 1996, "red", 7)).ok());
  ExpectMatchesRecompute(*cube, base);
}

TEST(MaterializedCubeTest, DeletableAggregatesDeleteInPlace) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec = SalesCubeSpec({Agg("sum", "Units", "s"), CountStar("n"),
                                 Agg("avg", "Units", "a")});
  auto cube = MaterializedCube::Build(sales, spec).value();
  ASSERT_TRUE(cube->ApplyDelete(SalesRow("Ford", 1994, "white", 10)).ok());
  EXPECT_EQ(
      cube->ValueAt("s", {Value::All(), Value::All(), Value::All()}).value(),
      Value::Int64(500));
  // No recomputes needed: SUM/COUNT/AVG are deletable (Section 6).
  EXPECT_EQ(cube->maintenance_stats().cells_recomputed, 0u);
  Table base(sales.schema());
  for (size_t r = 0; r < sales.num_rows(); ++r) {
    if (sales.GetValue(r, 0) == Value::String("Ford") &&
        sales.GetValue(r, 1) == Value::Int64(1994) &&
        sales.GetValue(r, 2) == Value::String("white")) {
      continue;
    }
    ASSERT_TRUE(base.AppendRow(sales.GetRow(r)).ok());
  }
  ExpectMatchesRecompute(*cube, base);
}

TEST(MaterializedCubeTest, DeleteOfMaxTriggersRecompute) {
  // Section 6: "suppose a delete changes the largest value in the base
  // table. Then 2^N elements of the cube must be recomputed."
  Table sales = Table3SalesTable().value();
  CubeSpec spec = SalesCubeSpec({Agg("max", "Units", "m")});
  auto cube = MaterializedCube::Build(sales, spec).value();
  // 115 (Chevy 1995 white) is the global maximum.
  ASSERT_TRUE(cube->ApplyDelete(SalesRow("Chevy", 1995, "white", 115)).ok());
  EXPECT_GT(cube->maintenance_stats().cells_recomputed, 0u);
  EXPECT_EQ(
      cube->ValueAt("m", {Value::All(), Value::All(), Value::All()}).value(),
      Value::Int64(85));
}

TEST(MaterializedCubeTest, DeleteOfNonMaxSkipsRecompute) {
  // Deleting a value that was not the incumbent max touches no MAX cell.
  Table sales = Table3SalesTable().value();
  CubeSpec spec = SalesCubeSpec({Agg("max", "Units", "m")});
  auto cube = MaterializedCube::Build(sales, spec).value();
  ASSERT_TRUE(cube->ApplyDelete(SalesRow("Ford", 1994, "white", 10)).ok());
  // The (Ford,1994,white) cell itself empties (erased), and 10 was the max
  // within some fine cells — but after the cell is erased the remaining
  // planes never had 10 as incumbent, so no recompute is required.
  EXPECT_EQ(cube->maintenance_stats().cells_recomputed, 0u);
  EXPECT_EQ(
      cube->ValueAt("m", {Value::All(), Value::All(), Value::All()}).value(),
      Value::Int64(115));
}

TEST(MaterializedCubeTest, MaxInsertShortCircuit) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec = SalesCubeSpec({Agg("max", "Units", "m")});
  auto cube = MaterializedCube::Build(sales, spec).value();
  // Inserting a losing value into an existing finest cell: it loses at the
  // core and the paper's rule skips every coarser plane.
  uint64_t skipped_before = cube->maintenance_stats().cells_skipped;
  ASSERT_TRUE(cube->ApplyInsert(SalesRow("Chevy", 1994, "black", 1)).ok());
  EXPECT_GE(cube->maintenance_stats().cells_skipped - skipped_before, 7u);
  Table base = Table3SalesTable().value();
  ASSERT_TRUE(base.AppendRow(SalesRow("Chevy", 1994, "black", 1)).ok());
  ExpectMatchesRecompute(*cube, base);
}

TEST(MaterializedCubeTest, DeleteUnknownRowFails) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec = SalesCubeSpec({Agg("sum", "Units", "s")});
  auto cube = MaterializedCube::Build(sales, spec).value();
  EXPECT_FALSE(cube->ApplyDelete(SalesRow("Chevy", 1994, "black", 999)).ok());
  // Deleting the same row twice: second time fails.
  ASSERT_TRUE(cube->ApplyDelete(SalesRow("Chevy", 1994, "black", 50)).ok());
  EXPECT_FALSE(cube->ApplyDelete(SalesRow("Chevy", 1994, "black", 50)).ok());
}

TEST(MaterializedCubeTest, PointAddressingAndErrors) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec = SalesCubeSpec({Agg("sum", "Units", "s")});
  auto cube = MaterializedCube::Build(sales, spec).value();
  // cube.v(:i, :j) — Section 4's point addressing.
  EXPECT_EQ(cube->ValueAt("s", {Value::String("Ford"), Value::Int64(1995),
                                Value::All()})
                .value(),
            Value::Int64(160));
  EXPECT_FALSE(cube->ValueAt("nope", {Value::All(), Value::All(), Value::All()})
                   .ok());
  EXPECT_FALSE(cube->ValueAt("s", {Value::All()}).ok());  // arity
  EXPECT_FALSE(cube->ValueAt("s", {Value::String("DeLorean"), Value::All(),
                                   Value::All()})
                   .ok());  // empty cell
}

TEST(MaterializedCubeTest, PercentOfTotal) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec = SalesCubeSpec({Agg("sum", "Units", "s")});
  auto cube = MaterializedCube::Build(sales, spec).value();
  Result<double> pct = cube->PercentOfTotal(
      "s", {Value::String("Chevy"), Value::All(), Value::All()});
  ASSERT_TRUE(pct.ok());
  EXPECT_NEAR(*pct, 290.0 / 510.0, 1e-12);
}

TEST(MaterializedCubeTest, RandomMaintenanceStreamMatchesRecompute) {
  // Property: any interleaving of inserts and deletes leaves the maintained
  // cube equal to a from-scratch recompute — for a mixed aggregate list
  // covering deletable and delete-holistic functions.
  std::mt19937_64 rng(2024);
  Table base = Table3SalesTable().value();
  CubeSpec spec = SalesCubeSpec({Agg("sum", "Units", "s"), CountStar("n"),
                                 Agg("max", "Units", "mx"),
                                 Agg("min", "Units", "mn")});
  auto cube = MaterializedCube::Build(base, spec).value();

  const char* models[] = {"Chevy", "Ford", "Toyota"};
  const char* colors[] = {"black", "white", "red"};
  std::vector<std::vector<Value>> live;
  for (size_t r = 0; r < base.num_rows(); ++r) live.push_back(base.GetRow(r));

  for (int step = 0; step < 120; ++step) {
    bool do_insert = live.empty() || rng() % 3 != 0;
    if (do_insert) {
      std::vector<Value> row =
          SalesRow(models[rng() % 3], 1994 + static_cast<int64_t>(rng() % 3),
                   colors[rng() % 3], static_cast<int64_t>(rng() % 200));
      ASSERT_TRUE(cube->ApplyInsert(row).ok());
      ASSERT_TRUE(base.AppendRow(row).ok());
      live.push_back(row);
    } else {
      size_t victim = rng() % live.size();
      ASSERT_TRUE(cube->ApplyDelete(live[victim]).ok());
      // Rebuild `base` without one occurrence of the victim row.
      Table next(base.schema());
      bool removed = false;
      for (size_t r = 0; r < base.num_rows(); ++r) {
        std::vector<Value> row = base.GetRow(r);
        if (!removed && row == live[victim]) {
          removed = true;
          continue;
        }
        ASSERT_TRUE(next.AppendRow(row).ok());
      }
      ASSERT_TRUE(removed);
      base = std::move(next);
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
    if (step % 30 == 29) ExpectMatchesRecompute(*cube, base);
  }
  ExpectMatchesRecompute(*cube, base);
  EXPECT_EQ(cube->num_base_rows(), live.size());
}

TEST(MaterializedCubeTest, ApplyUpdateIsDeletePlusInsert) {
  // Section 6: "update is just delete plus insert".
  Table sales = Table3SalesTable().value();
  CubeSpec spec = SalesCubeSpec({Agg("sum", "Units", "s"), CountStar("n")});
  auto cube = MaterializedCube::Build(sales, spec).value();
  ASSERT_TRUE(cube->ApplyUpdate(SalesRow("Chevy", 1994, "black", 50),
                                SalesRow("Chevy", 1994, "black", 60))
                  .ok());
  EXPECT_EQ(cube->ValueAt("s", {Value::String("Chevy"), Value::Int64(1994),
                                Value::String("black")})
                .value(),
            Value::Int64(60));
  EXPECT_EQ(
      cube->ValueAt("s", {Value::All(), Value::All(), Value::All()}).value(),
      Value::Int64(520));
  EXPECT_EQ(
      cube->ValueAt("n", {Value::All(), Value::All(), Value::All()}).value(),
      Value::Int64(8));  // row count unchanged
  // Updating an absent row fails and leaves the cube untouched.
  EXPECT_FALSE(cube->ApplyUpdate(SalesRow("Chevy", 1994, "black", 999),
                                 SalesRow("Chevy", 1994, "black", 1))
                   .ok());
  EXPECT_EQ(
      cube->ValueAt("s", {Value::All(), Value::All(), Value::All()}).value(),
      Value::Int64(520));
}

TEST(MaterializedCubeTest, ChangeListenerReportsTouchedCells) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec = SalesCubeSpec({Agg("sum", "Units", "s")});
  auto cube = MaterializedCube::Build(sales, spec).value();
  int created = 0, updated = 0, erased = 0;
  cube->SetChangeListener([&](const MaterializedCube::CellChange& change) {
    switch (change.op) {
      case MaterializedCube::CellChange::Op::kCreated:
        ++created;
        break;
      case MaterializedCube::CellChange::Op::kUpdated:
        ++updated;
        break;
      case MaterializedCube::CellChange::Op::kErased:
        ++erased;
        break;
    }
    EXPECT_EQ(change.key.size(), 3u);
  });

  // Insert into an existing fine cell: all 8 planes already exist.
  ASSERT_TRUE(cube->ApplyInsert(SalesRow("Chevy", 1994, "black", 5)).ok());
  EXPECT_EQ(created, 0);
  EXPECT_EQ(updated, 8);

  // Insert a brand-new model: the 4 planes naming it are created.
  ASSERT_TRUE(cube->ApplyInsert(SalesRow("Tesla", 1994, "black", 5)).ok());
  EXPECT_EQ(created, 4);

  // Deleting it erases those 4 cells again.
  created = updated = erased = 0;
  ASSERT_TRUE(cube->ApplyDelete(SalesRow("Tesla", 1994, "black", 5)).ok());
  EXPECT_EQ(erased, 4);
  EXPECT_EQ(updated, 4);

  // Clearing the listener stops notifications.
  cube->SetChangeListener(nullptr);
  created = updated = erased = 0;
  ASSERT_TRUE(cube->ApplyInsert(SalesRow("Ford", 1994, "black", 1)).ok());
  EXPECT_EQ(created + updated + erased, 0);
}

TEST(MaterializedCubeTest, DecorationsSurviveMaintenance) {
  // Decorations flow through ToTable after maintenance.
  Table sales = Table3SalesTable().value();
  CubeSpec spec;
  spec.cube = {GroupCol("Model"), GroupCol("Year")};
  spec.aggregates = {Agg("sum", "Units", "s")};
  spec.decorations = {Decoration{
      Expr::Call("upper", {Expr::Column("Model")}), "MODEL", /*det=*/0b01}};
  auto cube = MaterializedCube::Build(sales, spec).value();
  ASSERT_TRUE(cube->ApplyInsert({Value::String("Chevy"), Value::Int64(1996),
                                 Value::String("red"), Value::Int64(5)})
                  .ok());
  Result<Table> t = cube->ToTable();
  ASSERT_TRUE(t.ok());
  // Columns: Model, Year, MODEL (decoration), s.
  for (size_t r = 0; r < t->num_rows(); ++r) {
    Value model = t->GetValue(r, 0);
    Value decorated = t->GetValue(r, 2);
    if (model.is_all()) {
      EXPECT_TRUE(decorated.is_null());
    } else {
      EXPECT_EQ(decorated, Value::String(ToUpper(model.string_value())));
    }
  }
}

TEST(MaterializedCubeTest, RollupShapedCubeMaintenance) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec;
  spec.rollup = {GroupCol("Model"), GroupCol("Year")};
  spec.aggregates = {Agg("sum", "Units", "s")};
  auto cube = MaterializedCube::Build(sales, spec).value();
  ASSERT_TRUE(cube->ApplyInsert(SalesRow("Ford", 1994, "red", 40)).ok());
  EXPECT_EQ(cube->ValueAt("s", {Value::String("Ford"), Value::Int64(1994)})
                .value(),
            Value::Int64(100));
  Table base = Table3SalesTable().value();
  ASSERT_TRUE(base.AppendRow(SalesRow("Ford", 1994, "red", 40)).ok());
  ExpectMatchesRecompute(*cube, base);
}

}  // namespace
}  // namespace datacube
