// Tests for the columnar execution core: bit-packed key encoding against
// the legacy Value-vector masking (including NULL-vs-ALL), the multi-word
// key fallback past 64 bits, planning invariance under encoding, the
// use_legacy_cellmap escape hatch, and the zero-per-cell-heap-allocation
// guarantee of the fixed-slot state layout.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <vector>

#include "datacube/cube/columnar.h"
#include "datacube/cube/cube_internal.h"
#include "datacube/cube/cube_operator.h"
#include "datacube/workload/sales.h"

namespace datacube {
namespace cube_internal {
namespace {

// A small table exercising every key edge the codec reserves codes for:
// NULLs, a literal ALL value in the data, and plain concrete values.
Table EdgeInput() {
  std::vector<Field> fields;
  fields.push_back(Field{"d0", DataType::kString, /*nullable=*/true,
                         /*allow_all=*/true});
  fields.push_back(Field{"d1", DataType::kInt64, /*nullable=*/true,
                         /*allow_all=*/true});
  fields.push_back(Field{"x", DataType::kInt64});
  Table t{Schema{std::move(fields)}};
  auto add = [&t](Value d0, Value d1, int64_t x) {
    EXPECT_TRUE(t.AppendRow({std::move(d0), std::move(d1), Value::Int64(x)})
                    .ok());
  };
  add(Value::String("a"), Value::Int64(1), 10);
  add(Value::String("b"), Value::Int64(2), 20);
  add(Value::Null(), Value::Int64(1), 30);
  add(Value::String("a"), Value::Null(), 40);
  add(Value::All(), Value::Int64(3), 50);  // literal ALL in the data
  add(Value::Null(), Value::Null(), 60);
  add(Value::String("c"), Value::Int64(2), 70);
  return t;
}

CubeSpec TwoDimSumSpec() {
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1")};
  spec.aggregates = {Agg("sum", "x", "s")};
  return spec;
}

// ------------------------------------------------- masking equivalence

TEST(EncodedKeyTest, MaskedKeysAgreeWithLegacyOnRandomRowsAndSets) {
  Table input = EdgeInput();
  CubeSpec spec = TwoDimSumSpec();
  auto ctx = BuildCubeContext(input, spec);
  ASSERT_TRUE(ctx.ok()) << ctx.status().ToString();
  auto cc = BuildColumnarContext(ctx.value());
  ASSERT_TRUE(cc.ok()) << cc.status().ToString();

  std::mt19937_64 rng(2026);
  std::uniform_int_distribution<size_t> row_dist(0, input.num_rows() - 1);
  std::uniform_int_distribution<size_t> set_dist(0,
                                                 ctx.value().sets.size() - 1);
  for (int trial = 0; trial < 500; ++trial) {
    size_t row = row_dist(rng);
    GroupingSet set = ctx.value().sets[set_dist(rng)];
    // Legacy: Value-vector masking. Columnar: bitwise AND, then decode.
    std::vector<Value> legacy = ctx.value().MaskedKey(row, set);
    std::vector<uint64_t> mask = cc.value().codec.MaskForSet(set);
    std::vector<uint64_t> key(cc.value().words);
    for (size_t w = 0; w < cc.value().words; ++w) {
      key[w] = cc.value().RowKey(row)[w] & mask[w];
    }
    std::vector<Value> decoded = cc.value().codec.DecodeKey(key.data());
    ASSERT_EQ(legacy.size(), decoded.size());
    for (size_t k = 0; k < legacy.size(); ++k) {
      EXPECT_EQ(legacy[k].Compare(decoded[k]), 0)
          << "row=" << row << " set=" << set << " k=" << k;
    }
  }
}

TEST(EncodedKeyTest, ProjectionAgreesWithLegacyProjectKey) {
  Table input = EdgeInput();
  CubeSpec spec = TwoDimSumSpec();
  auto ctx = BuildCubeContext(input, spec);
  ASSERT_TRUE(ctx.ok());
  auto cc = BuildColumnarContext(ctx.value());
  ASSERT_TRUE(cc.ok());

  // Project every row's full key onto every coarser set both ways.
  for (size_t row = 0; row < input.num_rows(); ++row) {
    std::vector<Value> full = ctx.value().MaskedKey(row, FullSet(2));
    for (GroupingSet set : ctx.value().sets) {
      std::vector<Value> legacy = ctx.value().ProjectKey(full, set);
      std::vector<uint64_t> mask = cc.value().codec.MaskForSet(set);
      std::vector<uint64_t> key(cc.value().words);
      for (size_t w = 0; w < cc.value().words; ++w) {
        key[w] = cc.value().RowKey(row)[w] & mask[w];
      }
      std::vector<Value> decoded = cc.value().codec.DecodeKey(key.data());
      for (size_t k = 0; k < legacy.size(); ++k) {
        EXPECT_EQ(legacy[k].Compare(decoded[k]), 0);
      }
    }
  }
}

TEST(EncodedKeyTest, NullAndAllStayDistinct) {
  Table input = EdgeInput();
  CubeSpec spec = TwoDimSumSpec();
  auto ctx = BuildCubeContext(input, spec);
  ASSERT_TRUE(ctx.ok());
  auto cc = BuildColumnarContext(ctx.value());
  ASSERT_TRUE(cc.ok());
  const KeyCodec& codec = cc.value().codec;
  // NULL groups must not collapse into the ALL plane: distinct codes, and
  // both decode back to what they were.
  for (size_t k = 0; k < 2; ++k) {
    ASSERT_TRUE(codec.CodeOf(k, Value::Null()).has_value());
    EXPECT_EQ(*codec.CodeOf(k, Value::Null()), KeyCodec::kNullCode);
    EXPECT_EQ(*codec.CodeOf(k, Value::All()), KeyCodec::kAllCode);
  }
  // Row 2 has NULL in d0; masking away d1 keeps the NULL.
  std::vector<uint64_t> mask = codec.MaskForSet(0b01);
  std::vector<uint64_t> key(cc.value().words);
  for (size_t w = 0; w < cc.value().words; ++w) {
    key[w] = cc.value().RowKey(2)[w] & mask[w];
  }
  std::vector<Value> decoded = codec.DecodeKey(key.data());
  EXPECT_TRUE(decoded[0].is_null());
  EXPECT_TRUE(decoded[1].is_all());
}

// --------------------------------------------------- multi-word fallback

TEST(EncodedKeyTest, WideKeysFallBackToMultipleWords) {
  // 8 dimensions x ~300 distinct values: 9 bits per field, 72 bits total,
  // so keys must span two words (no field straddles a word boundary).
  Table input = GenerateCubeInput({.num_rows = 1500,
                                   .num_dims = 8,
                                   .cardinality = 300,
                                   .seed = 9})
                    .value();
  CubeSpec spec;
  for (int d = 0; d < 8; ++d) {
    spec.group_by.push_back(GroupCol("d" + std::to_string(d)));
  }
  spec.aggregates = {Agg("sum", "x", "s"), CountStar("n")};
  auto ctx = BuildCubeContext(input, spec);
  ASSERT_TRUE(ctx.ok());
  auto cc = BuildColumnarContext(ctx.value());
  ASSERT_TRUE(cc.ok());
  ASSERT_GT(cc.value().codec.total_bits(), 64u);
  ASSERT_GE(cc.value().words, 2u);

  // The multi-word path must produce the same relation as the legacy core.
  CubeOptions columnar;
  columnar.sort_result = true;
  CubeOptions legacy = columnar;
  legacy.use_legacy_cellmap = true;
  auto a = ExecuteCube(input, spec, columnar);
  auto b = ExecuteCube(input, spec, legacy);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().table.num_rows(), b.value().table.num_rows());
  ASSERT_EQ(a.value().table.num_columns(), b.value().table.num_columns());
  for (size_t r = 0; r < a.value().table.num_rows(); ++r) {
    for (size_t c = 0; c < a.value().table.num_columns(); ++c) {
      EXPECT_EQ(a.value().table.GetValue(r, c).Compare(
                    b.value().table.GetValue(r, c)),
                0)
          << "row " << r << " col " << c;
    }
  }
}

// ------------------------------------------------ planning invariance

TEST(EncodedKeyTest, CardinalitiesMatchLegacySoPlansAreUnchanged) {
  Table input = EdgeInput();
  CubeSpec spec = TwoDimSumSpec();
  auto ctx = BuildCubeContext(input, spec);
  ASSERT_TRUE(ctx.ok());
  auto cc = BuildColumnarContext(ctx.value());
  ASSERT_TRUE(cc.ok());
  std::vector<size_t> legacy = KeyCardinalities(ctx.value());
  std::vector<size_t> columnar = cc.value().codec.Cardinalities();
  ASSERT_EQ(legacy, columnar);

  LatticePlan a = PlanLattice(ctx.value().sets, legacy);
  LatticePlan b = PlanLattice(ctx.value().sets, columnar);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].set, b.nodes[i].set);
    EXPECT_EQ(a.nodes[i].parent, b.nodes[i].parent);
    EXPECT_DOUBLE_EQ(a.nodes[i].est_cells, b.nodes[i].est_cells);
  }
}

// -------------------------------------------------- legacy escape hatch

TEST(LegacyCellMapTest, OptionKnobMatchesColumnarOnEveryAlgorithm) {
  Table input = GenerateCubeInput({.num_rows = 400,
                                   .num_dims = 3,
                                   .cardinality = 5,
                                   .seed = 123})
                    .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1"), GroupCol("d2")};
  // Integer-exact aggregates so legacy-vs-columnar must match bit-for-bit
  // regardless of fold order.
  spec.aggregates = {Agg("sum", "x", "s"), CountStar("n"),
                     Agg("min", "x", "lo"), Agg("max", "x", "hi")};
  for (CubeAlgorithm alg :
       {CubeAlgorithm::kNaive2N, CubeAlgorithm::kUnionGroupBy,
        CubeAlgorithm::kFromCore, CubeAlgorithm::kArrayCube,
        CubeAlgorithm::kSortRollup, CubeAlgorithm::kSortFromCore}) {
    CubeOptions columnar;
    columnar.algorithm = alg;
    columnar.sort_result = true;
    CubeOptions legacy = columnar;
    legacy.use_legacy_cellmap = true;
    auto a = ExecuteCube(input, spec, columnar);
    auto b = ExecuteCube(input, spec, legacy);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a.value().table.num_rows(), b.value().table.num_rows());
    for (size_t r = 0; r < a.value().table.num_rows(); ++r) {
      for (size_t c = 0; c < a.value().table.num_columns(); ++c) {
        ASSERT_EQ(a.value()
                      .table.GetValue(r, c)
                      .Compare(b.value().table.GetValue(r, c)),
                  0)
            << "algorithm " << static_cast<int>(alg) << " row " << r;
      }
    }
  }
}

TEST(LegacyCellMapTest, EnvVarForcesLegacyCore) {
  Table input = GenerateCubeInput({.num_rows = 100,
                                   .num_dims = 2,
                                   .cardinality = 4,
                                   .seed = 5})
                    .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1")};
  spec.aggregates = {Agg("sum", "x", "s")};

  // Columnar default: the flat stores report arena bytes.
  auto columnar = ExecuteCube(input, spec);
  ASSERT_TRUE(columnar.ok());
  EXPECT_GT(columnar.value().stats.arena_bytes, 0u);

  // Env override: legacy CellMap, which has no arenas at all.
  ASSERT_EQ(setenv("DATACUBE_LEGACY_CELLS", "1", /*overwrite=*/1), 0);
  auto legacy = ExecuteCube(input, spec);
  ASSERT_EQ(unsetenv("DATACUBE_LEGACY_CELLS"), 0);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy.value().stats.arena_bytes, 0u);
  // "0" means off, same as unset.
  ASSERT_EQ(setenv("DATACUBE_LEGACY_CELLS", "0", /*overwrite=*/1), 0);
  auto off = ExecuteCube(input, spec);
  ASSERT_EQ(unsetenv("DATACUBE_LEGACY_CELLS"), 0);
  ASSERT_TRUE(off.ok());
  EXPECT_GT(off.value().stats.arena_bytes, 0u);
}

// -------------------------------------------- zero-heap-state guarantee

TEST(InlineStateTest, DistributiveAndAlgebraicQueriesNeverHeapAllocate) {
  Table input = GenerateCubeInput({.num_rows = 500,
                                   .num_dims = 3,
                                   .cardinality = 6,
                                   .seed = 31})
                    .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1"), GroupCol("d2")};
  spec.aggregates = {Agg("sum", "x", "s"),      CountStar("n"),
                     Agg("min", "x", "lo"),     Agg("max", "x", "hi"),
                     Agg("avg", "y", "mean"),   Agg("var_pop", "y", "var")};
  auto r = ExecuteCube(input, spec);
  ASSERT_TRUE(r.ok());
  // Every state is inline in the arena: not one per-cell heap allocation.
  EXPECT_EQ(r.value().stats.heap_state_allocs, 0u);
  EXPECT_GT(r.value().stats.arena_bytes, 0u);
  EXPECT_GT(r.value().stats.hash_probes, 0u);
}

TEST(InlineStateTest, HolisticAggregatesUseCompatSlots) {
  Table input = GenerateCubeInput({.num_rows = 200,
                                   .num_dims = 2,
                                   .cardinality = 4,
                                   .seed = 7})
                    .value();
  CubeSpec spec;
  spec.cube = {GroupCol("d0"), GroupCol("d1")};
  spec.aggregates = {Agg("sum", "x", "s"), Agg("median", "x", "med")};
  auto r = ExecuteCube(input, spec);
  ASSERT_TRUE(r.ok());
  // The holistic median keeps an AggStatePtr compatibility slot per cell.
  EXPECT_GT(r.value().stats.heap_state_allocs, 0u);
}

}  // namespace
}  // namespace cube_internal
}  // namespace datacube
