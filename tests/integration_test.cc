// End-to-end integration tests: the paper's own example queries through the
// full stack (CSV → SQL → cube → reports), cross-module flows, and edge
// cases that span layers.

#include <gtest/gtest.h>

#include <random>

#include "datacube/cube/cube_operator.h"
#include "datacube/cube/materialized_cube.h"
#include "datacube/olap/crosstab.h"
#include "datacube/olap/pivot_table.h"
#include "datacube/olap/window.h"
#include "datacube/sql/engine.h"
#include "datacube/sql/parser.h"
#include "datacube/table/csv.h"
#include "datacube/table/print.h"
#include "datacube/workload/benchmark_queries.h"
#include "datacube/workload/sales.h"
#include "datacube/workload/weather.h"

namespace datacube {
namespace {

Table MustSql(const std::string& sql, const sql::Catalog& catalog,
              const sql::EngineOptions& options = {}) {
  Result<Table> r = sql::ExecuteSql(sql, catalog, options);
  EXPECT_TRUE(r.ok()) << sql << "\n  -> " << r.status().ToString();
  return r.ok() ? std::move(r).value() : Table{};
}

// ------------------------------------------------- paper example queries

class PaperQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.Register("Sales", Table3SalesTable().value()).ok());
    ASSERT_TRUE(catalog_.Register("Fig4", Figure4SalesTable().value()).ok());
    ASSERT_TRUE(
        catalog_
            .Register("Weather", GenerateWeather({.num_rows = 300,
                                                  .num_days = 6,
                                                  .seed = 21})
                                     .value())
            .ok());
  }
  sql::Catalog catalog_;
};

TEST_F(PaperQueryTest, Section1AvgTemp) {
  // SELECT AVG(Temp) FROM Weather;
  Table t = MustSql("SELECT AVG(Temp) FROM Weather", catalog_);
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.GetValue(0, 0).is_numeric());
}

TEST_F(PaperQueryTest, Section1CountDistinctTime) {
  // SELECT COUNT(DISTINCT Time) FROM Weather;
  Table t = MustSql("SELECT COUNT(DISTINCT Time) FROM Weather", catalog_);
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.GetValue(0, 0), Value::Int64(6));  // six distinct days
}

TEST_F(PaperQueryTest, Section1GroupByTimeAltitude) {
  // SELECT Time, Altitude, AVG(Temp) FROM Weather GROUP BY Time, Altitude;
  Table t = MustSql(
      "SELECT Time, Altitude, AVG(Temp) FROM Weather GROUP BY Time, Altitude",
      catalog_);
  EXPECT_GT(t.num_rows(), 0u);
  EXPECT_EQ(t.num_columns(), 3u);
}

TEST_F(PaperQueryTest, Section2HistogramQuery) {
  // SELECT day, nation, MAX(Temp) FROM Weather
  // GROUP BY Day(Time) AS day, Nation(Latitude, Longitude) AS nation;
  Table t = MustSql(
      "SELECT day, nation, MAX(Temp) FROM Weather "
      "GROUP BY Day(Time) AS day, Nation(Latitude, Longitude) AS nation",
      catalog_);
  EXPECT_GT(t.num_rows(), 0u);
  // Every nation value resolves (stations sit inside gazetteer boxes).
  for (size_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_FALSE(t.GetValue(r, 1).is_null());
  }
}

TEST_F(PaperQueryTest, Section2UnionOfGroupBysEqualsRollup) {
  // The paper builds Table 5.a as a 4-way UNION of GROUP BYs; our ROLLUP
  // must produce the same relation.
  Table unioned = MustSql(
      "SELECT Model, Year, Color, SUM(Units) AS Units FROM Sales "
      "WHERE Model = 'Chevy' GROUP BY Model, Year, Color",
      catalog_);
  Table by_my = MustSql(
      "SELECT Model, Year, SUM(Units) FROM Sales WHERE Model = 'Chevy' "
      "GROUP BY Model, Year",
      catalog_);
  Table by_m = MustSql(
      "SELECT Model, SUM(Units) FROM Sales WHERE Model = 'Chevy' "
      "GROUP BY Model",
      catalog_);
  Table rollup = MustSql(
      "SELECT Model, Year, Color, SUM(Units) AS Units FROM Sales "
      "WHERE Model = 'Chevy' GROUP BY ROLLUP Model, Year, Color",
      catalog_);
  // Row counts: 4 detail + 2 year + 1 model + 1 grand = 8.
  EXPECT_EQ(rollup.num_rows(),
            unioned.num_rows() + by_my.num_rows() + by_m.num_rows() + 1);
}

TEST_F(PaperQueryTest, Section3WeatherCube) {
  // SELECT day, nation, MAX(Temp) FROM Weather GROUP BY CUBE ...
  Table t = MustSql(
      "SELECT day, nation, MAX(Temp) AS max_temp FROM Weather "
      "GROUP BY CUBE Day(Time) AS day, "
      "Nation(Latitude, Longitude) AS nation",
      catalog_);
  // Exactly one (ALL, ALL) row; every (day, ALL) and (ALL, nation) present.
  int grand = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.GetValue(r, 0).is_all() && t.GetValue(r, 1).is_all()) ++grand;
  }
  EXPECT_EQ(grand, 1);
}

TEST_F(PaperQueryTest, Section4PercentOfTotal) {
  // The §4 percent-of-total, spelled with a scalar subquery in the paper;
  // here with the computed total inline.
  Table t = MustSql(
      "SELECT Model, Year, Color, SUM(Units), SUM(Units) / 510 AS pct "
      "FROM Sales WHERE Model IN ('Ford', 'Chevy') "
      "GROUP BY CUBE Model, Year, Color",
      catalog_);
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.GetValue(r, 0).is_all() && t.GetValue(r, 1).is_all() &&
        t.GetValue(r, 2).is_all()) {
      EXPECT_NEAR(t.GetValue(r, 4).AsDouble(), 1.0, 1e-12);
    }
  }
}

TEST_F(PaperQueryTest, OrderByAggregateNotInSelect) {
  Table t = MustSql(
      "SELECT Model FROM Sales GROUP BY Model ORDER BY SUM(Units) DESC",
      catalog_);
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetValue(0, 0), Value::String("Chevy"));  // 290 > 220
  EXPECT_EQ(t.GetValue(1, 0), Value::String("Ford"));
}

TEST_F(PaperQueryTest, OrderByAliasAndHavingCombination) {
  Table t = MustSql(
      "SELECT Color, SUM(Units) AS total FROM Sales "
      "GROUP BY CUBE Color HAVING SUM(Units) > 100 "
      "ORDER BY total DESC LIMIT 2",
      catalog_);
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_TRUE(t.GetValue(0, 0).is_all());  // grand total 510 first
  EXPECT_EQ(t.GetValue(0, 1), Value::Int64(510));
  EXPECT_EQ(t.GetValue(1, 0), Value::String("black"));  // 270 > 240? no:
  // black = 50+85+50+85 = 270, white = 40+115+10+75 = 240.
  EXPECT_EQ(t.GetValue(1, 1), Value::Int64(270));
}

// ------------------------------------------------------ CSV round trips

TEST(CsvIntegrationTest, CubeResultSurvivesCsvRoundTrip) {
  Table sales = Figure4SalesTable().value();
  Table cube =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units", "Units")})
          ->table;
  std::string csv = WriteCsvString(cube);
  // ALL renders as the string "ALL"; reading back yields string columns
  // where ALL appeared — the relational content is preserved.
  Result<Table> back = ReadCsvString(csv);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), cube.num_rows());
  int all_rows = 0;
  for (size_t r = 0; r < back->num_rows(); ++r) {
    if (back->GetValue(r, 0) == Value::String("ALL")) ++all_rows;
  }
  EXPECT_EQ(all_rows, 16);  // 48 cells, 16 with Model = ALL
}

TEST(CsvIntegrationTest, LoadCsvQueryViaSql) {
  std::string csv =
      "city,temp\n"
      "sf,15\n"
      "sf,18\n"
      "nyc,25\n";
  sql::Catalog catalog;
  ASSERT_TRUE(catalog.Register("obs", ReadCsvString(csv).value()).ok());
  Table t = MustSql(
      "SELECT city, AVG(temp) AS avg_temp FROM obs GROUP BY CUBE city "
      "ORDER BY 1",
      catalog);
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_TRUE(t.GetValue(0, 0).is_all());
  EXPECT_NEAR(t.GetValue(0, 1).AsDouble(), 58.0 / 3, 1e-9);
}

// ------------------------------------------ cross-layer report pipeline

TEST(ReportPipelineTest, SqlToCrossTab) {
  sql::Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", Table3SalesTable().value()).ok());
  Table cube = MustSql(
      "SELECT Year, Color, SUM(Units) AS Units FROM Sales "
      "GROUP BY CUBE Year, Color",
      catalog);
  Result<std::string> xtab = FormatCrossTab(cube, 1, 0, 2);
  ASSERT_TRUE(xtab.ok());
  EXPECT_NE(xtab->find("510"), std::string::npos);
}

TEST(ReportPipelineTest, PivotMatchesCubeTotals) {
  // The relational pivot and the cube agree on every (model, year) total.
  Table sales = Table3SalesTable().value();
  Table pivot = PivotToTable(sales, {"Model"}, "Year", "Units").value();
  Table cube = Cube(sales, {GroupCol("Model"), GroupCol("Year")},
                    {Agg("sum", "Units", "s")})
                   ->table;
  for (size_t r = 0; r < pivot.num_rows(); ++r) {
    Value model = pivot.GetValue(r, 0);
    // Column 3 is the row total == (model, ALL) in the cube.
    for (size_t q = 0; q < cube.num_rows(); ++q) {
      if (cube.GetValue(q, 0) == model && cube.GetValue(q, 1).is_all()) {
        EXPECT_EQ(pivot.GetValue(r, 3), cube.GetValue(q, 2));
      }
    }
  }
}

// ------------------------------------------- window functions over cubes

TEST(WindowIntegrationTest, RatioToTotalOverCubeSlice) {
  // Red Brick Ratio_To_Total over the cube's finest cells reproduces the
  // §4 percent-of-total.
  Table sales = Table3SalesTable().value();
  CubeSpec spec;
  spec.group_by = {GroupCol("Model")};
  spec.aggregates = {Agg("sum", "Units", "s")};
  Table by_model = ExecuteCube(sales, spec)->table;
  Table with_share = AddRatioToTotal(by_model, 1, "share").value();
  double total_share = 0;
  for (size_t r = 0; r < with_share.num_rows(); ++r) {
    total_share += with_share.GetValue(r, 2).AsDouble();
  }
  EXPECT_NEAR(total_share, 1.0, 1e-12);
}

// --------------------------------------- maintenance + SQL consistency

TEST(MaintenanceIntegrationTest, MaintainedCubeServesSameAnswersAsSql) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec;
  spec.cube = {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")};
  spec.aggregates = {Agg("sum", "Units", "Units")};
  auto cube = MaterializedCube::Build(sales, spec).value();
  ASSERT_TRUE(cube->ApplyInsert({Value::String("Chevy"), Value::Int64(1994),
                                 Value::String("red"), Value::Int64(25)})
                  .ok());

  Table base = Table3SalesTable().value();
  ASSERT_TRUE(base.AppendRow({Value::String("Chevy"), Value::Int64(1994),
                              Value::String("red"), Value::Int64(25)})
                  .ok());
  sql::Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", base).ok());
  Table via_sql = MustSql(
      "SELECT Model, Year, Color, SUM(Units) AS Units FROM Sales "
      "GROUP BY CUBE Model, Year, Color",
      catalog);
  Result<Table> maintained = cube->ToTable();
  ASSERT_TRUE(maintained.ok());
  EXPECT_TRUE(maintained->EqualsIgnoringRowOrder(via_sql));
}

// ---------------------------------------------- Table 2 corpus sanity

TEST(BenchmarkCorpusTest, EveryQueryParsesAndCountsMatchPaper) {
  for (const BenchmarkSuite& suite : Table2Suites()) {
    int aggregates = 0, group_bys = 0, parsed = 0;
    for (const std::string& query : suite.queries) {
      Result<sql::SelectStatement> stmt = sql::ParseSelect(query);
      ASSERT_TRUE(stmt.ok()) << suite.name << ": " << query << "\n  -> "
                             << stmt.status().ToString();
      ++parsed;
      sql::QueryStats stats = sql::Analyze(*stmt);
      aggregates += stats.num_aggregates;
      group_bys += stats.has_group_by ? 1 : 0;
    }
    EXPECT_EQ(parsed, suite.paper_queries) << suite.name;
    EXPECT_EQ(aggregates, suite.paper_aggregates) << suite.name;
    EXPECT_EQ(group_bys, suite.paper_group_bys) << suite.name;
  }
}

// -------------------------------------------------- algorithm stress mix

TEST(StressTest, WideCubeWithMixedAggregatesAndThreads) {
  Table t = GenerateCubeInput({.num_rows = 30000,
                               .num_dims = 4,
                               .cardinality = 5,
                               .skew = 0.6,
                               .seed = 33})
                .value();
  std::vector<GroupExpr> dims = {GroupCol("d0"), GroupCol("d1"),
                                 GroupCol("d2"), GroupCol("d3")};
  std::vector<AggregateSpec> aggs = {
      Agg("sum", "x", "s"),     Agg("min", "x", "lo"),
      Agg("max", "x", "hi"),    Agg("avg", "x", "a"),
      Agg("count", "x", "c"),   CountStar("n")};
  CubeOptions serial;
  serial.algorithm = CubeAlgorithm::kUnionGroupBy;
  Table expected = Cube(t, dims, aggs, serial)->table;
  CubeOptions parallel;
  parallel.num_threads = 4;
  Result<CubeResult> got = Cube(t, dims, aggs, parallel);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->table.num_rows(), expected.num_rows());
  EXPECT_TRUE(got->table.EqualsIgnoringRowOrder(expected));
}

TEST(StressTest, ManyGroupingSetsViaSql) {
  sql::Catalog catalog;
  ASSERT_TRUE(catalog
                  .Register("T", GenerateCubeInput({.num_rows = 5000,
                                                    .num_dims = 3,
                                                    .cardinality = 4,
                                                    .seed = 44})
                                     .value())
                  .ok());
  Table t = MustSql(
      "SELECT d0, d1, d2, SUM(x) AS s, COUNT(*) AS n FROM T "
      "GROUP BY GROUPING SETS ((d0, d1, d2), (d0, d1), (d1, d2), (d0), ()) "
      "ORDER BY 4 DESC",
      catalog);
  EXPECT_GT(t.num_rows(), 0u);
  // The grand total row exists and leads (largest sum).
  EXPECT_TRUE(t.GetValue(0, 0).is_all());
  EXPECT_TRUE(t.GetValue(0, 1).is_all());
  EXPECT_TRUE(t.GetValue(0, 2).is_all());
}

}  // namespace
}  // namespace datacube
