#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "datacube/cube/cube_operator.h"
#include "datacube/cube/thread_pool.h"
#include "datacube/obs/json_util.h"
#include "datacube/obs/metrics.h"
#include "datacube/obs/query_profile.h"
#include "datacube/obs/trace.h"
#include "datacube/workload/sales.h"

namespace datacube::obs {
namespace {

// --------------------------------------------------------------- counters

TEST(CounterTest, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentWritersLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncs = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.Inc();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kIncs);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  g.Set(10.0);
  g.Add(5.0);
  g.Sub(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
}

TEST(GaugeTest, ConcurrentAddsSumExactly) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kAdds = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g] {
      for (int i = 0; i < kAdds; ++i) g.Add(1.0);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kAdds);
}

// -------------------------------------------------------------- histogram

TEST(HistogramTest, BucketBoundsDoubleFromBase) {
  Histogram h(1e-6);
  EXPECT_DOUBLE_EQ(h.bucket_bound(0), 1e-6);
  for (size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(h.bucket_bound(i), 2.0 * h.bucket_bound(i - 1));
  }
}

TEST(HistogramTest, ObservationsLandInTheRightBuckets) {
  Histogram h(1.0);  // bounds 1, 2, 4, 8, ...
  h.Observe(0.5);    // <= 1 -> bucket 0
  h.Observe(1.0);    // == bound, inclusive -> bucket 0
  h.Observe(3.0);    // <= 4 -> bucket 2
  h.Observe(1e30);   // beyond the last bound -> +Inf bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::kNumBuckets), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 3.0 + 1e30, 1e18);
}

TEST(HistogramTest, ConcurrentObserversKeepCountAndSumConsistent) {
  Histogram h(1.0);
  constexpr int kThreads = 8;
  constexpr int kObs = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kObs; ++i) {
        h.Observe(static_cast<double>(1 + (t + i) % 7));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kObs);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i <= Histogram::kNumBuckets; ++i) {
    bucket_total += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_GT(h.sum(), 0.0);
}

// --------------------------------------------------------------- registry

TEST(MetricsRegistryTest, SameNameAndLabelsIsTheSameSeries) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("datacube_test_total", "help");
  Counter& b = reg.GetCounter("datacube_test_total");
  EXPECT_EQ(&a, &b);
  Counter& labeled =
      reg.GetCounter("datacube_test_total", "", {{"algorithm", "from_core"}});
  EXPECT_NE(&a, &labeled);
  a.Inc(3);
  labeled.Inc(4);
  EXPECT_EQ(reg.CounterValue("datacube_test_total"), 3u);
  EXPECT_EQ(
      reg.CounterValue("datacube_test_total", {{"algorithm", "from_core"}}),
      4u);
  EXPECT_EQ(reg.CounterValue("datacube_missing_total"), 0u);
}

TEST(MetricsRegistryTest, ConcurrentGetAndIncAcrossSeries) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncs = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      // Half the threads share one series; the rest get per-thread series.
      Labels labels = t % 2 == 0
                          ? Labels{{"shard", "shared"}}
                          : Labels{{"shard", std::to_string(t)}};
      for (int i = 0; i < kIncs; ++i) {
        reg.GetCounter("datacube_contended_total", "h", labels).Inc();
        reg.GetHistogram("datacube_contended_seconds", "h", labels)
            .Observe(1e-3);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(reg.CounterValue("datacube_contended_total", {{"shard", "shared"}}),
            static_cast<uint64_t>(kThreads / 2) * kIncs);
  for (int t = 1; t < kThreads; t += 2) {
    EXPECT_EQ(reg.CounterValue("datacube_contended_total",
                               {{"shard", std::to_string(t)}}),
              static_cast<uint64_t>(kIncs));
  }
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry reg;
  reg.GetCounter("datacube_q_total", "Queries", {{"kind", "cube"}}).Inc(7);
  reg.GetGauge("datacube_live_cells", "Live cells").Set(12.5);
  reg.GetHistogram("datacube_q_seconds", "Latency", {}, 1.0).Observe(3.0);
  std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# HELP datacube_q_total Queries"), std::string::npos);
  EXPECT_NE(text.find("# TYPE datacube_q_total counter"), std::string::npos);
  EXPECT_NE(text.find("datacube_q_total{kind=\"cube\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE datacube_live_cells gauge"), std::string::npos);
  EXPECT_NE(text.find("datacube_live_cells 12.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE datacube_q_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("datacube_q_seconds_bucket{le=\"4\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("datacube_q_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("datacube_q_seconds_sum 3"), std::string::npos);
  EXPECT_NE(text.find("datacube_q_seconds_count 1"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExposition) {
  MetricsRegistry reg;
  reg.GetCounter("datacube_j_total", "", {{"a", "b"}}).Inc(2);
  reg.GetHistogram("datacube_j_seconds", "", {}, 1.0).Observe(1.5);
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"datacube_j_total{a=\\\"b\\\"}\":2"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetForTestDropsSeries) {
  MetricsRegistry reg;
  reg.GetCounter("datacube_tmp_total").Inc(5);
  reg.ResetForTest();
  EXPECT_EQ(reg.CounterValue("datacube_tmp_total"), 0u);
}

// ------------------------------------------------------------------ spans

TEST(TraceTest, SpansAreInactiveWithoutAnInstalledTrace) {
  ScopedSpan span("orphan");
  EXPECT_FALSE(span.active());
  EXPECT_FALSE(TracingActive());
  span.Attr("ignored", uint64_t{1});  // must be a safe no-op
}

TEST(TraceTest, BuildsTheSpanTreeWithDurationsAndAttrs) {
  Trace trace("query");
  {
    TraceScope scope(&trace);
    EXPECT_TRUE(TracingActive());
    ScopedSpan outer("execute_cube");
    EXPECT_TRUE(outer.active());
    outer.Attr("rows", uint64_t{100});
    {
      ScopedSpan inner("hash_group_by");
      inner.Attr("set", "{d0,d1}");
    }
    { ScopedSpan sibling("assemble_result"); }
  }
  EXPECT_FALSE(TracingActive());

  const SpanNode& root = trace.root();
  EXPECT_EQ(root.name, "query");
  EXPECT_GE(root.duration_ns, 0);  // closed by TraceScope destruction
  ASSERT_EQ(root.children.size(), 1u);
  const SpanNode& outer = *root.children[0];
  EXPECT_EQ(outer.name, "execute_cube");
  EXPECT_GE(outer.duration_ns, 0);
  ASSERT_NE(outer.FindAttr("rows"), nullptr);
  EXPECT_EQ(*outer.FindAttr("rows"), "100");
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0]->name, "hash_group_by");
  EXPECT_EQ(outer.children[1]->name, "assemble_result");
  ASSERT_NE(outer.children[0]->FindAttr("set"), nullptr);
  EXPECT_EQ(*outer.children[0]->FindAttr("set"), "{d0,d1}");
  // Children nest inside the parent's time range.
  EXPECT_GE(outer.children[0]->start_ns, outer.start_ns);
  EXPECT_LE(outer.children[0]->duration_ns, root.duration_ns);

  std::string text = trace.Render();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("  execute_cube"), std::string::npos);
  EXPECT_NE(text.find("    hash_group_by"), std::string::npos);
  EXPECT_NE(text.find("rows=100"), std::string::npos);

  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"name\":\"execute_cube\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
}

TEST(TraceTest, NestedTraceScopesRestoreThePreviousTrace) {
  Trace outer_trace("outer");
  Trace inner_trace("inner");
  TraceScope outer_scope(&outer_trace);
  {
    ScopedSpan before("before");
    {
      TraceScope inner_scope(&inner_trace);
      ScopedSpan inner_span("inner_work");
      EXPECT_TRUE(inner_span.active());
    }
    // Back on the outer trace.
    ScopedSpan after("after");
    EXPECT_TRUE(after.active());
  }
  ASSERT_EQ(inner_trace.root().children.size(), 1u);
  EXPECT_EQ(inner_trace.root().children[0]->name, "inner_work");
  ASSERT_EQ(outer_trace.root().children.size(), 1u);
  const SpanNode& before = *outer_trace.root().children[0];
  EXPECT_EQ(before.name, "before");
  ASSERT_EQ(before.children.size(), 1u);
  EXPECT_EQ(before.children[0]->name, "after");
}

TEST(TraceTest, TracesAreThreadLocal) {
  Trace trace("main_thread");
  TraceScope scope(&trace);
  std::atomic<bool> other_thread_active{true};
  std::thread other([&] {
    ScopedSpan span("other_thread_span");
    other_thread_active = span.active();
  });
  other.join();
  EXPECT_FALSE(other_thread_active.load());
  EXPECT_TRUE(TracingActive());
}

// --------------------------------------------- engine integration points

TEST(ObsIntegrationTest, ExecuteCubePublishesCountersAndStats) {
  Table sales = Table3SalesTable().value();
  MetricsRegistry& reg = MetricsRegistry::Global();
  uint64_t executions_before = reg.CounterValue(
      "datacube_cube_executions_total", {{"algorithm", "from_core"}});
  uint64_t cells_before = reg.CounterValue("datacube_cube_output_cells_total");

  CubeOptions options;
  options.algorithm = CubeAlgorithm::kFromCore;
  Result<CubeResult> result =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units")}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(reg.CounterValue("datacube_cube_executions_total",
                             {{"algorithm", "from_core"}}),
            executions_before + 1);
  EXPECT_EQ(reg.CounterValue("datacube_cube_output_cells_total"),
            cells_before + result.value().stats.output_cells);
  EXPECT_GT(result.value().stats.wall_seconds, 0.0);
  EXPECT_EQ(result.value().stats.algorithm_used, CubeAlgorithm::kFromCore);
  EXPECT_EQ(result.value().stats.algorithm_requested,
            CubeAlgorithm::kFromCore);
  // Per-set actuals are filled for every execution and sum to the output.
  uint64_t per_set_total = 0;
  for (const GroupingSetExecStats& ps : result.value().stats.per_set) {
    per_set_total += ps.actual_cells;
  }
  EXPECT_EQ(per_set_total, result.value().stats.output_cells);
}

TEST(ObsIntegrationTest, TracedExecutionRecordsCubeSpans) {
  Table sales = Table3SalesTable().value();
  Trace trace("query");
  {
    TraceScope scope(&trace);
    Result<CubeResult> result =
        Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
             {Agg("sum", "Units")}, {});
    ASSERT_TRUE(result.ok());
    // Estimates are only computed under a trace.
    for (const GroupingSetExecStats& ps : result.value().stats.per_set) {
      EXPECT_GE(ps.est_cells, 0.0);
    }
  }
  ASSERT_EQ(trace.root().children.size(), 1u);
  const SpanNode& exec = *trace.root().children[0];
  EXPECT_EQ(exec.name, "execute_cube");
  ASSERT_NE(exec.FindAttr("algorithm"), nullptr);
  bool saw_compute_set = false;
  for (const auto& child : exec.children) {
    if (child->name == "compute_set") saw_compute_set = true;
  }
  EXPECT_TRUE(saw_compute_set);
}

// --------------------------------------------------------- JSON escaping

TEST(JsonEscapeTest, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("SELECT \"x\" FROM \"t\""),
            "SELECT \\\"x\\\" FROM \\\"t\\\"");
}

TEST(JsonEscapeTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonEscape("a\nb\tc\rd\be\ff"), "a\\nb\\tc\\rd\\be\\ff");
  EXPECT_EQ(JsonEscape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  EXPECT_EQ(JsonEscape("\x7f"), "\\u007f");
  // Embedded NUL must not truncate the output.
  EXPECT_EQ(JsonEscape(std::string("a\0b", 3)), "a\\u0000b");
}

TEST(JsonEscapeTest, PassesValidUtf8Through) {
  EXPECT_EQ(JsonEscape("café"), "café");                // 2-byte sequence
  EXPECT_EQ(JsonEscape("\xe6\x97\xa5"), "\xe6\x97\xa5");  // 3-byte (日)
  EXPECT_EQ(JsonEscape("\xf0\x9f\x93\x8a"), "\xf0\x9f\x93\x8a");  // 4-byte
}

TEST(JsonEscapeTest, ReplacesInvalidUtf8Bytes) {
  // Lone continuation / invalid lead bytes.
  EXPECT_EQ(JsonEscape("\x80"), "\\ufffd");
  EXPECT_EQ(JsonEscape("a\xffz"), "a\\ufffdz");
  // Overlong encoding of '/' (C0 AF) — both bytes rejected.
  EXPECT_EQ(JsonEscape("\xc0\xaf"), "\\ufffd\\ufffd");
  // CESU-8 style surrogate (ED A0 80) is not valid UTF-8.
  EXPECT_EQ(JsonEscape("\xed\xa0\x80"), "\\ufffd\\ufffd\\ufffd");
  // Truncated 2-byte sequence at end of string.
  EXPECT_EQ(JsonEscape("ok\xc3"), "ok\\ufffd");
}

// --------------------------------------------- cross-thread span stitching

TEST(CrossThreadTraceTest, PoolTaskSpansStitchUnderTheSpawnerSpan) {
  Trace trace("query");
  {
    TraceScope scope(&trace);
    ScopedSpan phase("phase");
    cube_internal::ThreadPool pool(4);
    cube_internal::TaskGroup group(pool);
    for (int i = 0; i < 8; ++i) {
      group.Spawn([i] {
        ScopedSpan span("task_span");
        span.Attr("task", static_cast<uint64_t>(i));
      });
    }
    group.Wait();
  }
  ASSERT_EQ(trace.root().children.size(), 1u);
  const SpanNode& phase = *trace.root().children[0];
  EXPECT_EQ(phase.name, "phase");
  size_t task_spans = 0;
  for (const auto& child : phase.children) {
    if (child->name == "task_span") {
      ++task_spans;
      EXPECT_GE(child->duration_ns, 0);  // closed before the stitch
    }
  }
  EXPECT_EQ(task_spans, 8u);
}

TEST(CrossThreadTraceTest, NestedSpawnsAttachUnderTheOpenTaskSpan) {
  Trace trace("query");
  {
    TraceScope scope(&trace);
    ScopedSpan phase("phase");
    cube_internal::ThreadPool pool(2);
    cube_internal::TaskGroup group(pool);
    group.Spawn([&group] {
      ScopedSpan outer("outer_task");
      // Captured context points at the outer_task span: the child subtree
      // must appear under it, mirroring the cascade DAG.
      group.Spawn([] { ScopedSpan inner("inner_task"); });
    });
    group.Wait();
  }
  const SpanNode& phase = *trace.root().children[0];
  const SpanNode* outer = nullptr;
  for (const auto& child : phase.children) {
    if (child->name == "outer_task") outer = child.get();
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_EQ(outer->children.size(), 1u);
  EXPECT_EQ(outer->children[0]->name, "inner_task");
}

TEST(CrossThreadTraceTest, SpawnsFromTaskRootStitchToTheSurvivingTarget) {
  // A task that spawns with no span of its own open must hand children the
  // durable stitch target, never its stack-local holder node.
  Trace trace("query");
  {
    TraceScope scope(&trace);
    ScopedSpan phase("phase");
    cube_internal::ThreadPool pool(2);
    cube_internal::TaskGroup group(pool);
    group.Spawn([&group] {
      group.Spawn([] { ScopedSpan child("bare_child"); });
    });
    group.Wait();
  }
  const SpanNode& phase = *trace.root().children[0];
  bool saw_bare_child = false;
  for (const auto& child : phase.children) {
    if (child->name == "bare_child") saw_bare_child = true;
  }
  EXPECT_TRUE(saw_bare_child);
}

TEST(CrossThreadTraceTest, InactiveContextSuspendsTheRunningThreadsTrace) {
  // A help-first waiter running an *untraced* query's task must not adopt
  // that task's spans into its own trace.
  Trace trace("mine");
  TraceScope scope(&trace);
  {
    TaskTraceScope task{SpanContext{}};
    ScopedSpan foreign("foreign_span");
    EXPECT_FALSE(foreign.active());
    EXPECT_FALSE(TracingActive());
  }
  ScopedSpan after("after");
  EXPECT_TRUE(after.active());
  EXPECT_EQ(trace.root().children.size(), 1u);  // only "after"
}

TEST(CrossThreadTraceTest, UntracedSpawnKeepsTasksFree) {
  cube_internal::ThreadPool pool(2);
  cube_internal::TaskGroup group(pool);
  std::atomic<bool> any_active{false};
  for (int i = 0; i < 4; ++i) {
    group.Spawn([&any_active] {
      ScopedSpan span("should_be_inactive");
      if (span.active()) any_active = true;
    });
  }
  group.Wait();
  EXPECT_FALSE(any_active.load());
}

// --------------------------------------------------------- top-K rendering

TEST(TraceRenderTest, WideFanoutsCollapseToTopKPlusRollup) {
  Trace trace("query");
  for (int i = 0; i < 12; ++i) {
    auto node = std::make_unique<SpanNode>();
    node->name = "merge_partition";
    node->duration_ns = (i + 1) * 1000;
    trace.root().children.push_back(std::move(node));
  }
  auto odd = std::make_unique<SpanNode>();
  odd->name = "assemble_result";
  odd->duration_ns = 500;
  trace.root().children.push_back(std::move(odd));

  std::string text = trace.Render(/*top_k=*/3);
  EXPECT_NE(text.find("... 9 more merge_partition  total"), std::string::npos);
  // The three longest render; the shortest members do not.
  EXPECT_NE(text.find("12.0us"), std::string::npos);
  // Small groups render in full regardless of the cap.
  EXPECT_NE(text.find("assemble_result"), std::string::npos);

  // top_k = 0 renders everything.
  std::string full = trace.Render(0);
  EXPECT_EQ(full.find("more merge_partition"), std::string::npos);
  size_t count = 0, pos = 0;
  while ((pos = full.find("merge_partition", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 12u);
}

// ------------------------------------------------------------- trace ring

TEST(TraceLogTest, KeepsTheNewestCapacityTraces) {
  TraceLog log(2);
  log.Record(TraceRecord{"a", 1, "{}"});
  log.Record(TraceRecord{"b", 2, "{}"});
  log.Record(TraceRecord{"c", 3, "{}"});
  std::vector<TraceRecord> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].root_name, "b");
  EXPECT_EQ(snap[1].root_name, "c");
  EXPECT_EQ(log.total_recorded(), 3u);
  std::string json = log.ToJson();
  EXPECT_NE(json.find("\"total_recorded\":3"), std::string::npos);
  EXPECT_NE(json.find("\"root\":\"c\""), std::string::npos);
}

TEST(TraceLogTest, OutermostTraceScopeRecordsIntoTheGlobalRing) {
  uint64_t before = TraceLog::Global().total_recorded();
  {
    Trace trace("ring_test_query");
    TraceScope scope(&trace);
    ScopedSpan span("work");
  }
  EXPECT_EQ(TraceLog::Global().total_recorded(), before + 1);
  std::vector<TraceRecord> snap = TraceLog::Global().Snapshot();
  ASSERT_FALSE(snap.empty());
  EXPECT_EQ(snap.back().root_name, "ring_test_query");
  EXPECT_NE(snap.back().json.find("\"name\":\"work\""), std::string::npos);
}

TEST(TraceLogTest, NestedScopesRecordOnlyTheOutermostTrace) {
  uint64_t before = TraceLog::Global().total_recorded();
  {
    Trace outer("outer");
    TraceScope outer_scope(&outer);
    {
      Trace inner("inner");
      TraceScope inner_scope(&inner);
    }
    // The nested trace is *not* outermost-recorded: its scope restored an
    // installed trace.
    EXPECT_EQ(TraceLog::Global().total_recorded(), before);
  }
  EXPECT_EQ(TraceLog::Global().total_recorded(), before + 1);
}

// -------------------------------------------------------------- build info

TEST(BuildInfoTest, RegistersBuildInfoAndStartTime) {
  MetricsRegistry reg;
  RegisterBuildInfo(reg);
  std::string prom = reg.RenderPrometheus();
  EXPECT_NE(prom.find("# TYPE datacube_build_info gauge"), std::string::npos);
  EXPECT_NE(prom.find("datacube_build_info{version=\""), std::string::npos);
  EXPECT_NE(prom.find("compiler=\""), std::string::npos);
  EXPECT_NE(prom.find("sanitizer=\""), std::string::npos);
  EXPECT_NE(prom.find("# TYPE process_start_time_seconds gauge"),
            std::string::npos);
}

TEST(BuildInfoTest, GlobalRegistryHasBuildInfoByDefault) {
  std::string prom = MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(prom.find("datacube_build_info{"), std::string::npos);
  EXPECT_NE(prom.find("process_start_time_seconds"), std::string::npos);
}

// ----------------------------------------------------------- query profiles

TEST(QueryProfileTest, ToJsonLineCarriesStructureAndEscapes) {
  QueryProfile p;
  p.query = "SELECT \"x\"\nFROM t \xff";
  p.start_unix_ms = 1700000000000;
  p.wall_ms = 12.5;
  p.scan_ms = 4.0;
  p.merge_ms = 2.0;
  p.cascade_ms = 1.0;
  p.algorithm = "from_core";
  p.threads = 4;
  p.input_rows = 1000;
  p.output_cells = 64;
  p.arena_peak_bytes = 4096;
  p.counters = {{"iter_calls", 1000}, {"merge_tasks", 16}};
  p.lattice = "budget=1024 views=3";
  p.slow = true;
  std::string line = p.ToJsonLine();
  EXPECT_NE(line.find("\"query\":\"SELECT \\\"x\\\"\\nFROM t \\ufffd\""),
            std::string::npos);
  EXPECT_NE(line.find("\"wall_ms\":12.500"), std::string::npos);
  EXPECT_NE(line.find("\"phases\":{\"scan_ms\":4.000"), std::string::npos);
  EXPECT_NE(line.find("\"algorithm\":\"from_core\""), std::string::npos);
  EXPECT_NE(line.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(line.find("\"counters\":{\"iter_calls\":1000,\"merge_tasks\":16}"),
            std::string::npos);
  EXPECT_NE(line.find("\"lattice\":\"budget=1024 views=3\""),
            std::string::npos);
  EXPECT_NE(line.find("\"slow\":true"), std::string::npos);
  // Serial profile omits the phases object.
  QueryProfile serial;
  serial.query = "q";
  EXPECT_EQ(serial.ToJsonLine().find("\"phases\""), std::string::npos);
}

TEST(QueryProfileTest, RingEvictsOldestAndCounts) {
  QueryProfileLog log(2);
  for (int i = 0; i < 3; ++i) {
    QueryProfile p;
    p.query = "q" + std::to_string(i);
    log.Record(std::move(p));
  }
  std::vector<QueryProfile> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].query, "q1");
  EXPECT_EQ(snap[1].query, "q2");
  EXPECT_EQ(log.total_recorded(), 3u);
  EXPECT_GT(snap[0].start_unix_ms, 0);  // stamped by Record
  std::string json = log.ToJson();
  EXPECT_NE(json.find("\"total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"profiles\":["), std::string::npos);
}

TEST(QueryProfileTest, SlowThresholdResolution) {
  QueryProfileLog log(4);
  EXPECT_LT(log.EffectiveSlowThresholdMs(-1.0), 0.0);  // disabled by default
  log.ConfigureSlowLog(100.0, "");
  EXPECT_EQ(log.EffectiveSlowThresholdMs(-1.0), 100.0);
  EXPECT_EQ(log.EffectiveSlowThresholdMs(5.0), 5.0);  // per-query override
  EXPECT_EQ(log.EffectiveSlowThresholdMs(0.0), 0.0);  // 0 = everything slow
  log.ConfigureSlowLog(-1.0, "");
  EXPECT_LT(log.EffectiveSlowThresholdMs(-1.0), 0.0);
}

TEST(QueryProfileTest, SlowProfilesAppendToTheJsonlLog) {
  std::string path = testing::TempDir() + "datacube_slow_test.jsonl";
  std::remove(path.c_str());
  QueryProfileLog log(4);
  log.ConfigureSlowLog(0.0, path);
  QueryProfile fast;
  fast.query = "fast";
  log.Record(std::move(fast));  // not marked slow: no line
  QueryProfile slow;
  slow.query = "slow \"one\"";
  slow.wall_ms = 9.0;
  slow.slow = true;
  log.Record(std::move(slow));
  EXPECT_EQ(log.slow_recorded(), 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"query\":\"slow \\\"one\\\"\""), std::string::npos);
  EXPECT_NE(line.find("\"slow\":true"), std::string::npos);
  EXPECT_FALSE(std::getline(in, line));  // exactly one line
  std::remove(path.c_str());
}

TEST(QueryProfileTest, QueryTextScopeInstallsAndRestores) {
  EXPECT_EQ(CurrentQueryText(), nullptr);
  std::string outer_text = "SELECT 1";
  {
    QueryTextScope outer(outer_text);
    ASSERT_NE(CurrentQueryText(), nullptr);
    EXPECT_EQ(*CurrentQueryText(), "SELECT 1");
    std::string inner_text = "SELECT 2";
    {
      QueryTextScope inner(inner_text);
      EXPECT_EQ(*CurrentQueryText(), "SELECT 2");
    }
    EXPECT_EQ(*CurrentQueryText(), "SELECT 1");
  }
  EXPECT_EQ(CurrentQueryText(), nullptr);
}

TEST(QueryProfileTest, ExecuteCubeEmitsAProfile) {
  Table sales = Table3SalesTable().value();
  uint64_t before = QueryProfileLog::Global().total_recorded();
  Result<CubeResult> result =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units")}, {});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(QueryProfileLog::Global().total_recorded(), before + 1);
  QueryProfile p = QueryProfileLog::Global().Snapshot().back();
  // No SQL text installed: the profile carries the spec digest.
  EXPECT_NE(p.query.find("cube(Model,Year,Color)"), std::string::npos);
  EXPECT_NE(p.query.find("sum"), std::string::npos);
  EXPECT_GT(p.wall_ms, 0.0);
  EXPECT_FALSE(p.algorithm.empty());
  EXPECT_EQ(p.input_rows, sales.num_rows());
  EXPECT_EQ(p.output_cells, result.value().stats.output_cells);
  bool saw_iter_calls = false;
  for (const auto& [name, value] : p.counters) {
    if (name == "iter_calls") {
      saw_iter_calls = true;
      EXPECT_EQ(value, result.value().stats.iter_calls);
    }
  }
  EXPECT_TRUE(saw_iter_calls);
  EXPECT_FALSE(p.slow);  // no threshold configured
}

TEST(QueryProfileTest, PerQueryThresholdMarksSlowAndCounts) {
  Table sales = Table3SalesTable().value();
  uint64_t slow_before =
      MetricsRegistry::Global().CounterValue("datacube_slow_queries_total");
  CubeOptions options;
  options.slow_query_ms = 0.0;  // everything is slow
  Result<CubeResult> result =
      Cube(sales, {GroupCol("Model"), GroupCol("Color")},
           {Agg("sum", "Units")}, options);
  ASSERT_TRUE(result.ok());
  QueryProfile p = QueryProfileLog::Global().Snapshot().back();
  EXPECT_TRUE(p.slow);
  EXPECT_EQ(
      MetricsRegistry::Global().CounterValue("datacube_slow_queries_total"),
      slow_before + 1);
}

}  // namespace
}  // namespace datacube::obs
