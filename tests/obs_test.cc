#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "datacube/cube/cube_operator.h"
#include "datacube/obs/metrics.h"
#include "datacube/obs/trace.h"
#include "datacube/workload/sales.h"

namespace datacube::obs {
namespace {

// --------------------------------------------------------------- counters

TEST(CounterTest, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(CounterTest, ConcurrentWritersLoseNothing) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncs = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.Inc();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kIncs);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  g.Set(10.0);
  g.Add(5.0);
  g.Sub(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 12.0);
}

TEST(GaugeTest, ConcurrentAddsSumExactly) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kAdds = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&g] {
      for (int i = 0; i < kAdds; ++i) g.Add(1.0);
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kAdds);
}

// -------------------------------------------------------------- histogram

TEST(HistogramTest, BucketBoundsDoubleFromBase) {
  Histogram h(1e-6);
  EXPECT_DOUBLE_EQ(h.bucket_bound(0), 1e-6);
  for (size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(h.bucket_bound(i), 2.0 * h.bucket_bound(i - 1));
  }
}

TEST(HistogramTest, ObservationsLandInTheRightBuckets) {
  Histogram h(1.0);  // bounds 1, 2, 4, 8, ...
  h.Observe(0.5);    // <= 1 -> bucket 0
  h.Observe(1.0);    // == bound, inclusive -> bucket 0
  h.Observe(3.0);    // <= 4 -> bucket 2
  h.Observe(1e30);   // beyond the last bound -> +Inf bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 0u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::kNumBuckets), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 3.0 + 1e30, 1e18);
}

TEST(HistogramTest, ConcurrentObserversKeepCountAndSumConsistent) {
  Histogram h(1.0);
  constexpr int kThreads = 8;
  constexpr int kObs = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kObs; ++i) {
        h.Observe(static_cast<double>(1 + (t + i) % 7));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kObs);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i <= Histogram::kNumBuckets; ++i) {
    bucket_total += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_GT(h.sum(), 0.0);
}

// --------------------------------------------------------------- registry

TEST(MetricsRegistryTest, SameNameAndLabelsIsTheSameSeries) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("datacube_test_total", "help");
  Counter& b = reg.GetCounter("datacube_test_total");
  EXPECT_EQ(&a, &b);
  Counter& labeled =
      reg.GetCounter("datacube_test_total", "", {{"algorithm", "from_core"}});
  EXPECT_NE(&a, &labeled);
  a.Inc(3);
  labeled.Inc(4);
  EXPECT_EQ(reg.CounterValue("datacube_test_total"), 3u);
  EXPECT_EQ(
      reg.CounterValue("datacube_test_total", {{"algorithm", "from_core"}}),
      4u);
  EXPECT_EQ(reg.CounterValue("datacube_missing_total"), 0u);
}

TEST(MetricsRegistryTest, ConcurrentGetAndIncAcrossSeries) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncs = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, t] {
      // Half the threads share one series; the rest get per-thread series.
      Labels labels = t % 2 == 0
                          ? Labels{{"shard", "shared"}}
                          : Labels{{"shard", std::to_string(t)}};
      for (int i = 0; i < kIncs; ++i) {
        reg.GetCounter("datacube_contended_total", "h", labels).Inc();
        reg.GetHistogram("datacube_contended_seconds", "h", labels)
            .Observe(1e-3);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(reg.CounterValue("datacube_contended_total", {{"shard", "shared"}}),
            static_cast<uint64_t>(kThreads / 2) * kIncs);
  for (int t = 1; t < kThreads; t += 2) {
    EXPECT_EQ(reg.CounterValue("datacube_contended_total",
                               {{"shard", std::to_string(t)}}),
              static_cast<uint64_t>(kIncs));
  }
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry reg;
  reg.GetCounter("datacube_q_total", "Queries", {{"kind", "cube"}}).Inc(7);
  reg.GetGauge("datacube_live_cells", "Live cells").Set(12.5);
  reg.GetHistogram("datacube_q_seconds", "Latency", {}, 1.0).Observe(3.0);
  std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# HELP datacube_q_total Queries"), std::string::npos);
  EXPECT_NE(text.find("# TYPE datacube_q_total counter"), std::string::npos);
  EXPECT_NE(text.find("datacube_q_total{kind=\"cube\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE datacube_live_cells gauge"), std::string::npos);
  EXPECT_NE(text.find("datacube_live_cells 12.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE datacube_q_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("datacube_q_seconds_bucket{le=\"4\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("datacube_q_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("datacube_q_seconds_sum 3"), std::string::npos);
  EXPECT_NE(text.find("datacube_q_seconds_count 1"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExposition) {
  MetricsRegistry reg;
  reg.GetCounter("datacube_j_total", "", {{"a", "b"}}).Inc(2);
  reg.GetHistogram("datacube_j_seconds", "", {}, 1.0).Observe(1.5);
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"datacube_j_total{a=\\\"b\\\"}\":2"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetForTestDropsSeries) {
  MetricsRegistry reg;
  reg.GetCounter("datacube_tmp_total").Inc(5);
  reg.ResetForTest();
  EXPECT_EQ(reg.CounterValue("datacube_tmp_total"), 0u);
}

// ------------------------------------------------------------------ spans

TEST(TraceTest, SpansAreInactiveWithoutAnInstalledTrace) {
  ScopedSpan span("orphan");
  EXPECT_FALSE(span.active());
  EXPECT_FALSE(TracingActive());
  span.Attr("ignored", uint64_t{1});  // must be a safe no-op
}

TEST(TraceTest, BuildsTheSpanTreeWithDurationsAndAttrs) {
  Trace trace("query");
  {
    TraceScope scope(&trace);
    EXPECT_TRUE(TracingActive());
    ScopedSpan outer("execute_cube");
    EXPECT_TRUE(outer.active());
    outer.Attr("rows", uint64_t{100});
    {
      ScopedSpan inner("hash_group_by");
      inner.Attr("set", "{d0,d1}");
    }
    { ScopedSpan sibling("assemble_result"); }
  }
  EXPECT_FALSE(TracingActive());

  const SpanNode& root = trace.root();
  EXPECT_EQ(root.name, "query");
  EXPECT_GE(root.duration_ns, 0);  // closed by TraceScope destruction
  ASSERT_EQ(root.children.size(), 1u);
  const SpanNode& outer = *root.children[0];
  EXPECT_EQ(outer.name, "execute_cube");
  EXPECT_GE(outer.duration_ns, 0);
  ASSERT_NE(outer.FindAttr("rows"), nullptr);
  EXPECT_EQ(*outer.FindAttr("rows"), "100");
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0]->name, "hash_group_by");
  EXPECT_EQ(outer.children[1]->name, "assemble_result");
  ASSERT_NE(outer.children[0]->FindAttr("set"), nullptr);
  EXPECT_EQ(*outer.children[0]->FindAttr("set"), "{d0,d1}");
  // Children nest inside the parent's time range.
  EXPECT_GE(outer.children[0]->start_ns, outer.start_ns);
  EXPECT_LE(outer.children[0]->duration_ns, root.duration_ns);

  std::string text = trace.Render();
  EXPECT_NE(text.find("query"), std::string::npos);
  EXPECT_NE(text.find("  execute_cube"), std::string::npos);
  EXPECT_NE(text.find("    hash_group_by"), std::string::npos);
  EXPECT_NE(text.find("rows=100"), std::string::npos);

  std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"name\":\"execute_cube\""), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
}

TEST(TraceTest, NestedTraceScopesRestoreThePreviousTrace) {
  Trace outer_trace("outer");
  Trace inner_trace("inner");
  TraceScope outer_scope(&outer_trace);
  {
    ScopedSpan before("before");
    {
      TraceScope inner_scope(&inner_trace);
      ScopedSpan inner_span("inner_work");
      EXPECT_TRUE(inner_span.active());
    }
    // Back on the outer trace.
    ScopedSpan after("after");
    EXPECT_TRUE(after.active());
  }
  ASSERT_EQ(inner_trace.root().children.size(), 1u);
  EXPECT_EQ(inner_trace.root().children[0]->name, "inner_work");
  ASSERT_EQ(outer_trace.root().children.size(), 1u);
  const SpanNode& before = *outer_trace.root().children[0];
  EXPECT_EQ(before.name, "before");
  ASSERT_EQ(before.children.size(), 1u);
  EXPECT_EQ(before.children[0]->name, "after");
}

TEST(TraceTest, TracesAreThreadLocal) {
  Trace trace("main_thread");
  TraceScope scope(&trace);
  std::atomic<bool> other_thread_active{true};
  std::thread other([&] {
    ScopedSpan span("other_thread_span");
    other_thread_active = span.active();
  });
  other.join();
  EXPECT_FALSE(other_thread_active.load());
  EXPECT_TRUE(TracingActive());
}

// --------------------------------------------- engine integration points

TEST(ObsIntegrationTest, ExecuteCubePublishesCountersAndStats) {
  Table sales = Table3SalesTable().value();
  MetricsRegistry& reg = MetricsRegistry::Global();
  uint64_t executions_before = reg.CounterValue(
      "datacube_cube_executions_total", {{"algorithm", "from_core"}});
  uint64_t cells_before = reg.CounterValue("datacube_cube_output_cells_total");

  CubeOptions options;
  options.algorithm = CubeAlgorithm::kFromCore;
  Result<CubeResult> result =
      Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
           {Agg("sum", "Units")}, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(reg.CounterValue("datacube_cube_executions_total",
                             {{"algorithm", "from_core"}}),
            executions_before + 1);
  EXPECT_EQ(reg.CounterValue("datacube_cube_output_cells_total"),
            cells_before + result.value().stats.output_cells);
  EXPECT_GT(result.value().stats.wall_seconds, 0.0);
  EXPECT_EQ(result.value().stats.algorithm_used, CubeAlgorithm::kFromCore);
  EXPECT_EQ(result.value().stats.algorithm_requested,
            CubeAlgorithm::kFromCore);
  // Per-set actuals are filled for every execution and sum to the output.
  uint64_t per_set_total = 0;
  for (const GroupingSetExecStats& ps : result.value().stats.per_set) {
    per_set_total += ps.actual_cells;
  }
  EXPECT_EQ(per_set_total, result.value().stats.output_cells);
}

TEST(ObsIntegrationTest, TracedExecutionRecordsCubeSpans) {
  Table sales = Table3SalesTable().value();
  Trace trace("query");
  {
    TraceScope scope(&trace);
    Result<CubeResult> result =
        Cube(sales, {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")},
             {Agg("sum", "Units")}, {});
    ASSERT_TRUE(result.ok());
    // Estimates are only computed under a trace.
    for (const GroupingSetExecStats& ps : result.value().stats.per_set) {
      EXPECT_GE(ps.est_cells, 0.0);
    }
  }
  ASSERT_EQ(trace.root().children.size(), 1u);
  const SpanNode& exec = *trace.root().children[0];
  EXPECT_EQ(exec.name, "execute_cube");
  ASSERT_NE(exec.FindAttr("algorithm"), nullptr);
  bool saw_compute_set = false;
  for (const auto& child : exec.children) {
    if (child->name == "compute_set") saw_compute_set = true;
  }
  EXPECT_TRUE(saw_compute_set);
}

}  // namespace
}  // namespace datacube::obs
