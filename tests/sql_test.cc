#include <gtest/gtest.h>

#include <tuple>

#include "datacube/sql/engine.h"
#include "datacube/sql/lexer.h"
#include "datacube/sql/parser.h"
#include "datacube/workload/sales.h"
#include "datacube/workload/weather.h"

namespace datacube::sql {
namespace {

Catalog TestCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog.Register("Sales", Table3SalesTable().value()).ok());
  EXPECT_TRUE(catalog.Register("Fig4", Figure4SalesTable().value()).ok());
  EXPECT_TRUE(
      catalog
          .Register("Weather",
                    GenerateWeather({.num_rows = 100, .num_days = 4, .seed = 9})
                        .value())
          .ok());
  return catalog;
}

Table MustRun(const std::string& sql, const Catalog& catalog,
              const EngineOptions& options = {}) {
  Result<Table> r = ExecuteSql(sql, catalog, options);
  EXPECT_TRUE(r.ok()) << sql << "\n  -> " << r.status().ToString();
  return r.ok() ? std::move(r).value() : Table{};
}

Value Find(const Table& t, const std::vector<Value>& key, size_t value_col) {
  for (size_t r = 0; r < t.num_rows(); ++r) {
    bool match = true;
    for (size_t k = 0; k < key.size() && match; ++k) {
      match = t.GetValue(r, k) == key[k];
    }
    if (match) return t.GetValue(r, value_col);
  }
  ADD_FAILURE() << "row not found";
  return Value::Null();
}

// ------------------------------------------------------------------ lexer

TEST(LexerTest, TokenKinds) {
  Result<std::vector<Token>> toks =
      Lex("SELECT a1, 'it''s', 3.14 FROM t -- comment\nWHERE x <= 2;");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_TRUE((*toks)[0].IsKeyword("select"));
  EXPECT_EQ((*toks)[1].text, "a1");
  EXPECT_TRUE((*toks)[2].IsSymbol(","));
  EXPECT_EQ((*toks)[3].kind, TokenKind::kString);
  EXPECT_EQ((*toks)[3].text, "it's");
  EXPECT_EQ((*toks)[5].kind, TokenKind::kNumber);
  EXPECT_EQ((*toks)[5].text, "3.14");
  // Comment swallowed; <= lexed as one symbol.
  bool saw_le = false;
  for (const Token& t : *toks) saw_le |= t.IsSymbol("<=");
  EXPECT_TRUE(saw_le);
  EXPECT_EQ(toks->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("SELECT 'unterminated").ok());
  EXPECT_FALSE(Lex("SELECT a ~ b").ok());
  EXPECT_FALSE(Lex("SELECT \"unterminated").ok());
}

// ----------------------------------------------------------------- parser

TEST(ParserTest, PaperCubeSyntax) {
  // The Section 3 example, verbatim shape.
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT day, nation, MAX(Temp) "
      "FROM Weather "
      "GROUP BY CUBE Day(Time) AS day, "
      "Nation(Latitude, Longitude) AS nation;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->from_table, "Weather");
  ASSERT_EQ(stmt->group_by.cube.size(), 2u);
  EXPECT_EQ(stmt->group_by.cube[0].alias, "day");
  EXPECT_EQ(stmt->group_by.cube[1].alias, "nation");
  EXPECT_TRUE(stmt->group_by.plain.empty());
  EXPECT_EQ(stmt->select_list.size(), 3u);
}

TEST(ParserTest, StandardParenthesizedForms) {
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT a, b, SUM(x) FROM t GROUP BY ROLLUP(a, b)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->group_by.rollup.size(), 2u);

  stmt = ParseSelect(
      "SELECT a, b, SUM(x) FROM t "
      "GROUP BY GROUPING SETS ((a, b), (a), ())");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->group_by.grouping_sets.size(), 3u);
  EXPECT_EQ(stmt->group_by.grouping_sets[0].size(), 2u);
  EXPECT_EQ(stmt->group_by.grouping_sets[2].size(), 0u);
}

TEST(ParserTest, CompoundSection31Order) {
  // Figure 5's compound aggregate.
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT Manufacturer, Year, Month, Day, Color, Model, "
      "SUM(price) AS Revenue "
      "FROM Sales "
      "GROUP BY Manufacturer, "
      "ROLLUP Year(Time) AS Year, Month(Time) AS Month, Day(Time) AS Day, "
      "CUBE Color, Model");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->group_by.plain.size(), 1u);
  EXPECT_EQ(stmt->group_by.rollup.size(), 3u);
  EXPECT_EQ(stmt->group_by.cube.size(), 2u);
}

TEST(ParserTest, CountStarAndDistinct) {
  Result<SelectStatement> stmt =
      ParseSelect("SELECT COUNT(*), COUNT(DISTINCT Time) FROM Weather");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select_list[0].expr->name(), "count_star");
  EXPECT_EQ(stmt->select_list[1].expr->name(), "distinct$count");
  EXPECT_FALSE(ParseSelect("SELECT SUM(*) FROM t").ok());
}

TEST(ParserTest, WhereOperators) {
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT x FROM t WHERE Model IN ('Ford', 'Chevy') "
      "AND Year BETWEEN 1990 AND 1992 "
      "AND note IS NOT NULL AND NOT (a = 1 OR b <> 2)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_NE(stmt->where, nullptr);
}

TEST(ParserTest, OrderLimitAliases) {
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT Model m, SUM(Units) AS total FROM Sales "
      "GROUP BY Model ORDER BY 2 DESC, m ASC LIMIT 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select_list[0].alias, "m");
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_EQ(stmt->order_by[0].ordinal, 2);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_EQ(stmt->limit, 5);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("SELECT").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP BY").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE (a = 1").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra garbage").ok());
}

// ----------------------------------------------------------------- engine

TEST(EngineTest, SimpleProjectionWhereOrderLimit) {
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "SELECT Model, Units * 2 AS doubled FROM Sales "
      "WHERE Year = 1994 AND Color = 'black' ORDER BY doubled DESC LIMIT 1",
      catalog);
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.GetValue(0, 1), Value::Int64(100));
}

TEST(EngineTest, SelectStar) {
  Catalog catalog = TestCatalog();
  Table t = MustRun("SELECT * FROM Sales", catalog);
  EXPECT_EQ(t.num_rows(), 8u);
  EXPECT_EQ(t.num_columns(), 4u);
}

TEST(EngineTest, ScalarAggregateNoGroupBy) {
  Catalog catalog = TestCatalog();
  Table t = MustRun("SELECT SUM(Units), COUNT(*), AVG(Units) FROM Sales",
                    catalog);
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.GetValue(0, 0), Value::Int64(510));
  EXPECT_EQ(t.GetValue(0, 1), Value::Int64(8));
  EXPECT_EQ(t.GetValue(0, 2), Value::Float64(510.0 / 8));
}

TEST(EngineTest, PaperUnionedGroupByEquivalence) {
  // The Section 3 semantics: GROUP BY CUBE = the union of all 2^N GROUP
  // BYs. Run the Figure 4 cube through SQL and check the headline numbers.
  Catalog catalog = TestCatalog();
  Table cube = MustRun(
      "SELECT Model, Year, Color, SUM(Units) AS Units FROM Fig4 "
      "GROUP BY CUBE Model, Year, Color",
      catalog);
  EXPECT_EQ(cube.num_rows(), 48u);
  EXPECT_EQ(Find(cube, {Value::All(), Value::All(), Value::All()}, 3),
            Value::Int64(941));
}

TEST(EngineTest, WherePlusCubeMatchesPaperExample) {
  // The Section 2/3 example: Chevy-only roll-up (Table 5.a shape).
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "SELECT Model, Year, Color, SUM(Units) AS Units FROM Sales "
      "WHERE Model = 'Chevy' GROUP BY Model, ROLLUP Year, Color",
      catalog);
  // For the Chevy slice, GROUP BY Model, ROLLUP Year, Color produces the
  // same rows as Table 5.a's three-column rollup.
  EXPECT_EQ(Find(t, {Value::String("Chevy"), Value::Int64(1994), Value::All()},
                 3),
            Value::Int64(90));
  EXPECT_EQ(Find(t, {Value::String("Chevy"), Value::All(), Value::All()}, 3),
            Value::Int64(290));
}

TEST(EngineTest, HavingFiltersOnAggregates) {
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "SELECT Model, SUM(Units) AS total FROM Sales "
      "GROUP BY Model HAVING SUM(Units) > 250",
      catalog);
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.GetValue(0, 0), Value::String("Chevy"));
}

TEST(EngineTest, AggregateExpressionsInSelect) {
  // Percent-of-total style arithmetic over aggregates (Section 4's
  // motivating example), expressed with plain SQL arithmetic.
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "SELECT Model, SUM(Units) / 510 AS share FROM Sales GROUP BY Model "
      "ORDER BY 2 DESC",
      catalog);
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_NEAR(t.GetValue(0, 1).AsDouble(), 290.0 / 510.0, 1e-12);
  EXPECT_NEAR(t.GetValue(1, 1).AsDouble(), 220.0 / 510.0, 1e-12);
}

TEST(EngineTest, GroupingFunctionAndNullMode) {
  Catalog catalog = TestCatalog();
  EngineOptions options;
  options.all_mode = AllMode::kNullWithGrouping;
  Table t = MustRun(
      "SELECT Model, SUM(Units) AS s, GROUPING(Model) AS g FROM Sales "
      "GROUP BY CUBE Model",
      catalog, options);
  ASSERT_EQ(t.num_rows(), 3u);
  int supers = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.GetValue(r, 2) == Value::Bool(true)) {
      ++supers;
      EXPECT_TRUE(t.GetValue(r, 0).is_null());
      EXPECT_EQ(t.GetValue(r, 1), Value::Int64(510));
    }
  }
  EXPECT_EQ(supers, 1);
}

TEST(EngineTest, GroupingSets) {
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "SELECT Model, Year, SUM(Units) AS s FROM Sales "
      "GROUP BY GROUPING SETS ((Model), (Year), ())",
      catalog);
  // 2 models + 2 years + 1 grand total.
  EXPECT_EQ(t.num_rows(), 5u);
  EXPECT_EQ(Find(t, {Value::All(), Value::Int64(1995)}, 2), Value::Int64(360));
  EXPECT_EQ(Find(t, {Value::All(), Value::All()}, 2), Value::Int64(510));
}

TEST(EngineTest, HistogramGroupingFunctions) {
  // Section 2's histogram query through the full SQL path.
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "SELECT day, nation, MAX(Temp) AS max_temp FROM Weather "
      "GROUP BY Day(Time) AS day, "
      "Nation(Latitude, Longitude) AS nation "
      "ORDER BY 1, 2",
      catalog);
  EXPECT_GT(t.num_rows(), 0u);
  EXPECT_EQ(t.schema().field(0).name, "day");
  EXPECT_EQ(t.schema().field(1).name, "nation");
  EXPECT_EQ(t.schema().field(2).name, "max_temp");
}

TEST(EngineTest, CountDistinctThroughSql) {
  Catalog catalog = TestCatalog();
  Table t = MustRun("SELECT COUNT(DISTINCT Color) AS c FROM Sales", catalog);
  EXPECT_EQ(t.GetValue(0, 0), Value::Int64(2));
}

TEST(EngineTest, ParameterizedAggregate) {
  Catalog catalog = TestCatalog();
  Table t = MustRun("SELECT max_n(Units, 3) AS top3 FROM Sales", catalog);
  EXPECT_EQ(t.GetValue(0, 0), Value::String("115,85,85"));
}

TEST(EngineTest, GroupedQueryWithoutAggregates) {
  // Legal: produces the distinct groups.
  Catalog catalog = TestCatalog();
  Table t = MustRun("SELECT Model FROM Sales GROUP BY Model ORDER BY 1",
                    catalog);
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetValue(0, 0), Value::String("Chevy"));
}

TEST(EngineTest, ErrorMessages) {
  Catalog catalog = TestCatalog();
  EXPECT_FALSE(ExecuteSql("SELECT x FROM NoSuchTable", catalog).ok());
  // Non-grouped column.
  EXPECT_FALSE(
      ExecuteSql("SELECT Color, SUM(Units) FROM Sales GROUP BY Model", catalog)
          .ok());
  // Aggregate in WHERE.
  EXPECT_FALSE(
      ExecuteSql("SELECT Model FROM Sales WHERE SUM(Units) > 1", catalog).ok());
  // SELECT * with GROUP BY.
  EXPECT_FALSE(
      ExecuteSql("SELECT * FROM Sales GROUP BY Model", catalog).ok());
  // GROUPING of a non-grouping column.
  EXPECT_FALSE(ExecuteSql(
                   "SELECT GROUPING(Color) FROM Sales GROUP BY Model", catalog)
                   .ok());
  // Unknown aggregate/scalar function.
  EXPECT_FALSE(
      ExecuteSql("SELECT frobnicate(Units) FROM Sales GROUP BY Model", catalog)
          .ok());
}

TEST(EngineTest, OrderByOrdinalOutOfRange) {
  Catalog catalog = TestCatalog();
  EXPECT_FALSE(ExecuteSql("SELECT Model FROM Sales ORDER BY 9", catalog).ok());
}

// ------------------------------------------------------------ UNION [ALL]

TEST(UnionTest, UnionAllConcatenatesAndUnionDedupes) {
  Catalog catalog = TestCatalog();
  Table all = MustRun(
      "SELECT Model FROM Sales UNION ALL SELECT Model FROM Sales", catalog);
  EXPECT_EQ(all.num_rows(), 16u);
  Table distinct = MustRun(
      "SELECT Model FROM Sales UNION SELECT Model FROM Sales", catalog);
  EXPECT_EQ(distinct.num_rows(), 2u);  // Chevy, Ford
  // Arity mismatch across branches fails.
  EXPECT_FALSE(
      ExecuteSql(
          "SELECT Model FROM Sales UNION ALL SELECT Model, Year FROM Sales",
          catalog)
          .ok());
}

TEST(UnionTest, PaperSection2UnionBuildsTable5a) {
  // The paper's literal SQL for Table 5.a: a 4-way union of GROUP BYs with
  // 'ALL' string literals. Year is a string column here so the 'ALL'
  // literal type-checks, as in the paper's presentation.
  TableBuilder b({Field{"Model", DataType::kString},
                  Field{"Year", DataType::kString},
                  Field{"Color", DataType::kString},
                  Field{"Units", DataType::kInt64}});
  for (auto [m, y, c, u] :
       std::vector<std::tuple<const char*, const char*, const char*, int64_t>>{
           {"Chevy", "1994", "black", 50},
           {"Chevy", "1994", "white", 40},
           {"Chevy", "1995", "black", 85},
           {"Chevy", "1995", "white", 115},
           {"Ford", "1994", "black", 50}}) {
    b.Row({Value::String(m), Value::String(y), Value::String(c),
           Value::Int64(u)});
  }
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("Sales", std::move(b).Build().value()).ok());

  Table t = MustRun(
      "SELECT 'ALL', 'ALL', 'ALL', SUM(Units) FROM Sales "
      "  WHERE Model = 'Chevy' "
      "UNION "
      "SELECT Model, 'ALL', 'ALL', SUM(Units) FROM Sales "
      "  WHERE Model = 'Chevy' GROUP BY Model "
      "UNION "
      "SELECT Model, Year, 'ALL', SUM(Units) FROM Sales "
      "  WHERE Model = 'Chevy' GROUP BY Model, Year "
      "UNION "
      "SELECT Model, Year, Color, SUM(Units) FROM Sales "
      "  WHERE Model = 'Chevy' GROUP BY Model, Year, Color",
      catalog);
  // Table 5.a: 4 detail + 2 year + 1 model + 1 grand = 8 rows.
  EXPECT_EQ(t.num_rows(), 8u);
  EXPECT_EQ(Find(t, {Value::String("Chevy"), Value::String("1994"),
                     Value::String("ALL")},
                 3),
            Value::Int64(90));
  EXPECT_EQ(Find(t, {Value::String("ALL"), Value::String("ALL"),
                     Value::String("ALL")},
                 3),
            Value::Int64(290));

  // The ROLLUP operator produces the same relation in one statement (with
  // the real ALL token instead of the string).
  Table rollup = MustRun(
      "SELECT Model, Year, Color, SUM(Units) AS Units FROM Sales "
      "WHERE Model = 'Chevy' GROUP BY ROLLUP Model, Year, Color",
      catalog);
  EXPECT_EQ(rollup.num_rows(), t.num_rows());
}

// --------------------------------------------------------------- N_tile

TEST(NTileTest, PaperRedBrickPercentileQuery) {
  // Section 1.2, verbatim shape: "returns one row giving the minimum and
  // maximum temperatures of the middle 10% of all temperatures."
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "SELECT Percentile, MIN(Temp), MAX(Temp) "
      "FROM Weather "
      "GROUP BY N_tile(Temp, 10) AS Percentile "
      "HAVING Percentile = 5",
      catalog);
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.GetValue(0, 0), Value::Int64(5));
  EXPECT_LE(t.GetValue(0, 1).AsDouble(), t.GetValue(0, 2).AsDouble());
}

TEST(NTileTest, BucketsPartitionTheTable) {
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "SELECT N_tile(Temp, 4) AS quartile, COUNT(*) AS n "
      "FROM Weather GROUP BY N_tile(Temp, 4) ORDER BY 1",
      catalog);
  ASSERT_EQ(t.num_rows(), 4u);
  int64_t total = 0;
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(t.GetValue(r, 0), Value::Int64(static_cast<int64_t>(r + 1)));
    total += t.GetValue(r, 1).int64_value();
  }
  EXPECT_EQ(total, 100);  // every row lands in exactly one bucket
  // Quartile populations are near-equal (±1).
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_NEAR(static_cast<double>(t.GetValue(r, 1).int64_value()), 25.0,
                1.0);
  }
}

TEST(NTileTest, ErrorsOnBadArguments) {
  Catalog catalog = TestCatalog();
  EXPECT_FALSE(ExecuteSql(
                   "SELECT N_tile(Temp, 0) FROM Weather GROUP BY "
                   "N_tile(Temp, 0)",
                   catalog)
                   .ok());
  EXPECT_FALSE(ExecuteSql(
                   "SELECT N_tile(Temp, Temp) FROM Weather GROUP BY "
                   "N_tile(Temp, Temp)",
                   catalog)
                   .ok());
}

// ------------------------------------------------------- interaction edges

TEST(EngineEdgeTest, HavingOnGroupingFunction) {
  // Keep only the super-aggregate rows — GROUPING() in HAVING.
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "SELECT Model, SUM(Units) AS s FROM Sales GROUP BY CUBE Model "
      "HAVING GROUPING(Model) = TRUE",
      catalog);
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.GetValue(0, 0).is_all());
  EXPECT_EQ(t.GetValue(0, 1), Value::Int64(510));
}

TEST(EngineEdgeTest, CaseOverAggregatesInSelectAndHaving) {
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "SELECT Model, CASE WHEN SUM(Units) > 250 THEN 'big' ELSE 'small' END "
      "AS size FROM Sales GROUP BY Model "
      "HAVING CASE WHEN SUM(Units) > 0 THEN TRUE ELSE FALSE END "
      "ORDER BY 1",
      catalog);
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetValue(0, 1), Value::String("big"));    // Chevy 290
  EXPECT_EQ(t.GetValue(1, 1), Value::String("small"));  // Ford 220
}

TEST(EngineEdgeTest, UnionBranchesKeepTheirOwnOrderAndLimit) {
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "SELECT Model FROM Sales ORDER BY Units DESC LIMIT 1 "
      "UNION ALL "
      "SELECT Color FROM Sales ORDER BY Units ASC LIMIT 1",
      catalog);
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetValue(0, 0), Value::String("Chevy"));  // 115 units row
  EXPECT_EQ(t.GetValue(1, 0), Value::String("white"));  // 10 units row
}

TEST(EngineEdgeTest, LimitZeroAndLimitBeyondRows) {
  Catalog catalog = TestCatalog();
  EXPECT_EQ(MustRun("SELECT Model FROM Sales LIMIT 0", catalog).num_rows(),
            0u);
  EXPECT_EQ(MustRun("SELECT Model FROM Sales LIMIT 999", catalog).num_rows(),
            8u);
}

TEST(EngineEdgeTest, WhereEliminatesEverything) {
  // Grouped query over an empty filter result: only the grand total (if the
  // grouping sets include it) survives, with COUNT = 0.
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "SELECT Model, COUNT(*) AS n FROM Sales WHERE Units > 100000 "
      "GROUP BY CUBE Model",
      catalog);
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_TRUE(t.GetValue(0, 0).is_all());
  EXPECT_EQ(t.GetValue(0, 1), Value::Int64(0));
}

// ---------------------------------------------------------------- analyze

TEST(AnalyzeTest, CountsAggregatesAndGroupBy) {
  Result<SelectStatement> stmt = ParseSelect(
      "SELECT Model, SUM(Units), AVG(Units) FROM Sales "
      "GROUP BY Model HAVING SUM(Units) > 10");
  ASSERT_TRUE(stmt.ok());
  QueryStats stats = Analyze(*stmt);
  EXPECT_EQ(stats.num_aggregates, 3);
  EXPECT_TRUE(stats.has_group_by);

  stmt = ParseSelect("SELECT a, b FROM t WHERE a = 1");
  ASSERT_TRUE(stmt.ok());
  stats = Analyze(*stmt);
  EXPECT_EQ(stats.num_aggregates, 0);
  EXPECT_FALSE(stats.has_group_by);
}

// ------------------------------------------------------------------ explain

// Joins an EXPLAIN result (one string column, one row per line) back into
// the rendered text.
std::string PlanText(const Table& t) {
  std::string text;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    text += t.GetValue(r, 0).string_value();
    text += '\n';
  }
  return text;
}

TEST(ExplainTest, RendersCubePlanWithoutExecuting) {
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "EXPLAIN SELECT Model, Year, SUM(Units) FROM Sales "
      "GROUP BY CUBE Model, Year",
      catalog);
  ASSERT_EQ(t.num_columns(), 1u);
  EXPECT_EQ(t.schema().fields()[0].name, "EXPLAIN");
  std::string text = PlanText(t);
  EXPECT_NE(text.find("cube plan over"), std::string::npos) << text;
  EXPECT_NE(text.find("algorithm:"), std::string::npos) << text;
  EXPECT_NE(text.find("column cardinalities:"), std::string::npos) << text;
  EXPECT_NE(text.find("est_cells="), std::string::npos) << text;
  // Plain EXPLAIN does not execute, so no runtime sections appear.
  EXPECT_EQ(text.find("trace:"), std::string::npos) << text;
  EXPECT_EQ(text.find("actual="), std::string::npos) << text;
}

TEST(ExplainTest, ReportsFallbackFromForcedAlgorithm) {
  // MEDIAN is holistic, so a forced from_core cascade cannot run; the plan
  // must name the algorithm that actually executes, not the request.
  Catalog catalog = TestCatalog();
  EngineOptions options;
  options.cube.algorithm = CubeAlgorithm::kFromCore;
  Table t = MustRun(
      "EXPLAIN SELECT Model, MEDIAN(Units) FROM Sales GROUP BY CUBE Model",
      catalog, options);
  std::string text = PlanText(t);
  EXPECT_NE(text.find("algorithm: union_groupby (requested from_core, "
                      "fell back)"),
            std::string::npos)
      << text;
}

TEST(ExplainTest, AnalyzeExecutesAndRendersTraceAndCellCounts) {
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "EXPLAIN ANALYZE SELECT Model, Year, Color, SUM(Units) FROM Sales "
      "GROUP BY CUBE Model, Year, Color",
      catalog);
  ASSERT_EQ(t.num_columns(), 1u);
  EXPECT_EQ(t.schema().fields()[0].name, "EXPLAIN ANALYZE");
  std::string text = PlanText(t);
  // Plan half (same as plain EXPLAIN).
  EXPECT_NE(text.find("cube plan over"), std::string::npos) << text;
  EXPECT_NE(text.find("algorithm:"), std::string::npos) << text;
  // Runtime half: per-grouping-set actuals vs estimates and the span tree.
  EXPECT_NE(text.find("grouping sets (actual vs estimated cells):"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("actual="), std::string::npos) << text;
  EXPECT_NE(text.find("estimated="), std::string::npos) << text;
  EXPECT_NE(text.find("{Model, Year, Color}"), std::string::npos) << text;
  EXPECT_NE(text.find("{}"), std::string::npos) << text;
  EXPECT_NE(text.find("trace:"), std::string::npos) << text;
  EXPECT_NE(text.find("execute_cube"), std::string::npos) << text;
  // Every (Model, Year, Color) combination in the 8-row Sales table is
  // distinct, so the core grouping set has 8 cells.
  EXPECT_NE(text.find("{Model, Year, Color}  actual=8"), std::string::npos)
      << text;
}

TEST(ExplainTest, RendersMaterializationBudgetAndFoldProvenance) {
  Catalog catalog = TestCatalog();
  EngineOptions options;
  // A budget far below the core's footprint: only the core is kept, and
  // every other grouping set is planned as a fold from it.
  options.cube.materialize_budget_bytes = 64;
  Table t = MustRun(
      "EXPLAIN SELECT Model, Year, SUM(Units) FROM Sales "
      "GROUP BY CUBE Model, Year",
      catalog, options);
  std::string text = PlanText(t);
  EXPECT_NE(text.find("materialization budget: 64 bytes"), std::string::npos)
      << text;
  EXPECT_NE(text.find("1/4 views kept"), std::string::npos) << text;
  EXPECT_NE(text.find("est cell ="), std::string::npos) << text;
  EXPECT_NE(text.find("{Model, Year}  est_cells="), std::string::npos)
      << text;
  EXPECT_NE(text.find("materialized"), std::string::npos) << text;
  EXPECT_NE(text.find("<- fold from {Model, Year}"), std::string::npos)
      << text;
  // Plain EXPLAIN still does not execute.
  EXPECT_EQ(text.find("actual="), std::string::npos) << text;
}

TEST(ExplainTest, AnalyzeRendersRewriteProvenanceAndLatticeCounters) {
  Catalog catalog = TestCatalog();
  EngineOptions options;
  options.cube.materialize_budget_bytes = 64;
  Table t = MustRun(
      "EXPLAIN ANALYZE SELECT Model, Year, SUM(Units) FROM Sales "
      "GROUP BY CUBE Model, Year",
      catalog, options);
  std::string text = PlanText(t);
  // Runtime provenance: which ancestor actually answered each set.
  EXPECT_NE(text.find("materialized"), std::string::npos) << text;
  EXPECT_NE(text.find("<- fold from {Model, Year}"), std::string::npos)
      << text;
  // And the lattice summary: budget used, views kept, resident bytes.
  EXPECT_NE(text.find("lattice: budget_bytes=64"), std::string::npos) << text;
  EXPECT_NE(text.find("views=1"), std::string::npos) << text;
  EXPECT_NE(text.find("ancestor_folds=3"), std::string::npos) << text;
  EXPECT_NE(text.find("base_fallbacks=0"), std::string::npos) << text;
  EXPECT_NE(text.find("bytes_materialized="), std::string::npos) << text;
  // Estimates vs actuals still render alongside the provenance.
  EXPECT_NE(text.find("actual="), std::string::npos) << text;
  EXPECT_NE(text.find("estimated="), std::string::npos) << text;
}

TEST(ExplainTest, BudgetIgnoredForHolisticAggregates) {
  Catalog catalog = TestCatalog();
  EngineOptions options;
  options.cube.materialize_budget_bytes = 1 << 20;
  // MEDIAN is holistic: the rewrite must refuse, and the plan must say so.
  Table t = MustRun(
      "EXPLAIN SELECT Model, MEDIAN(Units) FROM Sales GROUP BY CUBE Model",
      catalog, options);
  std::string text = PlanText(t);
  EXPECT_NE(text.find("materialization budget: 1048576 bytes (ignored"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("views kept"), std::string::npos) << text;

  // EXPLAIN ANALYZE: no lattice section when the rewrite never engaged.
  Table analyzed = MustRun(
      "EXPLAIN ANALYZE SELECT Model, MEDIAN(Units) FROM Sales "
      "GROUP BY CUBE Model",
      catalog, options);
  std::string analyzed_text = PlanText(analyzed);
  EXPECT_EQ(analyzed_text.find("lattice:"), std::string::npos)
      << analyzed_text;
}

TEST(ExplainTest, AnalyzeParallelQueryShowsStitchedTaskSpans) {
  Catalog catalog;
  Table big = GenerateSales({.num_rows = 20000}).value();
  ASSERT_TRUE(catalog.Register("BigSales", big).ok());
  EngineOptions options;
  options.cube.num_threads = 2;
  options.cube.num_partitions = 4;
  options.cube.morsel_rows = 1000;
  Table t = MustRun(
      "EXPLAIN ANALYZE SELECT Model, Color, SUM(Units) FROM BigSales "
      "GROUP BY CUBE Model, Color",
      catalog, options);
  std::string text = PlanText(t);
  EXPECT_NE(text.find("parallel: threads=2"), std::string::npos) << text;
  EXPECT_NE(text.find("partitions=4"), std::string::npos) << text;
  // The span tree shows the phase spans with the pool-thread task spans
  // (morsel scans, partition merges, cascade sets) stitched under them —
  // work that ran on worker threads, attached under the query root.
  EXPECT_NE(text.find("parallel_scan"), std::string::npos) << text;
  EXPECT_NE(text.find("morsel_scan"), std::string::npos) << text;
  EXPECT_NE(text.find("parallel_merge"), std::string::npos) << text;
  EXPECT_NE(text.find("merge_partition"), std::string::npos) << text;
  EXPECT_NE(text.find("parallel_cascade"), std::string::npos) << text;
  EXPECT_NE(text.find("cascade_set"), std::string::npos) << text;
  EXPECT_NE(text.find("cells_absorbed="), std::string::npos) << text;
}

TEST(ExplainTest, AnalyzeProjectionQuery) {
  Catalog catalog = TestCatalog();
  Table t = MustRun(
      "EXPLAIN ANALYZE SELECT Model FROM Sales WHERE Units > 100", catalog);
  std::string text = PlanText(t);
  EXPECT_NE(text.find("projection over Sales"), std::string::npos) << text;
  EXPECT_NE(text.find("rows after WHERE"), std::string::npos) << text;
  EXPECT_NE(text.find("trace:"), std::string::npos) << text;
}

}  // namespace
}  // namespace datacube::sql
