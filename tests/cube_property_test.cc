#include <gtest/gtest.h>

#include <random>

#include "datacube/cube/cube_operator.h"
#include "datacube/workload/sales.h"

namespace datacube {
namespace {

// Random table with `dims` low-cardinality string dimensions (with NULLs)
// and two measures.
Table RandomTable(std::mt19937_64& rng, size_t rows, size_t dims,
                  size_t cardinality, double null_rate) {
  std::vector<Field> fields;
  for (size_t d = 0; d < dims; ++d) {
    fields.push_back(Field{"d" + std::to_string(d), DataType::kString});
  }
  fields.push_back(Field{"x", DataType::kInt64});
  fields.push_back(Field{"y", DataType::kFloat64});
  Table t{Schema{fields}};
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> row;
    for (size_t d = 0; d < dims; ++d) {
      if (unit(rng) < null_rate) {
        row.push_back(Value::Null());
      } else {
        row.push_back(Value::String("v" + std::to_string(rng() % cardinality)));
      }
    }
    row.push_back(unit(rng) < null_rate
                      ? Value::Null()
                      : Value::Int64(static_cast<int64_t>(rng() % 1000)));
    row.push_back(Value::Float64(static_cast<double>(rng() % 97)));
    EXPECT_TRUE(t.AppendRow(row).ok());
  }
  return t;
}

struct PropertyCase {
  size_t rows;
  size_t dims;
  size_t cardinality;
  double null_rate;
  uint64_t seed;
  std::string label;
};

class CrossAlgorithmTest : public ::testing::TestWithParam<PropertyCase> {};

// The central property: every computation strategy produces the identical
// relation (as a bag of rows) for every spec shape, on randomized inputs
// with NULL keys and NULL measures.
TEST_P(CrossAlgorithmTest, AllAlgorithmsAgreeOnRandomCubes) {
  const PropertyCase& pc = GetParam();
  std::mt19937_64 rng(pc.seed);
  Table t = RandomTable(rng, pc.rows, pc.dims, pc.cardinality, pc.null_rate);

  std::vector<GroupExpr> dims;
  for (size_t d = 0; d < pc.dims; ++d) {
    dims.push_back(GroupCol("d" + std::to_string(d)));
  }
  std::vector<AggregateSpec> aggs = {
      Agg("sum", "x", "sum_x"),   Agg("count", "x", "count_x"),
      Agg("min", "x", "min_x"),   Agg("max", "x", "max_x"),
      Agg("avg", "x", "avg_x"),   CountStar("n")};

  CubeOptions baseline;
  baseline.algorithm = CubeAlgorithm::kUnionGroupBy;
  Result<CubeResult> expected = Cube(t, dims, aggs, baseline);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (CubeAlgorithm alg :
       {CubeAlgorithm::kNaive2N, CubeAlgorithm::kFromCore,
        CubeAlgorithm::kArrayCube, CubeAlgorithm::kSortRollup,
        CubeAlgorithm::kSortFromCore}) {
    CubeOptions opts;
    opts.algorithm = alg;
    Result<CubeResult> got = Cube(t, dims, aggs, opts);
    ASSERT_TRUE(got.ok()) << CubeAlgorithmName(alg);
    EXPECT_TRUE(got->table.EqualsIgnoringRowOrder(expected->table))
        << CubeAlgorithmName(alg) << " diverges on " << pc.label;
  }

  CubeOptions parallel;
  parallel.num_threads = 3;
  Result<CubeResult> par = Cube(t, dims, aggs, parallel);
  ASSERT_TRUE(par.ok());
  EXPECT_TRUE(par->table.EqualsIgnoringRowOrder(expected->table))
      << "parallel diverges on " << pc.label;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CrossAlgorithmTest,
    ::testing::Values(
        PropertyCase{50, 1, 3, 0.0, 1, "d1_small"},
        PropertyCase{200, 2, 4, 0.1, 2, "d2_nulls"},
        PropertyCase{500, 3, 3, 0.2, 3, "d3_heavy_nulls"},
        PropertyCase{300, 4, 2, 0.05, 4, "d4_binary"},
        PropertyCase{1000, 2, 20, 0.0, 5, "d2_wide"},
        PropertyCase{64, 3, 8, 0.5, 6, "d3_half_null"},
        PropertyCase{1, 2, 2, 0.0, 7, "single_row"},
        PropertyCase{0, 2, 2, 0.0, 8, "empty_input"}),
    [](const auto& info) { return info.param.label; });

class RollupShapeTest : public ::testing::TestWithParam<PropertyCase> {};

// Rollup-shaped specs across algorithms (exercises SortRollup's pipelined
// path on its home turf, plus compound group_by + rollup shapes).
TEST_P(RollupShapeTest, RollupAgreesAcrossAlgorithms) {
  const PropertyCase& pc = GetParam();
  std::mt19937_64 rng(pc.seed + 100);
  Table t = RandomTable(rng, pc.rows, pc.dims, pc.cardinality, pc.null_rate);

  CubeSpec spec;
  spec.group_by = {GroupCol("d0")};
  for (size_t d = 1; d < pc.dims; ++d) {
    spec.rollup.push_back(GroupCol("d" + std::to_string(d)));
  }
  spec.aggregates = {Agg("sum", "x", "s"), Agg("max", "x", "m"),
                     CountStar("n")};

  CubeOptions baseline;
  baseline.algorithm = CubeAlgorithm::kUnionGroupBy;
  Result<CubeResult> expected = ExecuteCube(t, spec, baseline);
  ASSERT_TRUE(expected.ok());

  for (CubeAlgorithm alg :
       {CubeAlgorithm::kSortRollup, CubeAlgorithm::kFromCore,
        CubeAlgorithm::kNaive2N, CubeAlgorithm::kAuto}) {
    CubeOptions opts;
    opts.algorithm = alg;
    Result<CubeResult> got = ExecuteCube(t, spec, opts);
    ASSERT_TRUE(got.ok()) << CubeAlgorithmName(alg);
    EXPECT_TRUE(got->table.EqualsIgnoringRowOrder(expected->table))
        << CubeAlgorithmName(alg) << " diverges on " << pc.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RollupShapeTest,
    ::testing::Values(
        PropertyCase{100, 2, 4, 0.0, 11, "r2"},
        PropertyCase{300, 3, 5, 0.15, 12, "r3_nulls"},
        PropertyCase{500, 4, 3, 0.3, 13, "r4_heavy_nulls"},
        PropertyCase{40, 3, 10, 0.0, 14, "r3_sparse"}),
    [](const auto& info) { return info.param.label; });

// Holistic aggregates agree between the two strategies that support them.
TEST(CubePropertyTest, HolisticMedianAcrossStrategies) {
  std::mt19937_64 rng(77);
  Table t = RandomTable(rng, 400, 2, 5, 0.1);
  std::vector<GroupExpr> dims = {GroupCol("d0"), GroupCol("d1")};
  std::vector<AggregateSpec> aggs = {Agg("median", "x", "med"),
                                     Agg("mode", "x", "mode")};
  CubeOptions naive;
  naive.algorithm = CubeAlgorithm::kNaive2N;
  CubeOptions union_gb;
  union_gb.algorithm = CubeAlgorithm::kUnionGroupBy;
  Result<CubeResult> a = Cube(t, dims, aggs, naive);
  Result<CubeResult> b = Cube(t, dims, aggs, union_gb);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->table.EqualsIgnoringRowOrder(b->table));
}

// The cube cardinality identity: on a complete cross product the result has
// exactly Π(C_i + 1) rows (Section 5's size analysis).
class CardinalityTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(CardinalityTest, CompleteCrossProductSize) {
  auto [c0, c1, c2] = GetParam();
  Table t(Schema({Field{"a", DataType::kInt64}, Field{"b", DataType::kInt64},
                  Field{"c", DataType::kInt64}, Field{"x", DataType::kInt64}}));
  for (size_t i = 0; i < c0; ++i) {
    for (size_t j = 0; j < c1; ++j) {
      for (size_t k = 0; k < c2; ++k) {
        ASSERT_TRUE(t.AppendRow({Value::Int64(static_cast<int64_t>(i)),
                                 Value::Int64(static_cast<int64_t>(j)),
                                 Value::Int64(static_cast<int64_t>(k)),
                                 Value::Int64(1)})
                        .ok());
      }
    }
  }
  Result<CubeResult> cube =
      Cube(t, {GroupCol("a"), GroupCol("b"), GroupCol("c")},
           {Agg("sum", "x", "s")});
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->table.num_rows(), (c0 + 1) * (c1 + 1) * (c2 + 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CardinalityTest,
                         ::testing::Values(std::make_tuple(2, 3, 3),
                                           std::make_tuple(1, 1, 1),
                                           std::make_tuple(4, 4, 4),
                                           std::make_tuple(2, 5, 1)));

// Aggregating the cube's own ALL rows reproduces cross-checking totals: the
// (ALL, b, ALL) value equals the sum of (a, b, ALL) over a — the paper's
// "choice of computing the result by aggregating the lower row or the right
// column; either approach gives the same answer".
TEST(CubePropertyTest, CrossTabRowColumnConsistency) {
  std::mt19937_64 rng(123);
  Table t = RandomTable(rng, 300, 2, 6, 0.1);
  Result<CubeResult> cube = Cube(t, {GroupCol("d0"), GroupCol("d1")},
                                 {Agg("sum", "x", "s")});
  ASSERT_TRUE(cube.ok());
  const Table& ct = cube->table;
  // For each distinct d1 value v: sum over rows (a, v) with concrete a must
  // equal the (ALL, v) row.
  for (size_t r = 0; r < ct.num_rows(); ++r) {
    if (!ct.GetValue(r, 0).is_all() || ct.GetValue(r, 1).is_all()) continue;
    Value v = ct.GetValue(r, 1);
    int64_t expected = ct.GetValue(r, 2).is_null()
                           ? 0
                           : ct.GetValue(r, 2).int64_value();
    int64_t sum = 0;
    bool any = false;
    for (size_t q = 0; q < ct.num_rows(); ++q) {
      if (ct.GetValue(q, 0).is_all() || !(ct.GetValue(q, 1) == v)) continue;
      if (!ct.GetValue(q, 2).is_null()) {
        sum += ct.GetValue(q, 2).int64_value();
        any = true;
      }
    }
    if (any) {
      EXPECT_EQ(sum, expected);
    }
  }
}

}  // namespace
}  // namespace datacube
