// Tests for the persistence layer: the Value codec, per-aggregate scratchpad
// serialization, and full MaterializedCube checkpoint/restore — the
// Section 6 "compute and store the cube" scenario, with maintenance
// continuing correctly after a reload.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>

#include "datacube/agg/builtin_aggregates.h"
#include "datacube/agg/distinct.h"
#include "datacube/agg/registry.h"
#include "datacube/common/codec.h"
#include "datacube/cube/materialized_cube.h"
#include "datacube/workload/sales.h"

namespace datacube {
namespace {

// ------------------------------------------------------------------ codec

TEST(CodecTest, ValueRoundTripAllKinds) {
  std::vector<Value> values = {
      Value::Null(),
      Value::All(),
      Value::Bool(true),
      Value::Bool(false),
      Value::Int64(0),
      Value::Int64(-123456789012345),
      Value::Float64(0.1),
      Value::Float64(-1e300),
      Value::String(""),
      Value::String("hello world"),
      Value::String("emb;edd:ed S5:tags I7;"),
      Value::FromDate(DateFromCivil(1996, 6, 1)),
  };
  std::string encoded;
  for (const Value& v : values) EncodeValue(v, &encoded);
  size_t pos = 0;
  for (const Value& expected : values) {
    Result<Value> got = DecodeValue(encoded, &pos);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, expected);
    // Kind must match exactly (NULL vs ALL vs empty string).
    EXPECT_EQ(got->kind(), expected.kind());
  }
  EXPECT_EQ(pos, encoded.size());
}

TEST(CodecTest, FloatBitsExact) {
  double tricky = 0.1 + 0.2;  // not representable as a short decimal
  std::string encoded;
  EncodeValue(Value::Float64(tricky), &encoded);
  size_t pos = 0;
  Result<Value> got = DecodeValue(encoded, &pos);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->float64_value(), tricky);  // bit-exact
}

TEST(CodecTest, MalformedInputs) {
  size_t pos = 0;
  EXPECT_FALSE(DecodeValue("", &pos).ok());
  pos = 0;
  EXPECT_FALSE(DecodeValue("X;", &pos).ok());
  pos = 0;
  EXPECT_FALSE(DecodeValue("I123", &pos).ok());  // missing terminator
  pos = 0;
  EXPECT_FALSE(DecodeValue("S10:short", &pos).ok());  // truncated payload
  pos = 0;
  EXPECT_FALSE(DecodeBlob("5:ab", &pos).ok());
}

TEST(CodecTest, BlobAndCountRoundTrip) {
  std::string encoded;
  EncodeCount(42, &encoded);
  EncodeBlob("raw \0 bytes", &encoded);  // note: embedded NUL truncates here
  EncodeBlob("", &encoded);
  size_t pos = 0;
  EXPECT_EQ(DecodeCount(encoded, &pos).value(), 42u);
  EXPECT_EQ(DecodeBlob(encoded, &pos).value(), std::string("raw "));
  EXPECT_EQ(DecodeBlob(encoded, &pos).value(), "");
}

// ------------------------------------------------- scratchpad round trips

class StateRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StateRoundTripTest, SerializeDeserializePreservesResult) {
  Result<AggregateFunctionPtr> made =
      AggregateRegistry::Global().Make(GetParam());
  ASSERT_TRUE(made.ok());
  const AggregateFunction& fn = **made;
  bool wants_bool = GetParam().rfind("bool", 0) == 0;
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    AggStatePtr state = fn.Init();
    size_t n = rng() % 30;
    for (size_t i = 0; i < n; ++i) {
      Value v = wants_bool ? Value::Bool(rng() % 2 == 0)
                           : Value::Int64(static_cast<int64_t>(rng() % 40));
      fn.Iter1(state.get(), v);
    }
    std::string blob;
    ASSERT_TRUE(fn.SerializeState(state.get(), &blob).ok()) << fn.name();
    size_t pos = 0;
    Result<AggStatePtr> restored = fn.DeserializeState(blob, &pos);
    ASSERT_TRUE(restored.ok()) << fn.name() << ": "
                               << restored.status().ToString();
    EXPECT_EQ(pos, blob.size());
    EXPECT_EQ(fn.Final(restored->get()), fn.Final(state.get())) << fn.name();
    // The restored scratchpad keeps working: fold one more value into both.
    Value extra = wants_bool ? Value::Bool(false) : Value::Int64(7);
    fn.Iter1(state.get(), extra);
    fn.Iter1(restored->get(), extra);
    EXPECT_EQ(fn.Final(restored->get()), fn.Final(state.get())) << fn.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBuiltins, StateRoundTripTest,
    ::testing::Values("count_star", "count", "sum", "min", "max", "avg",
                      "var_pop", "stddev_pop", "median", "mode",
                      "count_distinct", "center_of_mass", "bool_and",
                      "bool_or"),
    [](const auto& info) { return info.param; });

TEST(StateRoundTripTest, ParameterizedAndDistinctWrapper) {
  for (AggregateFunctionPtr fn :
       {MakeMaxN(3), MakePercentile(75), MakeDistinct(MakeSum())}) {
    AggStatePtr state = fn->Init();
    for (int v : {5, 5, 9, 2, 7}) fn->Iter1(state.get(), Value::Int64(v));
    std::string blob;
    ASSERT_TRUE(fn->SerializeState(state.get(), &blob).ok()) << fn->name();
    size_t pos = 0;
    Result<AggStatePtr> restored = fn->DeserializeState(blob, &pos);
    ASSERT_TRUE(restored.ok()) << fn->name();
    EXPECT_EQ(fn->Final(restored->get()), fn->Final(state.get())) << fn->name();
  }
}

// ------------------------------------------------------- cube checkpoints

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/cube_checkpoint_test.dat";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

CubeSpec CheckpointSpec() {
  CubeSpec spec;
  spec.cube = {GroupCol("Model"), GroupCol("Year"), GroupCol("Color")};
  spec.aggregates = {Agg("sum", "Units", "s"), CountStar("n"),
                     Agg("avg", "Units", "a"), Agg("max", "Units", "mx")};
  return spec;
}

TEST_F(CheckpointTest, SaveLoadRoundTrip) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec = CheckpointSpec();
  auto cube = MaterializedCube::Build(sales, spec).value();
  ASSERT_TRUE(cube->SaveToFile(path_).ok());

  Result<std::unique_ptr<MaterializedCube>> loaded =
      MaterializedCube::LoadFromFile(spec, path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_base_rows(), cube->num_base_rows());
  Result<Table> a = cube->ToTable();
  Result<Table> b = (*loaded)->ToTable();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->EqualsIgnoringRowOrder(*b));
}

TEST_F(CheckpointTest, MaintenanceContinuesAfterReload) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec = CheckpointSpec();
  auto cube = MaterializedCube::Build(sales, spec).value();
  // Mutate, checkpoint mid-stream, reload, keep mutating both.
  ASSERT_TRUE(cube->ApplyInsert({Value::String("Tesla"), Value::Int64(1995),
                                 Value::String("red"), Value::Int64(30)})
                  .ok());
  ASSERT_TRUE(cube->ApplyDelete({Value::String("Ford"), Value::Int64(1994),
                                 Value::String("white"), Value::Int64(10)})
                  .ok());
  ASSERT_TRUE(cube->SaveToFile(path_).ok());
  auto loaded = MaterializedCube::LoadFromFile(spec, path_).value();

  std::vector<Value> more = {Value::String("Chevy"), Value::Int64(1995),
                             Value::String("white"), Value::Int64(5)};
  ASSERT_TRUE(cube->ApplyInsert(more).ok());
  ASSERT_TRUE(loaded->ApplyInsert(more).ok());
  // Delete the global max from both — exercises the delete-holistic
  // recompute over the restored base data.
  std::vector<Value> max_row = {Value::String("Chevy"), Value::Int64(1995),
                                Value::String("white"), Value::Int64(115)};
  ASSERT_TRUE(cube->ApplyDelete(max_row).ok());
  ASSERT_TRUE(loaded->ApplyDelete(max_row).ok());

  Result<Table> a = cube->ToTable();
  Result<Table> b = loaded->ToTable();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->EqualsIgnoringRowOrder(*b));
}

TEST_F(CheckpointTest, MismatchedSpecRejected) {
  Table sales = Table3SalesTable().value();
  CubeSpec spec = CheckpointSpec();
  auto cube = MaterializedCube::Build(sales, spec).value();
  ASSERT_TRUE(cube->SaveToFile(path_).ok());

  CubeSpec fewer_aggs;
  fewer_aggs.cube = spec.cube;
  fewer_aggs.aggregates = {Agg("sum", "Units", "s")};
  EXPECT_FALSE(MaterializedCube::LoadFromFile(fewer_aggs, path_).ok());

  CubeSpec different_shape;
  different_shape.rollup = spec.cube;
  different_shape.aggregates = spec.aggregates;
  EXPECT_FALSE(MaterializedCube::LoadFromFile(different_shape, path_).ok());
}

TEST_F(CheckpointTest, CorruptAndMissingFiles) {
  CubeSpec spec = CheckpointSpec();
  EXPECT_FALSE(
      MaterializedCube::LoadFromFile(spec, path_ + ".does_not_exist").ok());
  std::ofstream junk(path_);
  junk << "not a checkpoint";
  junk.close();
  EXPECT_FALSE(MaterializedCube::LoadFromFile(spec, path_).ok());
}

TEST_F(CheckpointTest, DatesAndFloatsSurvive) {
  Table weather(Schema({Field{"d", DataType::kDate},
                        Field{"temp", DataType::kFloat64}}));
  ASSERT_TRUE(weather
                  .AppendRow({Value::FromDate(DateFromCivil(1996, 6, 1)),
                              Value::Float64(0.30000000000000004)})
                  .ok());
  ASSERT_TRUE(weather
                  .AppendRow({Value::FromDate(DateFromCivil(1995, 12, 31)),
                              Value::Null()})
                  .ok());
  CubeSpec spec;
  spec.cube = {GroupCol("d")};
  spec.aggregates = {Agg("avg", "temp", "a")};
  auto cube = MaterializedCube::Build(weather, spec).value();
  ASSERT_TRUE(cube->SaveToFile(path_).ok());
  auto loaded = MaterializedCube::LoadFromFile(spec, path_).value();
  Result<Value> v = loaded->ValueAt(
      "a", {Value::FromDate(DateFromCivil(1996, 6, 1))});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->float64_value(), 0.30000000000000004);
}

}  // namespace
}  // namespace datacube
