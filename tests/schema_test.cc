#include <gtest/gtest.h>

#include "datacube/cube/cube_operator.h"
#include "datacube/schema/star.h"

namespace datacube {
namespace {

// The paper's Section 3.6 example: sales offices roll up through districts
// and regions.
Table OfficeDim() {
  TableBuilder b({Field{"Office", DataType::kString},
                  Field{"District", DataType::kString},
                  Field{"OfficeCity", DataType::kString}});
  b.Row({Value::String("SF"), Value::String("NorCal"),
         Value::String("San Francisco")});
  b.Row({Value::String("SJ"), Value::String("NorCal"),
         Value::String("San Jose")});
  b.Row({Value::String("LA"), Value::String("SoCal"),
         Value::String("Los Angeles")});
  b.Row({Value::String("NYC"), Value::String("East"),
         Value::String("New York")});
  return std::move(b).Build().value();
}

Table DistrictDim() {
  TableBuilder b({Field{"District", DataType::kString},
                  Field{"Region", DataType::kString}});
  b.Row({Value::String("NorCal"), Value::String("West")});
  b.Row({Value::String("SoCal"), Value::String("West")});
  b.Row({Value::String("East"), Value::String("East Region")});
  return std::move(b).Build().value();
}

Table FactTable() {
  TableBuilder b({Field{"Office", DataType::kString},
                  Field{"Product", DataType::kString},
                  Field{"Units", DataType::kInt64}});
  b.Row({Value::String("SF"), Value::String("widget"), Value::Int64(10)});
  b.Row({Value::String("SF"), Value::String("gadget"), Value::Int64(5)});
  b.Row({Value::String("SJ"), Value::String("widget"), Value::Int64(7)});
  b.Row({Value::String("LA"), Value::String("widget"), Value::Int64(20)});
  b.Row({Value::String("NYC"), Value::String("gadget"), Value::Int64(3)});
  return std::move(b).Build().value();
}

TEST(DimensionTest, CreateValidatesKey) {
  Result<DimensionTable> good =
      DimensionTable::Create("office", OfficeDim(), "Office");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->name(), "office");
  EXPECT_EQ(good->AttributeNames(),
            (std::vector<std::string>{"District", "OfficeCity"}));

  EXPECT_FALSE(DimensionTable::Create("x", OfficeDim(), "Nope").ok());

  // Duplicate keys violate the functional dependency.
  Table dup = OfficeDim();
  ASSERT_TRUE(dup.AppendRow({Value::String("SF"), Value::String("Z"),
                             Value::String("Z")})
                  .ok());
  EXPECT_FALSE(DimensionTable::Create("x", dup, "Office").ok());

  // NULL keys are rejected.
  Table with_null = OfficeDim();
  ASSERT_TRUE(with_null
                  .AppendRow(
                      {Value::Null(), Value::String("Z"), Value::String("Z")})
                  .ok());
  EXPECT_FALSE(DimensionTable::Create("x", with_null, "Office").ok());
}

TEST(DimensionTest, LookupFollowsFunctionalDependency) {
  DimensionTable dim =
      DimensionTable::Create("office", OfficeDim(), "Office").value();
  EXPECT_EQ(dim.Lookup(Value::String("SF"), "District").value(),
            Value::String("NorCal"));
  EXPECT_FALSE(dim.Lookup(Value::String("??"), "District").ok());
  EXPECT_FALSE(dim.Lookup(Value::String("SF"), "NoAttr").ok());
}

TEST(SnowflakeTest, DenormalizeStar) {
  SnowflakeSchema schema(FactTable());
  ASSERT_TRUE(
      schema
          .AddDimension("Office",
                        DimensionTable::Create("office", OfficeDim(), "Office")
                            .value())
          .ok());
  Result<Table> wide = schema.Denormalize();
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  EXPECT_EQ(wide->num_columns(), 5u);  // fact 3 + 2 attributes
  auto district = wide->schema().FieldIndex("District");
  ASSERT_TRUE(district.has_value());
  EXPECT_EQ(wide->GetValue(0, *district), Value::String("NorCal"));
  EXPECT_EQ(wide->GetValue(4, *district), Value::String("East"));
}

TEST(SnowflakeTest, DenormalizeSnowflakeTwoLevels) {
  // Office -> District -> Region, the normalized form of Figure 6's
  // footnote ("an office, district, and region tables, rather than one big
  // denormalized table").
  SnowflakeSchema schema(FactTable());
  ASSERT_TRUE(
      schema
          .AddDimension("Office",
                        DimensionTable::Create("office", OfficeDim(), "Office")
                            .value())
          .ok());
  ASSERT_TRUE(schema
                  .AddSnowflakeDimension(
                      "office", "District",
                      DimensionTable::Create("district", DistrictDim(),
                                             "District")
                          .value())
                  .ok());
  Result<Table> wide = schema.Denormalize();
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  auto region = wide->schema().FieldIndex("Region");
  ASSERT_TRUE(region.has_value());
  EXPECT_EQ(wide->GetValue(0, *region), Value::String("West"));   // SF
  EXPECT_EQ(wide->GetValue(4, *region), Value::String("East Region"));  // NYC
}

TEST(SnowflakeTest, MissingDimensionRowYieldsNulls) {
  Table fact = FactTable();
  ASSERT_TRUE(fact.AppendRow({Value::String("??"), Value::String("widget"),
                              Value::Int64(1)})
                  .ok());
  SnowflakeSchema schema(std::move(fact));
  ASSERT_TRUE(
      schema
          .AddDimension("Office",
                        DimensionTable::Create("office", OfficeDim(), "Office")
                            .value())
          .ok());
  Result<Table> wide = schema.Denormalize();
  ASSERT_TRUE(wide.ok());
  auto district = wide->schema().FieldIndex("District");
  EXPECT_TRUE(wide->GetValue(5, *district).is_null());
}

TEST(SnowflakeTest, RegistrationErrors) {
  SnowflakeSchema schema(FactTable());
  DimensionTable office =
      DimensionTable::Create("office", OfficeDim(), "Office").value();
  EXPECT_FALSE(schema.AddDimension("NoSuchCol", office).ok());
  ASSERT_TRUE(schema.AddDimension("Office", office).ok());
  EXPECT_FALSE(schema.AddDimension("Office", office).ok());  // duplicate name
  DimensionTable district =
      DimensionTable::Create("district", DistrictDim(), "District").value();
  EXPECT_FALSE(
      schema.AddSnowflakeDimension("no_parent", "District", district).ok());
  EXPECT_FALSE(
      schema.AddSnowflakeDimension("office", "NoCol", district).ok());
}

TEST(SnowflakeTest, HierarchyRollupDrillsDown) {
  SnowflakeSchema schema(FactTable());
  ASSERT_TRUE(
      schema
          .AddDimension("Office",
                        DimensionTable::Create("office", OfficeDim(), "Office")
                            .value())
          .ok());
  ASSERT_TRUE(schema
                  .AddSnowflakeDimension(
                      "office", "District",
                      DimensionTable::Create("district", DistrictDim(),
                                             "District")
                          .value())
                  .ok());
  ASSERT_TRUE(schema
                  .AddHierarchy(Hierarchy{
                      "geography", {"Office", "District", "Region"}})
                  .ok());
  EXPECT_FALSE(schema.AddHierarchy(Hierarchy{"geography", {"x"}}).ok());
  EXPECT_FALSE(schema.AddHierarchy(Hierarchy{"empty", {}}).ok());

  Result<Table> wide = schema.Denormalize();
  ASSERT_TRUE(wide.ok());
  Result<CubeSpec> spec =
      schema.HierarchyRollupSpec("geography", {Agg("sum", "Units", "Units")});
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(schema.HierarchyRollupSpec("nope", {}).ok());

  Result<CubeResult> rollup = ExecuteCube(*wide, *spec);
  ASSERT_TRUE(rollup.ok()) << rollup.status().ToString();
  // Columns: Region, District, Office, Units. West region total = 10+5+7+20.
  const Table& t = rollup->table;
  bool found_west = false, found_norcal = false, found_grand = false;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.GetValue(r, 0) == Value::String("West") &&
        t.GetValue(r, 1).is_all()) {
      EXPECT_EQ(t.GetValue(r, 3), Value::Int64(42));
      found_west = true;
    }
    if (t.GetValue(r, 1) == Value::String("NorCal") &&
        t.GetValue(r, 2).is_all()) {
      EXPECT_EQ(t.GetValue(r, 3), Value::Int64(22));
      found_norcal = true;
    }
    if (t.GetValue(r, 0).is_all()) {
      EXPECT_EQ(t.GetValue(r, 3), Value::Int64(45));
      found_grand = true;
    }
  }
  EXPECT_TRUE(found_west);
  EXPECT_TRUE(found_norcal);
  EXPECT_TRUE(found_grand);
}

TEST(SnowflakeTest, DimensionAttributesAsDecorations) {
  // Section 3.5 meets 3.6: group by Office, decorate with the
  // FD-determined District.
  SnowflakeSchema schema(FactTable());
  ASSERT_TRUE(
      schema
          .AddDimension("Office",
                        DimensionTable::Create("office", OfficeDim(), "Office")
                            .value())
          .ok());
  Result<Table> wide = schema.Denormalize();
  ASSERT_TRUE(wide.ok());

  CubeSpec spec;
  spec.cube = {GroupCol("Office")};
  spec.aggregates = {Agg("sum", "Units", "Units")};
  spec.decorations = {
      Decoration{Expr::Column("District"), "District", /*determinant=*/0b1}};
  Result<CubeResult> cube = ExecuteCube(*wide, spec);
  ASSERT_TRUE(cube.ok());
  for (size_t r = 0; r < cube->table.num_rows(); ++r) {
    if (cube->table.GetValue(r, 0).is_all()) {
      EXPECT_TRUE(cube->table.GetValue(r, 1).is_null());
    } else {
      EXPECT_FALSE(cube->table.GetValue(r, 1).is_null());
    }
  }
}

}  // namespace
}  // namespace datacube
