#ifndef DATACUBE_AGG_DISTINCT_H_
#define DATACUBE_AGG_DISTINCT_H_

#include "datacube/agg/aggregate.h"

namespace datacube {

/// Wraps any aggregate so that it sees each distinct argument tuple once —
/// SQL's `agg(DISTINCT x)`. The scratchpad keeps the set of seen argument
/// tuples (with multiplicities, so Remove works), making the wrapper
/// holistic regardless of the inner function's class; the set is mergeable,
/// so supports_merge() stays true.
AggregateFunctionPtr MakeDistinct(AggregateFunctionPtr inner);

}  // namespace datacube

#endif  // DATACUBE_AGG_DISTINCT_H_
