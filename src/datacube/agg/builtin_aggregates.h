#ifndef DATACUBE_AGG_BUILTIN_AGGREGATES_H_
#define DATACUBE_AGG_BUILTIN_AGGREGATES_H_

#include "datacube/agg/aggregate.h"

namespace datacube {

/// Factory helpers for the built-in aggregate functions. These are also
/// available by name through AggregateRegistry ("count_star", "count",
/// "sum", "min", "max", "avg", "var_pop", "stddev_pop", "median", "mode",
/// "count_distinct", "max_n", "min_n", "center_of_mass").
AggregateFunctionPtr MakeCountStar();
AggregateFunctionPtr MakeCount();
AggregateFunctionPtr MakeSum();
AggregateFunctionPtr MakeMin();
AggregateFunctionPtr MakeMax();
AggregateFunctionPtr MakeAvg();
AggregateFunctionPtr MakeVarPop();
AggregateFunctionPtr MakeStdDevPop();
AggregateFunctionPtr MakeMedian();
AggregateFunctionPtr MakeMode();
AggregateFunctionPtr MakeCountDistinctAgg();
/// The N largest (MaxN) / smallest (MinN) values, rendered as a
/// comma-joined string — the paper's canonical algebraic examples whose
/// scratchpad is an M-tuple.
AggregateFunctionPtr MakeMaxN(int n);
AggregateFunctionPtr MakeMinN(int n);
/// center_of_mass(position, mass) — two-argument algebraic aggregate.
AggregateFunctionPtr MakeCenterOfMass();
/// percentile(x, p) with p in [0, 100]: the p-th percentile by linear
/// interpolation. Holistic, like median (its p = 50 special case) — the
/// Section 6 "medians and quartiles" family.
AggregateFunctionPtr MakePercentile(double p);
/// bool_and / bool_or over a boolean column (distributive; deletable via
/// true/false counters).
AggregateFunctionPtr MakeBoolAnd();
AggregateFunctionPtr MakeBoolOr();

}  // namespace datacube

#endif  // DATACUBE_AGG_BUILTIN_AGGREGATES_H_
