#include "datacube/agg/registry.h"

#include <algorithm>

#include "datacube/agg/builtin_aggregates.h"
#include "datacube/common/str_util.h"

namespace datacube {

namespace {

AggregateRegistry::Factory NoParams(AggregateFunctionPtr (*make)()) {
  return [make](const std::vector<Value>& params)
             -> Result<AggregateFunctionPtr> {
    if (!params.empty()) {
      return Status::InvalidArgument("aggregate takes no parameters");
    }
    return make();
  };
}

Result<int> SingleIntParam(const std::vector<Value>& params, const char* fn) {
  if (params.size() != 1 || params[0].kind() != Value::Kind::kInt64) {
    return Status::InvalidArgument(std::string(fn) +
                                   " requires one integer parameter");
  }
  int64_t n = params[0].int64_value();
  if (n < 1 || n > 1'000'000) {
    return Status::OutOfRange(std::string(fn) + ": parameter out of range");
  }
  return static_cast<int>(n);
}

}  // namespace

AggregateRegistry& AggregateRegistry::Global() {
  static AggregateRegistry* registry = [] {
    auto* r = new AggregateRegistry();
    (void)r->Register("count_star", NoParams(&MakeCountStar));
    (void)r->Register("count", NoParams(&MakeCount));
    (void)r->Register("sum", NoParams(&MakeSum));
    (void)r->Register("min", NoParams(&MakeMin));
    (void)r->Register("max", NoParams(&MakeMax));
    (void)r->Register("avg", NoParams(&MakeAvg));
    (void)r->Register("var_pop", NoParams(&MakeVarPop));
    (void)r->Register("stddev_pop", NoParams(&MakeStdDevPop));
    (void)r->Register("median", NoParams(&MakeMedian));
    (void)r->Register("mode", NoParams(&MakeMode));
    (void)r->Register("count_distinct", NoParams(&MakeCountDistinctAgg));
    (void)r->Register("center_of_mass", NoParams(&MakeCenterOfMass));
    (void)r->Register("bool_and", NoParams(&MakeBoolAnd));
    (void)r->Register("bool_or", NoParams(&MakeBoolOr));
    (void)r->Register(
        "max_n", [](const std::vector<Value>& params)
                     -> Result<AggregateFunctionPtr> {
          DATACUBE_ASSIGN_OR_RETURN(int n, SingleIntParam(params, "max_n"));
          return MakeMaxN(n);
        });
    (void)r->Register(
        "min_n", [](const std::vector<Value>& params)
                     -> Result<AggregateFunctionPtr> {
          DATACUBE_ASSIGN_OR_RETURN(int n, SingleIntParam(params, "min_n"));
          return MakeMinN(n);
        });
    (void)r->Register(
        "percentile", [](const std::vector<Value>& params)
                          -> Result<AggregateFunctionPtr> {
          if (params.size() != 1 || !params[0].is_numeric()) {
            return Status::InvalidArgument(
                "percentile requires one numeric parameter");
          }
          double p = params[0].AsDouble();
          if (p < 0 || p > 100) {
            return Status::OutOfRange("percentile parameter must be 0..100");
          }
          return MakePercentile(p);
        });
    return r;
  }();
  return *registry;
}

Status AggregateRegistry::Register(const std::string& name, Factory factory) {
  for (const auto& [existing, _] : factories_) {
    if (EqualsIgnoreCase(existing, name)) {
      return Status::AlreadyExists("aggregate already registered: " + name);
    }
  }
  factories_.emplace_back(name, std::move(factory));
  return Status::OK();
}

Result<AggregateFunctionPtr> AggregateRegistry::Make(
    const std::string& name, const std::vector<Value>& params) const {
  for (const auto& [existing, factory] : factories_) {
    if (EqualsIgnoreCase(existing, name)) return factory(params);
  }
  return Status::NotFound("no aggregate function named " + name);
}

bool AggregateRegistry::Contains(const std::string& name) const {
  for (const auto& [existing, _] : factories_) {
    if (EqualsIgnoreCase(existing, name)) return true;
  }
  return false;
}

std::vector<std::string> AggregateRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, _] : factories_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace datacube
