#ifndef DATACUBE_AGG_AGGREGATE_H_
#define DATACUBE_AGG_AGGREGATE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/common/value.h"

namespace datacube {

/// The paper's Section 5 taxonomy of aggregate functions, which determines
/// how super-aggregates can be computed:
///  * Distributive — F({Xij}) = G({F(column j)}); super-aggregates can be
///    computed from sub-aggregate *results* (COUNT, SUM, MIN, MAX).
///  * Algebraic — an M-tuple scratchpad summarizes a sub-aggregation and a
///    final H() produces the result (AVG via (sum, count), stddev, MaxN).
///  * Holistic — no constant-size scratchpad exists (MEDIAN, MODE, RANK);
///    super-aggregates require the 2^N algorithm over base data.
enum class AggClass {
  kDistributive,
  kAlgebraic,
  kHolistic,
};

/// The paper's Section 6 *orthogonal* hierarchy for maintenance: a function
/// can be cheap for SELECT/INSERT but expensive for DELETE. "max is
/// distributive for SELECT and INSERT, but it is holistic for DELETE."
enum class DeleteClass {
  /// Remove() is supported: deleting a row updates the scratchpad in O(1)
  /// amortized (SUM, COUNT, AVG, VAR; also MEDIAN/MODE with counted state).
  kDeletable,
  /// Deleting a contributing row may require recomputing the cell from base
  /// data (MIN, MAX).
  kDeleteHolistic,
};

const char* AggClassName(AggClass c);

/// One argument column of a batched Iter sweep. Kernels prefer the raw
/// typed buffer (`data` + per-row `states`) when the planner bound the
/// argument straight to a table column; `values` is always present as the
/// materialized fallback. Rows are addressed by ABSOLUTE row id (see
/// AggBatch::RowId), so both views span the whole input, not the morsel.
struct AggBatchArg {
  /// Materialized argument values for every input row (never null).
  const Value* values = nullptr;
  /// Raw column storage (int64_t* / double* per `type`), or null when the
  /// argument is a computed expression or a non-numeric column.
  const void* data = nullptr;
  /// Per-row value/NULL/ALL codes (0 = plain value); set whenever the
  /// argument is a plain column reference, even if `data` is null.
  const uint8_t* states = nullptr;
  DataType type = DataType::kInt64;
};

/// A morsel handed to IterBatch: `n` (row, cell) pairs sharing one
/// aggregate. Position i folds input row RowId(i) into the scratchpad at
/// `blocks[i] + slot_offset` — the exact pointer InitAt() constructed, so
/// inline-state kernels cast it straight to their concrete state type.
struct AggBatch {
  /// Per-position cell block (duplicates when rows share a group).
  char* const* blocks = nullptr;
  /// Byte offset of this aggregate's slot within each block.
  size_t slot_offset = 0;
  /// Optional row-id indirection; when null the morsel is the contiguous
  /// range [base, base + n).
  const uint32_t* rows = nullptr;
  size_t base = 0;
  size_t n = 0;
  const AggBatchArg* args = nullptr;
  size_t nargs = 0;

  size_t RowId(size_t i) const {
    return rows != nullptr ? rows[i] : base + i;
  }
  void* Slot(size_t i) const { return blocks[i] + slot_offset; }
};

/// Opaque per-cell scratchpad ("handle" in the paper's Figure 7 / Informix
/// Init/Iter/Final description). Each AggregateFunction defines its own
/// concrete state type.
struct AggState {
  virtual ~AggState() = default;
};

using AggStatePtr = std::unique_ptr<AggState>;

/// A (user-definable) aggregate function following the paper's extended
/// protocol:
///
///   Init()               "start(&handle)"  — allocate the scratchpad
///   Iter(state, args)    "next(&handle,v)" — fold one input row in
///   Merge(dst, src)      "Iter_super(&handle,&handle)" — fold a
///                        sub-aggregate's scratchpad into a super-aggregate's
///   Final(state)         "end(&handle)"    — produce the result value
///   Remove(state, args)  Section 6 delete maintenance (kDeletable only)
///
/// Implementations are immutable/stateless and therefore shareable across
/// threads; all mutation happens on AggState objects owned by the caller.
///
/// NULL/ALL semantics (Section 3.3): "ALL, like NULL, does not participate
/// in any aggregate except COUNT()" — i.e. COUNT(*) counts every row, while
/// value aggregates skip NULL/ALL inputs. Iter() receives every row and each
/// function applies that rule itself (count_star overrides it).
class AggregateFunction {
 public:
  virtual ~AggregateFunction() = default;

  virtual const std::string& name() const = 0;
  virtual AggClass agg_class() const = 0;
  virtual DeleteClass delete_class() const {
    return DeleteClass::kDeleteHolistic;
  }

  /// Number of input argument columns (0 for count_star, 2 for
  /// center_of_mass(position, mass), else 1).
  virtual int num_args() const { return 1; }

  /// Result type given the input argument types.
  virtual Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const = 0;

  virtual AggStatePtr Init() const = 0;
  virtual void Iter(AggState* state, const Value* args, size_t nargs) const = 0;
  virtual Value Final(const AggState* state) const = 0;

  /// Final with an error channel. The cube pipeline calls this form so that
  /// functions with partial result domains can reject rather than lie — SUM
  /// over int64 returns InvalidArgument when the exact sum exceeds INT64
  /// range instead of a silently wrapped or rounded integer. The default
  /// simply defers to Final(), which every total function keeps using.
  virtual Result<Value> FinalChecked(const AggState* state) const {
    return Final(state);
  }

  /// Whether Merge() is usable. Defaults to the paper's rule — distributive
  /// and algebraic functions have constant-size mergeable scratchpads,
  /// holistic ones do not ("we know of no more efficient way of computing
  /// super-aggregates of holistic functions" than recomputing from base
  /// data). A holistic function with an unbounded-but-mergeable state (e.g.
  /// MODE's value→count map) may override this to true; planners then trade
  /// memory for scans.
  virtual bool supports_merge() const {
    return agg_class() != AggClass::kHolistic;
  }

  /// Folds `src` into `dst`. Supported when supports_merge() is true;
  /// otherwise returns NotImplemented, which forces cube computation onto
  /// the 2^N / from-base path.
  virtual Status Merge(AggState* dst, const AggState* src) const {
    (void)dst;
    (void)src;
    return Status::NotImplemented("Merge not supported for holistic " + name());
  }

  /// Un-applies one input row (Section 6 maintenance). Only meaningful when
  /// delete_class() == kDeletable.
  virtual Status Remove(AggState* state, const Value* args,
                        size_t nargs) const {
    (void)state;
    (void)args;
    (void)nargs;
    return Status::NotImplemented("Remove not supported for " + name());
  }

  /// Maintenance hint (Section 6): can folding `args` into `state` change
  /// the aggregate's result? MAX answers false when the new value "loses the
  /// competition" — and the paper observes it then loses in all lower
  /// dimensions, enabling the insert short-circuit. Conservative default:
  /// always true.
  virtual bool InsertMightChange(const AggState* state, const Value* args,
                                 size_t nargs) const {
    (void)state;
    (void)args;
    (void)nargs;
    return true;
  }

  /// Maintenance hint (Section 6): can removing `args` change the result?
  /// MAX answers true only when the deleted value ties the current maximum —
  /// the delete-holistic recompute can be skipped otherwise. Conservative
  /// default: always true.
  virtual bool RemoveMightChange(const AggState* state, const Value* args,
                                 size_t nargs) const {
    (void)state;
    (void)args;
    (void)nargs;
    return true;
  }

  /// Deep copy of a scratchpad (used by materialized cubes and parallel
  /// merge trees).
  virtual AggStatePtr Clone(const AggState* state) const = 0;

  /// Serializes the scratchpad for cube persistence (the Section 6
  /// customers who "compute and store the cube"). Built-ins implement this;
  /// user-defined aggregates may leave the default NotImplemented, in which
  /// case cubes using them cannot be checkpointed.
  virtual Status SerializeState(const AggState* state, std::string* out) const {
    (void)state;
    (void)out;
    return Status::NotImplemented("SerializeState not supported for " + name());
  }

  /// Reconstructs a scratchpad serialized by SerializeState, consuming from
  /// `data` at *pos.
  virtual Result<AggStatePtr> DeserializeState(const std::string& data,
                                               size_t* pos) const {
    (void)data;
    (void)pos;
    return Status::NotImplemented("DeserializeState not supported for " +
                                  name());
  }

  /// Folds a whole morsel in one virtual call. Returns true when the
  /// function handled every row of the batch; false means "no batch kernel
  /// for this shape" and the caller MUST replay the same rows through the
  /// scalar Iter path — an implementation may only return false before
  /// mutating any state (all-or-nothing). The default keeps holistic and
  /// user-defined aggregates on the classic per-row protocol. Kernels must
  /// be row-order-insensitive per cell (every built-in Iter is), because
  /// batched dispatch sweeps aggregates one at a time rather than
  /// interleaving them per row.
  virtual bool IterBatch(const AggBatch& batch) const {
    (void)batch;
    return false;
  }

  /// Convenience for the common single-argument case.
  void Iter1(AggState* state, const Value& v) const { Iter(state, &v, 1); }

  // --- Fixed-slot (placement) state protocol -------------------------------
  //
  // The columnar execution core stores scratchpads inline in a per-table
  // arena: each cell is one contiguous block with a fixed slot per
  // aggregate. Functions whose state has a fixed footprint (distributive
  // and algebraic built-ins) advertise it via state_size() > 0 and
  // construct/destroy states in place; everything else (holistic states,
  // user aggregates that have not opted in) reports state_size() == 0 and
  // gets a compatibility slot holding a heap AggStatePtr — the classic
  // Init() path, unchanged. Derive from WithInlineState<State> (below) to
  // opt a function in without writing any of these overrides by hand.

  /// In-place state footprint; 0 selects the AggStatePtr compatibility
  /// slot.
  virtual size_t state_size() const { return 0; }
  virtual size_t state_align() const { return alignof(std::max_align_t); }

  /// Constructs a fresh scratchpad in `slot` (placement "start(&handle)").
  /// The default services the compatibility slot via Init().
  virtual void InitAt(void* slot) const {
    ::new (slot) AggStatePtr(Init());
  }

  /// Destroys the scratchpad living in `slot`.
  virtual void DestroyAt(void* slot) const {
    static_cast<AggStatePtr*>(slot)->~AggStatePtr();
  }

  /// Copy-constructs the scratchpad in `src` into raw storage `dst`.
  virtual void CloneAt(const void* src, void* dst) const {
    ::new (dst) AggStatePtr(
        Clone(static_cast<const AggStatePtr*>(src)->get()));
  }

  /// Reconstructs a SerializeState blob directly into raw storage `slot`.
  virtual Status DeserializeAt(const std::string& data, size_t* pos,
                               void* slot) const {
    Result<AggStatePtr> state = DeserializeState(data, pos);
    if (!state.ok()) return state.status();
    ::new (slot) AggStatePtr(std::move(state).value());
    return Status::OK();
  }

  /// The AggState view of a slot, for the virtual Iter/Merge/Remove/Final
  /// protocol. Overridden by WithInlineState to upcast the inline object;
  /// the default dereferences the compatibility slot's pointer.
  virtual AggState* StateAt(void* slot) const {
    return static_cast<AggStatePtr*>(slot)->get();
  }
  const AggState* StateAt(const void* slot) const {
    return StateAt(const_cast<void*>(slot));
  }

  // Slot-addressed bridges onto the classic protocol. Hot loops that have
  // precomputed the slot→state adjustment skip these; maintenance and
  // serialization paths use them directly.
  void IterAt(void* slot, const Value* args, size_t nargs) const {
    Iter(StateAt(slot), args, nargs);
  }
  Status MergeAt(void* dst, const void* src) const {
    return Merge(StateAt(dst), StateAt(src));
  }
  Status RemoveAt(void* slot, const Value* args, size_t nargs) const {
    return Remove(StateAt(slot), args, nargs);
  }
  Result<Value> FinalAt(const void* slot) const {
    return FinalChecked(StateAt(slot));
  }
  Status SerializeAt(const void* slot, std::string* out) const {
    return SerializeState(StateAt(slot), out);
  }
};

using AggregateFunctionPtr = std::shared_ptr<const AggregateFunction>;

/// Mixin that opts an aggregate into the fixed-slot protocol: derive the
/// function from WithInlineState<State, Base> instead of Base and its
/// scratchpads live inline in cell arenas with zero per-cell heap
/// allocations. `State` must be the concrete AggState subclass the
/// function's Init()/Iter()/... already operate on; it must be
/// copy-constructible (for CloneAt) and move-constructible (for
/// DeserializeAt).
template <typename State, typename Base = AggregateFunction>
class WithInlineState : public Base {
  static_assert(std::is_base_of_v<AggState, State>,
                "inline aggregate states must derive from AggState");

 public:
  using Base::Base;

  size_t state_size() const override { return sizeof(State); }
  size_t state_align() const override { return alignof(State); }

  void InitAt(void* slot) const override { ::new (slot) State(); }
  void DestroyAt(void* slot) const override {
    static_cast<State*>(slot)->~State();
  }
  void CloneAt(const void* src, void* dst) const override {
    ::new (dst) State(*static_cast<const State*>(src));
  }
  Status DeserializeAt(const std::string& data, size_t* pos,
                       void* slot) const override {
    Result<AggStatePtr> state = this->DeserializeState(data, pos);
    if (!state.ok()) return state.status();
    State* concrete = dynamic_cast<State*>(state.value().get());
    if (concrete == nullptr) {
      return Status::Internal("DeserializeState produced an unexpected " +
                              std::string("state type for ") + this->name());
    }
    ::new (slot) State(std::move(*concrete));
    return Status::OK();
  }
  AggState* StateAt(void* slot) const override {
    return static_cast<State*>(slot);
  }
};

}  // namespace datacube

#endif  // DATACUBE_AGG_AGGREGATE_H_
