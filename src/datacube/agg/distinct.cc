#include "datacube/agg/distinct.h"

#include <map>
#include <vector>

#include "datacube/common/codec.h"

namespace datacube {

namespace {

struct DistinctState : AggState {
  // Distinct argument tuples with multiplicities. Multiplicities matter only
  // for Remove: a tuple leaves the set when its count reaches zero.
  std::map<std::vector<Value>, int64_t> seen;
};

class DistinctAggregate : public AggregateFunction {
 public:
  explicit DistinctAggregate(AggregateFunctionPtr inner)
      : inner_(std::move(inner)), name_(inner_->name() + "_distinct") {}

  const std::string& name() const override { return name_; }
  AggClass agg_class() const override { return AggClass::kHolistic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  bool supports_merge() const override { return true; }
  int num_args() const override { return inner_->num_args(); }

  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    return inner_->ResultType(arg_types);
  }

  AggStatePtr Init() const override {
    return std::make_unique<DistinctState>();
  }

  void Iter(AggState* state, const Value* args, size_t nargs) const override {
    std::vector<Value> key(args, args + nargs);
    ++static_cast<DistinctState*>(state)->seen[std::move(key)];
  }

  Value Final(const AggState* state) const override {
    return inner_->Final(ReplayDistinct(state).get());
  }

  Result<Value> FinalChecked(const AggState* state) const override {
    // Propagates the inner function's error domain (e.g. SUM overflow).
    return inner_->FinalChecked(ReplayDistinct(state).get());
  }

  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = static_cast<DistinctState*>(dst);
    for (const auto& [key, count] :
         static_cast<const DistinctState*>(src)->seen) {
      d->seen[key] += count;
    }
    return Status::OK();
  }

  Status Remove(AggState* state, const Value* args,
                size_t nargs) const override {
    auto* s = static_cast<DistinctState*>(state);
    std::vector<Value> key(args, args + nargs);
    auto it = s->seen.find(key);
    if (it == s->seen.end()) {
      return Status::InvalidArgument("DISTINCT: removing absent tuple");
    }
    if (--it->second == 0) s->seen.erase(it);
    return Status::OK();
  }

  Status SerializeState(const AggState* state,
                        std::string* out) const override {
    const auto& seen = static_cast<const DistinctState*>(state)->seen;
    EncodeCount(seen.size(), out);
    for (const auto& [key, count] : seen) {
      EncodeCount(key.size(), out);
      for (const Value& v : key) EncodeValue(v, out);
      EncodeValue(Value::Int64(count), out);
    }
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<DistinctState>();
    DATACUBE_ASSIGN_OR_RETURN(uint64_t n, DecodeCount(data, pos));
    for (uint64_t i = 0; i < n; ++i) {
      DATACUBE_ASSIGN_OR_RETURN(uint64_t arity, DecodeCount(data, pos));
      std::vector<Value> key;
      key.reserve(arity);
      for (uint64_t k = 0; k < arity; ++k) {
        DATACUBE_ASSIGN_OR_RETURN(Value v, DecodeValue(data, pos));
        key.push_back(std::move(v));
      }
      DATACUBE_ASSIGN_OR_RETURN(Value count, DecodeValue(data, pos));
      s->seen.emplace(std::move(key), count.int64_value());
    }
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<DistinctState>(
        *static_cast<const DistinctState*>(state));
  }

 private:
  // Replays the distinct tuples into a fresh inner scratchpad.
  AggStatePtr ReplayDistinct(const AggState* state) const {
    AggStatePtr inner_state = inner_->Init();
    for (const auto& [key, count] :
         static_cast<const DistinctState*>(state)->seen) {
      (void)count;
      inner_->Iter(inner_state.get(), key.data(), key.size());
    }
    return inner_state;
  }

  AggregateFunctionPtr inner_;
  std::string name_;
};

}  // namespace

AggregateFunctionPtr MakeDistinct(AggregateFunctionPtr inner) {
  return std::make_shared<DistinctAggregate>(std::move(inner));
}

}  // namespace datacube
