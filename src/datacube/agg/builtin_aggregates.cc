#include "datacube/agg/builtin_aggregates.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "datacube/common/codec.h"
#include "datacube/common/str_util.h"

namespace datacube {

namespace {

// Shared downcast helper; state types are private to this file, so a
// mismatched cast indicates an internal bug.
template <typename T>
T* As(AggState* s) {
  return static_cast<T*>(s);
}
template <typename T>
const T* As(const AggState* s) {
  return static_cast<const T*>(s);
}

// ---------------------------------------------------------------- COUNT(*)

struct CountState : AggState {
  int64_t n = 0;
};

class CountStarFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "count_star";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kDistributive; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  int num_args() const override { return 0; }
  Result<DataType> ResultType(const std::vector<DataType>&) const override {
    return DataType::kInt64;
  }
  AggStatePtr Init() const override { return std::make_unique<CountState>(); }
  void Iter(AggState* state, const Value*, size_t) const override {
    ++As<CountState>(state)->n;
  }
  Value Final(const AggState* state) const override {
    return Value::Int64(As<CountState>(state)->n);
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    // COUNT is the one distributive function whose G differs from F: counts
    // combine with SUM (Section 5).
    As<CountState>(dst)->n += As<CountState>(src)->n;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value*, size_t) const override {
    --As<CountState>(state)->n;
    return Status::OK();
  }
  Status SerializeState(const AggState* state, std::string* out) const override {
    EncodeValue(Value::Int64(As<CountState>(state)->n), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    DATACUBE_ASSIGN_OR_RETURN(Value n, DecodeValue(data, pos));
    auto s = std::make_unique<CountState>();
    s->n = n.int64_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<CountState>(*As<CountState>(state));
  }
};

// ---------------------------------------------------------------- COUNT(x)

class CountFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "count";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kDistributive; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(const std::vector<DataType>&) const override {
    return DataType::kInt64;
  }
  AggStatePtr Init() const override { return std::make_unique<CountState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (!args[0].is_special()) ++As<CountState>(state)->n;
  }
  Value Final(const AggState* state) const override {
    return Value::Int64(As<CountState>(state)->n);
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    As<CountState>(dst)->n += As<CountState>(src)->n;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (!args[0].is_special()) --As<CountState>(state)->n;
    return Status::OK();
  }
  Status SerializeState(const AggState* state, std::string* out) const override {
    EncodeValue(Value::Int64(As<CountState>(state)->n), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    DATACUBE_ASSIGN_OR_RETURN(Value n, DecodeValue(data, pos));
    auto s = std::make_unique<CountState>();
    s->n = n.int64_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<CountState>(*As<CountState>(state));
  }
};

// -------------------------------------------------------------------- SUM

struct SumState : AggState {
  int64_t sum_i = 0;
  double sum_d = 0.0;
  int64_t n = 0;  // non-null inputs; 0 yields SQL NULL
};

class SumFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "sum";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kDistributive; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1 || !IsNumeric(arg_types[0])) {
      return Status::TypeError("sum requires one numeric argument");
    }
    return arg_types[0];
  }
  AggStatePtr Init() const override { return std::make_unique<SumState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    auto* s = As<SumState>(state);
    if (args[0].kind() == Value::Kind::kInt64) {
      s->sum_i += args[0].int64_value();
    }
    s->sum_d += args[0].AsDouble();
    ++s->n;
  }
  Value Final(const AggState* state) const override {
    const auto* s = As<SumState>(state);
    if (s->n == 0) return Value::Null();
    // If every input was an exact int64, report the exact integer sum.
    if (s->sum_d == static_cast<double>(s->sum_i)) return Value::Int64(s->sum_i);
    return Value::Float64(s->sum_d);
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = As<SumState>(dst);
    const auto* s = As<SumState>(src);
    d->sum_i += s->sum_i;
    d->sum_d += s->sum_d;
    d->n += s->n;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto* s = As<SumState>(state);
    if (args[0].kind() == Value::Kind::kInt64) {
      s->sum_i -= args[0].int64_value();
    }
    s->sum_d -= args[0].AsDouble();
    --s->n;
    return Status::OK();
  }
  Status SerializeState(const AggState* state, std::string* out) const override {
    const auto* s = As<SumState>(state);
    EncodeValue(Value::Int64(s->sum_i), out);
    EncodeValue(Value::Float64(s->sum_d), out);
    EncodeValue(Value::Int64(s->n), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<SumState>();
    DATACUBE_ASSIGN_OR_RETURN(Value sum_i, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value sum_d, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value n, DecodeValue(data, pos));
    s->sum_i = sum_i.int64_value();
    s->sum_d = sum_d.float64_value();
    s->n = n.int64_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<SumState>(*As<SumState>(state));
  }
};

// ---------------------------------------------------------------- MIN/MAX

struct ExtremeState : AggState {
  Value best;  // NULL when empty
  bool has_value = false;
};

// MIN/MAX: distributive for SELECT and INSERT, holistic for DELETE — the
// paper's Section 6 example of the orthogonal maintenance hierarchy.
class ExtremeFunction : public AggregateFunction {
 public:
  explicit ExtremeFunction(bool is_max)
      : is_max_(is_max), name_(is_max ? "max" : "min") {}
  const std::string& name() const override { return name_; }
  AggClass agg_class() const override { return AggClass::kDistributive; }
  DeleteClass delete_class() const override {
    return DeleteClass::kDeleteHolistic;
  }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1) {
      return Status::TypeError(name_ + " requires one argument");
    }
    return arg_types[0];
  }
  AggStatePtr Init() const override { return std::make_unique<ExtremeState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    auto* s = As<ExtremeState>(state);
    if (!s->has_value || Better(args[0], s->best)) {
      s->best = args[0];
      s->has_value = true;
    }
  }
  Value Final(const AggState* state) const override {
    const auto* s = As<ExtremeState>(state);
    return s->has_value ? s->best : Value::Null();
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    const auto* s = As<ExtremeState>(src);
    if (s->has_value) Iter1(dst, s->best);
    return Status::OK();
  }
  bool InsertMightChange(const AggState* state, const Value* args,
                         size_t) const override {
    if (args[0].is_special()) return false;
    const auto* s = As<ExtremeState>(state);
    return !s->has_value || Better(args[0], s->best);
  }
  bool RemoveMightChange(const AggState* state, const Value* args,
                         size_t) const override {
    if (args[0].is_special()) return false;
    const auto* s = As<ExtremeState>(state);
    // Only deleting the incumbent extreme can change the result.
    return s->has_value && args[0].Compare(s->best) == 0;
  }
  Status SerializeState(const AggState* state, std::string* out) const override {
    const auto* s = As<ExtremeState>(state);
    EncodeValue(s->has_value ? s->best : Value::Null(), out);
    EncodeValue(Value::Bool(s->has_value), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<ExtremeState>();
    DATACUBE_ASSIGN_OR_RETURN(s->best, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value has, DecodeValue(data, pos));
    s->has_value = has.bool_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<ExtremeState>(*As<ExtremeState>(state));
  }

  /// True if candidate `a` beats incumbent `b`. Exposed so the maintenance
  /// layer can apply the paper's "loses one competition ⇒ loses in all lower
  /// dimensions" insert short-circuit.
  bool Better(const Value& a, const Value& b) const {
    int cmp = a.Compare(b);
    return is_max_ ? cmp > 0 : cmp < 0;
  }

 private:
  bool is_max_;
  std::string name_;
};

// -------------------------------------------------------------------- AVG

struct AvgState : AggState {
  double sum = 0.0;
  int64_t n = 0;
};

// The paper's canonical algebraic function: scratchpad is the (sum, count)
// pair; H() divides.
class AvgFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "avg";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kAlgebraic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1 || !IsNumeric(arg_types[0])) {
      return Status::TypeError("avg requires one numeric argument");
    }
    return DataType::kFloat64;
  }
  AggStatePtr Init() const override { return std::make_unique<AvgState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    auto* s = As<AvgState>(state);
    s->sum += args[0].AsDouble();
    ++s->n;
  }
  Value Final(const AggState* state) const override {
    const auto* s = As<AvgState>(state);
    if (s->n == 0) return Value::Null();
    return Value::Float64(s->sum / static_cast<double>(s->n));
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = As<AvgState>(dst);
    const auto* s = As<AvgState>(src);
    d->sum += s->sum;
    d->n += s->n;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto* s = As<AvgState>(state);
    s->sum -= args[0].AsDouble();
    --s->n;
    return Status::OK();
  }
  Status SerializeState(const AggState* state, std::string* out) const override {
    const auto* s = As<AvgState>(state);
    EncodeValue(Value::Float64(s->sum), out);
    EncodeValue(Value::Int64(s->n), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<AvgState>();
    DATACUBE_ASSIGN_OR_RETURN(Value sum, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value n, DecodeValue(data, pos));
    s->sum = sum.float64_value();
    s->n = n.int64_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<AvgState>(*As<AvgState>(state));
  }
};

// --------------------------------------------------------- VAR / STDDEV

struct VarState : AggState {
  // Sum/sum-of-squares form: exact merge and remove, adequate numerically
  // for the value ranges in this library's workloads.
  double sum = 0.0;
  double sum_sq = 0.0;
  int64_t n = 0;
};

class VarianceFunction : public AggregateFunction {
 public:
  explicit VarianceFunction(bool stddev)
      : stddev_(stddev), name_(stddev ? "stddev_pop" : "var_pop") {}
  const std::string& name() const override { return name_; }
  AggClass agg_class() const override { return AggClass::kAlgebraic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1 || !IsNumeric(arg_types[0])) {
      return Status::TypeError(name_ + " requires one numeric argument");
    }
    return DataType::kFloat64;
  }
  AggStatePtr Init() const override { return std::make_unique<VarState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    auto* s = As<VarState>(state);
    double x = args[0].AsDouble();
    s->sum += x;
    s->sum_sq += x * x;
    ++s->n;
  }
  Value Final(const AggState* state) const override {
    const auto* s = As<VarState>(state);
    if (s->n == 0) return Value::Null();
    double mean = s->sum / static_cast<double>(s->n);
    double var = s->sum_sq / static_cast<double>(s->n) - mean * mean;
    if (var < 0) var = 0;  // numeric guard
    return Value::Float64(stddev_ ? std::sqrt(var) : var);
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = As<VarState>(dst);
    const auto* s = As<VarState>(src);
    d->sum += s->sum;
    d->sum_sq += s->sum_sq;
    d->n += s->n;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto* s = As<VarState>(state);
    double x = args[0].AsDouble();
    s->sum -= x;
    s->sum_sq -= x * x;
    --s->n;
    return Status::OK();
  }
  Status SerializeState(const AggState* state, std::string* out) const override {
    const auto* s = As<VarState>(state);
    EncodeValue(Value::Float64(s->sum), out);
    EncodeValue(Value::Float64(s->sum_sq), out);
    EncodeValue(Value::Int64(s->n), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<VarState>();
    DATACUBE_ASSIGN_OR_RETURN(Value sum, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value sum_sq, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value n, DecodeValue(data, pos));
    s->sum = sum.float64_value();
    s->sum_sq = sum_sq.float64_value();
    s->n = n.int64_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<VarState>(*As<VarState>(state));
  }

 private:
  bool stddev_;
  std::string name_;
};

// ----------------------------------------------------------------- MEDIAN

struct MedianState : AggState {
  std::vector<double> values;
};

// Shared (de)serialization of the value-list scratchpad used by MEDIAN and
// PERCENTILE.
Status SerializeMedianState(const AggState* state, std::string* out) {
  const auto& values = As<MedianState>(state)->values;
  EncodeCount(values.size(), out);
  for (double v : values) EncodeValue(Value::Float64(v), out);
  return Status::OK();
}

Result<AggStatePtr> DeserializeMedianState(const std::string& data,
                                           size_t* pos) {
  auto s = std::make_unique<MedianState>();
  DATACUBE_ASSIGN_OR_RETURN(uint64_t n, DecodeCount(data, pos));
  s->values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DATACUBE_ASSIGN_OR_RETURN(Value v, DecodeValue(data, pos));
    s->values.push_back(v.float64_value());
  }
  return AggStatePtr(std::move(s));
}

// Holistic: "no constant bound on the size of the storage needed to describe
// a sub-aggregate" (Section 5). supports_merge() stays false, so cube
// planners recompute median cells from base data.
class MedianFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "median";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kHolistic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1 || !IsNumeric(arg_types[0])) {
      return Status::TypeError("median requires one numeric argument");
    }
    return DataType::kFloat64;
  }
  AggStatePtr Init() const override { return std::make_unique<MedianState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    As<MedianState>(state)->values.push_back(args[0].AsDouble());
  }
  Value Final(const AggState* state) const override {
    std::vector<double> v = As<MedianState>(state)->values;
    if (v.empty()) return Value::Null();
    size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + mid, v.end());
    if (v.size() % 2 == 1) return Value::Float64(v[mid]);
    double hi = v[mid];
    double lo = *std::max_element(v.begin(), v.begin() + mid);
    return Value::Float64((lo + hi) / 2.0);
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto& v = As<MedianState>(state)->values;
    auto it = std::find(v.begin(), v.end(), args[0].AsDouble());
    if (it == v.end()) {
      return Status::InvalidArgument("median: removing absent value");
    }
    *it = v.back();
    v.pop_back();
    return Status::OK();
  }
  Status SerializeState(const AggState* state, std::string* out) const override {
    return SerializeMedianState(state, out);
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    return DeserializeMedianState(data, pos);
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<MedianState>(*As<MedianState>(state));
  }
};

// ------------------------------------------------------------------- MODE

struct ModeState : AggState {
  std::map<Value, int64_t> counts;
};

// Shared (de)serialization of the value->count scratchpad used by MODE and
// COUNT DISTINCT.
Status SerializeModeState(const AggState* state, std::string* out) {
  const auto& counts = As<ModeState>(state)->counts;
  EncodeCount(counts.size(), out);
  for (const auto& [v, c] : counts) {
    EncodeValue(v, out);
    EncodeValue(Value::Int64(c), out);
  }
  return Status::OK();
}

Result<AggStatePtr> DeserializeModeState(const std::string& data,
                                         size_t* pos) {
  auto s = std::make_unique<ModeState>();
  DATACUBE_ASSIGN_OR_RETURN(uint64_t n, DecodeCount(data, pos));
  for (uint64_t i = 0; i < n; ++i) {
    DATACUBE_ASSIGN_OR_RETURN(Value v, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value c, DecodeValue(data, pos));
    s->counts.emplace(std::move(v), c.int64_value());
  }
  return AggStatePtr(std::move(s));
}

// MostFrequent / Mode: holistic by the paper's classification, but its
// value→count map *is* mergeable (memory proportional to distinct values),
// so supports_merge() is overridden — planners may trade memory for scans.
class ModeFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "mode";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kHolistic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  bool supports_merge() const override { return true; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1) {
      return Status::TypeError("mode requires one argument");
    }
    return arg_types[0];
  }
  AggStatePtr Init() const override { return std::make_unique<ModeState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    ++As<ModeState>(state)->counts[args[0]];
  }
  Value Final(const AggState* state) const override {
    const auto& counts = As<ModeState>(state)->counts;
    Value best = Value::Null();
    int64_t best_count = 0;
    for (const auto& [v, c] : counts) {
      if (c > best_count) {  // ties resolve to the smallest value (map order)
        best = v;
        best_count = c;
      }
    }
    return best;
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = As<ModeState>(dst);
    for (const auto& [v, c] : As<ModeState>(src)->counts) d->counts[v] += c;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto& counts = As<ModeState>(state)->counts;
    auto it = counts.find(args[0]);
    if (it == counts.end()) {
      return Status::InvalidArgument("mode: removing absent value");
    }
    if (--it->second == 0) counts.erase(it);
    return Status::OK();
  }
  Status SerializeState(const AggState* state, std::string* out) const override {
    return SerializeModeState(state, out);
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    return DeserializeModeState(data, pos);
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<ModeState>(*As<ModeState>(state));
  }
};

// --------------------------------------------------------- COUNT DISTINCT

class CountDistinctFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "count_distinct";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kHolistic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  bool supports_merge() const override { return true; }
  Result<DataType> ResultType(const std::vector<DataType>&) const override {
    return DataType::kInt64;
  }
  AggStatePtr Init() const override { return std::make_unique<ModeState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    ++As<ModeState>(state)->counts[args[0]];
  }
  Value Final(const AggState* state) const override {
    return Value::Int64(
        static_cast<int64_t>(As<ModeState>(state)->counts.size()));
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = As<ModeState>(dst);
    for (const auto& [v, c] : As<ModeState>(src)->counts) d->counts[v] += c;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto& counts = As<ModeState>(state)->counts;
    auto it = counts.find(args[0]);
    if (it == counts.end()) {
      return Status::InvalidArgument("count_distinct: removing absent value");
    }
    if (--it->second == 0) counts.erase(it);
    return Status::OK();
  }
  Status SerializeState(const AggState* state, std::string* out) const override {
    return SerializeModeState(state, out);
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    return DeserializeModeState(data, pos);
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<ModeState>(*As<ModeState>(state));
  }
};

// ------------------------------------------------------------ MaxN / MinN

struct TopNState : AggState {
  std::vector<Value> values;  // kept sorted best-first, size <= n
};

// The paper's other canonical algebraic examples: "the key to algebraic
// functions is that a fixed size result (an M-tuple) can summarize the
// sub-aggregation" — here the M-tuple is the current top-N list.
class TopNFunction : public AggregateFunction {
 public:
  TopNFunction(bool is_max, int n)
      : is_max_(is_max),
        n_(n),
        name_((is_max ? "max_n" : "min_n")) {}
  const std::string& name() const override { return name_; }
  AggClass agg_class() const override { return AggClass::kAlgebraic; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1) {
      return Status::TypeError(name_ + " requires one argument");
    }
    return DataType::kString;  // comma-joined top-N list
  }
  AggStatePtr Init() const override { return std::make_unique<TopNState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    auto& v = As<TopNState>(state)->values;
    auto pos = std::lower_bound(v.begin(), v.end(), args[0],
                                [this](const Value& a, const Value& b) {
                                  int cmp = a.Compare(b);
                                  return is_max_ ? cmp > 0 : cmp < 0;
                                });
    v.insert(pos, args[0]);
    if (v.size() > static_cast<size_t>(n_)) v.pop_back();
  }
  Value Final(const AggState* state) const override {
    const auto& v = As<TopNState>(state)->values;
    if (v.empty()) return Value::Null();
    std::vector<std::string> parts;
    parts.reserve(v.size());
    for (const Value& x : v) parts.push_back(x.ToString());
    return Value::String(Join(parts, ","));
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    for (const Value& v : As<TopNState>(src)->values) Iter1(dst, v);
    return Status::OK();
  }
  Status SerializeState(const AggState* state, std::string* out) const override {
    const auto& values = As<TopNState>(state)->values;
    EncodeCount(values.size(), out);
    for (const Value& v : values) EncodeValue(v, out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<TopNState>();
    DATACUBE_ASSIGN_OR_RETURN(uint64_t n, DecodeCount(data, pos));
    for (uint64_t i = 0; i < n; ++i) {
      DATACUBE_ASSIGN_OR_RETURN(Value v, DecodeValue(data, pos));
      s->values.push_back(std::move(v));
    }
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<TopNState>(*As<TopNState>(state));
  }

 private:
  bool is_max_;
  int n_;
  std::string name_;
};

// ---------------------------------------------------------- BOOL AND / OR

struct BoolState : AggState {
  int64_t true_count = 0;
  int64_t false_count = 0;
};

// Distributive; keeping both counters (not just the current verdict) makes
// the function deletable — another instance of Section 6's point that a
// richer scratchpad buys cheap maintenance.
class BoolCombineFunction : public AggregateFunction {
 public:
  explicit BoolCombineFunction(bool is_and)
      : is_and_(is_and), name_(is_and ? "bool_and" : "bool_or") {}
  const std::string& name() const override { return name_; }
  AggClass agg_class() const override { return AggClass::kDistributive; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1 || arg_types[0] != DataType::kBool) {
      return Status::TypeError(name_ + " requires one boolean argument");
    }
    return DataType::kBool;
  }
  AggStatePtr Init() const override { return std::make_unique<BoolState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    auto* s = As<BoolState>(state);
    if (args[0].bool_value()) {
      ++s->true_count;
    } else {
      ++s->false_count;
    }
  }
  Value Final(const AggState* state) const override {
    const auto* s = As<BoolState>(state);
    if (s->true_count + s->false_count == 0) return Value::Null();
    return Value::Bool(is_and_ ? s->false_count == 0 : s->true_count > 0);
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = As<BoolState>(dst);
    const auto* s = As<BoolState>(src);
    d->true_count += s->true_count;
    d->false_count += s->false_count;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto* s = As<BoolState>(state);
    if (args[0].bool_value()) {
      --s->true_count;
    } else {
      --s->false_count;
    }
    return Status::OK();
  }
  Status SerializeState(const AggState* state, std::string* out) const override {
    const auto* s = As<BoolState>(state);
    EncodeValue(Value::Int64(s->true_count), out);
    EncodeValue(Value::Int64(s->false_count), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<BoolState>();
    DATACUBE_ASSIGN_OR_RETURN(Value t, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value f, DecodeValue(data, pos));
    s->true_count = t.int64_value();
    s->false_count = f.int64_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<BoolState>(*As<BoolState>(state));
  }

 private:
  bool is_and_;
  std::string name_;
};

// -------------------------------------------------------------- PERCENTILE

// Holistic: needs all values. p = 50 is the median; quartiles are p = 25 /
// 75 — the family the paper says practitioners approximate rather than
// maintain exactly (Section 6).
class PercentileFunction : public AggregateFunction {
 public:
  explicit PercentileFunction(double p) : p_(p) {}
  const std::string& name() const override {
    static const std::string kName = "percentile";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kHolistic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1 || !IsNumeric(arg_types[0])) {
      return Status::TypeError("percentile requires one numeric argument");
    }
    return DataType::kFloat64;
  }
  AggStatePtr Init() const override { return std::make_unique<MedianState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    As<MedianState>(state)->values.push_back(args[0].AsDouble());
  }
  Value Final(const AggState* state) const override {
    std::vector<double> v = As<MedianState>(state)->values;
    if (v.empty()) return Value::Null();
    std::sort(v.begin(), v.end());
    // Linear interpolation between closest ranks.
    double rank = p_ / 100.0 * static_cast<double>(v.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, v.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return Value::Float64(v[lo] + (v[hi] - v[lo]) * frac);
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto& v = As<MedianState>(state)->values;
    auto it = std::find(v.begin(), v.end(), args[0].AsDouble());
    if (it == v.end()) {
      return Status::InvalidArgument("percentile: removing absent value");
    }
    *it = v.back();
    v.pop_back();
    return Status::OK();
  }
  Status SerializeState(const AggState* state, std::string* out) const override {
    return SerializeMedianState(state, out);
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    return DeserializeMedianState(data, pos);
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<MedianState>(*As<MedianState>(state));
  }

 private:
  double p_;
};

// ---------------------------------------------------------- CENTER OF MASS

struct ComState : AggState {
  double moment = 0.0;
  double mass = 0.0;
};

// center_of_mass(position, mass): two-argument algebraic aggregate; the
// scratchpad is the (Σ p·m, Σ m) pair.
class CenterOfMassFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "center_of_mass";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kAlgebraic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  int num_args() const override { return 2; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 2 || !IsNumeric(arg_types[0]) ||
        !IsNumeric(arg_types[1])) {
      return Status::TypeError(
          "center_of_mass requires two numeric arguments (position, mass)");
    }
    return DataType::kFloat64;
  }
  AggStatePtr Init() const override { return std::make_unique<ComState>(); }
  void Iter(AggState* state, const Value* args, size_t nargs) const override {
    if (nargs < 2 || args[0].is_special() || args[1].is_special()) return;
    auto* s = As<ComState>(state);
    double m = args[1].AsDouble();
    s->moment += args[0].AsDouble() * m;
    s->mass += m;
  }
  Value Final(const AggState* state) const override {
    const auto* s = As<ComState>(state);
    if (s->mass == 0.0) return Value::Null();
    return Value::Float64(s->moment / s->mass);
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = As<ComState>(dst);
    const auto* s = As<ComState>(src);
    d->moment += s->moment;
    d->mass += s->mass;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t nargs) const override {
    if (nargs < 2 || args[0].is_special() || args[1].is_special()) {
      return Status::OK();
    }
    auto* s = As<ComState>(state);
    double m = args[1].AsDouble();
    s->moment -= args[0].AsDouble() * m;
    s->mass -= m;
    return Status::OK();
  }
  Status SerializeState(const AggState* state, std::string* out) const override {
    const auto* s = As<ComState>(state);
    EncodeValue(Value::Float64(s->moment), out);
    EncodeValue(Value::Float64(s->mass), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<ComState>();
    DATACUBE_ASSIGN_OR_RETURN(Value moment, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value mass, DecodeValue(data, pos));
    s->moment = moment.float64_value();
    s->mass = mass.float64_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<ComState>(*As<ComState>(state));
  }
};

}  // namespace

const char* AggClassName(AggClass c) {
  switch (c) {
    case AggClass::kDistributive:
      return "distributive";
    case AggClass::kAlgebraic:
      return "algebraic";
    case AggClass::kHolistic:
      return "holistic";
  }
  return "unknown";
}

AggregateFunctionPtr MakeCountStar() {
  return std::make_shared<CountStarFunction>();
}
AggregateFunctionPtr MakeCount() { return std::make_shared<CountFunction>(); }
AggregateFunctionPtr MakeSum() { return std::make_shared<SumFunction>(); }
AggregateFunctionPtr MakeMin() {
  return std::make_shared<ExtremeFunction>(/*is_max=*/false);
}
AggregateFunctionPtr MakeMax() {
  return std::make_shared<ExtremeFunction>(/*is_max=*/true);
}
AggregateFunctionPtr MakeAvg() { return std::make_shared<AvgFunction>(); }
AggregateFunctionPtr MakeVarPop() {
  return std::make_shared<VarianceFunction>(/*stddev=*/false);
}
AggregateFunctionPtr MakeStdDevPop() {
  return std::make_shared<VarianceFunction>(/*stddev=*/true);
}
AggregateFunctionPtr MakeMedian() { return std::make_shared<MedianFunction>(); }
AggregateFunctionPtr MakeMode() { return std::make_shared<ModeFunction>(); }
AggregateFunctionPtr MakeCountDistinctAgg() {
  return std::make_shared<CountDistinctFunction>();
}
AggregateFunctionPtr MakeMaxN(int n) {
  return std::make_shared<TopNFunction>(/*is_max=*/true, n);
}
AggregateFunctionPtr MakeMinN(int n) {
  return std::make_shared<TopNFunction>(/*is_max=*/false, n);
}
AggregateFunctionPtr MakeCenterOfMass() {
  return std::make_shared<CenterOfMassFunction>();
}
AggregateFunctionPtr MakePercentile(double p) {
  return std::make_shared<PercentileFunction>(p);
}
AggregateFunctionPtr MakeBoolAnd() {
  return std::make_shared<BoolCombineFunction>(/*is_and=*/true);
}
AggregateFunctionPtr MakeBoolOr() {
  return std::make_shared<BoolCombineFunction>(/*is_and=*/false);
}

}  // namespace datacube
