#include "datacube/agg/builtin_aggregates.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "datacube/common/codec.h"
#include "datacube/common/str_util.h"

namespace datacube {

namespace {

// Shared downcast helper; state types are private to this file, so a
// mismatched cast indicates an internal bug.
template <typename T>
T* As(AggState* s) {
  return static_cast<T*>(s);
}
template <typename T>
const T* As(const AggState* s) {
  return static_cast<const T*>(s);
}

// Batch kernels below cast AggBatch slots straight to their concrete state
// type: the slot pointer is exactly where WithInlineState::InitAt placement-
// constructed the state, and the dispatcher only hands batches to inline
// slots. Each kernel must fold rows exactly like the scalar Iter it shadows
// — the differential oracle and kernel_test diff them cell for cell.
template <typename State>
State* SlotState(const AggBatch& b, size_t i) {
  return static_cast<State*>(b.Slot(i));
}

// ---------------------------------------------------------------- COUNT(*)

struct CountState : AggState {
  int64_t n = 0;
};

class CountStarFunction : public WithInlineState<CountState> {
 public:
  const std::string& name() const override {
    static const std::string kName = "count_star";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kDistributive; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  int num_args() const override { return 0; }
  Result<DataType> ResultType(const std::vector<DataType>&) const override {
    return DataType::kInt64;
  }
  AggStatePtr Init() const override { return std::make_unique<CountState>(); }
  void Iter(AggState* state, const Value*, size_t) const override {
    ++As<CountState>(state)->n;
  }
  bool IterBatch(const AggBatch& b) const override {
    // Every row counts — NULL/ALL included (Section 3.3).
    for (size_t i = 0; i < b.n; ++i) ++SlotState<CountState>(b, i)->n;
    return true;
  }
  Value Final(const AggState* state) const override {
    return Value::Int64(As<CountState>(state)->n);
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    // COUNT is the one distributive function whose G differs from F: counts
    // combine with SUM (Section 5).
    As<CountState>(dst)->n += As<CountState>(src)->n;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value*, size_t) const override {
    --As<CountState>(state)->n;
    return Status::OK();
  }
  Status SerializeState(const AggState* state,
                        std::string* out) const override {
    EncodeValue(Value::Int64(As<CountState>(state)->n), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    DATACUBE_ASSIGN_OR_RETURN(Value n, DecodeValue(data, pos));
    auto s = std::make_unique<CountState>();
    s->n = n.int64_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<CountState>(*As<CountState>(state));
  }
};

// ---------------------------------------------------------------- COUNT(x)

class CountFunction : public WithInlineState<CountState> {
 public:
  const std::string& name() const override {
    static const std::string kName = "count";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kDistributive; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(const std::vector<DataType>&) const override {
    return DataType::kInt64;
  }
  AggStatePtr Init() const override { return std::make_unique<CountState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (!args[0].is_special()) ++As<CountState>(state)->n;
  }
  bool IterBatch(const AggBatch& b) const override {
    const AggBatchArg& arg = b.args[0];
    if (arg.states != nullptr) {
      // Column-backed argument: the state-code byte IS is_special(), so the
      // whole sweep is a branch-free add of (code == 0).
      for (size_t i = 0; i < b.n; ++i) {
        SlotState<CountState>(b, i)->n +=
            static_cast<int64_t>(arg.states[b.RowId(i)] == 0);
      }
      return true;
    }
    for (size_t i = 0; i < b.n; ++i) {
      if (!arg.values[b.RowId(i)].is_special()) {
        ++SlotState<CountState>(b, i)->n;
      }
    }
    return true;
  }
  Value Final(const AggState* state) const override {
    return Value::Int64(As<CountState>(state)->n);
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    As<CountState>(dst)->n += As<CountState>(src)->n;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (!args[0].is_special()) --As<CountState>(state)->n;
    return Status::OK();
  }
  Status SerializeState(const AggState* state,
                        std::string* out) const override {
    EncodeValue(Value::Int64(As<CountState>(state)->n), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    DATACUBE_ASSIGN_OR_RETURN(Value n, DecodeValue(data, pos));
    auto s = std::make_unique<CountState>();
    s->n = n.int64_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<CountState>(*As<CountState>(state));
  }
};

// -------------------------------------------------------------------- SUM

// Integer inputs accumulate exactly in 128 bits: int64 partial sums overflow
// legitimately (INT64_MAX + 1 - 1 must come back exact), and signed int64
// wraparound is UB besides. 2^64 maximal addends fit, so the sum over any
// materializable input is exact; __builtin_add_overflow latches the
// (practically unreachable) 128-bit wrap instead of invoking UB.
struct SumState : AggState {
  __int128 sum_i = 0;  // exact sum of int64 inputs
  double sum_d = 0.0;  // sum of *finite* float64 inputs
  int64_t n = 0;       // non-null inputs; 0 yields SQL NULL
  int64_t n_float = 0; // float64 inputs among n
  // Non-finite floats are counted, not accumulated: once a NaN enters a
  // running sum it cannot be subtracted back out (NaN - NaN = NaN), which
  // would leave a maintained cube cell poisoned after the row is deleted.
  int64_t n_nan = 0;
  int64_t n_pinf = 0;
  int64_t n_ninf = 0;
  bool wide_overflow = false;
};

// The IEEE value of the float-side sum: NaN if any NaN (or both infinities)
// participated, else the surviving infinity, else the finite sum.
double SumFloatPart(const SumState& s) {
  if (s.n_nan > 0 || (s.n_pinf > 0 && s.n_ninf > 0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (s.n_pinf > 0) return std::numeric_limits<double>::infinity();
  if (s.n_ninf > 0) return -std::numeric_limits<double>::infinity();
  return s.sum_d;
}

bool Int128FitsInt64(__int128 v) {
  return v >= static_cast<__int128>(INT64_MIN) &&
         v <= static_cast<__int128>(INT64_MAX);
}

std::string Int128ToString(__int128 v) {
  if (v == 0) return "0";
  bool neg = v < 0;
  unsigned __int128 u =
      neg ? -static_cast<unsigned __int128>(v)
          : static_cast<unsigned __int128>(v);
  std::string digits;
  while (u != 0) {
    digits += static_cast<char>('0' + static_cast<int>(u % 10));
    u /= 10;
  }
  if (neg) digits += '-';
  std::reverse(digits.begin(), digits.end());
  return digits;
}

class SumFunction : public WithInlineState<SumState> {
 public:
  const std::string& name() const override {
    static const std::string kName = "sum";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kDistributive; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1 || !IsNumeric(arg_types[0])) {
      return Status::TypeError("sum requires one numeric argument");
    }
    return arg_types[0];
  }
  AggStatePtr Init() const override { return std::make_unique<SumState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    auto* s = As<SumState>(state);
    if (args[0].kind() == Value::Kind::kInt64) {
      if (__builtin_add_overflow(s->sum_i,
                                 static_cast<__int128>(args[0].int64_value()),
                                 &s->sum_i)) {
        s->wide_overflow = true;
      }
    } else {
      double x = args[0].float64_value();
      if (std::isnan(x)) {
        ++s->n_nan;
      } else if (std::isinf(x)) {
        ++(x > 0 ? s->n_pinf : s->n_ninf);
      } else {
        s->sum_d += x;
      }
      ++s->n_float;
    }
    ++s->n;
  }
  bool IterBatch(const AggBatch& b) const override {
    const AggBatchArg& arg = b.args[0];
    if (arg.data != nullptr && arg.type == DataType::kInt64) {
      const int64_t* x = static_cast<const int64_t*>(arg.data);
      for (size_t i = 0; i < b.n; ++i) {
        size_t row = b.RowId(i);
        if (arg.states[row] != 0) continue;
        auto* s = SlotState<SumState>(b, i);
        if (__builtin_add_overflow(s->sum_i, static_cast<__int128>(x[row]),
                                   &s->sum_i)) {
          s->wide_overflow = true;
        }
        ++s->n;
      }
      return true;
    }
    if (arg.data != nullptr && arg.type == DataType::kFloat64) {
      const double* x = static_cast<const double*>(arg.data);
      for (size_t i = 0; i < b.n; ++i) {
        size_t row = b.RowId(i);
        if (arg.states[row] != 0) continue;
        auto* s = SlotState<SumState>(b, i);
        double v = x[row];
        if (std::isnan(v)) {
          ++s->n_nan;
        } else if (std::isinf(v)) {
          ++(v > 0 ? s->n_pinf : s->n_ninf);
        } else {
          s->sum_d += v;
        }
        ++s->n_float;
        ++s->n;
      }
      return true;
    }
    for (size_t i = 0; i < b.n; ++i) {
      Iter(SlotState<SumState>(b, i), &arg.values[b.RowId(i)], 1);
    }
    return true;
  }
  Value Final(const AggState* state) const override {
    const auto* s = As<SumState>(state);
    if (s->n == 0) return Value::Null();
    if (s->n_float == 0 && !s->wide_overflow) {
      if (Int128FitsInt64(s->sum_i)) {
        return Value::Int64(static_cast<int64_t>(s->sum_i));
      }
      // Infallible caller: report the exact 128-bit sum rounded once to
      // double — deterministic, never a wrapped integer. The cube pipeline
      // uses FinalChecked and surfaces an error instead.
      return Value::Float64(static_cast<double>(s->sum_i));
    }
    return Value::Float64(static_cast<double>(s->sum_i) + SumFloatPart(*s));
  }
  Result<Value> FinalChecked(const AggState* state) const override {
    const auto* s = As<SumState>(state);
    if (s->n_float == 0 &&
        (s->wide_overflow || (s->n > 0 && !Int128FitsInt64(s->sum_i)))) {
      return Status::InvalidArgument(
          "sum: exact result " +
          (s->wide_overflow ? std::string("(128-bit accumulator overflow)")
                            : Int128ToString(s->sum_i)) +
          " out of INT64 range");
    }
    return Final(state);
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = As<SumState>(dst);
    const auto* s = As<SumState>(src);
    if (__builtin_add_overflow(d->sum_i, s->sum_i, &d->sum_i)) {
      d->wide_overflow = true;
    }
    d->wide_overflow = d->wide_overflow || s->wide_overflow;
    d->sum_d += s->sum_d;
    d->n += s->n;
    d->n_float += s->n_float;
    d->n_nan += s->n_nan;
    d->n_pinf += s->n_pinf;
    d->n_ninf += s->n_ninf;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto* s = As<SumState>(state);
    if (args[0].kind() == Value::Kind::kInt64) {
      if (__builtin_sub_overflow(s->sum_i,
                                 static_cast<__int128>(args[0].int64_value()),
                                 &s->sum_i)) {
        s->wide_overflow = true;
      }
    } else {
      double x = args[0].float64_value();
      if (std::isnan(x)) {
        --s->n_nan;
      } else if (std::isinf(x)) {
        --(x > 0 ? s->n_pinf : s->n_ninf);
      } else {
        s->sum_d -= x;
      }
      --s->n_float;
    }
    --s->n;
    return Status::OK();
  }
  Status SerializeState(const AggState* state,
                        std::string* out) const override {
    const auto* s = As<SumState>(state);
    // 128-bit sum as (high, low) int64 halves.
    EncodeValue(Value::Int64(static_cast<int64_t>(s->sum_i >> 64)), out);
    EncodeValue(
        Value::Int64(static_cast<int64_t>(
            static_cast<uint64_t>(static_cast<unsigned __int128>(s->sum_i)))),
        out);
    EncodeValue(Value::Float64(s->sum_d), out);
    EncodeValue(Value::Int64(s->n), out);
    EncodeValue(Value::Int64(s->n_float), out);
    EncodeValue(Value::Int64(s->n_nan), out);
    EncodeValue(Value::Int64(s->n_pinf), out);
    EncodeValue(Value::Int64(s->n_ninf), out);
    EncodeValue(Value::Bool(s->wide_overflow), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<SumState>();
    DATACUBE_ASSIGN_OR_RETURN(Value hi, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value lo, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value sum_d, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value n, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value n_float, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value n_nan, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value n_pinf, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value n_ninf, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value wide, DecodeValue(data, pos));
    s->sum_i = (static_cast<__int128>(hi.int64_value()) << 64) |
               static_cast<__int128>(
                   static_cast<uint64_t>(lo.int64_value()));
    s->sum_d = sum_d.float64_value();
    s->n = n.int64_value();
    s->n_float = n_float.int64_value();
    s->n_nan = n_nan.int64_value();
    s->n_pinf = n_pinf.int64_value();
    s->n_ninf = n_ninf.int64_value();
    s->wide_overflow = wide.bool_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<SumState>(*As<SumState>(state));
  }
};

// ---------------------------------------------------------------- MIN/MAX

struct ExtremeState : AggState {
  Value best;  // NULL when empty
  bool has_value = false;
};

// MIN/MAX: distributive for SELECT and INSERT, holistic for DELETE — the
// paper's Section 6 example of the orthogonal maintenance hierarchy.
class ExtremeFunction : public WithInlineState<ExtremeState> {
 public:
  explicit ExtremeFunction(bool is_max)
      : is_max_(is_max), name_(is_max ? "max" : "min") {}
  const std::string& name() const override { return name_; }
  AggClass agg_class() const override { return AggClass::kDistributive; }
  DeleteClass delete_class() const override {
    return DeleteClass::kDeleteHolistic;
  }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1) {
      return Status::TypeError(name_ + " requires one argument");
    }
    return arg_types[0];
  }
  AggStatePtr Init() const override { return std::make_unique<ExtremeState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    auto* s = As<ExtremeState>(state);
    if (!s->has_value || Better(args[0], s->best)) {
      s->best = args[0];
      s->has_value = true;
    }
  }
  bool IterBatch(const AggBatch& b) const override {
    const AggBatchArg& arg = b.args[0];
    if (arg.data != nullptr && arg.type == DataType::kInt64) {
      const int64_t* x = static_cast<const int64_t*>(arg.data);
      for (size_t i = 0; i < b.n; ++i) {
        size_t row = b.RowId(i);
        if (arg.states[row] != 0) continue;
        auto* s = SlotState<ExtremeState>(b, i);
        int64_t v = x[row];
        // A column-backed int64 argument only ever feeds int64 candidates,
        // so once the incumbent is int64 the competition is a raw compare.
        if (s->has_value && s->best.kind() == Value::Kind::kInt64) {
          int64_t cur = s->best.int64_value();
          if (is_max_ ? v > cur : v < cur) s->best = Value::Int64(v);
        } else {
          Iter1(s, Value::Int64(v));
        }
      }
      return true;
    }
    if (arg.data != nullptr && arg.type == DataType::kFloat64) {
      const double* x = static_cast<const double*>(arg.data);
      for (size_t i = 0; i < b.n; ++i) {
        size_t row = b.RowId(i);
        if (arg.states[row] != 0) continue;
        auto* s = SlotState<ExtremeState>(b, i);
        double v = x[row];
        if (s->has_value && s->best.kind() == Value::Kind::kFloat64) {
          // Value::Compare's double order: NaN greatest, NaNs equal,
          // -0.0 == +0.0. Replicated here so the kernel agrees with the
          // scalar path on every adversarial buffer.
          double cur = s->best.float64_value();
          bool vn = std::isnan(v), cn = std::isnan(cur);
          int cmp = vn || cn ? (vn ? 1 : 0) - (cn ? 1 : 0)
                             : (v < cur ? -1 : (cur < v ? 1 : 0));
          if (is_max_ ? cmp > 0 : cmp < 0) s->best = Value::Float64(v);
        } else {
          Iter1(s, Value::Float64(v));
        }
      }
      return true;
    }
    for (size_t i = 0; i < b.n; ++i) {
      Iter(SlotState<ExtremeState>(b, i), &arg.values[b.RowId(i)], 1);
    }
    return true;
  }
  Value Final(const AggState* state) const override {
    const auto* s = As<ExtremeState>(state);
    return s->has_value ? s->best : Value::Null();
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    const auto* s = As<ExtremeState>(src);
    if (s->has_value) Iter1(dst, s->best);
    return Status::OK();
  }
  bool InsertMightChange(const AggState* state, const Value* args,
                         size_t) const override {
    if (args[0].is_special()) return false;
    const auto* s = As<ExtremeState>(state);
    return !s->has_value || Better(args[0], s->best);
  }
  bool RemoveMightChange(const AggState* state, const Value* args,
                         size_t) const override {
    if (args[0].is_special()) return false;
    const auto* s = As<ExtremeState>(state);
    // Only deleting the incumbent extreme can change the result.
    return s->has_value && args[0].Compare(s->best) == 0;
  }
  Status SerializeState(const AggState* state,
                        std::string* out) const override {
    const auto* s = As<ExtremeState>(state);
    EncodeValue(s->has_value ? s->best : Value::Null(), out);
    EncodeValue(Value::Bool(s->has_value), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<ExtremeState>();
    DATACUBE_ASSIGN_OR_RETURN(s->best, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value has, DecodeValue(data, pos));
    s->has_value = has.bool_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<ExtremeState>(*As<ExtremeState>(state));
  }

  /// True if candidate `a` beats incumbent `b`. Exposed so the maintenance
  /// layer can apply the paper's "loses one competition ⇒ loses in all lower
  /// dimensions" insert short-circuit.
  bool Better(const Value& a, const Value& b) const {
    int cmp = a.Compare(b);
    return is_max_ ? cmp > 0 : cmp < 0;
  }

 private:
  bool is_max_;
  std::string name_;
};

// -------------------------------------------------------------------- AVG

struct AvgState : AggState {
  double sum = 0.0;  // finite inputs only; non-finites are counted below
  int64_t n = 0;     // all non-null inputs
  // Counted, not accumulated, so Remove stays an exact inverse (see
  // SumState).
  int64_t n_nan = 0;
  int64_t n_pinf = 0;
  int64_t n_ninf = 0;
};

double AvgNumeratorPart(const AvgState& s) {
  if (s.n_nan > 0 || (s.n_pinf > 0 && s.n_ninf > 0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (s.n_pinf > 0) return std::numeric_limits<double>::infinity();
  if (s.n_ninf > 0) return -std::numeric_limits<double>::infinity();
  return 0.0;
}

// The paper's canonical algebraic function: scratchpad is the (sum, count)
// pair; H() divides.
class AvgFunction : public WithInlineState<AvgState> {
 public:
  const std::string& name() const override {
    static const std::string kName = "avg";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kAlgebraic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1 || !IsNumeric(arg_types[0])) {
      return Status::TypeError("avg requires one numeric argument");
    }
    return DataType::kFloat64;
  }
  AggStatePtr Init() const override { return std::make_unique<AvgState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    auto* s = As<AvgState>(state);
    double x = args[0].AsDouble();
    if (std::isnan(x)) {
      ++s->n_nan;
    } else if (std::isinf(x)) {
      ++(x > 0 ? s->n_pinf : s->n_ninf);
    } else {
      s->sum += x;
    }
    ++s->n;
  }
  bool IterBatch(const AggBatch& b) const override {
    const AggBatchArg& arg = b.args[0];
    if (arg.data != nullptr && arg.type == DataType::kInt64) {
      // AsDouble of an int64 is the plain widening cast; the result can
      // never be NaN or infinite, so the sweep is two adds per row.
      const int64_t* x = static_cast<const int64_t*>(arg.data);
      for (size_t i = 0; i < b.n; ++i) {
        size_t row = b.RowId(i);
        if (arg.states[row] != 0) continue;
        auto* s = SlotState<AvgState>(b, i);
        s->sum += static_cast<double>(x[row]);
        ++s->n;
      }
      return true;
    }
    if (arg.data != nullptr && arg.type == DataType::kFloat64) {
      const double* x = static_cast<const double*>(arg.data);
      for (size_t i = 0; i < b.n; ++i) {
        size_t row = b.RowId(i);
        if (arg.states[row] != 0) continue;
        auto* s = SlotState<AvgState>(b, i);
        double v = x[row];
        if (std::isnan(v)) {
          ++s->n_nan;
        } else if (std::isinf(v)) {
          ++(v > 0 ? s->n_pinf : s->n_ninf);
        } else {
          s->sum += v;
        }
        ++s->n;
      }
      return true;
    }
    for (size_t i = 0; i < b.n; ++i) {
      Iter(SlotState<AvgState>(b, i), &arg.values[b.RowId(i)], 1);
    }
    return true;
  }
  Value Final(const AggState* state) const override {
    const auto* s = As<AvgState>(state);
    if (s->n == 0) return Value::Null();
    return Value::Float64((s->sum + AvgNumeratorPart(*s)) /
                          static_cast<double>(s->n));
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = As<AvgState>(dst);
    const auto* s = As<AvgState>(src);
    d->sum += s->sum;
    d->n += s->n;
    d->n_nan += s->n_nan;
    d->n_pinf += s->n_pinf;
    d->n_ninf += s->n_ninf;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto* s = As<AvgState>(state);
    double x = args[0].AsDouble();
    if (std::isnan(x)) {
      --s->n_nan;
    } else if (std::isinf(x)) {
      --(x > 0 ? s->n_pinf : s->n_ninf);
    } else {
      s->sum -= x;
    }
    --s->n;
    return Status::OK();
  }
  Status SerializeState(const AggState* state,
                        std::string* out) const override {
    const auto* s = As<AvgState>(state);
    EncodeValue(Value::Float64(s->sum), out);
    EncodeValue(Value::Int64(s->n), out);
    EncodeValue(Value::Int64(s->n_nan), out);
    EncodeValue(Value::Int64(s->n_pinf), out);
    EncodeValue(Value::Int64(s->n_ninf), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<AvgState>();
    DATACUBE_ASSIGN_OR_RETURN(Value sum, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value n, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value n_nan, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value n_pinf, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value n_ninf, DecodeValue(data, pos));
    s->sum = sum.float64_value();
    s->n = n.int64_value();
    s->n_nan = n_nan.int64_value();
    s->n_pinf = n_pinf.int64_value();
    s->n_ninf = n_ninf.int64_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<AvgState>(*As<AvgState>(state));
  }
};

// --------------------------------------------------------- VAR / STDDEV

// Compensated (double-double) accumulator: the value is hi + lo with
// |lo| <= ulp(hi)/2, ~106 bits of precision. Knuth's TwoSum captures the
// exact rounding error of every addition, so adding x and later adding -x
// restores the previous sum to within 2^-106 relative — which is what keeps
// the moment sums below drift-free under Section 6 insert/delete
// maintenance, where plain doubles (and inverse-Welford M2) accumulate
// residue proportional to the largest magnitude ever seen, not the current
// content.
struct DD {
  double hi = 0.0;
  double lo = 0.0;
};

DD TwoSum(double a, double b) {
  double s = a + b;
  double bv = s - a;
  return {s, (a - (s - bv)) + (b - bv)};
}

DD TwoProd(double a, double b) {
  double p = a * b;
  return {p, std::fma(a, b, -p)};
}

void DDAdd(DD* acc, double x) {
  DD s = TwoSum(acc->hi, x);
  s.lo += acc->lo;
  *acc = TwoSum(s.hi, s.lo);
}

void DDAddDD(DD* acc, const DD& x) {
  DDAdd(acc, x.hi);
  DDAdd(acc, x.lo);
}

DD DDSquare(const DD& a) {
  DD p = TwoProd(a.hi, a.hi);
  p.lo += 2.0 * a.hi * a.lo + a.lo * a.lo;
  return TwoSum(p.hi, p.lo);
}

DD DDDiv(const DD& a, double d) {
  double q = a.hi / d;
  // fma recovers the exact remainder of the hi-part division.
  double r = std::fma(-q, d, a.hi);
  return TwoSum(q, (r + a.lo) / d);
}

// Variance scratchpad: compensated moment sums (n, Σx, Σx²). The textbook
// single-double sum_sq/n − mean² form cancels catastrophically, and the
// Welford/Chan (n, mean, M2) triple — while insert/merge-stable — drifts
// under removal: the inverse update leaves rounding residue in M2 scaled by
// the largest value ever seen, which sqrt amplifies when the true variance
// is ~0. Double-double moments are mergeable (sums commute), removable
// (subtraction is ~exact), and retain enough precision (~106 bits) that the
// Σx² − (Σx)²/n cancellation still leaves an accurate result.
struct VarState : AggState {
  int64_t n = 0;  // finite inputs folded into the moment sums
  DD sx;          // Σx
  DD sxx;         // Σx²  (each x² expanded exactly via TwoProd)
  // Non-finite inputs are counted instead of folded in: one NaN or infinity
  // would poison the sums irreversibly, breaking Remove. While any are
  // present the variance is NaN (the same value a from-scratch two-pass
  // computation produces).
  int64_t n_bad = 0;
};

class VarianceFunction : public WithInlineState<VarState> {
 public:
  explicit VarianceFunction(bool stddev)
      : stddev_(stddev), name_(stddev ? "stddev_pop" : "var_pop") {}
  const std::string& name() const override { return name_; }
  AggClass agg_class() const override { return AggClass::kAlgebraic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1 || !IsNumeric(arg_types[0])) {
      return Status::TypeError(name_ + " requires one numeric argument");
    }
    return DataType::kFloat64;
  }
  AggStatePtr Init() const override { return std::make_unique<VarState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    auto* s = As<VarState>(state);
    double x = args[0].AsDouble();
    if (!std::isfinite(x)) {
      ++s->n_bad;
      return;
    }
    ++s->n;
    DDAdd(&s->sx, x);
    DDAddDD(&s->sxx, TwoProd(x, x));
  }
  Value Final(const AggState* state) const override {
    const auto* s = As<VarState>(state);
    if (s->n + s->n_bad == 0) return Value::Null();
    if (s->n_bad > 0) {
      return Value::Float64(std::numeric_limits<double>::quiet_NaN());
    }
    // var = (Σx² − (Σx)²/n) / n, with the cancelling subtraction done in
    // double-double so ~106 bits absorb the loss.
    double dn = static_cast<double>(s->n);
    DD correction = DDDiv(DDSquare(s->sx), dn);
    DD diff = s->sxx;
    DDAddDD(&diff, {-correction.hi, -correction.lo});
    double var = (diff.hi + diff.lo) / dn;
    if (var < 0) var = 0;  // rounding guard
    return Value::Float64(stddev_ ? std::sqrt(var) : var);
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = As<VarState>(dst);
    const auto* s = As<VarState>(src);
    d->n_bad += s->n_bad;
    d->n += s->n;
    DDAddDD(&d->sx, s->sx);
    DDAddDD(&d->sxx, s->sxx);
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto* s = As<VarState>(state);
    double x = args[0].AsDouble();
    if (!std::isfinite(x)) {
      --s->n_bad;
      return Status::OK();
    }
    --s->n;
    if (s->n <= 0) {
      // Removing the last value restores the empty state exactly.
      s->n = 0;
      s->sx = DD{};
      s->sxx = DD{};
      return Status::OK();
    }
    DDAdd(&s->sx, -x);
    DD x2 = TwoProd(x, x);
    DDAddDD(&s->sxx, {-x2.hi, -x2.lo});
    return Status::OK();
  }
  Status SerializeState(const AggState* state,
                        std::string* out) const override {
    const auto* s = As<VarState>(state);
    EncodeValue(Value::Int64(s->n), out);
    EncodeValue(Value::Float64(s->sx.hi), out);
    EncodeValue(Value::Float64(s->sx.lo), out);
    EncodeValue(Value::Float64(s->sxx.hi), out);
    EncodeValue(Value::Float64(s->sxx.lo), out);
    EncodeValue(Value::Int64(s->n_bad), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<VarState>();
    DATACUBE_ASSIGN_OR_RETURN(Value n, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value sx_hi, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value sx_lo, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value sxx_hi, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value sxx_lo, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value n_bad, DecodeValue(data, pos));
    s->n = n.int64_value();
    s->sx = {sx_hi.float64_value(), sx_lo.float64_value()};
    s->sxx = {sxx_hi.float64_value(), sxx_lo.float64_value()};
    s->n_bad = n_bad.int64_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<VarState>(*As<VarState>(state));
  }

 private:
  bool stddev_;
  std::string name_;
};

// ----------------------------------------------------------------- MEDIAN

struct MedianState : AggState {
  std::vector<double> values;
};

// IEEE total order for the value-list scratchpads: -inf < finite < +inf <
// NaN, matching Value::Compare. Plain operator< violates strict weak
// ordering once a NaN enters the list, making nth_element/sort results
// depend on input order (different cube algorithms would then disagree).
bool DoubleTotalLess(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return !std::isnan(a) && std::isnan(b);
  return a < b;
}

// Equality consistent with DoubleTotalLess: NaN matches NaN (a removed NaN
// must find the NaN that was inserted), -0.0 matches +0.0.
bool DoubleTotalEq(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return a == b;
}

// Shared (de)serialization of the value-list scratchpad used by MEDIAN and
// PERCENTILE.
Status SerializeMedianState(const AggState* state, std::string* out) {
  const auto& values = As<MedianState>(state)->values;
  EncodeCount(values.size(), out);
  for (double v : values) EncodeValue(Value::Float64(v), out);
  return Status::OK();
}

Result<AggStatePtr> DeserializeMedianState(const std::string& data,
                                           size_t* pos) {
  auto s = std::make_unique<MedianState>();
  DATACUBE_ASSIGN_OR_RETURN(uint64_t n, DecodeCount(data, pos));
  s->values.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DATACUBE_ASSIGN_OR_RETURN(Value v, DecodeValue(data, pos));
    s->values.push_back(v.float64_value());
  }
  return AggStatePtr(std::move(s));
}

// Holistic: "no constant bound on the size of the storage needed to describe
// a sub-aggregate" (Section 5). supports_merge() stays false, so cube
// planners recompute median cells from base data.
class MedianFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "median";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kHolistic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1 || !IsNumeric(arg_types[0])) {
      return Status::TypeError("median requires one numeric argument");
    }
    return DataType::kFloat64;
  }
  AggStatePtr Init() const override { return std::make_unique<MedianState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    As<MedianState>(state)->values.push_back(args[0].AsDouble());
  }
  Value Final(const AggState* state) const override {
    std::vector<double> v = As<MedianState>(state)->values;
    if (v.empty()) return Value::Null();
    size_t mid = v.size() / 2;
    std::nth_element(v.begin(), v.begin() + mid, v.end(), DoubleTotalLess);
    if (v.size() % 2 == 1) return Value::Float64(v[mid]);
    double hi = v[mid];
    double lo = *std::max_element(v.begin(), v.begin() + mid, DoubleTotalLess);
    return Value::Float64((lo + hi) / 2.0);
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto& v = As<MedianState>(state)->values;
    double x = args[0].AsDouble();
    auto it = std::find_if(v.begin(), v.end(),
                           [x](double d) { return DoubleTotalEq(d, x); });
    if (it == v.end()) {
      return Status::InvalidArgument("median: removing absent value");
    }
    *it = v.back();
    v.pop_back();
    return Status::OK();
  }
  Status SerializeState(const AggState* state,
                        std::string* out) const override {
    return SerializeMedianState(state, out);
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    return DeserializeMedianState(data, pos);
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<MedianState>(*As<MedianState>(state));
  }
};

// ------------------------------------------------------------------- MODE

struct ModeState : AggState {
  std::map<Value, int64_t> counts;
};

// Shared (de)serialization of the value->count scratchpad used by MODE and
// COUNT DISTINCT.
Status SerializeModeState(const AggState* state, std::string* out) {
  const auto& counts = As<ModeState>(state)->counts;
  EncodeCount(counts.size(), out);
  for (const auto& [v, c] : counts) {
    EncodeValue(v, out);
    EncodeValue(Value::Int64(c), out);
  }
  return Status::OK();
}

Result<AggStatePtr> DeserializeModeState(const std::string& data,
                                         size_t* pos) {
  auto s = std::make_unique<ModeState>();
  DATACUBE_ASSIGN_OR_RETURN(uint64_t n, DecodeCount(data, pos));
  for (uint64_t i = 0; i < n; ++i) {
    DATACUBE_ASSIGN_OR_RETURN(Value v, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value c, DecodeValue(data, pos));
    s->counts.emplace(std::move(v), c.int64_value());
  }
  return AggStatePtr(std::move(s));
}

// MostFrequent / Mode: holistic by the paper's classification, but its
// value→count map *is* mergeable (memory proportional to distinct values),
// so supports_merge() is overridden — planners may trade memory for scans.
class ModeFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "mode";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kHolistic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  bool supports_merge() const override { return true; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1) {
      return Status::TypeError("mode requires one argument");
    }
    return arg_types[0];
  }
  AggStatePtr Init() const override { return std::make_unique<ModeState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    ++As<ModeState>(state)->counts[args[0]];
  }
  Value Final(const AggState* state) const override {
    const auto& counts = As<ModeState>(state)->counts;
    Value best = Value::Null();
    int64_t best_count = 0;
    for (const auto& [v, c] : counts) {
      if (c > best_count) {  // ties resolve to the smallest value (map order)
        best = v;
        best_count = c;
      }
    }
    return best;
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = As<ModeState>(dst);
    for (const auto& [v, c] : As<ModeState>(src)->counts) d->counts[v] += c;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto& counts = As<ModeState>(state)->counts;
    auto it = counts.find(args[0]);
    if (it == counts.end()) {
      return Status::InvalidArgument("mode: removing absent value");
    }
    if (--it->second == 0) counts.erase(it);
    return Status::OK();
  }
  Status SerializeState(const AggState* state,
                        std::string* out) const override {
    return SerializeModeState(state, out);
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    return DeserializeModeState(data, pos);
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<ModeState>(*As<ModeState>(state));
  }
};

// --------------------------------------------------------- COUNT DISTINCT

class CountDistinctFunction : public AggregateFunction {
 public:
  const std::string& name() const override {
    static const std::string kName = "count_distinct";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kHolistic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  bool supports_merge() const override { return true; }
  Result<DataType> ResultType(const std::vector<DataType>&) const override {
    return DataType::kInt64;
  }
  AggStatePtr Init() const override { return std::make_unique<ModeState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    ++As<ModeState>(state)->counts[args[0]];
  }
  Value Final(const AggState* state) const override {
    return Value::Int64(
        static_cast<int64_t>(As<ModeState>(state)->counts.size()));
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = As<ModeState>(dst);
    for (const auto& [v, c] : As<ModeState>(src)->counts) d->counts[v] += c;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto& counts = As<ModeState>(state)->counts;
    auto it = counts.find(args[0]);
    if (it == counts.end()) {
      return Status::InvalidArgument("count_distinct: removing absent value");
    }
    if (--it->second == 0) counts.erase(it);
    return Status::OK();
  }
  Status SerializeState(const AggState* state,
                        std::string* out) const override {
    return SerializeModeState(state, out);
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    return DeserializeModeState(data, pos);
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<ModeState>(*As<ModeState>(state));
  }
};

// ------------------------------------------------------------ MaxN / MinN

struct TopNState : AggState {
  std::vector<Value> values;  // kept sorted best-first, size <= n
};

// The paper's other canonical algebraic examples: "the key to algebraic
// functions is that a fixed size result (an M-tuple) can summarize the
// sub-aggregation" — here the M-tuple is the current top-N list.
class TopNFunction : public WithInlineState<TopNState> {
 public:
  TopNFunction(bool is_max, int n)
      : is_max_(is_max),
        n_(n),
        name_((is_max ? "max_n" : "min_n")) {}
  const std::string& name() const override { return name_; }
  AggClass agg_class() const override { return AggClass::kAlgebraic; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1) {
      return Status::TypeError(name_ + " requires one argument");
    }
    return DataType::kString;  // comma-joined top-N list
  }
  AggStatePtr Init() const override { return std::make_unique<TopNState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    auto& v = As<TopNState>(state)->values;
    auto pos = std::lower_bound(v.begin(), v.end(), args[0],
                                [this](const Value& a, const Value& b) {
                                  int cmp = a.Compare(b);
                                  return is_max_ ? cmp > 0 : cmp < 0;
                                });
    v.insert(pos, args[0]);
    if (v.size() > static_cast<size_t>(n_)) v.pop_back();
  }
  Value Final(const AggState* state) const override {
    const auto& v = As<TopNState>(state)->values;
    if (v.empty()) return Value::Null();
    std::vector<std::string> parts;
    parts.reserve(v.size());
    for (const Value& x : v) parts.push_back(x.ToString());
    return Value::String(Join(parts, ","));
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    for (const Value& v : As<TopNState>(src)->values) Iter1(dst, v);
    return Status::OK();
  }
  Status SerializeState(const AggState* state,
                        std::string* out) const override {
    const auto& values = As<TopNState>(state)->values;
    EncodeCount(values.size(), out);
    for (const Value& v : values) EncodeValue(v, out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<TopNState>();
    DATACUBE_ASSIGN_OR_RETURN(uint64_t n, DecodeCount(data, pos));
    for (uint64_t i = 0; i < n; ++i) {
      DATACUBE_ASSIGN_OR_RETURN(Value v, DecodeValue(data, pos));
      s->values.push_back(std::move(v));
    }
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<TopNState>(*As<TopNState>(state));
  }

 private:
  bool is_max_;
  int n_;
  std::string name_;
};

// ---------------------------------------------------------- BOOL AND / OR

struct BoolState : AggState {
  int64_t true_count = 0;
  int64_t false_count = 0;
};

// Distributive; keeping both counters (not just the current verdict) makes
// the function deletable — another instance of Section 6's point that a
// richer scratchpad buys cheap maintenance.
class BoolCombineFunction : public WithInlineState<BoolState> {
 public:
  explicit BoolCombineFunction(bool is_and)
      : is_and_(is_and), name_(is_and ? "bool_and" : "bool_or") {}
  const std::string& name() const override { return name_; }
  AggClass agg_class() const override { return AggClass::kDistributive; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1 || arg_types[0] != DataType::kBool) {
      return Status::TypeError(name_ + " requires one boolean argument");
    }
    return DataType::kBool;
  }
  AggStatePtr Init() const override { return std::make_unique<BoolState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    auto* s = As<BoolState>(state);
    if (args[0].bool_value()) {
      ++s->true_count;
    } else {
      ++s->false_count;
    }
  }
  Value Final(const AggState* state) const override {
    const auto* s = As<BoolState>(state);
    if (s->true_count + s->false_count == 0) return Value::Null();
    return Value::Bool(is_and_ ? s->false_count == 0 : s->true_count > 0);
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = As<BoolState>(dst);
    const auto* s = As<BoolState>(src);
    d->true_count += s->true_count;
    d->false_count += s->false_count;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto* s = As<BoolState>(state);
    if (args[0].bool_value()) {
      --s->true_count;
    } else {
      --s->false_count;
    }
    return Status::OK();
  }
  Status SerializeState(const AggState* state,
                        std::string* out) const override {
    const auto* s = As<BoolState>(state);
    EncodeValue(Value::Int64(s->true_count), out);
    EncodeValue(Value::Int64(s->false_count), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<BoolState>();
    DATACUBE_ASSIGN_OR_RETURN(Value t, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value f, DecodeValue(data, pos));
    s->true_count = t.int64_value();
    s->false_count = f.int64_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<BoolState>(*As<BoolState>(state));
  }

 private:
  bool is_and_;
  std::string name_;
};

// -------------------------------------------------------------- PERCENTILE

// Holistic: needs all values. p = 50 is the median; quartiles are p = 25 /
// 75 — the family the paper says practitioners approximate rather than
// maintain exactly (Section 6).
class PercentileFunction : public AggregateFunction {
 public:
  explicit PercentileFunction(double p) : p_(p) {}
  const std::string& name() const override {
    static const std::string kName = "percentile";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kHolistic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 1 || !IsNumeric(arg_types[0])) {
      return Status::TypeError("percentile requires one numeric argument");
    }
    return DataType::kFloat64;
  }
  AggStatePtr Init() const override { return std::make_unique<MedianState>(); }
  void Iter(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return;
    As<MedianState>(state)->values.push_back(args[0].AsDouble());
  }
  Value Final(const AggState* state) const override {
    std::vector<double> v = As<MedianState>(state)->values;
    if (v.empty()) return Value::Null();
    std::sort(v.begin(), v.end(), DoubleTotalLess);
    // Linear interpolation between closest ranks.
    double rank = p_ / 100.0 * static_cast<double>(v.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, v.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return Value::Float64(v[lo] + (v[hi] - v[lo]) * frac);
  }
  Status Remove(AggState* state, const Value* args, size_t) const override {
    if (args[0].is_special()) return Status::OK();
    auto& v = As<MedianState>(state)->values;
    double x = args[0].AsDouble();
    auto it = std::find_if(v.begin(), v.end(),
                           [x](double d) { return DoubleTotalEq(d, x); });
    if (it == v.end()) {
      return Status::InvalidArgument("percentile: removing absent value");
    }
    *it = v.back();
    v.pop_back();
    return Status::OK();
  }
  Status SerializeState(const AggState* state,
                        std::string* out) const override {
    return SerializeMedianState(state, out);
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    return DeserializeMedianState(data, pos);
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<MedianState>(*As<MedianState>(state));
  }

 private:
  double p_;
};

// ---------------------------------------------------------- CENTER OF MASS

struct ComState : AggState {
  double moment = 0.0;
  double mass = 0.0;
};

// center_of_mass(position, mass): two-argument algebraic aggregate; the
// scratchpad is the (Σ p·m, Σ m) pair.
class CenterOfMassFunction : public WithInlineState<ComState> {
 public:
  const std::string& name() const override {
    static const std::string kName = "center_of_mass";
    return kName;
  }
  AggClass agg_class() const override { return AggClass::kAlgebraic; }
  DeleteClass delete_class() const override { return DeleteClass::kDeletable; }
  int num_args() const override { return 2; }
  Result<DataType> ResultType(
      const std::vector<DataType>& arg_types) const override {
    if (arg_types.size() != 2 || !IsNumeric(arg_types[0]) ||
        !IsNumeric(arg_types[1])) {
      return Status::TypeError(
          "center_of_mass requires two numeric arguments (position, mass)");
    }
    return DataType::kFloat64;
  }
  AggStatePtr Init() const override { return std::make_unique<ComState>(); }
  void Iter(AggState* state, const Value* args, size_t nargs) const override {
    if (nargs < 2 || args[0].is_special() || args[1].is_special()) return;
    auto* s = As<ComState>(state);
    double m = args[1].AsDouble();
    s->moment += args[0].AsDouble() * m;
    s->mass += m;
  }
  Value Final(const AggState* state) const override {
    const auto* s = As<ComState>(state);
    if (s->mass == 0.0) return Value::Null();
    return Value::Float64(s->moment / s->mass);
  }
  Status Merge(AggState* dst, const AggState* src) const override {
    auto* d = As<ComState>(dst);
    const auto* s = As<ComState>(src);
    d->moment += s->moment;
    d->mass += s->mass;
    return Status::OK();
  }
  Status Remove(AggState* state, const Value* args,
                size_t nargs) const override {
    if (nargs < 2 || args[0].is_special() || args[1].is_special()) {
      return Status::OK();
    }
    auto* s = As<ComState>(state);
    double m = args[1].AsDouble();
    s->moment -= args[0].AsDouble() * m;
    s->mass -= m;
    return Status::OK();
  }
  Status SerializeState(const AggState* state,
                        std::string* out) const override {
    const auto* s = As<ComState>(state);
    EncodeValue(Value::Float64(s->moment), out);
    EncodeValue(Value::Float64(s->mass), out);
    return Status::OK();
  }
  Result<AggStatePtr> DeserializeState(const std::string& data,
                                       size_t* pos) const override {
    auto s = std::make_unique<ComState>();
    DATACUBE_ASSIGN_OR_RETURN(Value moment, DecodeValue(data, pos));
    DATACUBE_ASSIGN_OR_RETURN(Value mass, DecodeValue(data, pos));
    s->moment = moment.float64_value();
    s->mass = mass.float64_value();
    return AggStatePtr(std::move(s));
  }
  AggStatePtr Clone(const AggState* state) const override {
    return std::make_unique<ComState>(*As<ComState>(state));
  }
};

}  // namespace

const char* AggClassName(AggClass c) {
  switch (c) {
    case AggClass::kDistributive:
      return "distributive";
    case AggClass::kAlgebraic:
      return "algebraic";
    case AggClass::kHolistic:
      return "holistic";
  }
  return "unknown";
}

AggregateFunctionPtr MakeCountStar() {
  return std::make_shared<CountStarFunction>();
}
AggregateFunctionPtr MakeCount() { return std::make_shared<CountFunction>(); }
AggregateFunctionPtr MakeSum() { return std::make_shared<SumFunction>(); }
AggregateFunctionPtr MakeMin() {
  return std::make_shared<ExtremeFunction>(/*is_max=*/false);
}
AggregateFunctionPtr MakeMax() {
  return std::make_shared<ExtremeFunction>(/*is_max=*/true);
}
AggregateFunctionPtr MakeAvg() { return std::make_shared<AvgFunction>(); }
AggregateFunctionPtr MakeVarPop() {
  return std::make_shared<VarianceFunction>(/*stddev=*/false);
}
AggregateFunctionPtr MakeStdDevPop() {
  return std::make_shared<VarianceFunction>(/*stddev=*/true);
}
AggregateFunctionPtr MakeMedian() { return std::make_shared<MedianFunction>(); }
AggregateFunctionPtr MakeMode() { return std::make_shared<ModeFunction>(); }
AggregateFunctionPtr MakeCountDistinctAgg() {
  return std::make_shared<CountDistinctFunction>();
}
AggregateFunctionPtr MakeMaxN(int n) {
  return std::make_shared<TopNFunction>(/*is_max=*/true, n);
}
AggregateFunctionPtr MakeMinN(int n) {
  return std::make_shared<TopNFunction>(/*is_max=*/false, n);
}
AggregateFunctionPtr MakeCenterOfMass() {
  return std::make_shared<CenterOfMassFunction>();
}
AggregateFunctionPtr MakePercentile(double p) {
  return std::make_shared<PercentileFunction>(p);
}
AggregateFunctionPtr MakeBoolAnd() {
  return std::make_shared<BoolCombineFunction>(/*is_and=*/true);
}
AggregateFunctionPtr MakeBoolOr() {
  return std::make_shared<BoolCombineFunction>(/*is_and=*/false);
}

}  // namespace datacube
