#ifndef DATACUBE_AGG_REGISTRY_H_
#define DATACUBE_AGG_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "datacube/agg/aggregate.h"
#include "datacube/common/result.h"

namespace datacube {

/// Process-wide registry of aggregate functions, keyed by case-insensitive
/// name. This is the paper's user-defined aggregate extension point
/// (Section 1.2's Informix Init/Iter/Final callbacks, Figure 7): register a
/// factory and the function becomes available to the cube operator and the
/// SQL front end.
class AggregateRegistry {
 public:
  /// A factory builds a function instance from constant parameters (e.g.
  /// max_n(x, 3) passes params = {3}).
  using Factory = std::function<Result<AggregateFunctionPtr>(
      const std::vector<Value>& params)>;

  /// The singleton registry with built-ins pre-registered.
  static AggregateRegistry& Global();

  /// Registers `factory` under `name`; fails if taken.
  Status Register(const std::string& name, Factory factory);

  /// Instantiates the function `name` with `params`.
  Result<AggregateFunctionPtr> Make(
      const std::string& name, const std::vector<Value>& params = {}) const;

  bool Contains(const std::string& name) const;

  /// Sorted names of registered functions.
  std::vector<std::string> Names() const;

 private:
  AggregateRegistry() = default;
  std::vector<std::pair<std::string, Factory>> factories_;
};

}  // namespace datacube

#endif  // DATACUBE_AGG_REGISTRY_H_
