#include "datacube/workload/weather.h"

#include <iterator>
#include <random>

#include "datacube/common/date.h"

namespace datacube {

namespace {

// A few fixed stations inside the expr module's nation() bounding boxes.
struct Station {
  double lat, lon;
  int64_t altitude;
};
constexpr Station kStations[] = {
    {37.97, -122.75, 102},  // USA (the paper's 37:58:33N 122:45:28W row)
    {40.7, -74.0, 10},      // USA
    {51.0, -114.0, 1045},   // Canada
    {19.4, -99.1, 2240},    // Mexico
    {48.8, 2.3, 35},        // France
    {52.5, 13.4, 34},       // Germany
    {51.5, -0.1, 11},       // UK
    {35.6, 139.7, 40},      // Japan
    {28.6, 77.2, 216},      // India
    {-33.8, 151.2, 3},      // Australia
};

}  // namespace

Result<Table> GenerateWeather(const WeatherGenOptions& options) {
  Table table(Schema{{Field{"Time", DataType::kDate},
                      Field{"Latitude", DataType::kFloat64},
                      Field{"Longitude", DataType::kFloat64},
                      Field{"Altitude", DataType::kInt64},
                      Field{"Temp", DataType::kInt64},
                      Field{"Pressure", DataType::kInt64}}});
  table.Reserve(options.num_rows);
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<int> station_dist(
      0, static_cast<int>(std::size(kStations)) - 1);
  std::uniform_int_distribution<int32_t> day_dist(0, options.num_days - 1);
  std::uniform_real_distribution<double> jitter(-0.5, 0.5);
  std::uniform_int_distribution<int64_t> temp_dist(-10, 45);
  std::uniform_int_distribution<int64_t> pressure_dist(980, 1040);
  Date start = DateFromCivil(1996, 6, 1);
  for (size_t i = 0; i < options.num_rows; ++i) {
    const Station& st = kStations[station_dist(rng)];
    Date day{start.days_since_epoch + day_dist(rng)};
    DATACUBE_RETURN_IF_ERROR(
        table.AppendRow({Value::FromDate(day),
                         Value::Float64(st.lat + jitter(rng)),
                         Value::Float64(st.lon + jitter(rng)),
                         Value::Int64(st.altitude),
                         Value::Int64(temp_dist(rng)),
                         Value::Int64(pressure_dist(rng))}));
  }
  return table;
}

}  // namespace datacube
