#include "datacube/workload/tpcd.h"

#include <random>

namespace datacube {

Result<Table> GenerateLineitem(const TpcdGenOptions& options) {
  static constexpr const char* kReturnFlags[] = {"A", "N", "R"};
  static constexpr const char* kLineStatus[] = {"F", "O"};
  static constexpr const char* kShipModes[] = {"AIR",  "FOB",  "MAIL", "RAIL",
                                               "REG",  "SHIP", "TRUCK"};
  static constexpr const char* kPriorities[] = {"1-URGENT", "2-HIGH",
                                                "3-MEDIUM", "4-NOT SPECIFIED",
                                                "5-LOW"};
  static constexpr const char* kNations[] = {
      "ALGERIA", "BRAZIL", "CANADA", "EGYPT",  "FRANCE",
      "GERMANY", "INDIA",  "JAPAN",  "MEXICO", "PERU"};

  Table table(Schema{{Field{"returnflag", DataType::kString},
                      Field{"linestatus", DataType::kString},
                      Field{"shipmode", DataType::kString},
                      Field{"priority", DataType::kString},
                      Field{"nation", DataType::kString},
                      Field{"shipyear", DataType::kInt64},
                      Field{"quantity", DataType::kInt64},
                      Field{"extendedprice", DataType::kFloat64},
                      Field{"discount", DataType::kFloat64},
                      Field{"tax", DataType::kFloat64}}});
  table.Reserve(options.num_rows);
  std::mt19937_64 rng(options.seed);
  std::uniform_int_distribution<int64_t> quantity(1, 50);
  std::uniform_real_distribution<double> price(900.0, 105000.0);
  std::uniform_real_distribution<double> discount(0.0, 0.10);
  std::uniform_real_distribution<double> tax(0.0, 0.08);
  for (size_t i = 0; i < options.num_rows; ++i) {
    DATACUBE_RETURN_IF_ERROR(table.AppendRow(
        {Value::String(kReturnFlags[rng() % 3]),
         Value::String(kLineStatus[rng() % 2]),
         Value::String(kShipModes[rng() % 7]),
         Value::String(kPriorities[rng() % 5]),
         Value::String(kNations[rng() % 10]),
         Value::Int64(1992 + static_cast<int64_t>(rng() % 7)),
         Value::Int64(quantity(rng)),
         Value::Float64(price(rng)),
         Value::Float64(discount(rng)),
         Value::Float64(tax(rng))}));
  }
  return table;
}

}  // namespace datacube
