#include "datacube/workload/benchmark_queries.h"

namespace datacube {

std::vector<BenchmarkSuite> Table2Suites() {
  std::vector<BenchmarkSuite> suites;

  // --- TPC-A, B: one debit/credit transaction profile, no aggregation ---
  suites.push_back(BenchmarkSuite{
      "TPC-A, B",
      {
          "SELECT balance FROM accounts WHERE account_id = 42",
      },
      /*paper_queries=*/1,
      /*paper_aggregates=*/0,
      /*paper_group_bys=*/0});

  // --- TPC-C: 18 statements, 4 aggregates, no GROUP BY -----------------
  suites.push_back(BenchmarkSuite{
      "TPC-C",
      {
          "SELECT w_tax FROM warehouse WHERE w_id = 1",
          "SELECT d_tax FROM district WHERE d_id = 3",
          "SELECT c_discount FROM customer WHERE c_id = 17",
          "SELECT i_price FROM item WHERE i_id = 5001",
          "SELECT s_quantity FROM stock WHERE s_i_id = 5001",
          "SELECT o_id FROM orders WHERE o_c_id = 17 "
          "ORDER BY o_id DESC LIMIT 1",
          "SELECT ol_i_id FROM order_line WHERE ol_o_id = 3007",
          "SELECT c_balance FROM customer WHERE c_last = 'BARBARBAR'",
          "SELECT no_o_id FROM new_order WHERE no_d_id = 4 "
          "ORDER BY no_o_id LIMIT 1",
          "SELECT c_credit FROM customer WHERE c_id = 17",
          "SELECT i_name FROM item WHERE i_id = 5002",
          "SELECT h_amount FROM history WHERE h_c_id = 17",
          "SELECT s_dist_01 FROM stock WHERE s_i_id = 5002",
          "SELECT o_carrier_id FROM orders WHERE o_id = 3007",
          // The four aggregate statements: stock-level and payment checks.
          "SELECT COUNT(DISTINCT s_i_id) FROM stock WHERE s_quantity < 10",
          "SELECT SUM(ol_amount) FROM order_line WHERE ol_o_id = 3007",
          "SELECT MAX(o_id) FROM orders WHERE o_d_id = 4",
          "SELECT AVG(c_balance) FROM customer WHERE c_d_id = 4",
      },
      /*paper_queries=*/18,
      /*paper_aggregates=*/4,
      /*paper_group_bys=*/0});

  // --- TPC-D: 16 queries, 27 aggregates, 15 GROUP BYs -------------------
  suites.push_back(BenchmarkSuite{
      "TPC-D",
      {
          // Q1-like pricing summary: 8 aggregates, grouped.
          "SELECT returnflag, linestatus, SUM(quantity), SUM(extendedprice), "
          "SUM(discprice), SUM(charge), AVG(quantity), AVG(extendedprice), "
          "AVG(discount), COUNT(*) "
          "FROM lineitem WHERE shipdate <= '1998-09-02' "
          "GROUP BY returnflag, linestatus",
          // Q6-like forecast revenue: scalar aggregate, no GROUP BY.
          "SELECT SUM(revenue) FROM lineitem "
          "WHERE shipdate BETWEEN '1994-01-01' AND '1994-12-31' "
          "AND discount BETWEEN 5 AND 7 AND quantity < 24",
          // Fourteen grouped reporting queries (18 aggregates between them).
          "SELECT suppkey, SUM(revenue), COUNT(*) FROM lineitem "
          "GROUP BY suppkey",
          "SELECT orderpriority, COUNT(*) FROM orders GROUP BY orderpriority",
          "SELECT nation, SUM(revenue) FROM customer_orders GROUP BY nation",
          "SELECT shipyear, SUM(volume), AVG(volume) FROM shipping "
          "GROUP BY shipyear",
          "SELECT nation, shipyear, SUM(profit) FROM profit GROUP BY nation, "
          "shipyear",
          "SELECT returnflag, COUNT(*) FROM lineitem GROUP BY returnflag",
          "SELECT parttype, AVG(supplycost), COUNT(*) FROM partsupp "
          "GROUP BY parttype",
          "SELECT custkey, SUM(totalprice), COUNT(*) FROM orders "
          "GROUP BY custkey",
          "SELECT shipmode, COUNT(*) FROM lineitem GROUP BY shipmode",
          "SELECT brand, container, MAX(quantity) FROM part "
          "GROUP BY brand, container",
          "SELECT nation, COUNT(DISTINCT suppkey) FROM supplier "
          "GROUP BY nation",
          "SELECT quarter, SUM(revenue) FROM market_share GROUP BY quarter",
          "SELECT segment, COUNT(*) FROM customer GROUP BY segment",
          "SELECT year, MIN(supplycost) FROM partsupp GROUP BY year",
      },
      /*paper_queries=*/16,
      /*paper_aggregates=*/27,
      /*paper_group_bys=*/15});

  // --- Wisconsin: 18 queries, 3 aggregates, 2 GROUP BYs ----------------
  suites.push_back(BenchmarkSuite{
      "Wisconsin",
      {
          "SELECT * FROM tenktup1 WHERE unique2 BETWEEN 0 AND 99",
          "SELECT * FROM tenktup1 WHERE unique2 BETWEEN 792 AND 1791",
          "SELECT * FROM tenktup1 WHERE unique2 = 2001",
          "SELECT unique1 FROM tenktup1 WHERE unique1 BETWEEN 0 AND 99",
          "SELECT unique1 FROM tenktup1 WHERE unique1 BETWEEN 792 AND 1791",
          "SELECT * FROM tenktup1 WHERE unique2 < 1000",
          "SELECT * FROM tenktup2 WHERE unique2 < 100",
          "SELECT * FROM onektup WHERE unique2 < 100",
          "SELECT unique2 FROM tenktup1 WHERE onepercent = 5",
          "SELECT unique2 FROM tenktup2 WHERE tenpercent = 2",
          "SELECT * FROM tenktup1 WHERE stringu1 = 'AAAAxxx'",
          "SELECT * FROM tenktup1 WHERE stringu2 < 'MGAAAA'",
          "SELECT two, four, ten FROM tenktup1 WHERE even = 2",
          "SELECT * FROM bprime WHERE unique2 < 1000",
          "SELECT * FROM tenktup2 WHERE odd = 1",
          "SELECT MIN(unique2) FROM tenktup1",
          "SELECT MIN(unique3) FROM tenktup1 GROUP BY onepercent",
          "SELECT SUM(unique3) FROM tenktup1 GROUP BY onepercent",
      },
      /*paper_queries=*/18,
      /*paper_aggregates=*/3,
      /*paper_group_bys=*/2});

  // --- AS3AP: 23 queries, 20 aggregates, 2 GROUP BYs --------------------
  suites.push_back(BenchmarkSuite{
      "AS3AP",
      {
          "SELECT * FROM uniques WHERE col_key = 1000",
          "SELECT * FROM updates WHERE col_key BETWEEN 1000 AND 1100",
          "SELECT col_key FROM hundred WHERE col_signed < 0",
          "SELECT col_address FROM uniques WHERE col_address = '500 SILICON'",
          "SELECT * FROM tenpct WHERE col_name = 'THE+ASAP+BENCHMARKS+'",
          "SELECT col_key, col_name FROM updates WHERE col_decim > 0.5",
          "SELECT * FROM hundred WHERE col_float BETWEEN 0 AND 100",
          "SELECT col_code FROM tenpct WHERE col_int = 7",
          "SELECT * FROM uniques WHERE col_date = '1995-01-01'",
          "SELECT MIN(col_key) FROM uniques",
          "SELECT MAX(col_key) FROM updates",
          "SELECT MIN(col_signed), MAX(col_signed) FROM hundred",
          "SELECT SUM(col_decim), AVG(col_decim) FROM tenpct",
          "SELECT COUNT(*), SUM(col_float) FROM uniques WHERE col_float > 0",
          "SELECT AVG(col_int), MIN(col_int) FROM updates",
          "SELECT MAX(col_float), MIN(col_float) FROM tenpct "
          "WHERE col_double > 0",
          "SELECT COUNT(DISTINCT col_code), COUNT(*) FROM hundred",
          "SELECT SUM(col_double) FROM updates WHERE col_key < 5000",
          "SELECT AVG(col_decim) FROM uniques WHERE col_name < 'M'",
          "SELECT col_code, MIN(col_double), MAX(col_double), COUNT(*) "
          "FROM hundred GROUP BY col_code",
          "SELECT col_int, AVG(col_signed) FROM tenpct GROUP BY col_int",
          "SELECT col_key FROM updates WHERE col_key < 100 ORDER BY col_key",
          "SELECT col_name, col_code FROM tenpct ORDER BY col_name LIMIT 10",
      },
      /*paper_queries=*/23,
      /*paper_aggregates=*/20,
      /*paper_group_bys=*/2});

  // --- SetQuery: 7 queries, 5 aggregates, 1 GROUP BY --------------------
  suites.push_back(BenchmarkSuite{
      "SetQuery",
      {
          "SELECT COUNT(*) FROM bench WHERE k2 = 1",
          "SELECT COUNT(*), SUM(k1k) FROM bench WHERE k100 = 3 AND k25 <> 19",
          "SELECT SUM(kseq) FROM bench WHERE kseq BETWEEN 400000 AND 500000",
          "SELECT k10, COUNT(*) FROM bench WHERE k100 > 80 GROUP BY k10",
          "SELECT kseq FROM bench WHERE k100 = 3 AND k10 = 2",
          "SELECT k500k FROM bench WHERE k2 = 1 AND k4 = 3 LIMIT 100",
          "SELECT kseq, k500k FROM bench WHERE k5 = 3 ORDER BY kseq LIMIT 20",
      },
      /*paper_queries=*/7,
      /*paper_aggregates=*/5,
      /*paper_group_bys=*/1});

  return suites;
}

}  // namespace datacube
