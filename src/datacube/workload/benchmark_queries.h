#ifndef DATACUBE_WORKLOAD_BENCHMARK_QUERIES_H_
#define DATACUBE_WORKLOAD_BENCHMARK_QUERIES_H_

#include <string>
#include <vector>

namespace datacube {

/// One benchmark suite for the paper's Table 2 ("SQL Aggregates in Standard
/// Benchmarks"): its query texts plus the counts the paper reports.
///
/// The original TPC/Wisconsin/AS3AP/SetQuery query texts are not
/// redistributable verbatim and use multi-table joins; these are structural
/// paraphrases — the same number of queries, carrying the same number of
/// aggregate functions and GROUP BY clauses, expressed over single tables so
/// they exercise this library's parser. The counts are what matters for
/// reproducing Table 2.
struct BenchmarkSuite {
  std::string name;
  std::vector<std::string> queries;
  int paper_queries = 0;
  int paper_aggregates = 0;
  int paper_group_bys = 0;
};

/// The six suites of Table 2: TPC-A/B, TPC-C, TPC-D, Wisconsin, AS3AP,
/// SetQuery.
std::vector<BenchmarkSuite> Table2Suites();

}  // namespace datacube

#endif  // DATACUBE_WORKLOAD_BENCHMARK_QUERIES_H_
