#ifndef DATACUBE_WORKLOAD_SALES_H_
#define DATACUBE_WORKLOAD_SALES_H_

#include <cstdint>

#include "datacube/common/result.h"
#include "datacube/table/table.h"

namespace datacube {

/// The paper's Figure 4 SALES relation: Model ∈ {Chevy, Ford} × Year ∈
/// {1990, 1991, 1992} × Color ∈ {red, white, blue}, 2×3×3 = 18 rows, so the
/// derived cube has 3×4×4 = 48 rows. The figure is an image in the paper;
/// the per-row unit counts here are synthesized to reproduce its published
/// grand total, SUM(Units) = 941 (the "(ALL, ALL, ALL, 941)" tuple of
/// Section 3.4).
Result<Table> Figure4SalesTable();

/// The sales-summary data behind Tables 3–6: Chevy and Ford, years
/// 1994/1995, colors black/white, with the paper's exact unit counts
/// (Chevy total 290, Ford total 220, grand total 510 — Table 4's row).
Result<Table> Table3SalesTable();

/// Parameters for the scalable synthetic sales generator used by benches.
struct SalesGenOptions {
  size_t num_rows = 10000;
  /// Dimension cardinalities (the paper's C_i).
  size_t num_models = 10;
  size_t num_years = 10;
  size_t num_colors = 10;
  size_t num_dealers = 10;  // fourth dimension for N-dim sweeps
  /// Zipf skew across dimension values; 0 = uniform.
  double skew = 0.0;
  uint64_t seed = 42;
};

/// Synthetic sales table with schema (Model STRING, Year INT64, Color
/// STRING, Dealer STRING, Units INT64, Price FLOAT64). Deterministic for a
/// given options struct.
Result<Table> GenerateSales(const SalesGenOptions& options);

/// Parameters for the generic N-dimensional cube input used by the bench
/// harness: columns d0..d{num_dims-1} (STRING, each with `cardinality`
/// distinct values, Zipf-skewed when skew > 0) plus measures x (INT64) and
/// y (FLOAT64).
struct CubeInputOptions {
  size_t num_rows = 10000;
  size_t num_dims = 3;
  size_t cardinality = 10;
  double skew = 0.0;
  uint64_t seed = 42;
  /// Per-dimension cardinality override; when non-empty must have num_dims
  /// entries and takes precedence over `cardinality`.
  std::vector<size_t> cardinalities;
};

/// Generic N-dimensional benchmark input.
Result<Table> GenerateCubeInput(const CubeInputOptions& options);

}  // namespace datacube

#endif  // DATACUBE_WORKLOAD_SALES_H_
