#ifndef DATACUBE_WORKLOAD_TPCD_H_
#define DATACUBE_WORKLOAD_TPCD_H_

#include <cstdint>

#include "datacube/common/result.h"
#include "datacube/table/table.h"

namespace datacube {

/// Parameters for the TPC-D-like lineitem generator.
struct TpcdGenOptions {
  size_t num_rows = 100000;
  uint64_t seed = 1996;
};

/// A lineitem-shaped fact table. The paper's Table 2 notes TPC-D contains
/// "one 6D GROUP BY and three 3D GROUP BYs", and Section 2's headline
/// complaint — "a six dimension cross-tab requires a 64-way union of 64
/// different GROUP BY operators" — is about exactly this kind of table.
///
/// Schema (six dimensions + four measures):
///   returnflag  STRING (3 values)     linestatus STRING (2)
///   shipmode    STRING (7)            priority   STRING (5)
///   nation      STRING (10)           shipyear   INT64  (7)
///   quantity    INT64                 extendedprice FLOAT64
///   discount    FLOAT64               tax           FLOAT64
Result<Table> GenerateLineitem(const TpcdGenOptions& options);

}  // namespace datacube

#endif  // DATACUBE_WORKLOAD_TPCD_H_
