#include "datacube/workload/sales.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace datacube {

namespace {

std::vector<Field> SalesFields() {
  return {Field{"Model", DataType::kString},
          Field{"Year", DataType::kInt64},
          Field{"Color", DataType::kString},
          Field{"Units", DataType::kInt64}};
}

}  // namespace

Result<Table> Figure4SalesTable() {
  struct Row {
    const char* model;
    int64_t year;
    const char* color;
    int64_t units;
  };
  // 18 rows whose grand total is the paper's published 941.
  static constexpr Row kRows[] = {
      {"Chevy", 1990, "red", 5},    {"Chevy", 1990, "white", 87},
      {"Chevy", 1990, "blue", 62},  {"Chevy", 1991, "red", 54},
      {"Chevy", 1991, "white", 95}, {"Chevy", 1991, "blue", 49},
      {"Chevy", 1992, "red", 31},   {"Chevy", 1992, "white", 54},
      {"Chevy", 1992, "blue", 71},  {"Ford", 1990, "red", 64},
      {"Ford", 1990, "white", 62},  {"Ford", 1990, "blue", 63},
      {"Ford", 1991, "red", 52},    {"Ford", 1991, "white", 9},
      {"Ford", 1991, "blue", 55},   {"Ford", 1992, "red", 27},
      {"Ford", 1992, "white", 62},  {"Ford", 1992, "blue", 39},
  };
  TableBuilder b(SalesFields());
  for (const Row& r : kRows) {
    b.Row({Value::String(r.model), Value::Int64(r.year),
           Value::String(r.color), Value::Int64(r.units)});
  }
  return std::move(b).Build();
}

Result<Table> Table3SalesTable() {
  struct Row {
    const char* model;
    int64_t year;
    const char* color;
    int64_t units;
  };
  // The exact counts of Tables 3.a/3.b/4/5/6: Chevy 290, Ford 220, total 510.
  static constexpr Row kRows[] = {
      {"Chevy", 1994, "black", 50}, {"Chevy", 1994, "white", 40},
      {"Chevy", 1995, "black", 85}, {"Chevy", 1995, "white", 115},
      {"Ford", 1994, "black", 50},  {"Ford", 1994, "white", 10},
      {"Ford", 1995, "black", 85},  {"Ford", 1995, "white", 75},
  };
  TableBuilder b(SalesFields());
  for (const Row& r : kRows) {
    b.Row({Value::String(r.model), Value::Int64(r.year),
           Value::String(r.color), Value::Int64(r.units)});
  }
  return std::move(b).Build();
}

namespace {

// Draws an index in [0, n) with Zipf(skew) weights (skew 0 = uniform).
class ZipfPicker {
 public:
  ZipfPicker(size_t n, double skew) {
    cdf_.reserve(n);
    double total = 0;
    for (size_t i = 1; i <= n; ++i) {
      total += skew == 0.0 ? 1.0 : 1.0 / std::pow(static_cast<double>(i), skew);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }
  size_t Pick(std::mt19937_64& rng) const {
    double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

Result<Table> GenerateSales(const SalesGenOptions& options) {
  Table table(Schema{{Field{"Model", DataType::kString},
                      Field{"Year", DataType::kInt64},
                      Field{"Color", DataType::kString},
                      Field{"Dealer", DataType::kString},
                      Field{"Units", DataType::kInt64},
                      Field{"Price", DataType::kFloat64}}});
  table.Reserve(options.num_rows);
  std::mt19937_64 rng(options.seed);
  ZipfPicker models(options.num_models, options.skew);
  ZipfPicker years(options.num_years, options.skew);
  ZipfPicker colors(options.num_colors, options.skew);
  ZipfPicker dealers(options.num_dealers, options.skew);
  std::uniform_int_distribution<int64_t> units(1, 100);
  std::uniform_real_distribution<double> price(5000.0, 60000.0);
  for (size_t i = 0; i < options.num_rows; ++i) {
    DATACUBE_RETURN_IF_ERROR(table.AppendRow(
        {Value::String("model" + std::to_string(models.Pick(rng))),
         Value::Int64(1990 + static_cast<int64_t>(years.Pick(rng))),
         Value::String("color" + std::to_string(colors.Pick(rng))),
         Value::String("dealer" + std::to_string(dealers.Pick(rng))),
         Value::Int64(units(rng)),
         Value::Float64(price(rng))}));
  }
  return table;
}

Result<Table> GenerateCubeInput(const CubeInputOptions& options) {
  std::vector<size_t> cards = options.cardinalities;
  if (cards.empty()) {
    cards.assign(options.num_dims, options.cardinality);
  }
  if (cards.size() != options.num_dims) {
    return Status::InvalidArgument(
        "cardinalities must match num_dims when provided");
  }
  std::vector<Field> fields;
  for (size_t d = 0; d < options.num_dims; ++d) {
    fields.push_back(Field{"d" + std::to_string(d), DataType::kString});
  }
  fields.push_back(Field{"x", DataType::kInt64});
  fields.push_back(Field{"y", DataType::kFloat64});
  Table table{Schema{std::move(fields)}};
  table.Reserve(options.num_rows);

  std::mt19937_64 rng(options.seed);
  std::vector<ZipfPicker> pickers;
  pickers.reserve(options.num_dims);
  for (size_t d = 0; d < options.num_dims; ++d) {
    pickers.emplace_back(cards[d], options.skew);
  }
  std::uniform_int_distribution<int64_t> x_dist(0, 999);
  std::uniform_real_distribution<double> y_dist(0.0, 100.0);
  for (size_t i = 0; i < options.num_rows; ++i) {
    std::vector<Value> row;
    row.reserve(options.num_dims + 2);
    for (size_t d = 0; d < options.num_dims; ++d) {
      row.push_back(Value::String("v" + std::to_string(pickers[d].Pick(rng))));
    }
    row.push_back(Value::Int64(x_dist(rng)));
    row.push_back(Value::Float64(y_dist(rng)));
    DATACUBE_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

}  // namespace datacube
