#ifndef DATACUBE_WORKLOAD_WEATHER_H_
#define DATACUBE_WORKLOAD_WEATHER_H_

#include <cstdint>

#include "datacube/common/result.h"
#include "datacube/table/table.h"

namespace datacube {

/// Parameters for the Table 1-shaped weather generator.
struct WeatherGenOptions {
  size_t num_rows = 1000;
  /// Observations span this many days starting 1996-06-01 (Table 1's dates).
  int32_t num_days = 30;
  uint64_t seed = 7;
};

/// Synthetic weather observations with schema (Time DATE, Latitude FLOAT64,
/// Longitude FLOAT64, Altitude INT64, Temp INT64, Pressure INT64) — the
/// paper's Table 1 relation (hour-of-day folded into the date for this
/// library's date-typed Time column). Stations are scattered inside the
/// `nation()` gazetteer's bounding boxes so the Section 2 histogram query
/// "GROUP BY Day(Time), Nation(Latitude, Longitude)" produces meaningful
/// groups.
Result<Table> GenerateWeather(const WeatherGenOptions& options);

}  // namespace datacube

#endif  // DATACUBE_WORKLOAD_WEATHER_H_
