#ifndef DATACUBE_SERVER_CUBE_SERVER_H_
#define DATACUBE_SERVER_CUBE_SERVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "datacube/common/exec_control.h"
#include "datacube/common/result.h"
#include "datacube/cube/partitioned_cube.h"
#include "datacube/cube/thread_pool.h"
#include "datacube/obs/http_server.h"
#include "datacube/server/admission.h"
#include "datacube/server/snapshot.h"
#include "datacube/table/table.h"

// The cube serving layer: mini-SQL over HTTP (or the bare line protocol)
// against atomically swapped catalog snapshots, with admission control,
// per-query deadlines, cooperative cancellation, and the stats endpoints
// mounted on the same listener. The transport split: HttpServer owns
// sockets and framing; CubeServer owns routing, sessions, and execution.
//
// Endpoints:
//
//   GET/POST /query       SQL via ?q= or the request body; ?deadline_ms=
//                         bounds execution. Result rows as text/csv.
//   POST     /register    ?name=<table>, CSV body → registers the table
//                         (replace with ?replace=1).
//   POST     /drop        ?name=<table>
//   GET      /tables      registered tables with row counts (JSON)
//   POST     /materialize ?name=<cube>&table=<t>&keys=a,b&aggs=sum(x)
//                         [&budget_bytes=N] → budgeted PartialCube
//   GET      /cube        ?name=<cube>[&set=a,b] → answers GROUP BY over
//                         the listed key subset from the partial cube
//   POST     /ingest      ?table=<t>, CSV body → appends rows to a
//                         partitioned store (headerless with ?header=0);
//                         visible to readers without a snapshot swap
//   POST     /retention   ?table=<t>&windows=N → set + apply the retention
//                         horizon (0 = unlimited)
//   POST     /compact     ?table=<t> → synchronous compaction pass
//   GET      /partitions  per-store partition lifecycle state (JSON)
//   GET      /queries     in-flight queries (JSON; id, sql, elapsed)
//   POST     /cancel      ?id=N → cooperative cancel of an in-flight query
//   GET      /healthz     liveness + snapshot version
//   GET      /metrics /varz /queryz /tracez   the stats-server endpoints
//
// Line protocol: a bare "<sql>\n" on a fresh connection executes the query
// and returns raw CSV (or "ERROR: ..."), so `nc` works as a client;
// "INGEST <table> <csv row>\n" appends one headerless row the same way.

namespace datacube::server {

class CubeServer {
 public:
  struct Options {
    /// Interface to bind; loopback by default — the server has no auth.
    std::string host = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (read it back via port()).
    int port = 0;
    /// Admission gate: queries beyond this execute-concurrency are shed
    /// with 503 (after `admission_wait_ms`, if set). <= 0 = unlimited.
    int max_concurrent_queries = 8;
    /// How long an over-capacity query may wait for a slot before 503.
    int admission_wait_ms = 0;
    /// Deadline applied when the client sends no ?deadline_ms=. 0 = none.
    int64_t default_deadline_ms = 0;
    /// Threads per cube execution (CubeOptions::num_threads); 1 = serial.
    int query_threads = 1;
    /// Stalled-connection window for the transport (408 past it).
    int head_timeout_ms = 2000;
    /// Accept bare one-line SQL over TCP in addition to HTTP.
    bool enable_line_protocol = true;
    /// Dispatch connection handling onto the shared cube ThreadPool
    /// instead of a thread per request.
    bool use_thread_pool = true;
  };

  /// Binds, listens, and serves. The returned server is live; it stops and
  /// joins cleanly on destruction.
  static Result<std::unique_ptr<CubeServer>> Start(const Options& options);

  ~CubeServer();
  CubeServer(const CubeServer&) = delete;
  CubeServer& operator=(const CubeServer&) = delete;

  /// Idempotent; drains in-flight requests (cancelling their controls) and
  /// stops the transport.
  void Stop();

  int port() const;
  std::string url() const;

  /// Programmatic registration (same copy-edit-publish path as /register).
  Status RegisterTable(const std::string& name, Table table,
                       bool replace = false);

  /// Mounts a partitioned store under `name`. The store itself is shared
  /// and internally synchronized, so /ingest mutates it without a snapshot
  /// republish; the binding (name → store) still goes through the
  /// copy-edit-publish cycle like any catalog change.
  Status RegisterPartitioned(const std::string& name,
                             std::shared_ptr<PartitionedCube> store,
                             bool replace = false);

  /// Current snapshot (for tests and embedding processes).
  std::shared_ptr<const ServerSnapshot> snapshot() const {
    return snapshots_.Get();
  }

  int queries_in_flight() const { return gate_.in_flight(); }

 private:
  explicit CubeServer(const Options& options);

  /// One in-flight query visible to /queries and /cancel.
  struct LiveQuery {
    uint64_t id = 0;
    std::string sql;
    std::chrono::steady_clock::time_point start;
    std::shared_ptr<ExecControl> control;
  };

  obs::HttpResponse Handle(const obs::HttpRequest& request);
  obs::HttpResponse HandleQuery(const obs::HttpRequest& request);
  obs::HttpResponse HandleRegister(const obs::HttpRequest& request);
  obs::HttpResponse HandleDrop(const obs::HttpRequest& request);
  obs::HttpResponse HandleTables() const;
  obs::HttpResponse HandleMaterialize(const obs::HttpRequest& request);
  obs::HttpResponse HandleCubeQuery(const obs::HttpRequest& request);
  obs::HttpResponse HandleQueries() const;
  obs::HttpResponse HandleCancel(const obs::HttpRequest& request);
  obs::HttpResponse HandleIngest(const obs::HttpRequest& request);
  obs::HttpResponse HandleRetention(const obs::HttpRequest& request);
  obs::HttpResponse HandleCompact(const obs::HttpRequest& request);
  obs::HttpResponse HandlePartitions() const;

  /// Runs one SQL text under admission/deadline/cancellation; the CSV (or
  /// error) response is protocol-independent.
  obs::HttpResponse RunSql(const std::string& sql, int64_t deadline_ms);

  uint64_t RegisterLive(const std::string& sql,
                        std::shared_ptr<ExecControl> control);
  void UnregisterLive(uint64_t id);

  const Options options_;
  SnapshotHolder snapshots_;
  mutable AdmissionGate gate_;

  mutable std::mutex live_mu_;
  std::vector<LiveQuery> live_;
  uint64_t next_query_id_ = 1;

  /// Fire-and-forget carrier for connection handling on the shared cube
  /// ThreadPool (Options::use_thread_pool). Outstanding tasks are drained
  /// by http_->Stop() (its in-flight counter) before this group's Wait.
  std::unique_ptr<cube_internal::TaskGroup> pool_group_;
  std::unique_ptr<obs::HttpServer> http_;
};

}  // namespace datacube::server

#endif  // DATACUBE_SERVER_CUBE_SERVER_H_
