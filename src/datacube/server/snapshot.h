#ifndef DATACUBE_SERVER_SNAPSHOT_H_
#define DATACUBE_SERVER_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/cube/partial_cube.h"
#include "datacube/sql/catalog.h"

// Immutable serving state for the cube server, swapped atomically so reads
// never block on writes: every query loads one shared_ptr snapshot and runs
// entirely against it, while registration/refresh copies the current
// snapshot (cheap — the catalog holds tables by shared_ptr), edits the copy,
// and publishes it with a single atomic store. In-flight queries keep their
// (old) snapshot's tables alive through the shared_ptr graph; there is never
// a moment where a reader sees half of an update.

namespace datacube::server {

/// One budgeted partial cube mounted in the snapshot. PartialCube::Query
/// mutates per-cube stats, so concurrent readers of the *same* cube
/// serialize on `mu`; the cube and its mutex are shared across snapshot
/// versions until the cube is replaced or dropped.
struct MaterializedCubeEntry {
  std::string name;
  std::string table;  // source table at build time
  /// Grouping-key column names, in bit order of the cube's GroupingSets.
  std::vector<std::string> keys;
  std::shared_ptr<PartialCube> cube;
  std::shared_ptr<std::mutex> mu;
  size_t budget_bytes = 0;
};

/// One immutable version of the serving state.
struct ServerSnapshot {
  sql::Catalog catalog;
  std::vector<MaterializedCubeEntry> cubes;
  /// Monotonic publish counter (1 = first published version).
  uint64_t version = 0;

  const MaterializedCubeEntry* FindCube(const std::string& name) const {
    for (const MaterializedCubeEntry& e : cubes) {
      if (e.name == name) return &e;
    }
    return nullptr;
  }
};

/// Holder of the authoritative snapshot. Readers call Get() (one atomic
/// shared_ptr load, wait-free with respect to writers); writers call
/// Update(), which serializes writers on a mutex but never makes a reader
/// wait.
class SnapshotHolder {
 public:
  SnapshotHolder()
      : current_(std::make_shared<const ServerSnapshot>()) {}

  std::shared_ptr<const ServerSnapshot> Get() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Reader entry point: pins the current snapshot for the duration of one
  /// request. Identical to Get() — the alias exists so every handler reads
  /// as "pin once, use the pin everywhere" instead of repeating the
  /// load-and-hold pattern inline (and so a future Pin() can add
  /// per-request accounting without touching call sites). Handlers must
  /// pin exactly once and route every lookup through that pin; loading
  /// twice in one request can straddle a concurrent publish and observe
  /// two different catalogs.
  std::shared_ptr<const ServerSnapshot> Pin() const { return Get(); }

  /// Copy-edit-publish. `edit` sees a private copy of the current snapshot;
  /// on OK the copy (with a bumped version) becomes current. On error
  /// nothing is published.
  Status Update(const std::function<Status(ServerSnapshot&)>& edit) {
    std::lock_guard<std::mutex> lock(writer_mu_);
    auto next = std::make_shared<ServerSnapshot>(
        *current_.load(std::memory_order_acquire));
    DATACUBE_RETURN_IF_ERROR(edit(*next));
    next->version += 1;
    current_.store(std::shared_ptr<const ServerSnapshot>(std::move(next)),
                   std::memory_order_release);
    return Status::OK();
  }

 private:
  std::atomic<std::shared_ptr<const ServerSnapshot>> current_;
  std::mutex writer_mu_;  // serializes Update() copy-edit-publish cycles
};

}  // namespace datacube::server

#endif  // DATACUBE_SERVER_SNAPSHOT_H_
