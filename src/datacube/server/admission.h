#ifndef DATACUBE_SERVER_ADMISSION_H_
#define DATACUBE_SERVER_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>

#include "datacube/common/result.h"
#include "datacube/common/status.h"

namespace datacube::server {

/// Bounds concurrently executing queries. Admit() hands out an RAII ticket
/// when a slot is free, optionally waiting up to `max_wait_ms` for one, and
/// fails kUnavailable when the server is saturated — load shedding at the
/// front door instead of queueing unboundedly behind the thread pool.
class AdmissionGate {
 public:
  /// `max_concurrent` <= 0 means unlimited.
  explicit AdmissionGate(int max_concurrent, int max_wait_ms = 0)
      : max_concurrent_(max_concurrent), max_wait_ms_(max_wait_ms) {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  class Ticket {
   public:
    Ticket() = default;
    explicit Ticket(AdmissionGate* gate) : gate_(gate) {}
    Ticket(Ticket&& other) noexcept : gate_(other.gate_) {
      other.gate_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        gate_ = other.gate_;
        other.gate_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    void Release() {
      if (gate_ != nullptr) {
        gate_->ReleaseSlot();
        gate_ = nullptr;
      }
    }

   private:
    AdmissionGate* gate_ = nullptr;
  };

  Result<Ticket> Admit() {
    if (max_concurrent_ <= 0) {
      std::lock_guard<std::mutex> lock(mu_);
      ++in_flight_;
      return Ticket(this);
    }
    std::unique_lock<std::mutex> lock(mu_);
    auto free_slot = [this] { return in_flight_ < max_concurrent_; };
    if (!free_slot() && max_wait_ms_ > 0) {
      cv_.wait_for(lock, std::chrono::milliseconds(max_wait_ms_), free_slot);
    }
    if (!free_slot()) {
      return Status::Unavailable("server over capacity (" +
                                 std::to_string(max_concurrent_) +
                                 " queries in flight)");
    }
    ++in_flight_;
    return Ticket(this);
  }

  int in_flight() const {
    std::lock_guard<std::mutex> lock(mu_);
    return in_flight_;
  }

 private:
  void ReleaseSlot() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    cv_.notify_one();
  }

  const int max_concurrent_;
  const int max_wait_ms_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int in_flight_ = 0;
};

}  // namespace datacube::server

#endif  // DATACUBE_SERVER_ADMISSION_H_
