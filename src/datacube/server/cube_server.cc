#include "datacube/server/cube_server.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "datacube/common/str_util.h"
#include "datacube/cube/thread_pool.h"
#include "datacube/expr/expr.h"
#include "datacube/obs/json_util.h"
#include "datacube/obs/metrics.h"
#include "datacube/obs/stats_server.h"
#include "datacube/sql/engine.h"
#include "datacube/table/csv.h"

namespace datacube::server {

namespace {

using obs::HttpRequest;
using obs::HttpResponse;

/// Maps an execution Status to the HTTP code the client sees.
int HttpStatusFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return 200;
    case StatusCode::kCancelled:
      return 499;  // client closed / cancelled the request
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kUnavailable:
      return 503;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
      return 409;
    case StatusCode::kParseError:
    case StatusCode::kInvalidArgument:
    case StatusCode::kTypeError:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotImplemented:
      return 501;
    default:
      return 500;
  }
}

HttpResponse ErrorResponse(const Status& status) {
  HttpResponse resp;
  resp.status = HttpStatusFor(status);
  resp.content_type = "text/plain; charset=utf-8";
  resp.body = std::string(StatusCodeName(status.code())) + ": " +
              status.message() + "\n";
  return resp;
}

HttpResponse TextResponse(int status, std::string body) {
  HttpResponse resp;
  resp.status = status;
  resp.content_type = "text/plain; charset=utf-8";
  resp.body = std::move(body);
  return resp;
}

HttpResponse JsonResponse(std::string body) {
  HttpResponse resp;
  resp.content_type = "application/json";
  resp.body = std::move(body);
  return resp;
}

HttpResponse CsvResponse(const Table& table) {
  HttpResponse resp;
  resp.content_type = "text/csv; charset=utf-8";
  resp.body = WriteCsvString(table);
  return resp;
}

void CountQuery(int http_status) {
  obs::MetricsRegistry::Global()
      .GetCounter("datacube_server_queries_total",
                  "SQL queries served by cubed, by HTTP status",
                  {{"code", std::to_string(http_status)}})
      .Inc();
}

bool MethodIs(const HttpRequest& r, const char* a, const char* b = nullptr) {
  return r.method == a || (b != nullptr && r.method == b);
}

/// GET with HEAD served identically (the transport strips HEAD bodies).
bool IsRead(const HttpRequest& r) { return MethodIs(r, "GET", "HEAD"); }

std::vector<std::string> SplitCsvList(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t end = s.find(',', pos);
    if (end == std::string::npos) end = s.size();
    std::string item = s.substr(pos, end - pos);
    // trim spaces
    while (!item.empty() && item.front() == ' ') item.erase(item.begin());
    while (!item.empty() && item.back() == ' ') item.pop_back();
    if (!item.empty()) out.push_back(std::move(item));
    pos = end + 1;
  }
  return out;
}

/// Parses "fn(col)", "fn(*)", or "fn" into an AggregateSpec. count(*) and
/// bare count map to count_star.
Result<AggregateSpec> ParseAggSpec(const std::string& text) {
  AggregateSpec spec;
  size_t open = text.find('(');
  std::string fn = open == std::string::npos ? text : text.substr(0, open);
  std::string arg;
  if (open != std::string::npos) {
    size_t close = text.rfind(')');
    if (close == std::string::npos || close < open) {
      return Status::InvalidArgument("bad aggregate: " + text);
    }
    arg = text.substr(open + 1, close - open - 1);
    while (!arg.empty() && arg.front() == ' ') arg.erase(arg.begin());
    while (!arg.empty() && arg.back() == ' ') arg.pop_back();
  }
  if (fn.empty()) return Status::InvalidArgument("bad aggregate: " + text);
  if (EqualsIgnoreCase(fn, "count") && (arg.empty() || arg == "*")) {
    spec.function = "count_star";
  } else {
    spec.function = fn;
    if (arg.empty() || arg == "*") {
      return Status::InvalidArgument("aggregate needs a column: " + text);
    }
    spec.args.push_back(Expr::Column(arg));
  }
  spec.output_name = text;
  return spec;
}

int64_t ParseInt64(const std::string& s, int64_t fallback) {
  if (s.empty()) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  return (end == nullptr || *end != '\0') ? fallback : v;
}

/// Parses ingest CSV against the target table's schema: cells come in as
/// text and are cast per declared column type, so "5" lands as INT64 or
/// FLOAT64 according to the schema instead of whatever inference guesses.
/// Columns are positional and must match the base schema's count.
Result<Table> ParseIngestRows(const Schema& schema, const std::string& text,
                              bool has_header) {
  CsvReadOptions csv;
  csv.has_header = has_header;
  csv.infer_types = false;  // schema-directed casts below
  Result<Table> raw = ReadCsvString(text, csv);
  if (!raw.ok()) return raw.status();
  if (raw.value().num_columns() != schema.num_fields()) {
    return Status::InvalidArgument(
        "ingest rows have " + std::to_string(raw.value().num_columns()) +
        " columns; table has " + std::to_string(schema.num_fields()));
  }
  Table out{schema};
  std::vector<Value> row(schema.num_fields());
  for (size_t r = 0; r < raw.value().num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      Result<Value> cast =
          raw.value().GetValue(r, c).CastTo(schema.field(c).type);
      if (!cast.ok()) return cast.status();
      row[c] = std::move(cast).value();
    }
    DATACUBE_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<CubeServer>> CubeServer::Start(const Options& options) {
  std::unique_ptr<CubeServer> server(new CubeServer(options));

  obs::HttpServer::Options http_options;
  http_options.host = options.host;
  http_options.port = options.port;
  http_options.head_timeout_ms = options.head_timeout_ms;
  http_options.enable_line_protocol = options.enable_line_protocol;
  if (options.use_thread_pool) {
    // Connection handling shares the cube execution pool: the event loop
    // fire-and-forgets each complete request into a long-lived TaskGroup
    // (Spawn is thread-safe and never blocks the loop). Handlers that run
    // parallel cubes nest their own TaskGroup::Wait, which is help-first,
    // so this stays deadlock-free even on a 1-worker pool. Detached-thread
    // fallback stays available via Options::use_thread_pool = false.
    server->pool_group_ = std::make_unique<cube_internal::TaskGroup>(
        cube_internal::ThreadPool::Global());
    cube_internal::TaskGroup* group = server->pool_group_.get();
    http_options.dispatcher = [group](std::function<void()> work) {
      group->Spawn(std::move(work));
    };
  }

  CubeServer* raw = server.get();
  DATACUBE_ASSIGN_OR_RETURN(
      server->http_,
      obs::HttpServer::Start(http_options, [raw](const HttpRequest& request) {
        return raw->Handle(request);
      }));
  return server;
}

CubeServer::CubeServer(const Options& options)
    : options_(options),
      gate_(options.max_concurrent_queries, options.admission_wait_ms) {}

CubeServer::~CubeServer() { Stop(); }

void CubeServer::Stop() {
  if (http_ == nullptr) return;
  // Cancel whatever is still executing so the transport's drain is bounded
  // by a few morsel boundaries, not by the slowest in-flight cube.
  {
    std::lock_guard<std::mutex> lock(live_mu_);
    for (LiveQuery& q : live_) q.control->Cancel();
  }
  // Transport first (its in-flight wait covers every dispatched handler),
  // then the pool group's own drain, then members may die.
  http_->Stop();
  if (pool_group_ != nullptr) pool_group_->Wait();
}

int CubeServer::port() const { return http_ == nullptr ? 0 : http_->port(); }

std::string CubeServer::url() const {
  return http_ == nullptr ? "" : http_->url();
}

Status CubeServer::RegisterTable(const std::string& name, Table table,
                                 bool replace) {
  auto shared = std::make_shared<const Table>(std::move(table));
  return snapshots_.Update([&](ServerSnapshot& snap) {
    if (replace) {
      snap.catalog.PutShared(name, shared);
      return Status::OK();
    }
    return snap.catalog.RegisterShared(name, shared);
  });
}

Status CubeServer::RegisterPartitioned(const std::string& name,
                                       std::shared_ptr<PartitionedCube> store,
                                       bool replace) {
  if (store == nullptr) {
    return Status::InvalidArgument("null partitioned store: " + name);
  }
  return snapshots_.Update([&](ServerSnapshot& snap) {
    if (!replace && snap.catalog.GetPartitioned(name) != nullptr) {
      return Status::AlreadyExists("partitioned store already registered: " +
                                   name);
    }
    snap.catalog.PutPartitioned(name, store);
    return Status::OK();
  });
}

uint64_t CubeServer::RegisterLive(const std::string& sql,
                                  std::shared_ptr<ExecControl> control) {
  std::lock_guard<std::mutex> lock(live_mu_);
  LiveQuery q;
  q.id = next_query_id_++;
  q.sql = sql;
  q.start = std::chrono::steady_clock::now();
  q.control = std::move(control);
  live_.push_back(std::move(q));
  return live_.back().id;
}

void CubeServer::UnregisterLive(uint64_t id) {
  std::lock_guard<std::mutex> lock(live_mu_);
  live_.erase(std::remove_if(live_.begin(), live_.end(),
                             [id](const LiveQuery& q) { return q.id == id; }),
              live_.end());
}

obs::HttpResponse CubeServer::RunSql(const std::string& sql,
                                     int64_t deadline_ms) {
  if (sql.empty()) {
    CountQuery(400);
    return TextResponse(400, "empty query (pass ?q= or a request body)\n");
  }

  Result<AdmissionGate::Ticket> ticket = gate_.Admit();
  if (!ticket.ok()) {
    CountQuery(503);
    return ErrorResponse(ticket.status());
  }

  auto control = std::make_shared<ExecControl>();
  if (deadline_ms > 0) control->set_deadline_after_ms(deadline_ms);
  uint64_t id = RegisterLive(sql, control);

  // The snapshot pin: this query sees exactly one catalog version, and its
  // shared_ptr keeps that version's tables alive across any concurrent swap.
  std::shared_ptr<const ServerSnapshot> snap = snapshots_.Pin();

  sql::EngineOptions engine_options;
  engine_options.cube.control = control.get();
  engine_options.cube.num_threads = options_.query_threads;
  Result<Table> result = sql::ExecuteSql(sql, snap->catalog, engine_options);

  UnregisterLive(id);
  if (!result.ok()) {
    CountQuery(HttpStatusFor(result.status()));
    return ErrorResponse(result.status());
  }
  CountQuery(200);
  return CsvResponse(result.value());
}

obs::HttpResponse CubeServer::HandleQuery(const HttpRequest& request) {
  std::string sql = request.QueryParam("q");
  if (sql.empty()) sql = request.body;
  int64_t deadline_ms = ParseInt64(request.QueryParam("deadline_ms"),
                                   options_.default_deadline_ms);
  return RunSql(sql, deadline_ms);
}

obs::HttpResponse CubeServer::HandleRegister(const HttpRequest& request) {
  std::string name = request.QueryParam("name");
  if (name.empty()) return TextResponse(400, "missing ?name=\n");
  if (request.body.empty()) return TextResponse(400, "missing CSV body\n");
  Result<Table> table = ReadCsvString(request.body);
  if (!table.ok()) return ErrorResponse(table.status());
  bool replace = request.QueryParam("replace") == "1";
  size_t rows = table.value().num_rows();
  Status st = RegisterTable(name, std::move(table).value(), replace);
  if (!st.ok()) return ErrorResponse(st);
  return TextResponse(
      200, "registered " + name + " (" + std::to_string(rows) + " rows)\n");
}

obs::HttpResponse CubeServer::HandleDrop(const HttpRequest& request) {
  std::string name = request.QueryParam("name");
  if (name.empty()) return TextResponse(400, "missing ?name=\n");
  bool dropped = false;
  Status st = snapshots_.Update([&](ServerSnapshot& snap) {
    dropped = snap.catalog.Drop(name);
    // Partitioned stores share the table namespace; in-flight ingests keep
    // the store alive through their own shared_ptr pins.
    dropped = snap.catalog.DropPartitioned(name) || dropped;
    // Cubes built from the table go with it.
    snap.cubes.erase(std::remove_if(snap.cubes.begin(), snap.cubes.end(),
                                    [&](const MaterializedCubeEntry& e) {
                                      return EqualsIgnoreCase(e.table, name);
                                    }),
                     snap.cubes.end());
    return Status::OK();
  });
  if (!st.ok()) return ErrorResponse(st);
  if (!dropped) return TextResponse(404, "no table named " + name + "\n");
  return TextResponse(200, "dropped " + name + "\n");
}

obs::HttpResponse CubeServer::HandleTables() const {
  std::shared_ptr<const ServerSnapshot> snap = snapshots_.Pin();
  std::string json = "{\"version\":" + std::to_string(snap->version) +
                     ",\"tables\":[";
  bool first = true;
  for (const std::string& name : snap->catalog.Names()) {
    Result<const Table*> table = snap->catalog.Get(name);
    if (!table.ok()) continue;
    if (!first) json += ",";
    first = false;
    json += "{\"name\":\"" + obs::JsonEscape(name) +
            "\",\"rows\":" + std::to_string(table.value()->num_rows()) + "}";
  }
  json += "],\"partitioned\":[";
  first = true;
  for (const std::string& name : snap->catalog.PartitionedNames()) {
    std::shared_ptr<PartitionedCube> store = snap->catalog.GetPartitioned(name);
    if (store == nullptr) continue;
    if (!first) json += ",";
    first = false;
    json += "{\"name\":\"" + obs::JsonEscape(name) +
            "\",\"rows\":" + std::to_string(store->num_base_rows()) +
            ",\"partitions\":" + std::to_string(store->num_partitions()) +
            ",\"window_width\":" +
            std::to_string(store->options().window_width) +
            ",\"retention_windows\":" + std::to_string(store->retention()) +
            "}";
  }
  json += "],\"cubes\":[";
  first = true;
  for (const MaterializedCubeEntry& e : snap->cubes) {
    if (!first) json += ",";
    first = false;
    json += "{\"name\":\"" + obs::JsonEscape(e.name) + "\",\"table\":\"" +
            obs::JsonEscape(e.table) +
            "\",\"views\":" + std::to_string(e.cube->views().size()) +
            ",\"cells\":" + std::to_string(e.cube->materialized_cells()) +
            ",\"budget_bytes\":" + std::to_string(e.budget_bytes) + "}";
  }
  json += "]}";
  return JsonResponse(std::move(json));
}

obs::HttpResponse CubeServer::HandleMaterialize(const HttpRequest& request) {
  std::string name = request.QueryParam("name");
  std::string table_name = request.QueryParam("table");
  std::vector<std::string> keys = SplitCsvList(request.QueryParam("keys"));
  std::vector<std::string> aggs = SplitCsvList(request.QueryParam("aggs"));
  if (name.empty() || table_name.empty() || keys.empty() || aggs.empty()) {
    return TextResponse(400,
                        "need ?name=, ?table=, ?keys=a,b and ?aggs=sum(x)\n");
  }
  size_t budget_bytes = static_cast<size_t>(
      std::max<int64_t>(0, ParseInt64(request.QueryParam("budget_bytes"), 0)));

  std::shared_ptr<const ServerSnapshot> snap = snapshots_.Pin();
  Result<std::shared_ptr<const Table>> table =
      snap->catalog.GetShared(table_name);
  if (!table.ok()) return ErrorResponse(table.status());

  CubeSpec spec;
  for (const std::string& k : keys) {
    spec.cube.push_back(GroupExpr{Expr::Column(k), k});
  }
  for (const std::string& a : aggs) {
    Result<AggregateSpec> agg = ParseAggSpec(a);
    if (!agg.ok()) return ErrorResponse(agg.status());
    spec.aggregates.push_back(std::move(agg).value());
  }

  // Re-materialization feedback: when a same-name cube over the same table
  // is being replaced, its observed per-view cell counts supersede the
  // cost model's cardinality-product estimates.
  PartialCube::ObservedCellCounts observed;
  const PartialCube::ObservedCellCounts* observed_ptr = nullptr;
  const MaterializedCubeEntry* prior = snap->FindCube(name);
  if (prior != nullptr && budget_bytes > 0 &&
      EqualsIgnoreCase(prior->table, table_name)) {
    std::lock_guard<std::mutex> lock(*prior->mu);
    observed = prior->cube->ObservedCells();
    observed_ptr = &observed;
  }

  Result<std::unique_ptr<PartialCube>> cube =
      budget_bytes > 0
          ? PartialCube::BuildWithBudget(*table.value(), spec, budget_bytes,
                                         observed_ptr)
          : PartialCube::Build(*table.value(), spec, /*views=*/{});
  if (!cube.ok()) return ErrorResponse(cube.status());

  MaterializedCubeEntry entry;
  entry.name = name;
  entry.table = table_name;
  entry.keys = keys;
  entry.cube = std::shared_ptr<PartialCube>(std::move(cube).value());
  entry.mu = std::make_shared<std::mutex>();
  entry.budget_bytes = budget_bytes;
  size_t views = entry.cube->views().size();
  size_t cells = entry.cube->materialized_cells();

  Status st = snapshots_.Update([&](ServerSnapshot& s) {
    // The build above ran against a pinned (possibly stale) snapshot.
    // Re-check the source table in the snapshot being published: if a
    // concurrent /drop removed it, mounting the cube would leave an entry
    // no table-drop can ever clean up. 409 and let the client retry.
    if (!s.catalog.GetShared(table_name).ok()) {
      return Status::AlreadyExists("source table " + table_name +
                                   " was dropped while materializing " +
                                   name + "; not mounted");
    }
    s.cubes.erase(std::remove_if(s.cubes.begin(), s.cubes.end(),
                                 [&](const MaterializedCubeEntry& e) {
                                   return e.name == name;
                                 }),
                  s.cubes.end());
    s.cubes.push_back(entry);
    return Status::OK();
  });
  if (!st.ok()) return ErrorResponse(st);
  return TextResponse(200, "materialized " + name + " (" +
                               std::to_string(views) + " views, " +
                               std::to_string(cells) + " cells)\n");
}

obs::HttpResponse CubeServer::HandleCubeQuery(const HttpRequest& request) {
  std::string name = request.QueryParam("name");
  if (name.empty()) return TextResponse(400, "missing ?name=\n");
  std::shared_ptr<const ServerSnapshot> snap = snapshots_.Pin();
  const MaterializedCubeEntry* entry = snap->FindCube(name);
  if (entry == nullptr) {
    return TextResponse(404, "no cube named " + name + "\n");
  }
  GroupingSet target = 0;
  for (const std::string& k : SplitCsvList(request.QueryParam("set"))) {
    auto it = std::find_if(
        entry->keys.begin(), entry->keys.end(),
        [&](const std::string& key) { return EqualsIgnoreCase(key, k); });
    if (it == entry->keys.end()) {
      return TextResponse(400, "cube " + name + " has no key " + k + "\n");
    }
    target |= GroupingSet{1}
              << static_cast<size_t>(it - entry->keys.begin());
  }
  // PartialCube::Query mutates its per-query stats; readers of one cube
  // serialize here while the snapshot itself stays lock-free.
  std::lock_guard<std::mutex> lock(*entry->mu);
  Result<Table> result = entry->cube->Query(target);
  if (!result.ok()) return ErrorResponse(result.status());
  return CsvResponse(result.value());
}

obs::HttpResponse CubeServer::HandleQueries() const {
  std::string json = "[";
  std::lock_guard<std::mutex> lock(live_mu_);
  auto now = std::chrono::steady_clock::now();
  bool first = true;
  for (const LiveQuery& q : live_) {
    if (!first) json += ",";
    first = false;
    double elapsed_ms =
        std::chrono::duration<double, std::milli>(now - q.start).count();
    json += "{\"id\":" + std::to_string(q.id) + ",\"sql\":\"" +
            obs::JsonEscape(q.sql) +
            "\",\"elapsed_ms\":" + std::to_string(elapsed_ms) +
            ",\"cancel_requested\":" +
            (q.control->cancel_requested() ? "true" : "false") + "}";
  }
  json += "]";
  return JsonResponse(std::move(json));
}

obs::HttpResponse CubeServer::HandleCancel(const HttpRequest& request) {
  uint64_t id =
      static_cast<uint64_t>(ParseInt64(request.QueryParam("id"), 0));
  if (id == 0) return TextResponse(400, "missing ?id=\n");
  std::lock_guard<std::mutex> lock(live_mu_);
  for (LiveQuery& q : live_) {
    if (q.id == id) {
      q.control->Cancel();
      return TextResponse(200, "cancel requested for query " +
                                   std::to_string(id) + "\n");
    }
  }
  return TextResponse(404, "no in-flight query " + std::to_string(id) + "\n");
}

obs::HttpResponse CubeServer::HandleIngest(const HttpRequest& request) {
  std::string table = request.QueryParam("table");
  if (table.empty()) return TextResponse(400, "missing ?table=\n");
  if (request.body.empty()) return TextResponse(400, "missing CSV body\n");
  std::shared_ptr<const ServerSnapshot> snap = snapshots_.Pin();
  std::shared_ptr<PartitionedCube> store = snap->catalog.GetPartitioned(table);
  if (store == nullptr) {
    return TextResponse(404, "no partitioned table named " + table + "\n");
  }
  // The store is shared and internally synchronized: rows become visible
  // to concurrent queries without a snapshot republish.
  bool has_header = request.QueryParam("header") != "0";
  Result<Table> rows =
      ParseIngestRows(store->base_schema(), request.body, has_header);
  if (!rows.ok()) return ErrorResponse(rows.status());
  size_t n = rows.value().num_rows();
  Status st = store->IngestRows(rows.value());
  if (!st.ok()) return ErrorResponse(st);
  return TextResponse(200, "ingested " + std::to_string(n) + " rows into " +
                               table + "\n");
}

obs::HttpResponse CubeServer::HandleRetention(const HttpRequest& request) {
  std::string table = request.QueryParam("table");
  if (table.empty()) return TextResponse(400, "missing ?table=\n");
  int64_t windows = ParseInt64(request.QueryParam("windows"), -1);
  if (windows < 0) {
    return TextResponse(400, "missing or bad ?windows=N (0 = unlimited)\n");
  }
  std::shared_ptr<const ServerSnapshot> snap = snapshots_.Pin();
  std::shared_ptr<PartitionedCube> store = snap->catalog.GetPartitioned(table);
  if (store == nullptr) {
    return TextResponse(404, "no partitioned table named " + table + "\n");
  }
  store->SetRetention(windows);
  size_t dropped = store->ApplyRetention();
  return TextResponse(200, "retention for " + table + " set to " +
                               std::to_string(windows) +
                               " windows; dropped " +
                               std::to_string(dropped) + "\n");
}

obs::HttpResponse CubeServer::HandleCompact(const HttpRequest& request) {
  std::string table = request.QueryParam("table");
  if (table.empty()) return TextResponse(400, "missing ?table=\n");
  std::shared_ptr<const ServerSnapshot> snap = snapshots_.Pin();
  std::shared_ptr<PartitionedCube> store = snap->catalog.GetPartitioned(table);
  if (store == nullptr) {
    return TextResponse(404, "no partitioned table named " + table + "\n");
  }
  size_t rebuilt = store->CompactNow();
  return TextResponse(200, "compacted " + table + ": " +
                               std::to_string(rebuilt) +
                               " windows rebuilt\n");
}

obs::HttpResponse CubeServer::HandlePartitions() const {
  std::shared_ptr<const ServerSnapshot> snap = snapshots_.Pin();
  std::string json = "{\"stores\":[";
  bool first_store = true;
  for (const std::string& name : snap->catalog.PartitionedNames()) {
    std::shared_ptr<PartitionedCube> store = snap->catalog.GetPartitioned(name);
    if (store == nullptr) continue;
    if (!first_store) json += ",";
    first_store = false;
    json += "{\"name\":\"" + obs::JsonEscape(name) +
            "\",\"partition_column\":\"" +
            obs::JsonEscape(store->options().partition_column) +
            "\",\"window_width\":" +
            std::to_string(store->options().window_width) +
            ",\"retention_windows\":" + std::to_string(store->retention()) +
            ",\"rows\":" + std::to_string(store->num_base_rows()) +
            ",\"partitions\":[";
    bool first_part = true;
    for (const PartitionedCube::PartitionInfo& p : store->Partitions()) {
      if (!first_part) json += ",";
      first_part = false;
      json += "{\"window\":" +
              (p.null_window ? std::string("null")
                             : std::to_string(p.window_id)) +
              ",\"state\":\"" + p.state +
              "\",\"deltas\":" + std::to_string(p.deltas) +
              ",\"rows\":" + std::to_string(p.rows) + "}";
    }
    json += "]}";
  }
  json += "]}";
  return JsonResponse(std::move(json));
}

obs::HttpResponse CubeServer::Handle(const HttpRequest& request) {
  const std::string& path = request.path;
  if (request.method == "LINE") {
    // "INGEST <table> v1,v2,..." appends headerless CSV rows; anything
    // else is bare one-line SQL. Raw CSV back, or a one-line error.
    const std::string& line = request.path;
    if (line.size() > 7 && EqualsIgnoreCase(line.substr(0, 7), "INGEST ")) {
      size_t name_start = line.find_first_not_of(' ', 7);
      size_t name_end = line.find(' ', name_start);
      if (name_start == std::string::npos || name_end == std::string::npos) {
        return TextResponse(400, "ERROR: usage: INGEST <table> <csv row>\n");
      }
      HttpRequest ingest;
      ingest.method = "POST";
      ingest.path = "/ingest";
      ingest.query = "table=" + line.substr(name_start, name_end - name_start) +
                     "&header=0";
      ingest.body = line.substr(name_end + 1);
      HttpResponse resp = HandleIngest(ingest);
      if (resp.status != 200) resp.body = "ERROR: " + resp.body;
      return resp;
    }
    HttpResponse resp = RunSql(line, options_.default_deadline_ms);
    if (resp.status != 200) {
      resp.body = "ERROR: " + resp.body;
    }
    return resp;
  }

  if (path == "/query") {
    if (!MethodIs(request, "GET", "POST") && request.method != "HEAD") {
      return TextResponse(405, "use GET or POST\n");
    }
    return HandleQuery(request);
  }
  if (path == "/register") {
    if (!MethodIs(request, "POST")) return TextResponse(405, "use POST\n");
    return HandleRegister(request);
  }
  if (path == "/drop") {
    if (!MethodIs(request, "POST")) return TextResponse(405, "use POST\n");
    return HandleDrop(request);
  }
  if (path == "/materialize") {
    if (!MethodIs(request, "POST")) return TextResponse(405, "use POST\n");
    return HandleMaterialize(request);
  }
  if (path == "/cancel") {
    if (!MethodIs(request, "POST")) return TextResponse(405, "use POST\n");
    return HandleCancel(request);
  }
  if (path == "/ingest") {
    if (!MethodIs(request, "POST")) return TextResponse(405, "use POST\n");
    return HandleIngest(request);
  }
  if (path == "/retention") {
    if (!MethodIs(request, "POST")) return TextResponse(405, "use POST\n");
    return HandleRetention(request);
  }
  if (path == "/compact") {
    if (!MethodIs(request, "POST")) return TextResponse(405, "use POST\n");
    return HandleCompact(request);
  }
  if (path == "/partitions") {
    if (!IsRead(request)) return TextResponse(405, "use GET\n");
    return HandlePartitions();
  }
  if (path == "/tables") {
    if (!IsRead(request)) return TextResponse(405, "use GET\n");
    return HandleTables();
  }
  if (path == "/cube") {
    if (!IsRead(request)) return TextResponse(405, "use GET\n");
    return HandleCubeQuery(request);
  }
  if (path == "/queries") {
    if (!IsRead(request)) return TextResponse(405, "use GET\n");
    return HandleQueries();
  }
  if (path == "/healthz") {
    if (!IsRead(request)) return TextResponse(405, "use GET\n");
    std::shared_ptr<const ServerSnapshot> snap = snapshots_.Pin();
    return JsonResponse("{\"ok\":true,\"version\":" +
                        std::to_string(snap->version) + ",\"in_flight\":" +
                        std::to_string(gate_.in_flight()) + "}");
  }
  if (path == "/metrics" || path == "/varz" || path == "/queryz" ||
      path == "/tracez") {
    // The stats endpoints, mounted on this listener (one port for queries
    // and observability).
    return obs::StatsServer::HandleHttp(request);
  }
  if (path == "/") {
    if (!IsRead(request)) return TextResponse(405, "use GET\n");
    return TextResponse(
        200,
        "cubed — data cube server\n"
        "  /query?q=<sql>[&deadline_ms=N]   run mini-SQL (GET or POST body)\n"
        "  /register?name=<t> (POST CSV)    register a table\n"
        "  /drop?name=<t> (POST)            drop a table\n"
        "  /tables                          list tables and cubes\n"
        "  /materialize?name=&table=&keys=&aggs=[&budget_bytes=] (POST)\n"
        "  /cube?name=<c>[&set=a,b]         query a materialized cube\n"
        "  /ingest?table=<t> (POST CSV)     append rows to a partitioned "
        "table\n"
        "  /retention?table=<t>&windows=N (POST)  set + apply retention\n"
        "  /compact?table=<t> (POST)        force a compaction pass\n"
        "  /partitions                      partitioned-store state (JSON)\n"
        "  /queries                         in-flight queries\n"
        "  /cancel?id=N (POST)              cancel an in-flight query\n"
        "  /healthz                         liveness\n"
        "  /metrics /varz /queryz /tracez   observability\n"
        "or send one line of SQL over a raw TCP connection\n"
        "(\"INGEST <table> <csv row>\" appends over the same socket).\n");
  }
  return TextResponse(404, "not found\n");
}

}  // namespace datacube::server
