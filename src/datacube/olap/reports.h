#ifndef DATACUBE_OLAP_REPORTS_H_
#define DATACUBE_OLAP_REPORTS_H_

#include <string>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/table/table.h"

namespace datacube {

/// Renders a ROLLUP result as the Table 3.a drill-down report: dimension
/// values blank when repeated, and one sub-total column per aggregation
/// level, each total printed on its own sub-total row:
///
///   Model  Year  Color  Sales by Model by Year by Color  Sales by Model
///                                                        by Year  ...
///   Chevy  1994  black  50
///                white  40
///                                                        90
///          1995  black  85
///   ...
///
/// `rollup` must be a rollup-shaped cube result whose first `num_dims`
/// columns are the dimensions (finest-to-coarsest order) and whose
/// `value_column` holds the aggregate. This representation "is not
/// relational" (the blank cells cannot form a key) — it is a report, which
/// is exactly the paper's point.
Result<std::string> FormatRollupReport(const Table& rollup, size_t num_dims,
                                       size_t value_column);

/// Renders the same data as Table 3.b, Chris Date's recommended relational
/// alternative: detail rows only, with one additional column per
/// super-aggregate level repeated on every row:
///
///   Model  Year  Color  Sales  Sales by Model by Year  Sales by Model
///   Chevy  1994  black     50                      90             290
///   ...
///
/// The paper rejects this design because the column count "grows as the
/// power set of the number of aggregated attributes"; it is provided for the
/// Table 3.b reproduction and as a comparison point.
Result<std::string> FormatDateReport(const Table& rollup, size_t num_dims,
                                     size_t value_column);

}  // namespace datacube

#endif  // DATACUBE_OLAP_REPORTS_H_
