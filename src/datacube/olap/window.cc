#include "datacube/olap/window.h"

#include <algorithm>
#include <deque>
#include <functional>

#include "datacube/obs/trace.h"

namespace datacube {

namespace {

// Sorted row order plus the partition boundaries implied by partition_by.
struct Partitions {
  Table sorted;
  // Half-open [begin, end) row ranges.
  std::vector<std::pair<size_t, size_t>> ranges;
};

Result<Partitions> Partition(const Table& table, size_t value_column,
                             const WindowOptions& options) {
  if (value_column >= table.num_columns()) {
    return Status::OutOfRange("window value column out of range");
  }
  for (size_t p : options.partition_by) {
    if (p >= table.num_columns()) {
      return Status::OutOfRange("partition column out of range");
    }
  }
  // Sort by partition columns first (so partitions are contiguous), then by
  // the requested order.
  std::vector<SortKey> keys;
  for (size_t p : options.partition_by) keys.push_back(SortKey{p, true});
  keys.insert(keys.end(), options.order_by.begin(), options.order_by.end());
  DATACUBE_ASSIGN_OR_RETURN(Table sorted, SortTable(table, keys));

  Partitions out{std::move(sorted), {}};
  size_t n = out.sorted.num_rows();
  size_t begin = 0;
  for (size_t r = 1; r <= n; ++r) {
    bool boundary = r == n;
    if (!boundary) {
      for (size_t p : options.partition_by) {
        if (!(out.sorted.GetValue(r, p) == out.sorted.GetValue(r - 1, p))) {
          boundary = true;
          break;
        }
      }
    }
    if (boundary) {
      out.ranges.emplace_back(begin, r);
      begin = r;
    }
  }
  if (n == 0) out.ranges.clear();
  return out;
}

// Appends a column computed per partition. `compute` fills `out[i]` for each
// row index i in [begin, end) of the sorted table.
Result<Table> WithComputedColumn(
    const Table& table, size_t value_column, const std::string& output_name,
    DataType output_type, const WindowOptions& options,
    const std::function<void(const Table&, size_t, size_t,
                             std::vector<Value>*)>& compute) {
  obs::ScopedSpan span("window_function");
  DATACUBE_ASSIGN_OR_RETURN(Partitions parts,
                            Partition(table, value_column, options));
  if (span.active()) {
    span.Attr("output", output_name);
    span.Attr("rows", static_cast<uint64_t>(parts.sorted.num_rows()));
    span.Attr("partitions", static_cast<uint64_t>(parts.ranges.size()));
  }
  std::vector<Value> column(parts.sorted.num_rows(), Value::Null());
  for (const auto& [begin, end] : parts.ranges) {
    compute(parts.sorted, begin, end, &column);
  }
  Table extra(Schema({Field{output_name, output_type}}));
  extra.Reserve(column.size());
  for (const Value& v : column) {
    DATACUBE_RETURN_IF_ERROR(extra.AppendRow({v}));
  }
  return parts.sorted.ConcatColumns(extra);
}

}  // namespace

Result<Table> AddRank(const Table& table, size_t value_column,
                      const std::string& output_name,
                      const WindowOptions& options) {
  return WithComputedColumn(
      table, value_column, output_name, DataType::kInt64, options,
      [value_column](const Table& t, size_t begin, size_t end,
                     std::vector<Value>* out) {
        // Order partition rows by value; ties share the smallest rank.
        std::vector<size_t> idx;
        for (size_t r = begin; r < end; ++r) {
          if (!t.GetValue(r, value_column).is_special()) idx.push_back(r);
        }
        std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
          return t.GetValue(a, value_column)
                     .Compare(t.GetValue(b, value_column)) < 0;
        });
        int64_t rank = 0;
        for (size_t i = 0; i < idx.size(); ++i) {
          if (i == 0 ||
              t.GetValue(idx[i], value_column)
                      .Compare(t.GetValue(idx[i - 1], value_column)) != 0) {
            rank = static_cast<int64_t>(i + 1);
          }
          (*out)[idx[i]] = Value::Int64(rank);
        }
      });
}

Result<Table> AddNTile(const Table& table, size_t value_column, int n,
                       const std::string& output_name,
                       const WindowOptions& options) {
  if (n < 1) return Status::InvalidArgument("n_tile requires n >= 1");
  return WithComputedColumn(
      table, value_column, output_name, DataType::kInt64, options,
      [value_column, n](const Table& t, size_t begin, size_t end,
                        std::vector<Value>* out) {
        std::vector<size_t> idx;
        for (size_t r = begin; r < end; ++r) {
          if (!t.GetValue(r, value_column).is_special()) idx.push_back(r);
        }
        std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
          return t.GetValue(a, value_column)
                     .Compare(t.GetValue(b, value_column)) < 0;
        });
        // Equal-population buckets: position i of m goes to bucket
        // floor(i * n / m) + 1.
        size_t m = idx.size();
        for (size_t i = 0; i < m; ++i) {
          int64_t bucket =
              static_cast<int64_t>(i * static_cast<size_t>(n) / m) + 1;
          (*out)[idx[i]] = Value::Int64(bucket);
        }
      });
}

Result<Table> AddRatioToTotal(const Table& table, size_t value_column,
                              const std::string& output_name,
                              const WindowOptions& options) {
  return WithComputedColumn(
      table, value_column, output_name, DataType::kFloat64, options,
      [value_column](const Table& t, size_t begin, size_t end,
                     std::vector<Value>* out) {
        double total = 0;
        for (size_t r = begin; r < end; ++r) {
          Value v = t.GetValue(r, value_column);
          if (v.is_numeric()) total += v.AsDouble();
        }
        for (size_t r = begin; r < end; ++r) {
          Value v = t.GetValue(r, value_column);
          if (v.is_numeric() && total != 0) {
            (*out)[r] = Value::Float64(v.AsDouble() / total);
          }
        }
      });
}

Result<Table> AddCumulative(const Table& table, size_t value_column,
                            const std::string& output_name,
                            const WindowOptions& options) {
  return WithComputedColumn(
      table, value_column, output_name, DataType::kFloat64, options,
      [value_column](const Table& t, size_t begin, size_t end,
                     std::vector<Value>* out) {
        double running = 0;
        for (size_t r = begin; r < end; ++r) {
          Value v = t.GetValue(r, value_column);
          if (v.is_numeric()) running += v.AsDouble();
          (*out)[r] = Value::Float64(running);
        }
      });
}

namespace {

Result<Table> AddRunningWindow(const Table& table, size_t value_column, int n,
                               const std::string& output_name, bool average,
                               const WindowOptions& options) {
  if (n < 1) return Status::InvalidArgument("running window requires n >= 1");
  return WithComputedColumn(
      table, value_column, output_name, DataType::kFloat64, options,
      [value_column, n, average](const Table& t, size_t begin, size_t end,
                                 std::vector<Value>* out) {
        std::deque<double> window;
        double sum = 0;
        size_t seen = 0;
        for (size_t r = begin; r < end; ++r) {
          Value v = t.GetValue(r, value_column);
          double x = v.is_numeric() ? v.AsDouble() : 0.0;
          window.push_back(x);
          sum += x;
          ++seen;
          if (window.size() > static_cast<size_t>(n)) {
            sum -= window.front();
            window.pop_front();
          }
          // "The initial n-1 values are NULL."
          if (seen < static_cast<size_t>(n)) continue;
          (*out)[r] = Value::Float64(average ? sum / static_cast<double>(n)
                                             : sum);
        }
      });
}

}  // namespace

Result<Table> AddRunningSum(const Table& table, size_t value_column, int n,
                            const std::string& output_name,
                            const WindowOptions& options) {
  return AddRunningWindow(table, value_column, n, output_name,
                          /*average=*/false, options);
}

Result<Table> AddRunningAverage(const Table& table, size_t value_column, int n,
                                const std::string& output_name,
                                const WindowOptions& options) {
  return AddRunningWindow(table, value_column, n, output_name,
                          /*average=*/true, options);
}

}  // namespace datacube
