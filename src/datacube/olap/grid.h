#ifndef DATACUBE_OLAP_GRID_H_
#define DATACUBE_OLAP_GRID_H_

#include <algorithm>
#include <string>
#include <vector>

#include "datacube/common/str_util.h"

namespace datacube {

/// Renders rows of labeled cells as an aligned text grid: first column
/// left-aligned, remaining columns right-aligned, trailing spaces trimmed.
/// Shared by the OLAP report writers.
inline std::string RenderTextGrid(
    const std::vector<std::vector<std::string>>& grid,
    size_t left_aligned_columns = 1) {
  std::vector<size_t> widths;
  for (const auto& row : grid) {
    if (widths.size() < row.size()) widths.resize(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (const auto& row : grid) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += Pad(row[c], widths[c], /*right_align=*/c >= left_aligned_columns);
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  }
  return out;
}

}  // namespace datacube

#endif  // DATACUBE_OLAP_GRID_H_
