#include "datacube/olap/pivot_table.h"

#include <map>

#include "datacube/agg/registry.h"
#include "datacube/obs/trace.h"

namespace datacube {

Result<Table> PivotToTable(const Table& input,
                           const std::vector<std::string>& row_key_columns,
                           const std::string& pivot_column,
                           const std::string& value_column,
                           const PivotTableOptions& options) {
  obs::ScopedSpan span("pivot_to_table");
  if (span.active()) {
    span.Attr("rows", static_cast<uint64_t>(input.num_rows()));
    span.Attr("pivot_column", pivot_column);
  }
  // Resolve columns.
  std::vector<size_t> key_cols;
  for (const std::string& name : row_key_columns) {
    std::optional<size_t> idx = input.schema().FieldIndex(name);
    if (!idx.has_value()) return Status::NotFound("no column named " + name);
    key_cols.push_back(*idx);
  }
  std::optional<size_t> pivot_idx = input.schema().FieldIndex(pivot_column);
  if (!pivot_idx.has_value()) {
    return Status::NotFound("no column named " + pivot_column);
  }
  std::optional<size_t> value_idx = input.schema().FieldIndex(value_column);
  if (!value_idx.has_value()) {
    return Status::NotFound("no column named " + value_column);
  }

  DATACUBE_ASSIGN_OR_RETURN(
      AggregateFunctionPtr fn,
      AggregateRegistry::Global().Make(options.aggregate));
  if (fn->num_args() != 1) {
    return Status::InvalidArgument("pivot aggregate must take one argument");
  }
  DATACUBE_ASSIGN_OR_RETURN(
      DataType result_type,
      fn->ResultType({input.schema().field(*value_idx).type}));

  // Distinct pivot values in sorted order; each becomes an output column.
  std::map<Value, size_t> pivot_values;  // value -> column slot
  for (size_t r = 0; r < input.num_rows(); ++r) {
    Value v = input.GetValue(r, *pivot_idx);
    if (!v.is_special()) pivot_values.emplace(std::move(v), 0);
  }
  size_t slot = 0;
  for (auto& [v, s] : pivot_values) s = slot++;
  size_t num_slots = pivot_values.size() + (options.add_row_total ? 1 : 0);

  // Group rows by key; keep one scratchpad per pivot slot (+ total).
  struct PivotRow {
    std::vector<AggStatePtr> states;
  };
  std::map<std::vector<Value>, PivotRow> rows;
  auto states_for = [&](const std::vector<Value>& key) -> PivotRow& {
    auto [it, inserted] = rows.try_emplace(key);
    if (inserted) {
      it->second.states.reserve(num_slots);
      for (size_t i = 0; i < num_slots; ++i) {
        it->second.states.push_back(fn->Init());
      }
    }
    return it->second;
  };
  // Has each (key, slot) cell seen any input? NULL cells stay NULL.
  std::map<std::pair<std::vector<Value>, size_t>, bool> touched;

  std::vector<AggStatePtr> grand_states;
  if (options.add_total_row) {
    grand_states.reserve(num_slots);
    for (size_t i = 0; i < num_slots; ++i) grand_states.push_back(fn->Init());
  }

  for (size_t r = 0; r < input.num_rows(); ++r) {
    Value pv = input.GetValue(r, *pivot_idx);
    if (pv.is_special()) continue;  // unpivotable rows are dropped
    std::vector<Value> key;
    key.reserve(key_cols.size());
    for (size_t c : key_cols) key.push_back(input.GetValue(r, c));
    PivotRow& row = states_for(key);
    size_t s = pivot_values.at(pv);
    Value v = input.GetValue(r, *value_idx);
    fn->Iter1(row.states[s].get(), v);
    touched[{key, s}] = true;
    if (options.add_row_total) {
      fn->Iter1(row.states[pivot_values.size()].get(), v);
    }
    if (options.add_total_row) {
      fn->Iter1(grand_states[s].get(), v);
      if (options.add_row_total) {
        fn->Iter1(grand_states[pivot_values.size()].get(), v);
      }
    }
  }

  // Result schema: keys, one column per pivot value, optional total.
  std::vector<Field> fields;
  for (size_t c : key_cols) fields.push_back(input.schema().field(c));
  for (const auto& [v, s] : pivot_values) {
    Field f{v.ToString(), result_type, /*nullable=*/true};
    for (const Field& existing : fields) {
      if (existing.name == f.name) {
        return Status::AlreadyExists("pivot value collides with column name: " +
                                     f.name);
      }
    }
    fields.push_back(std::move(f));
  }
  if (options.add_row_total) {
    fields.push_back(Field{options.total_column_name, result_type});
  }
  Table out{Schema{std::move(fields)}};
  out.Reserve(rows.size());
  for (const auto& [key, row] : rows) {
    std::vector<Value> values = key;
    for (const auto& [pv, s] : pivot_values) {
      bool has = touched.count({key, s}) > 0;
      if (has) {
        DATACUBE_ASSIGN_OR_RETURN(Value v,
                                  fn->FinalChecked(row.states[s].get()));
        values.push_back(std::move(v));
      } else {
        values.push_back(Value::Null());
      }
    }
    if (options.add_row_total) {
      DATACUBE_ASSIGN_OR_RETURN(
          Value v, fn->FinalChecked(row.states[pivot_values.size()].get()));
      values.push_back(std::move(v));
    }
    DATACUBE_RETURN_IF_ERROR(out.AppendRow(values));
  }
  if (options.add_total_row && !grand_states.empty()) {
    std::vector<Value> values(key_cols.size(), Value::Null());
    for (const auto& [pv, s] : pivot_values) {
      DATACUBE_ASSIGN_OR_RETURN(Value v,
                                fn->FinalChecked(grand_states[s].get()));
      values.push_back(std::move(v));
    }
    if (options.add_row_total) {
      DATACUBE_ASSIGN_OR_RETURN(
          Value v, fn->FinalChecked(grand_states[pivot_values.size()].get()));
      values.push_back(std::move(v));
    }
    DATACUBE_RETURN_IF_ERROR(out.AppendRow(values));
  }
  return out;
}

}  // namespace datacube
