#ifndef DATACUBE_OLAP_PIVOT_TABLE_H_
#define DATACUBE_OLAP_PIVOT_TABLE_H_

#include <string>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/table/table.h"

namespace datacube {

/// Options for the relational pivot operator.
struct PivotTableOptions {
  /// Append a per-row total column aggregating across all pivot values.
  bool add_row_total = true;
  std::string total_column_name = "Total";
  /// Append a final grand-total row (row keys NULL).
  bool add_total_row = false;
  /// Aggregate function (registry name) applied to the value column.
  std::string aggregate = "sum";
};

/// The relational PIVOT operator the paper predicts in footnote 5 ("it
/// seems likely that a relational pivot operator will appear in database
/// systems in the near future"): transposes the distinct values of
/// `pivot_column` into output columns — "rather than just creating columns
/// based on subsets of column names, pivot creates columns based on subsets
/// of column *values*."
///
/// The result has one row per distinct combination of `row_key_columns`,
/// one column per distinct value of `pivot_column` (named by the value's
/// printed form) holding the aggregated `value_column`, plus optional
/// row/grand totals. Cells with no contributing input rows are NULL.
Result<Table> PivotToTable(const Table& input,
                           const std::vector<std::string>& row_key_columns,
                           const std::string& pivot_column,
                           const std::string& value_column,
                           const PivotTableOptions& options = {});

}  // namespace datacube

#endif  // DATACUBE_OLAP_PIVOT_TABLE_H_
