#ifndef DATACUBE_OLAP_WINDOW_H_
#define DATACUBE_OLAP_WINDOW_H_

#include <string>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/table/sort.h"
#include "datacube/table/table.h"

namespace datacube {

/// Shared options for the Red Brick-style ordered/cumulative functions the
/// paper surveys in Section 1.2. The input is first sorted by `order_by`
/// (empty = keep input order); cumulative state resets whenever the value of
/// any `partition_by` column changes ("these aggregate functions are
/// optionally reset each time a grouping value changes in an ordered
/// selection").
struct WindowOptions {
  std::vector<size_t> partition_by;
  std::vector<SortKey> order_by;
};

/// Rank(expression): the value's rank among all values of the column within
/// its partition — "if there are N values in the column, and this is the
/// highest value, the rank is N, if it is the lowest value the rank is 1."
/// Ties share the smallest rank of the tied group. NULL values rank NULL.
/// Returns the (sorted) input table plus an INT64 column `output_name`.
Result<Table> AddRank(const Table& table, size_t value_column,
                      const std::string& output_name,
                      const WindowOptions& options = {});

/// N_tile(expression, n): splits the partition's value range into n buckets
/// of approximately equal population and reports each row's bucket (1..n) —
/// "if your bank account was among the largest 10% then your
/// rank(account.balance, 10) would return 10."
Result<Table> AddNTile(const Table& table, size_t value_column, int n,
                       const std::string& output_name,
                       const WindowOptions& options = {});

/// Ratio_To_Total(expression): each value divided by the partition's total.
Result<Table> AddRatioToTotal(const Table& table, size_t value_column,
                              const std::string& output_name,
                              const WindowOptions& options = {});

/// Cumulative(expression): running sum of all values so far in the ordered
/// partition.
Result<Table> AddCumulative(const Table& table, size_t value_column,
                            const std::string& output_name,
                            const WindowOptions& options = {});

/// Running_Sum(expression, n): sum of the most recent n values; "the initial
/// n-1 values are NULL."
Result<Table> AddRunningSum(const Table& table, size_t value_column, int n,
                            const std::string& output_name,
                            const WindowOptions& options = {});

/// Running_Average(expression, n): average of the most recent n values; the
/// initial n-1 values are NULL.
Result<Table> AddRunningAverage(const Table& table, size_t value_column, int n,
                                const std::string& output_name,
                                const WindowOptions& options = {});

}  // namespace datacube

#endif  // DATACUBE_OLAP_WINDOW_H_
