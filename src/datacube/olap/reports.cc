#include "datacube/olap/reports.h"

#include <map>

#include "datacube/olap/grid.h"
#include "datacube/table/sort.h"

namespace datacube {

namespace {

// Splits a rollup result into detail rows and per-level sub-total maps.
// Level L holds the totals keyed by the first L dimension values.
struct RollupPieces {
  Table details;                                       // rows with no ALL dims
  std::vector<std::map<std::vector<Value>, Value>> totals;  // [level][prefix]
};

Result<RollupPieces> SplitRollup(const Table& rollup, size_t num_dims,
                                 size_t value_column) {
  if (num_dims == 0 || num_dims >= rollup.num_columns() ||
      value_column >= rollup.num_columns()) {
    return Status::InvalidArgument("bad rollup report dimensions");
  }
  RollupPieces pieces;
  pieces.totals.resize(num_dims);  // levels 0 .. num_dims-1
  std::vector<bool> detail_mask(rollup.num_rows(), false);
  for (size_t r = 0; r < rollup.num_rows(); ++r) {
    // A rollup row's level = number of leading concrete dims; ALLs must be a
    // suffix.
    size_t level = 0;
    while (level < num_dims && !rollup.GetValue(r, level).is_all()) ++level;
    for (size_t d = level; d < num_dims; ++d) {
      if (!rollup.GetValue(r, d).is_all()) {
        return Status::InvalidArgument(
            "input is not rollup-shaped (non-suffix ALL pattern)");
      }
    }
    if (level == num_dims) {
      detail_mask[r] = true;
      continue;
    }
    std::vector<Value> prefix;
    prefix.reserve(level);
    for (size_t d = 0; d < level; ++d) prefix.push_back(rollup.GetValue(r, d));
    pieces.totals[level][std::move(prefix)] = rollup.GetValue(r, value_column);
  }
  DATACUBE_ASSIGN_OR_RETURN(Table details, rollup.FilterRows(detail_mask));
  std::vector<SortKey> keys;
  for (size_t d = 0; d < num_dims; ++d) keys.push_back(SortKey{d, true});
  DATACUBE_ASSIGN_OR_RETURN(pieces.details, SortTable(details, keys));
  return pieces;
}

std::string LevelHeader(const Table& rollup, size_t value_column,
                        size_t level) {
  std::string h = rollup.schema().field(value_column).name;
  for (size_t d = 0; d < level; ++d) {
    h += " by " + rollup.schema().field(d).name;
  }
  return h;
}

}  // namespace

Result<std::string> FormatRollupReport(const Table& rollup, size_t num_dims,
                                       size_t value_column) {
  DATACUBE_ASSIGN_OR_RETURN(RollupPieces pieces,
                            SplitRollup(rollup, num_dims, value_column));
  const Table& d = pieces.details;

  std::vector<std::vector<std::string>> grid;
  std::vector<std::string> header;
  for (size_t k = 0; k < num_dims; ++k) {
    header.push_back(rollup.schema().field(k).name);
  }
  for (size_t level = num_dims; level >= 1; --level) {
    header.push_back(LevelHeader(rollup, value_column, level));
  }
  grid.push_back(std::move(header));

  size_t value_col_base = num_dims;  // columns [num_dims ..) hold levels N..1
  auto subtotal_row = [&](size_t level, const std::vector<Value>& prefix) {
    std::vector<std::string> line(num_dims + num_dims, "");
    auto it = pieces.totals[level].find(prefix);
    if (it != pieces.totals[level].end()) {
      // Level L's value lands in header slot for level L: offset N - L.
      line[value_col_base + (num_dims - level)] = it->second.ToString();
    }
    grid.push_back(std::move(line));
  };

  for (size_t r = 0; r < d.num_rows(); ++r) {
    // Blank the dims that repeat the previous row's prefix.
    std::vector<std::string> line(num_dims + num_dims, "");
    size_t first_diff = 0;
    if (r > 0) {
      while (first_diff < num_dims &&
             d.GetValue(r, first_diff) == d.GetValue(r - 1, first_diff)) {
        ++first_diff;
      }
    }
    for (size_t k = (r == 0 ? 0 : first_diff); k < num_dims; ++k) {
      line[k] = d.GetValue(r, k).ToString();
    }
    line[value_col_base] = d.GetValue(r, value_column).ToString();
    grid.push_back(std::move(line));

    // Emit sub-totals for every level whose group closes after this row.
    for (size_t level = num_dims - 1; level >= 1; --level) {
      bool closes = r + 1 == d.num_rows();
      if (!closes) {
        for (size_t k = 0; k < level; ++k) {
          if (!(d.GetValue(r, k) == d.GetValue(r + 1, k))) {
            closes = true;
            break;
          }
        }
      }
      if (!closes) continue;
      std::vector<Value> prefix;
      for (size_t k = 0; k < level; ++k) prefix.push_back(d.GetValue(r, k));
      subtotal_row(level, prefix);
    }
  }
  return RenderTextGrid(grid, num_dims);
}

Result<std::string> FormatDateReport(const Table& rollup, size_t num_dims,
                                     size_t value_column) {
  DATACUBE_ASSIGN_OR_RETURN(RollupPieces pieces,
                            SplitRollup(rollup, num_dims, value_column));
  const Table& d = pieces.details;

  std::vector<std::vector<std::string>> grid;
  std::vector<std::string> header;
  for (size_t k = 0; k < num_dims; ++k) {
    header.push_back(rollup.schema().field(k).name);
  }
  header.push_back(rollup.schema().field(value_column).name);
  for (size_t level = num_dims - 1; level >= 1; --level) {
    header.push_back(LevelHeader(rollup, value_column, level));
  }
  grid.push_back(std::move(header));

  for (size_t r = 0; r < d.num_rows(); ++r) {
    std::vector<std::string> line;
    for (size_t k = 0; k < num_dims; ++k) {
      line.push_back(d.GetValue(r, k).ToString());
    }
    line.push_back(d.GetValue(r, value_column).ToString());
    for (size_t level = num_dims - 1; level >= 1; --level) {
      std::vector<Value> prefix;
      for (size_t k = 0; k < level; ++k) prefix.push_back(d.GetValue(r, k));
      auto it = pieces.totals[level].find(prefix);
      line.push_back(it == pieces.totals[level].end() ? ""
                                                      : it->second.ToString());
    }
    grid.push_back(std::move(line));
  }
  return RenderTextGrid(grid, num_dims);
}

}  // namespace datacube
