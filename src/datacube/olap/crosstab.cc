#include "datacube/olap/crosstab.h"

#include <algorithm>
#include <map>
#include <set>

#include "datacube/common/str_util.h"

namespace datacube {

namespace {

// Identifies the grouping columns of a cube result: every column that
// contains at least one ALL marker, plus the requested dims themselves.
std::set<size_t> GroupingColumns(const Table& cube,
                                 std::initializer_list<size_t> dims) {
  std::set<size_t> cols(dims);
  for (size_t c = 0; c < cube.num_columns(); ++c) {
    if (cube.column(c).all_count() > 0) cols.insert(c);
  }
  return cols;
}

// True if every grouping column of `cube` other than those in `dims` is ALL
// in row `r` — i.e. the row lies on the ALL plane of the other dimensions.
bool OnAllPlane(const Table& cube, size_t r, const std::set<size_t>& grouping,
                std::initializer_list<size_t> dims) {
  for (size_t c : grouping) {
    if (std::find(dims.begin(), dims.end(), c) != dims.end()) continue;
    if (!cube.GetValue(r, c).is_all()) return false;
  }
  return true;
}

// Renders a grid of labeled cells with right-aligned value columns.
std::string RenderGrid(const std::vector<std::vector<std::string>>& grid) {
  std::vector<size_t> widths;
  for (const auto& row : grid) {
    if (widths.size() < row.size()) widths.resize(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (const auto& row : grid) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += "  ";
      out += Pad(row[c], widths[c], /*right_align=*/c > 0);
    }
    // Trim trailing spaces.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  }
  return out;
}

}  // namespace

Result<std::string> FormatCrossTab(const Table& cube, size_t row_dim,
                                   size_t col_dim, size_t value_column,
                                   const CrossTabOptions& options) {
  if (row_dim >= cube.num_columns() || col_dim >= cube.num_columns() ||
      value_column >= cube.num_columns()) {
    return Status::OutOfRange("cross-tab column out of range");
  }
  if (row_dim == col_dim) {
    return Status::InvalidArgument("row and column dimensions must differ");
  }
  std::set<size_t> grouping = GroupingColumns(cube, {row_dim, col_dim});

  // Collect distinct concrete labels and cell values.
  std::set<Value> row_values, col_values;
  std::map<std::pair<Value, Value>, Value> cells;
  for (size_t r = 0; r < cube.num_rows(); ++r) {
    if (!OnAllPlane(cube, r, grouping, {row_dim, col_dim})) continue;
    Value rv = cube.GetValue(r, row_dim);
    Value cv = cube.GetValue(r, col_dim);
    if (!rv.is_all()) row_values.insert(rv);
    if (!cv.is_all()) col_values.insert(cv);
    cells[{rv, cv}] = cube.GetValue(r, value_column);
  }

  auto cell_text = [&](const Value& rv, const Value& cv) -> std::string {
    auto it = cells.find({rv, cv});
    if (it == cells.end() || it->second.is_null()) return options.empty_cell;
    return it->second.ToString();
  };

  std::vector<std::vector<std::string>> grid;
  std::vector<std::string> header = {options.corner_label};
  for (const Value& cv : col_values) header.push_back(cv.ToString());
  header.push_back(options.total_label);
  grid.push_back(std::move(header));
  for (const Value& rv : row_values) {
    std::vector<std::string> line = {rv.ToString()};
    for (const Value& cv : col_values) line.push_back(cell_text(rv, cv));
    line.push_back(cell_text(rv, Value::All()));
    grid.push_back(std::move(line));
  }
  std::vector<std::string> totals = {options.total_label};
  for (const Value& cv : col_values) {
    totals.push_back(cell_text(Value::All(), cv));
  }
  totals.push_back(cell_text(Value::All(), Value::All()));
  grid.push_back(std::move(totals));
  return RenderGrid(grid);
}

Result<std::string> FormatPivot(const Table& cube, size_t row_dim,
                                size_t outer_col_dim, size_t inner_col_dim,
                                size_t value_column,
                                const CrossTabOptions& options) {
  if (row_dim >= cube.num_columns() || outer_col_dim >= cube.num_columns() ||
      inner_col_dim >= cube.num_columns() ||
      value_column >= cube.num_columns()) {
    return Status::OutOfRange("pivot column out of range");
  }
  if (row_dim == outer_col_dim || row_dim == inner_col_dim ||
      outer_col_dim == inner_col_dim) {
    return Status::InvalidArgument("pivot dimensions must be distinct");
  }
  std::set<size_t> grouping =
      GroupingColumns(cube, {row_dim, outer_col_dim, inner_col_dim});

  std::set<Value> rows, outers, inners;
  std::map<std::tuple<Value, Value, Value>, Value> cells;
  for (size_t r = 0; r < cube.num_rows(); ++r) {
    if (!OnAllPlane(cube, r, grouping,
                    {row_dim, outer_col_dim, inner_col_dim})) {
      continue;
    }
    Value rv = cube.GetValue(r, row_dim);
    Value ov = cube.GetValue(r, outer_col_dim);
    Value iv = cube.GetValue(r, inner_col_dim);
    if (!rv.is_all()) rows.insert(rv);
    if (!ov.is_all()) outers.insert(ov);
    if (!iv.is_all()) inners.insert(iv);
    cells[{rv, ov, iv}] = cube.GetValue(r, value_column);
  }

  auto cell_text = [&](const Value& rv, const Value& ov,
                       const Value& iv) -> std::string {
    auto it = cells.find({rv, ov, iv});
    if (it == cells.end() || it->second.is_null()) return options.empty_cell;
    return it->second.ToString();
  };

  // Two header lines: outer values (spanning their inner columns + a total)
  // and inner values.
  std::vector<std::vector<std::string>> grid;
  std::vector<std::string> top = {options.corner_label.empty()
                                      ? cube.schema().field(value_column).name
                                      : options.corner_label};
  std::vector<std::string> sub = {cube.schema().field(row_dim).name};
  for (const Value& ov : outers) {
    for (const Value& iv : inners) {
      top.push_back(ov.ToString());
      sub.push_back(iv.ToString());
    }
    top.push_back(ov.ToString());
    sub.push_back("Total");
  }
  top.push_back("Grand");
  sub.push_back("Total");
  grid.push_back(std::move(top));
  grid.push_back(std::move(sub));

  auto emit_row = [&](const std::string& label, const Value& rv) {
    std::vector<std::string> line = {label};
    for (const Value& ov : outers) {
      for (const Value& iv : inners) line.push_back(cell_text(rv, ov, iv));
      line.push_back(cell_text(rv, ov, Value::All()));
    }
    line.push_back(cell_text(rv, Value::All(), Value::All()));
    grid.push_back(std::move(line));
  };
  for (const Value& rv : rows) emit_row(rv.ToString(), rv);
  emit_row("Grand Total", Value::All());
  return RenderGrid(grid);
}

}  // namespace datacube
