#ifndef DATACUBE_OLAP_CROSSTAB_H_
#define DATACUBE_OLAP_CROSSTAB_H_

#include <string>

#include "datacube/common/result.h"
#include "datacube/table/table.h"

namespace datacube {

/// Rendering options for cross-tab / pivot reports.
struct CrossTabOptions {
  /// Label of the totals row/column (the paper's Table 6 uses "total (ALL)").
  std::string total_label = "total (ALL)";
  /// Top-left corner label (Table 6.a uses the slice name, e.g. "Chevy").
  std::string corner_label = "";
  /// Rendering of an empty (never-populated) cell.
  std::string empty_cell = "";
};

/// Renders a 2D cube result as the compact cross-tab of Table 6:
///
///   Chevy        1994  1995  total (ALL)
///   black          50    85          135
///   white          40   115          155
///   total (ALL)    90   200          290
///
/// `cube` must be a cube-operator result whose grouping columns include
/// `row_dim` and `col_dim`; `value_column` is the aggregate to display. Rows
/// of `cube` where any *other* grouping column is concrete are ignored, so a
/// higher-dimensional cube can be cross-tabbed directly (the extra
/// dimensions are read at their ALL plane).
Result<std::string> FormatCrossTab(const Table& cube, size_t row_dim,
                                   size_t col_dim, size_t value_column,
                                   const CrossTabOptions& options = {});

/// Renders a 3D cube result as the Excel-style pivot of Table 4 — one row
/// dimension and two nested column dimensions with per-outer sub-totals and
/// a grand total:
///
///   Sum Sales    1994           1994   1995           1995   Grand
///   Model        black  white   Total  black  white   Total  Total
///   Chevy           50     40      90     85    115     200    290
///   ...
///   Grand Total    100     50     150    170    190     360    510
Result<std::string> FormatPivot(const Table& cube, size_t row_dim,
                                size_t outer_col_dim, size_t inner_col_dim,
                                size_t value_column,
                                const CrossTabOptions& options = {});

}  // namespace datacube

#endif  // DATACUBE_OLAP_CROSSTAB_H_
