#ifndef DATACUBE_SQL_AST_H_
#define DATACUBE_SQL_AST_H_

#include <string>
#include <vector>

#include "datacube/expr/expr.h"

namespace datacube::sql {

/// One SELECT-list item. Aggregate calls appear as Expr::Call nodes whose
/// names resolve in AggregateRegistry rather than the scalar registry; the
/// planner classifies them. `count(*)` parses to Call("count_star", {});
/// `agg(DISTINCT x)` sets the node name to the pseudo-prefix "distinct$".
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty if none
  bool star = false;  // SELECT *
};

/// One grouping expression with an optional alias — the paper's
/// "GROUP BY Day(Time) AS day" form.
struct GroupItem {
  ExprPtr expr;
  std::string alias;
};

/// The GROUP BY clause in the paper's Section 3.2 grammar:
///   GROUP BY [<list>] [ROLLUP <list>] [CUBE <list>]
/// plus standard GROUPING SETS ((a, b), (a), ()).
struct GroupByClause {
  std::vector<GroupItem> plain;
  std::vector<GroupItem> rollup;
  std::vector<GroupItem> cube;
  /// Explicit grouping sets over the union of columns they mention;
  /// non-empty means the clause was GROUPING SETS.
  std::vector<std::vector<GroupItem>> grouping_sets;

  bool empty() const {
    return plain.empty() && rollup.empty() && cube.empty() &&
           grouping_sets.empty();
  }
};

struct OrderItem {
  ExprPtr expr;       // null if ordinal form
  int ordinal = -1;   // 1-based ORDER BY 2 form
  bool ascending = true;
};

/// A parsed SELECT statement over a single table (the scope of the paper's
/// examples; joins are handled by the schema module's denormalization).
struct SelectStatement {
  std::vector<SelectItem> select_list;
  std::string from_table;
  ExprPtr where;  // null if absent
  GroupByClause group_by;
  ExprPtr having;  // null if absent
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit
};

/// EXPLAIN prefix on a query: kPlan renders the cube execution plan without
/// running it; kAnalyze executes the query under a trace and renders the
/// plan, per-grouping-set actual vs estimated cell counts, and the span
/// tree with measured timings.
enum class ExplainMode { kNone, kPlan, kAnalyze };

/// A full query: one or more SELECT statements combined with UNION [ALL] —
/// the Section 2 construct the CUBE operator replaces ("a 64-way union of
/// 64 different GROUP BY operators").
struct UnionQuery {
  ExplainMode explain = ExplainMode::kNone;
  std::vector<SelectStatement> selects;
  /// distinct_union[i] is true when selects[i] was joined to its
  /// predecessor with plain UNION (duplicate-eliminating); index 0 unused.
  std::vector<bool> distinct_union;
};

/// Syntactic statistics used to regenerate the paper's Table 2 (counts of
/// aggregates and GROUP BYs in benchmark query sets).
struct QueryStats {
  int num_aggregates = 0;
  bool has_group_by = false;
};

/// Counts aggregate calls and GROUP BY presence in a parsed statement.
QueryStats Analyze(const SelectStatement& stmt);

}  // namespace datacube::sql

#endif  // DATACUBE_SQL_AST_H_
