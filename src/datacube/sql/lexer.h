#ifndef DATACUBE_SQL_LEXER_H_
#define DATACUBE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "datacube/common/result.h"

namespace datacube::sql {

/// SQL token kinds. Keywords are lexed as identifiers and recognized
/// contextually (case-insensitively) by the parser.
enum class TokenKind {
  kIdentifier,
  kNumber,     // integer or decimal literal
  kString,     // '...'-quoted, '' escapes a quote
  kSymbol,     // operators and punctuation, text holds the exact lexeme
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  /// 1-based position for error messages.
  size_t line = 1;
  size_t column = 1;

  bool IsSymbol(const char* s) const {
    return kind == TokenKind::kSymbol && text == s;
  }
  /// Case-insensitive keyword test.
  bool IsKeyword(const char* kw) const;
};

/// Tokenizes SQL text. Supports identifiers (with `"` quoting), numeric and
/// string literals, `--` line comments, and the operator set used by the
/// paper's examples: ( ) , ; . * + - / % = <> != < <= > >= .
Result<std::vector<Token>> Lex(const std::string& text);

}  // namespace datacube::sql

#endif  // DATACUBE_SQL_LEXER_H_
