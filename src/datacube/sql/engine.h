#ifndef DATACUBE_SQL_ENGINE_H_
#define DATACUBE_SQL_ENGINE_H_

#include <string>

#include "datacube/common/result.h"
#include "datacube/cube/cube_spec.h"
#include "datacube/sql/ast.h"
#include "datacube/sql/catalog.h"

namespace datacube::sql {

/// Engine-level options.
struct EngineOptions {
  /// How super-aggregate markers appear in results (Section 3.3's ALL token
  /// vs Section 3.4's NULL + GROUPING design).
  AllMode all_mode = AllMode::kAllToken;
  /// Cube execution knobs passed through to the operator.
  CubeOptions cube;
};

/// Parses and executes one SELECT statement against `catalog`.
///
/// Supported shapes: projection queries (optional WHERE/ORDER BY/LIMIT) and
/// aggregation queries with the paper's
///   GROUP BY [<list>] [ROLLUP <list>] [CUBE <list>] | GROUPING SETS (...)
/// clause, aggregate expressions anywhere in the select list (e.g.
/// SUM(x) / 100), GROUPING() discriminators, HAVING, ORDER BY (names or
/// ordinals), and LIMIT.
///
/// A query may be prefixed with EXPLAIN (render the cube execution plan
/// without running the query) or EXPLAIN ANALYZE (execute under a trace and
/// render the plan, per-grouping-set actual vs estimated cell counts, and
/// the timed span tree). Either form returns a single string column with
/// one row per output line.
Result<Table> ExecuteSql(const std::string& text, const Catalog& catalog,
                         const EngineOptions& options = {});

/// Executes an already-parsed statement.
Result<Table> ExecuteSelect(const SelectStatement& stmt, const Catalog& catalog,
                            const EngineOptions& options = {});

}  // namespace datacube::sql

#endif  // DATACUBE_SQL_ENGINE_H_
