#ifndef DATACUBE_SQL_PARSER_H_
#define DATACUBE_SQL_PARSER_H_

#include <string>

#include "datacube/common/result.h"
#include "datacube/sql/ast.h"

namespace datacube::sql {

/// Parses one SELECT statement in the paper's dialect:
///
///   SELECT Model, Year, Color, SUM(Units) AS Units
///   FROM Sales
///   WHERE Model = 'Chevy'
///   GROUP BY Model, ROLLUP Year(Time) AS Year, CUBE Color, Model
///   HAVING SUM(Units) > 10
///   ORDER BY 1 DESC
///   LIMIT 10;
///
/// Both the paper's prefix syntax (GROUP BY CUBE a, b) and the standard
/// parenthesized form (GROUP BY CUBE(a, b)) are accepted, as is
/// GROUPING SETS ((a, b), (a), ()). Aggregate arguments may be DISTINCT
/// (`COUNT(DISTINCT x)`), and `COUNT(*)` is recognized.
Result<SelectStatement> ParseSelect(const std::string& text);

/// Parses a query that may be a UNION [ALL] chain of SELECTs — the form the
/// paper's Section 2 uses to build Table 5.a by hand.
Result<UnionQuery> ParseQuery(const std::string& text);

}  // namespace datacube::sql

#endif  // DATACUBE_SQL_PARSER_H_
