#include "datacube/sql/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "datacube/agg/registry.h"
#include "datacube/common/str_util.h"
#include "datacube/cube/cube_operator.h"
#include "datacube/cube/grouping_set.h"
#include "datacube/cube/partitioned_cube.h"
#include "datacube/obs/metrics.h"
#include "datacube/obs/query_profile.h"
#include "datacube/obs/trace.h"
#include "datacube/sql/parser.h"

namespace datacube::sql {

namespace {

constexpr const char* kDistinctPrefix = "distinct$";

// True if the call node names an aggregate function (registry lookup,
// count_star normalization, or the DISTINCT-encoded form).
bool IsAggregateCall(const Expr& e) {
  if (e.kind() != Expr::Kind::kCall) return false;
  const std::string& n = e.name();
  if (EqualsIgnoreCase(n, "count_star")) return true;
  if (n.rfind(kDistinctPrefix, 0) == 0) {
    return AggregateRegistry::Global().Contains(
        n.substr(std::string(kDistinctPrefix).size()));
  }
  return AggregateRegistry::Global().Contains(n);
}

bool ContainsAggregate(const ExprPtr& e) {
  if (e == nullptr) return false;
  if (IsAggregateCall(*e)) return true;
  for (const ExprPtr& arg : e->args()) {
    if (ContainsAggregate(arg)) return true;
  }
  return false;
}

int CountAggregates(const ExprPtr& e) {
  if (e == nullptr) return 0;
  int n = IsAggregateCall(*e) ? 1 : 0;
  for (const ExprPtr& arg : e->args()) n += CountAggregates(arg);
  return n;
}

std::string Canonical(const ExprPtr& e) { return ToLower(e->ToString()); }

// Planning state shared across the select list and HAVING.
struct Plan {
  std::vector<GroupExpr> group_exprs;
  std::vector<std::string> group_canonical;
  std::vector<std::string> group_names;
  std::vector<AggregateSpec> aggregates;
  std::vector<std::string> agg_canonical;
  bool uses_grouping = false;
  bool uses_grouping_id = false;
  std::optional<std::vector<GroupingSet>> explicit_sets;
  // Boundary indices into group_exprs for the compound algebra.
  size_t num_plain = 0, num_rollup = 0, num_cube = 0;
};

// Finds or creates an AggregateSpec for the call node `e`; returns the
// output column name.
Result<std::string> InternAggregate(const Expr& e, const std::string& preferred,
                                    Plan* plan) {
  std::string canon = ToLower(e.ToString());
  for (size_t i = 0; i < plan->agg_canonical.size(); ++i) {
    if (plan->agg_canonical[i] == canon) {
      return plan->aggregates[i].output_name;
    }
  }
  AggregateSpec spec;
  std::string fn_name = e.name();
  if (fn_name.rfind(kDistinctPrefix, 0) == 0) {
    spec.distinct = true;
    fn_name = fn_name.substr(std::string(kDistinctPrefix).size());
  }
  spec.function = fn_name;

  // Split the parsed argument list into input expressions and trailing
  // constant parameters (e.g. max_n(x, 3) → args [x], params [3]): find the
  // shortest literal suffix that instantiates cleanly with matching arity.
  const std::vector<ExprPtr>& args = e.args();
  size_t literal_suffix = 0;
  while (literal_suffix < args.size() &&
         args[args.size() - 1 - literal_suffix]->kind() ==
             Expr::Kind::kLiteral) {
    ++literal_suffix;
  }
  AggregateRegistry& registry = AggregateRegistry::Global();
  bool resolved = false;
  for (size_t k = 0; k <= literal_suffix && !resolved; ++k) {
    std::vector<Value> params;
    for (size_t i = args.size() - k; i < args.size(); ++i) {
      params.push_back(args[i]->literal());
    }
    Result<AggregateFunctionPtr> made = registry.Make(fn_name, params);
    if (made.ok() &&
        (*made)->num_args() == static_cast<int>(args.size() - k)) {
      spec.params = std::move(params);
      spec.args.assign(args.begin(),
                       args.begin() + static_cast<ptrdiff_t>(args.size() - k));
      resolved = true;
    }
  }
  if (!resolved) {
    return Status::InvalidArgument("cannot resolve aggregate call " +
                                   e.ToString());
  }
  spec.output_name =
      preferred.empty()
          ? fn_name + "_" + std::to_string(plan->aggregates.size())
          : preferred;
  // Keep output names unique.
  for (const AggregateSpec& existing : plan->aggregates) {
    if (existing.output_name == spec.output_name) {
      spec.output_name += "_" + std::to_string(plan->aggregates.size());
      break;
    }
  }
  plan->aggregates.push_back(spec);
  plan->agg_canonical.push_back(std::move(canon));
  return plan->aggregates.back().output_name;
}

// Rewrites an expression over base-table rows into one over the cube result
// relation: grouping expressions and aggregate calls become column
// references; anything else must be composed of those plus literals.
// `preferred` names the aggregate output when the whole expression is one
// aggregate call with an alias.
Result<ExprPtr> RewriteOverResult(const ExprPtr& e,
                                  const std::string& preferred, Plan* plan) {
  std::string canon = Canonical(e);
  for (size_t k = 0; k < plan->group_canonical.size(); ++k) {
    if (canon == plan->group_canonical[k]) {
      return Expr::Column(plan->group_names[k]);
    }
  }
  // A bare column ref may also name a grouping column by its alias
  // ("GROUP BY Day(Time) AS day ... SELECT day").
  if (e->kind() == Expr::Kind::kColumnRef) {
    for (const std::string& name : plan->group_names) {
      if (EqualsIgnoreCase(e->name(), name)) return Expr::Column(name);
    }
  }
  switch (e->kind()) {
    case Expr::Kind::kLiteral:
      return e;
    case Expr::Kind::kColumnRef:
      return Status::InvalidArgument(
          "column " + e->name() +
          " must appear in the GROUP BY clause or inside an aggregate");
    case Expr::Kind::kCall: {
      if (EqualsIgnoreCase(e->name(), "grouping_id")) {
        // GROUPING_ID(): the grouping-set bitmask of the row.
        if (!e->args().empty()) {
          return Status::InvalidArgument("GROUPING_ID takes no arguments");
        }
        plan->uses_grouping_id = true;
        return Expr::Column("grouping_id");
      }
      if (EqualsIgnoreCase(e->name(), "grouping")) {
        // GROUPING(col): TRUE when the column is an ALL/super-aggregate
        // value in this row (Section 3.3's discriminator).
        if (e->args().size() != 1) {
          return Status::InvalidArgument("GROUPING takes one argument");
        }
        const ExprPtr& arg = e->args()[0];
        std::string arg_canon = Canonical(arg);
        for (size_t k = 0; k < plan->group_canonical.size(); ++k) {
          bool matches = arg_canon == plan->group_canonical[k] ||
                         (arg->kind() == Expr::Kind::kColumnRef &&
                          EqualsIgnoreCase(arg->name(), plan->group_names[k]));
          if (matches) {
            plan->uses_grouping = true;
            return Expr::Column("grouping_" + plan->group_names[k]);
          }
        }
        return Status::InvalidArgument(
            "GROUPING argument is not a grouping column: " +
            e->args()[0]->ToString());
      }
      if (IsAggregateCall(*e)) {
        DATACUBE_ASSIGN_OR_RETURN(std::string out_name,
                                  InternAggregate(*e, preferred, plan));
        return Expr::Column(out_name);
      }
      // Scalar call over rewritten children.
      std::vector<ExprPtr> new_args;
      for (const ExprPtr& arg : e->args()) {
        DATACUBE_ASSIGN_OR_RETURN(ExprPtr rewritten,
                                  RewriteOverResult(arg, "", plan));
        new_args.push_back(std::move(rewritten));
      }
      return Expr::Call(e->name(), std::move(new_args));
    }
    case Expr::Kind::kUnary: {
      DATACUBE_ASSIGN_OR_RETURN(ExprPtr operand,
                                RewriteOverResult(e->args()[0], "", plan));
      return Expr::Unary(e->unary_op(), std::move(operand));
    }
    case Expr::Kind::kBinary: {
      DATACUBE_ASSIGN_OR_RETURN(ExprPtr lhs,
                                RewriteOverResult(e->args()[0], "", plan));
      DATACUBE_ASSIGN_OR_RETURN(ExprPtr rhs,
                                RewriteOverResult(e->args()[1], "", plan));
      return Expr::Binary(e->binary_op(), std::move(lhs), std::move(rhs));
    }
    case Expr::Kind::kCase: {
      std::vector<ExprPtr> rewritten;
      for (const ExprPtr& arg : e->args()) {
        DATACUBE_ASSIGN_OR_RETURN(ExprPtr r, RewriteOverResult(arg, "", plan));
        rewritten.push_back(std::move(r));
      }
      size_t num_branches =
          (rewritten.size() - (e->case_has_else() ? 1 : 0)) / 2;
      std::vector<std::pair<ExprPtr, ExprPtr>> branches;
      for (size_t b = 0; b < num_branches; ++b) {
        branches.emplace_back(rewritten[2 * b], rewritten[2 * b + 1]);
      }
      return Expr::Case(std::move(branches),
                        e->case_has_else() ? rewritten.back() : nullptr);
    }
  }
  return Status::Internal("corrupt expression");
}

// Names a grouping expression: clause alias, else the alias of a matching
// select item, else its printed form.
std::string GroupName(const GroupItem& item,
                      const std::vector<SelectItem>& select_list) {
  if (!item.alias.empty()) return item.alias;
  std::string canon = Canonical(item.expr);
  for (const SelectItem& s : select_list) {
    if (!s.star && !s.alias.empty() && Canonical(s.expr) == canon) {
      return s.alias;
    }
  }
  return item.expr->ToString();
}

Status AddGroupExprs(const std::vector<GroupItem>& items,
                     const std::vector<SelectItem>& select_list, Plan* plan) {
  for (const GroupItem& item : items) {
    std::string canon = Canonical(item.expr);
    for (const std::string& existing : plan->group_canonical) {
      if (existing == canon) {
        return Status::InvalidArgument("duplicate grouping expression: " +
                                       item.expr->ToString());
      }
    }
    plan->group_exprs.push_back(
        GroupExpr{item.expr, GroupName(item, select_list)});
    plan->group_canonical.push_back(std::move(canon));
    plan->group_names.push_back(plan->group_exprs.back().name);
  }
  return Status::OK();
}

// ------------------------------------------------------------- N_tile
//
// The Red Brick N_tile(expression, n) of Section 1.2 is not a row-local
// function: it buckets each row by the whole table's value distribution
// ("GROUP BY N_tile(Temp, 10) as Percentile"). The engine expands it before
// planning: every distinct N_tile call becomes a hidden precomputed column
// on the (WHERE-filtered) input, and all references rewrite to that column.

struct NTileExpansion {
  // canonical call text -> hidden column name
  std::unordered_map<std::string, std::string> columns;
  // parallel arrays of the calls to compute
  std::vector<ExprPtr> value_exprs;
  std::vector<int64_t> buckets;
  std::vector<std::string> names;
};

bool IsNTileCall(const Expr& e) {
  return e.kind() == Expr::Kind::kCall && EqualsIgnoreCase(e.name(), "n_tile");
}

// Rewrites `e`, collecting N_tile calls into `expansion`. Returns the
// (possibly unchanged) expression.
Result<ExprPtr> RewriteNTiles(const ExprPtr& e, NTileExpansion* expansion) {
  if (e == nullptr) return e;
  if (IsNTileCall(*e)) {
    if (e->args().size() != 2 ||
        e->args()[1]->kind() != Expr::Kind::kLiteral ||
        e->args()[1]->literal().kind() != Value::Kind::kInt64) {
      return Status::InvalidArgument(
          "n_tile(expression, n) requires a constant integer n");
    }
    int64_t n = e->args()[1]->literal().int64_value();
    if (n < 1) return Status::OutOfRange("n_tile buckets must be >= 1");
    std::string canon = ToLower(e->ToString());
    auto it = expansion->columns.find(canon);
    if (it == expansion->columns.end()) {
      std::string name =
          "$ntile" + std::to_string(expansion->value_exprs.size());
      expansion->columns.emplace(canon, name);
      expansion->value_exprs.push_back(e->args()[0]);
      expansion->buckets.push_back(n);
      expansion->names.push_back(name);
      return Expr::Column(std::move(name));
    }
    return Expr::Column(it->second);
  }
  if (e->args().empty()) return e;
  std::vector<ExprPtr> rewritten;
  bool changed = false;
  for (const ExprPtr& arg : e->args()) {
    DATACUBE_ASSIGN_OR_RETURN(ExprPtr r, RewriteNTiles(arg, expansion));
    changed |= r != arg;
    rewritten.push_back(std::move(r));
  }
  if (!changed) return e;
  switch (e->kind()) {
    case Expr::Kind::kUnary:
      return Expr::Unary(e->unary_op(), rewritten[0]);
    case Expr::Kind::kBinary:
      return Expr::Binary(e->binary_op(), rewritten[0], rewritten[1]);
    case Expr::Kind::kCall:
      return Expr::Call(e->name(), std::move(rewritten));
    case Expr::Kind::kCase: {
      size_t num_branches =
          (rewritten.size() - (e->case_has_else() ? 1 : 0)) / 2;
      std::vector<std::pair<ExprPtr, ExprPtr>> branches;
      for (size_t b = 0; b < num_branches; ++b) {
        branches.emplace_back(rewritten[2 * b], rewritten[2 * b + 1]);
      }
      return Expr::Case(std::move(branches),
                        e->case_has_else() ? rewritten.back() : nullptr);
    }
    default:
      return Status::Internal("unexpected expression shape in n_tile rewrite");
  }
}

// Computes the bucket column for one N_tile call, aligned to `table`'s row
// order (equal-population buckets 1..n; NULL inputs stay NULL).
Result<std::vector<Value>> NTileColumn(const Table& table, ExprPtr value_expr,
                                       int64_t n) {
  DATACUBE_RETURN_IF_ERROR(value_expr->Bind(table.schema()));
  std::vector<Value> values(table.num_rows());
  std::vector<size_t> idx;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    DATACUBE_ASSIGN_OR_RETURN(values[r], value_expr->Evaluate(table, r));
    if (!values[r].is_special()) idx.push_back(r);
  }
  std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return values[a].Compare(values[b]) < 0;
  });
  std::vector<Value> out(table.num_rows(), Value::Null());
  size_t m = idx.size();
  for (size_t i = 0; i < m; ++i) {
    out[idx[i]] =
        Value::Int64(static_cast<int64_t>(i * static_cast<size_t>(n) / m) + 1);
  }
  return out;
}

// Expands every N_tile call in the statement over `filtered`, returning the
// augmented table and rewriting the statement's expressions in place.
Result<Table> ExpandNTiles(SelectStatement* stmt, Table filtered) {
  NTileExpansion expansion;
  for (SelectItem& item : stmt->select_list) {
    if (item.star) continue;
    DATACUBE_ASSIGN_OR_RETURN(item.expr, RewriteNTiles(item.expr, &expansion));
  }
  auto rewrite_items = [&](std::vector<GroupItem>& items) -> Status {
    for (GroupItem& item : items) {
      DATACUBE_ASSIGN_OR_RETURN(item.expr,
                                RewriteNTiles(item.expr, &expansion));
    }
    return Status::OK();
  };
  DATACUBE_RETURN_IF_ERROR(rewrite_items(stmt->group_by.plain));
  DATACUBE_RETURN_IF_ERROR(rewrite_items(stmt->group_by.rollup));
  DATACUBE_RETURN_IF_ERROR(rewrite_items(stmt->group_by.cube));
  for (std::vector<GroupItem>& set : stmt->group_by.grouping_sets) {
    DATACUBE_RETURN_IF_ERROR(rewrite_items(set));
  }
  if (stmt->having != nullptr) {
    DATACUBE_ASSIGN_OR_RETURN(stmt->having,
                              RewriteNTiles(stmt->having, &expansion));
  }
  for (OrderItem& item : stmt->order_by) {
    if (item.expr != nullptr) {
      DATACUBE_ASSIGN_OR_RETURN(item.expr,
                                RewriteNTiles(item.expr, &expansion));
    }
  }
  if (expansion.names.empty()) return filtered;

  std::vector<Field> fields;
  for (const std::string& name : expansion.names) {
    fields.push_back(Field{name, DataType::kInt64});
  }
  Table hidden{Schema{std::move(fields)}};
  hidden.Reserve(filtered.num_rows());
  std::vector<std::vector<Value>> columns;
  for (size_t i = 0; i < expansion.names.size(); ++i) {
    DATACUBE_ASSIGN_OR_RETURN(
        std::vector<Value> col,
        NTileColumn(filtered, expansion.value_exprs[i], expansion.buckets[i]));
    columns.push_back(std::move(col));
  }
  for (size_t r = 0; r < filtered.num_rows(); ++r) {
    std::vector<Value> row;
    for (const std::vector<Value>& col : columns) row.push_back(col[r]);
    DATACUBE_RETURN_IF_ERROR(hidden.AppendRow(row));
  }
  return filtered.ConcatColumns(hidden);
}

// Applies WHERE: returns the filtered table.
Result<Table> ApplyWhere(const Table& input, const ExprPtr& where) {
  if (where == nullptr) return input;
  if (ContainsAggregate(where)) {
    return Status::InvalidArgument("aggregates are not allowed in WHERE");
  }
  obs::ScopedSpan span("where_filter");
  DATACUBE_RETURN_IF_ERROR(where->Bind(input.schema()));
  std::vector<bool> mask(input.num_rows());
  size_t kept = 0;
  for (size_t r = 0; r < input.num_rows(); ++r) {
    DATACUBE_ASSIGN_OR_RETURN(Value v, where->Evaluate(input, r));
    mask[r] = !v.is_special() && v.bool_value();
    kept += mask[r] ? 1 : 0;
  }
  if (span.active()) {
    span.Attr("rows_in", static_cast<uint64_t>(input.num_rows()));
    span.Attr("rows_out", static_cast<uint64_t>(kept));
  }
  return input.FilterRows(mask);
}

// ---- Partition pruning ----------------------------------------------------
//
// When the FROM source is a PartitionedCube, the scan is the concatenation
// of the store's windows — and WHERE bounds on the partition key let whole
// windows be skipped before a row is touched. Bound extraction is
// deliberately conservative (superset-safe): only `key <cmp> INT-literal`
// conjuncts tighten the range, anything else contributes no bound, and the
// full WHERE still runs over the surviving rows afterwards.

void TightenLow(std::optional<int64_t>* lo, int64_t v) {
  *lo = lo->has_value() ? std::max(**lo, v) : v;
}

void TightenHigh(std::optional<int64_t>* hi, int64_t v) {
  *hi = hi->has_value() ? std::min(**hi, v) : v;
}

void ExtractPartitionBounds(const ExprPtr& e, const std::string& column,
                            std::optional<int64_t>* lo,
                            std::optional<int64_t>* hi) {
  if (e == nullptr || e->kind() != Expr::Kind::kBinary) return;
  const BinaryOp op = e->binary_op();
  if (op == BinaryOp::kAnd) {
    ExtractPartitionBounds(e->args()[0], column, lo, hi);
    ExtractPartitionBounds(e->args()[1], column, lo, hi);
    return;
  }
  const std::string* name = e->args()[0]->AsColumnName();
  const Expr* lit = e->args()[1].get();
  bool flipped = false;  // literal <cmp> column
  if (name == nullptr) {
    name = e->args()[1]->AsColumnName();
    lit = e->args()[0].get();
    flipped = true;
  }
  if (name == nullptr || !EqualsIgnoreCase(*name, column)) return;
  if (lit->kind() != Expr::Kind::kLiteral ||
      lit->literal().kind() != Value::Kind::kInt64) {
    return;
  }
  const int64_t v = lit->literal().int64_value();
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  switch (op) {
    case BinaryOp::kEq:
      TightenLow(lo, v);
      TightenHigh(hi, v);
      break;
    case BinaryOp::kLt:  // col < v, or (flipped) v < col
      if (!flipped) {
        TightenHigh(hi, v == kMin ? v : v - 1);
      } else {
        TightenLow(lo, v == kMax ? v : v + 1);
      }
      break;
    case BinaryOp::kLe:
      if (!flipped) {
        TightenHigh(hi, v);
      } else {
        TightenLow(lo, v);
      }
      break;
    case BinaryOp::kGt:
      if (!flipped) {
        TightenLow(lo, v == kMax ? v : v + 1);
      } else {
        TightenHigh(hi, v == kMin ? v : v - 1);
      }
      break;
    case BinaryOp::kGe:
      if (!flipped) {
        TightenLow(lo, v);
      } else {
        TightenHigh(hi, v);
      }
      break;
    default:
      break;
  }
}

struct ScanInfo {
  bool partitioned = false;
  PartitionPruneStats prune;
};

// Resolves the FROM source and applies WHERE: plain tables filter in
// place; a partitioned store scans only the windows surviving its
// partition-key bounds (then the full WHERE runs over the survivors).
Result<Table> ResolveScanAndFilter(const SelectStatement& stmt,
                                   const Catalog& catalog, ScanInfo* info) {
  std::shared_ptr<PartitionedCube> store =
      catalog.GetPartitioned(stmt.from_table);
  if (store == nullptr) {
    DATACUBE_ASSIGN_OR_RETURN(const Table* base,
                              catalog.Get(stmt.from_table));
    return ApplyWhere(*base, stmt.where);
  }
  info->partitioned = true;
  std::optional<int64_t> lo;
  std::optional<int64_t> hi;
  ExtractPartitionBounds(stmt.where, store->options().partition_column, &lo,
                         &hi);
  DATACUBE_ASSIGN_OR_RETURN(Table rows,
                            store->PrunedRows(lo, hi, &info->prune));
  return ApplyWhere(rows, stmt.where);
}

void FillPartitionStats(const ScanInfo& info, CubeStats* stats) {
  if (stats == nullptr || !info.partitioned) return;
  stats->partition_source = true;
  stats->partitions_total = info.prune.total;
  stats->partitions_scanned = info.prune.scanned;
  stats->partitions_pruned = info.prune.pruned;
}

// Evaluates `exprs` (already bound) into a projection table with `names`.
Result<Table> Project(const Table& input, const std::vector<ExprPtr>& exprs,
                      const std::vector<std::string>& names) {
  std::vector<Field> fields;
  for (size_t i = 0; i < exprs.size(); ++i) {
    fields.push_back(Field{names[i], exprs[i]->output_type(),
                           /*nullable=*/true, /*allow_all=*/true});
  }
  Table out{Schema{std::move(fields)}};
  out.Reserve(input.num_rows());
  for (size_t r = 0; r < input.num_rows(); ++r) {
    std::vector<Value> row;
    row.reserve(exprs.size());
    for (const ExprPtr& e : exprs) {
      DATACUBE_ASSIGN_OR_RETURN(Value v, e->Evaluate(input, r));
      row.push_back(std::move(v));
    }
    DATACUBE_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

// Applies ORDER BY and LIMIT to the projected output.
Result<Table> ApplyOrderAndLimit(Table table,
                                 const std::vector<OrderItem>& order_by,
                                 int64_t limit) {
  if (!order_by.empty()) {
    // Evaluate each key (ordinal → existing column; expression → bound
    // against the output schema).
    std::vector<std::vector<Value>> keys;
    std::vector<bool> ascending;
    for (const OrderItem& item : order_by) {
      std::vector<Value> key(table.num_rows());
      if (item.ordinal > 0) {
        size_t col = static_cast<size_t>(item.ordinal - 1);
        if (col >= table.num_columns()) {
          return Status::OutOfRange("ORDER BY ordinal out of range");
        }
        for (size_t r = 0; r < table.num_rows(); ++r) {
          key[r] = table.GetValue(r, col);
        }
      } else {
        DATACUBE_RETURN_IF_ERROR(item.expr->Bind(table.schema()));
        for (size_t r = 0; r < table.num_rows(); ++r) {
          DATACUBE_ASSIGN_OR_RETURN(key[r], item.expr->Evaluate(table, r));
        }
      }
      keys.push_back(std::move(key));
      ascending.push_back(item.ascending);
    }
    std::vector<size_t> indices(table.num_rows());
    std::iota(indices.begin(), indices.end(), 0);
    std::stable_sort(indices.begin(), indices.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < keys.size(); ++k) {
        int cmp = keys[k][a].Compare(keys[k][b]);
        if (cmp != 0) return ascending[k] ? cmp < 0 : cmp > 0;
      }
      return false;
    });
    DATACUBE_ASSIGN_OR_RETURN(table, table.TakeRows(indices));
  }
  if (limit >= 0 && static_cast<size_t>(limit) < table.num_rows()) {
    std::vector<size_t> head(static_cast<size_t>(limit));
    std::iota(head.begin(), head.end(), 0);
    DATACUBE_ASSIGN_OR_RETURN(table, table.TakeRows(head));
  }
  return table;
}

// Non-aggregate SELECT: projection over the filtered base table. ORDER BY
// is evaluated over the pre-projection rows, so sorting by base columns
// that are not selected works (standard SQL behavior).
Result<Table> ExecuteProjection(const SelectStatement& stmt, Table filtered) {
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (const SelectItem& item : stmt.select_list) {
    if (item.star) {
      for (size_t c = 0; c < filtered.num_columns(); ++c) {
        const std::string& name = filtered.schema().field(c).name;
        if (!name.empty() && name[0] == '$') continue;  // hidden columns
        exprs.push_back(Expr::Column(name));
        names.push_back(name);
      }
      continue;
    }
    exprs.push_back(item.expr);
    names.push_back(item.alias.empty() ? item.expr->ToString() : item.alias);
  }
  for (const ExprPtr& e : exprs) {
    DATACUBE_RETURN_IF_ERROR(e->Bind(filtered.schema()));
  }

  if (!stmt.order_by.empty()) {
    std::vector<std::vector<Value>> keys;
    std::vector<bool> ascending;
    for (const OrderItem& item : stmt.order_by) {
      ExprPtr key;
      if (item.ordinal > 0) {
        if (static_cast<size_t>(item.ordinal) > exprs.size()) {
          return Status::OutOfRange("ORDER BY ordinal out of range");
        }
        key = exprs[static_cast<size_t>(item.ordinal - 1)];
      } else {
        // Try an output alias first, then any expression over the base.
        key = item.expr;
        if (item.expr->kind() == Expr::Kind::kColumnRef) {
          for (size_t i = 0; i < names.size(); ++i) {
            if (EqualsIgnoreCase(item.expr->name(), names[i])) {
              key = exprs[i];
              break;
            }
          }
        }
        DATACUBE_RETURN_IF_ERROR(key->Bind(filtered.schema()));
      }
      std::vector<Value> column(filtered.num_rows());
      for (size_t r = 0; r < filtered.num_rows(); ++r) {
        DATACUBE_ASSIGN_OR_RETURN(column[r], key->Evaluate(filtered, r));
      }
      keys.push_back(std::move(column));
      ascending.push_back(item.ascending);
    }
    std::vector<size_t> indices(filtered.num_rows());
    std::iota(indices.begin(), indices.end(), 0);
    std::stable_sort(indices.begin(), indices.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < keys.size(); ++k) {
        int cmp = keys[k][a].Compare(keys[k][b]);
        if (cmp != 0) return ascending[k] ? cmp < 0 : cmp > 0;
      }
      return false;
    });
    DATACUBE_ASSIGN_OR_RETURN(filtered, filtered.TakeRows(indices));
  }

  DATACUBE_ASSIGN_OR_RETURN(Table out, Project(filtered, exprs, names));
  return ApplyOrderAndLimit(std::move(out), /*order_by=*/{}, stmt.limit);
}

// Everything the aggregation path derives from the statement before
// touching data: the cube spec plus the rewritten output / HAVING / ORDER BY
// expressions over the future cube result relation. EXPLAIN shares this with
// execution so the rendered plan is exactly what would run.
struct AggregationPlan {
  CubeSpec spec;
  std::vector<ExprPtr> output_exprs;
  std::vector<std::string> output_names;
  ExprPtr having;
  std::vector<ExprPtr> order_keys;
  std::vector<bool> order_ascending;
  int64_t limit = -1;
};

Result<AggregationPlan> PlanAggregation(const SelectStatement& stmt,
                                        const EngineOptions& options) {
  Plan plan;
  const GroupByClause& gb = stmt.group_by;
  if (!gb.grouping_sets.empty()) {
    // GROUPING SETS: the grouping columns are the ordered union of the
    // expressions the sets mention; each set becomes a bitmask.
    std::vector<GroupingSet> sets;
    for (const std::vector<GroupItem>& set : gb.grouping_sets) {
      GroupingSet mask = 0;
      for (const GroupItem& item : set) {
        std::string canon = Canonical(item.expr);
        size_t k = 0;
        for (; k < plan.group_canonical.size(); ++k) {
          if (plan.group_canonical[k] == canon) break;
        }
        if (k == plan.group_canonical.size()) {
          DATACUBE_RETURN_IF_ERROR(
              AddGroupExprs({item}, stmt.select_list, &plan));
        }
        mask |= (1ULL << k);
      }
      sets.push_back(mask);
    }
    plan.explicit_sets = std::move(sets);
    plan.num_plain = plan.group_exprs.size();
  } else {
    DATACUBE_RETURN_IF_ERROR(AddGroupExprs(gb.plain, stmt.select_list, &plan));
    plan.num_plain = plan.group_exprs.size();
    DATACUBE_RETURN_IF_ERROR(AddGroupExprs(gb.rollup, stmt.select_list, &plan));
    plan.num_rollup = plan.group_exprs.size() - plan.num_plain;
    DATACUBE_RETURN_IF_ERROR(AddGroupExprs(gb.cube, stmt.select_list, &plan));
    plan.num_cube =
        plan.group_exprs.size() - plan.num_plain - plan.num_rollup;
  }

  // Rewrite the select list and HAVING over the future cube result.
  std::vector<ExprPtr> output_exprs;
  std::vector<std::string> output_names;
  for (const SelectItem& item : stmt.select_list) {
    if (item.star) {
      return Status::InvalidArgument("SELECT * is invalid with GROUP BY");
    }
    std::string preferred =
        (item.expr->kind() == Expr::Kind::kCall && IsAggregateCall(*item.expr))
            ? item.alias
            : "";
    DATACUBE_ASSIGN_OR_RETURN(ExprPtr rewritten,
                              RewriteOverResult(item.expr, preferred, &plan));
    output_exprs.push_back(std::move(rewritten));
    output_names.push_back(item.alias.empty() ? item.expr->ToString()
                                              : item.alias);
  }
  ExprPtr having;
  if (stmt.having != nullptr) {
    DATACUBE_ASSIGN_OR_RETURN(having,
                              RewriteOverResult(stmt.having, "", &plan));
  }
  // ORDER BY keys are rewritten over the cube result too, so sorting by an
  // aggregate expression works whether or not it appears in the select list
  // (ordinals refer to select positions). Sorting happens on the result
  // relation before projection.
  std::vector<ExprPtr> order_keys;
  std::vector<bool> order_ascending;
  for (const OrderItem& item : stmt.order_by) {
    ExprPtr key;
    if (item.ordinal > 0) {
      if (static_cast<size_t>(item.ordinal) > output_exprs.size()) {
        return Status::OutOfRange("ORDER BY ordinal out of range");
      }
      key = output_exprs[static_cast<size_t>(item.ordinal - 1)];
    } else {
      // Try the output alias first (ORDER BY total), then the rewrite path.
      bool matched_alias = false;
      if (item.expr->kind() == Expr::Kind::kColumnRef) {
        for (size_t i = 0; i < output_names.size(); ++i) {
          if (EqualsIgnoreCase(item.expr->name(), output_names[i])) {
            key = output_exprs[i];
            matched_alias = true;
            break;
          }
        }
      }
      if (!matched_alias) {
        DATACUBE_ASSIGN_OR_RETURN(key,
                                  RewriteOverResult(item.expr, "", &plan));
      }
    }
    order_keys.push_back(std::move(key));
    order_ascending.push_back(item.ascending);
  }
  if (plan.aggregates.empty()) {
    // A grouped query with no aggregates degenerates to COUNT(*) being
    // computed and discarded; keep the operator contract satisfied.
    AggregateSpec hidden;
    hidden.function = "count_star";
    hidden.output_name = "$count";
    plan.aggregates.push_back(std::move(hidden));
  }

  CubeSpec spec;
  if (plan.explicit_sets.has_value()) {
    spec.group_by = plan.group_exprs;
    spec.explicit_sets = plan.explicit_sets;
  } else {
    spec.group_by.assign(plan.group_exprs.begin(),
                         plan.group_exprs.begin() + plan.num_plain);
    spec.rollup.assign(
        plan.group_exprs.begin() + plan.num_plain,
        plan.group_exprs.begin() + plan.num_plain + plan.num_rollup);
    spec.cube.assign(
        plan.group_exprs.begin() + plan.num_plain + plan.num_rollup,
        plan.group_exprs.end());
  }
  spec.aggregates = plan.aggregates;
  spec.all_mode = options.all_mode;
  spec.add_grouping_columns = plan.uses_grouping;
  spec.add_grouping_id = plan.uses_grouping_id;

  AggregationPlan out;
  out.spec = std::move(spec);
  out.output_exprs = std::move(output_exprs);
  out.output_names = std::move(output_names);
  out.having = std::move(having);
  out.order_keys = std::move(order_keys);
  out.order_ascending = std::move(order_ascending);
  out.limit = stmt.limit;
  return out;
}

// Aggregation SELECT: plan the cube, execute, filter (HAVING), project.
// When `stats_out` is non-null it receives the cube execution stats
// (EXPLAIN ANALYZE reads per-grouping-set cell counts from it).
Result<Table> ExecuteAggregation(const SelectStatement& stmt,
                                 const Table& filtered,
                                 const EngineOptions& options,
                                 CubeStats* stats_out = nullptr) {
  DATACUBE_ASSIGN_OR_RETURN(AggregationPlan ap,
                            PlanAggregation(stmt, options));

  DATACUBE_ASSIGN_OR_RETURN(CubeResult cube,
                            ExecuteCube(filtered, ap.spec, options.cube));
  if (stats_out != nullptr) *stats_out = cube.stats;
  Table result = std::move(cube.table);

  if (ap.having != nullptr) {
    obs::ScopedSpan span("having_filter");
    DATACUBE_RETURN_IF_ERROR(ap.having->Bind(result.schema()));
    std::vector<bool> mask(result.num_rows());
    for (size_t r = 0; r < result.num_rows(); ++r) {
      DATACUBE_ASSIGN_OR_RETURN(Value v, ap.having->Evaluate(result, r));
      mask[r] = !v.is_special() && v.bool_value();
    }
    size_t before = result.num_rows();
    DATACUBE_ASSIGN_OR_RETURN(result, result.FilterRows(mask));
    if (span.active()) {
      span.Attr("rows_in", static_cast<uint64_t>(before));
      span.Attr("rows_out", static_cast<uint64_t>(result.num_rows()));
    }
  }

  // Sort the result relation by the rewritten ORDER BY keys.
  if (!ap.order_keys.empty()) {
    obs::ScopedSpan span("order_by");
    std::vector<std::vector<Value>> keys;
    for (const ExprPtr& key : ap.order_keys) {
      DATACUBE_RETURN_IF_ERROR(key->Bind(result.schema()));
      std::vector<Value> column(result.num_rows());
      for (size_t r = 0; r < result.num_rows(); ++r) {
        DATACUBE_ASSIGN_OR_RETURN(column[r], key->Evaluate(result, r));
      }
      keys.push_back(std::move(column));
    }
    std::vector<size_t> indices(result.num_rows());
    std::iota(indices.begin(), indices.end(), 0);
    std::stable_sort(indices.begin(), indices.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < keys.size(); ++k) {
        int cmp = keys[k][a].Compare(keys[k][b]);
        if (cmp != 0) return ap.order_ascending[k] ? cmp < 0 : cmp > 0;
      }
      return false;
    });
    DATACUBE_ASSIGN_OR_RETURN(result, result.TakeRows(indices));
  }

  obs::ScopedSpan project_span("project_output");
  for (const ExprPtr& e : ap.output_exprs) {
    DATACUBE_RETURN_IF_ERROR(e->Bind(result.schema()));
  }
  DATACUBE_ASSIGN_OR_RETURN(
      Table projected, Project(result, ap.output_exprs, ap.output_names));
  return ApplyOrderAndLimit(std::move(projected), /*order_by=*/{}, ap.limit);
}

// Shared select driver: filter, expand N_tiles, dispatch. `stats_out`
// (optional) receives the cube stats of an aggregation query.
Result<Table> ExecuteSelectImpl(const SelectStatement& stmt,
                                const Catalog& catalog,
                                const EngineOptions& options,
                                CubeStats* stats_out) {
  obs::ScopedSpan span("execute_select");
  // Serving layer's deadline/cancel hook: fail fast before touching the
  // table (a pre-expired deadline never starts scanning); the cube operator
  // re-polls the same control at its work boundaries.
  DATACUBE_RETURN_IF_ERROR(CheckControl(options.cube.control));
  ScanInfo scan;
  DATACUBE_ASSIGN_OR_RETURN(Table filtered,
                            ResolveScanAndFilter(stmt, catalog, &scan));
  if (span.active()) {
    span.Attr("table", stmt.from_table);
    span.Attr("rows", static_cast<uint64_t>(filtered.num_rows()));
    if (scan.partitioned) {
      span.Attr("partitions_scanned",
                static_cast<uint64_t>(scan.prune.scanned));
      span.Attr("partitions_pruned",
                static_cast<uint64_t>(scan.prune.pruned));
    }
  }

  // Expand Red Brick N_tile calls into precomputed hidden columns (the
  // statement copy is rewritten to reference them).
  SelectStatement prepared = stmt;
  DATACUBE_ASSIGN_OR_RETURN(filtered,
                            ExpandNTiles(&prepared, std::move(filtered)));

  bool any_aggregate = prepared.having != nullptr;
  for (const SelectItem& item : prepared.select_list) {
    if (!item.star && ContainsAggregate(item.expr)) any_aggregate = true;
  }
  bool is_projection = prepared.group_by.empty() && !any_aggregate;
  obs::MetricsRegistry::Global()
      .GetCounter("datacube_sql_selects_total",
                  "SQL SELECT statements executed, by query shape",
                  {{"kind", is_projection ? "projection" : "aggregation"}})
      .Inc();
  if (is_projection) {
    // Projections bypass ExecuteCube, so they emit their (thin) profile
    // here; aggregations profile inside the cube operator.
    auto start = std::chrono::steady_clock::now();
    uint64_t input_rows = filtered.num_rows();
    Result<Table> out = ExecuteProjection(prepared, std::move(filtered));
    if (out.ok()) {
      obs::QueryProfileLog& log = obs::QueryProfileLog::Global();
      obs::QueryProfile p;
      const std::string* text = obs::CurrentQueryText();
      p.query = text != nullptr
                    ? *text
                    : "projection over " + prepared.from_table;
      p.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      p.algorithm = "projection";
      p.input_rows = input_rows;
      p.output_cells = out.value().num_rows();
      double threshold =
          log.EffectiveSlowThresholdMs(options.cube.slow_query_ms);
      p.slow = threshold >= 0 && p.wall_ms >= threshold;
      log.Record(std::move(p));
    }
    return out;
  }
  Result<Table> out = ExecuteAggregation(prepared, filtered, options,
                                         stats_out);
  // ExecuteAggregation overwrites *stats_out wholesale; the partition
  // accounting belongs to the scan we already did, so restore it on top.
  FillPartitionStats(scan, stats_out);
  return out;
}

// Renders the EXPLAIN [ANALYZE] text for one select branch. The plan half
// reuses PlanAggregation + ExplainCube, so what prints is exactly what
// ExecuteSelect would run; ANALYZE additionally executes the branch under a
// trace and appends per-grouping-set actual-vs-estimated cell counts and the
// measured span tree.
Result<std::string> ExplainSelectText(const SelectStatement& stmt,
                                      const Catalog& catalog,
                                      const EngineOptions& options,
                                      bool analyze) {
  ScanInfo scan;
  DATACUBE_ASSIGN_OR_RETURN(Table filtered,
                            ResolveScanAndFilter(stmt, catalog, &scan));
  SelectStatement prepared = stmt;
  DATACUBE_ASSIGN_OR_RETURN(filtered,
                            ExpandNTiles(&prepared, std::move(filtered)));

  // One line of partition accounting whenever the source is partitioned —
  // the EXPLAIN proof that WHERE on the partition key skipped windows.
  std::string partition_line;
  if (scan.partitioned) {
    partition_line = "partitions: scanned=" +
                     std::to_string(scan.prune.scanned) +
                     "  pruned=" + std::to_string(scan.prune.pruned) +
                     "  total=" + std::to_string(scan.prune.total) + "\n";
  }

  bool any_aggregate = prepared.having != nullptr;
  for (const SelectItem& item : prepared.select_list) {
    if (!item.star && ContainsAggregate(item.expr)) any_aggregate = true;
  }
  std::string out;
  if (prepared.group_by.empty() && !any_aggregate) {
    out += "projection over " + prepared.from_table + " (" +
           std::to_string(filtered.num_rows()) + " rows after WHERE)\n";
    out += partition_line;
    if (!analyze) return out;
    obs::Trace trace("query");
    {
      obs::TraceScope scope(&trace);
      DATACUBE_ASSIGN_OR_RETURN(Table discarded,
                                ExecuteProjection(prepared, filtered));
      (void)discarded;
    }
    out += "trace:\n" + trace.Render();
    return out;
  }

  DATACUBE_ASSIGN_OR_RETURN(AggregationPlan ap,
                            PlanAggregation(prepared, options));
  DATACUBE_ASSIGN_OR_RETURN(std::string plan_text,
                            ExplainCube(filtered, ap.spec, options.cube));
  out += plan_text;
  out += partition_line;
  if (!analyze) return out;

  CubeStats stats;
  obs::Trace trace("query");
  {
    obs::TraceScope scope(&trace);
    DATACUBE_ASSIGN_OR_RETURN(
        Table discarded,
        ExecuteAggregation(prepared, filtered, options, &stats));
    (void)discarded;
  }
  std::vector<std::string> names;
  for (const GroupExpr& g : ap.spec.AllGroupExprs()) names.push_back(g.name);
  out += "grouping sets (actual vs estimated cells):\n";
  for (const GroupingSetExecStats& ps : stats.per_set) {
    out += "  " + GroupingSetToString(ps.set, names) +
           "  actual=" + std::to_string(ps.actual_cells);
    if (ps.est_cells >= 0) {
      out +=
          "  estimated=" + std::to_string(static_cast<uint64_t>(ps.est_cells));
    }
    // Budgeted-materialization provenance: which materialized ancestor
    // actually answered this set, or that it was materialized itself.
    if (stats.lattice_budget_bytes > 0) {
      if (ps.materialized) {
        out += "  materialized";
      } else if (ps.answered_from >= 0) {
        out += "  <- fold from " +
               GroupingSetToString(
                   static_cast<GroupingSet>(ps.answered_from), names);
      } else {
        out += "  <- base scan";
      }
    }
    out += "\n";
  }
  if (stats.lattice_budget_bytes > 0) {
    out += "lattice: budget_bytes=" +
           std::to_string(stats.lattice_budget_bytes) +
           "  views=" + std::to_string(stats.lattice_views_materialized) +
           "  bytes_materialized=" +
           std::to_string(stats.lattice_bytes_materialized) +
           "  ancestor_folds=" + std::to_string(stats.lattice_ancestor_folds) +
           "  fold_cells=" + std::to_string(stats.lattice_fold_cells) +
           "  base_fallbacks=" + std::to_string(stats.lattice_base_fallbacks) +
           "\n";
  }
  out += "kernel: hash_probes=" + std::to_string(stats.hash_probes) +
         "  max_probe=" + std::to_string(stats.hash_max_probe) +
         "  rehashes=" + std::to_string(stats.hash_rehashes) +
         "  arena_bytes=" + std::to_string(stats.arena_bytes) +
         "  heap_state_allocs=" + std::to_string(stats.heap_state_allocs) +
         "\n";
  if (stats.threads_used > 1) {
    char walls[96];
    std::snprintf(walls, sizeof(walls),
                  "  scan=%.6fs  merge=%.6fs  cascade=%.6fs",
                  stats.scan_seconds, stats.merge_seconds,
                  stats.cascade_seconds);
    out += "parallel: threads=" + std::to_string(stats.threads_used) +
           "  morsels=" + std::to_string(stats.morsels_dispatched) +
           "  partitions=" + std::to_string(stats.partitions) +
           "  merge_tasks=" + std::to_string(stats.merge_tasks) +
           "  cascade_tasks=" + std::to_string(stats.cascade_tasks) + walls +
           "\n";
  }
  out += "trace:\n" + trace.Render();
  return out;
}

}  // namespace

Result<Table> ExecuteSelect(const SelectStatement& stmt, const Catalog& catalog,
                            const EngineOptions& options) {
  return ExecuteSelectImpl(stmt, catalog, options, /*stats_out=*/nullptr);
}

namespace {

// Keeps the first occurrence of each distinct row (SQL UNION semantics).
Result<Table> DedupeRows(const Table& table) {
  std::unordered_map<std::vector<Value>, bool, ValueVectorHash> seen;
  std::vector<size_t> keep;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (seen.emplace(table.GetRow(r), true).second) keep.push_back(r);
  }
  return table.TakeRows(keep);
}

}  // namespace

Result<Table> ExecuteSql(const std::string& text, const Catalog& catalog,
                         const EngineOptions& options) {
  // Ambient query text for this thread: cube executions triggered by the
  // statement record it as QueryProfile::query instead of a spec digest.
  obs::QueryTextScope query_text(text);
  DATACUBE_ASSIGN_OR_RETURN(UnionQuery query, ParseQuery(text));
  if (query.explain != ExplainMode::kNone) {
    bool analyze = query.explain == ExplainMode::kAnalyze;
    std::string rendered;
    for (size_t i = 0; i < query.selects.size(); ++i) {
      if (query.selects.size() > 1) {
        rendered += "union branch " + std::to_string(i + 1) + ":\n";
      }
      DATACUBE_ASSIGN_OR_RETURN(
          std::string branch,
          ExplainSelectText(query.selects[i], catalog, options, analyze));
      rendered += branch;
    }
    // One result row per output line, so the plan prints like any relation.
    std::vector<Field> fields{
        Field{analyze ? "EXPLAIN ANALYZE" : "EXPLAIN", DataType::kString}};
    Table plan{Schema{std::move(fields)}};
    size_t start = 0;
    while (start <= rendered.size()) {
      size_t nl = rendered.find('\n', start);
      if (nl == std::string::npos) nl = rendered.size();
      if (nl > start || nl < rendered.size()) {
        DATACUBE_RETURN_IF_ERROR(plan.AppendRow(
            {Value::String(rendered.substr(start, nl - start))}));
      }
      start = nl + 1;
    }
    return plan;
  }
  DATACUBE_ASSIGN_OR_RETURN(Table result,
                            ExecuteSelect(query.selects[0], catalog, options));
  for (size_t i = 1; i < query.selects.size(); ++i) {
    DATACUBE_ASSIGN_OR_RETURN(
        Table branch, ExecuteSelect(query.selects[i], catalog, options));
    DATACUBE_RETURN_IF_ERROR(result.AppendTable(branch));
    if (query.distinct_union[i]) {
      DATACUBE_ASSIGN_OR_RETURN(result, DedupeRows(result));
    }
  }
  return result;
}

QueryStats Analyze(const SelectStatement& stmt) {
  QueryStats stats;
  stats.has_group_by = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.select_list) {
    if (!item.star) stats.num_aggregates += CountAggregates(item.expr);
  }
  stats.num_aggregates += CountAggregates(stmt.having);
  return stats;
}

}  // namespace datacube::sql
