#ifndef DATACUBE_SQL_CATALOG_H_
#define DATACUBE_SQL_CATALOG_H_

#include <string>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/table/table.h"

namespace datacube::sql {

/// A name → table binding used by the SQL engine. Lookup is
/// case-insensitive.
class Catalog {
 public:
  /// Registers a table; fails if the name is taken.
  Status Register(std::string name, Table table);

  /// Replaces or adds a table binding.
  void Put(std::string name, Table table);

  Result<const Table*> Get(const std::string& name) const;

  /// Sorted table names.
  std::vector<std::string> Names() const;

 private:
  std::vector<std::pair<std::string, Table>> tables_;
};

}  // namespace datacube::sql

#endif  // DATACUBE_SQL_CATALOG_H_
