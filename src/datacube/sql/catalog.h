#ifndef DATACUBE_SQL_CATALOG_H_
#define DATACUBE_SQL_CATALOG_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/table/table.h"

namespace datacube {
class PartitionedCube;
}  // namespace datacube

namespace datacube::sql {

/// A name → table binding used by the SQL engine. Lookup is
/// case-insensitive.
///
/// Tables are held by shared_ptr-to-const, so copying a Catalog copies
/// bindings, not data — the serving layer snapshots the catalog per query by
/// value and swaps the authoritative copy atomically, with in-flight queries
/// keeping their tables alive through their snapshot's references.
class Catalog {
 public:
  /// Registers a table; fails if the name is taken.
  Status Register(std::string name, Table table);
  Status RegisterShared(std::string name, std::shared_ptr<const Table> table);

  /// Replaces or adds a table binding.
  void Put(std::string name, Table table);
  void PutShared(std::string name, std::shared_ptr<const Table> table);

  /// Removes a binding; false if the name was not bound. Tables referenced
  /// by existing snapshot copies stay alive until those copies die.
  bool Drop(const std::string& name);

  Result<const Table*> Get(const std::string& name) const;
  Result<std::shared_ptr<const Table>> GetShared(
      const std::string& name) const;

  size_t size() const { return tables_.size(); }

  /// Sorted table names.
  std::vector<std::string> Names() const;

  // Partitioned stores, bound by name alongside plain tables. Unlike
  // tables these are shared MUTABLE objects (internally synchronized):
  // every catalog snapshot sees the same live store, so ingest is visible
  // to in-flight readers without republishing the catalog.
  void PutPartitioned(std::string name,
                      std::shared_ptr<PartitionedCube> cube);
  bool DropPartitioned(const std::string& name);
  /// The store bound to `name` (case-insensitive), or nullptr.
  std::shared_ptr<PartitionedCube> GetPartitioned(
      const std::string& name) const;
  /// Sorted partitioned-store names.
  std::vector<std::string> PartitionedNames() const;

 private:
  std::vector<std::pair<std::string, std::shared_ptr<const Table>>> tables_;
  std::vector<std::pair<std::string, std::shared_ptr<PartitionedCube>>>
      partitioned_;
};

}  // namespace datacube::sql

#endif  // DATACUBE_SQL_CATALOG_H_
