#include "datacube/sql/catalog.h"

#include <algorithm>

#include "datacube/common/str_util.h"

namespace datacube::sql {

Status Catalog::Register(std::string name, Table table) {
  return RegisterShared(std::move(name),
                        std::make_shared<const Table>(std::move(table)));
}

Status Catalog::RegisterShared(std::string name,
                               std::shared_ptr<const Table> table) {
  for (const auto& [existing, _] : tables_) {
    if (EqualsIgnoreCase(existing, name)) {
      return Status::AlreadyExists("table already registered: " + name);
    }
  }
  tables_.emplace_back(std::move(name), std::move(table));
  return Status::OK();
}

void Catalog::Put(std::string name, Table table) {
  PutShared(std::move(name), std::make_shared<const Table>(std::move(table)));
}

void Catalog::PutShared(std::string name,
                        std::shared_ptr<const Table> table) {
  for (auto& [existing, t] : tables_) {
    if (EqualsIgnoreCase(existing, name)) {
      t = std::move(table);
      return;
    }
  }
  tables_.emplace_back(std::move(name), std::move(table));
}

bool Catalog::Drop(const std::string& name) {
  for (auto it = tables_.begin(); it != tables_.end(); ++it) {
    if (EqualsIgnoreCase(it->first, name)) {
      tables_.erase(it);
      return true;
    }
  }
  return false;
}

Result<const Table*> Catalog::Get(const std::string& name) const {
  for (const auto& [existing, table] : tables_) {
    if (EqualsIgnoreCase(existing, name)) return table.get();
  }
  return Status::NotFound("no table named " + name);
}

Result<std::shared_ptr<const Table>> Catalog::GetShared(
    const std::string& name) const {
  for (const auto& [existing, table] : tables_) {
    if (EqualsIgnoreCase(existing, name)) return table;
  }
  return Status::NotFound("no table named " + name);
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void Catalog::PutPartitioned(std::string name,
                             std::shared_ptr<PartitionedCube> cube) {
  for (auto& [existing, c] : partitioned_) {
    if (EqualsIgnoreCase(existing, name)) {
      c = std::move(cube);
      return;
    }
  }
  partitioned_.emplace_back(std::move(name), std::move(cube));
}

bool Catalog::DropPartitioned(const std::string& name) {
  for (auto it = partitioned_.begin(); it != partitioned_.end(); ++it) {
    if (EqualsIgnoreCase(it->first, name)) {
      partitioned_.erase(it);
      return true;
    }
  }
  return false;
}

std::shared_ptr<PartitionedCube> Catalog::GetPartitioned(
    const std::string& name) const {
  for (const auto& [existing, cube] : partitioned_) {
    if (EqualsIgnoreCase(existing, name)) return cube;
  }
  return nullptr;
}

std::vector<std::string> Catalog::PartitionedNames() const {
  std::vector<std::string> names;
  names.reserve(partitioned_.size());
  for (const auto& [name, _] : partitioned_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace datacube::sql
