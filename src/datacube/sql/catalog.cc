#include "datacube/sql/catalog.h"

#include <algorithm>

#include "datacube/common/str_util.h"

namespace datacube::sql {

Status Catalog::Register(std::string name, Table table) {
  for (const auto& [existing, _] : tables_) {
    if (EqualsIgnoreCase(existing, name)) {
      return Status::AlreadyExists("table already registered: " + name);
    }
  }
  tables_.emplace_back(std::move(name), std::move(table));
  return Status::OK();
}

void Catalog::Put(std::string name, Table table) {
  for (auto& [existing, t] : tables_) {
    if (EqualsIgnoreCase(existing, name)) {
      t = std::move(table);
      return;
    }
  }
  tables_.emplace_back(std::move(name), std::move(table));
}

Result<const Table*> Catalog::Get(const std::string& name) const {
  for (const auto& [existing, table] : tables_) {
    if (EqualsIgnoreCase(existing, name)) return &table;
  }
  return Status::NotFound("no table named " + name);
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace datacube::sql
