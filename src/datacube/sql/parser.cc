#include "datacube/sql/parser.h"

#include <cstdlib>

#include "datacube/common/str_util.h"
#include "datacube/sql/lexer.h"

namespace datacube::sql {

namespace {

// Reserved words that terminate expression/identifier positions.
bool IsReserved(const Token& t) {
  if (t.kind != TokenKind::kIdentifier) return false;
  static const char* kReserved[] = {
      "select", "from",  "where",  "group",    "by",   "having", "order",
      "limit",  "as",    "asc",    "desc",     "and",  "or",     "not",
      "null",   "true",  "false",  "is",       "in",   "between", "rollup",
      "cube",   "sets",  "union",  "distinct", "like", "case",   "when",
      "then",   "else",  "end",
  };
  for (const char* kw : kReserved) {
    if (EqualsIgnoreCase(t.text, kw)) return true;
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<UnionQuery> ParseUnionQuery() {
    UnionQuery query;
    if (AcceptKeyword("EXPLAIN")) {
      query.explain =
          AcceptKeyword("ANALYZE") ? ExplainMode::kAnalyze : ExplainMode::kPlan;
    }
    query.distinct_union.push_back(false);  // index 0 unused
    DATACUBE_ASSIGN_OR_RETURN(SelectStatement first, ParseSelectBody());
    query.selects.push_back(std::move(first));
    while (AcceptKeyword("UNION")) {
      bool all = AcceptKeyword("ALL");
      DATACUBE_ASSIGN_OR_RETURN(SelectStatement next, ParseSelectBody());
      query.selects.push_back(std::move(next));
      query.distinct_union.push_back(!all);
    }
    AcceptSymbol(";");
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input: '" + Peek().text + "'");
    }
    return query;
  }

 private:
  Result<SelectStatement> ParseSelectBody() {
    DATACUBE_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStatement stmt;
    DATACUBE_RETURN_IF_ERROR(ParseSelectList(&stmt));
    DATACUBE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DATACUBE_ASSIGN_OR_RETURN(stmt.from_table, ExpectIdentifier("table name"));
    if (AcceptKeyword("WHERE")) {
      DATACUBE_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      DATACUBE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      DATACUBE_RETURN_IF_ERROR(ParseGroupBy(&stmt.group_by));
    }
    if (AcceptKeyword("HAVING")) {
      DATACUBE_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (AcceptKeyword("ORDER")) {
      DATACUBE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      DATACUBE_RETURN_IF_ERROR(ParseOrderBy(&stmt.order_by));
    }
    if (AcceptKeyword("LIMIT")) {
      const Token& t = Peek();
      if (t.kind != TokenKind::kNumber) {
        return Error("expected a number after LIMIT");
      }
      stmt.limit = std::strtoll(t.text.c_str(), nullptr, 10);
      ++pos_;
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  Status Error(const std::string& message) const {
    const Token& t = Peek();
    return Status::ParseError(message + " (line " + std::to_string(t.line) +
                              ":" + std::to_string(t.column) + ")");
  }

  bool AcceptKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error(std::string("expected ") + kw);
    }
    return Status::OK();
  }

  bool AcceptSymbol(const char* s) {
    if (Peek().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) return Error(std::string("expected '") + s + "'");
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    const Token& t = Peek();
    if (t.kind != TokenKind::kIdentifier || IsReserved(t)) {
      return Error(std::string("expected ") + what);
    }
    ++pos_;
    return t.text;
  }

  // ------------------------------------------------------------ clauses

  Status ParseSelectList(SelectStatement* stmt) {
    do {
      SelectItem item;
      if (Peek().IsSymbol("*")) {
        ++pos_;
        item.star = true;
      } else {
        DATACUBE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("AS")) {
          DATACUBE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
        } else if (Peek().kind == TokenKind::kIdentifier &&
                   !IsReserved(Peek())) {
          item.alias = Peek().text;
          ++pos_;
        }
      }
      stmt->select_list.push_back(std::move(item));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  // One grouping expression with optional alias.
  Result<GroupItem> ParseGroupItem() {
    GroupItem item;
    DATACUBE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (AcceptKeyword("AS")) {
      DATACUBE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
    }
    return item;
  }

  // Parses a comma list of group items, stopping (in the unparenthesized
  // form) before a ROLLUP/CUBE/GROUPING part keyword.
  Result<std::vector<GroupItem>> ParseGroupItemList(bool parenthesized) {
    std::vector<GroupItem> items;
    while (true) {
      DATACUBE_ASSIGN_OR_RETURN(GroupItem item, ParseGroupItem());
      items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
      if (!parenthesized &&
          (Peek().IsKeyword("ROLLUP") || Peek().IsKeyword("CUBE") ||
           Peek().IsKeyword("GROUPING"))) {
        break;  // the comma separated GROUP BY parts, not list elements
      }
    }
    return items;
  }

  // Parses a part list in either `KEYWORD a, b` or `KEYWORD(a, b)` form.
  Result<std::vector<GroupItem>> ParsePartList() {
    if (AcceptSymbol("(")) {
      std::vector<GroupItem> items;
      if (!Peek().IsSymbol(")")) {
        DATACUBE_ASSIGN_OR_RETURN(items,
                                  ParseGroupItemList(/*parenthesized=*/true));
      }
      DATACUBE_RETURN_IF_ERROR(ExpectSymbol(")"));
      return items;
    }
    return ParseGroupItemList(/*parenthesized=*/false);
  }

  Status ParseGroupBy(GroupByClause* clause) {
    // GROUPING SETS ((a, b), (a), ())
    if (Peek().IsKeyword("GROUPING") && Peek(1).IsKeyword("SETS")) {
      pos_ += 2;
      DATACUBE_RETURN_IF_ERROR(ExpectSymbol("("));
      do {
        DATACUBE_RETURN_IF_ERROR(ExpectSymbol("("));
        std::vector<GroupItem> set;
        if (!Peek().IsSymbol(")")) {
          DATACUBE_ASSIGN_OR_RETURN(set,
                                    ParseGroupItemList(/*parenthesized=*/true));
        }
        DATACUBE_RETURN_IF_ERROR(ExpectSymbol(")"));
        clause->grouping_sets.push_back(std::move(set));
      } while (AcceptSymbol(","));
      return ExpectSymbol(")");
    }
    // [plain list] [ROLLUP list] [CUBE list] — parts separated by commas or
    // adjacency, per the Section 3.2 grammar.
    bool first = true;
    while (true) {
      if (AcceptKeyword("ROLLUP")) {
        DATACUBE_ASSIGN_OR_RETURN(clause->rollup, ParsePartList());
      } else if (AcceptKeyword("CUBE")) {
        DATACUBE_ASSIGN_OR_RETURN(clause->cube, ParsePartList());
      } else if (first) {
        DATACUBE_ASSIGN_OR_RETURN(clause->plain,
                                  ParseGroupItemList(/*parenthesized=*/false));
      } else {
        return Error("expected ROLLUP or CUBE in GROUP BY");
      }
      first = false;
      // Parts may be separated by a comma (already consumed by the list
      // parser in the unparenthesized case) or follow directly.
      AcceptSymbol(",");
      if (!Peek().IsKeyword("ROLLUP") && !Peek().IsKeyword("CUBE")) break;
    }
    if (clause->empty()) return Error("empty GROUP BY");
    return Status::OK();
  }

  Status ParseOrderBy(std::vector<OrderItem>* order_by) {
    do {
      OrderItem item;
      if (Peek().kind == TokenKind::kNumber) {
        item.ordinal = static_cast<int>(
            std::strtoll(Peek().text.c_str(), nullptr, 10));
        ++pos_;
      } else {
        DATACUBE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      }
      if (AcceptKeyword("DESC")) {
        item.ascending = false;
      } else {
        AcceptKeyword("ASC");
      }
      order_by->push_back(std::move(item));
    } while (AcceptSymbol(","));
    return Status::OK();
  }

  // -------------------------------------------------------- expressions

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    DATACUBE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      DATACUBE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Binary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    DATACUBE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      DATACUBE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::Binary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      DATACUBE_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::Unary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    DATACUBE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // IS [NOT] NULL
    if (AcceptKeyword("IS")) {
      bool negated = AcceptKeyword("NOT");
      DATACUBE_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return Expr::Unary(negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                         std::move(lhs));
    }
    // [NOT] LIKE pattern
    if (Peek().IsKeyword("LIKE") ||
        (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("LIKE"))) {
      bool negated = Peek().IsKeyword("NOT");
      pos_ += negated ? 2 : 1;
      DATACUBE_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      ExprPtr like =
          Expr::Binary(BinaryOp::kLike, std::move(lhs), std::move(pattern));
      return negated ? Expr::Unary(UnaryOp::kNot, std::move(like))
                     : std::move(like);
    }
    // [NOT] IN (literal, ...)
    bool not_in = false;
    if (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("IN")) {
      pos_ += 2;
      not_in = true;
    } else if (AcceptKeyword("IN")) {
      not_in = false;
    } else if (Peek().IsKeyword("BETWEEN")) {
      ++pos_;
      DATACUBE_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      DATACUBE_RETURN_IF_ERROR(ExpectKeyword("AND"));
      DATACUBE_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      return Expr::Binary(
          BinaryOp::kAnd, Expr::Binary(BinaryOp::kGe, lhs, std::move(lo)),
          Expr::Binary(BinaryOp::kLe, std::move(lhs), std::move(hi)));
    } else {
      // Plain comparison operator?
      struct OpMap {
        const char* sym;
        BinaryOp op;
      };
      static const OpMap kOps[] = {{"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe},
                                   {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
                                   {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},
                                   {">", BinaryOp::kGt}};
      for (const OpMap& m : kOps) {
        if (AcceptSymbol(m.sym)) {
          DATACUBE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
          return Expr::Binary(m.op, std::move(lhs), std::move(rhs));
        }
      }
      return lhs;
    }
    // IN list: a disjunction of equalities — the paper's
    // "WHERE Model IN {'Ford', 'Chevy'}" (we accept parentheses or braces'
    // standard form with parens).
    DATACUBE_RETURN_IF_ERROR(ExpectSymbol("("));
    ExprPtr disjunction;
    do {
      DATACUBE_ASSIGN_OR_RETURN(ExprPtr candidate, ParseAdditive());
      ExprPtr eq = Expr::Binary(BinaryOp::kEq, lhs, std::move(candidate));
      disjunction = disjunction == nullptr
                        ? std::move(eq)
                        : Expr::Binary(BinaryOp::kOr, std::move(disjunction),
                                       std::move(eq));
    } while (AcceptSymbol(","));
    DATACUBE_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (not_in) {
      disjunction = Expr::Unary(UnaryOp::kNot, std::move(disjunction));
    }
    return disjunction;
  }

  Result<ExprPtr> ParseAdditive() {
    DATACUBE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (true) {
      if (AcceptSymbol("+")) {
        DATACUBE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Expr::Binary(BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("-")) {
        DATACUBE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
        lhs = Expr::Binary(BinaryOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    DATACUBE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      if (AcceptSymbol("*")) {
        DATACUBE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Binary(BinaryOp::kMul, std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("/")) {
        DATACUBE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Binary(BinaryOp::kDiv, std::move(lhs), std::move(rhs));
      } else if (AcceptSymbol("%")) {
        DATACUBE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
        lhs = Expr::Binary(BinaryOp::kMod, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      DATACUBE_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::Unary(UnaryOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kNumber) {
      ++pos_;
      if (t.text.find('.') != std::string::npos) {
        return Expr::Lit(Value::Float64(std::strtod(t.text.c_str(), nullptr)));
      }
      return Expr::Lit(Value::Int64(std::strtoll(t.text.c_str(), nullptr, 10)));
    }
    if (t.kind == TokenKind::kString) {
      ++pos_;
      return Expr::Lit(Value::String(t.text));
    }
    if (t.IsKeyword("NULL")) {
      ++pos_;
      return Expr::Lit(Value::Null());
    }
    if (t.IsKeyword("TRUE")) {
      ++pos_;
      return Expr::Lit(Value::Bool(true));
    }
    if (t.IsKeyword("FALSE")) {
      ++pos_;
      return Expr::Lit(Value::Bool(false));
    }
    if (t.IsKeyword("CASE")) {
      ++pos_;
      std::vector<std::pair<ExprPtr, ExprPtr>> branches;
      while (AcceptKeyword("WHEN")) {
        DATACUBE_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
        DATACUBE_RETURN_IF_ERROR(ExpectKeyword("THEN"));
        DATACUBE_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
        branches.emplace_back(std::move(when), std::move(then));
      }
      if (branches.empty()) {
        return Error("CASE requires at least one WHEN branch");
      }
      ExprPtr else_expr;
      if (AcceptKeyword("ELSE")) {
        DATACUBE_ASSIGN_OR_RETURN(else_expr, ParseExpr());
      }
      DATACUBE_RETURN_IF_ERROR(ExpectKeyword("END"));
      return Expr::Case(std::move(branches), std::move(else_expr));
    }
    if (AcceptSymbol("(")) {
      DATACUBE_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      DATACUBE_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (t.kind == TokenKind::kIdentifier && !IsReserved(t)) {
      std::string name = t.text;
      ++pos_;
      // Qualified column `table.col`: keep the column part.
      if (AcceptSymbol(".")) {
        DATACUBE_ASSIGN_OR_RETURN(name, ExpectIdentifier("column name"));
      }
      if (!AcceptSymbol("(")) {
        return Expr::Column(std::move(name));
      }
      // Function call (scalar or aggregate; the planner classifies).
      bool distinct = false;
      std::vector<ExprPtr> args;
      if (AcceptSymbol("*")) {
        // COUNT(*) — normalized to the zero-argument count_star.
        DATACUBE_RETURN_IF_ERROR(ExpectSymbol(")"));
        if (!EqualsIgnoreCase(name, "count")) {
          return Error("'*' argument is only valid in COUNT(*)");
        }
        return Expr::Call("count_star", {});
      }
      if (AcceptKeyword("DISTINCT")) distinct = true;
      if (!Peek().IsSymbol(")")) {
        do {
          DATACUBE_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
        } while (AcceptSymbol(","));
      }
      DATACUBE_RETURN_IF_ERROR(ExpectSymbol(")"));
      // DISTINCT is encoded in the call name; the planner strips it.
      std::string call_name =
          distinct ? "distinct$" + ToLower(name) : ToLower(name);
      return Expr::Call(std::move(call_name), std::move(args));
    }
    return Error("unexpected token '" + t.text + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSelect(const std::string& text) {
  DATACUBE_ASSIGN_OR_RETURN(UnionQuery query, ParseQuery(text));
  if (query.selects.size() != 1) {
    return Status::InvalidArgument(
        "expected a single SELECT; use ParseQuery for UNION chains");
  }
  return std::move(query.selects.front());
}

Result<UnionQuery> ParseQuery(const std::string& text) {
  DATACUBE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseUnionQuery();
}

}  // namespace datacube::sql
