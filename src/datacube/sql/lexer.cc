#include "datacube/sql/lexer.h"

#include <cctype>

#include "datacube/common/str_util.h"

namespace datacube::sql {

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdentifier && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0, line = 1, col = 1;
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n; ++k) {
      if (i < text.size() && text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // -- line comment
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '-') {
      while (i < text.size() && text[i] != '\n') advance(1);
      continue;
    }
    Token tok;
    tok.line = line;
    tok.column = col;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        advance(1);
      }
      tok.kind = TokenKind::kIdentifier;
      tok.text = text.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      // Quoted identifier.
      advance(1);
      std::string ident;
      while (i < text.size() && text[i] != '"') {
        ident += text[i];
        advance(1);
      }
      if (i >= text.size()) {
        return Status::ParseError("unterminated quoted identifier at line " +
                                  std::to_string(tok.line));
      }
      advance(1);
      tok.kind = TokenKind::kIdentifier;
      tok.text = std::move(ident);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      bool seen_dot = false;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              (text[i] == '.' && !seen_dot))) {
        if (text[i] == '.') seen_dot = true;
        advance(1);
      }
      tok.kind = TokenKind::kNumber;
      tok.text = text.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      advance(1);
      std::string s;
      while (i < text.size()) {
        if (text[i] == '\'') {
          if (i + 1 < text.size() && text[i + 1] == '\'') {
            s += '\'';
            advance(2);
            continue;
          }
          break;
        }
        s += text[i];
        advance(1);
      }
      if (i >= text.size()) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(tok.line));
      }
      advance(1);  // closing quote
      tok.kind = TokenKind::kString;
      tok.text = std::move(s);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Two-character operators first.
    static const char* kTwoChar[] = {"<>", "!=", "<=", ">="};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (text.compare(i, 2, op) == 0) {
        tok.kind = TokenKind::kSymbol;
        tok.text = op;
        advance(2);
        tokens.push_back(std::move(tok));
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static const std::string kSingles = "(),;.*+-/%=<>";
    if (kSingles.find(c) != std::string::npos) {
      tok.kind = TokenKind::kSymbol;
      tok.text = std::string(1, c);
      advance(1);
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at line " + std::to_string(line) + ":" +
                              std::to_string(col));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line;
  end.column = col;
  tokens.push_back(end);
  return tokens;
}

}  // namespace datacube::sql
