#include "datacube/schema/star.h"

#include <algorithm>

namespace datacube {

Result<DimensionTable> DimensionTable::Create(std::string name, Table table,
                                              std::string key_column) {
  DimensionTable dim;
  std::optional<size_t> key_idx = table.schema().FieldIndex(key_column);
  if (!key_idx.has_value()) {
    return Status::NotFound("dimension key column not found: " + key_column);
  }
  dim.key_index_ = *key_idx;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    Value key = table.GetValue(r, *key_idx);
    if (key.is_special()) {
      return Status::InvalidArgument("dimension key may not be NULL/ALL");
    }
    if (!dim.index_.emplace(std::move(key), r).second) {
      return Status::InvalidArgument(
          "dimension key is not unique; it cannot functionally determine the "
          "attributes");
    }
  }
  dim.name_ = std::move(name);
  dim.table_ = std::move(table);
  dim.key_column_ = std::move(key_column);
  return dim;
}

std::vector<std::string> DimensionTable::AttributeNames() const {
  std::vector<std::string> names;
  for (const Field& f : table_.schema().fields()) {
    if (f.name != key_column_) names.push_back(f.name);
  }
  return names;
}

Result<Value> DimensionTable::Lookup(const Value& key,
                                     const std::string& attribute) const {
  std::optional<size_t> col = table_.schema().FieldIndex(attribute);
  if (!col.has_value()) {
    return Status::NotFound("no attribute " + attribute + " in dimension " +
                            name_);
  }
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("no dimension row for key " + key.ToString());
  }
  return table_.GetValue(it->second, *col);
}

Status SnowflakeSchema::AddDimension(const std::string& fact_column,
                                     DimensionTable dim) {
  if (!fact_.schema().FieldIndex(fact_column).has_value()) {
    return Status::NotFound("fact column not found: " + fact_column);
  }
  for (const Link& link : links_) {
    if (link.dim.name() == dim.name()) {
      return Status::AlreadyExists("dimension already added: " + dim.name());
    }
  }
  links_.push_back(Link{"", fact_column, std::move(dim)});
  return Status::OK();
}

Status SnowflakeSchema::AddSnowflakeDimension(
    const std::string& parent_dimension, const std::string& parent_column,
    DimensionTable dim) {
  const Link* parent = nullptr;
  for (const Link& link : links_) {
    if (link.dim.name() == parent_dimension) parent = &link;
    if (link.dim.name() == dim.name()) {
      return Status::AlreadyExists("dimension already added: " + dim.name());
    }
  }
  if (parent == nullptr) {
    return Status::NotFound("parent dimension not found: " + parent_dimension);
  }
  if (!parent->dim.table().schema().FieldIndex(parent_column).has_value()) {
    return Status::NotFound("parent dimension has no column " + parent_column);
  }
  links_.push_back(Link{parent_dimension, parent_column, std::move(dim)});
  return Status::OK();
}

Status SnowflakeSchema::AddHierarchy(Hierarchy hierarchy) {
  if (hierarchy.levels.empty()) {
    return Status::InvalidArgument("hierarchy needs at least one level");
  }
  for (const Hierarchy& h : hierarchies_) {
    if (h.name == hierarchy.name) {
      return Status::AlreadyExists("hierarchy already defined: " + h.name);
    }
  }
  hierarchies_.push_back(std::move(hierarchy));
  return Status::OK();
}

Result<const DimensionTable*> SnowflakeSchema::dimension(
    const std::string& name) const {
  for (const Link& link : links_) {
    if (link.dim.name() == name) return &link.dim;
  }
  return Status::NotFound("no dimension named " + name);
}

Result<Table> SnowflakeSchema::Denormalize() const {
  // Start from the fact table and left-join each dimension in registration
  // order; snowflake links join against the already-joined parent columns.
  Table wide = fact_;
  for (const Link& link : links_) {
    // Resolve the join column in the current wide table: fact links use the
    // fact column; snowflake links use the parent dimension's column, which
    // is present once the parent has been joined.
    std::optional<size_t> join_col =
        wide.schema().FieldIndex(link.parent_column);
    if (!join_col.has_value()) {
      return Status::Internal("join column missing during denormalize: " +
                              link.parent_column);
    }
    // Attribute columns to append (skip the dimension's key: its value is
    // already present as the join column).
    const Table& dim_table = link.dim.table();
    std::vector<size_t> attr_cols;
    std::vector<Field> attr_fields;
    for (size_t c = 0; c < dim_table.num_columns(); ++c) {
      const Field& f = dim_table.schema().field(c);
      if (f.name == link.dim.key_column()) continue;
      if (wide.schema().FieldIndex(f.name).has_value()) {
        return Status::AlreadyExists(
            "attribute column name collides during denormalize: " + f.name);
      }
      attr_cols.push_back(c);
      attr_fields.push_back(f);
    }
    Table attrs{Schema{attr_fields}};
    attrs.Reserve(wide.num_rows());
    for (size_t r = 0; r < wide.num_rows(); ++r) {
      Value key = wide.GetValue(r, *join_col);
      std::vector<Value> row;
      row.reserve(attr_cols.size());
      bool found = false;
      if (!key.is_special()) {
        for (size_t c : attr_cols) {
          Result<Value> v =
              link.dim.Lookup(key, dim_table.schema().field(c).name);
          if (v.ok()) {
            row.push_back(std::move(*v));
            found = true;
          } else {
            break;
          }
        }
      }
      if (!found) row.assign(attr_cols.size(), Value::Null());
      DATACUBE_RETURN_IF_ERROR(attrs.AppendRow(row));
    }
    DATACUBE_ASSIGN_OR_RETURN(wide, wide.ConcatColumns(attrs));
  }
  return wide;
}

Result<CubeSpec> SnowflakeSchema::HierarchyRollupSpec(
    const std::string& hierarchy, std::vector<AggregateSpec> aggregates) const {
  const Hierarchy* h = nullptr;
  for (const Hierarchy& cand : hierarchies_) {
    if (cand.name == hierarchy) h = &cand;
  }
  if (h == nullptr) {
    return Status::NotFound("no hierarchy named " + hierarchy);
  }
  CubeSpec spec;
  // ROLLUP drills from the coarsest level down: ROLLUP(Region, District,
  // Office) produces region totals, then district sub-totals, then offices.
  for (auto it = h->levels.rbegin(); it != h->levels.rend(); ++it) {
    spec.rollup.push_back(GroupExpr{Expr::Column(*it), *it});
  }
  spec.aggregates = std::move(aggregates);
  return spec;
}

Result<CubeSpec> TimeRollupSpec(const std::string& date_column,
                                const std::vector<std::string>& levels,
                                std::vector<AggregateSpec> aggregates) {
  // Coarseness ranks within each family; lower = coarser.
  struct LevelInfo {
    const char* name;
    const char* function;  // scalar registry name
    int rank;
    bool weekly;
  };
  static constexpr LevelInfo kLevels[] = {
      {"year", "year", 0, false},      {"quarter", "quarter", 1, false},
      {"month", "month", 2, false},    {"day", "day", 3, false},
      {"weekyear", "weekyear", 0, true}, {"week", "week", 1, true},
  };
  if (levels.empty()) {
    return Status::InvalidArgument("time rollup needs at least one level");
  }
  std::vector<const LevelInfo*> chosen;
  bool any_weekly = false, any_calendar = false;
  for (const std::string& level : levels) {
    const LevelInfo* info = nullptr;
    for (const LevelInfo& cand : kLevels) {
      if (cand.name == level) info = &cand;
    }
    if (info == nullptr) {
      return Status::InvalidArgument("unknown time granularity: " + level);
    }
    // "day" is shared; other levels mark their family.
    if (level != "day") {
      any_weekly |= info->weekly;
      any_calendar |= !info->weekly;
    }
    chosen.push_back(info);
  }
  if (any_weekly && any_calendar) {
    return Status::InvalidArgument(
        "weeks do not nest in months, quarters, or calendar years; use the "
        "ISO-week family (weekyear, week, day) instead");
  }
  std::sort(chosen.begin(), chosen.end(),
            [](const LevelInfo* a, const LevelInfo* b) {
              // In the weekly family "day" (calendar rank 3) stays finest.
              return a->rank < b->rank;
            });
  chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());

  CubeSpec spec;
  for (const LevelInfo* info : chosen) {
    spec.rollup.push_back(GroupExpr{
        Expr::Call(info->function, {Expr::Column(date_column)}), info->name});
  }
  spec.aggregates = std::move(aggregates);
  return spec;
}

}  // namespace datacube
