#ifndef DATACUBE_SCHEMA_STAR_H_
#define DATACUBE_SCHEMA_STAR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/cube/cube_spec.h"
#include "datacube/table/table.h"

namespace datacube {

/// A dimension side-table (Section 3.6): a key column plus descriptive
/// attributes it functionally determines — "there are side tables that for
/// each dimension value give its attributes", e.g. the San Francisco sales
/// office is in the Northern California District, the Western Region, and
/// the US Geography.
class DimensionTable {
 public:
  /// Validates that `key_column` exists and is unique (it must functionally
  /// determine the attributes).
  static Result<DimensionTable> Create(std::string name, Table table,
                                       std::string key_column);

  const std::string& name() const { return name_; }
  const Table& table() const { return table_; }
  const std::string& key_column() const { return key_column_; }

  /// Attribute columns (everything except the key).
  std::vector<std::string> AttributeNames() const;

  /// The attribute value determined by `key` (the FD lookup). NotFound if
  /// the key value has no dimension row.
  Result<Value> Lookup(const Value& key, const std::string& attribute) const;

 private:
  DimensionTable() = default;

  std::string name_;
  Table table_;
  std::string key_column_;
  size_t key_index_ = 0;
  std::unordered_map<Value, size_t, ValueHash> index_;
};

/// An aggregation hierarchy over dimension attributes, finest level first
/// (e.g. {"Office", "District", "Region"}). Section 3.6: "these dimension
/// tables define a spectrum of aggregation granularities for the dimension."
struct Hierarchy {
  std::string name;
  std::vector<std::string> levels;  // finest -> coarsest column names
};

/// A snowflake schema: a fact table whose foreign-key columns reference
/// dimension tables, which may in turn reference further dimension tables
/// (Figure 6). A star schema is the special case with no dimension-to-
/// dimension links.
class SnowflakeSchema {
 public:
  explicit SnowflakeSchema(Table fact) : fact_(std::move(fact)) {}

  /// Registers a dimension reached from a fact-table column.
  Status AddDimension(const std::string& fact_column, DimensionTable dim);

  /// Registers a dimension reached from a column of another dimension (the
  /// snowflake normalization of Figure 6's footnote: an office table, a
  /// district table, and a region table rather than one big denormalized
  /// table).
  Status AddSnowflakeDimension(const std::string& parent_dimension,
                               const std::string& parent_column,
                               DimensionTable dim);

  /// Declares an aggregation hierarchy over (denormalized) attribute
  /// columns, finest first.
  Status AddHierarchy(Hierarchy hierarchy);

  const Table& fact() const { return fact_; }
  const std::vector<Hierarchy>& hierarchies() const { return hierarchies_; }
  Result<const DimensionTable*> dimension(const std::string& name) const;

  /// Joins the fact table with every (transitively linked) dimension into
  /// one wide table — "query users find it convenient to use the
  /// denormalized table". Attribute columns keep their dimension-table
  /// names; a missing dimension row yields NULL attributes (left join).
  Result<Table> Denormalize() const;

  /// Builds a ROLLUP CubeSpec along `hierarchy` for use on the denormalized
  /// table: ROLLUP(coarsest, ..., finest) plus the given aggregates, so the
  /// report drills down from the top of the hierarchy.
  Result<CubeSpec> HierarchyRollupSpec(
      const std::string& hierarchy,
      std::vector<AggregateSpec> aggregates) const;

 private:
  struct Link {
    // Either "" (fact) or the name of the parent dimension.
    std::string parent_dimension;
    std::string parent_column;
    DimensionTable dim;
  };

  Table fact_;
  std::vector<Link> links_;
  std::vector<Hierarchy> hierarchies_;
};

/// Star-schema alias: construct and add dimensions directly off the fact
/// table.
using StarSchema = SnowflakeSchema;

/// Builds a ROLLUP CubeSpec over calendar granularities of a DATE column —
/// Section 3.6's "a date functionally defines a week, month, and year.
/// Roll-ups by year, week, day are common."
///
/// `levels` are granularity names, any order; the spec rolls up coarsest
/// first. Two families exist because "weeks do not nest in months or
/// quarters or years (some weeks are partly in two years)":
///   * calendar family: "year", "quarter", "month", "day"
///   * ISO-week family: "weekyear", "week", "day"
/// Mixing "week" with calendar levels is rejected with guidance to use
/// "weekyear".
Result<CubeSpec> TimeRollupSpec(const std::string& date_column,
                                const std::vector<std::string>& levels,
                                std::vector<AggregateSpec> aggregates);

}  // namespace datacube

#endif  // DATACUBE_SCHEMA_STAR_H_
