#ifndef DATACUBE_TABLE_SORT_H_
#define DATACUBE_TABLE_SORT_H_

#include <cstddef>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/table/table.h"

namespace datacube {

/// One ORDER BY key.
struct SortKey {
  size_t column = 0;
  bool ascending = true;
};

/// Stable-sorts row indices of `table` by `keys` using the Value total order
/// (NULL < ALL < values). Returns the permutation; apply with
/// Table::TakeRows.
Result<std::vector<size_t>> SortIndices(const Table& table,
                                        const std::vector<SortKey>& keys);

/// Convenience: sorted copy of the table.
Result<Table> SortTable(const Table& table, const std::vector<SortKey>& keys);

}  // namespace datacube

#endif  // DATACUBE_TABLE_SORT_H_
