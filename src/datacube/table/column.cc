#include "datacube/table/column.h"

#include <unordered_set>

namespace datacube {

Column::Column(DataType type) : type_(type) {
  switch (type) {
    case DataType::kBool:
      buffer_ = std::vector<uint8_t>();
      break;
    case DataType::kInt64:
      buffer_ = std::vector<int64_t>();
      break;
    case DataType::kFloat64:
      buffer_ = std::vector<double>();
      break;
    case DataType::kString:
      buffer_ = std::vector<std::string>();
      break;
    case DataType::kDate:
      buffer_ = std::vector<Date>();
      break;
  }
}

void Column::AppendDefaultSlot() {
  std::visit([](auto& buf) { buf.emplace_back(); }, buffer_);
}

Status Column::Append(const Value& value) {
  if (value.is_null()) {
    states_.push_back(kStateNull);
    ++null_count_;
    AppendDefaultSlot();
    return Status::OK();
  }
  if (value.is_all()) {
    states_.push_back(kStateAll);
    ++all_count_;
    AppendDefaultSlot();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kBool:
      if (value.kind() != Value::Kind::kBool) break;
      std::get<std::vector<uint8_t>>(buffer_).push_back(value.bool_value());
      states_.push_back(kStateValue);
      return Status::OK();
    case DataType::kInt64:
      if (value.kind() != Value::Kind::kInt64) break;
      std::get<std::vector<int64_t>>(buffer_).push_back(value.int64_value());
      states_.push_back(kStateValue);
      return Status::OK();
    case DataType::kFloat64:
      if (!value.is_numeric()) break;
      std::get<std::vector<double>>(buffer_).push_back(value.AsDouble());
      states_.push_back(kStateValue);
      return Status::OK();
    case DataType::kString:
      if (value.kind() != Value::Kind::kString) break;
      std::get<std::vector<std::string>>(buffer_).push_back(
          value.string_value());
      states_.push_back(kStateValue);
      return Status::OK();
    case DataType::kDate:
      if (value.kind() != Value::Kind::kDate) break;
      std::get<std::vector<Date>>(buffer_).push_back(value.date_value());
      states_.push_back(kStateValue);
      return Status::OK();
  }
  return Status::TypeError("cannot append " + value.ToString() + " to " +
                           DataTypeName(type_) + " column");
}

void Column::AppendNulls(size_t count) {
  for (size_t i = 0; i < count; ++i) {
    states_.push_back(kStateNull);
    AppendDefaultSlot();
  }
  null_count_ += count;
}

Value Column::Get(size_t i) const {
  if (states_[i] == kStateNull) return Value::Null();
  if (states_[i] == kStateAll) return Value::All();
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(std::get<std::vector<uint8_t>>(buffer_)[i] != 0);
    case DataType::kInt64:
      return Value::Int64(std::get<std::vector<int64_t>>(buffer_)[i]);
    case DataType::kFloat64:
      return Value::Float64(std::get<std::vector<double>>(buffer_)[i]);
    case DataType::kString:
      return Value::String(std::get<std::vector<std::string>>(buffer_)[i]);
    case DataType::kDate:
      return Value::FromDate(std::get<std::vector<Date>>(buffer_)[i]);
  }
  return Value::Null();
}

Status Column::Set(size_t i, const Value& value) {
  if (i >= size()) return Status::OutOfRange("Set past end of column");
  // Adjust special-state counters for the outgoing entry.
  if (states_[i] == kStateNull) --null_count_;
  if (states_[i] == kStateAll) --all_count_;
  if (value.is_null()) {
    states_[i] = kStateNull;
    ++null_count_;
    return Status::OK();
  }
  if (value.is_all()) {
    states_[i] = kStateAll;
    ++all_count_;
    return Status::OK();
  }
  switch (type_) {
    case DataType::kBool:
      if (value.kind() != Value::Kind::kBool) break;
      std::get<std::vector<uint8_t>>(buffer_)[i] = value.bool_value();
      states_[i] = kStateValue;
      return Status::OK();
    case DataType::kInt64:
      if (value.kind() != Value::Kind::kInt64) break;
      std::get<std::vector<int64_t>>(buffer_)[i] = value.int64_value();
      states_[i] = kStateValue;
      return Status::OK();
    case DataType::kFloat64:
      if (!value.is_numeric()) break;
      std::get<std::vector<double>>(buffer_)[i] = value.AsDouble();
      states_[i] = kStateValue;
      return Status::OK();
    case DataType::kString:
      if (value.kind() != Value::Kind::kString) break;
      std::get<std::vector<std::string>>(buffer_)[i] = value.string_value();
      states_[i] = kStateValue;
      return Status::OK();
    case DataType::kDate:
      if (value.kind() != Value::Kind::kDate) break;
      std::get<std::vector<Date>>(buffer_)[i] = value.date_value();
      states_[i] = kStateValue;
      return Status::OK();
  }
  return Status::TypeError("cannot set " + value.ToString() + " into " +
                           DataTypeName(type_) + " column");
}

void Column::Reserve(size_t capacity) {
  states_.reserve(capacity);
  std::visit([capacity](auto& buf) { buf.reserve(capacity); }, buffer_);
}

size_t Column::CountDistinct() const {
  std::unordered_set<Value, ValueHash> seen;
  for (size_t i = 0; i < size(); ++i) {
    if (states_[i] == kStateValue) seen.insert(Get(i));
  }
  return seen.size();
}

void Column::MaterializeValues(std::vector<Value>* out) const {
  out->reserve(out->size() + size());
  std::visit(
      [&](const auto& buf) {
        using T = typename std::decay_t<decltype(buf)>::value_type;
        for (size_t i = 0; i < states_.size(); ++i) {
          if (states_[i] == kStateNull) {
            out->push_back(Value::Null());
          } else if (states_[i] == kStateAll) {
            out->push_back(Value::All());
          } else if constexpr (std::is_same_v<T, uint8_t>) {
            out->push_back(Value::Bool(buf[i] != 0));
          } else if constexpr (std::is_same_v<T, int64_t>) {
            out->push_back(Value::Int64(buf[i]));
          } else if constexpr (std::is_same_v<T, double>) {
            out->push_back(Value::Float64(buf[i]));
          } else if constexpr (std::is_same_v<T, std::string>) {
            out->push_back(Value::String(buf[i]));
          } else {
            out->push_back(Value::FromDate(buf[i]));
          }
        }
      },
      buffer_);
}

}  // namespace datacube
