#ifndef DATACUBE_TABLE_COLUMN_H_
#define DATACUBE_TABLE_COLUMN_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/common/value.h"

namespace datacube {

/// Typed columnar storage for one field.
///
/// Storage is a typed buffer plus a per-row state byte distinguishing
/// concrete values from the two non-values NULL and ALL (the paper's
/// Section 3.3 super-aggregate token). This is the standard validity-mask
/// layout extended with a third state.
class Column {
 public:
  explicit Column(DataType type);

  DataType type() const { return type_; }
  size_t size() const { return states_.size(); }

  /// Appends a value; it must be NULL, ALL, or of this column's type
  /// (int64 is accepted into float64 columns and widened).
  Status Append(const Value& value);

  /// Appends `count` copies of NULL.
  void AppendNulls(size_t count);

  /// Reads row `i` back as a Value.
  Value Get(size_t i) const;

  /// Overwrites row `i`; same typing rule as Append.
  Status Set(size_t i, const Value& value);

  bool IsNull(size_t i) const { return states_[i] == kStateNull; }
  bool IsAll(size_t i) const { return states_[i] == kStateAll; }

  /// Number of NULL entries.
  size_t null_count() const { return null_count_; }
  /// Number of ALL entries.
  size_t all_count() const { return all_count_; }

  void Reserve(size_t capacity);

  /// Count of distinct concrete values (NULL and ALL excluded).
  size_t CountDistinct() const;

  /// Appends every row to `out` as a Value (Get(i) for all i, but with the
  /// type dispatch hoisted out of the loop).
  void MaterializeValues(std::vector<Value>* out) const;

  /// Read-only view of the typed buffer for kernel code that must avoid
  /// per-row Value materialization. T must match type(): uint8_t (bool),
  /// int64_t, double, std::string, or Date. Rows in a NULL/ALL state hold
  /// a zeroed slot — check IsNull/IsAll per row.
  template <typename T>
  const std::vector<T>& raw() const {
    return std::get<std::vector<T>>(buffer_);
  }

  /// Per-row state codes backing IsNull/IsAll (0 = concrete value, nonzero
  /// = NULL or ALL), for batch kernels that test whole buffers without a
  /// virtual call per row. Parallel to raw<T>().
  const uint8_t* state_codes() const { return states_.data(); }

 private:
  static constexpr uint8_t kStateValue = 0;
  static constexpr uint8_t kStateNull = 1;
  static constexpr uint8_t kStateAll = 2;

  // Typed buffers; exactly one is active, chosen by type_. Rows in a
  // non-value state still occupy a (zeroed) slot so indices align.
  using Buffer = std::variant<std::vector<uint8_t>,      // kBool
                              std::vector<int64_t>,      // kInt64
                              std::vector<double>,       // kFloat64
                              std::vector<std::string>,  // kString
                              std::vector<Date>>;        // kDate

  void AppendDefaultSlot();

  DataType type_;
  std::vector<uint8_t> states_;
  Buffer buffer_;
  size_t null_count_ = 0;
  size_t all_count_ = 0;
};

}  // namespace datacube

#endif  // DATACUBE_TABLE_COLUMN_H_
