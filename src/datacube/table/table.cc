#include "datacube/table/table.h"

#include <algorithm>
#include <map>

namespace datacube {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.type);
  }
}

Result<const Column*> Table::ColumnByName(const std::string& name) const {
  std::optional<size_t> idx = schema_.FieldIndex(name);
  if (!idx.has_value()) return Status::NotFound("no column named " + name);
  return &columns_[*idx];
}

Status Table::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(values.size()) + " values, table has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    Status st = columns_[i].Append(values[i]);
    if (!st.ok()) {
      // Roll back the columns already appended so the table stays rectangular.
      // Column has no pop; rebuild is overkill — instead append NULL to the
      // remaining columns and fail loudly. Callers treat the table as dead.
      return Status(st.code(), "column '" + schema_.field(i).name +
                                   "': " + st.message());
    }
  }
  ++num_rows_;
  return Status::OK();
}

std::vector<Value> Table::GetRow(size_t row) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.Get(row));
  return out;
}

Result<Table> Table::TakeRows(const std::vector<size_t>& indices) const {
  Table out(schema_);
  out.Reserve(indices.size());
  for (size_t idx : indices) {
    if (idx >= num_rows_) {
      return Status::OutOfRange("TakeRows index " + std::to_string(idx) +
                                " >= " + std::to_string(num_rows_));
    }
    DATACUBE_RETURN_IF_ERROR(out.AppendRow(GetRow(idx)));
  }
  return out;
}

Result<Table> Table::FilterRows(const std::vector<bool>& mask) const {
  if (mask.size() != num_rows_) {
    return Status::InvalidArgument("filter mask size mismatch");
  }
  std::vector<size_t> indices;
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) indices.push_back(i);
  }
  return TakeRows(indices);
}

Status Table::AppendTable(const Table& other) {
  if (other.num_columns() != num_columns()) {
    return Status::InvalidArgument("UNION ALL arity mismatch");
  }
  for (size_t c = 0; c < num_columns(); ++c) {
    if (other.schema_.field(c).type != schema_.field(c).type) {
      return Status::TypeError("UNION ALL type mismatch in column " +
                               std::to_string(c));
    }
  }
  for (size_t r = 0; r < other.num_rows(); ++r) {
    DATACUBE_RETURN_IF_ERROR(AppendRow(other.GetRow(r)));
  }
  return Status::OK();
}

Result<Table> Table::ConcatColumns(const Table& other) const {
  if (other.num_rows() != num_rows_) {
    return Status::InvalidArgument("ConcatColumns row count mismatch");
  }
  std::vector<Field> fields = schema_.fields();
  for (const Field& f : other.schema_.fields()) fields.push_back(f);
  Schema merged(std::move(fields));
  // Detect duplicate names early.
  for (size_t i = 0; i < merged.num_fields(); ++i) {
    for (size_t j = i + 1; j < merged.num_fields(); ++j) {
      if (merged.field(i).name == merged.field(j).name) {
        return Status::AlreadyExists(
            "duplicate column name in ConcatColumns: " + merged.field(i).name);
      }
    }
  }
  Table out(merged);
  out.Reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    std::vector<Value> row = GetRow(r);
    std::vector<Value> tail = other.GetRow(r);
    row.insert(row.end(), tail.begin(), tail.end());
    DATACUBE_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Result<Table> Table::SelectColumns(
    const std::vector<size_t>& column_indices) const {
  std::vector<Field> fields;
  for (size_t idx : column_indices) {
    if (idx >= num_columns()) {
      return Status::OutOfRange("SelectColumns index out of range");
    }
    fields.push_back(schema_.field(idx));
  }
  Table out(Schema{std::move(fields)});
  out.Reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    std::vector<Value> row;
    row.reserve(column_indices.size());
    for (size_t idx : column_indices) row.push_back(GetValue(r, idx));
    DATACUBE_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

void Table::Reserve(size_t capacity) {
  for (Column& c : columns_) c.Reserve(capacity);
}

namespace {

// Multiset of rows, represented as sorted row-vectors for order-insensitive
// comparison.
std::multimap<std::vector<Value>, int> RowBag(const Table& t) {
  std::multimap<std::vector<Value>, int> bag;
  for (size_t r = 0; r < t.num_rows(); ++r) bag.emplace(t.GetRow(r), 0);
  return bag;
}

}  // namespace

bool Table::EqualsIgnoringRowOrder(const Table& other) const {
  if (num_rows_ != other.num_rows_ || num_columns() != other.num_columns()) {
    return false;
  }
  auto a = RowBag(*this);
  auto b = RowBag(other);
  return std::equal(
      a.begin(), a.end(), b.begin(), b.end(),
      [](const auto& x, const auto& y) { return x.first == y.first; });
}

bool Table::EqualsExact(const Table& other) const {
  if (num_rows_ != other.num_rows_ || num_columns() != other.num_columns()) {
    return false;
  }
  for (size_t c = 0; c < num_columns(); ++c) {
    if (schema_.field(c).type != other.schema_.field(c).type) return false;
  }
  for (size_t r = 0; r < num_rows_; ++r) {
    if (GetRow(r) != other.GetRow(r)) return false;
  }
  return true;
}

}  // namespace datacube
