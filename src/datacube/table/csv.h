#ifndef DATACUBE_TABLE_CSV_H_
#define DATACUBE_TABLE_CSV_H_

#include <string>

#include "datacube/common/result.h"
#include "datacube/table/table.h"

namespace datacube {

/// Options for CSV import.
struct CsvReadOptions {
  char delimiter = ',';
  /// First row holds column names.
  bool has_header = true;
  /// Infer per-column types (int64 → float64 → date → string) from the data;
  /// otherwise every column is read as STRING.
  bool infer_types = true;
  /// Cells equal to this string (case-sensitive) are read as NULL.
  std::string null_token = "";
};

/// Parses CSV text into a Table. Supports RFC-4180-style double-quote
/// escaping ("" inside a quoted field is a literal quote).
Result<Table> ReadCsvString(const std::string& text,
                            const CsvReadOptions& options = {});

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvReadOptions& options = {});

/// Serializes a table to CSV. NULL renders as empty, ALL as "ALL"; fields
/// containing the delimiter, quotes, or newlines are quoted.
std::string WriteCsvString(const Table& table, char delimiter = ',');

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter = ',');

}  // namespace datacube

#endif  // DATACUBE_TABLE_CSV_H_
