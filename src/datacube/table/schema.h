#ifndef DATACUBE_TABLE_SCHEMA_H_
#define DATACUBE_TABLE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/common/value.h"

namespace datacube {

/// One column's declaration. `allow_all` mirrors the paper's proposed
/// "ALL [NOT] ALLOWED" column attribute (Section 3.3): result columns of
/// CUBE/ROLLUP allow the ALL token, base-table columns normally do not.
struct Field {
  std::string name;
  DataType type = DataType::kInt64;
  bool nullable = true;
  bool allow_all = false;

  friend bool operator==(const Field& a, const Field& b) = default;
};

/// An ordered list of named, typed fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }

  /// Index of the field with `name` (exact match), if present.
  std::optional<size_t> FieldIndex(const std::string& name) const;

  /// Index of the field with `name`, matched case-insensitively.
  std::optional<size_t> FieldIndexIgnoreCase(const std::string& name) const;

  /// Appends a field; fails if a field with that name already exists.
  Status AddField(Field field);

  /// All field names, in order.
  std::vector<std::string> FieldNames() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace datacube

#endif  // DATACUBE_TABLE_SCHEMA_H_
