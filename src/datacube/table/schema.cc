#include "datacube/table/schema.h"

#include "datacube/common/str_util.h"

namespace datacube {

std::optional<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<size_t> Schema::FieldIndexIgnoreCase(
    const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return i;
  }
  return std::nullopt;
}

Status Schema::AddField(Field field) {
  if (FieldIndex(field.name).has_value()) {
    return Status::AlreadyExists("duplicate field name: " + field.name);
  }
  fields_.push_back(std::move(field));
  return Status::OK();
}

std::vector<std::string> Schema::FieldNames() const {
  std::vector<std::string> names;
  names.reserve(fields_.size());
  for (const Field& f : fields_) names.push_back(f.name);
  return names;
}

}  // namespace datacube
