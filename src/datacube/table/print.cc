#include "datacube/table/print.h"

#include <algorithm>

#include "datacube/common/str_util.h"

namespace datacube {

std::string FormatTable(const Table& table, const PrintOptions& options) {
  const Schema& schema = table.schema();
  size_t ncols = schema.num_fields();
  size_t limit = options.max_rows == 0
                     ? table.num_rows()
                     : std::min(options.max_rows, table.num_rows());

  std::vector<std::vector<std::string>> cells(limit,
                                              std::vector<std::string>(ncols));
  std::vector<size_t> widths(ncols);
  std::vector<bool> right(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    widths[c] = schema.field(c).name.size();
    right[c] = IsNumeric(schema.field(c).type);
  }
  for (size_t r = 0; r < limit; ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      Value v = table.GetValue(r, c);
      std::string s = v.is_all()    ? options.all_token
                      : v.is_null() ? options.null_token
                                    : v.ToString();
      widths[c] = std::max(widths[c], s.size());
      cells[r][c] = std::move(s);
    }
  }

  std::string out;
  for (size_t c = 0; c < ncols; ++c) {
    if (c > 0) out += "  ";
    out += Pad(schema.field(c).name, widths[c], right[c]);
  }
  out += '\n';
  if (options.header_rule) {
    for (size_t c = 0; c < ncols; ++c) {
      if (c > 0) out += "  ";
      out += std::string(widths[c], '-');
    }
    out += '\n';
  }
  for (size_t r = 0; r < limit; ++r) {
    for (size_t c = 0; c < ncols; ++c) {
      if (c > 0) out += "  ";
      out += Pad(cells[r][c], widths[c], right[c]);
    }
    out += '\n';
  }
  if (limit < table.num_rows()) {
    out += "... (" + std::to_string(table.num_rows() - limit) + " more rows)\n";
  }
  return out;
}

}  // namespace datacube
