#ifndef DATACUBE_TABLE_PRINT_H_
#define DATACUBE_TABLE_PRINT_H_

#include <string>

#include "datacube/table/table.h"

namespace datacube {

/// Table rendering options.
struct PrintOptions {
  /// Maximum rows to render; 0 means all. Elided rows print "... (N more)".
  size_t max_rows = 0;
  /// Render the ALL token as this string (Section 3.4's minimalist design
  /// would display NULL; the default shows the paper's ALL).
  std::string all_token = "ALL";
  std::string null_token = "NULL";
  /// Include a header rule line under the column names.
  bool header_rule = true;
};

/// Renders an aligned ASCII table:
///   Model  Year  Color  Units
///   -----  ----  -----  -----
///   Chevy  1994  black     50
/// Numeric columns right-align.
std::string FormatTable(const Table& table, const PrintOptions& options = {});

}  // namespace datacube

#endif  // DATACUBE_TABLE_PRINT_H_
