#include "datacube/table/sort.h"

#include <algorithm>
#include <numeric>

namespace datacube {

Result<std::vector<size_t>> SortIndices(const Table& table,
                                        const std::vector<SortKey>& keys) {
  for (const SortKey& k : keys) {
    if (k.column >= table.num_columns()) {
      return Status::OutOfRange("sort key column out of range");
    }
  }
  std::vector<size_t> indices(table.num_rows());
  std::iota(indices.begin(), indices.end(), 0);
  std::stable_sort(indices.begin(), indices.end(),
                   [&](size_t a, size_t b) {
                     for (const SortKey& k : keys) {
                       int cmp = table.GetValue(a, k.column)
                                     .Compare(table.GetValue(b, k.column));
                       if (cmp != 0) return k.ascending ? cmp < 0 : cmp > 0;
                     }
                     return false;
                   });
  return indices;
}

Result<Table> SortTable(const Table& table, const std::vector<SortKey>& keys) {
  DATACUBE_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                            SortIndices(table, keys));
  return table.TakeRows(indices);
}

}  // namespace datacube
