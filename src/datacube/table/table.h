#ifndef DATACUBE_TABLE_TABLE_H_
#define DATACUBE_TABLE_TABLE_H_

#include <string>
#include <vector>

#include "datacube/common/result.h"
#include "datacube/common/value.h"
#include "datacube/table/column.h"
#include "datacube/table/schema.h"

namespace datacube {

/// A relation: a schema plus columnar data. Tables are value types (copyable,
/// movable); all mutation is append-style, matching the library's use of
/// tables as immutable operator inputs/outputs.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }

  /// Column by field name (exact match).
  Result<const Column*> ColumnByName(const std::string& name) const;

  /// Appends one row; `values` must have one entry per column, each
  /// type-compatible with its column.
  Status AppendRow(const std::vector<Value>& values);

  /// Value at (row, col).
  Value GetValue(size_t row, size_t col) const {
    return columns_[col].Get(row);
  }

  /// One row materialized as Values.
  std::vector<Value> GetRow(size_t row) const;

  /// New table containing `indices`' rows of this table, in that order.
  /// Indices may repeat; each must be < num_rows().
  Result<Table> TakeRows(const std::vector<size_t>& indices) const;

  /// New table with only the rows where `mask[row]` is true.
  Result<Table> FilterRows(const std::vector<bool>& mask) const;

  /// Appends all rows of `other` (schemas must match by types, names
  /// ignored). This implements relational UNION ALL.
  Status AppendTable(const Table& other);

  /// New table with this table's columns plus all of `other`'s columns
  /// (row counts must match).
  Result<Table> ConcatColumns(const Table& other) const;

  /// New table with the given columns only, in the given order.
  Result<Table> SelectColumns(const std::vector<size_t>& column_indices) const;

  void Reserve(size_t capacity);

  /// Two tables are equal as bags of rows irrespective of row order.
  /// Used heavily by tests to compare algorithm outputs.
  bool EqualsIgnoringRowOrder(const Table& other) const;

  /// Exact equality: same schema field types and identical rows in order.
  bool EqualsExact(const Table& other) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// Convenience builder:
///   TableBuilder b({{"Model", DataType::kString},
///                   {"Units", DataType::kInt64}});
///   b.Row({Value::String("Chevy"), Value::Int64(50)});
///   Table t = std::move(b).Build();
/// Any error in a Row() call is latched and reported by Build().
class TableBuilder {
 public:
  explicit TableBuilder(std::vector<Field> fields)
      : table_(Schema(std::move(fields))) {}

  TableBuilder& Row(std::vector<Value> values) {
    if (status_.ok()) status_ = table_.AppendRow(values);
    return *this;
  }

  /// The built table, or the first row error encountered.
  Result<Table> Build() && {
    if (!status_.ok()) return status_;
    return std::move(table_);
  }

 private:
  Table table_;
  Status status_;
};

}  // namespace datacube

#endif  // DATACUBE_TABLE_TABLE_H_
