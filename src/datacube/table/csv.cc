#include "datacube/table/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "datacube/common/str_util.h"

namespace datacube {

namespace {

// Splits raw CSV text into logical records: newlines inside double-quoted
// fields are data (RFC 4180), so record boundaries are only the newlines
// seen outside quotes. A CR immediately before a record boundary is stripped
// (CRLF input); CRs inside quoted fields are preserved. Blank records are
// skipped, matching the old line-based reader.
std::vector<std::string> SplitCsvRecords(const std::string& text) {
  std::vector<std::string> records;
  std::string cur;
  bool in_quotes = false;
  for (char c : text) {
    if (c == '"') {
      // An escaped quote ("") toggles twice, landing back in-quotes — the
      // net state is still correct for record splitting.
      in_quotes = !in_quotes;
      cur += c;
    } else if (c == '\n' && !in_quotes) {
      if (!cur.empty() && cur.back() == '\r') cur.pop_back();
      if (!cur.empty()) records.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty() && cur.back() == '\r') cur.pop_back();
  if (!cur.empty()) records.push_back(std::move(cur));
  return records;
}

// Splits one logical CSV record into fields, honoring double-quote escaping.
std::vector<std::string> SplitCsvLine(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

bool LooksLikeInt64(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  std::strtoll(s.c_str(), &end, 10);
  // strtoll saturates to INT64_MIN/MAX on overflow and signals via ERANGE;
  // such cells must fall through to Float64/String inference rather than be
  // silently clamped.
  return errno != ERANGE && end != s.c_str() && *end == '\0';
}

bool LooksLikeFloat64(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return false;
  // Reject magnitude overflow (strtod returns ±HUGE_VAL with ERANGE); keep
  // denormal underflow, which still parses to the nearest representable.
  return !(errno == ERANGE && std::isinf(v));
}

bool LooksLikeDate(const std::string& s) { return ParseDate(s).ok(); }

// Narrowest type that can represent every non-null cell of the column.
DataType InferColumnType(const std::vector<std::vector<std::string>>& rows,
                         size_t col, const std::string& null_token) {
  bool all_int = true, all_float = true, all_date = true, any_value = false;
  for (const auto& row : rows) {
    if (col >= row.size()) continue;
    const std::string& cell = row[col];
    if (cell == null_token) continue;
    any_value = true;
    if (all_int && !LooksLikeInt64(cell)) all_int = false;
    if (all_float && !LooksLikeFloat64(cell)) all_float = false;
    if (all_date && !LooksLikeDate(cell)) all_date = false;
  }
  if (!any_value) return DataType::kString;
  if (all_int) return DataType::kInt64;
  if (all_float) return DataType::kFloat64;
  if (all_date) return DataType::kDate;
  return DataType::kString;
}

Result<Value> ParseCell(const std::string& cell, DataType type,
                        const std::string& null_token) {
  if (cell == null_token) return Value::Null();
  switch (type) {
    case DataType::kBool:
      if (EqualsIgnoreCase(cell, "true")) return Value::Bool(true);
      if (EqualsIgnoreCase(cell, "false")) return Value::Bool(false);
      return Status::ParseError("bad bool: " + cell);
    case DataType::kInt64: {
      errno = 0;
      int64_t v = std::strtoll(cell.c_str(), nullptr, 10);
      if (errno == ERANGE) {
        return Status::ParseError("integer out of INT64 range: " + cell);
      }
      return Value::Int64(v);
    }
    case DataType::kFloat64: {
      errno = 0;
      double v = std::strtod(cell.c_str(), nullptr);
      if (errno == ERANGE && std::isinf(v)) {
        return Status::ParseError("float out of FLOAT64 range: " + cell);
      }
      return Value::Float64(v);
    }
    case DataType::kDate: {
      DATACUBE_ASSIGN_OR_RETURN(Date d, ParseDate(cell));
      return Value::FromDate(d);
    }
    case DataType::kString:
      return Value::String(cell);
  }
  return Status::Internal("bad type");
}

std::string EscapeCsv(const std::string& s, char delim) {
  bool needs_quotes = s.find(delim) != std::string::npos ||
                      s.find('"') != std::string::npos ||
                      s.find('\n') != std::string::npos;
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Result<Table> ReadCsvString(const std::string& text,
                            const CsvReadOptions& options) {
  std::vector<std::vector<std::string>> rows;
  for (const std::string& record : SplitCsvRecords(text)) {
    rows.push_back(SplitCsvLine(record, options.delimiter));
  }
  if (rows.empty()) return Status::InvalidArgument("empty CSV input");

  std::vector<std::string> names;
  if (options.has_header) {
    names = rows.front();
    rows.erase(rows.begin());
  } else {
    for (size_t i = 0; i < rows.front().size(); ++i) {
      names.push_back("c" + std::to_string(i));
    }
  }

  std::vector<Field> fields;
  for (size_t c = 0; c < names.size(); ++c) {
    DataType type = options.infer_types
                        ? InferColumnType(rows, c, options.null_token)
                        : DataType::kString;
    fields.push_back(Field{Trim(names[c]), type, /*nullable=*/true});
  }
  Table table(Schema{std::move(fields)});
  table.Reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != names.size()) {
      return Status::ParseError("CSV row " + std::to_string(r + 1) + " has " +
                                std::to_string(rows[r].size()) +
                                " fields, expected " +
                                std::to_string(names.size()));
    }
    std::vector<Value> row;
    row.reserve(names.size());
    for (size_t c = 0; c < names.size(); ++c) {
      DATACUBE_ASSIGN_OR_RETURN(
          Value v, ParseCell(rows[r][c], table.schema().field(c).type,
                             options.null_token));
      row.push_back(std::move(v));
    }
    DATACUBE_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const CsvReadOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return ReadCsvString(buf.str(), options);
}

std::string WriteCsvString(const Table& table, char delimiter) {
  std::string out;
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) out += delimiter;
    out += EscapeCsv(schema.field(c).name, delimiter);
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out += delimiter;
      Value v = table.GetValue(r, c);
      if (v.is_null()) continue;  // NULL renders as empty field
      out += EscapeCsv(v.ToString(), delimiter);
    }
    out += '\n';
  }
  return out;
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    char delimiter) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << WriteCsvString(table, delimiter);
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

}  // namespace datacube
