#ifndef DATACUBE_OBS_QUERY_PROFILE_H_
#define DATACUBE_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

// Per-query execution profiles: every cube execution emits one QueryProfile
// record into a bounded in-memory ring (served by the stats server's /queryz
// endpoint) and, when the query ran slower than the configured threshold,
// appends one JSONL line to the slow-query log.
//
// This layer knows nothing about the cube operator — profiles carry generic
// (name, value) counter pairs that cube_operator.cc fills from CubeStats, so
// obs/ stays below cube/ in the dependency order.

namespace datacube::obs {

/// One executed query's profile. All durations are milliseconds.
struct QueryProfile {
  /// SQL text when the query came through the SQL engine (see
  /// QueryTextScope), else a digest of the programmatic CubeSpec.
  std::string query;
  /// Wall-clock start, milliseconds since the Unix epoch; stamped by
  /// QueryProfileLog::Record when left 0.
  int64_t start_unix_ms = 0;
  double wall_ms = 0.0;
  // Parallel phase breakdown; all zero for serial executions.
  double scan_ms = 0.0;
  double merge_ms = 0.0;
  double cascade_ms = 0.0;
  std::string algorithm;
  int threads = 1;
  uint64_t input_rows = 0;
  uint64_t output_cells = 0;
  /// Peak bytes reserved by cell-state arenas during the execution.
  uint64_t arena_peak_bytes = 0;
  /// Full execution counters as (name, value) pairs, zeros omitted by the
  /// producer (e.g. iter_calls, merge_calls, morsels_dispatched).
  std::vector<std::pair<std::string, uint64_t>> counters;
  /// Budgeted-materialization provenance summary
  /// ("budget=... views=... folds=..."), empty when no budget applied.
  std::string lattice;
  /// True when wall_ms crossed the slow-query threshold in effect.
  bool slow = false;

  /// One JSON object, no trailing newline — the JSONL line format of the
  /// slow-query log and the element format of /queryz.
  std::string ToJsonLine() const;
};

/// Bounded ring of recent query profiles plus the slow-query sink. All
/// methods are thread-safe.
class QueryProfileLog {
 public:
  static constexpr size_t kDefaultCapacity = 128;

  explicit QueryProfileLog(size_t capacity = kDefaultCapacity);

  /// The process-wide log. On first use, reads DATACUBE_SLOW_QUERY_MS
  /// (threshold, milliseconds; unset or negative = disabled) and
  /// DATACUBE_SLOW_QUERY_LOG (JSONL file path; unset = ring only).
  static QueryProfileLog& Global();

  /// Appends to the ring (evicting the oldest past capacity), stamping
  /// start_unix_ms when 0. When profile.slow is set and a log path is
  /// configured, also appends profile.ToJsonLine() to the JSONL file.
  void Record(QueryProfile profile);

  /// Resolves the threshold for one query: a non-negative per-query
  /// override wins, else the configured global threshold; negative means
  /// slow-query logging is off.
  double EffectiveSlowThresholdMs(double override_ms) const;

  void ConfigureSlowLog(double threshold_ms, std::string jsonl_path);
  double slow_threshold_ms() const;

  /// Most-recent-last copy of the ring.
  std::vector<QueryProfile> Snapshot() const;
  /// {"total": N, "slow": M, "profiles": [...oldest first...]}
  std::string ToJson() const;
  uint64_t total_recorded() const;
  uint64_t slow_recorded() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<QueryProfile> ring_;
  uint64_t total_ = 0;
  uint64_t slow_ = 0;
  double slow_threshold_ms_ = -1.0;
  std::string slow_log_path_;
};

/// Installs `text` as the ambient query text for the current thread; the
/// cube operator picks it up for QueryProfile::query instead of a spec
/// digest. The SQL engine wraps each statement execution in one of these.
/// The referenced string must outlive the scope.
class QueryTextScope {
 public:
  explicit QueryTextScope(const std::string& text);
  ~QueryTextScope();
  QueryTextScope(const QueryTextScope&) = delete;
  QueryTextScope& operator=(const QueryTextScope&) = delete;

 private:
  const std::string* prev_;
};

/// The ambient query text installed by the innermost QueryTextScope on this
/// thread, or nullptr.
const std::string* CurrentQueryText();

}  // namespace datacube::obs

#endif  // DATACUBE_OBS_QUERY_PROFILE_H_
