#include "datacube/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "datacube/obs/json_util.h"

namespace datacube::obs {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread ambient tracing state. Plain pointers: a thread with no
// installed trace pays exactly one TLS load per ScopedSpan.
thread_local Trace* tls_trace = nullptr;
thread_local SpanNode* tls_current = nullptr;
// Absolute base time of the installed trace, mirrored into TLS so spans can
// compute offsets without reaching into the Trace.
thread_local int64_t tls_base_ns = 0;
// Detached-task state: when a TaskTraceScope is installed, tls_holder is
// its task-local collector node and tls_stitch_target the span the subtree
// will be linked under. CurrentSpanContext must hand out the stitch target
// — never the holder, which dies with the task — so tasks spawned from
// inside tasks (the lattice cascade) stitch to a node that outlives them.
thread_local SpanNode* tls_holder = nullptr;
thread_local SpanNode* tls_stitch_target = nullptr;

std::string FormatDuration(int64_t ns) {
  char buf[32];
  if (ns < 0) {
    return "(open)";
  } else if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000LL) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

void RenderLine(const SpanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.name + "  " + FormatDuration(node.duration_ns);
  if (!node.attrs.empty()) {
    *out += "  [";
    for (size_t i = 0; i < node.attrs.size(); ++i) {
      if (i > 0) *out += " ";
      *out += node.attrs[i].first + "=" + node.attrs[i].second;
    }
    *out += "]";
  }
  *out += "\n";
}

void RenderNode(const SpanNode& node, int depth, size_t top_k,
                std::string* out) {
  RenderLine(node, depth, out);

  // Group children by name in order of first appearance. A parallel phase
  // fans out into dozens of same-named task spans (one per partition /
  // cascade set); rendering all of them would bury the tree, so groups
  // wider than top_k show their longest members plus one rollup line.
  std::vector<std::pair<std::string, std::vector<size_t>>> groups;
  for (size_t i = 0; i < node.children.size(); ++i) {
    const std::string& name = node.children[i]->name;
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == name; });
    if (it == groups.end()) {
      groups.emplace_back(name, std::vector<size_t>{i});
    } else {
      it->second.push_back(i);
    }
  }
  for (auto& [name, indices] : groups) {
    if (top_k == 0 || indices.size() <= top_k) {
      for (size_t i : indices) {
        RenderNode(*node.children[i], depth + 1, top_k, out);
      }
      continue;
    }
    // Top-K by duration, rendered longest first; the rest aggregate.
    std::stable_sort(indices.begin(), indices.end(), [&](size_t a, size_t b) {
      return node.children[a]->duration_ns > node.children[b]->duration_ns;
    });
    for (size_t k = 0; k < top_k; ++k) {
      RenderNode(*node.children[indices[k]], depth + 1, top_k, out);
    }
    int64_t rest_total = 0;
    for (size_t k = top_k; k < indices.size(); ++k) {
      int64_t d = node.children[indices[k]]->duration_ns;
      if (d > 0) rest_total += d;
    }
    out->append(static_cast<size_t>(depth + 1) * 2, ' ');
    *out += "... " + std::to_string(indices.size() - top_k) + " more " +
            name + "  total " + FormatDuration(rest_total) + "\n";
  }
}

void JsonNode(const SpanNode& node, std::string* out) {
  *out += "{\"name\":\"";
  AppendJsonEscaped(node.name, out);
  *out += "\"";
  *out += ",\"start_ns\":" + std::to_string(node.start_ns);
  *out += ",\"duration_ns\":" + std::to_string(node.duration_ns);
  if (!node.attrs.empty()) {
    *out += ",\"attrs\":{";
    for (size_t i = 0; i < node.attrs.size(); ++i) {
      if (i > 0) *out += ",";
      *out += "\"";
      AppendJsonEscaped(node.attrs[i].first, out);
      *out += "\":\"";
      AppendJsonEscaped(node.attrs[i].second, out);
      *out += "\"";
    }
    *out += "}";
  }
  if (!node.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) *out += ",";
      JsonNode(*node.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

const std::string* SpanNode::FindAttr(const std::string& key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

Trace::Trace(std::string root_name) : start_time_ns_(NowNs()) {
  root_.name = std::move(root_name);
  root_.start_ns = 0;
}

int64_t Trace::ElapsedNs() const { return NowNs() - start_time_ns_; }

void Trace::AttachDetached(SpanNode* parent,
                           std::vector<std::unique_ptr<SpanNode>> children) {
  std::lock_guard<std::mutex> lock(stitch_mu_);
  for (auto& child : children) {
    parent->children.push_back(std::move(child));
  }
}

std::string Trace::Render(size_t top_k) const {
  std::string out;
  RenderNode(root_, 0, top_k, &out);
  return out;
}

std::string Trace::ToJson() const {
  std::string out;
  JsonNode(root_, &out);
  return out;
}

TraceScope::TraceScope(Trace* trace)
    : prev_trace_(tls_trace), prev_current_(tls_current) {
  tls_trace = trace;
  tls_current = trace != nullptr ? &trace->root() : nullptr;
  if (trace != nullptr) tls_base_ns = trace->base_ns();
}

TraceScope::~TraceScope() {
  if (tls_trace != nullptr) {
    SpanNode& root = tls_trace->root();
    if (root.duration_ns < 0) root.duration_ns = tls_trace->ElapsedNs();
    // The outermost scope of a trace records the finished tree for the
    // stats server's /tracez ring. (Only reached while tracing, so the
    // serialization cost is never paid on un-traced queries.)
    if (prev_trace_ == nullptr) {
      TraceLog::Global().Record(
          TraceRecord{root.name, root.duration_ns, tls_trace->ToJson()});
    }
  }
  tls_trace = prev_trace_;
  tls_current = prev_current_;
  if (tls_trace != nullptr) tls_base_ns = tls_trace->base_ns();
}

ScopedSpan::ScopedSpan(const char* name) {
  if (tls_trace == nullptr) return;
  trace_ = tls_trace;
  parent_ = tls_current;
  auto node = std::make_unique<SpanNode>();
  node->name = name;
  node->start_ns = NowNs() - tls_base_ns;
  node_ = node.get();
  parent_->children.push_back(std::move(node));
  tls_current = node_;
}

ScopedSpan::~ScopedSpan() {
  if (node_ == nullptr) return;
  node_->duration_ns = (NowNs() - tls_base_ns) - node_->start_ns;
  // Restore the parent only if this thread's trace is still the one we
  // opened under (scopes are strictly nested by construction).
  if (tls_trace == trace_) tls_current = parent_;
}

void ScopedSpan::Attr(const char* key, const std::string& value) {
  if (node_ != nullptr) node_->attrs.emplace_back(key, value);
}
void ScopedSpan::Attr(const char* key, const char* value) {
  if (node_ != nullptr) node_->attrs.emplace_back(key, value);
}
void ScopedSpan::Attr(const char* key, uint64_t value) {
  if (node_ != nullptr) {
    node_->attrs.emplace_back(key, std::to_string(value));
  }
}
void ScopedSpan::Attr(const char* key, int64_t value) {
  if (node_ != nullptr) {
    node_->attrs.emplace_back(key, std::to_string(value));
  }
}
void ScopedSpan::Attr(const char* key, int value) {
  if (node_ != nullptr) {
    node_->attrs.emplace_back(key, std::to_string(value));
  }
}
void ScopedSpan::Attr(const char* key, double value) {
  if (node_ != nullptr) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", value);
    node_->attrs.emplace_back(key, buf);
  }
}

SpanContext CurrentSpanContext() {
  SpanContext ctx;
  if (tls_trace == nullptr) return ctx;
  ctx.trace = tls_trace;
  // Never hand out the task-local holder: it dies with the task, while the
  // stitch target is guaranteed to outlive every transitively spawned task
  // (the spawning scope waits on the whole group).
  ctx.parent =
      tls_current == tls_holder ? tls_stitch_target : tls_current;
  ctx.base_ns = tls_base_ns;
  return ctx;
}

TaskTraceScope::TaskTraceScope(const SpanContext& ctx)
    : ctx_(ctx),
      prev_trace_(tls_trace),
      prev_current_(tls_current),
      prev_base_ns_(tls_base_ns),
      prev_holder_(tls_holder),
      prev_stitch_target_(tls_stitch_target) {
  if (ctx_.active()) {
    tls_trace = ctx_.trace;
    tls_current = &holder_;
    tls_base_ns = ctx_.base_ns;
    tls_holder = &holder_;
    tls_stitch_target = ctx_.parent;
  } else {
    // The task was spawned from an untraced context: suspend whatever trace
    // the running thread has installed, so a helping waiter that picks up
    // another query's task does not adopt its spans.
    tls_trace = nullptr;
    tls_current = nullptr;
    tls_holder = nullptr;
    tls_stitch_target = nullptr;
  }
}

TaskTraceScope::~TaskTraceScope() {
  if (ctx_.active() && !holder_.children.empty()) {
    ctx_.trace->AttachDetached(ctx_.parent, std::move(holder_.children));
  }
  tls_trace = prev_trace_;
  tls_current = prev_current_;
  tls_base_ns = prev_base_ns_;
  tls_holder = prev_holder_;
  tls_stitch_target = prev_stitch_target_;
}

bool TracingActive() { return tls_trace != nullptr; }

TraceLog::TraceLog(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

void TraceLog::Record(TraceRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(record));
  if (ring_.size() > capacity_) ring_.pop_front();
  ++total_;
}

std::vector<TraceRecord> TraceLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceRecord>(ring_.begin(), ring_.end());
}

std::string TraceLog::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"total_recorded\":" + std::to_string(total_) +
                    ",\"traces\":[";
  for (size_t i = 0; i < ring_.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"root\":\"";
    AppendJsonEscaped(ring_[i].root_name, &out);
    out += "\",\"duration_ns\":" + std::to_string(ring_[i].duration_ns) +
           ",\"tree\":" + ring_[i].json + "}";
  }
  out += "]}";
  return out;
}

uint64_t TraceLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

TraceLog& TraceLog::Global() {
  // Leaked like the metrics registry: traces may finish during static
  // teardown of other translation units.
  static TraceLog* log = new TraceLog();
  return *log;
}

}  // namespace datacube::obs
