#include "datacube/obs/trace.h"

#include <chrono>
#include <cstdio>

namespace datacube::obs {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread ambient tracing state. Plain pointers: a thread with no
// installed trace pays exactly one TLS load per ScopedSpan.
thread_local Trace* tls_trace = nullptr;
thread_local SpanNode* tls_current = nullptr;
// Absolute base time of the installed trace, mirrored into TLS so spans can
// compute offsets without reaching into the Trace.
thread_local int64_t tls_base_ns = 0;

std::string FormatDuration(int64_t ns) {
  char buf[32];
  if (ns < 0) {
    return "(open)";
  } else if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000LL) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

void RenderNode(const SpanNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.name + "  " + FormatDuration(node.duration_ns);
  if (!node.attrs.empty()) {
    *out += "  [";
    for (size_t i = 0; i < node.attrs.size(); ++i) {
      if (i > 0) *out += " ";
      *out += node.attrs[i].first + "=" + node.attrs[i].second;
    }
    *out += "]";
  }
  *out += "\n";
  for (const auto& child : node.children) {
    RenderNode(*child, depth + 1, out);
  }
}

std::string EscapeJson(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

void JsonNode(const SpanNode& node, std::string* out) {
  *out += "{\"name\":\"" + EscapeJson(node.name) + "\"";
  *out += ",\"start_ns\":" + std::to_string(node.start_ns);
  *out += ",\"duration_ns\":" + std::to_string(node.duration_ns);
  if (!node.attrs.empty()) {
    *out += ",\"attrs\":{";
    for (size_t i = 0; i < node.attrs.size(); ++i) {
      if (i > 0) *out += ",";
      *out += "\"" + EscapeJson(node.attrs[i].first) + "\":\"" +
              EscapeJson(node.attrs[i].second) + "\"";
    }
    *out += "}";
  }
  if (!node.children.empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i > 0) *out += ",";
      JsonNode(*node.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

}  // namespace

const std::string* SpanNode::FindAttr(const std::string& key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

Trace::Trace(std::string root_name) : start_time_ns_(NowNs()) {
  root_.name = std::move(root_name);
  root_.start_ns = 0;
}

int64_t Trace::ElapsedNs() const { return NowNs() - start_time_ns_; }

std::string Trace::Render() const {
  std::string out;
  RenderNode(root_, 0, &out);
  return out;
}

std::string Trace::ToJson() const {
  std::string out;
  JsonNode(root_, &out);
  return out;
}

TraceScope::TraceScope(Trace* trace)
    : prev_trace_(tls_trace), prev_current_(tls_current) {
  tls_trace = trace;
  tls_current = trace != nullptr ? &trace->root() : nullptr;
  if (trace != nullptr) tls_base_ns = NowNs() - trace->ElapsedNs();
}

TraceScope::~TraceScope() {
  if (tls_trace != nullptr) {
    SpanNode& root = tls_trace->root();
    if (root.duration_ns < 0) root.duration_ns = tls_trace->ElapsedNs();
  }
  tls_trace = prev_trace_;
  tls_current = prev_current_;
  if (tls_trace != nullptr) tls_base_ns = NowNs() - tls_trace->ElapsedNs();
}

ScopedSpan::ScopedSpan(const char* name) {
  if (tls_trace == nullptr) return;
  trace_ = tls_trace;
  parent_ = tls_current;
  auto node = std::make_unique<SpanNode>();
  node->name = name;
  node->start_ns = NowNs() - tls_base_ns;
  node_ = node.get();
  parent_->children.push_back(std::move(node));
  tls_current = node_;
}

ScopedSpan::~ScopedSpan() {
  if (node_ == nullptr) return;
  node_->duration_ns = (NowNs() - tls_base_ns) - node_->start_ns;
  // Restore the parent only if this thread's trace is still the one we
  // opened under (scopes are strictly nested by construction).
  if (tls_trace == trace_) tls_current = parent_;
}

void ScopedSpan::Attr(const char* key, const std::string& value) {
  if (node_ != nullptr) node_->attrs.emplace_back(key, value);
}
void ScopedSpan::Attr(const char* key, const char* value) {
  if (node_ != nullptr) node_->attrs.emplace_back(key, value);
}
void ScopedSpan::Attr(const char* key, uint64_t value) {
  if (node_ != nullptr) {
    node_->attrs.emplace_back(key, std::to_string(value));
  }
}
void ScopedSpan::Attr(const char* key, int64_t value) {
  if (node_ != nullptr) {
    node_->attrs.emplace_back(key, std::to_string(value));
  }
}
void ScopedSpan::Attr(const char* key, int value) {
  if (node_ != nullptr) {
    node_->attrs.emplace_back(key, std::to_string(value));
  }
}
void ScopedSpan::Attr(const char* key, double value) {
  if (node_ != nullptr) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", value);
    node_->attrs.emplace_back(key, buf);
  }
}

bool TracingActive() { return tls_trace != nullptr; }

}  // namespace datacube::obs
