#include "datacube/obs/stats_server.h"

#include <utility>

#include "datacube/obs/metrics.h"
#include "datacube/obs/query_profile.h"
#include "datacube/obs/trace.h"

namespace datacube::obs {

namespace {

// Counts requests per known endpoint; unknown paths share one series so an
// attacker (or a typo) can't grow label cardinality.
void CountRequest(const std::string& path, int status) {
  static const char* known[] = {"/", "/metrics", "/varz", "/queryz",
                                "/tracez"};
  std::string label = "other";
  for (const char* k : known) {
    if (path == k) {
      label = path;
      break;
    }
  }
  MetricsRegistry::Global()
      .GetCounter("datacube_stats_requests_total",
                  "HTTP requests served by the embedded stats server",
                  {{"path", label}, {"code", std::to_string(status)}})
      .Inc();
}

}  // namespace

StatsServer::Response StatsServer::Handle(const std::string& method,
                                          const std::string& path) {
  // HEAD is routed exactly like GET; the transport omits the body while
  // keeping the true Content-Length. Everything else is rejected (the seed
  // served POST /metrics as a GET).
  if (method != "GET" && method != "HEAD") {
    return Response{405, "text/plain; charset=utf-8",
                    "only GET and HEAD are supported\n"};
  }
  if (path == "/metrics") {
    return Response{200, "text/plain; version=0.0.4; charset=utf-8",
                    MetricsRegistry::Global().RenderPrometheus()};
  }
  if (path == "/varz") {
    return Response{200, "application/json",
                    MetricsRegistry::Global().RenderJson()};
  }
  if (path == "/queryz") {
    return Response{200, "application/json",
                    QueryProfileLog::Global().ToJson()};
  }
  if (path == "/tracez") {
    return Response{200, "application/json", TraceLog::Global().ToJson()};
  }
  if (path == "/") {
    return Response{200, "text/plain; charset=utf-8",
                    "datacube stats server\n"
                    "  /metrics  Prometheus exposition\n"
                    "  /varz     metrics as JSON\n"
                    "  /queryz   recent query profiles\n"
                    "  /tracez   recent query traces\n"};
  }
  return Response{404, "text/plain; charset=utf-8", "not found\n"};
}

HttpResponse StatsServer::HandleHttp(const HttpRequest& request) {
  Response r = Handle(request.method, request.path);
  CountRequest(request.path, r.status);
  HttpResponse resp;
  resp.status = r.status;
  resp.content_type = std::move(r.content_type);
  resp.body = std::move(r.body);
  return resp;
}

Result<std::unique_ptr<StatsServer>> StatsServer::Start() {
  return Start(Options());
}

Result<std::unique_ptr<StatsServer>> StatsServer::Start(
    const Options& options) {
  HttpServer::Options server_options;
  server_options.host = options.host;
  server_options.port = options.port;
  if (options.head_timeout_ms > 0) {
    server_options.head_timeout_ms = options.head_timeout_ms;
  }
  DATACUBE_ASSIGN_OR_RETURN(
      std::unique_ptr<HttpServer> server,
      HttpServer::Start(server_options, &StatsServer::HandleHttp));
  return std::unique_ptr<StatsServer>(new StatsServer(std::move(server)));
}

StatsServer::StatsServer(std::unique_ptr<HttpServer> server)
    : server_(std::move(server)) {}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Stop() {
  if (server_ != nullptr) server_->Stop();
}

std::string StatsServer::url() const {
  return server_ == nullptr ? "" : server_->url();
}

}  // namespace datacube::obs
