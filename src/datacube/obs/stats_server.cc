#include "datacube/obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "datacube/obs/metrics.h"
#include "datacube/obs/query_profile.h"
#include "datacube/obs/trace.h"

namespace datacube::obs {

namespace {

constexpr int kAcceptPollMs = 200;   // stop-flag check cadence
constexpr int kClientPollMs = 2000;  // per-read client timeout
constexpr size_t kMaxRequestBytes = 8192;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Bad Request";
  }
}

// Counts requests per known endpoint; unknown paths share one series so an
// attacker (or a typo) can't grow label cardinality.
void CountRequest(const std::string& path, int status) {
  static const char* known[] = {"/", "/metrics", "/varz", "/queryz",
                                "/tracez"};
  std::string label = "other";
  for (const char* k : known) {
    if (path == k) {
      label = path;
      break;
    }
  }
  MetricsRegistry::Global()
      .GetCounter("datacube_stats_requests_total",
                  "HTTP requests served by the embedded stats server",
                  {{"path", label}, {"code", std::to_string(status)}})
      .Inc();
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

StatsServer::Response StatsServer::Handle(const std::string& method,
                                          const std::string& path) {
  if (method != "GET") {
    return Response{405, "text/plain; charset=utf-8",
                    "only GET is supported\n"};
  }
  if (path == "/metrics") {
    return Response{200, "text/plain; version=0.0.4; charset=utf-8",
                    MetricsRegistry::Global().RenderPrometheus()};
  }
  if (path == "/varz") {
    return Response{200, "application/json",
                    MetricsRegistry::Global().RenderJson()};
  }
  if (path == "/queryz") {
    return Response{200, "application/json",
                    QueryProfileLog::Global().ToJson()};
  }
  if (path == "/tracez") {
    return Response{200, "application/json", TraceLog::Global().ToJson()};
  }
  if (path == "/") {
    return Response{200, "text/plain; charset=utf-8",
                    "datacube stats server\n"
                    "  /metrics  Prometheus exposition\n"
                    "  /varz     metrics as JSON\n"
                    "  /queryz   recent query profiles\n"
                    "  /tracez   recent query traces\n"};
  }
  return Response{404, "text/plain; charset=utf-8", "not found\n"};
}

Result<std::unique_ptr<StatsServer>> StatsServer::Start() {
  return Start(Options());
}

Result<std::unique_ptr<StatsServer>> StatsServer::Start(
    const Options& options) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("stats server: bad host " + options.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::IOError(std::string("bind ") + options.host + ":" +
                                std::to_string(options.port) + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    Status st =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    Status st =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  return std::unique_ptr<StatsServer>(
      new StatsServer(fd, ntohs(bound.sin_port), options.host));
}

StatsServer::StatsServer(int listen_fd, int port, std::string host)
    : listen_fd_(listen_fd), port_(port), host_(std::move(host)) {
  thread_ = std::thread([this] { ServeLoop(); });
}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Stop() {
  if (stop_.exchange(true)) return;
  // Unblock a pending accept; the poll timeout covers the race where the
  // thread re-arms between the exchange and the shutdown.
  ::shutdown(listen_fd_, SHUT_RDWR);
  thread_.join();
  ::close(listen_fd_);
}

std::string StatsServer::url() const {
  return "http://" + host_ + ":" + std::to_string(port_);
}

void StatsServer::ServeLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd p{listen_fd_, POLLIN, 0};
    int r = ::poll(&p, 1, kAcceptPollMs);
    if (stop_.load(std::memory_order_acquire)) return;
    if (r <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    HandleConnection(fd);
    ::close(fd);
  }
}

void StatsServer::HandleConnection(int fd) {
  // Read until the end of the request head; the server ignores bodies, so
  // the head is the whole request.
  std::string request;
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, kClientPollMs) <= 0) return;  // slow or dead client
    char buf[2048];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    request.append(buf, static_cast<size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION. Query strings are ignored.
  size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;
  std::string line = request.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return;
  std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (size_t q = path.find('?'); q != std::string::npos) path.resize(q);

  Response resp = Handle(method, path);
  CountRequest(path, resp.status);

  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     StatusText(resp.status) +
                     "\r\nContent-Type: " + resp.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(resp.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  SendAll(fd, head) && SendAll(fd, resp.body);
}

}  // namespace datacube::obs
