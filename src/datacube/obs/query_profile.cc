#include "datacube/obs/query_profile.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "datacube/obs/json_util.h"

namespace datacube::obs {

namespace {

thread_local const std::string* tls_query_text = nullptr;

std::string FormatMs(double ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

}  // namespace

std::string QueryProfile::ToJsonLine() const {
  std::string out = "{\"query\":\"";
  AppendJsonEscaped(query, &out);
  out += "\",\"start_unix_ms\":" + std::to_string(start_unix_ms);
  out += ",\"wall_ms\":" + FormatMs(wall_ms);
  if (scan_ms > 0 || merge_ms > 0 || cascade_ms > 0) {
    out += ",\"phases\":{\"scan_ms\":" + FormatMs(scan_ms) +
           ",\"merge_ms\":" + FormatMs(merge_ms) +
           ",\"cascade_ms\":" + FormatMs(cascade_ms) + "}";
  }
  out += ",\"algorithm\":\"";
  AppendJsonEscaped(algorithm, &out);
  out += "\",\"threads\":" + std::to_string(threads);
  out += ",\"input_rows\":" + std::to_string(input_rows);
  out += ",\"output_cells\":" + std::to_string(output_cells);
  out += ",\"arena_peak_bytes\":" + std::to_string(arena_peak_bytes);
  if (!counters.empty()) {
    out += ",\"counters\":{";
    for (size_t i = 0; i < counters.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      AppendJsonEscaped(counters[i].first, &out);
      out += "\":" + std::to_string(counters[i].second);
    }
    out += "}";
  }
  if (!lattice.empty()) {
    out += ",\"lattice\":\"";
    AppendJsonEscaped(lattice, &out);
    out += "\"";
  }
  out += std::string(",\"slow\":") + (slow ? "true" : "false") + "}";
  return out;
}

QueryProfileLog::QueryProfileLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

QueryProfileLog& QueryProfileLog::Global() {
  // Leaked on purpose (same rationale as MetricsRegistry::Global): queries
  // may still record during static destruction of other translation units.
  static QueryProfileLog* log = [] {
    auto* l = new QueryProfileLog();
    double threshold = -1.0;
    if (const char* env = std::getenv("DATACUBE_SLOW_QUERY_MS");
        env != nullptr && env[0] != '\0') {
      char* end = nullptr;
      double v = std::strtod(env, &end);
      if (end != env) threshold = v;
    }
    std::string path;
    if (const char* env = std::getenv("DATACUBE_SLOW_QUERY_LOG");
        env != nullptr && env[0] != '\0') {
      path = env;
    }
    l->ConfigureSlowLog(threshold, std::move(path));
    return l;
  }();
  return *log;
}

void QueryProfileLog::Record(QueryProfile profile) {
  if (profile.start_unix_ms == 0) {
    profile.start_unix_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (profile.slow) {
    ++slow_;
    if (!slow_log_path_.empty()) {
      // Open-append-close per slow query: slow queries are rare by
      // definition, and this keeps the log durable and rotation-friendly.
      if (std::FILE* f = std::fopen(slow_log_path_.c_str(), "a")) {
        std::string line = profile.ToJsonLine() + "\n";
        std::fwrite(line.data(), 1, line.size(), f);
        std::fclose(f);
      }
    }
  }
  ring_.push_back(std::move(profile));
  while (ring_.size() > capacity_) ring_.pop_front();
}

double QueryProfileLog::EffectiveSlowThresholdMs(double override_ms) const {
  if (override_ms >= 0) return override_ms;
  std::lock_guard<std::mutex> lock(mu_);
  return slow_threshold_ms_;
}

void QueryProfileLog::ConfigureSlowLog(double threshold_ms,
                                       std::string jsonl_path) {
  std::lock_guard<std::mutex> lock(mu_);
  slow_threshold_ms_ = threshold_ms;
  slow_log_path_ = std::move(jsonl_path);
}

double QueryProfileLog::slow_threshold_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_threshold_ms_;
}

std::vector<QueryProfile> QueryProfileLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<QueryProfile>(ring_.begin(), ring_.end());
}

std::string QueryProfileLog::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"total\":" + std::to_string(total_) +
                    ",\"slow\":" + std::to_string(slow_) + ",\"profiles\":[";
  bool first = true;
  for (const QueryProfile& p : ring_) {
    if (!first) out += ",";
    first = false;
    out += p.ToJsonLine();
  }
  out += "]}";
  return out;
}

uint64_t QueryProfileLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

uint64_t QueryProfileLog::slow_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_;
}

QueryTextScope::QueryTextScope(const std::string& text)
    : prev_(tls_query_text) {
  tls_query_text = &text;
}

QueryTextScope::~QueryTextScope() { tls_query_text = prev_; }

const std::string* CurrentQueryText() { return tls_query_text; }

}  // namespace datacube::obs
